package profile

import (
	"testing"

	"dmp/internal/isa"
	"dmp/internal/prog"
)

// randomHammock builds a loop whose body contains a hard-to-predict
// if-else hammock on LCG pseudo-random data, followed by a common tail.
// Returns the program, the hammock branch PC, and the join PC.
func randomHammock(t *testing.T, iters int64) (*prog.Program, uint64, uint64) {
	t.Helper()
	b := prog.NewBuilder()
	const (
		rSeed = isa.Reg(1)
		rIter = isa.Reg(2)
		rBit  = isa.Reg(3)
		rAcc  = isa.Reg(4)
	)
	b.Li(rSeed, 88172645463325252)
	b.Li(rIter, iters)
	b.Label("loop")
	// xorshift-ish scramble, then branch on a mid bit.
	b.Muli(rSeed, rSeed, 6364136223846793005)
	b.Addi(rSeed, rSeed, 1442695040888963407)
	b.Shri(rBit, rSeed, 33)
	b.Andi(rBit, rBit, 1)
	brPC := b.Br(isa.NE, rBit, isa.Zero, "then")
	b.Addi(rAcc, rAcc, 3) // else side
	b.Jmp("join")
	b.Label("then")
	b.Addi(rAcc, rAcc, 5)
	b.Label("join")
	b.Addi(rAcc, rAcc, 1) // control-independent tail
	b.Subi(rIter, rIter, 1)
	b.Br(isa.GT, rIter, isa.Zero, "loop")
	b.Halt()
	p := b.MustBuild()
	return p, brPC, p.PC("join")
}

func TestProfilerFindsHammockCFM(t *testing.T) {
	p, brPC, join := randomHammock(t, 3000)
	rep, err := Run(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := p.DivergeAt(brPC)
	if d == nil {
		t.Fatalf("hammock branch %d not marked as diverge; report:\n%s", brPC, rep)
	}
	if d.CFMs[0] != join {
		t.Errorf("primary CFM = %d, want join %d; report:\n%s", d.CFMs[0], join, rep)
	}
	if d.Class != prog.ClassSimpleHammock {
		t.Errorf("class = %v, want simple-hammock", d.Class)
	}
	if d.Loop {
		t.Error("forward hammock marked as loop")
	}
	if d.ExitThreshold <= 0 || d.ExitThreshold > DefaultOptions().MaxDist {
		t.Errorf("exit threshold = %d out of range", d.ExitThreshold)
	}
}

func TestProfilerSkipsPredictableBranch(t *testing.T) {
	// The loop back-branch is almost always taken: well predicted, so it
	// must not be a diverge candidate (below the misprediction share) —
	// and it is backward, so even if it were, it would not be marked.
	p, _, _ := randomHammock(t, 3000)
	rep, err := Run(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range rep.Branches {
		if p.Code[bs.PC].Target <= bs.PC && bs.Marked {
			t.Errorf("backward branch %d marked without IncludeLoops", bs.PC)
		}
	}
}

func TestProfilerLoopBranchWithIncludeLoops(t *testing.T) {
	// A loop whose trip count is random (1 or 2 iterations) makes the
	// back-branch hard to predict; with IncludeLoops it may be marked,
	// and must then carry Loop=true.
	b := prog.NewBuilder()
	b.Li(1, 88172645463325252)
	b.Li(2, 4000) // outer iterations
	b.Label("outer")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	b.Shri(3, 1, 40)
	b.Andi(3, 3, 1)
	b.Addi(3, 3, 1) // inner trip count: 1 or 2
	b.Label("inner")
	b.Addi(4, 4, 1)
	b.Subi(3, 3, 1)
	innerBr := b.Br(isa.GT, 3, isa.Zero, "inner")
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "outer")
	b.Halt()
	p := b.MustBuild()

	opts := DefaultOptions()
	opts.IncludeLoops = true
	if _, err := Run(p, opts); err != nil {
		t.Fatal(err)
	}
	if d := p.DivergeAt(innerBr); d != nil && !d.Loop {
		t.Error("backward diverge branch not flagged Loop")
	}

	// Without IncludeLoops the same branch must not be marked.
	p2 := rebuild(t)
	_ = p2
}

func rebuild(t *testing.T) *prog.Program {
	t.Helper()
	return nil
}

func TestProfilerComplexDivergeClassification(t *testing.T) {
	// A diverge branch whose taken side contains another (biased) branch:
	// complex control flow, but still reconverging at a common join.
	b := prog.NewBuilder()
	b.Li(1, 88172645463325252)
	b.Li(2, 4000)
	b.Label("loop")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	b.Shri(3, 1, 33)
	b.Andi(3, 3, 1)
	brPC := b.Br(isa.NE, 3, isa.Zero, "then")
	b.Addi(4, 4, 3)
	b.Jmp("join")
	b.Label("then")
	b.Shri(5, 1, 13)
	b.Andi(5, 5, 7)
	b.Br(isa.EQ, 5, isa.Zero, "rare") // biased branch inside the hammock
	b.Addi(4, 4, 5)
	b.Jmp("join")
	b.Label("rare")
	b.Addi(4, 4, 7)
	b.Label("join")
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "loop")
	b.Halt()
	p := b.MustBuild()

	rep, err := Run(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := p.DivergeAt(brPC)
	if d == nil {
		t.Fatalf("complex diverge branch not marked; report:\n%s", rep)
	}
	if d.Class != prog.ClassComplexDiverge {
		t.Errorf("class = %v, want complex-diverge", d.Class)
	}
	if d.CFMs[0] != p.PC("join") {
		t.Errorf("CFM = %d, want %d", d.CFMs[0], p.PC("join"))
	}
}

func TestProfilerPostDomAblation(t *testing.T) {
	p, brPC, join := randomHammock(t, 2000)
	opts := DefaultOptions()
	opts.UsePostDom = true
	if _, err := Run(p, opts); err != nil {
		t.Fatal(err)
	}
	d := p.DivergeAt(brPC)
	if d == nil {
		t.Fatal("branch not marked under post-dom CFM selection")
	}
	if d.CFMs[0] != join {
		t.Errorf("post-dom CFM = %d, want %d (join is also the ipostdom here)", d.CFMs[0], join)
	}
}

func TestProfilerNoMergeNoMark(t *testing.T) {
	// A hard-to-predict branch whose two sides never reconverge within
	// MaxDist: each side enters a long private spin before the join.
	b := prog.NewBuilder()
	b.Li(1, 88172645463325252)
	b.Li(2, 300)
	b.Label("loop")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	b.Shri(3, 1, 33)
	b.Andi(3, 3, 1)
	brPC := b.Br(isa.NE, 3, isa.Zero, "then")
	b.Li(5, 200) // else: long private spin
	b.Label("espin")
	b.Subi(5, 5, 1)
	b.Br(isa.GT, 5, isa.Zero, "espin")
	b.Jmp("join")
	b.Label("then")
	b.Li(5, 200) // then: its own long private spin
	b.Label("tspin")
	b.Subi(5, 5, 1)
	b.Br(isa.GT, 5, isa.Zero, "tspin")
	b.Label("join")
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "loop")
	b.Halt()
	p := b.MustBuild()

	rep, err := Run(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := p.DivergeAt(brPC); d != nil {
		t.Errorf("never-merging branch was marked with CFMs %v; report:\n%s", d.CFMs, rep)
	}
}

func TestProfilerReportCounts(t *testing.T) {
	p, _, _ := randomHammock(t, 1000)
	rep, err := Run(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalInsts == 0 || rep.TotalBranches == 0 {
		t.Error("empty report totals")
	}
	// 1000 iterations x 2 branches each.
	if rep.TotalBranches != 2000 {
		t.Errorf("branches = %d, want 2000", rep.TotalBranches)
	}
	// The random hammock branch alone should account for ~50% mispredicts.
	if rep.TotalMispredicts < 300 {
		t.Errorf("mispredicts = %d, suspiciously low", rep.TotalMispredicts)
	}
	var sumExec uint64
	for _, bs := range rep.Branches {
		sumExec += bs.Execs
	}
	if sumExec != rep.TotalBranches {
		t.Errorf("per-branch execs sum %d != total %d", sumExec, rep.TotalBranches)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestProfilerInvalidOptions(t *testing.T) {
	p, _, _ := randomHammock(t, 10)
	if _, err := Run(p, Options{}); err == nil {
		t.Error("zero options accepted")
	}
}

func TestProfilerMaxInstsBounds(t *testing.T) {
	p, _, _ := randomHammock(t, 1_000_000)
	opts := DefaultOptions()
	opts.MaxInsts = 5000
	rep, err := Run(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalInsts > 5000 {
		t.Errorf("profiled %d insts, cap 5000", rep.TotalInsts)
	}
}

func TestProfilerDeterministic(t *testing.T) {
	p1, br1, _ := randomHammock(t, 1500)
	p2, br2, _ := randomHammock(t, 1500)
	r1, err1 := Run(p1, DefaultOptions())
	r2, err2 := Run(p2, DefaultOptions())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.String() != r2.String() {
		t.Error("profiling not deterministic")
	}
	d1, d2 := p1.DivergeAt(br1), p2.DivergeAt(br2)
	if (d1 == nil) != (d2 == nil) {
		t.Fatal("marking not deterministic")
	}
	if d1 != nil && (d1.CFMs[0] != d2.CFMs[0] || d1.ExitThreshold != d2.ExitThreshold) {
		t.Error("annotations not deterministic")
	}
}
