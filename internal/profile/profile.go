// Package profile implements the compiler side of the diverge-merge
// processor: profiling runs over the functional emulator that select
// diverge branches and their control-flow merge (CFM) points, following
// the heuristics of Section 3.2 of the paper:
//
//   - a branch is a diverge-branch candidate if it accounts for at least
//     0.1% of all mispredictions in the profiling run;
//   - a CFM point must appear on both the taken and the not-taken path of
//     the branch for at least 20% of its dynamic instances;
//   - a CFM point must lie within 120 dynamic instructions of the branch;
//   - the most frequent qualifying CFM point is marked for the basic
//     mechanism; all qualifying points are kept for the multiple-CFM-point
//     enhancement (Section 2.7.1);
//   - a per-branch early-exit threshold is derived from the observed
//     dynamic distance to the CFM point (Section 2.7.2).
//
// Profiling must use a different input from measurement (the paper uses
// the train input set); workloads expose distinct seeds for this.
package profile

import (
	"fmt"
	"sort"

	"dmp/internal/bpred"
	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Options tunes the selection heuristics. The zero value is *not* valid;
// use DefaultOptions.
type Options struct {
	// MaxInsts bounds the profiling run (0 = run to completion).
	MaxInsts uint64
	// MispredictShare is the minimum share of total mispredictions for a
	// branch to become a candidate (paper: 0.001).
	MispredictShare float64
	// ReconvergeFrac is the minimum fraction of dynamic instances, on
	// each path, in which a CFM point must appear (paper: 0.2).
	ReconvergeFrac float64
	// MaxDist is the maximum dynamic-instruction distance from the branch
	// to a CFM point (paper: 120).
	MaxDist int
	// MaxCFMs caps how many CFM points are recorded per branch for the
	// multiple-CFM enhancement.
	MaxCFMs int
	// SamplesPerBranch caps how many dynamic instances per (branch,
	// direction) feed the reconvergence analysis, for profiling speed.
	SamplesPerBranch int
	// IncludeLoops marks backward (loop) diverge branches too (Section
	// 2.7.4 future work). When false, backward branches are classified
	// but not marked.
	IncludeLoops bool
	// UsePostDom selects the immediate post-dominator as the CFM point
	// instead of the frequently-executed-path point (ablation: this is
	// what DMP argues *against*, since the post-dominator is often much
	// farther than the frequent-path merge point).
	UsePostDom bool
	// Predictor used to attribute mispredictions during profiling; nil
	// selects a fresh default perceptron.
	Predictor bpred.DirPredictor
}

// DefaultOptions returns the paper's heuristics.
func DefaultOptions() Options {
	return Options{
		MispredictShare:  0.001,
		ReconvergeFrac:   0.2,
		MaxDist:          120,
		MaxCFMs:          4,
		SamplesPerBranch: 2000,
	}
}

// BranchStat summarises one static branch over the profiling run.
type BranchStat struct {
	PC          uint64
	Execs       uint64
	Taken       uint64
	Mispredicts uint64
	Class       prog.BranchClass
	// Marked reports whether the branch was annotated as a diverge branch.
	Marked bool
	// CFMs are the selected merge points (empty if none qualified).
	CFMs []uint64
	// AvgDist is the mean dynamic distance to the primary CFM point.
	AvgDist float64
}

// Report is the result of a profiling pass.
type Report struct {
	TotalInsts       uint64
	TotalBranches    uint64
	TotalMispredicts uint64
	Branches         []BranchStat // sorted by descending mispredicts
}

// String renders the report as a table.
func (r *Report) String() string {
	s := fmt.Sprintf("insts=%d branches=%d mispredicts=%d (%.2f%% missrate)\n",
		r.TotalInsts, r.TotalBranches, r.TotalMispredicts,
		100*float64(r.TotalMispredicts)/float64(max64(r.TotalBranches, 1)))
	s += fmt.Sprintf("%8s %10s %10s %10s %-16s %6s %8s %s\n",
		"pc", "execs", "taken", "misp", "class", "marked", "avgdist", "cfms")
	for _, b := range r.Branches {
		s += fmt.Sprintf("%8d %10d %10d %10d %-16s %6v %8.1f %v\n",
			b.PC, b.Execs, b.Taken, b.Mispredicts, b.Class, b.Marked, b.AvgDist, b.CFMs)
	}
	return s
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Run profiles p and annotates it in place with diverge-branch marks.
// It returns the report. The pass is deterministic.
func Run(p *prog.Program, opts Options) (*Report, error) {
	if opts.MaxDist <= 0 || opts.ReconvergeFrac <= 0 {
		return nil, fmt.Errorf("profile: invalid options (use DefaultOptions)")
	}
	pred := opts.Predictor
	if pred == nil {
		pred = bpred.NewPerceptron(bpred.DefaultPerceptronConfig())
	}

	// Pass 1: misprediction attribution and the full PC trace.
	type bstat struct {
		execs, taken, misp uint64
	}
	stats := map[uint64]*bstat{}
	var trace []uint64
	var depth []int32 // call depth at which each traced instruction ran
	type instance struct {
		branchPC uint64
		taken    bool
		index    int // position in trace of the instruction *after* the branch
	}
	var instances []instance

	e := emu.New(p)
	var hist bpred.GHR
	var totalBr, totalMisp uint64
	var curDepth int32
	err := e.RunFunc(opts.MaxInsts, func(s emu.Step) bool {
		trace = append(trace, s.PC)
		depth = append(depth, curDepth)
		switch s.Inst.Op {
		case isa.CALL, isa.CALLR:
			curDepth++
		case isa.RET:
			curDepth--
		}
		if s.Inst.Op == isa.BR {
			st := stats[s.PC]
			if st == nil {
				st = &bstat{}
				stats[s.PC] = st
			}
			st.execs++
			totalBr++
			if s.Taken {
				st.taken++
			}
			predicted := pred.Predict(s.PC, hist)
			pred.Update(s.PC, hist, s.Taken)
			if predicted != s.Taken {
				st.misp++
				totalMisp++
			}
			hist = hist.Push(s.Taken)
			instances = append(instances, instance{s.PC, s.Taken, len(trace)})
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("profile: emulation failed: %w", err)
	}

	// Candidates by misprediction share.
	candidates := map[uint64]bool{}
	for pc, st := range stats {
		if totalMisp > 0 && float64(st.misp) >= opts.MispredictShare*float64(totalMisp) && st.misp > 0 {
			candidates[pc] = true
		}
	}

	// Pass 2 (over the recorded trace): reconvergence analysis.
	cands := map[uint64]*candData{}
	for pc := range candidates {
		cands[pc] = &candData{points: map[uint64]*cfmStat{}}
	}
	seen := map[uint64]int{} // pc -> instance serial, reused per window
	serial := 0
	for _, inst := range instances {
		cd := cands[inst.branchPC]
		if cd == nil {
			continue
		}
		if inst.taken {
			if cd.takenSamples >= uint64(opts.SamplesPerBranch) {
				continue
			}
			cd.takenSamples++
		} else {
			if cd.ntSamples >= uint64(opts.SamplesPerBranch) {
				continue
			}
			cd.ntSamples++
		}
		serial++
		end := inst.index + opts.MaxDist
		if end > len(trace) {
			end = len(trace)
		}
		branchDepth := depth[inst.index-1]
		for i := inst.index; i < end; i++ {
			// A control-flow merge point must sit at the branch's own
			// call depth: a PC inside a callee (or in a caller frame)
			// only appears "on both paths" through unrelated dynamic
			// call instances, and predicating up to it drags whole call
			// bodies into the dynamically predicated region.
			if depth[i] != branchDepth {
				continue
			}
			pc := trace[i]
			if seen[pc] == serial {
				continue // only the first occurrence in this window counts
			}
			seen[pc] = serial
			cs := cd.points[pc]
			if cs == nil {
				cs = &cfmStat{}
				cd.points[pc] = cs
			}
			dist := uint64(i - inst.index + 1)
			if inst.taken {
				cs.takenHits++
			} else {
				cs.ntHits++
			}
			cs.sumDist += dist
		}
	}

	// Selection.
	cfg := prog.BuildCFG(p)
	p.ClearDiverge()
	report := &Report{TotalInsts: e.Count, TotalBranches: totalBr, TotalMispredicts: totalMisp}

	for pc, st := range stats {
		bs := BranchStat{PC: pc, Execs: st.execs, Taken: st.taken, Mispredicts: st.misp}
		if cd := cands[pc]; cd != nil {
			cfms, avgDist := selectCFMs(cfg, pc, cd, opts)
			if len(cfms) > 0 {
				bs.CFMs, bs.AvgDist = cfms, avgDist
				if _, isSimple := cfg.SimpleHammockJoin(pc); isSimple {
					bs.Class = prog.ClassSimpleHammock
				} else {
					bs.Class = prog.ClassComplexDiverge
				}
				isLoop := p.Code[pc].Target <= pc
				if !isLoop || opts.IncludeLoops {
					thr := int(avgDist*1.5) + 8
					if thr > opts.MaxDist {
						thr = opts.MaxDist
					}
					p.MarkDiverge(pc, &prog.Diverge{
						CFMs:          cfms,
						Class:         bs.Class,
						ExitThreshold: thr,
						Loop:          isLoop,
					})
					bs.Marked = true
				}
			}
		}
		report.Branches = append(report.Branches, bs)
	}
	sort.Slice(report.Branches, func(i, j int) bool {
		if report.Branches[i].Mispredicts != report.Branches[j].Mispredicts {
			return report.Branches[i].Mispredicts > report.Branches[j].Mispredicts
		}
		return report.Branches[i].PC < report.Branches[j].PC
	})
	return report, nil
}

// cfmStat accumulates per-CFM-candidate appearance counts.
type cfmStat struct {
	takenHits, ntHits uint64
	sumDist           uint64
}

// candData accumulates reconvergence data for one candidate branch.
type candData struct {
	takenSamples, ntSamples uint64
	points                  map[uint64]*cfmStat
}

// selectCFMs picks the qualifying CFM points for one candidate branch:
// PCs appearing on at least ReconvergeFrac of the sampled instances of
// *both* directions, ranked by combined appearance frequency (ties broken
// toward the nearer point). With UsePostDom, the immediate post-dominator
// is used instead, modelling the conventional reconvergence-point choice
// DMP improves upon.
func selectCFMs(cfg *prog.CFG, branchPC uint64, cd *candData, opts Options) ([]uint64, float64) {
	if opts.UsePostDom {
		if pd, ok := cfg.IPostDom(branchPC); ok && pd != branchPC {
			// Distance statistics still come from the dynamic profile if
			// the point was observed; otherwise assume the max.
			avg := float64(opts.MaxDist)
			if cs := cd.points[pd]; cs != nil && cs.takenHits+cs.ntHits > 0 {
				avg = float64(cs.sumDist) / float64(cs.takenHits+cs.ntHits)
			}
			return []uint64{pd}, avg
		}
		return nil, 0
	}
	if cd.takenSamples == 0 || cd.ntSamples == 0 {
		// The branch essentially never goes one way in the profile; there
		// is no "both paths" evidence, so it is not a diverge branch.
		return nil, 0
	}
	type scored struct {
		pc      uint64
		minFrac float64
		avgDist float64
	}
	var qual []scored
	for pc, cs := range cd.points {
		// The branch itself can never merge its own paths, and its
		// fall-through is a degenerate "merge" that only appears on both
		// paths through loop iteration carry: selecting it makes the
		// dynamically predicated region span a whole loop body.
		if pc == branchPC || pc == branchPC+1 {
			continue
		}
		ft := float64(cs.takenHits) / float64(cd.takenSamples)
		fn := float64(cs.ntHits) / float64(cd.ntSamples)
		if ft < opts.ReconvergeFrac || fn < opts.ReconvergeFrac {
			continue
		}
		minf := ft
		if fn < ft {
			minf = fn
		}
		qual = append(qual, scored{pc, minf, float64(cs.sumDist) / float64(cs.takenHits+cs.ntHits)})
	}
	if len(qual) == 0 {
		return nil, 0
	}
	sort.Slice(qual, func(i, j int) bool {
		if qual[i].minFrac != qual[j].minFrac {
			return qual[i].minFrac > qual[j].minFrac
		}
		if qual[i].avgDist != qual[j].avgDist {
			return qual[i].avgDist < qual[j].avgDist
		}
		return qual[i].pc < qual[j].pc
	})
	n := opts.MaxCFMs
	if n <= 0 {
		n = 1
	}
	if len(qual) > n {
		qual = qual[:n]
	}
	cfms := make([]uint64, len(qual))
	for i, q := range qual {
		cfms[i] = q.pc
	}
	return cfms, qual[0].avgDist
}
