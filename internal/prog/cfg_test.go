package prog

import (
	"testing"

	"dmp/internal/isa"
)

// ifElseProg builds: br -> then/else -> join -> halt (simple if-else).
func ifElseProg(t *testing.T) (*Program, uint64) {
	t.Helper()
	b := NewBuilder()
	b.Li(1, 1)
	br := b.Br(isa.NE, 1, isa.Zero, "then")
	// else side
	b.Li(2, 100)
	b.Jmp("join")
	b.Label("then")
	b.Li(2, 200)
	b.Label("join")
	b.Add(3, 2, 2)
	b.Halt()
	return b.MustBuild(), br
}

func TestSimpleHammockIfElse(t *testing.T) {
	p, br := ifElseProg(t)
	c := BuildCFG(p)
	join, ok := c.SimpleHammockJoin(br)
	if !ok {
		t.Fatal("if-else not detected as simple hammock")
	}
	if join != p.PC("join") {
		t.Errorf("join = %d, want %d", join, p.PC("join"))
	}
}

func TestSimpleHammockIfOnly(t *testing.T) {
	// br skips a plain body: if (!cond) { body }; join = taken target.
	b := NewBuilder()
	b.Li(1, 1)
	br := b.Br(isa.EQ, 1, isa.Zero, "join")
	b.Li(2, 5) // body
	b.Li(3, 6)
	b.Label("join")
	b.Halt()
	p := b.MustBuild()
	c := BuildCFG(p)
	join, ok := c.SimpleHammockJoin(br)
	if !ok || join != p.PC("join") {
		t.Errorf("if-only: ok=%v join=%d want %d", ok, join, p.PC("join"))
	}
}

func TestNotSimpleHammockWithInnerBranch(t *testing.T) {
	// The body contains another branch: complex, not a simple hammock.
	b := NewBuilder()
	b.Li(1, 1)
	br := b.Br(isa.EQ, 1, isa.Zero, "join")
	b.Br(isa.NE, 2, isa.Zero, "join") // inner control flow
	b.Li(2, 5)
	b.Label("join")
	b.Halt()
	p := b.MustBuild()
	c := BuildCFG(p)
	if _, ok := c.SimpleHammockJoin(br); ok {
		t.Error("branch with inner control flow detected as simple hammock")
	}
}

func TestNotSimpleHammockWithCallInside(t *testing.T) {
	b := NewBuilder()
	b.Li(1, 1)
	br := b.Br(isa.EQ, 1, isa.Zero, "join")
	b.Call("fn")
	b.Label("join")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p := b.MustBuild()
	c := BuildCFG(p)
	if _, ok := c.SimpleHammockJoin(br); ok {
		t.Error("hammock containing a call detected as simple")
	}
}

func TestSimpleHammockOnNonBranch(t *testing.T) {
	p := MustAssemble("nop\nhalt")
	c := BuildCFG(p)
	if _, ok := c.SimpleHammockJoin(0); ok {
		t.Error("NOP detected as hammock")
	}
	if _, ok := c.SimpleHammockJoin(999); ok {
		t.Error("out-of-range PC detected as hammock")
	}
}

func TestIPostDomIfElse(t *testing.T) {
	p, br := ifElseProg(t)
	c := BuildCFG(p)
	ipd, ok := c.IPostDom(br)
	if !ok {
		t.Fatal("no ipostdom for if-else branch")
	}
	if ipd != p.PC("join") {
		t.Errorf("ipostdom = %d, want %d (join)", ipd, p.PC("join"))
	}
}

func TestIPostDomNestedDiamond(t *testing.T) {
	// Outer diamond containing an inner diamond on one side; the outer
	// branch's immediate post-dominator is the outer join.
	b := NewBuilder()
	outer := b.Br(isa.NE, 1, isa.Zero, "oright")
	// left side has an inner diamond
	b.Br(isa.NE, 2, isa.Zero, "iright")
	b.Li(3, 1)
	b.Jmp("ijoin")
	b.Label("iright")
	b.Li(3, 2)
	b.Label("ijoin")
	b.Jmp("ojoin")
	b.Label("oright")
	b.Li(3, 3)
	b.Label("ojoin")
	b.Halt()
	p := b.MustBuild()
	c := BuildCFG(p)
	ipd, ok := c.IPostDom(outer)
	if !ok || ipd != p.PC("ojoin") {
		t.Errorf("outer ipostdom = %d ok=%v, want %d", ipd, ok, p.PC("ojoin"))
	}
	inner := uint64(1)
	ipd2, ok2 := c.IPostDom(inner)
	if !ok2 || ipd2 != p.PC("ijoin") {
		t.Errorf("inner ipostdom = %d ok=%v, want %d", ipd2, ok2, p.PC("ijoin"))
	}
}

func TestIPostDomLoop(t *testing.T) {
	// Loop back-branch: the ipostdom of the loop branch is the loop exit.
	b := NewBuilder()
	b.Li(1, 10)
	b.Label("loop")
	b.Subi(1, 1, 1)
	br := b.Br(isa.GT, 1, isa.Zero, "loop")
	b.Label("exit")
	b.Halt()
	p := b.MustBuild()
	c := BuildCFG(p)
	ipd, ok := c.IPostDom(br)
	if !ok || ipd != p.PC("exit") {
		t.Errorf("loop ipostdom = %d ok=%v, want %d", ipd, ok, p.PC("exit"))
	}
}

func TestBlockPartition(t *testing.T) {
	p, br := ifElseProg(t)
	c := BuildCFG(p)
	// Every PC belongs to exactly one block covering it.
	for pc := uint64(0); pc < uint64(p.Len()); pc++ {
		bi := c.BlockOf(pc)
		if bi < 0 {
			t.Fatalf("pc %d has no block", pc)
		}
		blk := c.Blocks[bi]
		if pc < blk.Start || pc >= blk.End {
			t.Errorf("pc %d mapped to block [%d,%d)", pc, blk.Start, blk.End)
		}
	}
	// The branch ends its block.
	bb := c.Blocks[c.BlockOf(br)]
	if bb.Last() != br {
		t.Errorf("branch not at block end: block [%d,%d), br=%d", bb.Start, bb.End, br)
	}
	// Branch block has two successors.
	if len(bb.Succs) != 2 {
		t.Errorf("branch block succs = %d, want 2", len(bb.Succs))
	}
	if c.BlockOf(9999) != -1 {
		t.Error("BlockOf out of range != -1")
	}
}

func TestCFGCallHasFallthroughEdge(t *testing.T) {
	b := NewBuilder()
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p := b.MustBuild()
	c := BuildCFG(p)
	callBlk := c.Blocks[c.BlockOf(0)]
	if len(callBlk.Succs) != 1 {
		t.Fatalf("call block succs = %v, want 1 (fall-through)", callBlk.Succs)
	}
	if c.Blocks[callBlk.Succs[0]].Start != 1 {
		t.Errorf("call successor starts at %d, want 1", c.Blocks[callBlk.Succs[0]].Start)
	}
	retBlk := c.Blocks[c.BlockOf(p.PC("fn"))]
	if len(retBlk.Succs) != 0 {
		t.Errorf("ret block succs = %v, want none", retBlk.Succs)
	}
}
