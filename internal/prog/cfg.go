package prog

import (
	"dmp/internal/isa"
)

// CFG is the static control-flow graph of a program, at basic-block
// granularity. It backs the simple-hammock classifier (used to separate
// DHP-eligible branches from complex diverge branches, Figure 6) and the
// immediate-post-dominator CFM ablation.
//
// Control flow is treated intra-procedurally: a CALL has a fall-through
// edge to its return point (the callee's effect on control flow is
// invisible at this level), and RET, JR, CALLR and HALT terminate a block
// with no static successors.
type CFG struct {
	prog   *Program
	Blocks []Block
	// blockOf maps every PC to the index of its containing block.
	blockOf []int
	// ipdom[i] is the immediate post-dominator block of block i, or -1.
	ipdom []int
}

// Block is a basic block: instructions [Start, End), with static
// successor block indices.
type Block struct {
	Start, End uint64
	Succs      []int
}

// Last returns the PC of the block's final instruction.
func (b Block) Last() uint64 { return b.End - 1 }

// BuildCFG constructs the control-flow graph of p.
func BuildCFG(p *Program) *CFG {
	n := uint64(len(p.Code))
	leader := make([]bool, n+1)
	if n > 0 {
		leader[p.Entry] = true
		leader[0] = true
	}
	for pc := uint64(0); pc < n; pc++ {
		in := p.Code[pc]
		switch in.Op {
		case isa.BR:
			leader[in.Target] = true
			if pc+1 <= n {
				leader[pc+1] = true
			}
		case isa.JMP:
			leader[in.Target] = true
			if pc+1 <= n {
				leader[pc+1] = true
			}
		case isa.CALL:
			leader[in.Target] = true
			if pc+1 <= n {
				leader[pc+1] = true
			}
		case isa.JR, isa.CALLR, isa.RET, isa.HALT:
			if pc+1 <= n {
				leader[pc+1] = true
			}
		}
	}
	// Labels are block leaders too: an indirect jump may target them.
	for _, pc := range p.Labels {
		if pc < n {
			leader[pc] = true
		}
	}

	c := &CFG{prog: p, blockOf: make([]int, n)}
	start := uint64(0)
	for pc := uint64(0); pc <= n; pc++ {
		// pc > start guards the empty program: no zero-length blocks.
		if pc > start && (pc == n || leader[pc]) {
			c.Blocks = append(c.Blocks, Block{Start: start, End: pc})
			start = pc
		}
		if pc == n {
			break
		}
	}
	for i, b := range c.Blocks {
		for pc := b.Start; pc < b.End; pc++ {
			c.blockOf[pc] = i
		}
	}
	// Successor edges.
	byStart := map[uint64]int{}
	for i, b := range c.Blocks {
		byStart[b.Start] = i
	}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		last := c.prog.Code[b.Last()]
		add := func(pc uint64) {
			if j, ok := byStart[pc]; ok {
				b.Succs = append(b.Succs, j)
			}
		}
		switch last.Op {
		case isa.BR:
			add(b.End) // fall-through
			add(last.Target)
		case isa.JMP:
			add(last.Target)
		case isa.CALL, isa.CALLR:
			// Intra-procedural view: the call returns to the next PC.
			add(b.End)
		case isa.JR, isa.RET, isa.HALT:
			// No static successors.
		default:
			add(b.End)
		}
	}
	c.computePostDominators()
	return c
}

// BlockOf returns the index of the block containing pc, or -1 if pc is
// outside the code image.
func (c *CFG) BlockOf(pc uint64) int {
	if pc >= uint64(len(c.blockOf)) {
		return -1
	}
	return c.blockOf[pc]
}

// computePostDominators runs the standard iterative dominator algorithm
// (Cooper/Harvey/Kennedy) on the reverse graph, with a virtual exit node
// that succeeds every block with no static successors.
func (c *CFG) computePostDominators() {
	n := len(c.Blocks)
	c.ipdom = make([]int, n)
	for i := range c.ipdom {
		c.ipdom[i] = -1
	}
	if n == 0 {
		return
	}

	preds := make([][]int, n) // reverse-graph predecessors = forward succs
	exits := []int{}
	for i, b := range c.Blocks {
		if len(b.Succs) == 0 {
			exits = append(exits, i)
		}
		for _, s := range b.Succs {
			preds[s] = append(preds[s], i)
		}
	}
	// Reverse post-order of the reverse graph, starting from exits.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(v int) {
		seen[v] = true
		for _, p := range preds[v] {
			if !seen[p] {
				dfs(p)
			}
		}
		order = append(order, v)
	}
	for _, e := range exits {
		if !seen[e] {
			dfs(e)
		}
	}
	// order is post-order of reverse graph traversal; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, v := range order {
		rpoNum[v] = i
	}

	// Compute post-dominator sets iteratively with bitsets, then derive
	// immediate post-dominators. Workload CFGs have at most a few
	// thousand blocks, so O(n^2/64) per pass is fine.
	words := (n + 63) / 64
	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << (i % 64)
	}
	pdom := make([][]uint64, n)
	for i := range pdom {
		pdom[i] = make([]uint64, words)
		if len(c.Blocks[i].Succs) == 0 {
			pdom[i][i/64] |= 1 << (i % 64)
		} else {
			copy(pdom[i], full)
		}
	}
	changed := true
	tmp := make([]uint64, words)
	for changed {
		changed = false
		// Iterate in reverse-ish order for faster convergence.
		for k := len(order) - 1; k >= 0; k-- {
			i := order[k]
			b := c.Blocks[i]
			if len(b.Succs) == 0 {
				continue
			}
			copy(tmp, full)
			for _, s := range b.Succs {
				for w := range tmp {
					tmp[w] &= pdom[s][w]
				}
			}
			tmp[i/64] |= 1 << (i % 64)
			for w := range tmp {
				if tmp[w] != pdom[i][w] {
					changed = true
				}
				pdom[i][w] = tmp[w]
			}
		}
	}
	// Blocks never reaching an exit (e.g. infinite loops on paths the
	// workloads never take) keep the full set; their ipdom stays -1.
	has := func(set []uint64, j int) bool { return set[j/64]&(1<<(j%64)) != 0 }
	for i := 0; i < n; i++ {
		if rpoNum[i] == -1 {
			continue // unreachable from any exit
		}
		// The immediate post-dominator is the *closest* strict
		// post-dominator: the one that all the other strict
		// post-dominators also post-dominate, i.e. the one whose own
		// post-dominator set is largest.
		best, bestSize := -1, -1
		for j := 0; j < n; j++ {
			if j == i || !has(pdom[i], j) {
				continue
			}
			if rpoNum[j] == -1 {
				continue // j itself never reaches an exit; ignore
			}
			size := 0
			for w := range pdom[j] {
				size += popcount(pdom[j][w])
			}
			if size > bestSize {
				best, bestSize = j, size
			}
		}
		c.ipdom[i] = best
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// IPostDom returns the PC of the first instruction of the immediate
// post-dominator block of the branch at branchPC, and whether one exists.
func (c *CFG) IPostDom(branchPC uint64) (uint64, bool) {
	bi := c.BlockOf(branchPC)
	if bi < 0 || c.ipdom[bi] < 0 {
		return 0, false
	}
	return c.Blocks[c.ipdom[bi]].Start, true
}

// SimpleHammockJoin reports whether the conditional branch at branchPC
// forms a simple hammock — an if or if-else structure with no other
// control flow inside (the only shape Dynamic Hammock Predication
// handles) — and returns the join PC if so.
func (c *CFG) SimpleHammockJoin(branchPC uint64) (uint64, bool) {
	if branchPC >= uint64(len(c.prog.Code)) || c.prog.Code[branchPC].Op != isa.BR {
		return 0, false
	}
	br := c.prog.Code[branchPC]
	ft := branchPC + 1 // fall-through PC
	tk := br.Target    // taken PC
	if tk == ft {
		return 0, false
	}

	// Pattern 1 — simple if (no else): the branch skips a single plain
	// block. Either the taken target is the join and the fall-through
	// block runs straight (or jumps) into it, or symmetrically the
	// fall-through...: with our forward-if encoding the body is always the
	// fall-through side and the taken target is the join.
	if end, ok := c.plainBlockReaches(ft, tk); ok {
		_ = end
		return tk, true
	}

	// Pattern 2 — simple if-else: both sides are single plain blocks that
	// converge at a common join.
	ftJoin, okF := c.plainBlockJoin(ft)
	tkJoin, okT := c.plainBlockJoin(tk)
	if okF && okT && ftJoin == tkJoin {
		return ftJoin, true
	}
	return 0, false
}

// plainBlockReaches reports whether the block starting at start contains
// no control flow other than an optional final JMP, and either falls
// through to join or ends with JMP join.
func (c *CFG) plainBlockReaches(start, join uint64) (uint64, bool) {
	end, ok := c.plainBlockJoin(start)
	return end, ok && end == join
}

// plainBlockJoin inspects the basic block starting at start. If the
// block contains no control flow other than an optional final JMP, it
// returns the PC the block flows to (fall-through successor or direct
// jump target).
func (c *CFG) plainBlockJoin(start uint64) (uint64, bool) {
	const maxBody = 64 // a "simple" hammock body is short by definition
	bi := c.BlockOf(start)
	if bi < 0 {
		return 0, false
	}
	b := c.Blocks[bi]
	if b.Start != start || b.End-b.Start > maxBody {
		return 0, false
	}
	last := c.prog.Code[b.Last()]
	switch last.Op {
	case isa.JMP:
		return last.Target, true
	case isa.BR, isa.CALL, isa.CALLR, isa.JR, isa.RET, isa.HALT:
		return 0, false
	default:
		return b.End, true // falls through into the next block
	}
}
