package prog

import (
	"testing"

	"dmp/internal/isa"
)

// TestBuilderFullOpCoverage drives every Builder emitter and checks the
// encoded instructions field by field.
func TestBuilderFullOpCoverage(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Add(1, 2, 3)
	b.Sub(1, 2, 3)
	b.And(1, 2, 3)
	b.Or(1, 2, 3)
	b.Xor(1, 2, 3)
	b.Mul(1, 2, 3)
	b.Div(1, 2, 3)
	b.Shl(1, 2, 3)
	b.Shr(1, 2, 3)
	b.Slt(1, 2, 3)
	b.Sltu(1, 2, 3)
	b.Addi(1, 2, -7)
	b.Subi(1, 2, 7)
	b.Andi(1, 2, 7)
	b.Ori(1, 2, 7)
	b.Xori(1, 2, 7)
	b.Shli(1, 2, 7)
	b.Shri(1, 2, 7)
	b.Muli(1, 2, 7)
	b.Slti(1, 2, 7)
	b.Li(4, 1<<40)
	b.Mov(5, 6)
	b.Ld(7, 8, 16)
	b.St(9, 10, 24)
	b.Brz(11, "start")
	b.Brnz(12, "start")
	b.Jr(13)
	b.Callr(14)
	b.RetVia(15)
	b.Nop()
	b.Halt()
	p := b.MustBuild()

	wantOps := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL, isa.DIV,
		isa.SHL, isa.SHR, isa.SLT, isa.SLTU,
		isa.ADDI, isa.SUBI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI,
		isa.SHRI, isa.MULI, isa.SLTI,
		isa.LI, isa.ADDI, // Mov encodes as ADDI d, s, 0
		isa.LD, isa.ST,
		isa.BR, isa.BR, isa.JR, isa.CALLR, isa.RET, isa.NOP, isa.HALT,
	}
	if p.Len() != len(wantOps) {
		t.Fatalf("emitted %d insts, want %d", p.Len(), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Code[i].Op != op {
			t.Errorf("inst %d op = %v, want %v", i, p.Code[i].Op, op)
		}
	}
	if mov := p.Code[21]; mov.Dst != 5 || mov.Src1 != 6 || mov.Imm != 0 {
		t.Errorf("Mov encoding wrong: %v", mov)
	}
	if ld := p.Code[22]; ld.Dst != 7 || ld.Src1 != 8 || ld.Imm != 16 {
		t.Errorf("Ld encoding wrong: %v", ld)
	}
	if st := p.Code[23]; st.Src2 != 9 || st.Src1 != 10 || st.Imm != 24 {
		t.Errorf("St encoding wrong: %v", st)
	}
	if brz := p.Code[24]; brz.Cond != isa.EQ || brz.Src1 != 11 || brz.Src2 != isa.Zero {
		t.Errorf("Brz encoding wrong: %v", brz)
	}
	if brnz := p.Code[25]; brnz.Cond != isa.NE || brnz.Src1 != 12 {
		t.Errorf("Brnz encoding wrong: %v", brnz)
	}
	if ret := p.Code[28]; ret.Src1 != 15 {
		t.Errorf("RetVia encoding wrong: %v", ret)
	}
	if li := p.Code[20]; li.Imm != 1<<40 {
		t.Errorf("Li 64-bit immediate wrong: %v", li)
	}
}

func TestBuilderHereTracksPC(t *testing.T) {
	b := NewBuilder()
	if b.Here() != 0 {
		t.Error("fresh builder Here != 0")
	}
	b.Nop()
	b.Nop()
	if b.Here() != 2 {
		t.Errorf("Here = %d, want 2", b.Here())
	}
	brPC := b.Brz(1, "end")
	if brPC != 2 {
		t.Errorf("Brz returned pc %d, want 2", brPC)
	}
	b.Label("end")
	b.Halt()
	b.MustBuild()
}

func TestBuilderCallLinksLR(t *testing.T) {
	b := NewBuilder()
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p := b.MustBuild()
	if p.Code[0].Dst != isa.LR {
		t.Errorf("Call links %v, want lr", p.Code[0].Dst)
	}
	if p.Code[2].Src1 != isa.LR {
		t.Errorf("Ret reads %v, want lr", p.Code[2].Src1)
	}
	if p.Code[0].Target != p.PC("fn") {
		t.Error("Call target not resolved")
	}
}

func TestCFGIPostDomOutOfRange(t *testing.T) {
	p := MustAssemble("nop\nhalt")
	c := BuildCFG(p)
	if _, ok := c.IPostDom(999); ok {
		t.Error("IPostDom out of range returned ok")
	}
	// The HALT block has no post-dominator.
	if _, ok := c.IPostDom(1); ok {
		t.Error("exit block reported a post-dominator")
	}
}

func TestBlockLast(t *testing.T) {
	p := MustAssemble("nop\nnop\nhalt")
	c := BuildCFG(p)
	b := c.Blocks[c.BlockOf(0)]
	if b.Last() != b.End-1 {
		t.Error("Block.Last inconsistent")
	}
}
