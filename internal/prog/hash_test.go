package prog

import (
	"testing"

	"dmp/internal/isa"
)

func hashProg() *Program {
	p := New()
	p.Code = []isa.Inst{
		{Op: isa.LI, Dst: 1, Imm: 7},
		{Op: isa.BR, Cond: isa.EQ, Src1: 1, Src2: 1, Target: 3},
		{Op: isa.ADDI, Dst: 1, Src1: 1, Imm: 1},
		{Op: isa.HALT},
	}
	p.SetWord(64, 11)
	p.MarkDiverge(1, &Diverge{CFMs: []uint64{3}, Class: ClassSimpleHammock, ExitThreshold: 8})
	return p
}

func TestHashDeterministicAndSensitive(t *testing.T) {
	base := hashProg().Hash()
	if base != hashProg().Hash() {
		t.Fatal("hash is not deterministic")
	}
	// Labels are presentation-only: they must not move the hash.
	withLabel := hashProg()
	withLabel.Labels["loop"] = 2
	if withLabel.Hash() != base {
		t.Fatal("label changed the hash")
	}
	for name, mut := range map[string]func(*Program){
		"code":      func(p *Program) { p.Code[2].Imm = 2 },
		"entry":     func(p *Program) { p.Entry = 2 },
		"stack":     func(p *Program) { p.StackBase = 1 << 21 },
		"data":      func(p *Program) { p.SetWord(64, 12) },
		"data-addr": func(p *Program) { p.SetWord(128, 11) },
		"cfm":       func(p *Program) { p.Diverge[1].CFMs = []uint64{2} },
		"class":     func(p *Program) { p.Diverge[1].Class = ClassComplexDiverge },
		"threshold": func(p *Program) { p.Diverge[1].ExitThreshold = 16 },
		"loop":      func(p *Program) { p.Diverge[1].Loop = true },
	} {
		p := hashProg()
		mut(p)
		if p.Hash() == base {
			t.Errorf("mutation %q did not change the hash", name)
		}
	}
}
