package prog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Hash returns a content digest over everything that can affect
// execution: the instruction image, entry point, stack base, initial
// data memory, and the diverge annotations (CFM points, class, exit
// threshold, loop marking). Labels are presentation-only and excluded.
// Maps are folded in sorted-key order, so the digest is deterministic
// across processes — it is the workload-identity half of the result
// store's key (internal/store Meta.WorkloadHash), pinning cached
// results to the exact program bytes they were measured on.
func (p *Program) Hash() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	b := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}

	u64(uint64(len(p.Code)))
	for _, in := range p.Code {
		u64(uint64(in.Op))
		u64(uint64(in.Cond))
		u64(uint64(in.Dst))
		u64(uint64(in.Src1))
		u64(uint64(in.Src2))
		u64(uint64(in.Imm))
		u64(in.Target)
	}
	u64(p.Entry)
	u64(p.StackBase)

	u64(uint64(len(p.Data)))
	addrs := make([]uint64, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		u64(a)
		u64(p.Data[a])
	}

	pcs := p.DivergePCs()
	u64(uint64(len(pcs)))
	for _, pc := range pcs {
		d := p.Diverge[pc]
		u64(pc)
		u64(uint64(len(d.CFMs)))
		for _, cfm := range d.CFMs {
			u64(cfm)
		}
		u64(uint64(d.Class))
		u64(uint64(int64(d.ExitThreshold)))
		b(d.Loop)
	}
	return hex.EncodeToString(h.Sum(nil))
}
