package prog

import (
	"testing"

	"dmp/internal/isa"
)

// rawProg builds a Program directly, bypassing Validate, so tests can
// exercise CFG construction on degenerate shapes.
func rawProg(entry uint64, code ...isa.Inst) *Program {
	p := New()
	p.Code = code
	p.Entry = entry
	return p
}

func ebr(c isa.Cond, target uint64) isa.Inst {
	return isa.Inst{Op: isa.BR, Cond: c, Src1: 1, Src2: isa.Zero, Target: target}
}
func ejmp(t uint64) isa.Inst { return isa.Inst{Op: isa.JMP, Target: t} }
func ehalt() isa.Inst        { return isa.Inst{Op: isa.HALT} }
func enop() isa.Inst         { return isa.Inst{Op: isa.NOP} }

func TestCFGSingleBlockProgram(t *testing.T) {
	p := rawProg(0, enop(), enop(), ehalt())
	c := BuildCFG(p)
	if len(c.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 (%v)", len(c.Blocks), c.Blocks)
	}
	b := c.Blocks[0]
	if b.Start != 0 || b.End != 3 || len(b.Succs) != 0 {
		t.Errorf("block = %+v, want [0,3) with no successors", b)
	}
	for pc := uint64(0); pc < 3; pc++ {
		if c.BlockOf(pc) != 0 {
			t.Errorf("BlockOf(%d) = %d, want 0", pc, c.BlockOf(pc))
		}
	}
	if c.BlockOf(99) != -1 {
		t.Errorf("BlockOf outside code must be -1")
	}
	// A single exit block has no strict post-dominator.
	if _, ok := c.IPostDom(0); ok {
		t.Errorf("single block reported a post-dominator")
	}
}

func TestCFGEmptyProgram(t *testing.T) {
	c := BuildCFG(rawProg(0))
	if len(c.Blocks) != 0 {
		t.Fatalf("empty program produced %d blocks", len(c.Blocks))
	}
	if c.BlockOf(0) != -1 {
		t.Errorf("BlockOf on empty program must be -1")
	}
	if _, ok := c.IPostDom(0); ok {
		t.Errorf("empty program reported a post-dominator")
	}
	if _, ok := c.SimpleHammockJoin(0); ok {
		t.Errorf("empty program reported a hammock")
	}
}

func TestCFGUnreachableBlocks(t *testing.T) {
	// Blocks 1–2 (PCs 1..2) are skipped by the entry jump; they must
	// still appear in the CFG with correct extents and edges.
	p := rawProg(0,
		ejmp(3), // 0
		enop(),  // 1: unreachable
		ejmp(1), // 2: unreachable self-loop region
		ehalt(), // 3
	)
	c := BuildCFG(p)
	// Leaders: 0 (entry), 1 (fall-through of the jmp and its own target),
	// 3 (jump target) — so the unreachable loop PCs 1..2 form one block.
	if len(c.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (%v)", len(c.Blocks), c.Blocks)
	}
	// The unreachable loop (1 <-> 2) never reaches an exit; its blocks
	// must not get a post-dominator, and the reachable entry must.
	if _, ok := c.IPostDom(1); ok {
		t.Errorf("unreachable loop block got a post-dominator")
	}
	if pd, ok := c.IPostDom(0); !ok || pd != 3 {
		t.Errorf("IPostDom(0) = %d,%v; want 3,true", pd, ok)
	}
}

func TestCFGInfiniteLoopNoPostDom(t *testing.T) {
	// A reachable infinite loop with no exit: the loop blocks keep the
	// full post-dominator set and must report none. The HALT after the
	// loop is dead code.
	p := rawProg(0,
		enop(),  // 0
		ejmp(1), // 1: spins forever
		ehalt(), // 2: statically dead
	)
	c := BuildCFG(p)
	if _, ok := c.IPostDom(0); ok {
		t.Errorf("block on an inescapable loop path got a post-dominator")
	}
	if _, ok := c.IPostDom(1); ok {
		t.Errorf("infinite loop body got a post-dominator")
	}
}

func TestCFGHammockDegenerateShapes(t *testing.T) {
	// Branch whose taken target equals its fall-through: not a hammock.
	p := rawProg(0,
		ebr(isa.EQ, 1), // 0: both edges land on 1
		enop(),         // 1
		ehalt(),        // 2
	)
	if _, ok := BuildCFG(p).SimpleHammockJoin(0); ok {
		t.Errorf("branch with taken == fall-through classified as hammock")
	}

	// Non-branch PCs never form hammocks.
	if _, ok := BuildCFG(p).SimpleHammockJoin(1); ok {
		t.Errorf("non-branch classified as hammock")
	}

	// A body containing a CALL is not "plain": the hammock test must
	// reject it even though the shape otherwise matches a simple if.
	q := rawProg(3,
		isa.Inst{Op: isa.ADDI, Dst: 4, Src1: 4, Imm: 1}, // 0: callee
		isa.Inst{Op: isa.RET, Src1: isa.LR},             // 1
		ehalt(),                                         // 2: filler exit
		ebr(isa.EQ, 6),                                  // 3: if (skip body)
		isa.Inst{Op: isa.CALL, Target: 0, Dst: isa.LR},  // 4: body with a call
		enop(),  // 5
		ehalt(), // 6: join
	)
	if _, ok := BuildCFG(q).SimpleHammockJoin(3); ok {
		t.Errorf("body containing CALL classified as simple hammock")
	}
}

func TestCFGHammockBodyLimit(t *testing.T) {
	// plainBlockJoin caps "simple" bodies at 64 instructions: a 1-long
	// body qualifies, a 65-long body must not.
	build := func(bodyLen int) *Program {
		code := []isa.Inst{ebr(isa.EQ, uint64(bodyLen+1))}
		for i := 0; i < bodyLen; i++ {
			code = append(code, isa.Inst{Op: isa.ADDI, Dst: 4, Src1: 4, Imm: 1})
		}
		code = append(code, ehalt()) // join / exit
		return rawProg(0, code...)
	}
	small := build(1)
	if join, ok := BuildCFG(small).SimpleHammockJoin(0); !ok || join != 2 {
		t.Errorf("short if body: join = %d,%v; want 2,true", join, ok)
	}
	big := build(65)
	if _, ok := BuildCFG(big).SimpleHammockJoin(0); ok {
		t.Errorf("65-instruction body classified as simple hammock")
	}
}

func TestValidateFallthroughOffEnd(t *testing.T) {
	// A last instruction that can fall through must be rejected even
	// when everything else is legal.
	for name, last := range map[string]isa.Inst{
		"nop":  enop(),
		"br":   ebr(isa.EQ, 0),
		"call": {Op: isa.CALL, Target: 0, Dst: isa.LR},
		"addi": {Op: isa.ADDI, Dst: 4, Src1: 4, Imm: 1},
	} {
		p := rawProg(0, ehalt(), last)
		if err := p.Validate(); err == nil {
			t.Errorf("%s at end of image accepted", name)
		}
	}
	// Unconditional transfers and HALT are fine.
	for name, last := range map[string]isa.Inst{
		"halt": ehalt(),
		"jmp":  ejmp(0),
		"ret":  {Op: isa.RET, Src1: isa.LR},
		"jr":   {Op: isa.JR, Src1: isa.LR},
	} {
		p := rawProg(0, ehalt(), last)
		if err := p.Validate(); err != nil {
			t.Errorf("%s at end of image rejected: %v", name, err)
		}
	}
}
