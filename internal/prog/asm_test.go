package prog

import (
	"strings"
	"testing"

	"dmp/internal/isa"
)

const asmSample = `
; a small program exercising most syntax
.entry start
start:
    li   r1, 10
    li   r2, 0x20       # hex immediate
loop:
    addi r2, r2, -1
    ld   r3, 8(r2)
    st   r3, (r2)
    br.gt r2, zero, loop
    call fn
    jmp  end
fn:
    mov  r4, r1
    ret
end:
    halt
.word 0x1000 42
`

func TestAssembleSample(t *testing.T) {
	p, err := Assemble(asmSample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.PC("start") {
		t.Errorf("entry = %d, want %d", p.Entry, p.PC("start"))
	}
	if p.Word(0x1000) != 42 {
		t.Errorf("data word = %d", p.Word(0x1000))
	}
	br := p.Code[p.PC("loop")+3]
	if br.Op != isa.BR || br.Cond != isa.GT || br.Target != p.PC("loop") {
		t.Errorf("branch = %v", br)
	}
	ld := p.Code[p.PC("loop")+1]
	if ld.Op != isa.LD || ld.Imm != 8 || ld.Src1 != 2 {
		t.Errorf("ld = %v", ld)
	}
	st := p.Code[p.PC("loop")+2]
	if st.Op != isa.ST || st.Imm != 0 || st.Src2 != 3 {
		t.Errorf("st = %v", st)
	}
	call := p.Code[p.PC("loop")+4]
	if call.Op != isa.CALL || call.Target != p.PC("fn") || call.Dst != isa.LR {
		t.Errorf("call = %v", call)
	}
	neg := p.Code[p.PC("loop")]
	if neg.Op != isa.ADDI || neg.Imm != -1 {
		t.Errorf("addi = %v", neg)
	}
	hex := p.Code[p.PC("start")+1]
	if hex.Imm != 0x20 {
		t.Errorf("hex imm = %d", hex.Imm)
	}
}

func TestAssembleAllALUOps(t *testing.T) {
	src := `
    add r1, r2, r3
    sub r1, r2, r3
    and r1, r2, r3
    or r1, r2, r3
    xor r1, r2, r3
    shl r1, r2, r3
    shr r1, r2, r3
    mul r1, r2, r3
    div r1, r2, r3
    slt r1, r2, r3
    sltu r1, r2, r3
    addi r1, r2, 1
    subi r1, r2, 1
    andi r1, r2, 1
    ori r1, r2, 1
    xori r1, r2, 1
    shli r1, r2, 1
    shri r1, r2, 1
    muli r1, r2, 1
    slti r1, r2, 1
    sltui r1, r2, 1
    jr r5
    callr r5
    nop
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.MUL, isa.DIV, isa.SLT, isa.SLTU,
		isa.ADDI, isa.SUBI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI,
		isa.SHRI, isa.MULI, isa.SLTI, isa.SLTUI,
		isa.JR, isa.CALLR, isa.NOP, isa.HALT,
	}
	if p.Len() != len(wantOps) {
		t.Fatalf("len = %d, want %d", p.Len(), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Code[i].Op != op {
			t.Errorf("inst %d op = %v, want %v", i, p.Code[i].Op, op)
		}
	}
}

func TestAssembleAllConds(t *testing.T) {
	src := `
x:  br.eq r1, r2, x
    br.ne r1, r2, x
    br.lt r1, r2, x
    br.ge r1, r2, x
    br.le r1, r2, x
    br.gt r1, r2, x
    halt`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Cond{isa.EQ, isa.NE, isa.LT, isa.GE, isa.LE, isa.GT}
	for i, c := range want {
		if p.Code[i].Cond != c {
			t.Errorf("inst %d cond = %v, want %v", i, p.Code[i].Cond, c)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frob r1, r2, r3\nhalt",    // unknown mnemonic
		"add r1, r2\nhalt",         // wrong arity
		"addi r1, r2, xyz\nhalt",   // bad immediate
		"ld r1, r2\nhalt",          // bad mem operand
		"br.zz r1, r2, x\nx: halt", // bad condition
		"add r99, r1, r2\nhalt",    // bad register
		".word 1\nhalt",            // .word arity
		"jmp nowhere",              // undefined label -> panic in Build
	}
	for _, src := range bad {
		func() {
			defer func() { recover() }() // undefined-label panics count as failures too
			if _, err := Assemble(src); err == nil {
				t.Errorf("Assemble(%q) succeeded, want error", src)
			}
		}()
	}
}

func TestAssembleDisassembleStable(t *testing.T) {
	p := MustAssemble(asmSample)
	dis := p.Disassemble()
	for _, want := range []string{"start:", "loop:", "fn:", "end:", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestAssembleLabelOnSameLine(t *testing.T) {
	p := MustAssemble("x: li r1, 1\n y: halt")
	if p.PC("x") != 0 || p.PC("y") != 1 {
		t.Errorf("labels: x=%d y=%d", p.PC("x"), p.PC("y"))
	}
}

func TestAssembleSPAndLRNames(t *testing.T) {
	p := MustAssemble("addi sp, sp, -8\n st lr, (sp)\n halt")
	if p.Code[0].Dst != isa.SP || p.Code[0].Src1 != isa.SP {
		t.Errorf("sp parse: %v", p.Code[0])
	}
	if p.Code[1].Src2 != isa.LR {
		t.Errorf("lr parse: %v", p.Code[1])
	}
}
