package prog

import (
	"fmt"
	"strconv"
	"strings"

	"dmp/internal/isa"
)

// Assemble parses assembly text into a Program. The syntax mirrors the
// disassembly format:
//
//	; comment, or # comment
//	start:
//	    li   r1, 100
//	    add  r2, r1, r3
//	    ld   r4, 8(r2)
//	    st   r4, 0(r2)
//	    br.lt r1, r2, loop
//	    jmp  start
//	    call fn
//	    callr r5
//	    jr   r5
//	    ret
//	    halt
//	.word 4096 42        ; initial data memory: address value
//	.entry start         ; entry label (default: first instruction)
//
// Register names are r0..r31, zero, sp and lr. Branch/jump targets must be
// labels. Immediates accept decimal and 0x-hex.
func Assemble(src string) (*Program, error) {
	b := NewBuilder()
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := asmLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", ln+1, err)
		}
	}
	return b.Build()
}

// MustAssemble is Assemble that panics on error, for tests.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func asmLine(b *Builder, line string) error {
	for strings.Contains(line, ":") {
		i := strings.Index(line, ":")
		label := strings.TrimSpace(line[:i])
		if label == "" || strings.ContainsAny(label, " \t,") {
			return fmt.Errorf("bad label %q", label)
		}
		b.Label(label)
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		return nil
	}
	mn, rest, _ := strings.Cut(line, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	args := splitArgs(rest)

	switch {
	case mn == ".word":
		args = strings.Fields(strings.ReplaceAll(rest, ",", " "))
		if len(args) != 2 {
			return fmt.Errorf(".word wants addr value")
		}
		addr, err := parseImm(args[0])
		if err != nil {
			return err
		}
		val, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.Word(uint64(addr), uint64(val))
		return nil
	case mn == ".entry":
		if len(args) != 1 {
			return fmt.Errorf(".entry wants a label")
		}
		b.Entry(args[0])
		return nil
	}

	op3 := map[string]isa.Op{
		"add": isa.ADD, "sub": isa.SUB, "and": isa.AND, "or": isa.OR,
		"xor": isa.XOR, "shl": isa.SHL, "shr": isa.SHR, "mul": isa.MUL,
		"div": isa.DIV, "slt": isa.SLT, "sltu": isa.SLTU,
	}
	opI := map[string]isa.Op{
		"addi": isa.ADDI, "subi": isa.SUBI, "andi": isa.ANDI, "ori": isa.ORI,
		"xori": isa.XORI, "shli": isa.SHLI, "shri": isa.SHRI, "muli": isa.MULI,
		"slti": isa.SLTI, "sltui": isa.SLTUI,
	}

	switch {
	case op3[mn] != 0:
		d, s1, s2, err := regs3(args)
		if err != nil {
			return err
		}
		b.Op3(op3[mn], d, s1, s2)
	case opI[mn] != 0:
		if len(args) != 3 {
			return fmt.Errorf("%s wants 3 operands", mn)
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		b.OpI(opI[mn], d, s, imm)
	case mn == "li":
		if len(args) != 2 {
			return fmt.Errorf("li wants 2 operands")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.Li(d, imm)
	case mn == "mov":
		if len(args) != 2 {
			return fmt.Errorf("mov wants 2 operands")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Mov(d, s)
	case mn == "ld", mn == "st":
		if len(args) != 2 {
			return fmt.Errorf("%s wants reg, disp(base)", mn)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		disp, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		if mn == "ld" {
			b.Ld(r, base, disp)
		} else {
			b.St(r, base, disp)
		}
	case strings.HasPrefix(mn, "br."):
		cond, err := parseCond(mn[3:])
		if err != nil {
			return err
		}
		if len(args) != 3 {
			return fmt.Errorf("br wants 3 operands")
		}
		s1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Br(cond, s1, s2, args[2])
	case mn == "jmp":
		if len(args) != 1 {
			return fmt.Errorf("jmp wants a label")
		}
		b.Jmp(args[0])
	case mn == "jr":
		if len(args) != 1 {
			return fmt.Errorf("jr wants a register")
		}
		s, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Jr(s)
	case mn == "call":
		if len(args) != 1 {
			return fmt.Errorf("call wants a label")
		}
		b.Call(args[0])
	case mn == "callr":
		if len(args) != 1 {
			return fmt.Errorf("callr wants a register")
		}
		s, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Callr(s)
	case mn == "ret":
		b.Ret()
	case mn == "nop":
		b.Nop()
	case mn == "halt":
		b.Halt()
	default:
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	return nil
}

func splitArgs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}

func regs3(args []string) (d, s1, s2 isa.Reg, err error) {
	if len(args) != 3 {
		return 0, 0, 0, fmt.Errorf("want 3 register operands")
	}
	if d, err = parseReg(args[0]); err != nil {
		return
	}
	if s1, err = parseReg(args[1]); err != nil {
		return
	}
	s2, err = parseReg(args[2])
	return
}

func parseReg(s string) (isa.Reg, error) {
	switch strings.ToLower(s) {
	case "zero":
		return isa.Zero, nil
	case "sp":
		return isa.SP, nil
	case "lr":
		return isa.LR, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned literals too.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMem parses "disp(base)".
func parseMem(s string) (int64, isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	disp := int64(0)
	if open > 0 {
		var err error
		if disp, err = parseImm(s[:open]); err != nil {
			return 0, 0, err
		}
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	return disp, base, err
}

func parseCond(s string) (isa.Cond, error) {
	switch s {
	case "eq":
		return isa.EQ, nil
	case "ne":
		return isa.NE, nil
	case "lt":
		return isa.LT, nil
	case "ge":
		return isa.GE, nil
	case "le":
		return isa.LE, nil
	case "gt":
		return isa.GT, nil
	}
	return 0, fmt.Errorf("bad condition %q", s)
}
