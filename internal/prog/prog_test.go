package prog

import (
	"strings"
	"testing"

	"dmp/internal/isa"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Li(1, 10)
	b.Li(2, 20)
	b.Add(3, 1, 2)
	b.Br(isa.EQ, 3, isa.Zero, "end")
	b.St(3, isa.Zero, 0x100)
	b.Label("end")
	b.Halt()
	p := b.MustBuild()

	if p.Len() != 6 {
		t.Fatalf("Len = %d, want 6", p.Len())
	}
	if p.PC("start") != 0 || p.PC("end") != 5 {
		t.Errorf("labels wrong: start=%d end=%d", p.PC("start"), p.PC("end"))
	}
	if p.Code[3].Target != 5 {
		t.Errorf("branch target = %d, want 5", p.Code[3].Target)
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0", p.Entry)
	}
}

func TestBuilderForwardAndBackwardRefs(t *testing.T) {
	b := NewBuilder()
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Br(isa.LT, 1, 2, "loop") // backward
	b.Jmp("done")              // forward
	b.Nop()
	b.Label("done")
	b.Halt()
	p := b.MustBuild()
	if p.Code[1].Target != 0 {
		t.Errorf("backward target = %d, want 0", p.Code[1].Target)
	}
	if p.Code[2].Target != 4 {
		t.Errorf("forward target = %d, want 4", p.Code[2].Target)
	}
}

func TestBuilderEntry(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Label("main")
	b.Halt()
	b.Entry("main")
	p := b.MustBuild()
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1", p.Entry)
	}
}

func TestBuilderPanicsOnDuplicateLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
}

func TestBuilderPanicsOnUndefinedLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undefined label did not panic")
		}
	}()
	b := NewBuilder()
	b.Jmp("nowhere")
	b.Halt()
	b.Build() //nolint:errcheck
}

func TestBuilderPanicsOnDoubleBuild(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Error("double Build did not panic")
		}
	}()
	b.Build() //nolint:errcheck
}

func TestValidateRejectsNoHalt(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	if _, err := b.Build(); err == nil {
		t.Error("program without HALT validated")
	}
}

func TestProgramAtOutsideCode(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	p := b.MustBuild()
	if got := p.At(100); got.Op != isa.HALT {
		t.Errorf("At(100) = %v, want HALT", got)
	}
	if p.InCode(100) {
		t.Error("InCode(100) = true")
	}
	if !p.InCode(0) {
		t.Error("InCode(0) = false")
	}
}

func TestDataWords(t *testing.T) {
	p := New()
	p.SetWord(0x103, 42) // unaligned, rounds down
	if p.Word(0x100) != 42 {
		t.Errorf("Word(0x100) = %d, want 42", p.Word(0x100))
	}
	b := NewBuilder()
	b.Words(0x200, 1, 2, 3)
	b.Halt()
	pp := b.MustBuild()
	for i, want := range []uint64{1, 2, 3} {
		if got := pp.Word(0x200 + uint64(i)*8); got != want {
			t.Errorf("word %d = %d, want %d", i, got, want)
		}
	}
}

func TestMarkDiverge(t *testing.T) {
	b := NewBuilder()
	b.Li(1, 1)
	brPC := b.Br(isa.NE, 1, isa.Zero, "end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p := b.MustBuild()

	p.MarkDiverge(brPC, &Diverge{CFMs: []uint64{p.PC("end")}, Class: ClassSimpleHammock})
	d := p.DivergeAt(brPC)
	if d == nil || d.CFMs[0] != 3 {
		t.Fatalf("DivergeAt = %+v", d)
	}
	if pcs := p.DivergePCs(); len(pcs) != 1 || pcs[0] != brPC {
		t.Errorf("DivergePCs = %v", pcs)
	}
	p.ClearDiverge()
	if p.DivergeAt(brPC) != nil {
		t.Error("ClearDiverge did not clear")
	}
}

func TestMarkDivergePanicsOnNonBranch(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Halt()
	p := b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Error("MarkDiverge on NOP did not panic")
		}
	}()
	p.MarkDiverge(0, &Diverge{CFMs: []uint64{1}})
}

func TestDisassembleContainsLabels(t *testing.T) {
	b := NewBuilder()
	b.Label("entry")
	b.Li(1, 5)
	b.Halt()
	p := b.MustBuild()
	dis := p.Disassemble()
	if !strings.Contains(dis, "entry:") || !strings.Contains(dis, "li r1, 5") {
		t.Errorf("Disassemble missing content:\n%s", dis)
	}
}

func TestBranchClassString(t *testing.T) {
	if ClassSimpleHammock.String() != "simple-hammock" ||
		ClassComplexDiverge.String() != "complex-diverge" ||
		ClassOther.String() != "other" {
		t.Error("BranchClass strings wrong")
	}
}
