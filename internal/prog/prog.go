// Package prog represents programs for the DMP simulator: the instruction
// image, initial data memory, and the compiler-provided annotations that
// drive dynamic predication (diverge branches and their control-flow merge
// points, Section 2 of the paper).
//
// Programs are constructed either with the Builder (a label-based
// assembler API used by the synthetic workloads) or parsed from assembly
// text with Assemble. Static control-flow analysis (basic blocks,
// dominators, simple-hammock detection) lives in cfg.go.
package prog

import (
	"fmt"
	"sort"

	"dmp/internal/isa"
)

// BranchClass classifies a conditional branch for Figure 6 of the paper.
type BranchClass uint8

const (
	// ClassOther is a branch that is neither kind of diverge branch
	// ("other complex" in the paper): no suitable CFM point was found.
	ClassOther BranchClass = iota
	// ClassSimpleHammock is a diverge branch whose control flow is a
	// simple if or if-else with no other control flow inside. These are
	// the only branches Dynamic Hammock Predication can handle.
	ClassSimpleHammock
	// ClassComplexDiverge is a diverge branch with complex control flow
	// between the branch and its CFM point.
	ClassComplexDiverge
)

func (c BranchClass) String() string {
	switch c {
	case ClassSimpleHammock:
		return "simple-hammock"
	case ClassComplexDiverge:
		return "complex-diverge"
	default:
		return "other"
	}
}

// Diverge is the compiler annotation attached to a diverge branch: the
// control-flow merge points selected from frequently executed paths, the
// branch class, and the compiler-selected early-exit threshold (Section
// 2.7.2: the number of alternate-path instructions to fetch before giving
// up on reaching the CFM point).
type Diverge struct {
	// CFMs lists candidate control-flow merge points, most frequent
	// first. The basic DMP uses only CFMs[0]; the multiple-CFM-point
	// enhancement (Section 2.7.1) compares fetch addresses against all of
	// them.
	CFMs []uint64
	// Class records whether the hammock formed by the branch is simple.
	Class BranchClass
	// ExitThreshold is the compiler-selected early-exit instruction count
	// for the alternate path. Zero means "use the machine default".
	ExitThreshold int
	// Loop marks a diverge loop branch (Section 2.7.4): a backward branch
	// whose "hammock" is one loop iteration.
	Loop bool
}

// Program is a loaded program: code, initial data, and annotations.
type Program struct {
	Code   []isa.Inst
	Labels map[string]uint64 // label name -> PC
	// Data holds the initial contents of data memory as 8-byte words,
	// keyed by word-aligned byte address.
	Data map[uint64]uint64
	// Diverge maps the PC of a marked diverge branch to its annotation.
	// It is populated by the profiling pass (internal/profile) or by hand
	// in tests.
	Diverge map[uint64]*Diverge
	// Entry is the PC of the first instruction to execute.
	Entry uint64
	// StackBase is the initial stack pointer value (stacks grow down).
	StackBase uint64
}

// New returns an empty program with initialised maps.
func New() *Program {
	return &Program{
		Labels:    map[string]uint64{},
		Data:      map[uint64]uint64{},
		Diverge:   map[uint64]*Diverge{},
		StackBase: 1 << 20,
	}
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// At returns the instruction at pc, or a HALT if pc is outside the code
// image (wrong-path fetch can run off the end of the program).
func (p *Program) At(pc uint64) isa.Inst {
	if pc < uint64(len(p.Code)) {
		return p.Code[pc]
	}
	return isa.Inst{Op: isa.HALT}
}

// InCode reports whether pc addresses a real instruction.
func (p *Program) InCode(pc uint64) bool { return pc < uint64(len(p.Code)) }

// PC returns the address of a label and panics if it is not defined.
func (p *Program) PC(label string) uint64 {
	pc, ok := p.Labels[label]
	if !ok {
		panic(fmt.Sprintf("prog: undefined label %q", label))
	}
	return pc
}

// SetWord sets an initial data-memory word at the given byte address
// (rounded down to 8 bytes).
func (p *Program) SetWord(addr, val uint64) { p.Data[addr&^7] = val }

// Word returns the initial value of a data word.
func (p *Program) Word(addr uint64) uint64 { return p.Data[addr&^7] }

// MarkDiverge attaches a diverge annotation to the branch at pc. It
// panics if pc is not a conditional branch, since marking anything else
// indicates a broken compiler pass.
func (p *Program) MarkDiverge(pc uint64, d *Diverge) {
	if !p.InCode(pc) || p.Code[pc].Op != isa.BR {
		panic(fmt.Sprintf("prog: MarkDiverge(%d): not a conditional branch", pc))
	}
	if len(d.CFMs) == 0 {
		panic("prog: MarkDiverge: no CFM points")
	}
	p.Diverge[pc] = d
}

// DivergeAt returns the diverge annotation for the branch at pc, or nil.
func (p *Program) DivergeAt(pc uint64) *Diverge { return p.Diverge[pc] }

// ClearDiverge removes all diverge annotations (used when re-profiling).
func (p *Program) ClearDiverge() { p.Diverge = map[uint64]*Diverge{} }

// DivergePCs returns the annotated branch PCs in ascending order.
func (p *Program) DivergePCs() []uint64 {
	pcs := make([]uint64, 0, len(p.Diverge))
	for pc := range p.Diverge {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// Validate checks static well-formedness: all direct control-flow targets
// must land inside the code image, the program must contain a HALT, the
// entry must be in range, and the last instruction must not fall through
// off the end of the image (it must be an unconditional transfer or
// HALT, so no execution path runs past the last PC).
func (p *Program) Validate() error {
	halted := false
	for pc, in := range p.Code {
		switch in.Op {
		case isa.BR, isa.JMP, isa.CALL:
			if in.Target >= uint64(len(p.Code)) {
				return fmt.Errorf("prog: pc %d: %v targets %d outside code (len %d)",
					pc, in, in.Target, len(p.Code))
			}
		case isa.HALT:
			halted = true
		}
		if !in.Op.Valid() {
			return fmt.Errorf("prog: pc %d: invalid opcode %d", pc, uint8(in.Op))
		}
	}
	if !halted {
		return fmt.Errorf("prog: no HALT instruction")
	}
	if p.Entry >= uint64(len(p.Code)) {
		return fmt.Errorf("prog: entry %d outside code", p.Entry)
	}
	if last := p.Code[len(p.Code)-1]; !endsBlock(last.Op) {
		return fmt.Errorf("prog: last instruction %v falls through off the end of the code image", last)
	}
	return nil
}

// endsBlock reports whether op never falls through to pc+1.
func endsBlock(op isa.Op) bool {
	switch op {
	case isa.JMP, isa.JR, isa.RET, isa.HALT:
		return true
	}
	return false
}

// Disassemble renders the program as assembly text with labels.
func (p *Program) Disassemble() string {
	byPC := map[uint64][]string{}
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	out := ""
	for pc, in := range p.Code {
		names := byPC[uint64(pc)]
		sort.Strings(names)
		for _, n := range names {
			out += n + ":\n"
		}
		out += fmt.Sprintf("%6d\t%v\n", pc, in)
	}
	return out
}
