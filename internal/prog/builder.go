package prog

import (
	"fmt"

	"dmp/internal/isa"
)

// Builder assembles a Program through a label-based API. Branch and jump
// targets are given as label names and resolved when Build is called, so
// forward references are fine. Workload generators drive the Builder from
// ordinary Go loops.
type Builder struct {
	p      *Program
	fixups []fixup
	built  bool
}

type fixup struct {
	pc    uint64
	label string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{p: New()}
}

// Label defines a label at the current PC. Defining the same label twice
// panics.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.p.Labels[name]; dup {
		panic(fmt.Sprintf("prog: duplicate label %q", name))
	}
	b.p.Labels[name] = b.here()
	return b
}

// Here returns the PC of the next instruction to be emitted.
func (b *Builder) Here() uint64 { return b.here() }

func (b *Builder) here() uint64 { return uint64(len(b.p.Code)) }

func (b *Builder) emit(in isa.Inst) uint64 {
	pc := b.here()
	b.p.Code = append(b.p.Code, in)
	return pc
}

func (b *Builder) emitTo(in isa.Inst, label string) uint64 {
	pc := b.emit(in)
	b.fixups = append(b.fixups, fixup{pc, label})
	return pc
}

// --- ALU ---

// Op3 emits a three-register ALU instruction.
func (b *Builder) Op3(op isa.Op, d, s1, s2 isa.Reg) *Builder {
	b.emit(isa.Inst{Op: op, Dst: d, Src1: s1, Src2: s2})
	return b
}

// OpI emits a register-immediate ALU instruction.
func (b *Builder) OpI(op isa.Op, d, s1 isa.Reg, imm int64) *Builder {
	b.emit(isa.Inst{Op: op, Dst: d, Src1: s1, Imm: imm})
	return b
}

func (b *Builder) Add(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.ADD, d, s1, s2) }
func (b *Builder) Sub(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.SUB, d, s1, s2) }
func (b *Builder) And(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.AND, d, s1, s2) }
func (b *Builder) Or(d, s1, s2 isa.Reg) *Builder   { return b.Op3(isa.OR, d, s1, s2) }
func (b *Builder) Xor(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.XOR, d, s1, s2) }
func (b *Builder) Mul(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.MUL, d, s1, s2) }
func (b *Builder) Div(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.DIV, d, s1, s2) }
func (b *Builder) Shl(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.SHL, d, s1, s2) }
func (b *Builder) Shr(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.SHR, d, s1, s2) }
func (b *Builder) Slt(d, s1, s2 isa.Reg) *Builder  { return b.Op3(isa.SLT, d, s1, s2) }
func (b *Builder) Sltu(d, s1, s2 isa.Reg) *Builder { return b.Op3(isa.SLTU, d, s1, s2) }

func (b *Builder) Addi(d, s isa.Reg, imm int64) *Builder { return b.OpI(isa.ADDI, d, s, imm) }
func (b *Builder) Subi(d, s isa.Reg, imm int64) *Builder { return b.OpI(isa.SUBI, d, s, imm) }
func (b *Builder) Andi(d, s isa.Reg, imm int64) *Builder { return b.OpI(isa.ANDI, d, s, imm) }
func (b *Builder) Ori(d, s isa.Reg, imm int64) *Builder  { return b.OpI(isa.ORI, d, s, imm) }
func (b *Builder) Xori(d, s isa.Reg, imm int64) *Builder { return b.OpI(isa.XORI, d, s, imm) }
func (b *Builder) Shli(d, s isa.Reg, imm int64) *Builder { return b.OpI(isa.SHLI, d, s, imm) }
func (b *Builder) Shri(d, s isa.Reg, imm int64) *Builder { return b.OpI(isa.SHRI, d, s, imm) }
func (b *Builder) Muli(d, s isa.Reg, imm int64) *Builder { return b.OpI(isa.MULI, d, s, imm) }
func (b *Builder) Slti(d, s isa.Reg, imm int64) *Builder { return b.OpI(isa.SLTI, d, s, imm) }

// Li loads a 64-bit immediate.
func (b *Builder) Li(d isa.Reg, imm int64) *Builder {
	b.emit(isa.Inst{Op: isa.LI, Dst: d, Imm: imm})
	return b
}

// Mov copies a register (encoded as ADDI d, s, 0).
func (b *Builder) Mov(d, s isa.Reg) *Builder { return b.Addi(d, s, 0) }

// --- memory ---

// Ld emits a load: d = mem[base+disp].
func (b *Builder) Ld(d, base isa.Reg, disp int64) *Builder {
	b.emit(isa.Inst{Op: isa.LD, Dst: d, Src1: base, Imm: disp})
	return b
}

// St emits a store: mem[base+disp] = src.
func (b *Builder) St(src, base isa.Reg, disp int64) *Builder {
	b.emit(isa.Inst{Op: isa.ST, Src1: base, Src2: src, Imm: disp})
	return b
}

// --- control ---

// Br emits a conditional branch to a label. It returns the branch PC so
// tests can refer to it.
func (b *Builder) Br(c isa.Cond, s1, s2 isa.Reg, label string) uint64 {
	return b.emitTo(isa.Inst{Op: isa.BR, Cond: c, Src1: s1, Src2: s2}, label)
}

// Brz branches to label if s is zero (compares against the zero register).
func (b *Builder) Brz(s isa.Reg, label string) uint64 {
	return b.Br(isa.EQ, s, isa.Zero, label)
}

// Brnz branches to label if s is non-zero.
func (b *Builder) Brnz(s isa.Reg, label string) uint64 {
	return b.Br(isa.NE, s, isa.Zero, label)
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) *Builder {
	b.emitTo(isa.Inst{Op: isa.JMP}, label)
	return b
}

// Jr emits an indirect jump through a register.
func (b *Builder) Jr(s isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.JR, Src1: s})
	return b
}

// Call emits a direct call to a label, linking into LR.
func (b *Builder) Call(label string) *Builder {
	b.emitTo(isa.Inst{Op: isa.CALL, Dst: isa.LR}, label)
	return b
}

// Callr emits an indirect call through a register, linking into LR.
func (b *Builder) Callr(s isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.CALLR, Dst: isa.LR, Src1: s})
	return b
}

// Ret emits a return through LR.
func (b *Builder) Ret() *Builder {
	b.emit(isa.Inst{Op: isa.RET, Src1: isa.LR})
	return b
}

// RetVia emits a return through an arbitrary register.
func (b *Builder) RetVia(s isa.Reg) *Builder {
	b.emit(isa.Inst{Op: isa.RET, Src1: s})
	return b
}

// Nop emits a NOP.
func (b *Builder) Nop() *Builder {
	b.emit(isa.Inst{Op: isa.NOP})
	return b
}

// Halt emits a HALT.
func (b *Builder) Halt() *Builder {
	b.emit(isa.Inst{Op: isa.HALT})
	return b
}

// --- data ---

// Word sets an initial data-memory word.
func (b *Builder) Word(addr, val uint64) *Builder {
	b.p.SetWord(addr, val)
	return b
}

// Words lays out consecutive 8-byte words starting at addr.
func (b *Builder) Words(addr uint64, vals ...uint64) *Builder {
	for i, v := range vals {
		b.p.SetWord(addr+uint64(i)*8, v)
	}
	return b
}

// Entry sets the entry label (default: PC 0).
func (b *Builder) Entry(label string) *Builder {
	b.fixups = append(b.fixups, fixup{^uint64(0), label})
	return b
}

// Build resolves all label references and returns the finished program.
// It panics on undefined labels and returns Validate's error, since a
// malformed program is a bug in the generator, not a runtime condition.
func (b *Builder) Build() (*Program, error) {
	if b.built {
		panic("prog: Build called twice")
	}
	b.built = true
	for _, f := range b.fixups {
		pc, ok := b.p.Labels[f.label]
		if !ok {
			panic(fmt.Sprintf("prog: undefined label %q", f.label))
		}
		if f.pc == ^uint64(0) {
			b.p.Entry = pc
			continue
		}
		b.p.Code[f.pc].Target = pc
	}
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build that panics on error, for tests and generators.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
