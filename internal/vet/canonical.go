package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

// Canonical guards the result-cache key: core.Config.Canonical() is the
// normalization that decides which configurations share a cached
// simulation, so a Config field it silently ignores is a latent cache
// aliasing bug — either the new field needs folding/spelling-out logic,
// or it is a pass-through key component and the author must say so. The
// analyzer requires every field of the receiver struct of a
// Canonical() method to be mentioned in the method body (read or
// assigned; pass-through fields ride along in the returned copy either
// way) or be named in a waiver directive:
//
//	//dmp:nocanon FieldA FieldB -- reason
var Canonical = &Analyzer{
	Name:     "canonical",
	Doc:      "every Config field must be handled in Canonical() or carry a //dmp:nocanon waiver",
	Packages: []string{"dmp/internal/core"},
	Run:      runCanonical,
}

func runCanonical(pass *Pass) {
	waived := nocanonFields(pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Canonical" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := recvNamed(pass.Info, fd)
			if recv == nil {
				continue
			}
			st, ok := recv.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			mentioned := fieldMentions(pass.Info, fd.Body, recv)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if mentioned[f.Name()] || waived[f.Name()] {
					continue
				}
				pass.Reportf(f.Pos(),
					"field %s is not handled in %s.Canonical(): normalize it there or waive it with //dmp:nocanon %s -- reason",
					f.Name(), recv.Obj().Name(), f.Name())
			}
		}
	}
}

// recvNamed resolves a method's receiver to its named type (through one
// level of pointer), or nil.
func recvNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldMentions collects the names of recv's fields selected anywhere in
// body — reads and writes both count: a field the method assigns is
// being normalized, a field it reads informs the normalization, and a
// field it does neither with is exactly the hazard being flagged.
func fieldMentions(info *types.Info, body *ast.BlockStmt, recv *types.Named) map[string]bool {
	mentioned := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		t := s.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == recv.Obj() {
			mentioned[sel.Sel.Name] = true
		}
		return true
	})
	return mentioned
}

// nocanonFields collects every field name waived by a
// "//dmp:nocanon Field... -- reason" directive in the package.
func nocanonFields(files []*ast.File) map[string]bool {
	const directive = "//dmp:nocanon"
	out := map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				rest := c.Text[len(directive):]
				if reason := strings.Index(rest, "--"); reason >= 0 {
					rest = rest[:reason]
				}
				for _, name := range strings.Fields(rest) {
					out[strings.Trim(name, ",")] = true
				}
			}
		}
	}
	return out
}
