// Package frozen is a dmpvet test fixture seeding frozenstats
// violations: mutations of shared core.Stats without a Clone() origin.
package frozen

import "dmp/internal/core"

// bad mutates a caller-owned (possibly cache-frozen) Stats in place.
func bad(st *core.Stats) {
	st.Cycles++          // want "Clone"
	st.RetiredInsts = 3  // want "Clone"
	st.ExitCases[0] += 2 // want "Clone"
}

type result struct {
	shared *core.Stats
	frozen core.Stats
}

// badIndirect writes through field and element expressions.
func badIndirect(r *result, all []*core.Stats) {
	r.shared.Flushes++  // want "clone"
	r.frozen.Cycles = 1 // want "clone"
	all[0].Cycles++     // want "clone"
}

// good derives private copies first.
func good(st *core.Stats) uint64 {
	c := st.Clone()
	c.Cycles++ // ok: clone origin
	fresh := &core.Stats{}
	fresh.Flushes++ // ok: fresh construction
	n := new(core.Stats)
	n.Cycles = 7 // ok: new()
	var local core.Stats
	local.Cycles++ // ok: value copy
	return c.Cycles + fresh.Flushes + n.Cycles + local.Cycles
}

// waived shows the //dmp:allow escape hatch.
func waived(st *core.Stats) {
	st.Cycles++ //dmp:allow frozenstats -- fixture for the suppression test
}

var _ = bad
var _ = badIndirect
var _ = good
var _ = waived
