// Package canon is the fixture for the canonical analyzer.
package canon

// Config mimics core.Config: some fields are normalized in Canonical,
// some are waived pass-through key components, and some are silently
// ignored — the bug class the analyzer exists to catch.
type Config struct {
	Mode  int
	Name  string
	Width int
	Depth int  // want "field Depth is not handled in Config.Canonical"
	debug bool // want "field debug is not handled in Config.Canonical"
}

// Canonical normalizes Name and folds Mode; Width is waived below; Depth
// and debug are forgotten.
//
//dmp:nocanon Width -- pass-through key component: distinct widths are distinct simulations
func (c Config) Canonical() Config {
	if c.Name == "" {
		c.Name = "default"
	}
	if c.Mode > 3 {
		c.Mode = 0
	}
	return c
}

// Plain has no Canonical method, so the analyzer requires nothing of it.
type Plain struct{ X, Y int }

// Ptr exercises the pointer-receiver form: every field is mentioned
// (reads and writes both count), so it is clean.
type Ptr struct {
	A int
	B int
}

// Canonical with a pointer receiver; A is read, B is written.
func (p *Ptr) Canonical() Ptr {
	q := *p
	if q.A > 0 {
		q.B = 0
	}
	return q
}
