// Package nondet is a dmpvet test fixture seeding nondeterminism
// violations: wall-clock reads, math/rand and order-sensitive map
// iteration.
package nondet

import (
	"fmt"
	"math/rand" // want "math/rand"
	"time"
)

func clock() time.Duration {
	t0 := time.Now()      // want "time.Now"
	return time.Since(t0) // want "time.Since"
}

func spill(m map[int]int) []int {
	var out []int
	for k := range m { // want "append"
		out = append(out, k)
	}
	return out
}

func each(m map[int]int, fn func(int)) {
	for k := range m { // want "function value"
		fn(k)
	}
}

func show(m map[int]int) {
	for k, v := range m { // want "fmt output"
		fmt.Println(k, v)
	}
}

func send(m map[int]int, ch chan int) {
	for k := range m { // want "channel send"
		ch <- k
	}
}

// sum is commutative: map order cannot change the result.
func sum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// invert only writes another map: order-insensitive.
func invert(m map[int]int) map[int]int {
	out := map[int]int{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

var _ = rand.Int
var _ = clock
var _ = spill
var _ = each
var _ = show
var _ = send
var _ = sum
var _ = invert
