// Package hotpath is a dmpvet test fixture seeding hotalloc violations:
// sorting and per-cycle allocation in pipeline code.
package hotpath

import "sort"

func sorter(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "sort-free"
}

// step models one pipeline cycle.
//
//dmp:hotpath
func step(buf []uint64) []uint64 {
	tmp := make([]uint64, 4)         // want "make"
	box := &struct{ a, b int }{1, 2} // want "composite literal"
	xs := []int{1, 2, 3}             // want "composite literal"
	idx := map[int]bool{1: true}     // want "composite literal"
	hook := func() {}                // want "closure"
	hook()
	pair := struct{ a, b int }{3, 4} // ok: value literal stays on the stack
	_, _, _, _ = box, xs, idx, pair
	return append(buf, tmp...)
}

// cold runs once at construction time; allocation is fine.
func cold() []int {
	return make([]int, 8)
}

var _ = sorter
var _ = step
var _ = cold
