// Package hotpath is a dmpvet test fixture seeding hotalloc violations:
// sorting and per-cycle allocation in pipeline code.
package hotpath

import "sort"

func sorter(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "sort-free"
}

// step models one pipeline cycle.
//
//dmp:hotpath
func step(buf []uint64) []uint64 {
	tmp := make([]uint64, 4)         // want "make"
	box := &struct{ a, b int }{1, 2} // want "composite literal"
	xs := []int{1, 2, 3}             // want "composite literal"
	idx := map[int]bool{1: true}     // want "composite literal"
	hook := func() {}                // want "closure"
	hook()
	pair := struct{ a, b int }{3, 4} // ok: value literal stays on the stack
	_, _, _, _ = box, xs, idx, pair
	return append(buf, tmp...)
}

// cold runs once at construction time; allocation is fine.
func cold() []int {
	return make([]int, 8)
}

// machine models the probe hook pattern: emission from a hot-path
// function must sit inside an `if <recv>.probe != nil` guard.
type machine struct{ probe *int }

func (m *machine) probeEmit(v int) {}

// guardedHooks is per-cycle code with correctly guarded probe hooks,
// including a compound condition.
//
//dmp:hotpath
func (m *machine) guardedHooks(v int) {
	if m.probe != nil {
		m.probeEmit(v)
	}
	if m.probe != nil && v > 0 {
		m.probeEmit(v + 1)
	}
}

// unguardedHook emits without the nil guard: with a probe detached this
// still pays a call per cycle.
//
//dmp:hotpath
func (m *machine) unguardedHook(v int) {
	m.probeEmit(v) // want "unguarded"
	if v > 0 {
		m.probeEmit(v) // want "unguarded"
	}
}

// coldHook is not hot-path code; unguarded emission is fine.
func (m *machine) coldHook(v int) {
	m.probeEmit(v)
}

var _ = sorter
var _ = step
var _ = cold
