// Package telem is a dmpvet test fixture seeding hotalloc's telemetry
// rule: in hot-path functions the atomic metric ops pass unguarded,
// while span/feed emission must sit inside an `if x != nil` guard.
package telem

import (
	"time"

	"dmp/internal/telemetry"
)

var (
	count = telemetry.NewCounter("telem_fixture_total", "fixture counter")
	depth = telemetry.NewGauge("telem_fixture_depth", "fixture gauge")
	lat   = telemetry.NewHistogram("telem_fixture_seconds", "fixture histogram", telemetry.SecondsBuckets())
)

// hot models a per-cycle consumer loop body with telemetry emission.
//
//dmp:hotpath
func hot(tr *telemetry.Tracer, sp *telemetry.Span, parent uint64, start time.Time, v float64) {
	count.Inc()     // ok: atomic metric op
	count.Add(2)    // ok
	depth.Set(1)    // ok
	depth.Add(-1)   // ok
	lat.Observe(v)  // ok
	_ = lat.Count() // want "unguarded telemetry.Count"
	sp.End()        // want "unguarded telemetry.End"
	if tr != nil {
		tr.SpanAt("job", "fixture", start, time.Second, parent) // ok: nil-guarded
	}
	if tr != nil && v > 0 {
		tr.SpanAt("job", "fixture", start, time.Second, parent) // ok: compound nil guard
	}
	tr.SpanAt("job", "fixture", start, time.Second, parent) // want "unguarded telemetry.SpanAt"
}

// cold runs outside the per-cycle path; unguarded emission is fine.
func cold(sp *telemetry.Span) {
	sp.End()
	telemetry.Emit(telemetry.Event{Kind: "progress"})
}

var (
	_ = hot
	_ = cold
)
