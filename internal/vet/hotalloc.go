package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func kindWord(t types.Type) string {
	if _, ok := t.(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// HotAlloc guards the per-cycle pipeline loop of internal/core against
// the costs PR 1 removed:
//
//   - any sort.Slice/SliceStable/Sort/Stable call in the package — the
//     scheduler is sort-free by design (age order falls out of the
//     ready-queue discipline);
//   - heap allocation inside functions whose doc comment carries a
//     `//dmp:hotpath` directive: make, new, composite literals and
//     closures all allocate (or force escapes) on every cycle.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "flag sorting and per-cycle allocation reintroduced into the pipeline loop",
	Packages: []string{"dmp/internal/core"},
	Run:      runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
				return true
			}
			switch fn.Name() {
			case "Slice", "SliceStable", "Sort", "Stable":
				pass.Reportf(call.Pos(),
					"sort.%s in internal/core: the pipeline is sort-free by design; use the scheduling-queue discipline", fn.Name())
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd.Doc) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

// isHotPath reports whether a function's doc comment carries the
// //dmp:hotpath directive.
func isHotPath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//dmp:hotpath") {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	reported := map[*ast.CompositeLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			// &T{...}: the literal escapes to the heap.
			if lit, ok := x.X.(*ast.CompositeLit); ok && x.Op == token.AND {
				pass.Reportf(x.Pos(),
					"address-taken composite literal in hot-path function %s allocates per cycle", name)
				reported[lit] = true
			}
		case *ast.CompositeLit:
			// A plain value-struct literal stays on the stack; only
			// slice and map literals inherently allocate.
			if reported[x] {
				return true
			}
			if t := pass.Info.Types[x].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(x.Pos(),
						"%s composite literal in hot-path function %s allocates per cycle",
						kindWord(t.Underlying()), name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(),
				"closure in hot-path function %s allocates per cycle", name)
			return false // its body is not per-cycle straight-line code
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
				if _, isBuiltin := identObj(pass.Info, id).(*types.Builtin); isBuiltin {
					pass.Reportf(x.Pos(),
						"%s in hot-path function %s allocates per cycle", id.Name, name)
				}
			}
		}
		return true
	})
}
