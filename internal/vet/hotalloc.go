package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func kindWord(t types.Type) string {
	if _, ok := t.(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// HotAlloc guards the per-cycle pipeline loop of internal/core (and the
// internal/obs sinks that ride it) against the costs PR 1 removed:
//
//   - any sort.Slice/SliceStable/Sort/Stable call in the package — the
//     scheduler is sort-free by design (age order falls out of the
//     ready-queue discipline);
//   - heap allocation inside functions whose doc comment carries a
//     `//dmp:hotpath` directive: make, new, composite literals and
//     closures all allocate (or force escapes) on every cycle;
//   - probe hook emission (a call to a probe* method) in a hot-path
//     function outside an `if <recv>.probe != nil` guard: the
//     observability contract is that a detached probe costs one pointer
//     compare per hook site, which only holds if every site is guarded;
//   - telemetry emission in a hot-path function that is neither one of
//     the lock-free metric methods (Inc/Add/Set/Observe/Value — always
//     allocation-free, safe at any rate) nor inside an `if x != nil`
//     guard: spans and feed events allocate and take locks, so hot
//     loops may only reach them behind a nil check that is false when
//     telemetry is detached.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag sorting, per-cycle allocation, and unguarded probe/telemetry emission in the pipeline loop",
	Packages: []string{"dmp/internal/core", "dmp/internal/obs", "dmp/internal/merge", "dmp/internal/cow",
		"dmp/internal/sample", "dmp/internal/telemetry", "dmp/internal/sched", "dmp/internal/store"},
	Run: runHotAlloc,
}

// telemetryHotSafe lists the telemetry calls allowed unguarded in
// hot-path functions: the atomic metric operations, which are
// lock-free and allocation-free by construction (pinned by
// TestMetricsAllocationFree). Everything else — spans, feed events,
// snapshots — must hide behind a nil guard.
var telemetryHotSafe = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Observe": true, "Value": true,
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
				return true
			}
			switch fn.Name() {
			case "Slice", "SliceStable", "Sort", "Stable":
				pass.Reportf(call.Pos(),
					"sort.%s in internal/core: the pipeline is sort-free by design; use the scheduling-queue discipline", fn.Name())
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd.Doc) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

// isHotPath reports whether a function's doc comment carries the
// //dmp:hotpath directive.
func isHotPath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//dmp:hotpath") {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	reported := map[*ast.CompositeLit]bool{}
	guarded := probeGuardedRanges(fd.Body)
	nilGuarded := nilGuardedRanges(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			// &T{...}: the literal escapes to the heap.
			if lit, ok := x.X.(*ast.CompositeLit); ok && x.Op == token.AND {
				pass.Reportf(x.Pos(),
					"address-taken composite literal in hot-path function %s allocates per cycle", name)
				reported[lit] = true
			}
		case *ast.CompositeLit:
			// A plain value-struct literal stays on the stack; only
			// slice and map literals inherently allocate.
			if reported[x] {
				return true
			}
			if t := pass.Info.Types[x].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(x.Pos(),
						"%s composite literal in hot-path function %s allocates per cycle",
						kindWord(t.Underlying()), name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(),
				"closure in hot-path function %s allocates per cycle", name)
			return false // its body is not per-cycle straight-line code
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
				if _, isBuiltin := identObj(pass.Info, id).(*types.Builtin); isBuiltin {
					pass.Reportf(x.Pos(),
						"%s in hot-path function %s allocates per cycle", id.Name, name)
				}
			}
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok &&
				strings.HasPrefix(sel.Sel.Name, "probe") && !inRanges(guarded, x.Pos()) {
				pass.Reportf(x.Pos(),
					"unguarded %s call in hot-path function %s: wrap the hook in `if <recv>.probe != nil` so the detached probe stays branch-only",
					sel.Sel.Name, name)
			}
			if fn := calleeFunc(pass.Info, x); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "dmp/internal/telemetry" &&
				!telemetryHotSafe[fn.Name()] && !inRanges(nilGuarded, x.Pos()) {
				pass.Reportf(x.Pos(),
					"unguarded telemetry.%s call in hot-path function %s: only the atomic metric ops (Inc/Add/Set/Observe/Value) may run unguarded; wrap emission in an `if x != nil` guard",
					fn.Name(), name)
			}
		}
		return true
	})
}

// span is a half-open source range.
type span struct{ lo, hi token.Pos }

func inRanges(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	return false
}

// probeGuardedRanges collects the bodies of if statements whose
// condition (or any conjunct of it) compares a `.probe` selector against
// nil — the ranges inside which probe hook emission is allowed.
func probeGuardedRanges(body *ast.BlockStmt) []span {
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if ok && condChecksProbe(ifs.Cond) {
			spans = append(spans, span{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return spans
}

// nilGuardedRanges collects the bodies of if statements whose
// condition (or any conjunct of it) compares anything against nil with
// != — the ranges inside which guarded telemetry emission is allowed.
// It is deliberately looser than probeGuardedRanges: any nil check
// counts, because the emission site names the guarded pointer itself
// (`if pl.tr != nil { pl.tr.SpanAt(...) }`).
func nilGuardedRanges(body *ast.BlockStmt) []span {
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if ok && condChecksNil(ifs.Cond) {
			spans = append(spans, span{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return spans
}

// condChecksNil reports whether the expression contains any `x != nil`
// comparison.
func condChecksNil(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.NEQ {
			return true
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			if id, ok := unparen(side).(*ast.Ident); ok && id.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}

// condChecksProbe reports whether the expression contains a
// `<x>.probe != nil` comparison anywhere (so `m.probe != nil && more`
// qualifies).
func condChecksProbe(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.NEQ {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
			sel, ok := unparen(pair[0]).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "probe" {
				continue
			}
			if id, ok := unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}
