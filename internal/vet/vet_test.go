package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// loadFixture type-checks one testdata package with the repo's loader
// (so fixtures can import real repo packages such as internal/core).
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(repoRoot(t), "internal/vet/testdata/src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wants collects `// want "substr"` expectations per file:line.
func wants(fset *token.FileSet, files []*ast.File) map[string][]string {
	out := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, `want "`)
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len(`want "`):]
				end := strings.Index(rest, `"`)
				if end < 0 {
					continue
				}
				substr := rest[:end]
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				out[key] = append(out[key], substr)
			}
		}
	}
	return out
}

// checkFixture runs one analyzer over a fixture and asserts the
// diagnostics exactly match the fixture's want comments.
func checkFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags := runAnalyzer(a, pkg)
	expected := wants(pkg.Fset, pkg.Files)

	matched := map[string]int{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		ok := false
		for _, substr := range expected[key] {
			if strings.Contains(d.Msg, substr) {
				ok = true
				matched[key]++
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, subs := range expected {
		if matched[key] < len(subs) {
			t.Errorf("%s: expected %d diagnostic(s) matching %q, matched %d",
				key, len(subs), subs, matched[key])
		}
	}
}

func TestFrozenStatsFixture(t *testing.T)       { checkFixture(t, FrozenStats, "frozen") }
func TestNondeterminismFixture(t *testing.T)    { checkFixture(t, Nondeterminism, "nondet") }
func TestHotAllocFixture(t *testing.T)          { checkFixture(t, HotAlloc, "hotpath") }
func TestHotAllocTelemetryFixture(t *testing.T) { checkFixture(t, HotAlloc, "telem") }
func TestCanonicalFixture(t *testing.T)         { checkFixture(t, Canonical, "canon") }

func TestParseAllow(t *testing.T) {
	for _, tc := range []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//dmp:allow frozenstats -- reason", []string{"frozenstats"}, true},
		{"//dmp:allow a, b", []string{"a", "b"}, true},
		{"//dmp:allow nondeterminism", []string{"nondeterminism"}, true},
		{"// ordinary comment", nil, false},
		{"//dmp:hotpath", nil, false},
	} {
		names, ok := parseAllow(tc.text)
		if ok != tc.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", tc.text, ok, tc.ok)
			continue
		}
		if fmt.Sprint(names) != fmt.Sprint(tc.names) && tc.ok {
			t.Errorf("parseAllow(%q) = %v, want %v", tc.text, names, tc.names)
		}
	}
}

func TestAnalyzerApplies(t *testing.T) {
	if FrozenStats.applies("dmp/internal/core") {
		t.Error("frozenstats must not run on package core itself")
	}
	if !FrozenStats.applies("dmp/internal/exp") {
		t.Error("frozenstats must run on exp")
	}
	if Nondeterminism.applies("dmp/cmd/dmpexp") {
		t.Error("nondeterminism is scoped to the simulator packages")
	}
	if !HotAlloc.applies("dmp/internal/core") {
		t.Error("hotalloc must run on core")
	}
	if !HotAlloc.applies("dmp/internal/obs") {
		t.Error("hotalloc must run on the obs sinks (their Uop callbacks ride the hot path)")
	}
	if HotAlloc.applies("dmp/cmd/dmpobs") {
		t.Error("hotalloc must not run on the offline summarizer")
	}
	if !HotAlloc.applies("dmp/internal/cow") {
		t.Error("hotalloc must run on the copy-on-write tables (checkpoint clones ride the hot path)")
	}
	if !HotAlloc.applies("dmp/internal/sample") {
		t.Error("hotalloc must run on the sampling driver's consumer loop")
	}
	if !HotAlloc.applies("dmp/internal/telemetry") {
		t.Error("hotalloc must run on telemetry (its metric hot paths promise zero allocation)")
	}
	if !Canonical.applies("dmp/internal/core") {
		t.Error("canonical must run on core (Config.Canonical lives there)")
	}
	if Canonical.applies("dmp/internal/exp") {
		t.Error("canonical is scoped to the package defining the cache key")
	}
}

// TestRepoIsVetClean is the live gate: the real tree must have zero
// findings (waivers included). This is the same check CI runs via
// cmd/dmpvet.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo typecheck is slow")
	}
	diags, err := Check(repoRoot(t), DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
