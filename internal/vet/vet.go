// Package vet implements dmpvet, a repo-specific static analyzer suite
// in the style of go/analysis, built only on the standard library's
// go/ast, go/parser and go/types (the container has no module cache, so
// golang.org/x/tools is deliberately not a dependency).
//
// The analyzers encode invariants that ordinary `go vet` cannot know
// about:
//
//   - frozenstats: results handed out by the simulation cache are shared
//     frozen *core.Stats; mutating one corrupts every other reader. Any
//     field write through a *core.Stats that was not locally derived via
//     Clone() (or freshly constructed) is flagged.
//   - nondeterminism: the golden experiment tables are byte-compared in
//     CI, so the simulator/experiment packages must be run-to-run
//     deterministic: no wall-clock reads, no math/rand, no map iteration
//     feeding order-sensitive output.
//   - hotalloc: PR 1 removed per-cycle sorting and heap allocation from
//     the pipeline loop; this analyzer keeps them out. Functions marked
//     with a `//dmp:hotpath` doc directive must not allocate.
//   - canonical: core.Config.Canonical() is the result-cache key
//     normalizer; a Config field it ignores silently aliases distinct
//     simulations in the cache. Every field must be handled there or
//     waived with a `//dmp:nocanon Field -- reason` directive.
//
// A finding can be locally waived with a directive comment on the same
// line or the line directly above:
//
//	//dmp:allow <analyzer>[ <analyzer>...] -- reason
//
// The reason text after "--" is free-form but encouraged.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over type-checked packages.
type Analyzer struct {
	Name string
	Doc  string

	// Packages restricts the analyzer to packages whose import path
	// matches one of these prefixes; empty means every package. Exclude
	// lists prefixes exempted even when Packages matches.
	Packages []string
	Exclude  []string

	Run func(*Pass)
}

func (a *Analyzer) applies(path string) bool {
	for _, p := range a.Exclude {
		if path == p || strings.HasPrefix(path, p+"/") {
			return false
		}
	}
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	allow map[string]map[int]bool // filename -> lines waived for this analyzer
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //dmp:allow directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines := p.allow[position.Filename]; lines[position.Line] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Msg)
}

// DefaultAnalyzers returns the full suite in stable order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{FrozenStats, Nondeterminism, HotAlloc, Canonical}
}

// Check loads every package under the module root and runs the analyzers
// whose package filters match. A load or type error is returned as an
// error (the tree must compile before it can be vetted).
func Check(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		for _, a := range analyzers {
			if !a.applies(pkg.Path) {
				continue
			}
			diags = append(diags, runAnalyzer(a, pkg)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runAnalyzer runs a single analyzer over a loaded package, ignoring the
// analyzer's package filters (the caller applies them; tests bypass).
func runAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		allow:    allowLines(pkg.Fset, pkg.Files, a.Name),
		diags:    &diags,
	}
	a.Run(pass)
	return diags
}

// allowLines scans every comment for //dmp:allow directives naming the
// analyzer and returns, per file, the set of lines the directive waives:
// the directive's own line and the line below it.
func allowLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				covered := false
				for _, n := range names {
					if n == analyzer {
						covered = true
					}
				}
				if !covered {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					out[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return out
}

// parseAllow extracts analyzer names from a "//dmp:allow a b -- reason"
// comment; ok is false when the comment is not an allow directive.
func parseAllow(text string) (names []string, ok bool) {
	const directive = "//dmp:allow"
	if !strings.HasPrefix(text, directive) {
		return nil, false
	}
	rest := text[len(directive):]
	if reason := strings.Index(rest, "--"); reason >= 0 {
		rest = rest[:reason]
	}
	for _, f := range strings.Fields(rest) {
		names = append(names, strings.Trim(f, ","))
	}
	return names, true
}
