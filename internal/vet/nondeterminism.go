package vet

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Nondeterminism flags run-to-run nondeterminism sources in the
// simulator and experiment packages, whose outputs are byte-compared
// against golden files in CI:
//
//   - time.Now / time.Since calls (wall-clock leaking into results);
//   - math/rand imports (all randomness must come from fixed workload
//     seeds threaded through explicit state);
//   - map iteration feeding an order-sensitive sink (append to an outer
//     slice, fmt output, a channel send, or a call through a function
//     value) — map order changes run to run, so such loops must iterate
//     sorted keys instead.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "flag wall-clock reads, math/rand and order-sensitive map iteration in deterministic packages",
	Packages: []string{
		"dmp/internal/core",
		"dmp/internal/emu",
		"dmp/internal/exp",
		"dmp/internal/sample",
		// The scheduler's cache keys and the persistent store's digests
		// must be reproducible across processes: a wall-clock or
		// map-order dependency there poisons stored results, not just one
		// run's output.
		"dmp/internal/sched",
		"dmp/internal/store",
	},
	Run: runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil &&
				(path == "math/rand" || path == "math/rand/v2") {
				pass.Reportf(imp.Pos(),
					"import of %s in a deterministic package; derive randomness from workload seeds", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, x); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
					(fn.Name() == "Now" || fn.Name() == "Since") {
					pass.Reportf(x.Pos(),
						"time.%s in a deterministic package: wall-clock reads are not reproducible", fn.Name())
				}
			case *ast.RangeStmt:
				if t := pass.Info.Types[x.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						if sink := findOrderSink(pass, x.Body); sink != "" {
							pass.Reportf(x.For,
								"map iteration order feeds %s; iterate sorted keys for deterministic output", sink)
						}
					}
				}
			}
			return true
		})
	}
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls,
// builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := identObj(info, id).(*types.Func)
	return fn
}

// findOrderSink scans a map-range body for the first construct whose
// observable effect depends on iteration order. Commutative updates
// (counters, map/set inserts, min/max folds) pass through silently.
func findOrderSink(pass *Pass, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
			return false
		case *ast.CallExpr:
			if tv, ok := pass.Info.Types[x.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			switch f := unparen(x.Fun).(type) {
			case *ast.Ident:
				switch obj := identObj(pass.Info, f).(type) {
				case *types.Builtin:
					if f.Name == "append" {
						sink = "an append"
						return false
					}
				case *types.Func:
					// Static package-level call: assumed commutative.
				default:
					_ = obj
					if isFuncValue(pass.Info, x.Fun) {
						sink = "a call through a function value"
						return false
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := identObj(pass.Info, f.Sel).(*types.Func); ok {
					if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
						sink = "fmt output"
						return false
					}
					// Other static method/function calls: assumed commutative.
				} else if isFuncValue(pass.Info, x.Fun) {
					sink = "a call through a function value"
					return false
				}
			default:
				if isFuncValue(pass.Info, x.Fun) {
					sink = "a call through a function value"
					return false
				}
			}
		}
		return true
	})
	return sink
}

// isFuncValue reports whether e is a non-constant expression of function
// type — a dynamic call target.
func isFuncValue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsType() {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}
