package vet

import (
	"go/ast"
	"go/types"
)

// FrozenStats flags writes to core.Stats fields outside package core.
//
// The simulation result cache (internal/exp/simcache.go) hands the same
// frozen *core.Stats to every caller that requested the same
// configuration; a field write through such a pointer silently corrupts
// every other experiment sharing the result. The sanctioned idiom is
// st.Clone() first, so a write is accepted when the pointer demonstrably
// came from a Clone() call or a fresh construction (&core.Stats{},
// new(core.Stats)); writes through value copies are harmless and also
// accepted.
var FrozenStats = &Analyzer{
	Name:    "frozenstats",
	Doc:     "flag mutation of shared core.Stats outside package core without a Clone() origin",
	Exclude: []string{"dmp/internal/core"},
	Run:     runFrozenStats,
}

const corePkgPath = "dmp/internal/core"

func runFrozenStats(pass *Pass) {
	if !usesNamedType(pass, corePkgPath, "Stats") {
		return
	}
	for _, file := range pass.Files {
		origins := cloneOrigins(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					checkStatsWrite(pass, origins, lhs)
				}
			case *ast.IncDecStmt:
				checkStatsWrite(pass, origins, s.X)
			}
			return true
		})
	}
}

// usesNamedType reports whether the package references pkgPath.name at
// all — a cheap skip for packages that never touch core.Stats.
func usesNamedType(pass *Pass, pkgPath, name string) bool {
	for _, obj := range pass.Info.Uses {
		if tn, ok := obj.(*types.TypeName); ok &&
			tn.Name() == name && tn.Pkg() != nil && tn.Pkg().Path() == pkgPath {
			return true
		}
	}
	return false
}

// checkStatsWrite reports lhs when it writes a field of core.Stats
// through a receiver that is not provably a private copy.
func checkStatsWrite(pass *Pass, origins map[types.Object]bool, lhs ast.Expr) {
	sel, field, ok := statsFieldSelector(pass, lhs)
	if !ok {
		return
	}
	recv := unparen(sel.X)
	recvType := pass.Info.Types[recv].Type
	if recvType == nil {
		return
	}
	_, isPtr := recvType.Underlying().(*types.Pointer)
	if id, ok := recv.(*ast.Ident); ok {
		if !isPtr {
			// A value-typed local: the write only touches a copy.
			return
		}
		if obj := identObj(pass.Info, id); obj != nil && origins[obj] {
			return
		}
		pass.Reportf(lhs.Pos(),
			"write to core.Stats field %s through pointer %q with no Clone() origin; shared frozen stats must be cloned before mutation",
			field, id.Name)
		return
	}
	// The receiver is itself a field/element of something else
	// (e.sharedStats.X, results[i].X): not a private copy.
	pass.Reportf(lhs.Pos(),
		"write to core.Stats field %s through a shared expression; clone the stats before mutating", field)
}

// statsFieldSelector unwraps index/paren/deref layers of a write target
// and reports whether the innermost selector selects a field of
// core.Stats.
func statsFieldSelector(pass *Pass, e ast.Expr) (*ast.SelectorExpr, string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return nil, "", false
			}
			selection := pass.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return nil, "", false
			}
			if !isNamed(selection.Recv(), corePkgPath, "Stats") {
				return nil, "", false
			}
			return sel, sel.Sel.Name, true
		}
	}
}

// cloneOrigins collects the objects in file that were (at least once)
// assigned a freshly built or cloned Stats value.
func cloneOrigins(pass *Pass, file *ast.File) map[types.Object]bool {
	origins := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || !isCloneExpr(pass, rhs) {
			return
		}
		if obj := identObj(pass.Info, id); obj != nil {
			origins[obj] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					record(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	return origins
}

// isCloneExpr reports whether e builds a private Stats: a .Clone() call,
// a composite literal (possibly address-of) or new().
func isCloneExpr(pass *Pass, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.UnaryExpr:
		return isCloneExpr(pass, x.X)
	case *ast.CompositeLit:
		return isNamed(pass.Info.Types[x].Type, corePkgPath, "Stats")
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" {
			return isNamed(pass.Info.Types[sel.X].Type, corePkgPath, "Stats")
		}
		if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" && len(x.Args) == 1 {
			if _, isBuiltin := identObj(pass.Info, id).(*types.Builtin); isBuiltin {
				return isNamed(pass.Info.Types[x.Args[0]].Type, corePkgPath, "Stats")
			}
		}
	}
	return false
}

// isNamed reports whether t (through pointers) is the named type
// pkgPath.name. Identity is by path and name, not pointer equality: the
// loader may type-check the defining package more than once.
func isNamed(t types.Type, pkgPath, name string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
		default:
			return false
		}
	}
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
