package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one fully type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("dmp/internal/core")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go toolchain's
// package driver: module-local imports ("dmp/...") are resolved to
// directories under the module root and checked from source; everything
// else is delegated to the standard library's source importer, which
// finds it in GOROOT. Both sides are memoized, so a Loader amortizes the
// cost of shared dependencies across LoadDir calls.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	fset  *token.FileSet
	std   types.ImporterFrom
	local map[string]*types.Package
}

// NewLoader returns a Loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("vet: source importer is not an ImporterFrom")
	}
	return &Loader{
		Root:   root,
		Module: mod,
		fset:   fset,
		std:    std,
		local:  map[string]*types.Package{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("vet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vet: no module directive in %s/go.mod", root)
}

// LoadDir parses and type-checks the package in dir with full type
// information for analysis.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.Module
	if rel, err := filepath.Rel(l.Root, dir); err == nil && rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom. Module-local paths are
// resolved against the module root; everything else goes to the source
// importer with the module root as the lookup directory so resolution is
// independent of the process working directory.
func (l *Loader) ImportFrom(path, _ string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		return l.importLocal(path)
	}
	return l.std.ImportFrom(path, l.Root, mode)
}

func (l *Loader) importLocal(path string) (*types.Package, error) {
	if pkg, ok := l.local[path]; ok {
		return pkg, nil
	}
	dir := l.Root
	if rel := strings.TrimPrefix(path, l.Module); rel != "" {
		dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files for %s in %s", path, dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.local[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir, with comments (the
// directive comments matter).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs returns every directory under root holding at least one
// non-test Go file, skipping testdata, vendor and dot-directories.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
