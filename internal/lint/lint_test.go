package lint

import (
	"strings"
	"testing"

	"dmp/internal/isa"
	"dmp/internal/prog"
)

// raw builds a Program directly from instructions, bypassing the
// Builder's Validate so tests can construct illegal images.
func raw(entry uint64, code ...isa.Inst) *prog.Program {
	p := prog.New()
	p.Code = code
	p.Entry = entry
	return p
}

func br(c isa.Cond, s1, s2 isa.Reg, target uint64) isa.Inst {
	return isa.Inst{Op: isa.BR, Cond: c, Src1: s1, Src2: s2, Target: target}
}
func jmp(t uint64) isa.Inst { return isa.Inst{Op: isa.JMP, Target: t} }
func halt() isa.Inst        { return isa.Inst{Op: isa.HALT} }
func nop() isa.Inst         { return isa.Inst{Op: isa.NOP} }
func addi(d, s isa.Reg, imm int64) isa.Inst {
	return isa.Inst{Op: isa.ADDI, Dst: d, Src1: s, Imm: imm}
}

// wantCheck asserts that ds contains a diagnostic for the given check at
// the given severity.
func wantCheck(t *testing.T, ds Diags, check string, sev Severity) {
	t.Helper()
	for _, d := range ds.ByCheck(check) {
		if d.Sev == sev {
			return
		}
	}
	t.Errorf("missing %s diagnostic %q; got:\n%s", sev, check, ds)
}

func wantClean(t *testing.T, ds Diags) {
	t.Helper()
	if len(ds) != 0 {
		t.Errorf("expected no diagnostics, got:\n%s", ds)
	}
}

func TestProgramClean(t *testing.T) {
	// A well-formed if-else hammock with a call.
	b := prog.NewBuilder()
	b.Entry("main")
	b.Label("leaf")
	b.Addi(4, 4, 1)
	b.Ret()
	b.Label("main")
	b.Li(1, 7)
	b.Call("leaf")
	b.Brz(1, "else")
	b.Addi(2, 1, 1)
	b.Jmp("join")
	b.Label("else")
	b.Addi(2, 1, 2)
	b.Label("join")
	b.Add(3, 2, 1)
	b.Halt()
	p := b.MustBuild()
	wantClean(t, Program(p))
}

func TestProgramEmpty(t *testing.T) {
	wantCheck(t, Program(raw(0)), "empty", Error)
}

func TestProgramTargetRange(t *testing.T) {
	p := raw(0, br(isa.EQ, 1, 0, 99), halt())
	wantCheck(t, Program(p), "target-range", Error)
}

func TestProgramEntryRange(t *testing.T) {
	p := raw(5, nop(), halt())
	wantCheck(t, Program(p), "entry-range", Error)
}

func TestProgramNoHalt(t *testing.T) {
	p := raw(0, nop(), jmp(0))
	wantCheck(t, Program(p), "no-halt", Error)
}

func TestProgramInvalidOpcode(t *testing.T) {
	p := raw(0, isa.Inst{Op: isa.Op(200)}, halt())
	wantCheck(t, Program(p), "opcode", Error)
}

func TestProgramFallthroughOffEnd(t *testing.T) {
	p := raw(0, br(isa.EQ, 1, 0, 0), halt(), nop())
	wantCheck(t, Program(p), "fallthrough-end", Error)

	// A conditional branch as the last instruction falls through too.
	p2 := raw(0, halt(), br(isa.EQ, 1, 0, 0))
	wantCheck(t, Program(p2), "fallthrough-end", Error)
}

func TestProgramUnreachable(t *testing.T) {
	p := raw(0,
		jmp(3),        // 0
		addi(1, 1, 1), // 1: skipped
		addi(1, 1, 2), // 2: skipped
		halt(),        // 3
	)
	ds := Program(p)
	wantCheck(t, ds, "unreachable", Warning)
	if ds.HasErrors() {
		t.Errorf("unreachable code must not be an error:\n%s", ds)
	}
}

func TestProgramNoExitPath(t *testing.T) {
	// PC 1 jumps to itself forever; HALT exists but is unreachable from
	// the loop.
	p := raw(0,
		nop(),  // 0
		jmp(1), // 1: statically inescapable
		halt(), // 2
	)
	wantCheck(t, Program(p), "no-exit-path", Error)
}

func TestProgramLoopWithExitIsClean(t *testing.T) {
	// A loop whose branch has a fall-through exit is fine even if it
	// would iterate a long time dynamically.
	p := raw(0,
		addi(1, 1, 1),       // 0
		br(isa.LT, 1, 2, 0), // 1: back edge with exit
		halt(),              // 2
	)
	ds := Program(p)
	if got := ds.ByCheck("no-exit-path"); len(got) != 0 {
		t.Errorf("loop with exit flagged: %v", got)
	}
}

func TestProgramCallDiscipline(t *testing.T) {
	// CALL that discards its link register.
	p := raw(2,
		addi(4, 4, 1),                                    // 0: callee body
		isa.Inst{Op: isa.RET, Src1: isa.LR},              // 1
		isa.Inst{Op: isa.CALL, Target: 0, Dst: isa.Zero}, // 2
		halt(), // 3
	)
	wantCheck(t, Program(p), "call-discards-link", Warning)

	// RET through the zero register.
	p2 := raw(2,
		addi(4, 4, 1),                                  // 0: callee body
		isa.Inst{Op: isa.RET, Src1: isa.Zero},          // 1
		isa.Inst{Op: isa.CALL, Target: 0, Dst: isa.LR}, // 2
		halt(), // 3
	)
	wantCheck(t, Program(p2), "ret-zero", Warning)
}

func TestProgramCalleeNoReturn(t *testing.T) {
	// The callee jumps back to itself and never returns; the program
	// still "exits" statically through the unreachable HALT path, so
	// make the callee loop the only offender.
	p := raw(1,
		jmp(0), // 0: callee spins (also no-exit-path)
		isa.Inst{Op: isa.CALL, Target: 0, Dst: isa.LR}, // 1
		halt(), // 2
	)
	ds := program(p, Options{})
	wantCheck(t, ds, "callee-no-return", Warning)
}

func TestProgramUndefRead(t *testing.T) {
	// r9 is read but never written anywhere: flagged by default.
	p := raw(0,
		addi(1, 9, 1), // 0: reads r9
		halt(),        // 1
	)
	wantCheck(t, Program(p), "undef-read", Warning)

	// r1 is read before its write, but written later: only strict mode
	// reports it.
	p2 := raw(0,
		addi(2, 1, 1), // 0: reads r1 before any write
		addi(1, 2, 0), // 1: writes r1
		halt(),        // 2
	)
	if ds := Program(p2); len(ds.ByCheck("maybe-undef")) != 0 {
		t.Errorf("default mode reported maybe-undef:\n%s", ds)
	}
	wantCheck(t, program(p2, Options{StrictUninit: true}), "maybe-undef", Warning)
}

func TestProgramStrictDataflowJoins(t *testing.T) {
	// r5 is written on only one arm of a hammock: must-defined at the
	// join excludes it, so the read after the join is maybe-undef in
	// strict mode. r6, written on both arms, must not be flagged.
	p := raw(0,
		br(isa.EQ, 1, 0, 4), // 0
		addi(5, 0, 1),       // 1: then-arm writes r5
		addi(6, 0, 1),       // 2: and r6
		jmp(5),              // 3
		addi(6, 0, 2),       // 4: else-arm writes only r6
		addi(2, 5, 0),       // 5: join reads r5 (one-armed def)
		addi(3, 6, 0),       // 6: join reads r6 (both-armed def)
		halt(),              // 7
	)
	ds := program(p, Options{StrictUninit: true})
	found := false
	for _, d := range ds.ByCheck("maybe-undef") {
		if strings.Contains(d.Msg, "r5") {
			found = true
		}
		if strings.Contains(d.Msg, "r6") {
			t.Errorf("r6 is defined on both arms but was flagged: %v", d)
		}
	}
	if !found {
		t.Errorf("one-armed definition of r5 not flagged:\n%s", ds)
	}
}

func TestValidateSubsumed(t *testing.T) {
	// Everything prog.Validate rejects must be an Error here too.
	for name, p := range map[string]*prog.Program{
		"target":  raw(0, jmp(9), halt()),
		"no-halt": raw(0, nop(), jmp(0)),
		"entry":   raw(9, halt()),
		"opcode":  raw(0, isa.Inst{Op: isa.Op(99)}, halt()),
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
		if !Program(p).HasErrors() {
			t.Errorf("%s: lint.Program accepted what Validate rejects", name)
		}
	}
}
