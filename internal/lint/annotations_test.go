package lint

import (
	"testing"

	"dmp/internal/isa"
	"dmp/internal/prog"
)

// hammock builds the canonical test shape:
//
//	0: li   r1, 1
//	1: br.eq r1, zero -> 4   (diverge branch)
//	2: addi r2, r1, 1        (fall-through arm)
//	3: jmp  5
//	4: addi r2, r1, 2        (taken arm)
//	5: add  r3, r2, r1       (join / CFM)
//	6: halt
func hammock() *prog.Program {
	p := raw(0,
		isa.Inst{Op: isa.LI, Dst: 1, Imm: 1},
		br(isa.EQ, 1, isa.Zero, 4),
		addi(2, 1, 1),
		jmp(5),
		addi(2, 1, 2),
		isa.Inst{Op: isa.ADD, Dst: 3, Src1: 2, Src2: 1},
		halt(),
	)
	return p
}

func annotate(p *prog.Program, pc uint64, d *prog.Diverge) *prog.Program {
	p.Diverge[pc] = d // direct map write: MarkDiverge would reject bad ones
	return p
}

func checkAnn(p *prog.Program) Diags {
	return Annotations(p, prog.BuildCFG(p), Options{})
}

func TestAnnotationsCleanHammock(t *testing.T) {
	p := hammock()
	p.MarkDiverge(1, &prog.Diverge{CFMs: []uint64{5}, Class: prog.ClassSimpleHammock, ExitThreshold: 10})
	wantClean(t, checkAnn(p))
}

func TestAnnotationsNotABranch(t *testing.T) {
	p := annotate(hammock(), 0, &prog.Diverge{CFMs: []uint64{5}})
	wantCheck(t, checkAnn(p), "diverge-not-branch", Error)
}

func TestAnnotationsNoCFMs(t *testing.T) {
	p := annotate(hammock(), 1, &prog.Diverge{Class: prog.ClassSimpleHammock})
	wantCheck(t, checkAnn(p), "cfm-missing", Error)
}

func TestAnnotationsCFMOutOfRange(t *testing.T) {
	p := annotate(hammock(), 1, &prog.Diverge{CFMs: []uint64{99}, Class: prog.ClassSimpleHammock})
	wantCheck(t, checkAnn(p), "cfm-range", Error)
}

func TestAnnotationsCFMUnreachable(t *testing.T) {
	// CFM on the taken arm only: instruction 4 is never reached from the
	// fall-through path (which jumps from 3 to 5).
	p := annotate(hammock(), 1, &prog.Diverge{CFMs: []uint64{4}, Class: prog.ClassSimpleHammock})
	wantCheck(t, checkAnn(p), "cfm-unreachable", Error)
}

func TestAnnotationsCFMTooFar(t *testing.T) {
	// Put the join beyond MaxDist on the fall-through side by stretching
	// the fall-through arm with straight-line filler.
	// Longer than the CFG's simple-hammock body limit (64), so the
	// ClassComplexDiverge claim below is consistent.
	const filler = 80
	code := []isa.Inst{
		{Op: isa.LI, Dst: 1, Imm: 1},
		br(isa.EQ, 1, isa.Zero, uint64(2+filler+1)), // taken -> join directly
	}
	for i := 0; i < filler; i++ {
		code = append(code, addi(2, 2, 1))
	}
	code = append(code,
		jmp(uint64(2+filler+1)),                         // end of fall arm
		isa.Inst{Op: isa.ADD, Dst: 3, Src1: 2, Src2: 1}, // join
		halt(),
	)
	p := raw(0, code...)
	join := uint64(2 + filler + 1)
	p.Diverge[1] = &prog.Diverge{CFMs: []uint64{join}, Class: prog.ClassComplexDiverge}

	// Within a generous bound: clean (reachable on both paths).
	wantClean(t, Annotations(p, prog.BuildCFG(p), Options{MaxDist: 120}))
	// With a tight bound the fall-through path exceeds it.
	ds := Annotations(p, prog.BuildCFG(p), Options{MaxDist: 20})
	wantCheck(t, ds, "cfm-unreachable", Error)
	wantCheck(t, ds, "cfm-too-far", Warning)
}

func TestAnnotationsClassMismatch(t *testing.T) {
	// The hammock is simple; claiming complex earns a warning, and a
	// genuinely complex shape claiming simple is an error.
	p := annotate(hammock(), 1, &prog.Diverge{CFMs: []uint64{5}, Class: prog.ClassComplexDiverge})
	wantCheck(t, checkAnn(p), "class-mismatch", Warning)

	// A branch whose fall-through arm contains a nested branch is not a
	// simple hammock.
	p2 := raw(0,
		isa.Inst{Op: isa.LI, Dst: 1, Imm: 1}, // 0
		br(isa.EQ, 1, isa.Zero, 6),           // 1: outer (claims simple)
		addi(2, 1, 1),                        // 2
		br(isa.NE, 2, isa.Zero, 5),           // 3: inner branch
		addi(2, 2, 1),                        // 4
		jmp(6),                               // 5
		isa.Inst{Op: isa.ADD, Dst: 3, Src1: 2, Src2: 1}, // 6: join
		halt(), // 7
	)
	p2.Diverge[1] = &prog.Diverge{CFMs: []uint64{6}, Class: prog.ClassSimpleHammock}
	wantCheck(t, checkAnn(p2), "class-mismatch", Error)
}

func TestAnnotationsLoopFlag(t *testing.T) {
	// Forward branch marked as a loop diverge.
	p := annotate(hammock(), 1, &prog.Diverge{CFMs: []uint64{5}, Class: prog.ClassSimpleHammock, Loop: true})
	wantCheck(t, checkAnn(p), "loop-flag", Error)

	// Backward branch not marked as one.
	p2 := raw(0,
		addi(1, 1, 1),       // 0
		br(isa.LT, 1, 2, 0), // 1: back edge
		halt(),              // 2
	)
	p2.Diverge[1] = &prog.Diverge{CFMs: []uint64{2}, Class: prog.ClassOther, Loop: false}
	wantCheck(t, checkAnn(p2), "loop-flag", Error)
}

func TestAnnotationsExitThreshold(t *testing.T) {
	p := annotate(hammock(), 1, &prog.Diverge{CFMs: []uint64{5}, Class: prog.ClassSimpleHammock, ExitThreshold: 500})
	wantCheck(t, checkAnn(p), "exit-threshold", Warning)
}

func TestAnnotationsDegenerateCFM(t *testing.T) {
	p := annotate(hammock(), 1, &prog.Diverge{CFMs: []uint64{2}, Class: prog.ClassSimpleHammock})
	wantCheck(t, checkAnn(p), "cfm-degenerate", Warning)
}

func TestAnnotationsNestedRegion(t *testing.T) {
	// Outer branch 1 merges at 6; inner branch 3 sits inside the outer
	// region but "merges" at 8, beyond the outer CFM.
	p := raw(0,
		isa.Inst{Op: isa.LI, Dst: 1, Imm: 1}, // 0
		br(isa.EQ, 1, isa.Zero, 6),           // 1: outer
		addi(2, 1, 1),                        // 2
		br(isa.NE, 2, isa.Zero, 5),           // 3: inner
		addi(2, 2, 1),                        // 4
		nop(),                                // 5
		isa.Inst{Op: isa.ADD, Dst: 3, Src1: 2, Src2: 1}, // 6: outer CFM
		nop(),  // 7
		nop(),  // 8: inner's claimed CFM
		halt(), // 9
	)
	p.Diverge[1] = &prog.Diverge{CFMs: []uint64{6}, Class: prog.ClassComplexDiverge}
	p.Diverge[3] = &prog.Diverge{CFMs: []uint64{8}, Class: prog.ClassComplexDiverge}
	wantCheck(t, checkAnn(p), "nested-region", Warning)

	// Properly contained: inner merges at 5, inside the outer region.
	p.Diverge[3] = &prog.Diverge{CFMs: []uint64{5}, Class: prog.ClassComplexDiverge}
	if ds := checkAnn(p); len(ds.ByCheck("nested-region")) != 0 {
		t.Errorf("contained nesting flagged:\n%s", ds)
	}
}

func TestAnnotationsCrossFunctionCFM(t *testing.T) {
	// The profiler matches CFM points by absolute call depth, so a CFM
	// may sit in a different function at the same depth: branch in f,
	// both paths return, the caller immediately calls g. The return-edge
	// supergraph must see that path.
	b := prog.NewBuilder()
	b.Entry("main")
	b.Label("f")
	b.Li(1, 3)
	b.Brz(1, "fret")
	b.Addi(2, 1, 1)
	b.Label("fret")
	b.Ret()
	b.Label("g")
	gBody := b.Here()
	b.Addi(3, 2, 1)
	b.Ret()
	b.Label("main")
	b.Call("f")
	b.Call("g")
	b.Halt()
	p := b.MustBuild()

	brPC := p.PC("f") + 1
	p.Diverge[brPC] = &prog.Diverge{CFMs: []uint64{gBody}, Class: prog.ClassComplexDiverge}
	ds := checkAnn(p)
	if got := ds.ByCheck("cfm-unreachable"); len(got) != 0 {
		t.Errorf("cross-function same-depth CFM flagged unreachable: %v", got)
	}
}

func TestCheckRunsBothLayers(t *testing.T) {
	p := annotate(hammock(), 1, &prog.Diverge{CFMs: []uint64{99}, Class: prog.ClassSimpleHammock})
	wantCheck(t, Check(p, Options{}), "cfm-range", Error)

	// Image errors short-circuit annotation checking.
	bad := raw(9, nop(), jmp(0))
	ds := Check(bad, Options{})
	if !ds.HasErrors() {
		t.Fatalf("expected errors: %s", ds)
	}
}
