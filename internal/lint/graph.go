package lint

import (
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// graph is an instruction-level flow supergraph used by the reachability
// and CFM-distance analyses. Edges:
//
//   - straight-line and branch/jump edges as usual;
//   - CALL: an edge into the callee entry AND a collapsed edge to the
//     call's return point (so intra-procedural paths skip callee bodies,
//     which only underestimates dynamic distance — the safe direction
//     for a "within MaxDist" check);
//   - RET: edges to the return point of every call site whose callee can
//     reach this RET. The profiler matches CFM points by absolute call
//     depth, so a merge point may legally sit in a *different* function
//     at the same depth (branch in f, both paths return, the caller then
//     calls g); return edges make those paths visible statically.
//
// The construction is context-insensitive, so it admits some
// unrealizable paths; for lint purposes that only makes the checks more
// lenient, never produces a false alarm.
type graph struct {
	n     uint64
	succs [][]uint64
	exits []uint64 // PCs of HALT/RET/JR instructions (static exit points)
}

// buildGraph constructs the supergraph. Targets must already be
// range-checked.
func buildGraph(p *prog.Program) *graph {
	n := uint64(len(p.Code))
	g := &graph{n: n, succs: make([][]uint64, n)}

	// Function extents: callee entry -> set of RET PCs reachable
	// intra-procedurally (nested calls collapsed).
	indirectSites := []uint64{} // CALLR return points: callee unknown
	callSitesOf := map[uint64][]uint64{}
	for pc := uint64(0); pc < n; pc++ {
		switch p.Code[pc].Op {
		case isa.CALL:
			callSitesOf[p.Code[pc].Target] = append(callSitesOf[p.Code[pc].Target], pc)
		case isa.CALLR:
			if pc+1 < n {
				indirectSites = append(indirectSites, pc+1)
			}
		}
	}
	retsOf := func(entry uint64) []uint64 {
		var rets []uint64
		seen := map[uint64]bool{}
		stack := []uint64{entry}
		for len(stack) > 0 {
			pc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if pc >= n || seen[pc] {
				continue
			}
			seen[pc] = true
			switch in := p.Code[pc]; in.Op {
			case isa.RET:
				rets = append(rets, pc)
			case isa.JR, isa.HALT:
			case isa.JMP:
				stack = append(stack, in.Target)
			case isa.BR:
				stack = append(stack, in.Target, pc+1)
			default:
				stack = append(stack, pc+1)
			}
		}
		return rets
	}
	retEdges := map[uint64][]uint64{} // RET pc -> return points
	for entry, sites := range callSitesOf {
		for _, ret := range retsOf(entry) {
			for _, site := range sites {
				if site+1 < n {
					retEdges[ret] = append(retEdges[ret], site+1)
				}
			}
		}
	}

	for pc := uint64(0); pc < n; pc++ {
		in := p.Code[pc]
		switch in.Op {
		case isa.BR:
			if pc+1 < n {
				g.succs[pc] = append(g.succs[pc], pc+1)
			}
			g.succs[pc] = append(g.succs[pc], in.Target)
		case isa.JMP:
			g.succs[pc] = append(g.succs[pc], in.Target)
		case isa.CALL:
			g.succs[pc] = append(g.succs[pc], in.Target)
			if pc+1 < n {
				g.succs[pc] = append(g.succs[pc], pc+1) // collapsed return
			}
		case isa.CALLR:
			// Unknown callee; the collapsed return edge keeps the caller
			// connected. Possible callees are all labelled PCs, handled
			// leniently by reachableFrom's extraRoots in Program.
			if pc+1 < n {
				g.succs[pc] = append(g.succs[pc], pc+1)
			}
		case isa.RET:
			g.succs[pc] = append(g.succs[pc], retEdges[pc]...)
			for _, s := range indirectSites {
				g.succs[pc] = append(g.succs[pc], s)
			}
			g.exits = append(g.exits, pc)
		case isa.JR:
			g.exits = append(g.exits, pc)
		case isa.HALT:
			g.exits = append(g.exits, pc)
		default:
			if pc+1 < n {
				g.succs[pc] = append(g.succs[pc], pc+1)
			}
		}
	}
	return g
}

// reachableFrom returns the set of PCs reachable from the roots.
func (g *graph) reachableFrom(roots []uint64) map[uint64]bool {
	seen := map[uint64]bool{}
	stack := append([]uint64(nil), roots...)
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pc >= g.n || seen[pc] {
			continue
		}
		seen[pc] = true
		stack = append(stack, g.succs[pc]...)
	}
	return seen
}

// reachesExit returns, for every PC, whether some static exit (HALT, RET
// or JR) is reachable from it — computed as backward reachability from
// the exits over reversed edges.
func (g *graph) reachesExit() map[uint64]bool {
	preds := make([][]uint64, g.n)
	for pc := uint64(0); pc < g.n; pc++ {
		for _, s := range g.succs[pc] {
			if s < g.n {
				preds[s] = append(preds[s], pc)
			}
		}
	}
	seen := map[uint64]bool{}
	stack := append([]uint64(nil), g.exits...)
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[pc] {
			continue
		}
		seen[pc] = true
		stack = append(stack, preds[pc]...)
	}
	return seen
}

// distWithin runs a bounded BFS from a start PC and returns the shortest
// distance (in instructions executed, start counting as 1) to every PC
// within maxDist. stop, if valid, is not expanded past — used to bound a
// diverge region at its CFM point.
func (g *graph) distWithin(start uint64, maxDist int, stop uint64) map[uint64]int {
	dist := map[uint64]int{}
	if start >= g.n {
		return dist
	}
	frontier := []uint64{start}
	dist[start] = 1
	for d := 1; d < maxDist && len(frontier) > 0; d++ {
		var next []uint64
		for _, pc := range frontier {
			if pc == stop {
				continue
			}
			for _, s := range g.succs[pc] {
				if s < g.n {
					if _, ok := dist[s]; !ok {
						dist[s] = d + 1
						next = append(next, s)
					}
				}
			}
		}
		frontier = next
	}
	return dist
}
