package lint

import (
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Annotations checks every diverge-branch annotation on p against the
// static CFG. The checks encode the legality rules the profiler's
// selection heuristics are supposed to guarantee (Section 3.2 of the
// paper) — so profile-emitted annotations must always pass, and a
// failure means either a broken profiling pass or a hand-written
// annotation the machine would quietly waste dual-path work on:
//
//   - cfm-range / cfm-missing: CFM points exist and address real code;
//   - cfm-unreachable / cfm-too-far: every CFM point is statically
//     reachable from BOTH outgoing paths of the branch within
//     Options.MaxDist instructions (the profiler's dynamic distance
//     bound; a static shortest path never exceeds an observed dynamic
//     one, so profiler output always satisfies this);
//   - cfm-degenerate: the CFM is not the branch itself or its immediate
//     fall-through (a "merge" the paths only share trivially);
//   - class-mismatch: the recorded BranchClass agrees with the CFG's
//     simple-hammock classification (cfg.SimpleHammockJoin);
//   - loop-flag: Diverge.Loop agrees with the branch direction;
//   - exit-threshold: the early-exit threshold is within the distance
//     bound;
//   - nested-region: a diverge branch inside another diverge region
//     merges inside that region (or exactly at its CFM) — an inner
//     merge beyond the outer one makes the regions overlap improperly.
//
// Cross-checks against CFG.IPostDom: when the branch has an immediate
// post-dominator, a CFM at or before it is ordinary; a CFM strictly past
// the post-dominator cannot be a merge point of the branch's own paths
// and is reported as cfm-past-ipdom.
func Annotations(p *prog.Program, cfg *prog.CFG, opts Options) Diags {
	var ds Diags
	opts = opts.norm()
	n := uint64(len(p.Code))
	if n == 0 {
		return ds
	}
	g := buildGraph(p)

	pcs := p.DivergePCs()
	var regions []region

	for _, pc := range pcs {
		branchDs, reg := checkBranch(p, cfg, g, pc, p.DivergeAt(pc), opts)
		ds = append(ds, branchDs...)
		if reg != nil {
			regions = append(regions, *reg)
		}
	}

	// Nested-region containment: an annotated branch inside region(A)
	// must merge inside region(A) or exactly at A's CFM. Loop diverge
	// branches are exempt on either side — their "region" is a whole
	// loop iteration, so containment against forward hammocks is
	// ill-defined and the profiler legitimately produces overlaps.
	for _, outer := range regions {
		for _, inner := range regions {
			if inner.branch == outer.branch || outer.loop || inner.loop {
				continue
			}
			if _, inside := outer.pcs[inner.branch]; !inside {
				continue
			}
			if inner.cfm == outer.cfm {
				continue
			}
			if _, ok := outer.pcs[inner.cfm]; !ok {
				ds.add(inner.branch, "nested-region", Warning,
					"diverge branch lies inside the region of branch %d (CFM %d) but merges at %d, outside it",
					outer.branch, outer.cfm, inner.cfm)
			}
		}
	}
	return ds.sorted()
}

// region is the predicated range of one annotated branch, used for the
// nested-region containment check: every PC reachable from either path
// before the primary CFM, with its shortest static distance.
type region struct {
	branch uint64
	cfm    uint64
	loop   bool
	pcs    map[uint64]int
}

// checkBranch checks one candidate annotation d for the branch at pc and
// returns its diagnostics plus the branch's predicated region (nil when
// the annotation is too malformed to define one). It performs every
// per-branch check; only the cross-branch nested-region containment is
// left to the caller.
func checkBranch(p *prog.Program, cfg *prog.CFG, g *graph, pc uint64, d *prog.Diverge, opts Options) (Diags, *region) {
	var ds Diags
	n := uint64(len(p.Code))
	if pc >= n || p.Code[pc].Op != isa.BR {
		ds.add(pc, "diverge-not-branch", Error,
			"diverge annotation on a non-branch (op %v)", p.At(pc).Op)
		return ds, nil
	}
	if len(d.CFMs) == 0 {
		ds.add(pc, "cfm-missing", Error, "diverge branch has no CFM points")
		return ds, nil
	}
	br := p.Code[pc]
	if isLoop := br.Target <= pc; isLoop != d.Loop {
		ds.add(pc, "loop-flag", Error,
			"Loop=%v but branch target %d is %s pc %d",
			d.Loop, br.Target, directionWord(isLoop), pc)
	}
	_, isSimple := cfg.SimpleHammockJoin(pc)
	switch {
	case d.Class == prog.ClassSimpleHammock && !isSimple:
		ds.add(pc, "class-mismatch", Error,
			"annotated simple-hammock but the CFG finds no simple hammock join")
	case d.Class != prog.ClassSimpleHammock && isSimple:
		ds.add(pc, "class-mismatch", Warning,
			"annotated %v but the CFG classifies the branch as a simple hammock", d.Class)
	}
	if d.ExitThreshold < 0 || d.ExitThreshold > opts.MaxDist {
		ds.add(pc, "exit-threshold", Warning,
			"early-exit threshold %d outside [0, %d]", d.ExitThreshold, opts.MaxDist)
	}

	// Distances from each outgoing path. The fall-through successor
	// exists whenever Program passed (no fallthrough-end error), but
	// guard anyway for standalone Annotations calls.
	distTaken := g.distWithin(br.Target, opts.MaxDist, NoPC)
	var distFall map[uint64]int
	if pc+1 < n {
		distFall = g.distWithin(pc+1, opts.MaxDist, NoPC)
	}
	ipdom, hasIPdom := cfg.IPostDom(pc)

	for _, cfm := range d.CFMs {
		if cfm >= n {
			ds.add(pc, "cfm-range", Error,
				"CFM point %d outside code (len %d)", cfm, n)
			continue
		}
		if cfm == pc || cfm == pc+1 {
			what := "the branch itself"
			if cfm == pc+1 {
				what = "the branch's own fall-through"
			}
			ds.add(pc, "cfm-degenerate", Warning, "CFM point %d is %s", cfm, what)
			continue
		}
		_, onTaken := distTaken[cfm]
		_, onFall := distFall[cfm]
		switch {
		case !onTaken && !onFall:
			ds.add(pc, "cfm-unreachable", Error,
				"CFM point %d is not reachable within %d instructions on either path", cfm, opts.MaxDist)
		case !onTaken:
			ds.add(pc, "cfm-unreachable", Error,
				"CFM point %d is not reachable within %d instructions on the taken path (target %d)", cfm, opts.MaxDist, br.Target)
		case !onFall:
			ds.add(pc, "cfm-unreachable", Error,
				"CFM point %d is not reachable within %d instructions on the fall-through path", cfm, opts.MaxDist)
		}
		// distWithin is already bounded by MaxDist, so reachable here
		// implies within bound; cfm-too-far is reported by a second,
		// unbounded-enough probe only when the point is reachable at
		// some larger distance. Probe with a generous bound so the
		// diagnostic can distinguish "too far" from "unreachable".
		if !onTaken || !onFall {
			probe := 4 * opts.MaxDist
			if probe < 1024 {
				probe = 1024
			}
			far := g.distWithin(br.Target, probe, NoPC)
			farF := map[uint64]int{}
			if pc+1 < n {
				farF = g.distWithin(pc+1, probe, NoPC)
			}
			if dT, okT := far[cfm]; okT && !onTaken {
				ds.add(pc, "cfm-too-far", Warning,
					"CFM point %d is %d instructions down the taken path (bound %d)", cfm, dT, opts.MaxDist)
			}
			if dF, okF := farF[cfm]; okF && !onFall {
				ds.add(pc, "cfm-too-far", Warning,
					"CFM point %d is %d instructions down the fall-through path (bound %d)", cfm, dF, opts.MaxDist)
			}
		}
		// A primary CFM strictly past the post-dominator: every path
		// already merged at ipdom, so a later "merge point" is
		// control-independent tail, not a merge. Only the primary is
		// held to this — the multiple-CFM enhancement legitimately
		// records later both-path points as alternates.
		if hasIPdom && onTaken && onFall && cfm == d.CFMs[0] &&
			cfm != ipdom && pastIPostDom(g, ipdom, cfm, opts.MaxDist) {
			ds.add(pc, "cfm-past-ipdom", Warning,
				"primary CFM point %d lies beyond the immediate post-dominator %d", cfm, ipdom)
		}
	}

	// Region for nesting checks: everything reachable from either
	// path before the primary CFM.
	primary := d.CFMs[0]
	reg := &region{branch: pc, cfm: primary, loop: d.Loop, pcs: map[uint64]int{}}
	for k, v := range g.distWithin(br.Target, opts.MaxDist, primary) {
		reg.pcs[k] = v
	}
	if pc+1 < n {
		for k, v := range g.distWithin(pc+1, opts.MaxDist, primary) {
			if old, ok := reg.pcs[k]; !ok || v < old {
				reg.pcs[k] = v
			}
		}
	}
	return ds, reg
}

// AnnotationOracle answers "would lint accept this single annotation?"
// for many candidate (pc, Diverge) pairs against one fixed program,
// amortizing the supergraph construction. internal/gen's annotation
// synthesizer drives it as the legality oracle while choosing CFM
// points; Annotations itself runs the same per-branch check, so an
// oracle-approved annotation can only draw cross-branch (nested-region)
// diagnostics once attached.
type AnnotationOracle struct {
	p   *prog.Program
	cfg *prog.CFG
	g   *graph
}

// NewAnnotationOracle builds the oracle for p. cfg may be nil, in which
// case a CFG is built internally.
func NewAnnotationOracle(p *prog.Program, cfg *prog.CFG) *AnnotationOracle {
	if cfg == nil {
		cfg = prog.BuildCFG(p)
	}
	return &AnnotationOracle{p: p, cfg: cfg, g: buildGraph(p)}
}

// Check validates the candidate annotation d for the branch at pc as if
// it were the only annotation on the program. The nested-region check
// against other annotated branches is not applied (it depends on the
// full annotation set); everything else — loop flag, class, CFM
// reachability on both paths, distance bound, degeneracy, post-dominator
// consistency — is.
func (o *AnnotationOracle) Check(pc uint64, d *prog.Diverge, opts Options) Diags {
	ds, _ := checkBranch(o.p, o.cfg, o.g, pc, d, opts.norm())
	return ds.sorted()
}

// CheckAnnotation is a convenience one-shot form of AnnotationOracle for
// callers validating a single candidate annotation.
func CheckAnnotation(p *prog.Program, pc uint64, d *prog.Diverge, opts Options) Diags {
	return NewAnnotationOracle(p, nil).Check(pc, d, opts)
}

func directionWord(loop bool) string {
	if loop {
		return "backward to/at"
	}
	return "forward of"
}

// pastIPostDom reports whether cfm lies strictly beyond ipdom: reachable
// from the post-dominator but not vice versa. Inside a loop the two reach
// each other through the back edge, so loop-internal points are never
// "past" the post-dominator.
func pastIPostDom(g *graph, ipdom, cfm uint64, maxDist int) bool {
	if ipdom == cfm {
		return false
	}
	if _, fwd := g.distWithin(ipdom, maxDist, NoPC)[cfm]; !fwd {
		return false
	}
	_, back := g.distWithin(cfm, maxDist, NoPC)[ipdom]
	return !back
}
