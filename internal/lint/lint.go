// Package lint statically verifies programs and their diverge-branch
// annotations before they reach the simulator.
//
// The paper's mechanism fails quietly, not loudly, when its control-flow
// metadata is wrong: a CFM point that is unreachable (or too far) on one
// side of a diverge branch degrades dynamic predication into wasted
// dual-path fetch, and a malformed program image turns into a wild PC
// deep inside a pipeline run. lint.Program checks the instruction image
// (targets, terminators, reachability, call discipline, register
// def-before-use); lint.Annotations checks every diverge annotation
// against the static CFG (CFM legality within the profiler's distance
// bound, branch-class and loop-flag consistency, nested-region
// containment). Both return structured diagnostics rather than a single
// error so callers — cmd/dmplint, the -lint flags on dmpsim/dmpexp, the
// workload gate test, and the fuzz harness — can distinguish hard
// illegality (Severity Error) from suspicious-but-runnable shapes
// (Severity Warning).
//
// The soundness contract, enforced by the fuzz tests in internal/core:
// a program with no Error-severity diagnostics runs to completion on
// internal/emu without faulting.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Severity grades a diagnostic.
type Severity uint8

const (
	// Warning marks a suspicious construct that still executes: dead
	// code, a possibly-uninitialized register read, a discarded link.
	Warning Severity = iota
	// Error marks hard illegality: the program (or annotation) can fault
	// the emulator, hang, or silently break the predication contract.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// NoPC is the PC attached to whole-program diagnostics.
const NoPC = ^uint64(0)

// Diag is one finding.
type Diag struct {
	PC    uint64 // offending instruction, or NoPC
	Check string // stable check identifier, e.g. "cfm-too-far"
	Sev   Severity
	Msg   string
}

func (d Diag) String() string {
	if d.PC == NoPC {
		return fmt.Sprintf("%s: %s: %s", d.Sev, d.Check, d.Msg)
	}
	return fmt.Sprintf("pc %d: %s: %s: %s", d.PC, d.Sev, d.Check, d.Msg)
}

// Diags is a diagnostic list, ordered by PC then check.
type Diags []Diag

// HasErrors reports whether any diagnostic is Error severity.
func (ds Diags) HasErrors() bool {
	for _, d := range ds {
		if d.Sev == Error {
			return true
		}
	}
	return false
}

// Errors returns only the Error-severity diagnostics.
func (ds Diags) Errors() Diags {
	var out Diags
	for _, d := range ds {
		if d.Sev == Error {
			out = append(out, d)
		}
	}
	return out
}

// ByCheck returns the diagnostics for one check id.
func (ds Diags) ByCheck(id string) Diags {
	var out Diags
	for _, d := range ds {
		if d.Check == id {
			out = append(out, d)
		}
	}
	return out
}

func (ds Diags) String() string {
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (ds *Diags) add(pc uint64, check string, sev Severity, format string, args ...any) {
	*ds = append(*ds, Diag{PC: pc, Check: check, Sev: sev, Msg: fmt.Sprintf(format, args...)})
}

func (ds Diags) sorted() Diags {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].PC != ds[j].PC {
			return ds[i].PC < ds[j].PC
		}
		return ds[i].Check < ds[j].Check
	})
	return ds
}

// Options tunes the checks.
type Options struct {
	// MaxDist is the maximum static distance (in instructions) from a
	// diverge branch to each of its CFM points, matching the profiler's
	// dynamic bound. 0 selects the paper's 120.
	MaxDist int
	// StrictUninit reports every register read the must-defined dataflow
	// cannot prove initialized. The default reports only reads of
	// registers never written anywhere in reachable code: workloads
	// deliberately accumulate into zero-initialized registers, so the
	// path-sensitive result is advisory while an orphan read is almost
	// certainly a register-name typo.
	StrictUninit bool
}

func (o Options) norm() Options {
	if o.MaxDist <= 0 {
		o.MaxDist = 120 // profile.DefaultOptions().MaxDist
	}
	return o
}

// Check runs Program and, when the image itself is error-free,
// Annotations on a freshly built CFG. It is the one-call entry point used
// by cmd/dmplint and the -lint flags.
func Check(p *prog.Program, opts Options) Diags {
	ds := program(p, opts)
	if ds.HasErrors() {
		return ds
	}
	ds = append(ds, Annotations(p, prog.BuildCFG(p), opts)...)
	return ds.sorted()
}

// Program checks the static well-formedness of the instruction image
// with default options. It subsumes prog.Program.Validate and adds
// reachability, terminator, call-discipline and def-before-use analysis.
func Program(p *prog.Program) Diags {
	return program(p, Options{})
}

func program(p *prog.Program, opts Options) Diags {
	var ds Diags
	n := uint64(len(p.Code))
	if n == 0 {
		ds.add(NoPC, "empty", Error, "program has no instructions")
		return ds
	}

	// Opcode validity and direct-target ranges; note HALT presence.
	halted := false
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			ds.add(uint64(pc), "opcode", Error, "invalid opcode %d", uint8(in.Op))
			continue
		}
		switch in.Op {
		case isa.BR, isa.JMP, isa.CALL:
			if in.Target >= n {
				ds.add(uint64(pc), "target-range", Error,
					"%v targets %d outside code (len %d)", in, in.Target, n)
			}
		case isa.HALT:
			halted = true
		}
	}
	if !halted {
		ds.add(NoPC, "no-halt", Error, "program has no HALT instruction")
	}
	if p.Entry >= n {
		ds.add(NoPC, "entry-range", Error, "entry %d outside code (len %d)", p.Entry, n)
	}
	if ds.HasErrors() {
		// The graph analyses below assume in-range targets.
		return ds.sorted()
	}

	// Terminator sanity: the last instruction must not fall through off
	// the end of the code image.
	if last := p.Code[n-1]; canFallThrough(last.Op) {
		ds.add(n-1, "fallthrough-end", Error,
			"%v falls through off the end of the code image", last)
	}

	g := buildGraph(p)

	// Reachability from the entry. Unreachable code executes never, so it
	// is a Warning: wasted image, likely generator bug, but harmless.
	// Indirect jumps and calls can target any labelled PC, so programs
	// that use them get every label as an extra root.
	roots := []uint64{p.Entry}
	for _, in := range p.Code {
		if in.Op == isa.JR || in.Op == isa.CALLR {
			for _, pc := range p.Labels {
				roots = append(roots, pc)
			}
			break
		}
	}
	reach := g.reachableFrom(roots)
	cfg := prog.BuildCFG(p)
	for _, b := range cfg.Blocks {
		if !reach[b.Start] {
			ds.add(b.Start, "unreachable", Warning,
				"block [%d,%d) is unreachable from entry %d", b.Start, b.End, p.Entry)
		}
	}

	// Exit reachability: every reachable instruction must be able to
	// reach a HALT (or leave the static graph through RET/JR, whose
	// continuation the caller provides). A reachable instruction with no
	// static path to an exit hangs the machine, so it is an Error.
	canExit := g.reachesExit()
	for pc := uint64(0); pc < n; pc++ {
		if reach[pc] && !canExit[pc] {
			bi := cfg.BlockOf(pc)
			b := cfg.Blocks[bi]
			if pc == b.Start { // one diagnostic per block, not per instruction
				ds.add(pc, "no-exit-path", Error,
					"block [%d,%d) cannot reach HALT or a return", b.Start, b.End)
			}
		}
	}

	// Call discipline.
	ds = append(ds, checkCalls(p, g, reach)...)

	// Register def-before-use (registers architecturally read as zero
	// before the first write, so this is advisory).
	ds = append(ds, checkDefBeforeUse(p, cfg, reach, opts.StrictUninit)...)

	return ds.sorted()
}

func canFallThrough(op isa.Op) bool {
	switch op {
	case isa.JMP, isa.JR, isa.RET, isa.HALT:
		return false
	}
	return true
}

// checkCalls verifies the CALL/RET pairing discipline: calls must keep
// their link (a discarded link register makes the callee's RET a wild
// jump), and every called function must be able to return or halt.
func checkCalls(p *prog.Program, g *graph, reach map[uint64]bool) Diags {
	var ds Diags
	targets := map[uint64]uint64{} // callee entry -> one representative call site
	for pc, in := range p.Code {
		switch in.Op {
		case isa.CALL, isa.CALLR:
			if !reach[uint64(pc)] {
				continue
			}
			if in.Dst == isa.Zero {
				ds.add(uint64(pc), "call-discards-link", Warning,
					"%v discards its link register; the callee cannot return here", in)
			}
			if in.Op == isa.CALL {
				if _, ok := targets[in.Target]; !ok {
					targets[in.Target] = uint64(pc)
				}
			}
		case isa.RET:
			if reach[uint64(pc)] && in.Src1 == isa.Zero {
				ds.add(uint64(pc), "ret-zero", Warning,
					"ret reads the zero register and always jumps to PC 0")
			}
		}
	}
	// Each callee must reach RET, HALT or an indirect jump without
	// entering nested callees (nested calls are collapsed).
	for entry, site := range targets {
		if !calleeReturns(p, entry) {
			ds.add(entry, "callee-no-return", Warning,
				"function called from pc %d never reaches ret/halt", site)
		}
	}
	return ds
}

// calleeReturns walks the intra-procedural flow from a function entry
// (collapsing nested calls to their fall-through) looking for any RET,
// HALT, or indirect jump.
func calleeReturns(p *prog.Program, entry uint64) bool {
	n := uint64(len(p.Code))
	seen := map[uint64]bool{}
	stack := []uint64{entry}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pc >= n || seen[pc] {
			continue
		}
		seen[pc] = true
		in := p.Code[pc]
		switch in.Op {
		case isa.RET, isa.HALT, isa.JR:
			return true
		case isa.JMP:
			stack = append(stack, in.Target)
		case isa.BR:
			stack = append(stack, in.Target, pc+1)
		default: // includes CALL/CALLR collapsed to their return point
			stack = append(stack, pc+1)
		}
	}
	return false
}

// checkDefBeforeUse runs a forward must-defined dataflow over the CFG
// and warns on register reads that may happen before any write.
// Registers read as zero until written, so relying on that is legal and
// the workloads do it deliberately (zero-initialized accumulators); by
// default only reads of registers never written anywhere reachable are
// reported ("undef-read", a near-certain typo), while strict mode also
// reports everything the dataflow cannot prove defined ("maybe-undef").
func checkDefBeforeUse(p *prog.Program, cfg *prog.CFG, reach map[uint64]bool, strict bool) Diags {
	var ds Diags
	n := len(cfg.Blocks)
	if n == 0 {
		return ds
	}
	const allDefined = ^uint32(0)

	// preds from the CFG's forward edges.
	preds := make([][]int, n)
	for i, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], i)
		}
	}
	entryBlock := cfg.BlockOf(p.Entry)

	// in/out are bitmasks of must-defined registers. Everything starts
	// "all defined" except the entry, per standard must-analysis; blocks
	// with no predecessors (function entries reached through CALL, which
	// the CFG does not edge) stay all-defined, i.e. exempt.
	in := make([]uint32, n)
	out := make([]uint32, n)
	for i := range out {
		out[i] = allDefined
	}
	entryDefs := uint32(1<<isa.Zero | 1<<isa.SP) // emulator initializes SP

	transfer := func(i int, defs uint32) uint32 {
		b := cfg.Blocks[i]
		for pc := b.Start; pc < b.End; pc++ {
			inst := p.Code[pc]
			if inst.HasDst() {
				defs |= 1 << inst.Dst
			}
		}
		return defs
	}

	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			var newIn uint32
			switch {
			case i == entryBlock:
				// Program start guarantees only the initial registers;
				// a back-edge into the entry can only shrink that.
				newIn = entryDefs
				for _, pb := range preds[i] {
					newIn &= out[pb]
				}
			case len(preds[i]) == 0:
				// Function entries reached through CALL (the CFG has no
				// call edges) are exempt: the caller's state is unknown.
				newIn = allDefined
			default:
				newIn = allDefined
				for _, pb := range preds[i] {
					newIn &= out[pb]
				}
			}
			newOut := transfer(i, newIn)
			if newIn != in[i] || newOut != out[i] {
				in[i], out[i] = newIn, newOut
				changed = true
			}
		}
	}

	// Registers written by any reachable instruction: reads of the rest
	// can never observe anything but zero, a near-certain typo.
	writtenAnywhere := uint32(1<<isa.Zero | 1<<isa.SP)
	for pc := range p.Code {
		if reach[uint64(pc)] && p.Code[pc].HasDst() {
			writtenAnywhere |= 1 << p.Code[pc].Dst
		}
	}

	warned := map[isa.Reg]bool{} // one warning per register keeps output readable
	for i, b := range cfg.Blocks {
		if !reach[b.Start] {
			continue
		}
		defs := in[i]
		for pc := b.Start; pc < b.End; pc++ {
			inst := p.Code[pc]
			for _, src := range [2]struct {
				use bool
				r   isa.Reg
			}{{inst.Uses1(), inst.Src1}, {inst.Uses2(), inst.Src2}} {
				if !src.use || src.r == isa.Zero || defs&(1<<src.r) != 0 || warned[src.r] {
					continue
				}
				switch {
				case writtenAnywhere&(1<<src.r) == 0:
					warned[src.r] = true
					ds.add(pc, "undef-read", Warning,
						"%v reads %s, which no reachable instruction ever writes", inst, src.r)
				case strict:
					warned[src.r] = true
					ds.add(pc, "maybe-undef", Warning,
						"%v reads %s before any write on some path (reads as zero)",
						inst, src.r)
				}
			}
			if inst.HasDst() {
				defs |= 1 << inst.Dst
			}
		}
	}
	return ds
}
