package lint_test

import (
	"fmt"
	"testing"

	"dmp/internal/exp"
	"dmp/internal/lint"
	"dmp/internal/workload"
)

// TestWorkloadsLintClean is the calibration gate: every benchmark's
// annotated program — all 15 workloads, both scales the experiments use,
// with and without loop diverge marking — must be completely
// diagnostic-clean, warnings included. The lint checks are tuned so that
// legitimate profiler output never trips them; any finding here is
// either a profiler regression or an over-eager check, and both need
// fixing before merge.
func TestWorkloadsLintClean(t *testing.T) {
	scales := []int{1, 3}
	if testing.Short() {
		scales = []int{1}
	}
	for _, w := range workload.All() {
		for _, scale := range scales {
			for _, loops := range []bool{false, true} {
				name := fmt.Sprintf("%s/scale%d/loops=%v", w.Name, scale, loops)
				t.Run(name, func(t *testing.T) {
					annotated := exp.Annotated
					if loops {
						annotated = exp.AnnotatedLoops
					}
					p, err := annotated(w.Name, scale)
					if err != nil {
						t.Fatalf("annotate: %v", err)
					}
					if ds := lint.Check(p, lint.Options{}); len(ds) != 0 {
						t.Errorf("not lint-clean:\n%s", ds)
					}
				})
			}
		}
	}
}
