package telemetry

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Progress is a live single-line renderer over a Feed: it repaints one
// status line in place (carriage return, no scroll) on a TTY, or prints
// occasional plain lines on a pipe. Attach with feed.Subscribe(p.Event)
// and call Finish when the run ends to terminate the line.
type Progress struct {
	w   io.Writer
	tty bool

	mu       sync.Mutex
	done     uint64
	total    float64
	current  string
	hits     uint64
	misses   uint64
	lastLen  int
	lastDraw time.Time
	finished bool
}

// NewProgress builds a renderer writing to w; tty selects in-place
// repainting (pass IsTerminal(w)).
func NewProgress(w io.Writer, tty bool) *Progress {
	return &Progress{w: w, tty: tty}
}

// IsTerminal reports whether w is an *os.File on a character device —
// the stdlib-only TTY check (no termios needed just to pick a render
// style).
func IsTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	st, err := f.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}

// Event consumes one feed event; pass it to Feed.Subscribe.
func (p *Progress) Event(ev Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished {
		return
	}
	switch ev.Kind {
	case "progress":
		p.done = ev.N
		if ev.V > 0 {
			p.total = ev.V
		}
		p.current = ev.Msg
	case "simulation":
		switch ev.Msg {
		case "hit":
			p.hits++
		case "miss":
			p.misses++
		}
	case "experiment":
		if ev.Msg == "start" {
			p.current = ev.Name
		}
	default:
		return
	}
	p.draw(ev.T)
}

func (p *Progress) draw(t float64) {
	// Rate-limit repaints: a scale-3 suite emits thousands of events and
	// a TTY repaint per event is pure flicker.
	now := time.Now()
	if now.Sub(p.lastDraw) < 100*time.Millisecond {
		return
	}
	p.lastDraw = now

	var b strings.Builder
	fmt.Fprintf(&b, "[%6.1fs]", t)
	if p.total > 0 {
		fmt.Fprintf(&b, " %d/%d", p.done, uint64(p.total))
	} else if p.done > 0 {
		fmt.Fprintf(&b, " %d done", p.done)
	}
	if p.hits+p.misses > 0 {
		fmt.Fprintf(&b, " · cache %d hit %d miss", p.hits, p.misses)
	}
	if p.current != "" {
		fmt.Fprintf(&b, " · %s", p.current)
	}
	line := b.String()
	if p.tty {
		pad := ""
		if n := p.lastLen - len(line); n > 0 {
			pad = strings.Repeat(" ", n)
		}
		fmt.Fprintf(p.w, "\r%s%s", line, pad)
		p.lastLen = len(line)
	} else {
		fmt.Fprintln(p.w, line)
	}
}

// Finish terminates the status line (newline on a TTY) and stops
// further rendering.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished {
		return
	}
	p.finished = true
	if p.tty && p.lastLen > 0 {
		fmt.Fprintln(p.w)
	}
}
