package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// Artifact names inside a telemetry output directory (-telemetry-out).
// dmpobs -telemetry reads the same names back.
const (
	SpansFile       = "spans.json"   // Chrome trace_event array (Perfetto)
	EventsFile      = "events.jsonl" // progress feed, one Event per line
	MetricsFile     = "metrics.json" // final Snapshot as JSON
	MetricsPromFile = "metrics.prom" // final Snapshot, Prometheus text
)

// OpenDir creates dir (if needed) and returns a Set writing spans.json
// and events.jsonl into it; the underlying files close with the Set.
// The metrics files are written separately by WriteMetricsDir from the
// snapshot Set.Close returns, so the recorded finals are exactly the
// snapshot the feed's deltas sum to.
func OpenDir(dir string) (*Set, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sf, err := os.Create(filepath.Join(dir, SpansFile))
	if err != nil {
		return nil, err
	}
	ef, err := os.Create(filepath.Join(dir, EventsFile))
	if err != nil {
		sf.Close()
		return nil, err
	}
	return New(Options{SpanW: sf, EventW: ef, Closers: []io.Closer{ef, sf}}), nil
}

// WriteMetricsDir records snap as metrics.json and metrics.prom in dir.
func WriteMetricsDir(dir string, snap Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, MetricsFile), append(data, '\n'), 0o644); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, MetricsPromFile))
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
