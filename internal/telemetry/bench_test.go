package telemetry

import (
	"testing"
	"time"
)

// These benchmarks bound the per-operation cost of the disabled hot
// path — the only telemetry code that runs when no Set is enabled.
// Instrumentation sites execute at per-simulation / per-run density
// (hundreds of calls over a multi-second suite), so single-digit
// nanoseconds per op keeps the whole-suite disabled overhead far
// below the 2% contract in BENCH_telemetry.json; the macrobenchmark
// there confirms the end-to-end number sits within host noise.

var (
	benchCounter = NewCounter("dmp_bench_counter_total", "benchmark fixture")
	benchGauge   = NewGauge("dmp_bench_gauge", "benchmark fixture")
	benchHist    = NewHistogram("dmp_bench_hist_seconds", "benchmark fixture", SecondsBuckets())
)

func BenchmarkCounterInc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchCounter.Inc()
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchGauge.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchHist.Observe(0.015)
	}
}

// BenchmarkDisabledGuard is the per-site cost of the Active() load
// that guards every span/feed emission when telemetry is off.
func BenchmarkDisabledGuard(b *testing.B) {
	Enable(nil)
	for i := 0; i < b.N; i++ {
		if tel := Active(); tel != nil {
			b.Fatal("telemetry unexpectedly active")
		}
	}
}

// BenchmarkDisabledSpan is the full nil-safe span sequence an
// instrumentation site pays when disabled: Begin on a nil tracer,
// Child and End on the resulting nil span.
func BenchmarkDisabledSpan(b *testing.B) {
	Enable(nil)
	tr := ActiveTracer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("bench", "bench")
		child := sp.Child("inner", "bench")
		child.End()
		sp.End()
	}
}

// BenchmarkDisabledSpanAt covers the deferred-emission form used by
// the sample pipeline (a span recorded after the fact from a start
// time and duration).
func BenchmarkDisabledSpanAt(b *testing.B) {
	Enable(nil)
	tr := ActiveTracer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		tr.SpanAt("bench", "bench", start, time.Microsecond, 0)
	}
}
