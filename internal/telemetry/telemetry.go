// Package telemetry is the host-side observability layer: where
// internal/obs makes the *simulated machine* observable (PR 4's probe
// sinks), this package makes the *host infrastructure* observable — the
// process-wide result cache and worker pool (internal/exp), the streamed
// sampling pipeline (internal/sample), and the differential harness
// (internal/gen/diff).
//
// It has three parts:
//
//   - a process-wide metrics Registry of counters, gauges and
//     fixed-bucket histograms (metrics.go). Metric hot paths are atomic
//     and allocation-free; Snapshot/Delta mirror core.Stats.Delta, and a
//     snapshot writes itself as Prometheus text or JSON.
//   - a span Tracer (span.go) emitting Chrome trace_event JSON, so a
//     whole experiment run (suite → experiment → simulation →
//     sample-pipeline stage → interval job) loads into one Perfetto
//     timeline next to the machine-level pipetraces.
//   - a structured progress-event Feed (feed.go): JSONL writer plus an
//     in-process subscriber API. It replaces dmpexp's ad-hoc stderr
//     timing/hit-miss lines and is the stream a future dmpserve daemon
//     serves over SSE.
//
// The perturbation contract inherits PR 4's two halves: with telemetry
// disabled the instrumentation costs only atomic counter updates and
// nil-pointer compares on host-side (never simulated) code paths,
// measured within noise (<2%, BENCH_telemetry.json); with telemetry
// fully attached every golden experiment table stays byte-identical,
// because nothing here touches core.Config, core.Stats or any simulated
// state (pinned by TestTelemetryDoesNotPerturb). No telemetry knob
// enters Config.Canonical().
//
// Activation is process-global, mirroring the process-global things it
// observes (the exp result cache and worker pool): Enable installs a
// *Set, Active returns it (nil = disabled). Metrics are package
// variables registered at init and always live — an atomic add is
// cheaper than a branch-and-load dance and keeps the hot path
// branch-free — while spans and feed events, which allocate and write,
// are emitted only behind a nil check on the active Set.
package telemetry

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// Set bundles one process's attached telemetry: the registry it
// snapshots, the span tracer, and the progress feed. Construct with
// New; a nil *Set is the disabled state and every method on it is a
// cheap no-op, so call sites need no branching of their own.
type Set struct {
	reg    *Registry
	tracer *Tracer
	feed   *Feed

	mu       sync.Mutex
	lastSnap Snapshot // basis of the next EmitMetrics delta
	closers  []io.Closer
	closed   bool
}

// Options configures New. Any writer may be nil to disable that output;
// the feed's subscriber API works with or without a writer.
type Options struct {
	// SpanW receives the Chrome trace_event JSON array of host-side
	// spans (Perfetto-loadable).
	SpanW io.Writer
	// EventW receives the progress feed as JSON Lines.
	EventW io.Writer
	// Registry overrides the process default registry (tests).
	Registry *Registry
	// Closers are closed (in reverse order) by Set.Close, after the
	// tracer and feed flush — typically the underlying files.
	Closers []io.Closer
}

// New builds a telemetry set. It does not install it; call Enable.
func New(o Options) *Set {
	reg := o.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	s := &Set{reg: reg, feed: NewFeed(o.EventW), closers: o.Closers}
	if o.SpanW != nil {
		s.tracer = NewTracer(o.SpanW)
	}
	return s
}

// Registry returns the set's metrics registry (the process default
// unless overridden). Nil-safe: a nil set returns the default registry.
func (s *Set) Registry() *Registry {
	if s == nil {
		return DefaultRegistry()
	}
	return s.reg
}

// Tracer returns the span tracer, or nil when the set is nil or was
// built without a span writer. A nil *Tracer is itself inert, so
// callers may chain without checking.
func (s *Set) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Feed returns the progress feed, or nil on a nil set (a nil *Feed is
// inert).
func (s *Set) Feed() *Feed {
	if s == nil {
		return nil
	}
	return s.feed
}

// EmitMetrics publishes a "metrics" progress event carrying the delta
// of every registered metric since the previous EmitMetrics (or since
// Enable). The final delta is emitted by Close against the exact
// snapshot Close then reports, so the deltas on the feed always sum to
// the final snapshot — the invariant dmpobs -telemetry validates.
func (s *Set) EmitMetrics() {
	if s == nil {
		return
	}
	s.mu.Lock()
	snap := s.reg.Snapshot()
	delta := snap.Delta(s.lastSnap)
	s.lastSnap = snap
	s.mu.Unlock()
	s.feed.Emit(Event{Kind: "metrics", Metrics: &delta})
}

// Close emits the final metrics delta, flushes the tracer and feed, and
// closes the attached closers. It returns the final metrics snapshot —
// the one the emitted deltas sum to — so the caller can write it out.
func (s *Set) Close() (Snapshot, error) {
	if s == nil {
		return Snapshot{}, nil
	}
	s.mu.Lock()
	if s.closed {
		last := s.lastSnap
		s.mu.Unlock()
		return last, nil
	}
	s.closed = true
	snap := s.reg.Snapshot()
	delta := snap.Delta(s.lastSnap)
	s.lastSnap = snap
	s.mu.Unlock()

	s.feed.Emit(Event{Kind: "metrics", Metrics: &delta})
	var errs []error
	if s.tracer != nil {
		if err := s.tracer.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := s.feed.Close(); err != nil {
		errs = append(errs, err)
	}
	for i := len(s.closers) - 1; i >= 0; i-- {
		if err := s.closers[i].Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return snap, errors.Join(errs...)
}

// --- process-global activation ---

var active atomic.Pointer[Set]

// Enable installs s as the process's active telemetry set (nil
// disables). Like the exp worker pool, activation is process-wide: the
// instrumented packages observe whatever set is active when they run.
func Enable(s *Set) { active.Store(s) }

// Active returns the active set, or nil when telemetry is disabled.
// The load is one atomic pointer read; instrumentation sites call it
// once per logical operation, never per hot-loop iteration.
func Active() *Set { return active.Load() }

// ActiveTracer returns the active set's tracer (nil when disabled).
func ActiveTracer() *Tracer { return Active().Tracer() }

// ActiveFeed returns the active set's feed (nil when disabled).
func ActiveFeed() *Feed { return Active().Feed() }

// Emit publishes an event on the active feed, if any.
func Emit(ev Event) { Active().Feed().Emit(ev) }
