package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Tracer emits host-side spans as a Chrome trace_event JSON array —
// the same format obs.Pipetrace uses for the simulated pipeline, so a
// run's host spans and its pipetraces load into one Perfetto session.
//
// Spans form a tree: Begin starts a root, Span.Child a nested span on
// the same lane (tid), Span.ChildAsync a span on a fresh lane for work
// that runs concurrently with its parent (worker-pool simulations,
// pipeline interval jobs). Events are written at End as "X" (complete)
// events carrying the span id and parent id in args, which is what
// dmpobs -telemetry uses to validate nesting.
//
// All methods are safe on a nil *Tracer and a nil *Span, so call sites
// thread spans without guarding (matching the core.Probe convention).
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	epoch  time.Time
	events int
	nextID uint64
	closed bool
}

// NewTracer starts a tracer writing to w. Call Close to finish the
// JSON array.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16), epoch: time.Now()}
	t.w.WriteString("[\n")
	return t
}

// Span is one in-flight unit of host work. End completes it; child
// spans may outlive their parent's End call (async lanes), dmpobs only
// checks containment for same-lane children.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	tid    uint64
	name   string
	cat    string
	start  time.Time
}

// Begin starts a root span on a fresh lane. cat groups spans in
// Perfetto (e.g. "exp", "sample").
func (t *Tracer) Begin(name, cat string) *Span {
	if t == nil {
		return nil
	}
	id := t.allocID()
	return &Span{t: t, id: id, tid: id, name: name, cat: cat, start: time.Now()}
}

func (t *Tracer) allocID() uint64 {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return id
}

// Child starts a nested span on the parent's lane: sequential sub-work,
// rendered stacked under the parent in Perfetto.
func (s *Span) Child(name, cat string) *Span {
	if s == nil {
		return nil
	}
	id := s.t.allocID()
	return &Span{t: s.t, id: id, parent: s.id, tid: s.tid, name: name, cat: cat, start: time.Now()}
}

// ChildAsync starts a nested span on a fresh lane: work that overlaps
// its siblings (a pooled simulation, a pipeline interval job).
func (s *Span) ChildAsync(name, cat string) *Span {
	if s == nil {
		return nil
	}
	id := s.t.allocID()
	return &Span{t: s.t, id: id, parent: s.id, tid: id, name: name, cat: cat, start: time.Now()}
}

// End completes the span and writes its event.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.emit(s.name, s.cat, s.id, s.parent, s.tid, s.start, now.Sub(s.start))
}

// ID returns the span's id (0 for a nil span), for correlating feed
// events with trace lanes.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Tracer returns the tracer the span belongs to (nil for a nil span).
// Hot paths capture it once and emit with SpanAt behind a nil check.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// SpanAt records an already-measured span from scalar arguments: name
// and cat must be constant strings, start/dur come from the caller's
// own clock reads. This is the form //dmp:hotpath code uses — wrapped
// in an `if tr != nil` guard it costs nothing when tracing is off and
// allocates nothing when on (no *Span object; the emit path reuses the
// tracer's buffer). parent is the enclosing span's ID (0 for a root);
// the event gets its own fresh lane.
func (t *Tracer) SpanAt(name, cat string, start time.Time, dur time.Duration, parent uint64) {
	if t == nil {
		return
	}
	id := t.allocID()
	t.emit(name, cat, id, parent, id, start, dur)
}

func (t *Tracer) emit(name, cat string, id, parent, tid uint64, start time.Time, dur time.Duration) {
	ts := start.Sub(t.epoch).Microseconds()
	if ts < 0 {
		ts = 0
	}
	us := dur.Microseconds()
	if us < 1 {
		us = 1 // Perfetto drops zero-width complete events
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if t.events > 0 {
		t.w.WriteString(",\n")
	}
	t.events++
	fmt.Fprintf(t.w,
		`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":{"id":%d,"parent":%d}}`,
		escape(name), cat, ts, us, tid, id, parent)
}

func escape(s string) string {
	// %q handles JSON-relevant escaping for the names we generate; strip
	// raw newlines defensively so one span can't corrupt the array.
	return strings.ReplaceAll(s, "\n", " ")
}

// Close terminates the JSON array and flushes. Idempotent.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	t.w.WriteString("\n]\n")
	return t.w.Flush()
}
