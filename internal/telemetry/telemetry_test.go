package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 10, 100})

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	h.Observe(0.5)  // bucket 0
	h.Observe(10)   // bucket 1 (le is inclusive)
	h.Observe(50)   // bucket 2
	h.Observe(1000) // above all bounds: count/sum only
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 1060.5 {
		t.Fatalf("hist sum = %g, want 1060.5", h.Sum())
	}
	s := r.Snapshot()
	want := []uint64{1, 1, 1}
	for i, b := range s.Histograms[0].Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b, want[i])
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBoundsMustAscend(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	r.Histogram("h", "", []float64{1, 1})
}

func TestSnapshotDeltaAddRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2})

	c.Add(3)
	g.Set(5)
	h.Observe(0.5)
	first := r.Snapshot()

	c.Add(2)
	g.Set(9)
	h.Observe(1.5)
	h.Observe(7)
	second := r.Snapshot()

	d := second.Delta(first)
	if d.Counters[0].Value != 2 {
		t.Fatalf("counter delta = %d, want 2", d.Counters[0].Value)
	}
	if d.Gauges[0].Value != 9 {
		t.Fatalf("gauge delta carries current value; got %d, want 9", d.Gauges[0].Value)
	}
	if d.Histograms[0].Count != 2 || d.Histograms[0].Sum != 8.5 {
		t.Fatalf("hist delta count/sum = %d/%g, want 2/8.5",
			d.Histograms[0].Count, d.Histograms[0].Sum)
	}
	if d.Histograms[0].Buckets[0] != 0 || d.Histograms[0].Buckets[1] != 1 {
		t.Fatalf("hist delta buckets = %v", d.Histograms[0].Buckets)
	}

	// first + delta must reproduce second exactly (the dmpobs
	// validation invariant).
	back := first.Add(d)
	bj, _ := json.Marshal(back)
	sj, _ := json.Marshal(second)
	if !bytes.Equal(bj, sj) {
		t.Fatalf("Add(Delta) round trip:\n got %s\nwant %s", bj, sj)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dmp_hits_total", "").Add(3)
	r.Gauge("dmp_depth", "").Set(-2)
	h := r.Histogram("dmp_wait_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dmp_hits_total counter\ndmp_hits_total 3\n",
		"# TYPE dmp_depth gauge\ndmp_depth -2\n",
		`dmp_wait_seconds_bucket{le="0.1"} 1`,
		`dmp_wait_seconds_bucket{le="1"} 2`,
		`dmp_wait_seconds_bucket{le="+Inf"} 3`,
		"dmp_wait_seconds_sum 5.55\ndmp_wait_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", SecondsBuckets())
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.42)
	}); n != 0 {
		t.Fatalf("metric hot path allocates: %v allocs/op", n)
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", []float64{10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("hist count/sum = %d/%g, want 8000/8000", h.Count(), h.Sum())
	}
}

type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  uint64 `json:"tid"`
	Args struct {
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
	} `json:"args"`
}

func TestTracerChromeTrace(t *testing.T) {
	var b bytes.Buffer
	tr := NewTracer(&b)
	root := tr.Begin("suite", "exp")
	child := root.Child("experiment", "exp")
	async := child.ChildAsync("simulation", "exp")
	async.End()
	child.End()
	tr.SpanAt("interval", "sample", time.Now().Add(-time.Millisecond), time.Millisecond, child.ID())
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	var evs []traceEvent
	if err := json.Unmarshal(b.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, b.String())
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byName := map[string]traceEvent{}
	ids := map[uint64]bool{}
	for _, ev := range evs {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Dur < 1 {
			t.Fatalf("malformed event %+v", ev)
		}
		byName[ev.Name] = ev
		ids[ev.Args.ID] = true
	}
	if byName["suite"].Args.Parent != 0 {
		t.Fatal("root span has a parent")
	}
	for _, name := range []string{"experiment", "simulation", "interval"} {
		if p := byName[name].Args.Parent; p == 0 || !ids[p] {
			t.Fatalf("%s parent %d not a known span id", name, p)
		}
	}
	// Same-lane child shares tid; async child does not.
	if byName["experiment"].Tid != byName["suite"].Tid {
		t.Fatal("Child did not stay on the parent lane")
	}
	if byName["simulation"].Tid == byName["experiment"].Tid {
		t.Fatal("ChildAsync did not get a fresh lane")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	var sp *Span
	var f *Feed
	var s *Set
	tr.SpanAt("x", "y", time.Now(), time.Second, 0)
	tr.Begin("x", "y").Child("a", "b").ChildAsync("c", "d").End()
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span id")
	}
	f.Emit(Event{Kind: "x"})
	f.Subscribe(func(Event) {})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s.EmitMetrics()
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Registry() == nil || s.Tracer() != nil || s.Feed() != nil {
		t.Fatal("nil Set accessors")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFeedJSONLAndSubscribers(t *testing.T) {
	var b bytes.Buffer
	f := NewFeed(&b)
	var got []Event
	f.Subscribe(func(ev Event) { got = append(got, ev) })
	f.Emit(Event{Kind: "simulation", Name: "mcf/base", Msg: "miss"})
	f.Emit(Event{Kind: "progress", N: 1, V: 5})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f.Emit(Event{Kind: "late"}) // dropped after close

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2:\n%s", len(lines), b.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "simulation" || ev.Name != "mcf/base" || ev.Msg != "miss" {
		t.Fatalf("bad first event: %+v", ev)
	}
	if len(got) != 2 || got[1].N != 1 {
		t.Fatalf("subscriber got %+v", got)
	}
}

func TestSetDeltasSumToFinal(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	var events bytes.Buffer
	s := New(Options{EventW: &events, Registry: r})

	c.Add(10)
	s.EmitMetrics()
	c.Add(5)
	s.EmitMetrics()
	c.Add(1)
	final, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if final.Counters[0].Value != 16 {
		t.Fatalf("final = %d, want 16", final.Counters[0].Value)
	}

	// Fold the emitted deltas back together; they must equal the final
	// snapshot Close returned.
	var sum Snapshot
	nmetrics := 0
	for _, line := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind != "metrics" {
			continue
		}
		nmetrics++
		if nmetrics == 1 {
			sum = *ev.Metrics
		} else {
			sum = sum.Add(*ev.Metrics)
		}
	}
	if nmetrics != 3 {
		t.Fatalf("got %d metrics events, want 3", nmetrics)
	}
	fj, _ := json.Marshal(final)
	sj, _ := json.Marshal(sum)
	if !bytes.Equal(fj, sj) {
		t.Fatalf("delta sum != final:\n got %s\nwant %s", sj, fj)
	}

	// Close is idempotent and keeps returning the final snapshot.
	again, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(again)
	if !bytes.Equal(aj, fj) {
		t.Fatal("second Close changed the snapshot")
	}
}

func TestEnableActive(t *testing.T) {
	if Active() != nil {
		t.Fatal("telemetry active at test start")
	}
	s := New(Options{Registry: NewRegistry()})
	Enable(s)
	if Active() != s {
		t.Fatal("Active did not return the enabled set")
	}
	Enable(nil)
	if Active() != nil || ActiveTracer() != nil || ActiveFeed() != nil {
		t.Fatal("disable did not clear")
	}
	Emit(Event{Kind: "x"}) // no-op when disabled
}

func TestProgressRenderer(t *testing.T) {
	var b bytes.Buffer
	p := NewProgress(&b, true)
	p.Event(Event{Kind: "progress", N: 1, V: 3, Msg: "mcf", T: 1})
	p.mu.Lock()
	p.lastDraw = time.Time{} // defeat the repaint rate limit
	p.mu.Unlock()
	p.Event(Event{Kind: "simulation", Msg: "miss", T: 1.5})
	p.Finish()
	out := b.String()
	if !strings.Contains(out, "\r") {
		t.Fatalf("tty renderer did not repaint in place: %q", out)
	}
	if !strings.Contains(out, "1/3") || !strings.Contains(out, "mcf") {
		t.Fatalf("missing progress fields: %q", out)
	}
	if !strings.Contains(out, "0 hit 1 miss") {
		t.Fatalf("missing cache tally: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Finish did not terminate the line: %q", out)
	}

	// Non-TTY mode prints plain lines, no carriage returns.
	b.Reset()
	p2 := NewProgress(&b, false)
	p2.Event(Event{Kind: "progress", N: 2, V: 3, T: 2})
	p2.Finish()
	if strings.Contains(b.String(), "\r") {
		t.Fatalf("pipe renderer used \\r: %q", b.String())
	}
}
