package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. Add/Inc are lock-free
// and allocation-free; safe for concurrent use.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// Inc adds one.
//
//dmp:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//dmp:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, live snapshots).
// Set/Add are lock-free and allocation-free.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set replaces the value.
//
//dmp:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrement).
//
//dmp:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations into fixed upper-bound
// buckets chosen at construction. Observe is lock-free and
// allocation-free: a linear scan over the (small, fixed) bucket bounds,
// one atomic add, and a CAS loop folding the observation into the sum.
// There is no +Inf bucket slot; observations above the last bound only
// count toward count/sum, Prometheus-style (the exposition emits the
// implicit +Inf bucket as the total count).
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // ascending upper bounds, fixed after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, folded via CAS
}

// Observe records one sample.
//
//dmp:hotpath
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// SecondsBuckets is a general-purpose latency bucket ladder (seconds),
// spanning 100µs to ~2 minutes in roughly 1-2-5 steps.
func SecondsBuckets() []float64 {
	return []float64{1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120}
}

// Registry holds a fixed-order set of metrics. Registration appends;
// snapshots and expositions iterate in registration order, which is
// deterministic for package-level metrics (init order) and keeps the
// package sort-free.
type Registry struct {
	mu    sync.Mutex
	names map[string]bool
	cs    []*Counter
	gs    []*Gauge
	hs    []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name string) {
	if r.names[name] {
		panic("telemetry: duplicate metric " + name)
	}
	r.names[name] = true
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	c := &Counter{name: name, help: help}
	r.cs = append(r.cs, c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	g := &Gauge{name: name, help: help}
	r.gs = append(r.gs, g)
	return g
}

// Histogram registers and returns a new histogram with the given
// ascending upper bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds not ascending: " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)),
	}
	r.hs = append(r.hs, h)
	return h
}

// --- snapshots ---

// CounterVal is one counter's reading.
type CounterVal struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeVal is one gauge's reading.
type GaugeVal struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramVal is one histogram's reading. Buckets are cumulative-free
// per-bucket counts aligned with Bounds; observations above the last
// bound appear only in Count/Sum.
type HistogramVal struct {
	Name    string    `json:"name"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time reading of every metric in a registry, in
// registration order. Readings of concurrently updated metrics are
// individually atomic but not mutually consistent — same as Stats
// snapshots taken from a running simulation.
type Snapshot struct {
	Counters   []CounterVal   `json:"counters"`
	Gauges     []GaugeVal     `json:"gauges"`
	Histograms []HistogramVal `json:"histograms"`
}

// Snapshot reads every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	cs, gs, hs := r.cs, r.gs, r.hs
	r.mu.Unlock()
	var s Snapshot
	s.Counters = make([]CounterVal, len(cs))
	for i, c := range cs {
		s.Counters[i] = CounterVal{Name: c.name, Value: c.Value()}
	}
	s.Gauges = make([]GaugeVal, len(gs))
	for i, g := range gs {
		s.Gauges[i] = GaugeVal{Name: g.name, Value: g.Value()}
	}
	s.Histograms = make([]HistogramVal, len(hs))
	for i, h := range hs {
		hv := HistogramVal{
			Name:    h.name,
			Bounds:  h.bounds,
			Buckets: make([]uint64, len(h.buckets)),
			Count:   h.Count(),
			Sum:     h.Sum(),
		}
		for j := range h.buckets {
			hv.Buckets[j] = h.buckets[j].Load()
		}
		s.Histograms[i] = hv
	}
	return s
}

// Delta returns s minus prev, aligned by metric name: counters and
// histogram counts subtract, gauges report their current value (a gauge
// has no meaningful difference), matching Stats.Delta's convention of
// interval counters over instantaneous state. Metrics absent from prev
// (registered later) delta against zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	pc := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		pc[c.Name] = c.Value
	}
	ph := make(map[string]HistogramVal, len(prev.Histograms))
	for _, h := range prev.Histograms {
		ph[h.Name] = h
	}
	var d Snapshot
	d.Counters = make([]CounterVal, len(s.Counters))
	for i, c := range s.Counters {
		d.Counters[i] = CounterVal{Name: c.Name, Value: c.Value - pc[c.Name]}
	}
	d.Gauges = append([]GaugeVal(nil), s.Gauges...)
	d.Histograms = make([]HistogramVal, len(s.Histograms))
	for i, h := range s.Histograms {
		dv := HistogramVal{
			Name:    h.Name,
			Bounds:  h.Bounds,
			Buckets: append([]uint64(nil), h.Buckets...),
			Count:   h.Count,
			Sum:     h.Sum,
		}
		if p, ok := ph[h.Name]; ok && len(p.Buckets) == len(dv.Buckets) {
			for j := range dv.Buckets {
				dv.Buckets[j] -= p.Buckets[j]
			}
			dv.Count -= p.Count
			dv.Sum -= p.Sum
		}
		d.Histograms[i] = dv
	}
	return d
}

// Add returns s plus other, aligned by name (the inverse of Delta for
// counters and histograms; gauges take other's value, i.e. the later
// reading wins). dmpobs uses it to fold a stream of deltas back into a
// final snapshot.
func (s Snapshot) Add(other Snapshot) Snapshot {
	oc := make(map[string]uint64, len(other.Counters))
	for _, c := range other.Counters {
		oc[c.Name] = c.Value
	}
	og := make(map[string]GaugeVal, len(other.Gauges))
	for _, g := range other.Gauges {
		og[g.Name] = g
	}
	oh := make(map[string]HistogramVal, len(other.Histograms))
	for _, h := range other.Histograms {
		oh[h.Name] = h
	}
	var out Snapshot
	out.Counters = make([]CounterVal, len(s.Counters))
	for i, c := range s.Counters {
		out.Counters[i] = CounterVal{Name: c.Name, Value: c.Value + oc[c.Name]}
	}
	out.Gauges = make([]GaugeVal, len(s.Gauges))
	for i, g := range s.Gauges {
		if v, ok := og[g.Name]; ok {
			out.Gauges[i] = v
		} else {
			out.Gauges[i] = g
		}
	}
	out.Histograms = make([]HistogramVal, len(s.Histograms))
	for i, h := range s.Histograms {
		ov := HistogramVal{
			Name:    h.Name,
			Bounds:  h.Bounds,
			Buckets: append([]uint64(nil), h.Buckets...),
			Count:   h.Count,
			Sum:     h.Sum,
		}
		if o, ok := oh[h.Name]; ok && len(o.Buckets) == len(ov.Buckets) {
			for j := range ov.Buckets {
				ov.Buckets[j] += o.Buckets[j]
			}
			ov.Count += o.Count
			ov.Sum += o.Sum
		}
		out.Histograms[i] = ov
	}
	return out
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (v0.0.4). Histogram buckets are emitted cumulatively with the
// implicit +Inf bucket, as the format requires.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", h.Name)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.Name, formatBound(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

// --- process default registry ---

var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry that package-level
// NewCounter/NewGauge/NewHistogram register into.
func DefaultRegistry() *Registry { return defaultRegistry }

// NewCounter registers a counter in the default registry. Intended for
// package-level vars in instrumented packages.
func NewCounter(name, help string) *Counter { return defaultRegistry.Counter(name, help) }

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, help) }

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, help, bounds)
}
