package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured progress event. Kind is the discriminator;
// the other fields are kind-dependent and omitted when empty:
//
//	run-start      Name=command, Msg=args summary
//	experiment     Name=experiment, Msg="start"|"done", V=wall seconds when done
//	simulation     Name=bench/config label, Msg="hit"|"miss"|"done", V=wall seconds
//	sample-stage   Name=stage (prefix|warm|snapshot|detailed|extrapolate), V=seconds
//	diff           Name=stage on divergence, N=seeds verified so far
//	progress       N=completed units, V=total units, Msg=current item
//	metrics        Metrics=delta of every registered metric since last metrics event
//	run-end        V=total wall seconds
type Event struct {
	T       float64   `json:"t"` // seconds since the feed started
	Kind    string    `json:"kind"`
	Name    string    `json:"name,omitempty"`
	Msg     string    `json:"msg,omitempty"`
	N       uint64    `json:"n,omitempty"`
	V       float64   `json:"v,omitempty"`
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// Feed fans structured progress events out to an optional JSONL writer
// and any in-process subscribers (the TTY renderer now, dmpserve's SSE
// hub later). Emit is safe for concurrent use and nil-safe; subscribers
// run synchronously under the feed lock, so they must be fast and must
// not call back into the feed.
type Feed struct {
	mu     sync.Mutex
	w      *bufio.Writer
	enc    *json.Encoder
	start  time.Time
	subs   []func(Event)
	closed bool
}

// NewFeed builds a feed. w may be nil for a subscriber-only feed.
func NewFeed(w io.Writer) *Feed {
	f := &Feed{start: time.Now()}
	if w != nil {
		f.w = bufio.NewWriterSize(w, 1<<15)
		f.enc = json.NewEncoder(f.w)
	}
	return f
}

// Subscribe registers fn to receive every subsequent event.
func (f *Feed) Subscribe(fn func(Event)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.subs = append(f.subs, fn)
	f.mu.Unlock()
}

// Emit stamps ev with the feed-relative time and delivers it.
func (f *Feed) Emit(ev Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	ev.T = time.Since(f.start).Seconds()
	if f.enc != nil {
		f.enc.Encode(ev)
	}
	for _, fn := range f.subs {
		fn(ev)
	}
}

// Close flushes the JSONL writer and stops delivery. Idempotent.
func (f *Feed) Close() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.w != nil {
		return f.w.Flush()
	}
	return nil
}
