package workload

import (
	"testing"

	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/profile"
	"dmp/internal/prog"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("got %d benchmarks, want 15", len(names))
	}
	for _, n := range names {
		w, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != n || w.Desc == "" || w.Build == nil {
			t.Errorf("%s: incomplete registration", n)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(All()) != 15 {
		t.Error("All() size wrong")
	}
}

func TestAllBuildAndHalt(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(BuildConfig{Seed: RefSeed, Scale: 1})
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			e := emu.New(p)
			n, err := e.Run(3_000_000)
			if err != nil {
				t.Fatalf("emulation: %v", err)
			}
			if !e.Halted {
				t.Fatalf("did not halt within 3M insts (ran %d)", n)
			}
			if n < 10_000 {
				t.Errorf("only %d dynamic insts; too small to measure", n)
			}
			t.Logf("%s: %d dynamic instructions, %d static", w.Name, n, p.Len())
		})
	}
}

func TestDeterministicAcrossBuilds(t *testing.T) {
	for _, w := range All() {
		p1 := w.Build(BuildConfig{Seed: RefSeed})
		p2 := w.Build(BuildConfig{Seed: RefSeed})
		e1, e2 := emu.New(p1), emu.New(p2)
		e1.Run(200_000) //nolint:errcheck
		e2.Run(200_000) //nolint:errcheck
		if e1.Count != e2.Count {
			t.Errorf("%s: nondeterministic instruction count", w.Name)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if e1.Regs[r] != e2.Regs[r] {
				t.Errorf("%s: nondeterministic r%d", w.Name, r)
			}
		}
	}
}

func TestSeedsChangeExecution(t *testing.T) {
	for _, w := range All() {
		p1 := w.Build(BuildConfig{Seed: TrainSeed})
		p2 := w.Build(BuildConfig{Seed: RefSeed})
		e1, e2 := emu.New(p1), emu.New(p2)
		e1.Run(100_000) //nolint:errcheck
		e2.Run(100_000) //nolint:errcheck
		same := e1.Count == e2.Count
		for r := 0; r < isa.NumRegs && same; r++ {
			same = e1.Regs[r] == e2.Regs[r]
		}
		if same {
			t.Errorf("%s: train and ref seeds produced identical executions", w.Name)
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	for _, name := range []string{"bzip2", "mcf", "mesa"} {
		w, _ := ByName(name)
		p1 := w.Build(BuildConfig{Seed: RefSeed, Scale: 1})
		p2 := w.Build(BuildConfig{Seed: RefSeed, Scale: 3})
		e1, e2 := emu.New(p1), emu.New(p2)
		e1.Run(0) //nolint:errcheck
		e2.Run(0) //nolint:errcheck
		if e2.Count < 2*e1.Count {
			t.Errorf("%s: scale 3 ran %d vs %d at scale 1", name, e2.Count, e1.Count)
		}
	}
}

// TestBranchCharacter checks that each workload's misprediction profile
// matches its SPEC namesake's role in the paper: the predictable group
// must stay predictable and the hard group must misbehave.
func TestBranchCharacter(t *testing.T) {
	missRate := func(name string) float64 {
		w, _ := ByName(name)
		p := w.Build(BuildConfig{Seed: RefSeed})
		rep, err := profile.Run(p, profile.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return float64(rep.TotalMispredicts) / float64(rep.TotalBranches)
	}
	for _, easy := range []string{"perlbmk", "eon", "vortex", "mesa"} {
		if r := missRate(easy); r > 0.04 {
			t.Errorf("%s: miss rate %.3f, want <= 0.04 (predictable group)", easy, r)
		}
	}
	for _, hard := range []string{"bzip2", "mcf", "parser", "twolf", "vpr"} {
		if r := missRate(hard); r < 0.05 {
			t.Errorf("%s: miss rate %.3f, want >= 0.05 (hard group)", hard, r)
		}
	}
}

// TestDivergeMarking checks the profiler finds diverge branches in the
// diverge-heavy workloads and nothing markable in gcc's spaghetti.
func TestDivergeMarking(t *testing.T) {
	marked := func(name string) int {
		w, _ := ByName(name)
		p := w.Build(BuildConfig{Seed: TrainSeed})
		if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return len(p.DivergePCs())
	}
	for _, n := range []string{"mcf", "parser", "twolf", "vpr", "bzip2", "fma3d"} {
		if marked(n) == 0 {
			t.Errorf("%s: no diverge branches marked", n)
		}
	}
}

// TestMcfSimpleHammock checks that mcf's dominant diverge branch is a
// *simple* hammock (the Figure-6 signature of mcf).
func TestMcfSimpleHammock(t *testing.T) {
	w, _ := ByName("mcf")
	p := w.Build(BuildConfig{Seed: TrainSeed})
	if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	simple := 0
	for _, pc := range p.DivergePCs() {
		if p.DivergeAt(pc).Class == prog.ClassSimpleHammock {
			simple++
		}
	}
	if simple == 0 {
		t.Error("mcf has no simple-hammock diverge branches")
	}
}

// TestParserComplexDiverge checks parser's production choice is a
// complex diverge branch (calls inside the hammock).
func TestParserComplexDiverge(t *testing.T) {
	w, _ := ByName("parser")
	p := w.Build(BuildConfig{Seed: TrainSeed})
	if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	complexN := 0
	for _, pc := range p.DivergePCs() {
		if p.DivergeAt(pc).Class == prog.ClassComplexDiverge {
			complexN++
		}
	}
	if complexN == 0 {
		t.Error("parser has no complex diverge branches")
	}
}
