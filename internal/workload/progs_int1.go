package workload

import (
	"dmp/internal/isa"
	"dmp/internal/prog"
)

func init() {
	register("bzip2", "compression kernel: class-dependent transforms with complex diverge hammocks", buildBzip2)
	register("crafty", "chess kernel: bitboard scans with calls and moderately predictable branches", buildCrafty)
	register("eon", "rendering kernel: fixed-point arithmetic loops, highly predictable", buildEon)
	register("gap", "interpreter kernel: jump-table dispatch over random opcodes (indirect-heavy)", buildGap)
	register("gcc", "compiler kernel: spaghetti control flow with distant, per-branch reconvergence", buildGcc)
	register("gzip", "LZ kernel: data-dependent match loops and literal/match hammocks", buildGzip)
}

// buildBzip2 models the block-sort/MTF flavour of bzip2: a loop over
// random bytes classifying each into one of three transforms. The
// 3-way classification makes the first branch hard to predict, but all
// arms reconverge quickly at a common tail: a classic complex diverge
// branch.
func buildBzip2(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const data = 0x10000
	r := newRNG(c.Seed)
	fillWords(b, r, data, 512, 256) // "input bytes"

	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1200*c.Scale))
	b.Li(rPtr0, data)
	b.Label("loop")
	emitScramble(b, rRng)
	// index into the data block
	emitRange(b, rT0, rRng, 17, 9)
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr0)
	b.Ld(rT1, rT0, 0) // byte value 0..255
	// Skewed 3-way classification on the data value's low bits:
	// ~12% run-length, ~19% move-to-front, ~69% literal.
	b.Andi(rT2, rT1, 15)
	b.Slti(rT3, rT2, 2)
	b.Brnz(rT3, "runlen")
	b.Slti(rT3, rT2, 5)
	b.Brnz(rT3, "mtf")
	// literal
	b.Add(rAcc0, rAcc0, rT1)
	b.Shli(rT3, rT1, 1)
	b.Xor(rAcc1, rAcc1, rT3)
	b.Jmp("emit")
	b.Label("mtf")
	b.Sub(rAcc0, rAcc0, rT1)
	b.Addi(rAcc1, rAcc1, 3)
	b.Shri(rT3, rAcc1, 2)
	b.Add(rAcc1, rAcc1, rT3)
	b.Jmp("emit")
	b.Label("runlen")
	b.Addi(rAcc2, rAcc2, 1)
	b.Muli(rT3, rT1, 3)
	b.Add(rAcc0, rAcc0, rT3)
	b.Label("emit") // CFM point for the classification branches
	b.Xor(rAcc2, rAcc2, rAcc0)
	b.St(rAcc0, rT0, 4096)
	emitTailWork(b, 14)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc1, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildCrafty models chess move generation: a bit-scan over occupancy
// words with an evaluation call for set bits. Branch behaviour is mixed:
// the bit test is semi-predictable, and the evaluation contains a
// biased capture branch.
func buildCrafty(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const boards = 0x20000
	r := newRNG(c.Seed)
	fillWords(b, r, boards, 128, 0)

	b.Entry("main")
	// eval(r4=square bits) -> r10 += score
	b.Label("eval")
	b.Andi(rT2, rT1, 7)
	b.Muli(rT2, rT2, 9)
	b.Add(rAcc0, rAcc0, rT2)
	b.Andi(rT3, rT1, 112)
	b.Br(isa.NE, rT3, isa.Zero, "capture") // biased ~88% taken
	b.Addi(rAcc0, rAcc0, 1)
	b.Label("capture")
	b.Ret()

	b.Label("main")
	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(900*c.Scale))
	b.Li(rPtr0, boards)
	b.Label("loop")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 13, 7)
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr0)
	b.Ld(rT1, rT0, 0) // occupancy word
	// scan 4 nibbles of the word
	b.Li(rIdx, 4)
	b.Label("scan")
	b.Andi(rT2, rT1, 15)
	b.Br(isa.EQ, rT2, isa.Zero, "empty") // data-dependent, ~6% empty
	b.Call("eval")
	b.Label("empty")
	b.Shri(rT1, rT1, 16)
	b.Subi(rIdx, rIdx, 1)
	b.Br(isa.GT, rIdx, isa.Zero, "scan")
	emitTailWork(b, 12)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc0, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildEon models a shading inner loop: long stretches of fixed-point
// arithmetic with a rare clamp branch. Branch prediction is nearly
// perfect and ILP is high, as for the real eon (base IPC 3.3).
func buildEon(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(2500*c.Scale))
	b.Li(rAcc0, 1)
	b.Label("loop")
	emitScramble(b, rRng)
	// independent arithmetic chains (high ILP)
	b.Shri(rT0, rRng, 7)
	b.Shri(rT1, rRng, 21)
	b.Shri(rT2, rRng, 35)
	b.Andi(rT0, rT0, 1023)
	b.Andi(rT1, rT1, 1023)
	b.Andi(rT2, rT2, 1023)
	b.Mul(rT3, rT0, rT1)
	b.Add(rAcc0, rAcc0, rT3)
	b.Mul(rT3, rT1, rT2)
	b.Add(rAcc1, rAcc1, rT3)
	b.Xor(rAcc2, rAcc2, rT0)
	b.Add(rAcc2, rAcc2, rT2)
	// rare clamp: accumulator overflow guard (taken ~0.1%)
	b.Shri(rT3, rAcc0, 40)
	b.Br(isa.EQ, rT3, isa.Zero, "noclamp")
	b.Shri(rAcc0, rAcc0, 1)
	b.Label("noclamp")
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc0, isa.Zero, 0x800)
	b.St(rAcc1, isa.Zero, 0x808)
	b.Halt()
	return b.MustBuild()
}

// buildGap models a bytecode interpreter: fetch a random opcode, dispatch
// through a jump table (JR), run a short handler, repeat. Indirect
// target prediction dominates; conditional branches are regular.
func buildGap(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const (
		table = 0x30000
		code  = 0x31000
	)
	r := newRNG(c.Seed)
	fillWords(b, r, code, 1024, 8) // "bytecode": opcodes 0..7

	b.Entry("main")
	b.Label("main")
	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1200*c.Scale))
	b.Li(rPtr0, code)
	b.Li(rPtr1, table)
	b.Label("dispatch")
	emitScramble(b, rRng)
	emitRange(b, rIdx, rRng, 23, 10)
	b.Shli(rIdx, rIdx, 3)
	b.Add(rIdx, rIdx, rPtr0)
	b.Ld(rT0, rIdx, 0) // opcode
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr1)
	b.Ld(rT1, rT0, 0) // handler address
	b.Jr(rT1)

	handlers := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	for i, h := range handlers {
		b.Label(h)
		switch i % 4 {
		case 0:
			b.Addi(rAcc0, rAcc0, int64(i+1))
			b.Xor(rAcc1, rAcc1, rAcc0)
		case 1:
			b.Muli(rT2, rAcc0, 3)
			b.Add(rAcc1, rAcc1, rT2)
		case 2:
			b.Shri(rT2, rAcc1, 3)
			b.Sub(rAcc0, rAcc0, rT2)
		case 3:
			b.Andi(rT2, rAcc0, 255)
			b.Add(rAcc2, rAcc2, rT2)
		}
		b.Jmp("next")
	}
	b.Label("next")
	// A data-dependent guard hammock at the statement boundary (the
	// paper's gap has conditional diverge branches besides the dispatch).
	emitBit(b, rT3, rRng, 51)
	b.Brz(rT3, "cheap")
	b.Muli(rT2, rAcc1, 5)
	b.Shri(rT2, rT2, 3)
	b.Add(rAcc0, rAcc0, rT2)
	b.Label("cheap") // CFM
	emitTailWork(b, 10)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "dispatch")
	b.St(rAcc1, isa.Zero, 0x800)
	b.Halt()

	p := b.MustBuild()
	for i, h := range handlers {
		p.SetWord(table+uint64(i)*8, p.PC(h))
	}
	return p
}

// buildGcc models the control flow that defeats both DHP and DMP
// ("other complex" in Figure 6): hard-to-predict branches whose arms run
// long, distinct tails (beyond the 120-instruction CFM limit) before any
// reconvergence, nested with further data-dependent branches.
func buildGcc(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(160*c.Scale))
	b.Label("loop")
	emitScramble(b, rRng)
	emitBit(b, rT0, rRng, 33)
	b.Brnz(rT0, "armB") // ~50%: the "other complex" branch

	// arm A: a long private region with its own inner branch
	emitBit(b, rT1, rRng, 11)
	b.Brnz(rT1, "armA2")
	emitLongTail(b, "A1", 130, rAcc0)
	b.Jmp("joinA")
	b.Label("armA2")
	emitLongTail(b, "A2", 135, rAcc1)
	b.Label("joinA")
	b.Addi(rAcc0, rAcc0, 1)
	b.Jmp("cont")

	// arm B: a different long private region
	b.Label("armB")
	emitBit(b, rT1, rRng, 47)
	b.Brnz(rT1, "armB2")
	emitLongTail(b, "B1", 140, rAcc1)
	b.Jmp("joinB")
	b.Label("armB2")
	emitLongTail(b, "B2", 132, rAcc2)
	b.Label("joinB")
	b.Subi(rAcc2, rAcc2, 1)

	b.Label("cont")
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc0, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// emitLongTail emits n straight-line instructions mixing a couple of
// registers, used to push reconvergence beyond the CFM distance limit.
func emitLongTail(b *prog.Builder, tag string, n int, acc isa.Reg) {
	_ = tag
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			b.Addi(acc, acc, int64(i+1))
		case 1:
			b.Xor(rT2, acc, rRng)
		case 2:
			b.Shri(rT3, rT2, 5)
		case 3:
			b.Add(acc, acc, rT3)
		}
	}
}

// buildGzip models LZ77 matching: an inner match-extension loop whose
// trip count is data dependent (a hard loop branch) and a literal/match
// decision hammock.
func buildGzip(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const window = 0x40000
	r := newRNG(c.Seed)
	fillWords(b, r, window, 1024, 16)

	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1000*c.Scale))
	b.Li(rPtr0, window)
	b.Label("loop")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 9, 10) // candidate position
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr0)
	b.Ld(rT1, rT0, 0)
	// literal-vs-match hammock: ~31% of positions start a match
	b.Andi(rT2, rT1, 15)
	b.Slti(rT2, rT2, 5)
	b.Brnz(rT2, "match")
	b.Addi(rAcc0, rAcc0, 1) // literal
	b.Xor(rAcc1, rAcc1, rT1)
	b.Jmp("after")
	b.Label("match")
	// match length = next nibble (1..15): data-dependent inner loop
	b.Shri(rIdx, rT1, 1)
	b.Andi(rIdx, rIdx, 7)
	b.Addi(rIdx, rIdx, 1)
	b.Label("extend")
	b.Add(rAcc1, rAcc1, rIdx)
	b.Shri(rT3, rAcc1, 7)
	b.Xor(rAcc2, rAcc2, rT3)
	b.Subi(rIdx, rIdx, 1)
	b.Br(isa.GT, rIdx, isa.Zero, "extend") // diverge loop branch material
	b.Label("after")                       // CFM
	b.Add(rAcc2, rAcc2, rAcc0)
	emitTailWork(b, 10)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc2, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}
