package workload

import (
	"dmp/internal/isa"
	"dmp/internal/prog"
)

func init() {
	register("mesa", "rasteriser kernel: predictable span loops with occasional clip hammocks", buildMesa)
	register("ammp", "molecular-dynamics kernel: neighbour iteration with a cutoff hammock", buildAmmp)
	register("fma3d", "finite-element kernel: element loops with a fracture diverge hammock", buildFma3d)
}

// buildMesa models span rasterisation: an outer loop over spans and an
// inner fixed-trip pixel loop of pure arithmetic, with an occasional
// clipping hammock. Branches are almost all loop branches with constant
// trip counts, so the predictor is nearly perfect and the IPC is the
// highest of the suite — matching mesa's 4.14 base IPC and its small
// benefit from flush reduction (Figure 11 vs. Figure 9).
func buildMesa(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const fb = 0xa0000
	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(400*c.Scale))
	b.Li(rPtr0, fb)
	b.Label("span")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 11, 6) // span start colour
	b.Li(rIdx, 8)                  // constant trip count
	b.Label("pixel")
	b.Muli(rT1, rT0, 3)
	b.Addi(rT1, rT1, 17)
	b.Andi(rT1, rT1, 1023)
	b.Add(rAcc0, rAcc0, rT1)
	b.Xor(rAcc1, rAcc1, rT1)
	b.Andi(rT2, rAcc0, 511)
	b.Shli(rT2, rT2, 3)
	b.Add(rT2, rT2, rPtr0)
	b.St(rT1, rT2, 0)
	b.Mov(rT0, rT1)
	b.Subi(rIdx, rIdx, 1)
	b.Br(isa.GT, rIdx, isa.Zero, "pixel")
	// Rare clip: span crosses the viewport edge (~3%).
	emitRange(b, rT3, rRng, 43, 5)
	b.Brnz(rT3, "noclip")
	b.Shri(rAcc0, rAcc0, 1)
	b.Addi(rAcc2, rAcc2, 1)
	b.Label("noclip")
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "span")
	b.St(rAcc0, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildAmmp models a neighbour-list force loop: load a neighbour's
// "distance", skip it if beyond the cutoff (a mildly unpredictable
// hammock, ~30% taken), otherwise accumulate a force term.
func buildAmmp(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const atoms = 0xb0000
	r := newRNG(c.Seed)
	fillWords(b, r, atoms, 2048, 1000)

	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1500*c.Scale))
	b.Li(rPtr0, atoms)
	b.Li(rPivot, 700) // cutoff: ~30% of uniform [0,1000) values exceed it
	b.Label("loop")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 23, 11)
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr0)
	b.Ld(rT1, rT0, 0) // distance
	b.Br(isa.GE, rT1, rPivot, "skip")
	// force term: a little arithmetic
	b.Muli(rT2, rT1, 7)
	b.Shri(rT2, rT2, 4)
	b.Add(rAcc0, rAcc0, rT2)
	b.Xor(rAcc1, rAcc1, rT1)
	b.Label("skip") // CFM
	b.Addi(rAcc2, rAcc2, 1)
	emitTailWork(b, 10)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc0, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildFma3d models an explicit finite-element update: per element,
// compute a strain update, then branch on a fracture test whose outcome
// is data dependent (~20%) into a longer failure arm; both arms merge at
// the state write-back — a complex diverge hammock with a store.
func buildFma3d(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const elems = 0xc0000
	r := newRNG(c.Seed)
	fillWords(b, r, elems, 1024, 100)

	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1100*c.Scale))
	b.Li(rPtr0, elems)
	b.Li(rPivot, 80) // fracture threshold: ~20% exceed
	b.Label("loop")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 17, 10)
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr0)
	b.Ld(rT1, rT0, 0) // stress
	// strain update (common work before the test)
	b.Muli(rT2, rT1, 5)
	b.Shri(rT2, rT2, 2)
	b.Br(isa.GE, rT1, rPivot, "fracture")
	b.Add(rAcc0, rAcc0, rT2)
	b.Jmp("writeback")
	b.Label("fracture")
	// failure arm: redistribute the load
	b.Shri(rT2, rT2, 1)
	b.Add(rAcc1, rAcc1, rT2)
	b.Xor(rAcc2, rAcc2, rT1)
	b.Addi(rAcc1, rAcc1, 3)
	b.Label("writeback") // CFM
	b.St(rT2, rT0, 0)
	b.Add(rAcc2, rAcc2, rAcc0)
	emitTailWork(b, 12)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc2, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}
