// Package workload provides the fifteen synthetic benchmarks used in
// place of the paper's SPEC CPU2000 binaries (12 integer + mesa, ammp,
// fma3d). Each program is written against the simulator ISA and modelled
// on the branch behaviour that drives the paper's results for its
// namesake: mcf is hammock-heavy pointer chasing with a large cache
// footprint, parser is recursive descent with many complex diverge
// branches, gcc is spaghetti control flow with no usable reconvergence
// points, perlbmk/vortex/eon are highly predictable, and so on (see each
// builder's comment).
//
// Programs are deterministic functions of a seed; profiling runs use
// TrainSeed and measurement runs RefSeed, mirroring the paper's
// train/reference input split (Section 3.1).
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dmp/internal/gen"
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// TrainSeed and RefSeed are the canonical profiling and measurement
// inputs.
const (
	TrainSeed uint64 = 0x747261696e5f31 // "train_1"
	RefSeed   uint64 = 0x7265665f696e70 // "ref_inp"
)

// BuildConfig parameterises a workload instance.
type BuildConfig struct {
	// Seed selects the input data (TrainSeed or RefSeed, typically).
	Seed uint64
	// Scale multiplies the main loop counts; 1 is the default size
	// (roughly 10^5 dynamic instructions per benchmark).
	Scale int
}

func (c BuildConfig) norm() BuildConfig {
	if c.Seed == 0 {
		c.Seed = RefSeed
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// Workload is one named benchmark.
type Workload struct {
	Name  string
	Desc  string
	Build func(BuildConfig) *prog.Program
}

var registry = map[string]*Workload{}
var order []string

func register(name, desc string, build func(BuildConfig) *prog.Program) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate " + name)
	}
	registry[name] = &Workload{Name: name, Desc: desc, Build: build}
	order = append(order, name)
}

// Names returns the benchmark names in the paper's presentation order.
func Names() []string {
	want := []string{
		"bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser",
		"perlbmk", "twolf", "vortex", "vpr", "mesa", "ammp", "fma3d",
	}
	// Guard against registration drift.
	if len(want) != len(order) {
		sorted := append([]string(nil), order...)
		sort.Strings(sorted)
		panic(fmt.Sprintf("workload: registry has %v", sorted))
	}
	return want
}

// GenPrefix selects the generated-workload source: "gen:SEED" builds
// internal/gen's lint-clean random program for that structure seed.
const GenPrefix = "gen:"

// ByName returns a workload or an error. Besides the fifteen registered
// benchmarks, names of the form "gen:SEED" (any uint64 seed) synthesize
// a workload from the internal/gen program generator on the fly: the
// structure seed fixes the code image, BuildConfig.Seed drives only the
// data contents (so the train/ref annotation transfer applies as usual),
// and Scale multiplies the driver-loop trip count. Generated workloads
// are not in Names()/All() — they are an unbounded population, not part
// of the paper's fixed suite.
func ByName(name string) (*Workload, error) {
	if strings.HasPrefix(name, GenPrefix) {
		return genWorkload(name)
	}
	w := registry[name]
	if w == nil {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v or %sSEED)", name, Names(), GenPrefix)
	}
	return w, nil
}

// genWorkload builds the on-the-fly Workload for a "gen:SEED" name. The
// program is emitted unannotated: like the hand-built benchmarks it gets
// its diverge annotations from the profiling pass (internal/exp), so the
// annotated/dynamic/hybrid comparison is apples-to-apples. (The
// generator's own synthesized annotations are exercised by internal/gen's
// differential harness instead.)
func genWorkload(name string) (*Workload, error) {
	seed, err := strconv.ParseUint(strings.TrimPrefix(name, GenPrefix), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("workload: bad generated-workload name %q (want %sSEED): %v", name, GenPrefix, err)
	}
	return &Workload{
		Name: name,
		Desc: fmt.Sprintf("generated lint-clean workload (structure seed %d)", seed),
		Build: func(c BuildConfig) *prog.Program {
			c = c.norm()
			o := gen.DefaultOptions(seed)
			o.Annotate = false
			o.DataSeed = c.Seed
			// ~200 driver trips per scale unit lands generated workloads
			// in the same dynamic-length band as the hand-built suite.
			o.Iters = 200 * c.Scale
			return gen.Generate(o)
		},
	}, nil
}

// All returns the workloads in paper order.
func All() []*Workload {
	ws := make([]*Workload, 0, len(registry))
	for _, n := range Names() {
		ws = append(ws, registry[n])
	}
	return ws
}

// --- deterministic data generation (Go side) ---

// rng is a splitmix64 generator used to pre-initialise data memory.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// fillWords writes n pseudo-random words (bounded by mod if nonzero)
// starting at base.
func fillWords(b *prog.Builder, r *rng, base uint64, n int, mod uint64) {
	for i := 0; i < n; i++ {
		v := r.next()
		if mod != 0 {
			v %= mod
		}
		b.Word(base+uint64(i)*8, v)
	}
}

// --- shared in-program idioms ---

// Register conventions used by all builders.
const (
	rRng  = isa.Reg(1) // in-program LCG state
	rN    = isa.Reg(2) // outer loop counter
	rT0   = isa.Reg(3)
	rT1   = isa.Reg(4)
	rT2   = isa.Reg(5)
	rT3   = isa.Reg(6)
	rAcc0 = isa.Reg(10)
	rAcc1 = isa.Reg(11)
	rAcc2 = isa.Reg(12)
	rPtr0 = isa.Reg(16)
	rPtr1 = isa.Reg(17)
	rIdx  = isa.Reg(18)
	// rPivot holds long-lived comparison constants; emitTailWork and the
	// other helpers never touch it.
	rPivot = isa.Reg(20)
)

// emitScramble advances the in-program LCG held in state.
func emitScramble(b *prog.Builder, state isa.Reg) {
	b.Muli(state, state, 6364136223846793005)
	b.Addi(state, state, 1442695040888963407)
}

// emitBit extracts one pseudo-random bit of state into dst.
func emitBit(b *prog.Builder, dst, state isa.Reg, bit int64) {
	b.Shri(dst, state, bit)
	b.Andi(dst, dst, 1)
}

// emitRange extracts a pseudo-random value in [0, 2^bits) into dst.
func emitRange(b *prog.Builder, dst, state isa.Reg, shift, bits int64) {
	b.Shri(dst, state, shift)
	b.Andi(dst, dst, 1<<bits-1)
}

// emitTailWork emits n instructions of branch-free, mildly dependent
// arithmetic over the accumulators — the control-independent work that
// follows a reconvergence point. Longer tails both lower a workload's
// MPKI toward SPEC-like levels and give dynamic predication more
// control-independent work to save from flushes.
func emitTailWork(b *prog.Builder, n int) {
	for i := 0; i < n; i++ {
		switch i % 6 {
		case 0:
			b.Add(rAcc2, rAcc2, rAcc0)
		case 1:
			b.Shri(rT3, rAcc2, 3)
		case 2:
			b.Xor(rAcc1, rAcc1, rT3)
		case 3:
			b.Addi(rAcc0, rAcc0, 1)
		case 4:
			b.Muli(rT3, rAcc1, 3)
		case 5:
			b.Add(rAcc2, rAcc2, rT3)
		}
	}
}
