package workload

import (
	"dmp/internal/isa"
	"dmp/internal/prog"
)

func init() {
	register("mcf", "network-simplex kernel: pointer chasing over a >L2 footprint with simple hammocks", buildMcf)
	register("parser", "recursive-descent kernel: call-heavy with many complex diverge branches", buildParser)
	register("perlbmk", "interpreter kernel with near-perfectly predictable control flow", buildPerlbmk)
	register("twolf", "simulated-annealing kernel: random accept/reject diverge hammocks", buildTwolf)
	register("vortex", "object-database kernel: predictable call-heavy record manipulation", buildVortex)
	register("vpr", "routing kernel: mixed simple-hammock and complex diverge branches", buildVpr)
}

// buildMcf models mcf's dominant behaviour: traversing a linked arc list
// whose nodes are scattered over a footprint larger than the L2 cache,
// with a simple if-else hammock per node on an unpredictable cost
// comparison. mcf is the benchmark where simple hammocks dominate the
// mispredictions (44% in Figure 6) and the base IPC is lowest (0.81).
func buildMcf(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const (
		nodes    = 0x100000 // node array base
		numNodes = 8192     // 64B-strided nodes: 512KB, misses L1, mostly hits L2
	)
	// Each node: [next_addr, value], one per cache line in a random
	// permutation, so every node access misses the 64KB L1. Two
	// independent chains are walked in lockstep to expose the
	// memory-level parallelism a real out-of-order mcf run has.
	r := newRNG(c.Seed)
	perm := make([]uint64, numNodes)
	for i := range perm {
		perm[i] = uint64(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.intn(uint64(i + 1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	addr := func(i uint64) uint64 { return nodes + i*64 }
	for i := 0; i < numNodes; i++ {
		next := perm[(i+1)%numNodes]
		b.Word(addr(perm[i]), addr(next))
		b.Word(addr(perm[i])+8, r.next()&1023)
	}

	const (
		rVal1 = rT2 // second chain's value
		rNxt1 = rT0 // second chain's next pointer
	)
	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1600*c.Scale))
	b.Li(rPtr0, int64(addr(perm[0])))
	b.Li(rPtr1, int64(addr(perm[numNodes/2])))
	b.Li(rPivot, 768) // comparison pivot: ~75% of node values fall below
	b.Label("loop")
	// Chain 0: load, then a simple if-else hammock on the unpredictable
	// cost comparison (mcf's Figure-6 signature).
	b.Ld(rT1, rPtr0, 8)
	b.Br(isa.LT, rT1, rPivot, "cheaper")
	b.Sub(rAcc0, rAcc0, rT1)
	b.Jmp("joined")
	b.Label("cheaper")
	b.Add(rAcc0, rAcc0, rT1)
	b.Label("joined")
	// Control-independent work, overlapping the chain-1 access.
	b.Ld(rVal1, rPtr1, 8)
	b.Addi(rAcc1, rAcc1, 1)
	b.Xor(rAcc2, rAcc2, rAcc0)
	b.Muli(rT1, rAcc1, 3)
	b.Shri(rT1, rT1, 2)
	b.Add(rAcc2, rAcc2, rT1)
	b.Add(rAcc1, rAcc1, rVal1)
	emitTailWork(b, 8)
	// Advance both chains.
	b.Ld(rNxt1, rPtr1, 0)
	b.Ld(rPtr0, rPtr0, 0)
	b.Mov(rPtr1, rNxt1)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc0, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildParser models recursive-descent parsing over a random token
// stream: a dispatch function decides between three productions on
// unpredictable token classes, each production calls helpers, and all
// reconverge at the statement boundary. parser shows the largest DMP
// gains in the paper.
func buildParser(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const tokens = 0x50000
	r := newRNG(c.Seed)
	fillWords(b, r, tokens, 2048, 0)

	b.Entry("main")

	// nextToken: r3 = next pseudo-random token class 0..7
	b.Label("nextToken")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 29, 11)
	b.Shli(rT0, rT0, 3)
	b.Ld(rT0, rT0, tokens)
	b.Andi(rT0, rT0, 7)
	b.Ret()

	// reduceA / reduceB: small semantic actions.
	b.Label("reduceA")
	b.Muli(rT2, rT0, 5)
	b.Add(rAcc0, rAcc0, rT2)
	b.Ret()
	b.Label("reduceB")
	b.Xor(rAcc1, rAcc1, rT0)
	b.Addi(rAcc1, rAcc1, 2)
	b.Ret()

	b.Label("main")
	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(700*c.Scale))
	b.Label("stmt")
	// Save LR manually since nested calls reuse it.
	b.Subi(isa.SP, isa.SP, 8)
	b.Call("nextToken")
	// Hard 3-way production choice: complex diverge branch with calls
	// inside — exactly what DHP cannot predicate.
	b.Slti(rT1, rT0, 4)
	b.Brnz(rT1, "prodA") // tokens 0-3: ~50%
	b.Slti(rT1, rT0, 7)
	b.Brnz(rT1, "prodB") // tokens 4-6: ~37%
	// prodC: inline action        token 7: ~13%
	b.Add(rAcc2, rAcc2, rT0)
	b.Shli(rT2, rT0, 2)
	b.Xor(rAcc2, rAcc2, rT2)
	b.Jmp("endstmt")
	b.Label("prodA")
	b.Call("reduceA")
	b.Addi(rAcc0, rAcc0, 1)
	b.Jmp("endstmt")
	b.Label("prodB")
	b.Call("reduceB")
	b.Subi(rAcc1, rAcc1, 1)
	b.Label("endstmt") // CFM
	b.Addi(isa.SP, isa.SP, 8)
	b.Add(rAcc2, rAcc2, rAcc0)
	emitTailWork(b, 12)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "stmt")
	b.St(rAcc2, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildPerlbmk models the paper's perlbmk run: a regex-ish scanning loop
// whose branches are almost perfectly predictable (0.3% misprediction
// rate with the reduced input), giving high IPC and nothing for DMP to
// do.
func buildPerlbmk(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const text = 0x60000
	r := newRNG(c.Seed)
	// Text with long runs: class changes are rare, so the class branch
	// is highly predictable (the real perlbmk mispredicts only 0.3% of
	// its branches on the reduced input).
	v := uint64(0)
	for i := uint64(0); i < 1024; i++ {
		if r.intn(320) == 0 {
			v = r.next() & 1
		}
		b.Word(text+i*8, v)
	}

	b.Li(rN, int64(2200*c.Scale))
	b.Li(rPtr0, text)
	b.Li(rIdx, 0)
	b.Label("loop")
	b.Andi(rT0, rIdx, 1023)
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr0)
	b.Ld(rT1, rT0, 0)
	b.Brnz(rT1, "word") // long runs: ~98% predictable
	b.Addi(rAcc0, rAcc0, 1)
	b.Jmp("advance")
	b.Label("word")
	b.Addi(rAcc1, rAcc1, 1)
	b.Xor(rAcc2, rAcc2, rAcc1)
	b.Label("advance")
	b.Addi(rIdx, rIdx, 1)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc0, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildTwolf models simulated annealing placement: compute a random cost
// delta, accept or reject on an unpredictable threshold comparison (a
// complex diverge hammock with a store inside), then common bookkeeping.
func buildTwolf(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const cells = 0x70000
	r := newRNG(c.Seed)
	fillWords(b, r, cells, 512, 4096)

	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1400*c.Scale))
	b.Li(rPtr0, cells)
	b.Label("loop")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 11, 9) // cell index
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr0)
	b.Ld(rT1, rT0, 0) // current cost
	emitRange(b, rT2, rRng, 37, 12)
	b.Shri(rT2, rT2, 1)
	b.Addi(rT2, rT2, 1024) // bias: accept ~62% of proposed moves
	// accept if newCost < oldCost
	b.Br(isa.GE, rT1, rT2, "reject")
	b.St(rT2, rT0, 0) // commit the move (store inside the hammock)
	b.Add(rAcc0, rAcc0, rT2)
	b.Addi(rAcc1, rAcc1, 1)
	b.Jmp("post")
	b.Label("reject")
	b.Addi(rAcc2, rAcc2, 1)
	b.Shri(rT3, rAcc2, 2)
	b.Xor(rAcc0, rAcc0, rT3)
	b.Label("post")   // CFM
	b.Ld(rT3, rT0, 0) // re-read (forwarding from predicated store)
	b.Add(rAcc1, rAcc1, rT3)
	emitTailWork(b, 14)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc1, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildVortex models an object database: look up a record, call a method
// by type, copy fields. Branches are predictable (type distribution is
// skewed), calls are frequent, and IPC is high — matching vortex's 3.44
// base IPC and low misprediction rate.
func buildVortex(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const records = 0x80000
	r := newRNG(c.Seed)
	// Records: [type(0 with ~99%), f1, f2, f3] x 256; heavily skewed
	// types (the real vortex mispredicts ~0.45% of its branches).
	for i := 0; i < 256; i++ {
		t := uint64(0)
		if r.intn(128) == 0 {
			t = 1
		}
		base := uint64(records + i*32)
		b.Word(base, t)
		b.Word(base+8, r.next()&0xffff)
		b.Word(base+16, r.next()&0xffff)
		b.Word(base+24, 0)
	}

	b.Entry("main")
	b.Label("getf1") // r4 = rec.f1 + rec.f2
	b.Ld(rT1, rPtr1, 8)
	b.Ld(rT2, rPtr1, 16)
	b.Add(rT1, rT1, rT2)
	b.Ret()

	b.Label("main")
	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1100*c.Scale))
	b.Li(rPtr0, records)
	b.Label("loop")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 19, 8)
	b.Shli(rT0, rT0, 5)
	b.Add(rPtr1, rT0, rPtr0)
	b.Ld(rT3, rPtr1, 0) // type tag: 90% zero -> predictable
	b.Brnz(rT3, "rare")
	b.Call("getf1")
	b.Add(rAcc0, rAcc0, rT1)
	b.Jmp("store")
	b.Label("rare")
	b.Addi(rAcc1, rAcc1, 7)
	b.Label("store")
	b.St(rAcc0, rPtr1, 24)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc0, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}

// buildVpr models maze routing cost expansion: per step, a simple
// hammock on a random comparison (vpr has ~11% simple-hammock
// mispredictions) plus a complex diverge region choosing among three
// direction updates, reconverging at the cost update.
func buildVpr(c BuildConfig) *prog.Program {
	c = c.norm()
	b := prog.NewBuilder()
	const grid = 0x90000
	r := newRNG(c.Seed)
	fillWords(b, r, grid, 1024, 2048)

	b.Li(rRng, int64(c.Seed|1))
	b.Li(rN, int64(1100*c.Scale))
	b.Li(rPtr0, grid)
	b.Label("loop")
	emitScramble(b, rRng)
	emitRange(b, rT0, rRng, 13, 10)
	b.Shli(rT0, rT0, 3)
	b.Add(rT0, rT0, rPtr0)
	b.Ld(rT1, rT0, 0)
	// Simple hammock: bend cost, ~25% taken.
	emitRange(b, rT2, rRng, 41, 2)
	b.Brnz(rT2, "nobend")
	b.Addi(rAcc0, rAcc0, 3)
	b.Label("nobend")
	// Complex diverge: skewed 3-way direction choice on data bits.
	b.Andi(rT2, rT1, 7)
	b.Slti(rT3, rT2, 1)
	b.Brnz(rT3, "north") // ~12%
	b.Slti(rT3, rT2, 3)
	b.Brnz(rT3, "east")      // ~25%
	b.Add(rAcc1, rAcc1, rT1) // south/west
	b.Shri(rT3, rAcc1, 3)
	b.Xor(rAcc2, rAcc2, rT3)
	b.Jmp("cost")
	b.Label("north")
	b.Sub(rAcc1, rAcc1, rT1)
	b.Jmp("cost")
	b.Label("east")
	b.Addi(rAcc1, rAcc1, 11)
	b.Label("cost") // CFM
	b.Add(rAcc2, rAcc2, rAcc0)
	emitTailWork(b, 12)
	b.Subi(rN, rN, 1)
	b.Br(isa.GT, rN, isa.Zero, "loop")
	b.St(rAcc2, isa.Zero, 0x800)
	b.Halt()
	return b.MustBuild()
}
