// Package cow provides generation-stamped copy-on-write containers for
// the trained microarchitectural state sampled simulation snapshots:
// cache sets, predictor weight rows, BTB sets, and flat counter tables.
//
// The problem shape: a continuously warmed structure is snapshotted once
// per sampling period, and BOTH sides keep mutating — the warmer trains
// on every subsequent instruction, and the detailed interval machine the
// snapshot seeds trains during its measured window. A deep copy per
// snapshot is correct but O(size); these containers make the snapshot
// O(metadata) by freezing the current storage and having EACH side copy
// a group privately the first time it writes it. Between two snapshots
// only a small fraction of groups is typically dirtied (the sets and
// rows the instruction stream actually touches), so the total bytes
// copied drop with locality instead of scaling with table size.
//
// Concurrency contract: Clone must be called on the goroutine that owns
// the instance, and the clone handed to another goroutine only through a
// synchronizing operation (channel send, WaitGroup — anything that
// establishes happens-before). After that, the two instances never write
// shared storage in place: every write goes through Mut, which copies
// the group into private storage first. Frozen groups are only ever
// read, so concurrent use of the parent and the clone is race-free.
package cow

// blockGroups is how many groups one private arena block holds: big
// enough to amortize allocation across a burst of first-writes after a
// clone, small enough that a lightly-dirtied table doesn't hold a large
// mostly-empty block.
const blockGroups = 64

// Table is a copy-on-write array of equally sized groups (cache sets,
// weight rows). Reads go through RO, writes through Mut. The zero Table
// is not usable; build with NewTable.
type Table[T any] struct {
	groups [][]T    // per-group storage; may alias other Tables' groups
	gen    []uint32 // gen[i] == own ⇔ groups[i] is private to this table
	own    uint32   // this instance's ownership generation (never 0)
	gsize  int      // uniform group length
	arena  []T      // current private block; groups copied on write land here
}

// NewTable builds a table of ngroups zero-valued groups of gsize
// elements each, all privately owned, backed by one flat allocation.
func NewTable[T any](ngroups, gsize int) Table[T] {
	if ngroups <= 0 || gsize <= 0 {
		panic("cow: table dimensions must be positive")
	}
	flat := make([]T, ngroups*gsize)
	t := Table[T]{groups: make([][]T, ngroups), gen: make([]uint32, ngroups), own: 1, gsize: gsize}
	for i := range t.groups {
		t.groups[i] = flat[i*gsize : (i+1)*gsize : (i+1)*gsize]
		t.gen[i] = 1
	}
	return t
}

// Len returns the number of groups.
func (t *Table[T]) Len() int { return len(t.groups) }

// RO returns group i for reading only. The caller must not write through
// the returned slice: it may alias storage shared with a snapshot.
func (t *Table[T]) RO(i int) []T { return t.groups[i] }

// Mut returns group i for writing, copying it into private storage first
// if it is (or may be) shared with a snapshot. The fast path — group
// already private — is a generation compare.
//
//dmp:hotpath
func (t *Table[T]) Mut(i int) []T {
	if t.gen[i] == t.own {
		return t.groups[i]
	}
	return t.unshare(i)
}

// unshare privately copies group i (kept out of Mut so the fast path
// inlines into hot loops).
//
//dmp:hotpath
func (t *Table[T]) unshare(i int) []T {
	if len(t.arena)+t.gsize > cap(t.arena) {
		t.arena = make([]T, 0, blockGroups*t.gsize) //dmp:allow hotalloc -- arena block amortizes one allocation over blockGroups first-writes
	}
	off := len(t.arena)
	t.arena = append(t.arena, t.groups[i]...)
	g := t.arena[off:len(t.arena):len(t.arena)]
	t.groups[i] = g
	t.gen[i] = t.own
	return g
}

// Clone snapshots the table: O(#groups) header copies, no element
// copies. The receiver's privately owned groups become shared (its next
// write to each will re-copy), and the returned table shares everything.
//
//dmp:hotpath
func (t *Table[T]) Clone() Table[T] {
	t.own++
	if t.own == 0 { // wrapped: nothing is provably private any more
		t.own = 1
		for i := range t.gen {
			t.gen[i] = 0
		}
	}
	//dmp:allow hotalloc -- the snapshot's header arrays ARE the O(metadata) cost Clone promises, once per sampling period
	c := Table[T]{groups: make([][]T, len(t.groups)), gen: make([]uint32, len(t.groups)), own: 1, gsize: t.gsize}
	copy(c.groups, t.groups)
	return c
}

// Flat is a copy-on-write flat array of T, chunked into fixed-size
// groups so a write only privatizes its chunk. Used for the direct-
// mapped counter and target tables (gshare, bimodal, JRS, ITC).
type Flat[T any] struct {
	tab   Table[T]
	shift uint
	mask  int
	n     int
}

// flatShift picks the chunk size for an n-element flat table: 256
// elements per chunk, or the whole table when it is smaller.
func flatShift(n int) uint {
	s := uint(8)
	for n < 1<<s {
		s--
	}
	return s
}

// NewFlat builds a zero-valued flat COW array of n elements (n must be a
// power of two, which every table in this simulator is).
func NewFlat[T any](n int) Flat[T] {
	if n <= 0 || n&(n-1) != 0 {
		panic("cow: flat length must be a power of two")
	}
	sh := flatShift(n)
	return Flat[T]{tab: NewTable[T](n>>sh, 1<<sh), shift: sh, mask: 1<<sh - 1, n: n}
}

// Len returns the element count.
func (f *Flat[T]) Len() int { return f.n }

// At reads element i.
//
//dmp:hotpath
func (f *Flat[T]) At(i int) T { return f.tab.groups[i>>f.shift][i&f.mask] }

// Mut returns a pointer to element i for writing, privatizing its chunk
// first if shared.
//
//dmp:hotpath
func (f *Flat[T]) Mut(i int) *T {
	g := f.tab.Mut(i >> f.shift)
	return &g[i&f.mask]
}

// Clone snapshots the array (see Table.Clone).
//
//dmp:hotpath
func (f *Flat[T]) Clone() Flat[T] {
	return Flat[T]{tab: f.tab.Clone(), shift: f.shift, mask: f.mask, n: f.n}
}
