package cow

import (
	"sync"
	"testing"
)

func TestTableIsolation(t *testing.T) {
	a := NewTable[int](8, 4)
	for i := 0; i < 8; i++ {
		g := a.Mut(i)
		for j := range g {
			g[j] = 10*i + j
		}
	}
	b := a.Clone()

	// Writes on either side after the snapshot must not show on the other.
	a.Mut(3)[0] = -1
	b.Mut(3)[1] = -2
	b.Mut(5)[2] = -3
	if got := b.RO(3)[0]; got != 30 {
		t.Errorf("clone saw parent write: b[3][0] = %d, want 30", got)
	}
	if got := a.RO(3)[1]; got != 31 {
		t.Errorf("parent saw clone write: a[3][1] = %d, want 31", got)
	}
	if got := a.RO(5)[2]; got != 52 {
		t.Errorf("parent saw clone write: a[5][2] = %d, want 52", got)
	}
	// Untouched groups read through unchanged on both sides.
	if a.RO(7)[3] != 73 || b.RO(7)[3] != 73 {
		t.Errorf("untouched group changed: a=%d b=%d, want 73", a.RO(7)[3], b.RO(7)[3])
	}
}

func TestTableRepeatedClones(t *testing.T) {
	a := NewTable[int](4, 2)
	a.Mut(0)[0] = 1
	var clones []Table[int]
	for i := 0; i < 5; i++ {
		c := a.Clone()
		clones = append(clones, c)
		a.Mut(0)[0] = 100 + i // dirty the parent between snapshots
	}
	for i := range clones {
		want := 1
		if i > 0 {
			want = 100 + i - 1
		}
		if got := clones[i].RO(0)[0]; got != want {
			t.Errorf("clone %d: got %d, want %d", i, got, want)
		}
	}
}

func TestTableCloneOfClone(t *testing.T) {
	a := NewTable[int](2, 1)
	a.Mut(1)[0] = 7
	b := a.Clone()
	c := b.Clone()
	b.Mut(1)[0] = 8
	if got := c.RO(1)[0]; got != 7 {
		t.Errorf("grandchild saw child write: %d, want 7", got)
	}
	if got := a.RO(1)[0]; got != 7 {
		t.Errorf("parent saw child write: %d, want 7", got)
	}
}

// TestTableConcurrentCloneUse is the sampling handoff pattern under the
// race detector: the parent keeps writing while each clone is read and
// written on its own goroutine.
func TestTableConcurrentCloneUse(t *testing.T) {
	a := NewTable[uint64](32, 8)
	var wg sync.WaitGroup
	for round := 0; round < 16; round++ {
		c := a.Clone()
		wg.Add(1)
		go func(c Table[uint64], round int) {
			defer wg.Done()
			var sum uint64
			for i := 0; i < c.Len(); i++ {
				g := c.Mut(i)
				for j := range g {
					sum += g[j]
					g[j] = sum
				}
			}
		}(c, round)
		for i := 0; i < a.Len(); i++ {
			a.Mut(i)[round%8]++
		}
	}
	wg.Wait()
}

func TestTableCloneAllocsConstantSized(t *testing.T) {
	a := NewTable[[3]uint64](1024, 8)
	for i := 0; i < a.Len(); i++ {
		a.Mut(i)
	}
	allocs := testing.AllocsPerRun(20, func() {
		_ = a.Clone()
	})
	// Header copies only: the groups slice and the gen slice.
	if allocs > 2 {
		t.Errorf("Table.Clone allocates %v objects, want <= 2 (O(metadata) snapshot)", allocs)
	}
}

func TestFlatIsolation(t *testing.T) {
	a := NewFlat[uint8](1 << 10)
	for i := 0; i < a.Len(); i++ {
		*a.Mut(i) = uint8(i)
	}
	b := a.Clone()
	*a.Mut(5) = 99
	*b.Mut(600) = 42
	if got := b.At(5); got != 5 {
		t.Errorf("clone saw parent write: %d, want 5", got)
	}
	if got := a.At(600); got != uint8(600%256) {
		t.Errorf("parent saw clone write: %d, want %d", got, uint8(600%256))
	}
}

func TestFlatSmallerThanChunk(t *testing.T) {
	a := NewFlat[int](16) // smaller than the default 256-element chunk
	*a.Mut(15) = 3
	b := a.Clone()
	*a.Mut(15) = 4
	if b.At(15) != 3 {
		t.Errorf("small flat not isolated: got %d, want 3", b.At(15))
	}
}
