package bpred

import "dmp/internal/cow"

// BTB is the branch target buffer: a set-associative cache of branch
// target addresses, indexed by PC. The front end consults it to find
// where control-flow instructions go before they are decoded; for this
// simulator's one-instruction-per-address ISA the decoded target is also
// available at fetch, so the BTB's role is to model the "branch not in
// BTB" fetch break and to supply targets for indirect jumps via the
// indirect target cache.
type BTB struct {
	sets    cow.Table[btbEntry]
	assoc   int
	setMask uint64
	setSh   uint
	// clock is the per-BTB LRU timestamp source. It must not be shared
	// across BTBs: machines run in parallel, and LRU only needs relative
	// order within one machine anyway.
	clock uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// NewBTB builds a BTB with the given number of entries (power of two)
// and associativity. The paper's baseline is 4K entries, 4-way.
func NewBTB(entries, assoc int) *BTB {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic("bpred: bad BTB geometry")
	}
	nsets := entries / assoc
	if nsets&(nsets-1) != 0 {
		panic("bpred: BTB sets must be a power of two")
	}
	sh := uint(0)
	for 1<<sh != nsets {
		sh++
	}
	return &BTB{sets: cow.NewTable[btbEntry](nsets, assoc), assoc: assoc,
		setMask: uint64(nsets - 1), setSh: sh}
}

// Lookup returns the predicted target for the branch at pc and whether
// the BTB hits.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	// Scan read-only; only a hit writes (its LRU stamp), so misses never
	// force a COW set copy.
	set := b.sets.RO(int(pc & b.setMask))
	tag := pc >> b.setSh
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.clock++
			ms := b.sets.Mut(int(pc & b.setMask))
			ms[i].lru = b.clock
			return ms[i].target, true
		}
	}
	return 0, false
}

// Insert records a branch target, evicting LRU on conflict.
func (b *BTB) Insert(pc, target uint64) {
	set := b.sets.Mut(int(pc & b.setMask))
	tag := pc >> b.setSh
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	b.clock++
	set[victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.clock}
}

// RAS is the return address stack. The core checkpoints it by value at
// every branch (it is small), which is how real machines repair RAS
// corruption on misprediction recovery.
type RAS struct {
	stack []uint64
	top   int // index of next push slot
	count int
}

// NewRAS builds a return address stack of the given depth (paper: 64).
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("bpred: bad RAS depth")
	}
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.count < len(r.stack) {
		r.count++
	}
}

// Pop predicts a return target. An empty stack predicts 0, which will be
// a misprediction — exactly what hardware does.
func (r *RAS) Pop() uint64 {
	if r.count == 0 {
		return 0
	}
	r.top = (r.top + len(r.stack) - 1) % len(r.stack)
	r.count--
	return r.stack[r.top]
}

// Snapshot copies the RAS state for checkpointing.
func (r *RAS) Snapshot() RASState {
	var s RASState
	r.SnapshotInto(&s)
	return s
}

// SnapshotInto copies the RAS state into s, reusing s's backing storage
// when it is large enough (checkpoint pooling: the core takes a snapshot
// per control uop, which dominates allocation if each copy is fresh).
func (r *RAS) SnapshotInto(s *RASState) {
	s.top, s.count = r.top, r.count
	if cap(s.stack) < len(r.stack) {
		s.stack = make([]uint64, len(r.stack))
	} else {
		s.stack = s.stack[:len(r.stack)]
	}
	copy(s.stack, r.stack)
}

// Restore rewinds the RAS to a snapshot.
func (r *RAS) Restore(s RASState) {
	r.top, r.count = s.top, s.count
	copy(r.stack, s.stack)
}

// RASState is a RAS checkpoint.
type RASState struct {
	stack      []uint64
	top, count int
}

// ITC is the indirect target cache: a direct-mapped table of last-seen
// targets for indirect jumps/calls, indexed by PC xor history (paper:
// 64K entries). The table is chunked copy-on-write: at 64K × 8B it is
// the largest predictor table, and most workloads touch a handful of
// chunks, so COW snapshots pay almost nothing for it.
type ITC struct {
	table cow.Flat[uint64]
	mask  uint64
}

// NewITC builds an indirect target cache with 2^logSize entries.
func NewITC(logSize int) *ITC {
	if logSize <= 0 || logSize > 26 {
		panic("bpred: bad ITC size")
	}
	return &ITC{table: cow.NewFlat[uint64](1 << logSize), mask: 1<<logSize - 1}
}

func (t *ITC) index(pc uint64, hist GHR) uint64 {
	return (pc ^ uint64(hist)<<2) & t.mask
}

// Lookup predicts the target of the indirect branch at pc.
func (t *ITC) Lookup(pc uint64, hist GHR) uint64 {
	return t.table.At(int(t.index(pc, hist)))
}

// Update records the resolved target.
func (t *ITC) Update(pc uint64, hist GHR, target uint64) {
	*t.table.Mut(int(t.index(pc, hist))) = target
}

// Clone snapshots the BTB's tag and target state copy-on-write.
func (b *BTB) Clone() *BTB {
	n := *b
	n.sets = b.sets.Clone()
	return &n
}

// Clone deep-copies the return address stack.
func (r *RAS) Clone() *RAS {
	return &RAS{stack: append([]uint64(nil), r.stack...), top: r.top, count: r.count}
}

// Clone snapshots the indirect target cache copy-on-write.
func (t *ITC) Clone() *ITC {
	return &ITC{table: t.table.Clone(), mask: t.mask}
}
