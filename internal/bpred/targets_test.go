package bpred

import "testing"

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(4096, 4)
	if _, ok := b.Lookup(100); ok {
		t.Error("empty BTB hit")
	}
	b.Insert(100, 200)
	tgt, ok := b.Lookup(100)
	if !ok || tgt != 200 {
		t.Errorf("lookup = %d,%v", tgt, ok)
	}
	b.Insert(100, 300) // update in place
	tgt, _ = b.Lookup(100)
	if tgt != 300 {
		t.Errorf("updated target = %d", tgt)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := NewBTB(8, 2)         // 4 sets, 2-way: three conflicting PCs evict one
	pcs := []uint64{4, 8, 12} // all map to set 0
	for i, pc := range pcs {
		b.Insert(pc, uint64(1000+i))
	}
	hits := 0
	for _, pc := range pcs {
		if _, ok := b.Lookup(pc); ok {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (one LRU eviction)", hits)
	}
}

func TestBTBBadGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBTB(0, 1) },
		func() { NewBTB(7, 2) },
		func() { NewBTB(12, 4) }, // 3 sets, not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad BTB geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(10)
	r.Push(20)
	if r.Pop() != 20 || r.Pop() != 10 {
		t.Error("RAS order wrong")
	}
	if r.Pop() != 0 {
		t.Error("empty RAS pop != 0")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if r.Pop() != 3 || r.Pop() != 2 {
		t.Error("RAS wrap order wrong")
	}
	// The overwritten entry is gone; count is exhausted.
	if r.Pop() != 0 {
		t.Error("RAS did not exhaust after wrap")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	snap := r.Snapshot()
	r.Pop()
	r.Push(99)
	r.Push(98)
	r.Restore(snap)
	if r.Pop() != 2 || r.Pop() != 1 {
		t.Error("restore did not rewind RAS")
	}
}

func TestITC(t *testing.T) {
	c := NewITC(10)
	if c.Lookup(5, 0) != 0 {
		t.Error("empty ITC lookup != 0")
	}
	c.Update(5, 0b1010, 777)
	if c.Lookup(5, 0b1010) != 777 {
		t.Error("ITC lookup after update failed")
	}
	// Different history indexes a different entry (usually).
	c.Update(5, 0, 111)
	if c.Lookup(5, 0b1010) != 777 {
		t.Error("ITC history aliasing clobbered entry")
	}
}
