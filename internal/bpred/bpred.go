// Package bpred implements the branch-direction predictors and
// target-prediction structures of the baseline processor in Table 2 of
// the paper: a 64KB perceptron predictor with 59-bit global history
// (Jiménez & Lin, HPCA 2001), a 4K-entry BTB, a 64-entry return address
// stack, and a 64K-entry indirect target cache. A gshare, a bimodal, and
// a gshare+bimodal hybrid predictor (the configuration Klauser et al.
// used for Dynamic Hammock Predication) are provided for comparison
// studies, along with a perfect predictor driven by the fetch oracle.
//
// All predictors share the DirPredictor interface and are updated
// speculatively at prediction time only through their global history
// (which the core checkpoints and repairs); pattern/weight state is
// updated at retirement, so wrong-path branches do not pollute it
// (Section 2.3).
package bpred

import "dmp/internal/cow"

// GHR is a global history register of up to 64 branch outcomes; bit 0 is
// the most recent branch (1 = taken).
type GHR uint64

// Push shifts an outcome into the history.
func (g GHR) Push(taken bool) GHR {
	g <<= 1
	if taken {
		g |= 1
	}
	return g
}

// SetLast overwrites the most recent outcome bit. The DMP fetch mechanism
// uses this when re-fetching the alternate path: the checkpointed GHR's
// last bit — which corresponds to the diverge branch — is set for the
// taken path and reset for the not-taken path (Section 2.3).
func (g GHR) SetLast(taken bool) GHR {
	if taken {
		return g | 1
	}
	return g &^ 1
}

// DirPredictor predicts conditional branch directions.
//
// Predict returns the predicted direction given the branch PC and the
// current speculative global history. Update trains the predictor with
// the resolved outcome; it is called at retirement with the history the
// branch was predicted under.
type DirPredictor interface {
	Predict(pc uint64, hist GHR) bool
	Update(pc uint64, hist GHR, taken bool)
	// HistoryBits reports how many history bits the predictor consumes
	// (the core uses it to decide how much GHR to checkpoint; purely
	// informational).
	HistoryBits() int
	// Name identifies the predictor in reports.
	Name() string
}

// --- Perceptron predictor (Jiménez & Lin) ---

// Perceptron is the perceptron predictor: a table of weight vectors
// indexed by PC; the prediction is the sign of the dot product of the
// weights with the (bipolar) history, plus a bias weight. Training
// applies the standard threshold rule at retirement. Weight rows live in
// a copy-on-write table so sampled simulation snapshots the trained
// state in O(rows-metadata) (see internal/cow).
type Perceptron struct {
	weights cow.Table[int16]
	hbits   int
	theta   int32
}

// PerceptronConfig sizes a perceptron predictor. The paper's baseline is
// 64KB: 1021 entries × 59 history bits (60 signed weights just fit 64KB
// with byte weights; we use the canonical parameters).
type PerceptronConfig struct {
	Entries     int // number of perceptrons (paper: 1021)
	HistoryBits int // history length (paper: 59)
}

// DefaultPerceptronConfig is the paper's 64KB configuration.
func DefaultPerceptronConfig() PerceptronConfig {
	return PerceptronConfig{Entries: 1021, HistoryBits: 59}
}

// NewPerceptron builds a perceptron predictor.
func NewPerceptron(cfg PerceptronConfig) *Perceptron {
	if cfg.Entries <= 0 || cfg.HistoryBits <= 0 || cfg.HistoryBits > 63 {
		panic("bpred: bad perceptron config")
	}
	// Optimal threshold from Jiménez & Lin: 1.93*h + 14.
	return &Perceptron{weights: cow.NewTable[int16](cfg.Entries, cfg.HistoryBits+1), // +1 bias weight
		hbits: cfg.HistoryBits, theta: int32(1.93*float64(cfg.HistoryBits) + 14)}
}

func (p *Perceptron) index(pc uint64) int { return int(pc % uint64(p.weights.Len())) }

func (p *Perceptron) output(pc uint64, hist GHR) int32 {
	w := p.weights.RO(p.index(pc))
	y := int32(w[0]) // bias
	for i := 0; i < p.hbits; i++ {
		if hist>>uint(i)&1 == 1 {
			y += int32(w[i+1])
		} else {
			y -= int32(w[i+1])
		}
	}
	return y
}

// Predict returns true (taken) if the perceptron output is non-negative.
func (p *Perceptron) Predict(pc uint64, hist GHR) bool {
	return p.output(pc, hist) >= 0
}

// Update trains with the resolved outcome under the prediction-time
// history.
func (p *Perceptron) Update(pc uint64, hist GHR, taken bool) {
	y := p.output(pc, hist)
	pred := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if pred == taken && mag > p.theta {
		return
	}
	w := p.weights.Mut(p.index(pc))
	t := int16(-1)
	if taken {
		t = 1
	}
	w[0] = satAdd(w[0], t)
	for i := 0; i < p.hbits; i++ {
		x := int16(-1)
		if hist>>uint(i)&1 == 1 {
			x = 1
		}
		w[i+1] = satAdd(w[i+1], x*t)
	}
}

func (p *Perceptron) HistoryBits() int { return p.hbits }
func (p *Perceptron) Name() string     { return "perceptron" }

// Clone snapshots the predictor's trained weights copy-on-write: rows
// are frozen and shared, and each instance privately re-copies a row on
// its first subsequent update to it.
func (p *Perceptron) Clone() *Perceptron {
	return &Perceptron{weights: p.weights.Clone(), hbits: p.hbits, theta: p.theta}
}

// satAdd adds with saturation at int8 range; 8-bit weights are the
// standard hardware budget.
func satAdd(a, b int16) int16 {
	s := a + b
	if s > 127 {
		return 127
	}
	if s < -128 {
		return -128
	}
	return s
}

// --- two-bit counter helpers ---

type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// --- GShare ---

// GShare is a gshare predictor: a table of 2-bit counters indexed by
// PC xor history. The counter table is chunked copy-on-write
// (internal/cow) so sampled-simulation snapshots are O(metadata).
type GShare struct {
	table cow.Flat[counter]
	hbits int
	mask  uint64
}

// NewGShare builds a gshare with 2^logSize counters and hbits history
// bits (hbits ≤ logSize).
func NewGShare(logSize, hbits int) *GShare {
	if logSize <= 0 || logSize > 30 || hbits < 0 || hbits > logSize {
		panic("bpred: bad gshare config")
	}
	g := &GShare{table: cow.NewFlat[counter](1 << logSize), hbits: hbits, mask: 1<<logSize - 1}
	for i := 0; i < g.table.Len(); i++ {
		*g.table.Mut(i) = 2 // weakly taken
	}
	return g
}

func (g *GShare) index(pc uint64, hist GHR) uint64 {
	h := uint64(hist) & (1<<uint(g.hbits) - 1)
	return (pc ^ h) & g.mask
}

func (g *GShare) Predict(pc uint64, hist GHR) bool {
	return g.table.At(int(g.index(pc, hist))).taken()
}

func (g *GShare) Update(pc uint64, hist GHR, taken bool) {
	c := g.table.Mut(int(g.index(pc, hist)))
	*c = c.update(taken)
}

func (g *GShare) HistoryBits() int { return g.hbits }
func (g *GShare) Name() string     { return "gshare" }

// Clone snapshots the counter table copy-on-write.
func (g *GShare) Clone() *GShare {
	return &GShare{table: g.table.Clone(), hbits: g.hbits, mask: g.mask}
}

// --- Bimodal ---

// Bimodal is a PC-indexed table of 2-bit counters (chunked copy-on-write
// like GShare's).
type Bimodal struct {
	table cow.Flat[counter]
	mask  uint64
}

// NewBimodal builds a bimodal predictor with 2^logSize counters.
func NewBimodal(logSize int) *Bimodal {
	if logSize <= 0 || logSize > 30 {
		panic("bpred: bad bimodal config")
	}
	b := &Bimodal{table: cow.NewFlat[counter](1 << logSize), mask: 1<<logSize - 1}
	for i := 0; i < b.table.Len(); i++ {
		*b.table.Mut(i) = 2
	}
	return b
}

func (b *Bimodal) Predict(pc uint64, _ GHR) bool { return b.table.At(int(pc & b.mask)).taken() }

func (b *Bimodal) Update(pc uint64, _ GHR, taken bool) {
	c := b.table.Mut(int(pc & b.mask))
	*c = c.update(taken)
}

func (b *Bimodal) HistoryBits() int { return 0 }
func (b *Bimodal) Name() string     { return "bimodal" }

// Clone snapshots the counter table copy-on-write.
func (b *Bimodal) Clone() *Bimodal {
	return &Bimodal{table: b.table.Clone(), mask: b.mask}
}

// --- Hybrid (gshare + bimodal with a chooser) ---

// Hybrid is the gshare+bimodal tournament predictor used by Klauser et
// al. for Dynamic Hammock Predication. A PC-indexed chooser table of
// 2-bit counters selects between the components; the chooser trains
// toward the component that was correct when they disagree.
type Hybrid struct {
	g       *GShare
	b       *Bimodal
	chooser cow.Flat[counter]
	mask    uint64
}

// NewHybrid builds a hybrid with 2^logSize chooser entries over the two
// component predictors.
func NewHybrid(logSize, hbits int) *Hybrid {
	h := &Hybrid{
		g:       NewGShare(logSize, hbits),
		b:       NewBimodal(logSize),
		chooser: cow.NewFlat[counter](1 << logSize),
		mask:    1<<logSize - 1,
	}
	for i := 0; i < h.chooser.Len(); i++ {
		*h.chooser.Mut(i) = 2 // weakly prefer gshare
	}
	return h
}

func (h *Hybrid) Predict(pc uint64, hist GHR) bool {
	if h.chooser.At(int(pc & h.mask)).taken() {
		return h.g.Predict(pc, hist)
	}
	return h.b.Predict(pc, hist)
}

func (h *Hybrid) Update(pc uint64, hist GHR, taken bool) {
	gp := h.g.Predict(pc, hist)
	bp := h.b.Predict(pc, hist)
	if gp != bp {
		c := h.chooser.Mut(int(pc & h.mask))
		*c = c.update(gp == taken)
	}
	h.g.Update(pc, hist, taken)
	h.b.Update(pc, hist, taken)
}

func (h *Hybrid) HistoryBits() int { return h.g.HistoryBits() }
func (h *Hybrid) Name() string     { return "hybrid" }

// Clone snapshots both components and the chooser copy-on-write.
func (h *Hybrid) Clone() *Hybrid {
	return &Hybrid{g: h.g.Clone(), b: h.b.Clone(), chooser: h.chooser.Clone(), mask: h.mask}
}

// CloneDir snapshots a direction predictor's trained state
// (copy-on-write; the copies stay isolated). Sampled simulation warms
// one predictor continuously during functional fast-forward and clones
// it per checkpoint. Stateless predictors (StaticTaken, StaticNotTaken)
// are returned as-is.
func CloneDir(p DirPredictor) DirPredictor {
	switch v := p.(type) {
	case *Perceptron:
		return v.Clone()
	case *GShare:
		return v.Clone()
	case *Bimodal:
		return v.Clone()
	case *Hybrid:
		return v.Clone()
	default:
		return p
	}
}

// --- static predictors for tests and lower bounds ---

// StaticTaken always predicts taken.
type StaticTaken struct{}

func (StaticTaken) Predict(uint64, GHR) bool { return true }
func (StaticTaken) Update(uint64, GHR, bool) {}
func (StaticTaken) HistoryBits() int         { return 0 }
func (StaticTaken) Name() string             { return "static-taken" }

// StaticNotTaken always predicts not-taken.
type StaticNotTaken struct{}

func (StaticNotTaken) Predict(uint64, GHR) bool { return false }
func (StaticNotTaken) Update(uint64, GHR, bool) {}
func (StaticNotTaken) HistoryBits() int         { return 0 }
func (StaticNotTaken) Name() string             { return "static-nottaken" }
