package bpred

import "testing"

// COW isolation pins: after Clone, training either copy must not leak
// into the other, in either direction. One test per cloned structure
// (mirrors core's TestSnapshotIsolatesWarmState at the component level).

func TestDirPredictorCloneIsolation(t *testing.T) {
	preds := []DirPredictor{
		NewPerceptron(DefaultPerceptronConfig()),
		NewGShare(10, 8),
		NewBimodal(10),
		NewHybrid(10, 8),
	}
	for _, p := range preds {
		t.Run(p.Name(), func(t *testing.T) {
			const pc, hist = 0x40, GHR(0b1011)
			for i := 0; i < 64; i++ {
				p.Update(pc, hist, true)
			}
			cl := CloneDir(p)
			// Re-train the original the other way; the clone keeps taken.
			for i := 0; i < 256; i++ {
				p.Update(pc, hist, false)
			}
			if !cl.Predict(pc, hist) {
				t.Error("re-training the original flipped the clone")
			}
			// And the reverse: flip the clone; the original stays.
			for i := 0; i < 256; i++ {
				cl.Update(pc, hist, true)
			}
			if p.Predict(pc, hist) {
				t.Error("re-training the clone flipped the original")
			}
		})
	}
}

func TestBTBCloneIsolation(t *testing.T) {
	b := NewBTB(64, 4)
	b.Insert(0x40, 0x100)
	cl := b.Clone()
	cl.Insert(0x40, 0x200) // retarget in the clone only
	if tgt, ok := b.Lookup(0x40); !ok || tgt != 0x100 {
		t.Errorf("original BTB entry = %#x,%v; clone insert leaked", tgt, ok)
	}
	b.Insert(0x80, 0x300) // new entry in the original only
	if _, ok := cl.Lookup(0x80); ok {
		t.Error("original's later insert visible in the clone")
	}
	if tgt, ok := cl.Lookup(0x40); !ok || tgt != 0x200 {
		t.Errorf("clone BTB entry = %#x,%v, want 0x200", tgt, ok)
	}
}

func TestBTBLookupMissDoesNotUnshare(t *testing.T) {
	// A BTB miss must not force a COW set copy: misses dominate on cold
	// sets and copying per miss would defeat the snapshot.
	b := NewBTB(64, 4)
	b.Insert(0x40, 0x100)
	cl := b.Clone()
	allocs := testing.AllocsPerRun(100, func() {
		cl.Lookup(0x9999) // miss: different set, never inserted
	})
	if allocs != 0 {
		t.Errorf("BTB miss allocates %v objects; misses must not unshare", allocs)
	}
}

func TestITCCloneIsolation(t *testing.T) {
	c := NewITC(8)
	c.Update(0x40, 3, 0x500)
	cl := c.Clone()
	cl.Update(0x40, 3, 0x600)
	if tgt := c.Lookup(0x40, 3); tgt != 0x500 {
		t.Errorf("original ITC entry = %#x; clone update leaked", tgt)
	}
	c.Update(0x44, 9, 0x700)
	if tgt := cl.Lookup(0x44, 9); tgt != 0 {
		t.Errorf("original's later update visible in the clone: %#x", tgt)
	}
}
