package bpred

import (
	"testing"
	"testing/quick"
)

func TestGHRPush(t *testing.T) {
	var g GHR
	g = g.Push(true).Push(false).Push(true)
	if g != 0b101 {
		t.Errorf("ghr = %b, want 101", g)
	}
}

func TestGHRSetLast(t *testing.T) {
	g := GHR(0b100)
	if g.SetLast(true) != 0b101 {
		t.Error("SetLast(true) wrong")
	}
	if GHR(0b101).SetLast(false) != 0b100 {
		t.Error("SetLast(false) wrong")
	}
}

// train runs a predictor on a repeating pattern and returns the accuracy
// over the last half of the run.
func train(p DirPredictor, pcs []uint64, pattern func(i int, pc uint64) bool, n int) float64 {
	var hist GHR
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		for _, pc := range pcs {
			taken := pattern(i, pc)
			pred := p.Predict(pc, hist)
			p.Update(pc, hist, taken)
			if i >= n/2 {
				counted++
				if pred == taken {
					correct++
				}
			}
			hist = hist.Push(taken)
		}
	}
	return float64(correct) / float64(counted)
}

func predictors() map[string]DirPredictor {
	return map[string]DirPredictor{
		"perceptron": NewPerceptron(DefaultPerceptronConfig()),
		"gshare":     NewGShare(14, 12),
		"bimodal":    NewBimodal(14),
		"hybrid":     NewHybrid(14, 12),
	}
}

func TestPredictorsLearnBiasedBranch(t *testing.T) {
	for name, p := range predictors() {
		acc := train(p, []uint64{100}, func(i int, _ uint64) bool { return true }, 500)
		if acc < 0.99 {
			t.Errorf("%s: always-taken accuracy %.3f < 0.99", name, acc)
		}
	}
}

func TestHistoryPredictorsLearnAlternating(t *testing.T) {
	// T,N,T,N... is perfectly predictable from one history bit; bimodal
	// cannot learn it, the others must.
	for _, name := range []string{"perceptron", "gshare", "hybrid"} {
		p := predictors()[name]
		acc := train(p, []uint64{200}, func(i int, _ uint64) bool { return i%2 == 0 }, 1000)
		if acc < 0.95 {
			t.Errorf("%s: alternating accuracy %.3f < 0.95", name, acc)
		}
	}
}

func TestHistoryPredictorsLearnPeriodicPattern(t *testing.T) {
	// Period-5 pattern TTNTN.
	pat := []bool{true, true, false, true, false}
	for _, name := range []string{"perceptron", "gshare", "hybrid"} {
		p := predictors()[name]
		acc := train(p, []uint64{300}, func(i int, _ uint64) bool { return pat[i%len(pat)] }, 2000)
		if acc < 0.9 {
			t.Errorf("%s: periodic accuracy %.3f < 0.9", name, acc)
		}
	}
}

func TestPredictorsNearChanceOnRandom(t *testing.T) {
	// A pseudo-random data-dependent branch should stay close to chance.
	seed := uint64(12345)
	rnd := func() bool {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed>>63 == 1
	}
	outcomes := make([]bool, 20000)
	for i := range outcomes {
		outcomes[i] = rnd()
	}
	for name, p := range predictors() {
		acc := train(p, []uint64{400}, func(i int, _ uint64) bool { return outcomes[i] }, len(outcomes))
		if acc > 0.65 {
			t.Errorf("%s: random accuracy %.3f suspiciously high", name, acc)
		}
	}
}

func TestBimodalIgnoresHistory(t *testing.T) {
	b := NewBimodal(10)
	b.Update(7, 0, true)
	b.Update(7, 0, true)
	if b.Predict(7, 0) != b.Predict(7, 0xFFFF) {
		t.Error("bimodal prediction depends on history")
	}
}

func TestPerceptronSaturation(t *testing.T) {
	p := NewPerceptron(PerceptronConfig{Entries: 4, HistoryBits: 8})
	for i := 0; i < 10000; i++ {
		p.Update(0, 0, true)
	}
	// Weights must be saturated, not overflowed: prediction stays taken.
	if !p.Predict(0, 0) {
		t.Error("saturated perceptron flipped prediction")
	}
	for _, w := range p.weights.RO(0) {
		if w > 127 || w < -128 {
			t.Fatalf("weight %d out of int8 range", w)
		}
	}
}

func TestSatAdd(t *testing.T) {
	if satAdd(127, 1) != 127 {
		t.Error("satAdd(127,1)")
	}
	if satAdd(-128, -1) != -128 {
		t.Error("satAdd(-128,-1)")
	}
	if satAdd(10, -3) != 7 {
		t.Error("satAdd(10,-3)")
	}
}

func TestCounterQuickStaysInRange(t *testing.T) {
	f := func(updates []bool) bool {
		c := counter(2)
		for _, u := range updates {
			c = c.update(u)
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictorNames(t *testing.T) {
	want := map[string]string{
		"perceptron": "perceptron", "gshare": "gshare",
		"bimodal": "bimodal", "hybrid": "hybrid",
	}
	for k, p := range predictors() {
		if p.Name() != want[k] {
			t.Errorf("%s.Name() = %q", k, p.Name())
		}
	}
	if (StaticTaken{}).Name() != "static-taken" || (StaticNotTaken{}).Name() != "static-nottaken" {
		t.Error("static predictor names")
	}
	if !(StaticTaken{}).Predict(0, 0) || (StaticNotTaken{}).Predict(0, 0) {
		t.Error("static predictions wrong")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	cases := []func(){
		func() { NewPerceptron(PerceptronConfig{Entries: 0, HistoryBits: 10}) },
		func() { NewPerceptron(PerceptronConfig{Entries: 10, HistoryBits: 64}) },
		func() { NewGShare(0, 0) },
		func() { NewGShare(10, 11) },
		func() { NewBimodal(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHybridChooserPrefersBetterComponent(t *testing.T) {
	// An alternating branch: gshare learns it, bimodal cannot. After
	// training, the hybrid must predict like gshare.
	h := NewHybrid(12, 10)
	var hist GHR
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		h.Update(50, hist, taken)
		hist = hist.Push(taken)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		taken := i%2 == 0
		if h.Predict(50, hist) == taken {
			correct++
		}
		h.Update(50, hist, taken)
		hist = hist.Push(taken)
	}
	if correct < 95 {
		t.Errorf("hybrid alternating correct = %d/100", correct)
	}
}
