package exp

import (
	"fmt"

	"dmp/internal/core"
)

// mergePredConfig is the enhanced DMP machine with the given runtime CFM
// source and merge-table capacity (0 = the internal/merge default).
func mergePredConfig(src string, table int) core.Config {
	c := core.EnhancedDMPConfig()
	c.CFMSource = src
	c.MergeTableSize = table
	return c
}

// MergePred evaluates dynamic merge-point prediction: enhanced DMP
// driven by compiler annotations vs. the runtime merge-point predictor
// (internal/merge) vs. the hybrid of both, as % IPC improvement over the
// baseline, with a per-benchmark recovery fraction (how much of the
// annotated machine's gain the annotation-free machine keeps) and a
// merge-table capacity sensitivity in the note. The dynamic and hybrid
// legs run the same annotated program image the other experiments cache —
// the dynamic source ignores annotations at runtime, so the run is
// bit-identical to an annotation-free binary.
func MergePred(o Options) (*Table, error) {
	o = o.norm()
	smallTable, bigTable := 16, 256
	cfgs := []core.Config{
		core.DefaultConfig(),
		core.EnhancedDMPConfig(), // annotated source
		mergePredConfig("dynamic", 0),
		mergePredConfig("hybrid", 0),
		mergePredConfig("dynamic", smallTable),
		mergePredConfig("dynamic", bigTable),
	}
	all, err := runSuites(cfgs, o)
	if err != nil {
		return nil, err
	}
	base, ann, dyn, hyb, dynSmall, dynBig := all[0], all[1], all[2], all[3], all[4], all[5]

	t := &Table{ID: "mergepred", Title: "Dynamic merge-point prediction: learned vs annotated CFM points",
		Header: []string{"bench", "base-IPC", "annotated%", "dynamic%", "hybrid%", "recovered%", "dyn-episodes", "merge-misp"}}
	var annI, dynI, hybI, smallI, bigI, recs []float64
	for i, b := range o.Benchmarks {
		ai := pctImp(ann[i], base[i])
		di := pctImp(dyn[i], base[i])
		hi := pctImp(hyb[i], base[i])
		annI, dynI, hybI = append(annI, ai), append(dynI, di), append(hybI, hi)
		smallI = append(smallI, pctImp(dynSmall[i], base[i]))
		bigI = append(bigI, pctImp(dynBig[i], base[i]))
		rec := "-"
		if ai > 0.5 {
			r := 100 * di / ai
			recs = append(recs, r)
			rec = f1(r)
		}
		t.AddRow(b, f3(base[i].IPC()), f1(ai), f1(di), f1(hi), rec,
			d(dyn[i].DynCFMEpisodes), d(dyn[i].MergeMispredicts))
	}
	t.AddRow("amean", "", f1(amean(annI)), f1(amean(dynI)), f1(amean(hybI)),
		f1(amean(recs)), "", "")
	t.Note = fmt.Sprintf(
		"recovered%% = dynamic gain as a fraction of annotated gain (benches with annotated gain > 0.5%%); "+
			"table-size sensitivity, dynamic amean gain: %d-entry %.1f%%, default %.1f%%, %d-entry %.1f%%",
		smallTable, amean(smallI), amean(dynI), bigTable, amean(bigI))
	return t, nil
}
