package exp

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dmp/internal/core"
	"dmp/internal/profile"
	"dmp/internal/prog"
	"dmp/internal/workload"
)

// Table2 renders the baseline machine configuration (paper Table 2).
func Table2(Options) (*Table, error) {
	cfg := core.DefaultConfig()
	t := &Table{ID: "table2", Title: "Baseline processor configuration", Header: []string{"component", "setting"}}
	t.AddRow("front end", fmt.Sprintf("%d-wide fetch, <=%d cond branches/cycle, ends at first taken branch", cfg.FetchWidth, cfg.MaxBrPerFetch))
	t.AddRow("I-cache", "64KB, 2-way, 2-cycle, 64B lines")
	t.AddRow("direction predictor", "64KB perceptron (1021 entries, 59-bit history)")
	t.AddRow("BTB / RAS / ITC", "4K-entry 4-way BTB; 64-entry RAS; 64K-entry indirect target cache")
	t.AddRow("pipeline", fmt.Sprintf("%d stages (minimum misprediction penalty)", cfg.PipelineDepth))
	t.AddRow("window", fmt.Sprintf("%d-entry ROB; %d-wide issue/retire", cfg.ROBSize, cfg.IssueWidth))
	t.AddRow("D-cache", "64KB, 4-way, 2-cycle, 64B lines")
	t.AddRow("L2", "1MB unified, 8-way, 10-cycle")
	t.AddRow("memory", "300-cycle minimum latency")
	t.AddRow("confidence estimator", "1KB JRS (2K entries; 5-bit history — scale adaptation, paper uses 12, see DESIGN.md)")
	return t, nil
}

// Table3 reproduces the baseline characterisation: base IPC, retired
// instructions, branches and mispredictions per benchmark.
func Table3(o Options) (*Table, error) {
	o = o.norm()
	stats, err := runSuite(core.DefaultConfig(), o)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "table3", Title: "Baseline characteristics (paper Table 3)",
		Header: []string{"bench", "baseIPC", "insts", "branches", "mispredicts", "missrate%"}}
	for i, b := range o.Benchmarks {
		s := stats[i]
		t.AddRow(b, f2(s.IPC()), d(s.RetiredInsts), d(s.RetiredBranches),
			d(s.RetiredMispredicts), f2(100*s.MispredictRate()))
	}
	return t, nil
}

// Figure1 reproduces the wrong-path fetch decomposition: the percentage
// of all fetched instructions that were wrong-path control-dependent and
// wrong-path control-independent, on the baseline.
func Figure1(o Options) (*Table, error) {
	o = o.norm()
	stats, err := runSuite(core.DefaultConfig(), o)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig1", Title: "Wrong-path fetched instructions, baseline (paper Figure 1)",
		Header: []string{"bench", "%wrong-ctrl-dep", "%wrong-ctrl-indep", "%wrong-total"}}
	var cds, cis []float64
	for i, b := range o.Benchmarks {
		s := stats[i]
		tot := float64(s.FetchedInsts)
		cd := 100 * float64(s.FetchedWrongCD) / tot
		ci := 100 * float64(s.FetchedWrongCI) / tot
		cds, cis = append(cds, cd), append(cis, ci)
		t.AddRow(b, f1(cd), f1(ci), f1(cd+ci))
	}
	t.AddRow("amean", f1(amean(cds)), f1(amean(cis)), f1(amean(cds)+amean(cis)))
	t.Note = "paper: ~52% of fetches are wrong-path, ~63% of those control-independent"
	return t, nil
}

// Figure6 reproduces the misprediction taxonomy: mispredictions per
// thousand instructions split into simple-hammock diverge, complex
// diverge, and other complex branches. The per-benchmark profiling runs
// are independent, so they run concurrently under the global worker pool.
func Figure6(o Options) (*Table, error) {
	o = o.norm()
	t := &Table{ID: "fig6", Title: "Mispredicted branch taxonomy, MPKI (paper Figure 6)",
		Header: []string{"bench", "simple-hammock", "complex-diverge", "other", "total-mpki"}}
	mpkis := make([][3]float64, len(o.Benchmarks))
	ks := make([]float64, len(o.Benchmarks))
	errs := make([]error, len(o.Benchmarks))
	slots := workerSlots(o.Parallel)
	var wg sync.WaitGroup
	for i, bench := range o.Benchmarks {
		wg.Add(1)
		go func(i int, bench string) {
			defer wg.Done()
			slots <- struct{}{}
			defer func() { <-slots }()
			// Attribute mispredictions on the reference input with the same
			// predictor family as the machine. profile.Run annotates its
			// argument in place (ClearDiverge + ref-derived MarkDiverge), so it
			// must run on a private build, never on the shared cached program —
			// see the sharing invariant in cache.go. The taxonomy below reads
			// the ref-derived marks, exactly as it always has: the training
			// annotations were cleared by this very profile pass before the
			// cache existed, so a fresh ref build is byte-identical (and
			// skips a now-useless training run).
			w, err := workload.ByName(bench)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", bench, err)
				return
			}
			p := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: o.Scale})
			rep, err := profile.Run(p, profile.DefaultOptions())
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", bench, err)
				return
			}
			for _, bs := range rep.Branches {
				cls := 2 // other
				if dv := p.DivergeAt(bs.PC); dv != nil {
					if dv.Class == prog.ClassSimpleHammock {
						cls = 0
					} else {
						cls = 1
					}
				}
				mpkis[i][cls] += float64(bs.Mispredicts)
			}
			ks[i] = 1000 / float64(rep.TotalInsts)
		}(i, bench)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for i, bench := range o.Benchmarks {
		mpki, k := mpkis[i], ks[i]
		t.AddRow(bench, f2(mpki[0]*k), f2(mpki[1]*k), f2(mpki[2]*k),
			f2((mpki[0]+mpki[1]+mpki[2])*k))
	}
	t.Note = "paper: diverge branches cover ~57% of mispredictions, simple hammocks ~9%; mcf is hammock-dominated, gcc is 'other'"
	return t, nil
}

// improvementTable runs the baseline and each comparison configuration
// over the suite — all concurrently — and renders the % IPC improvement
// of every configuration over the baseline per benchmark, with a trailing
// amean row. Figures 7 and 9 and the dual-path table share this exact
// shape.
func improvementTable(id, title string, names []string, cfgs []core.Config, o Options) (*Table, error) {
	o = o.norm()
	all, err := runSuites(append([]core.Config{core.DefaultConfig()}, cfgs...), o)
	if err != nil {
		return nil, err
	}
	base, rest := all[0], all[1:]
	t := &Table{ID: id, Title: title, Header: append([]string{"bench"}, names...)}
	cols := make([][]float64, len(cfgs))
	for bi, bench := range o.Benchmarks {
		row := []string{bench}
		for ci := range cfgs {
			imp := pctImp(rest[ci][bi], base[bi])
			cols[ci] = append(cols[ci], imp)
			row = append(row, f1(imp))
		}
		t.AddRow(row...)
	}
	meanRow := []string{"amean"}
	for ci := range cols {
		meanRow = append(meanRow, f1(amean(cols[ci])))
	}
	t.AddRow(meanRow...)
	return t, nil
}

// figure7Configs are the five machines compared in Figure 7.
func figure7Configs() (names []string, cfgs []core.Config) {
	dhpJ := core.DHPConfig()
	dhpP := core.DHPConfig()
	dhpP.ConfidenceName = "perfect"
	dmpJ := core.DMPConfig()
	dmpP := core.DMPConfig()
	dmpP.ConfidenceName = "perfect"
	perf := core.DefaultConfig()
	perf.Mode = core.ModePerfect
	return []string{"DHP-jrs", "DHP-perf-conf", "diverge-jrs", "diverge-perf-conf", "perfect-cbp"},
		[]core.Config{dhpJ, dhpP, dmpJ, dmpP, perf}
}

// Figure7 reproduces the basic diverge-merge comparison: % IPC
// improvement over the baseline for DHP and basic DMP with real and
// perfect confidence, plus the perfect-predictor ceiling.
func Figure7(o Options) (*Table, error) {
	names, cfgs := figure7Configs()
	t, err := improvementTable("fig7", "% IPC improvement over baseline (paper Figure 7)", names, cfgs, o)
	if err == nil {
		t.Note = "paper (amean): DHP-jrs 2.8, DHP-perf 3.4, diverge-jrs 5.0, diverge-perf 19, perfect-cbp 48"
	}
	return t, err
}

// exitCaseTable renders the Table-1 exit-case distribution of a
// configuration (Figures 8 and 10).
func exitCaseTable(id, title string, cfg core.Config, o Options) (*Table, error) {
	o = o.norm()
	stats, err := runSuite(cfg, o)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title,
		Header: []string{"bench", "case1%", "case2%", "case3%", "case4%", "case5%", "case6%", "squashed%", "episodes"}}
	for i, b := range o.Benchmarks {
		s := stats[i]
		var tot float64
		for _, c := range s.ExitCases {
			tot += float64(c)
		}
		if tot == 0 {
			t.AddRow(b, "-", "-", "-", "-", "-", "-", "-", "0")
			continue
		}
		pct := func(c core.ExitCase) string { return f1(100 * float64(s.ExitCases[c]) / tot) }
		t.AddRow(b, pct(core.Exit1), pct(core.Exit2), pct(core.Exit3), pct(core.Exit4),
			pct(core.Exit5), pct(core.Exit6), f1(100*float64(s.ExitCases[0])/tot), d(s.Episodes))
	}
	return t, nil
}

// Figure8 is the exit-case distribution of the basic diverge-merge
// processor.
func Figure8(o Options) (*Table, error) {
	t, err := exitCaseTable("fig8", "Exit cases, basic DMP with JRS confidence (paper Figure 8)", core.DMPConfig(), o)
	if err == nil {
		t.Note = "paper: cases 1+2 dominate but fall under 40% for bzip2/gap/gzip; case 3 ~10%"
	}
	return t, err
}

// Figure9 reproduces the enhanced diverge-merge study: basic, +multiple
// CFM points, +early exit, +multiple diverge branches (cumulative).
func Figure9(o Options) (*Table, error) {
	mk := func(mcfm, eexit, mdb bool) core.Config {
		c := core.DMPConfig()
		c.MultipleCFM = mcfm
		c.EarlyExit = eexit
		c.MultipleDiverge = mdb
		return c
	}
	names := []string{"basic-diverge", "enhanced-mcfm", "enhanced-mcfm-eexit", "enhanced-mcfm-eexit-mdb"}
	cfgs := []core.Config{mk(false, false, false), mk(true, false, false), mk(true, true, false), mk(true, true, true)}
	t, err := improvementTable("fig9", "% IPC improvement over baseline, enhancements (paper Figure 9)", names, cfgs, o)
	if err == nil {
		t.Note = "paper: enhancements are cumulative; all three give 10.8% average"
	}
	return t, err
}

// Figure10 is the exit-case distribution of the enhanced diverge-merge
// processor.
func Figure10(o Options) (*Table, error) {
	t, err := exitCaseTable("fig10", "Exit cases, enhanced DMP (paper Figure 10)", core.EnhancedDMPConfig(), o)
	if err == nil {
		t.Note = "paper: early exit cuts case 3 from ~10% to ~3%"
	}
	return t, err
}

// Figure11 reproduces the pipeline-flush reduction of the enhanced DMP
// over the baseline.
func Figure11(o Options) (*Table, error) {
	o = o.norm()
	all, err := runSuites([]core.Config{core.DefaultConfig(), core.EnhancedDMPConfig()}, o)
	if err != nil {
		return nil, err
	}
	base, enh := all[0], all[1]
	t := &Table{ID: "fig11", Title: "Reduction in pipeline flushes, enhanced DMP (paper Figure 11)",
		Header: []string{"bench", "base-flushes", "dmp-flushes", "reduction%"}}
	var reds []float64
	for i, b := range o.Benchmarks {
		red := 0.0
		if base[i].Flushes > 0 {
			red = 100 * (1 - float64(enh[i].Flushes)/float64(base[i].Flushes))
		}
		reds = append(reds, red)
		t.AddRow(b, d(base[i].Flushes), d(enh[i].Flushes), f1(red))
	}
	t.AddRow("amean", "", "", f1(amean(reds)))
	t.Note = "paper: 31% average flush reduction; >40% on bzip2/parser/twolf/vpr/mesa/fma3d"
	return t, nil
}

// Figure12 reproduces the fetched/executed instruction comparison:
// enhanced DMP fetches fewer instructions (no control-independent
// refetch) but executes more (FALSE-predicate work plus inserted uops).
func Figure12(o Options) (*Table, error) {
	o = o.norm()
	all, err := runSuites([]core.Config{core.DefaultConfig(), core.EnhancedDMPConfig()}, o)
	if err != nil {
		return nil, err
	}
	base, enh := all[0], all[1]
	t := &Table{ID: "fig12", Title: "Fetched and executed instructions (paper Figure 12)",
		Header: []string{"bench", "base-fetched", "dmp-fetched", "base-exec", "dmp-exec", "dmp-extra-uops", "dmp-selects"}}
	var fr, er []float64
	for i, b := range o.Benchmarks {
		fr = append(fr, 100*(1-float64(enh[i].FetchedInsts)/float64(base[i].FetchedInsts)))
		er = append(er, 100*(float64(enh[i].CommittedWork())/float64(base[i].CommittedWork())-1))
		t.AddRow(b, d(base[i].FetchedInsts), d(enh[i].FetchedInsts),
			d(base[i].CommittedWork()), d(enh[i].CommittedWork()),
			d(enh[i].RetiredMarkers), d(enh[i].RetiredSelects))
	}
	t.Note = fmt.Sprintf("fetch reduction amean %.1f%% (paper 18%%); executed increase amean %.1f%% (paper 9%%)",
		amean(fr), amean(er))
	return t, nil
}

// sweepTable runs base/DHP/enhanced-DMP over a parameter sweep and
// reports average IPC per point (Figures 13a and 13b). Every
// (point, machine) suite launches at once; the result cache folds sweep
// points that coincide with configurations other experiments already ran
// (the 512-entry window point of Figure 13a is exactly the Table-2
// machines).
func sweepTable(id, title, param string, values []int, apply func(*core.Config, int), o Options) (*Table, error) {
	o = o.norm()
	t := &Table{ID: id, Title: title,
		Header: []string{param, "base-IPC", "DHP-IPC", "enhanced-DMP-IPC", "DMP-gain%"}}
	makers := []func() core.Config{core.DefaultConfig, core.DHPConfig, core.EnhancedDMPConfig}
	cfgs := make([]core.Config, 0, len(values)*len(makers))
	for _, v := range values {
		for _, mk := range makers {
			c := mk()
			apply(&c, v)
			cfgs = append(cfgs, c)
		}
	}
	all, err := runSuites(cfgs, o)
	if err != nil {
		return nil, err
	}
	for vi, v := range values {
		base, dhp, dmp := all[vi*3], all[vi*3+1], all[vi*3+2]
		var bi, hi, di, gain []float64
		for i := range base {
			bi = append(bi, base[i].IPC())
			hi = append(hi, dhp[i].IPC())
			di = append(di, dmp[i].IPC())
			gain = append(gain, pctImp(dmp[i], base[i]))
		}
		t.AddRow(fmt.Sprintf("%d", v), f3(amean(bi)), f3(amean(hi)), f3(amean(di)), f1(amean(gain)))
	}
	return t, nil
}

// Figure13a sweeps the instruction window (128/256/512-entry ROB).
func Figure13a(o Options) (*Table, error) {
	t, err := sweepTable("fig13a", "Effect of instruction window size (paper Figure 13a)", "window",
		[]int{128, 256, 512}, func(c *core.Config, v int) { c.ROBSize = v }, o)
	if err == nil {
		t.Note = "paper: DMP gain grows with window size (6.9% / 9.4% / 10.8%)"
	}
	return t, err
}

// Figure13b sweeps the pipeline depth (10/20/30 stages, 256-entry ROB).
func Figure13b(o Options) (*Table, error) {
	t, err := sweepTable("fig13b", "Effect of pipeline depth (paper Figure 13b)", "depth",
		[]int{10, 20, 30}, func(c *core.Config, v int) { c.PipelineDepth = v; c.ROBSize = 256 }, o)
	if err == nil {
		t.Note = "paper: DMP gain grows with depth (3.3% / 6.8% / 9.4%)"
	}
	return t, err
}

// DualPath reproduces the Section 5.3 comparison: selective dual-path
// vs. DHP vs. enhanced DMP, as % IPC improvement over the baseline.
func DualPath(o Options) (*Table, error) {
	dual := core.DefaultConfig()
	dual.Mode = core.ModeDualPath
	t, err := improvementTable("dualpath", "Selective dual-path vs DHP vs enhanced DMP (paper Section 5.3)",
		[]string{"dual-path%", "DHP%", "enhanced-DMP%"},
		[]core.Config{dual, core.DHPConfig(), core.EnhancedDMPConfig()}, o)
	if err == nil {
		t.Note = "paper: dual-path 2.6%, DHP 2.8%, DMP 10.8%"
	}
	return t, err
}

// LoopDiverge evaluates the diverge loop branch extension (Section 2.7.4
// future work, implemented here): enhanced DMP with and without
// predication of marked backward branches. The loop-marked run simulates
// a separately annotated program (profile.Options.IncludeLoops), cached
// under its own variant key so it can never be confused with the default
// annotation. Benchmarks run concurrently; the baseline and enhanced legs
// resolve from the result cache when other experiments already ran them.
func LoopDiverge(o Options) (*Table, error) {
	o = o.norm()
	t := &Table{ID: "loopdiverge", Title: "Diverge loop branches (paper Section 2.7.4, future work)",
		Header: []string{"bench", "base-IPC", "enhanced%", "enhanced+loops%", "loop-episodes"}}
	type legs struct {
		base, enh, loops *core.Stats
	}
	results := make([]legs, len(o.Benchmarks))
	errs := make([]error, len(o.Benchmarks))
	var wg sync.WaitGroup
	for i, bench := range o.Benchmarks {
		wg.Add(1)
		go func(i int, bench string) {
			defer wg.Done()
			r := &results[i]
			if r.base, errs[i] = runOneCached(bench, core.DefaultConfig(), o, false); errs[i] != nil {
				return
			}
			if r.enh, errs[i] = runOneCached(bench, core.EnhancedDMPConfig(), o, false); errs[i] != nil {
				return
			}
			cfg := core.EnhancedDMPConfig()
			cfg.EnableLoopDiverge = true
			if r.loops, errs[i] = runOneCached(bench, cfg, o, true); errs[i] != nil {
				errs[i] = fmt.Errorf("%s loops: %w", bench, errs[i])
			}
		}(i, bench)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for i, bench := range o.Benchmarks {
		r := results[i]
		t.AddRow(bench, f3(r.base.IPC()), f1(pctImp(r.enh, r.base)), f1(pctImp(r.loops, r.base)), d(r.loops.Episodes-r.enh.Episodes))
	}
	t.Note = "backward (loop) diverge branches predicated like wish loops; episode delta counts the extra loop episodes"
	return t, nil
}

// All lists the experiment generators by id.
var All = map[string]func(Options) (*Table, error){
	"table2":      Table2,
	"table3":      Table3,
	"fig1":        Figure1,
	"fig6":        Figure6,
	"fig7":        Figure7,
	"fig8":        Figure8,
	"fig9":        Figure9,
	"fig10":       Figure10,
	"fig11":       Figure11,
	"fig12":       Figure12,
	"fig13a":      Figure13a,
	"fig13b":      Figure13b,
	"dualpath":    DualPath,
	"loopdiverge": LoopDiverge,
	"mergepred":   MergePred,
	"sampling":    Sampling,
}

// IDs returns the experiment ids in presentation order.
func IDs() []string {
	ids := []string{"table2", "table3", "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b", "dualpath", "loopdiverge", "mergepred", "sampling"}
	if len(ids) != len(All) {
		keys := make([]string, 0, len(All))
		//dmp:allow nondeterminism -- keys are sorted on the next line
		for k := range All {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		panic(fmt.Sprintf("exp: id list drift: %v", keys))
	}
	return ids
}
