package exp

import (
	"testing"

	"dmp/internal/telemetry"
)

// TestTelemetryDoesNotPerturb pins the telemetry contract: re-running
// the same experiments with a fully attached telemetry set — spans,
// feed, metrics, artifact files — yields byte-identical tables.
// Table3 exercises the cached exact-simulation path (simcache events,
// per-simulation spans); Sampling exercises the sampled pipeline
// (stage spans, snapshot and interval-job emission from the consumer
// loop). ResetResults between runs forces the attached pass to
// actually re-simulate rather than replay the cache.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	o := smallOpts()
	t3, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Sampling(o)
	if err != nil {
		t.Fatal(err)
	}

	ResetResults()
	set, err := telemetry.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	telemetry.Enable(set)
	defer telemetry.Enable(nil)
	root := set.Tracer().Begin("test", "exp")
	o2 := o
	o2.Span = root
	t3b, err := Table3(o2)
	if err != nil {
		t.Fatal(err)
	}
	smb, err := Sampling(o2)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if _, err := set.Close(); err != nil {
		t.Fatal(err)
	}

	if t3.String() != t3b.String() {
		t.Errorf("Table3 changed under telemetry:\nwithout:\n%s\nwith:\n%s", t3, t3b)
	}
	if sm.String() != smb.String() {
		t.Errorf("Sampling table changed under telemetry:\nwithout:\n%s\nwith:\n%s", sm, smb)
	}
}
