package exp

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"dmp/internal/core"
	"dmp/internal/sample"
)

// SampleBench is one benchmark's sampled-vs-exact validation record.
// The accuracy fields (IPC, error, CI) are deterministic; the throughput
// fields describe this process's wall clock and are excluded from the
// experiment table (they go to BENCH_sample.json).
type SampleBench struct {
	Bench      string  `json:"bench"`
	TotalInsts uint64  `json:"total_insts"`
	ExactIPC   float64 `json:"exact_ipc"`
	SampledIPC float64 `json:"sampled_ipc"`
	// ErrPct is the signed sampled-vs-exact IPC error in percent.
	ErrPct float64 `json:"err_pct"`
	// IPCMean / CI95 are the per-interval mean and its 95% half-width;
	// Covered reports whether mean ± CI95 contains the exact IPC.
	IPCMean float64 `json:"ipc_mean"`
	CI95    float64 `json:"ci95"`
	Covered bool    `json:"covered"`
	K       int     `json:"k"`
	// Host-throughput comparison (wall-clock dependent).
	ExactWall         float64 `json:"exact_wall_s"`
	SampleWall        float64 `json:"sample_wall_s"`
	ExactInstsPerSec  float64 `json:"exact_insts_per_s"`
	SampleInstsPerSec float64 `json:"sample_insts_per_s"`
	// Speedup is simulated instructions per host second, sampled over
	// exact (same program, so also the wall-clock ratio).
	Speedup float64 `json:"speedup"`
}

// SampleReport aggregates the per-benchmark validation for
// BENCH_sample.json and the CI accuracy gate.
type SampleReport struct {
	Scale          int           `json:"scale"`
	Period         uint64        `json:"period"`
	Interval       uint64        `json:"interval"`
	Warmup         uint64        `json:"warmup"`
	Ramp           uint64        `json:"ramp"`
	Benches        []SampleBench `json:"benches"`
	AmeanAbsErrPct float64       `json:"amean_abs_err_pct"`
	AmeanSpeedup   float64       `json:"amean_speedup"`
	CoveredCount   int           `json:"covered_count"`
}

// Sampling validates sampled simulation against exact golden runs: the
// enhanced DMP machine simulated exactly and in SampleMode on every
// benchmark, with per-benchmark IPC error, 95% confidence interval, and
// CI coverage. Throughput (the point of sampling) is wall-clock
// dependent, so it stays out of the deterministic table; dmpexp
// -sample-json records it.
func Sampling(o Options) (*Table, error) {
	t, _, err := SamplingReport(o)
	return t, err
}

// SamplingReport is Sampling plus the machine-readable report behind
// BENCH_sample.json and the -sample-gate accuracy check.
func SamplingReport(o Options) (*Table, *SampleReport, error) {
	o = o.norm()
	exCfg := core.EnhancedDMPConfig()
	exact, err := runSuite(exCfg, o)
	if err != nil {
		return nil, nil, err
	}

	sCfg := exCfg
	sCfg.SampleMode = true
	sCfg.CheckRetirement = o.Check
	sCfg.SamplePeriod = o.SamplePeriod
	sCfg.SampleInterval = o.SampleInterval
	sCfg.SampleWarmup = o.SampleWarmup
	results := make([]*sample.Result, len(o.Benchmarks))
	errs := make([]error, len(o.Benchmarks))
	slots := workerSlots(o.Parallel)
	var wg sync.WaitGroup
	for i, bench := range o.Benchmarks {
		wg.Add(1)
		go func(i int, bench string) {
			defer wg.Done()
			p, err := annotatedCached(bench, o.Scale, false)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", bench, err)
				return
			}
			// Hold one worker slot for the run; interval jobs try-acquire
			// further slots from the same pool and fall back inline.
			slots <- struct{}{}
			defer func() { <-slots }()
			results[i], errs[i] = sample.Run(p, sCfg, sample.Options{Slots: slots})
			if errs[i] != nil {
				errs[i] = fmt.Errorf("%s: %w", bench, errs[i])
			}
		}(i, bench)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	period, interval, warmup := sCfg.SampleParams()
	rep := &SampleReport{Scale: o.Scale, Period: period, Interval: interval, Warmup: warmup, Ramp: sample.RampRetired}
	t := &Table{ID: "sampling", Title: "Sampled simulation: fast-forward + warmed intervals vs exact golden runs",
		Header: []string{"bench", "insts", "exact-IPC", "sampled-IPC", "err%", "±ci95", "cover", "k"}}
	var absErrs, speedups []float64
	var detailedFrac float64
	for i, bench := range o.Benchmarks {
		ex, r := exact[i], results[i]
		b := SampleBench{
			Bench:      bench,
			TotalInsts: r.TotalInsts,
			ExactIPC:   ex.IPC(),
			SampledIPC: r.IPC,
			IPCMean:    r.IPCMean,
			CI95:       r.CI95,
			Covered:    r.Covers(ex.IPC()),
			K:          r.K,
			ExactWall:  ex.WallSeconds,
			SampleWall: r.WallSeconds,
		}
		b.ErrPct = 100 * (r.IPC - b.ExactIPC) / b.ExactIPC
		if ex.WallSeconds > 0 {
			b.ExactInstsPerSec = float64(ex.RetiredInsts) / ex.WallSeconds
		}
		if r.WallSeconds > 0 {
			b.SampleInstsPerSec = float64(r.TotalInsts) / r.WallSeconds
		}
		if b.ExactInstsPerSec > 0 {
			b.Speedup = b.SampleInstsPerSec / b.ExactInstsPerSec
			speedups = append(speedups, b.Speedup)
		}
		absErrs = append(absErrs, math.Abs(b.ErrPct))
		detailedFrac += float64(r.DetailedRetired) / float64(r.TotalInsts)
		if b.Covered {
			rep.CoveredCount++
		}
		rep.Benches = append(rep.Benches, b)
		cover := "no"
		if b.Covered {
			cover = "yes"
		}
		t.AddRow(bench, d(r.TotalInsts), f3(b.ExactIPC), f3(b.SampledIPC),
			f2(b.ErrPct), f3(b.CI95), cover, strconv.Itoa(b.K))
	}
	rep.AmeanAbsErrPct = amean(absErrs)
	rep.AmeanSpeedup = amean(speedups)
	t.AddRow("amean", "", "", "", f2(rep.AmeanAbsErrPct), "", "", "")
	t.Note = fmt.Sprintf(
		"period %d, interval %d, warmup %d, ramp %d (detailed %.1f%% of instructions); "+
			"err%% = sampled vs exact IPC, amean of |err%%|; cover = exact IPC within mean ± ci95; "+
			"speedups are wall-clock dependent and reported via dmpexp -sample-json",
		period, interval, warmup, sample.RampRetired, 100*detailedFrac/float64(len(o.Benchmarks)))
	return t, rep, nil
}
