package exp

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"dmp/internal/core"
	"dmp/internal/sample"
)

// samplePoint is one benchmark's sampling operating point. The suite
// default (period 6000, interval 500, warmup 0, full warming) is a
// compromise; benchmarks whose phase structure aliases with it get their
// own point (see benchPoints).
type samplePoint struct {
	period, interval, warmup uint64
	warmMode                 string
}

func (pt samplePoint) orDefaults() samplePoint {
	if pt.period == 0 {
		pt.period = core.DefaultSamplePeriod
	}
	if pt.interval == 0 {
		pt.interval = core.DefaultSampleInterval
	}
	if pt.warmMode == "" {
		pt.warmMode = "full"
	}
	return pt
}

// benchPoints holds per-benchmark sampling operating points, applied only
// when the caller sets none of the Sample* options (an explicit option
// runs everywhere, so CI gates stay pinned to their spelled-out points).
// Chosen by sweeping period x interval x warm mode against exact golden
// runs at scale 3 and keeping, per benchmark, the fastest point whose
// signed error stayed within the suite budget with CI coverage intact:
//
//   - bzip2: the compress/expand phase alternation aliases with the
//     default 6000-instruction stratum — every window lands in the cheap
//     phase and the estimate reads 11% low. Stretching the period to
//     24000 with 750-instruction windows decorrelates window placement
//     from the phase pattern (+3.7% with coverage); shorter stretches
//     (9000, 18000) still alias on one side or the other.
//   - gzip / parser: the same aliasing, milder; 15000/750 is the longest
//     period that keeps them inside the budget (~-7% each). Both resist
//     caches-only warming — their mispredicting branches train slowly,
//     so discarding predictor warming biases the windows cold.
//   - crafty / vpr / mesa: phase-stable under long periods; 24000-30000
//     with 750-instruction windows holds the error under 3%.
//   - gcc / vortex / fma3d: mid-length programs; 12000-15000 periods
//     keep k >= 4 windows for a usable CI.
//   - eon / gap / twolf / ammp / mcf / perlbmk: their predictors train
//     fast but their caches do not, so caches-only continuous warming
//     plus a short per-interval predictor warmup (-w512/-w1024) buys the
//     cheaper warming rate without biasing the windows.
//
// Accuracy is the binding constraint (the gate is amean |err| and 15/15
// coverage, not any single row); longer periods and caches-only warming
// are the two throughput levers on a single-CPU host, where the streamed
// pipeline cannot overlap intervals.
var benchPoints = map[string]samplePoint{
	"ammp":    {period: 18000, interval: 500, warmup: 1024, warmMode: "caches"},
	"bzip2":   {period: 24000, interval: 750},
	"crafty":  {period: 24000, interval: 750},
	"eon":     {period: 30000, interval: 500, warmup: 512, warmMode: "caches"},
	"fma3d":   {period: 12000, interval: 750},
	"gap":     {period: 24000, interval: 750, warmup: 512, warmMode: "caches"},
	"gcc":     {period: 15000, interval: 500},
	"gzip":    {period: 15000, interval: 750},
	"mcf":     {period: 18000, interval: 750, warmup: 1024, warmMode: "caches"},
	"mesa":    {period: 30000, interval: 750},
	"parser":  {period: 15000, interval: 750},
	"perlbmk": {period: 12000, interval: 500, warmup: 1024, warmMode: "caches"},
	"twolf":   {period: 24000, interval: 500, warmup: 512, warmMode: "caches"},
	"vortex":  {period: 15000, interval: 750},
	"vpr":     {period: 24000, interval: 750},
}

// tunedScale is the -scale the benchPoints periods were swept at. Above
// it the period stretches proportionally with program length so the
// window count k stays roughly constant (intervals and warmups describe
// window physics — warm-state representativeness — not program length,
// and carry over). Below it programs are too short for the long tuned
// periods to leave a usable k, so the suite default applies.
const tunedScale = 3

// pointFor resolves a benchmark's operating point: options override
// everything, then benchPoints (period rescaled to o.Scale), then the
// core defaults.
func pointFor(o Options, bench string) samplePoint {
	if o.SamplePeriod != 0 || o.SampleInterval != 0 || o.SampleWarmup != 0 || o.SampleWarmMode != "" {
		return samplePoint{o.SamplePeriod, o.SampleInterval, o.SampleWarmup, o.SampleWarmMode}.orDefaults()
	}
	pt, ok := benchPoints[bench]
	if !ok || o.Scale < tunedScale {
		return samplePoint{}.orDefaults()
	}
	pt = pt.orDefaults()
	if o.Scale > tunedScale {
		pt.period = pt.period * uint64(o.Scale) / tunedScale
	}
	return pt
}

// SampleBench is one benchmark's sampled-vs-exact validation record.
// The accuracy fields (IPC, error, CI) are deterministic; the throughput
// fields describe this process's wall clock and are excluded from the
// experiment table (they go to BENCH_sample.json).
type SampleBench struct {
	Bench      string `json:"bench"`
	TotalInsts uint64 `json:"total_insts"`
	// Period / Interval / Warmup / WarmMode are the operating point this
	// benchmark ran at (per-benchmark overrides make these vary).
	Period     uint64  `json:"period"`
	Interval   uint64  `json:"interval"`
	Warmup     uint64  `json:"warmup"`
	WarmMode   string  `json:"warm_mode"`
	ExactIPC   float64 `json:"exact_ipc"`
	SampledIPC float64 `json:"sampled_ipc"`
	// ErrPct is the signed sampled-vs-exact IPC error in percent.
	ErrPct float64 `json:"err_pct"`
	// IPCMean / CI95 are the per-interval mean and its 95% half-width;
	// Covered reports whether mean ± CI95 contains the exact IPC.
	IPCMean float64 `json:"ipc_mean"`
	CI95    float64 `json:"ci95"`
	Covered bool    `json:"covered"`
	K       int     `json:"k"`
	// Host-throughput comparison (wall-clock dependent).
	ExactWall         float64 `json:"exact_wall_s"`
	SampleWall        float64 `json:"sample_wall_s"`
	ExactInstsPerSec  float64 `json:"exact_insts_per_s"`
	SampleInstsPerSec float64 `json:"sample_insts_per_s"`
	// Speedup is simulated instructions per host second, sampled over
	// exact (same program, so also the wall-clock ratio).
	Speedup float64 `json:"speedup"`
	// Timing is the sampled run's host time breakdown by stage
	// (wall-clock dependent), so the report can be cross-checked against
	// the telemetry span data and stage histograms.
	Timing sample.Timing `json:"timing"`
}

// SampleReport aggregates the per-benchmark validation for
// BENCH_sample.json and the CI accuracy gate. Period/Interval/Warmup
// describe the suite default point; benchmarks with their own operating
// point record it in their SampleBench entry.
type SampleReport struct {
	Scale          int           `json:"scale"`
	Period         uint64        `json:"period"`
	Interval       uint64        `json:"interval"`
	Warmup         uint64        `json:"warmup"`
	Ramp           uint64        `json:"ramp"`
	Benches        []SampleBench `json:"benches"`
	AmeanAbsErrPct float64       `json:"amean_abs_err_pct"`
	AmeanSpeedup   float64       `json:"amean_speedup"`
	CoveredCount   int           `json:"covered_count"`
}

// Sampling validates sampled simulation against exact golden runs: the
// enhanced DMP machine simulated exactly and in SampleMode on every
// benchmark, with per-benchmark IPC error, 95% confidence interval, and
// CI coverage. Throughput (the point of sampling) is wall-clock
// dependent, so it stays out of the deterministic table; dmpexp
// -sample-json records it.
func Sampling(o Options) (*Table, error) {
	t, _, err := SamplingReport(o)
	return t, err
}

// SamplingReport is Sampling plus the machine-readable report behind
// BENCH_sample.json and the -sample-gate accuracy check.
func SamplingReport(o Options) (*Table, *SampleReport, error) {
	o = o.norm()
	exCfg := core.EnhancedDMPConfig()
	exact, err := runSuite(exCfg, o)
	if err != nil {
		return nil, nil, err
	}

	results := make([]*sample.Result, len(o.Benchmarks))
	points := make([]samplePoint, len(o.Benchmarks))
	errs := make([]error, len(o.Benchmarks))
	slots := workerSlots(o.Parallel)
	var wg sync.WaitGroup
	for i, bench := range o.Benchmarks {
		pt := pointFor(o, bench)
		points[i] = pt
		sCfg := exCfg
		sCfg.SampleMode = true
		sCfg.CheckRetirement = o.Check
		sCfg.SamplePeriod = pt.period
		sCfg.SampleInterval = pt.interval
		sCfg.SampleWarmup = pt.warmup
		sCfg.WarmMode = pt.warmMode
		wg.Add(1)
		go func(i int, bench string, sCfg core.Config) {
			defer wg.Done()
			results[i], errs[i] = sampleCached(bench, sCfg, o, slots)
			if errs[i] != nil {
				errs[i] = fmt.Errorf("%s: %w", bench, errs[i])
			}
		}(i, bench, sCfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	def := samplePoint{}.orDefaults()
	rep := &SampleReport{Scale: o.Scale, Period: def.period, Interval: def.interval, Warmup: def.warmup, Ramp: sample.RampRetired}
	t := &Table{ID: "sampling", Title: "Sampled simulation: fast-forward + warmed intervals vs exact golden runs",
		Header: []string{"bench", "insts", "point", "exact-IPC", "sampled-IPC", "err%", "±ci95", "cover", "k"}}
	var absErrs, speedups []float64
	var detailedFrac float64
	for i, bench := range o.Benchmarks {
		ex, r, pt := exact[i], results[i], points[i]
		b := SampleBench{
			Bench:      bench,
			TotalInsts: r.TotalInsts,
			Period:     pt.period,
			Interval:   pt.interval,
			Warmup:     pt.warmup,
			WarmMode:   pt.warmMode,
			ExactIPC:   ex.IPC(),
			SampledIPC: r.IPC,
			IPCMean:    r.IPCMean,
			CI95:       r.CI95,
			Covered:    r.Covers(ex.IPC()),
			K:          r.K,
			ExactWall:  ex.WallSeconds,
			SampleWall: r.WallSeconds,
			Timing:     r.Timing,
		}
		b.ErrPct = 100 * (r.IPC - b.ExactIPC) / b.ExactIPC
		if ex.WallSeconds > 0 {
			b.ExactInstsPerSec = float64(ex.RetiredInsts) / ex.WallSeconds
		}
		if r.WallSeconds > 0 {
			b.SampleInstsPerSec = float64(r.TotalInsts) / r.WallSeconds
		}
		if b.ExactInstsPerSec > 0 {
			b.Speedup = b.SampleInstsPerSec / b.ExactInstsPerSec
			speedups = append(speedups, b.Speedup)
		}
		absErrs = append(absErrs, math.Abs(b.ErrPct))
		detailedFrac += float64(r.DetailedRetired) / float64(r.TotalInsts)
		if b.Covered {
			rep.CoveredCount++
		}
		rep.Benches = append(rep.Benches, b)
		cover := "no"
		if b.Covered {
			cover = "yes"
		}
		point := fmt.Sprintf("%d/%d", pt.period, pt.interval)
		if pt.warmup != 0 {
			point += fmt.Sprintf("+w%d", pt.warmup)
		}
		if pt.warmMode != "full" {
			point += "/" + pt.warmMode
		}
		t.AddRow(bench, d(r.TotalInsts), point, f3(b.ExactIPC), f3(b.SampledIPC),
			f2(b.ErrPct), f3(b.CI95), cover, strconv.Itoa(b.K))
	}
	rep.AmeanAbsErrPct = amean(absErrs)
	rep.AmeanSpeedup = amean(speedups)
	t.AddRow("amean", "", "", "", "", f2(rep.AmeanAbsErrPct), "", "", "")
	t.Note = fmt.Sprintf(
		"point = period/interval[+w warmup][/warm-mode], per-benchmark operating points (default %d/%d, full warming); "+
			"ramp %d (detailed %.1f%% of instructions); "+
			"err%% = sampled vs exact IPC, amean of |err%%|; cover = exact IPC within mean ± ci95; "+
			"speedups are wall-clock dependent and reported via dmpexp -sample-json",
		def.period, def.interval, sample.RampRetired, 100*detailedFrac/float64(len(o.Benchmarks)))
	return t, rep, nil
}
