package exp

import (
	"strconv"
	"strings"
	"testing"

	"dmp/internal/core"
)

// smallOpts keeps experiment tests fast: two contrasting benchmarks at
// scale 1 (one diverge-heavy, one predictable).
func smallOpts() Options {
	return Options{Scale: 1, Benchmarks: []string{"mcf", "perlbmk"}, Check: true}
}

func TestAnnotatedTransfersMarks(t *testing.T) {
	p, err := Annotated("mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DivergePCs()) == 0 {
		t.Fatal("no diverge marks transferred to the reference program")
	}
}

func TestTable2Static(t *testing.T) {
	tb, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	for _, want := range []string{"perceptron", "JRS", "300-cycle", "512-entry ROB"} {
		if !strings.Contains(s, want) {
			t.Errorf("table2 missing %q:\n%s", want, s)
		}
	}
}

func TestTable3Runs(t *testing.T) {
	tb, err := Table3(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	// mcf must have a lower IPC than perlbmk (memory bound + mispredicts).
	mcfIPC := atof(t, tb.Rows[0][1])
	perlIPC := atof(t, tb.Rows[1][1])
	if mcfIPC >= perlIPC {
		t.Errorf("mcf IPC %.2f >= perlbmk IPC %.2f", mcfIPC, perlIPC)
	}
}

func TestFigure1Shape(t *testing.T) {
	tb, err := Figure1(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// mcf (mispredict-heavy) fetches far more wrong-path instructions
	// than perlbmk.
	mcfTotal := atof(t, tb.Rows[0][3])
	perlTotal := atof(t, tb.Rows[1][3])
	if mcfTotal <= perlTotal {
		t.Errorf("wrong-path%%: mcf %.1f <= perlbmk %.1f", mcfTotal, perlTotal)
	}
	if mcfTotal < 10 {
		t.Errorf("mcf wrong-path%% = %.1f, suspiciously low", mcfTotal)
	}
}

func TestFigure6Shape(t *testing.T) {
	tb, err := Figure6(Options{Scale: 1, Benchmarks: []string{"mcf", "gcc"}})
	if err != nil {
		t.Fatal(err)
	}
	// mcf: simple-hammock dominated; gcc: "other" dominated.
	mcfSimple, mcfOther := atof(t, tb.Rows[0][1]), atof(t, tb.Rows[0][3])
	if mcfSimple <= mcfOther {
		t.Errorf("mcf: simple %.2f <= other %.2f", mcfSimple, mcfOther)
	}
	gccDiverge := atof(t, tb.Rows[1][1]) + atof(t, tb.Rows[1][2])
	gccOther := atof(t, tb.Rows[1][3])
	if gccOther <= gccDiverge {
		t.Errorf("gcc: other %.2f <= diverge %.2f", gccOther, gccDiverge)
	}
}

func TestFigure7Shape(t *testing.T) {
	tb, err := Figure7(Options{Scale: 1, Benchmarks: []string{"mcf", "twolf"}})
	if err != nil {
		t.Fatal(err)
	}
	mean := tb.Rows[len(tb.Rows)-1]
	divergePerf := atof(t, mean[4])
	perfectCBP := atof(t, mean[5])
	if divergePerf <= 0 {
		t.Errorf("diverge-perf-conf mean improvement %.1f <= 0", divergePerf)
	}
	if perfectCBP <= divergePerf {
		t.Errorf("perfect-cbp %.1f <= diverge-perf-conf %.1f", perfectCBP, divergePerf)
	}
}

func TestFigure8And10Run(t *testing.T) {
	o := Options{Scale: 1, Benchmarks: []string{"twolf"}}
	t8, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 1 {
		t.Fatal("fig8 rows")
	}
	t10, err := Figure10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 1 {
		t.Fatal("fig10 rows")
	}
}

func TestFigure11FlushReduction(t *testing.T) {
	tb, err := Figure11(Options{Scale: 1, Benchmarks: []string{"mcf", "twolf"}})
	if err != nil {
		t.Fatal(err)
	}
	mean := atof(t, tb.Rows[len(tb.Rows)-1][3])
	if mean <= 0 {
		t.Errorf("mean flush reduction %.1f <= 0", mean)
	}
}

func TestFigure12Overheads(t *testing.T) {
	tb, err := Figure12(Options{Scale: 1, Benchmarks: []string{"twolf"}})
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	baseFetched, dmpFetched := atof(t, row[1]), atof(t, row[2])
	baseExec, dmpExec := atof(t, row[3]), atof(t, row[4])
	if dmpFetched >= baseFetched {
		t.Errorf("DMP fetched %v >= base %v (should fall)", dmpFetched, baseFetched)
	}
	if dmpExec <= baseExec {
		t.Errorf("DMP executed %v <= base %v (should rise)", dmpExec, baseExec)
	}
}

func TestSweepTables(t *testing.T) {
	o := Options{Scale: 1, Benchmarks: []string{"twolf"}}
	a, err := Figure13a(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Error("fig13a rows != 3")
	}
	b, err := Figure13b(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 3 {
		t.Error("fig13b rows != 3")
	}
	// Baseline IPC must fall as the pipeline deepens.
	if atof(t, b.Rows[0][1]) <= atof(t, b.Rows[2][1]) {
		t.Errorf("baseline IPC did not fall with depth: %s vs %s", b.Rows[0][1], b.Rows[2][1])
	}
}

func TestDualPathTable(t *testing.T) {
	tb, err := DualPath(Options{Scale: 1, Benchmarks: []string{"twolf"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Error("dualpath rows")
	}
}

func TestIDsCoverAll(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All) {
		t.Fatalf("IDs %d != All %d", len(ids), len(All))
	}
	for _, id := range ids {
		if All[id] == nil {
			t.Errorf("missing generator %s", id)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Note = "n"
	s := tb.String()
	for _, want := range []string{"== x: T ==", "a  bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}

func TestRunSuiteErrorsOnBadBench(t *testing.T) {
	_, err := runSuite(core.DefaultConfig(), Options{Scale: 1, Benchmarks: []string{"nope"}})
	if err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestLoopDivergeTable(t *testing.T) {
	tb, err := LoopDiverge(Options{Scale: 1, Benchmarks: []string{"gzip"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatal("loopdiverge rows")
	}
	// gzip's match-extension loop is a diverge loop branch: the loops
	// variant must create additional episodes.
	if atof(t, tb.Rows[0][4]) <= 0 {
		t.Errorf("no extra loop episodes: %v", tb.Rows[0])
	}
}
