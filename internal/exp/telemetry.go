package exp

import (
	"fmt"

	"dmp/internal/core"
	"dmp/internal/telemetry"
)

// Host-side telemetry for the result cache and the global worker pool.
// The metrics are always-on atomics (an add is cheaper than a
// branch-and-load, and runOneCached is called per simulation request,
// not per simulated cycle); spans and feed events, which allocate and
// write, are emitted only when a telemetry.Set is active. Nothing here
// reads or writes simulator state, which is what keeps the golden
// tables byte-identical with telemetry attached (the no-perturbation
// contract, pinned by TestTelemetryDoesNotPerturb).
var (
	mSimHits = telemetry.NewCounter("dmp_exp_simcache_hits_total",
		"result-cache requests served from a completed or in-flight simulation")
	mSimMisses = telemetry.NewCounter("dmp_exp_simcache_misses_total",
		"result-cache requests that ran a new simulation")
	mSingleflightWait = telemetry.NewHistogram("dmp_exp_singleflight_wait_seconds",
		"time a cache hit spent blocked on another request's in-flight simulation",
		telemetry.SecondsBuckets())
	mSlotWait = telemetry.NewHistogram("dmp_exp_slot_wait_seconds",
		"time a simulation spent queued for a global worker-pool slot",
		telemetry.SecondsBuckets())
	mSimSeconds = telemetry.NewHistogram("dmp_exp_simulation_seconds",
		"wall time of each uncached simulation, slot acquisition included",
		telemetry.SecondsBuckets())
	mPoolQueued = telemetry.NewGauge("dmp_exp_pool_queued",
		"simulations currently waiting for a worker-pool slot")
	mPoolBusy = telemetry.NewGauge("dmp_exp_pool_busy",
		"worker-pool slots currently running a simulation")
)

// simLabel names one simulation for spans and feed events: benchmark,
// machine mode, and the cache-key variants that change what actually
// runs. Only called with telemetry active (it allocates).
func simLabel(bench string, cfg core.Config, loops bool) string {
	l := fmt.Sprintf("%s/%v", bench, cfg.Mode)
	if cfg.CFMSource != "" && cfg.CFMSource != "annotated" {
		l += "/" + cfg.CFMSource
	}
	if loops {
		l += "/loops"
	}
	if cfg.SampleMode {
		l += "/sampled"
	}
	return l
}
