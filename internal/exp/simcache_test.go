package exp

import (
	"strings"
	"sync"
	"testing"

	"dmp/internal/core"
)

func simOpts() Options {
	return Options{Scale: 1, Benchmarks: []string{"mcf", "perlbmk"}, Check: true}.norm()
}

// modeConfigs covers every machine organization the experiments compare.
func modeConfigs() map[string]core.Config {
	perfect := core.DefaultConfig()
	perfect.Mode = core.ModePerfect
	dual := core.DefaultConfig()
	dual.Mode = core.ModeDualPath
	return map[string]core.Config{
		"baseline":     core.DefaultConfig(),
		"perfect-cbp":  perfect,
		"dhp":          core.DHPConfig(),
		"basic-dmp":    core.DMPConfig(),
		"enhanced-dmp": core.EnhancedDMPConfig(),
		"dualpath":     dual,
	}
}

// statsEqualModuloWall compares two Stats bit for bit, ignoring only the
// host wall-clock fields that legitimately differ between runs.
func statsEqualModuloWall(a, b *core.Stats) bool {
	x, y := *a, *b
	x.WallSeconds, y.WallSeconds = 0, 0
	return x == y
}

// TestCachedStatsBitIdenticalAllModes pins the cache's core promise: the
// Stats a cache hit returns are bit-identical (modulo wall-clock) to a
// fresh uncached simulation, for every mode the paper compares and for
// the loop-annotated variant.
func TestCachedStatsBitIdenticalAllModes(t *testing.T) {
	Reset()
	o := simOpts()
	for name, cfg := range modeConfigs() {
		for _, bench := range o.Benchmarks {
			fresh, err := simulate(bench, cfg, o, false)
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", name, bench, err)
			}
			cached, err := runOneCached(bench, cfg, o, false)
			if err != nil {
				t.Fatalf("%s/%s cached: %v", name, bench, err)
			}
			if !statsEqualModuloWall(fresh, cached) {
				t.Errorf("%s/%s: cached stats differ from fresh\ncached: %v\nfresh:  %v", name, bench, cached, fresh)
			}
			again, err := runOneCached(bench, cfg, o, false)
			if err != nil {
				t.Fatalf("%s/%s hit: %v", name, bench, err)
			}
			if again != cached {
				t.Errorf("%s/%s: second lookup returned a different pointer — not a cache hit", name, bench)
			}
		}
	}
	loops := core.EnhancedDMPConfig()
	loops.EnableLoopDiverge = true
	fresh, err := simulate("gzip", loops, o, true)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := runOneCached("gzip", loops, o, true)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqualModuloWall(fresh, cached) {
		t.Errorf("loop variant: cached stats differ from fresh")
	}
}

// TestSimCacheDedupAcrossExperiments pins exactly-once simulation: two
// experiments over the same configurations pay for one set of
// simulations, and the second resolves entirely from the cache.
func TestSimCacheDedupAcrossExperiments(t *testing.T) {
	Reset()
	o := simOpts()
	if _, err := Figure11(o); err != nil {
		t.Fatal(err)
	}
	hits, misses := SimCounts()
	// Figure 11 runs baseline and enhanced DMP over two benchmarks.
	if misses != 4 || hits != 0 {
		t.Fatalf("after Figure11: hits=%d misses=%d, want 0/4", hits, misses)
	}
	if _, err := Figure12(o); err != nil {
		t.Fatal(err)
	}
	hits, misses = SimCounts()
	// Figure 12 uses the same two configurations: all hits, no new runs.
	if misses != 4 || hits != 4 {
		t.Fatalf("after Figure12: hits=%d misses=%d, want 4/4", hits, misses)
	}
}

// TestSimCacheKeySeparatesVariants pins the key dimensions: checker
// on/off, scale, and the loop-annotation variant must never alias.
func TestSimCacheKeySeparatesVariants(t *testing.T) {
	Reset()
	cfg := core.DefaultConfig()
	o := simOpts()
	if _, err := runOneCached("mcf", cfg, o, false); err != nil {
		t.Fatal(err)
	}
	noCheck := o
	noCheck.Check = false
	if _, err := runOneCached("mcf", cfg, noCheck, false); err != nil {
		t.Fatal(err)
	}
	if _, misses := SimCounts(); misses != 2 {
		t.Errorf("check on/off aliased: %d misses, want 2", misses)
	}
}

// TestSimCacheConcurrentExperiments is the -race hammer: several
// experiment generators with overlapping configuration needs run at once
// against a cold cache, and every table must match a serial regeneration.
func TestSimCacheConcurrentExperiments(t *testing.T) {
	Reset()
	o := simOpts()
	gens := []string{"table3", "fig1", "fig11", "fig12", "fig8"}
	tables := make([]*Table, len(gens))
	errs := make([]error, len(gens))
	var wg sync.WaitGroup
	for i, id := range gens {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			tables[i], errs[i] = All[id](o)
		}(i, id)
	}
	wg.Wait()
	for i, id := range gens {
		if errs[i] != nil {
			t.Fatalf("%s: %v", id, errs[i])
		}
	}
	// Everything above needs only baseline, basic-DMP and enhanced-DMP:
	// three configurations, two benchmarks.
	if _, misses := SimCounts(); misses != 6 {
		t.Errorf("concurrent generators simulated %d times, want 6", misses)
	}
	Reset()
	for i, id := range gens {
		serial, err := All[id](o)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		if got, want := tables[i].String(), serial.String(); got != want {
			t.Errorf("%s: concurrent table differs from serial:\n--- concurrent\n%s--- serial\n%s", id, got, want)
		}
	}
}

// TestFrozenStatsGuard pins the read-only invariant: mutating a cached
// result is caught on the next hit instead of silently corrupting later
// experiments. Clone is the sanctioned escape hatch.
func TestFrozenStatsGuard(t *testing.T) {
	Reset()
	defer Reset() // do not leak the poisoned entry to other tests
	o := simOpts()
	cfg := core.DefaultConfig()
	st, err := runOneCached("mcf", cfg, o, false)
	if err != nil {
		t.Fatal(err)
	}
	// A Clone may be mutated freely without tripping the guard.
	cl := st.Clone()
	cl.RetiredInsts += 100
	if _, err := runOneCached("mcf", cfg, o, false); err != nil {
		t.Fatalf("hit after mutating a Clone: %v", err)
	}
	// Mutating the shared result itself must be caught.
	st.RetiredInsts++
	defer func() {
		r := recover()
		if r == nil {
			t.Error("mutated cached Stats not caught")
		} else if !strings.Contains(r.(string), "frozen") {
			t.Errorf("unexpected panic: %v", r)
		}
	}()
	runOneCached("mcf", cfg, o, false)
}
