// Package exp regenerates every table and figure of the paper's
// evaluation (Section 4) on the synthetic workload suite: the baseline
// characterisation (Table 3, Figure 1), the misprediction taxonomy
// (Figure 6), basic and enhanced diverge-merge performance (Figures
// 7-12), the window/depth sensitivity studies (Figure 13), and the
// selective dual-path comparison of Section 5.3.
//
// Absolute numbers differ from the paper — the workloads are synthetic
// stand-ins for SPEC CPU2000 — but each experiment preserves the
// qualitative shape the paper argues from; EXPERIMENTS.md records
// paper-vs-measured for every row.
package exp

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"dmp/internal/core"
	"dmp/internal/profile"
	"dmp/internal/prog"
	"dmp/internal/telemetry"
	"dmp/internal/workload"
)

// Options controls experiment scale.
type Options struct {
	// Scale multiplies workload loop counts (default 3).
	Scale int
	// Benchmarks restricts the suite (default: all fifteen).
	Benchmarks []string
	// Check enables the golden-model retirement checker (default on; it
	// costs ~20% and has caught every core bug so far).
	Check bool
	// Parallel bounds simulation worker goroutines (default NumCPU).
	// The cap is process-level, shared by every concurrently running
	// experiment: the first run fixes the pool size (see simcache.go).
	Parallel int
	// SamplePeriod / SampleInterval / SampleWarmup / SampleWarmMode
	// override the sampling parameters for the sampling experiment (zero
	// values = per-benchmark operating points, see sampling.go). They
	// affect no other experiment. Setting ANY of them disables the
	// per-benchmark points for the whole run, so an explicit operating
	// point is exactly what runs.
	SamplePeriod   uint64
	SampleInterval uint64
	SampleWarmup   uint64
	SampleWarmMode string
	// Span, when non-nil, is the telemetry parent span for this
	// experiment's simulations (each runs as an async child on its own
	// trace lane). It is host-side observability only: never part of any
	// cache key, never consulted by the simulator.
	Span *telemetry.Span
}

// DefaultOptions returns the standard experiment configuration.
func DefaultOptions() Options {
	return Options{Scale: 3, Check: true}
}

func (o Options) norm() Options {
	if o.Scale <= 0 {
		o.Scale = 3
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	return o
}

// Annotated returns the measurement (reference-input) program for a
// benchmark with diverge-branch annotations transferred from a profiling
// run on the training input — the paper's train/ref methodology. The
// result is memoized per (bench, scale) and shared by every machine
// configuration; it must be treated as read-only (see cache.go for the
// sharing invariant).
func Annotated(bench string, scale int) (*prog.Program, error) {
	return annotatedCached(bench, scale, false)
}

// AnnotatedLoops is Annotated with loop diverge branches (Section 2.7.4)
// additionally marked, as the loop-diverge experiments use. The same
// read-only sharing contract applies.
func AnnotatedLoops(bench string, scale int) (*prog.Program, error) {
	return annotatedCached(bench, scale, true)
}

// buildAnnotated is the uncached builder behind Annotated: workload
// build, training profile, annotation transfer. loops additionally marks
// backward (loop) diverge branches (Section 2.7.4).
func buildAnnotated(bench string, scale int, loops bool) (*prog.Program, error) {
	w, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	train := w.Build(workload.BuildConfig{Seed: workload.TrainSeed, Scale: scale})
	popts := profile.DefaultOptions()
	popts.IncludeLoops = loops
	if _, err := profile.Run(train, popts); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	ref := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: scale})
	// The code image is identical across seeds (only data differs), so
	// the training annotations transfer by PC.
	for pc, d := range train.Diverge {
		ref.MarkDiverge(pc, d)
	}
	return ref, nil
}

// runSuite runs every benchmark under cfg, returning shared frozen stats
// in benchmark order (Clone before mutating — see simcache.go). o must
// already be normalized (o.norm()); every exported experiment normalizes
// once at its entry point. Each benchmark goroutine only ties up a global
// worker slot while its simulation actually runs; repeats resolve from
// the result cache.
func runSuite(cfg core.Config, o Options) ([]*core.Stats, error) {
	stats := make([]*core.Stats, len(o.Benchmarks))
	errs := make([]error, len(o.Benchmarks))
	var wg sync.WaitGroup
	for i, bench := range o.Benchmarks {
		wg.Add(1)
		go func(i int, bench string) {
			defer wg.Done()
			stats[i], errs[i] = runOneCached(bench, cfg, o, false)
		}(i, bench)
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("%s: %w", o.Benchmarks[i], err))
		}
	}
	if len(failed) > 0 {
		// Report every failing benchmark, not just the first: a core bug
		// usually breaks several workloads at once and the full list is
		// the diagnostic.
		return nil, errors.Join(failed...)
	}
	return stats, nil
}

// runSuites runs one suite per configuration concurrently, returning
// stats as [config][benchmark]. The figures that compare machines (7, 9,
// 11, 12, the sweeps, dual-path) used to run their suites back to back;
// launching them together lets the global pool keep every worker busy
// across configuration boundaries, and the result cache deduplicates any
// configuration another experiment already ran.
func runSuites(cfgs []core.Config, o Options) ([][]*core.Stats, error) {
	all := make([][]*core.Stats, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg core.Config) {
			defer wg.Done()
			all[i], errs[i] = runSuite(cfg, o)
		}(i, cfg)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return all, nil
}

// --- table rendering ---

// Table is one experiment's result: a titled grid with a trailing note.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Note)
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v uint64) string   { return fmt.Sprintf("%d", v) }

// pctImp returns the % IPC improvement of st over base.
func pctImp(st, base *core.Stats) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return 100 * (st.IPC()/base.IPC() - 1)
}

func amean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
