package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmp/internal/core"
	"dmp/internal/sample"
	"dmp/internal/telemetry"
)

// Simulation results are memoized process-wide, one entry per unique
// (benchmark, scale, checker, annotation-variant, canonical config)
// tuple. `dmpexp all` asks for the same simulation many times over — the
// baseline suite alone is needed by table3, fig1, fig7, fig9, fig11,
// fig12, dualpath and loopdiverge — and the simulator is deterministic,
// so every repeat after the first is a map lookup. The singleflight
// sync.Once per entry means concurrent experiments requesting the same
// key block on one simulation instead of racing duplicates.
//
// Cached *core.Stats are FROZEN: every caller shares one pointer, so a
// mutation by any of them would silently corrupt every other experiment's
// table. Callers that need to write (accumulate, rescale) must work on a
// core.Stats.Clone(). The cache keeps a private snapshot of each result
// and compares on every hit; a mutated entry is a programming error and
// panics with the offending key rather than returning poisoned numbers.
//
// Worker scheduling is process-global, not per-suite: the first scheme
// (one semaphore per runSuite call) oversubscribed the host as soon as
// experiments ran concurrently — every suite thought it owned
// Options.Parallel workers. Now Options.Parallel is a process-level cap:
// the first acquire sizes one shared slot pool (default NumCPU) and every
// simulation, from any experiment, takes a slot only while it actually
// runs. Cache waiters block on the entry's Once without holding a slot,
// so duplicate requests never occupy a worker.

// simKey identifies one unique simulation.
type simKey struct {
	bench string
	scale int
	check bool // golden-model retirement checker on
	loops bool // loop-marked annotation variant (Section 2.7.4)
	cfg   core.Config
}

// simEntry is a once-run cache slot.
type simEntry struct {
	once   sync.Once
	st     *core.Stats
	frozen core.Stats // snapshot taken at publication; guards the read-only invariant
	err    error
}

var (
	simCache  sync.Map // simKey -> *simEntry
	simHits   atomic.Uint64
	simMisses atomic.Uint64
)

// SimCounts returns the result-cache hit and miss totals since process
// start (or the last Reset). Misses count actual simulations.
func SimCounts() (hits, misses uint64) {
	return simHits.Load(), simMisses.Load()
}

// --- global worker pool ---

var (
	poolMu sync.Mutex
	poolCh chan struct{}
)

// workerSlots returns the process-wide simulation slot pool, creating it
// on first use with capacity n (<=0 means NumCPU). The first caller fixes
// the capacity for the life of the process: Parallel is a global cap, not
// a per-suite one, precisely so that concurrently generated experiments
// cannot oversubscribe the host.
func workerSlots(n int) chan struct{} {
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolCh == nil {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		poolCh = make(chan struct{}, n)
	}
	return poolCh
}

// runOneCached returns the memoized simulation of bench under cfg,
// running it on first request. The returned Stats are shared and frozen —
// Clone before mutating. loops selects the loop-marked annotated program
// (LoopDiverge); everything else passes false.
func runOneCached(bench string, cfg core.Config, o Options, loops bool) (*core.Stats, error) {
	key := simKey{bench: bench, scale: o.Scale, check: o.Check, loops: loops, cfg: cfg.Canonical()}
	v, _ := simCache.LoadOrStore(key, &simEntry{})
	e := v.(*simEntry)
	hit := true
	t0 := time.Now() //dmp:allow nondeterminism -- host telemetry only; never reaches Stats or tables
	e.once.Do(func() {
		hit = false
		simMisses.Add(1)
		mSimMisses.Inc()
		tel := telemetry.Active()
		var label string
		var sp *telemetry.Span
		if tel != nil {
			label = simLabel(bench, cfg, loops)
			tel.Feed().Emit(telemetry.Event{Kind: "simulation", Name: label, Msg: "miss"})
			// The simulation gets its own trace lane: pooled simulations
			// from one experiment overlap each other and their parent.
			sp = o.Span.ChildAsync(label, "exp")
		}
		slots := workerSlots(o.Parallel)
		mPoolQueued.Add(1)
		slots <- struct{}{}
		mPoolQueued.Add(-1)
		mSlotWait.Observe(time.Since(t0).Seconds()) //dmp:allow nondeterminism -- host telemetry only
		mPoolBusy.Add(1)
		defer func() { mPoolBusy.Add(-1); <-slots }()
		so := o
		so.Span = sp // sampled runs hang their stage spans under the simulation
		e.st, e.err = simulate(bench, cfg, so, loops)
		if e.err == nil {
			e.frozen = *e.st
		}
		sp.End()
		elapsed := time.Since(t0).Seconds() //dmp:allow nondeterminism -- host telemetry only
		mSimSeconds.Observe(elapsed)
		if tel != nil {
			tel.Feed().Emit(telemetry.Event{Kind: "simulation", Name: label, Msg: "done", V: elapsed})
		}
	})
	if hit {
		simHits.Add(1)
		mSimHits.Inc()
		// Covers both flavors of hit: an instant lookup of a completed
		// entry (~0) and blocking on another request's in-flight
		// simulation (the singleflight case the histogram exists for).
		mSingleflightWait.Observe(time.Since(t0).Seconds()) //dmp:allow nondeterminism -- host telemetry only
		if tel := telemetry.Active(); tel != nil {
			tel.Feed().Emit(telemetry.Event{Kind: "simulation", Name: simLabel(bench, cfg, loops), Msg: "hit"})
		}
		if e.err == nil && *e.st != e.frozen {
			panic(fmt.Sprintf("exp: cached Stats for %s/%v (scale %d) were mutated; cached results are frozen — use Stats.Clone",
				bench, cfg.Mode, o.Scale))
		}
	}
	return e.st, e.err
}

// simulate is the uncached simulation behind runOneCached: one benchmark,
// one machine configuration, one run. The result is detached from the
// Machine (Clone) so the cache does not pin simulator state. A SampleMode
// config dispatches to the sampling driver (internal/sample) and caches
// the extrapolated Stats; Config.Canonical keeps SampleMode in the key,
// so a sampled result can never alias the exact result.
func simulate(bench string, cfg core.Config, o Options, loops bool) (*core.Stats, error) {
	p, err := annotatedCached(bench, o.Scale, loops)
	if err != nil {
		return nil, err
	}
	cfg.CheckRetirement = o.Check
	if cfg.SampleMode {
		// The calling goroutine holds a worker slot for the whole sampled
		// run; handing the pool down lets interval jobs use idle slots
		// (try-acquire — a full pool runs intervals inline, no deadlock).
		res, err := sample.Run(p, cfg, sample.Options{Slots: workerSlots(o.Parallel), Span: o.Span})
		if err != nil {
			return nil, fmt.Errorf("under %v: %w", cfg.Mode, err)
		}
		return res.Extrapolated.Clone(), nil
	}
	m, err := core.New(p, cfg)
	if err != nil {
		return nil, err
	}
	st, err := m.Run()
	if err != nil {
		// The benchmark name is attached by the caller (runSuite names
		// every failing benchmark at its errors.Join point).
		return nil, fmt.Errorf("under %v: %w", cfg.Mode, err)
	}
	return st.Clone(), nil
}

// Reset drops every cached program and simulation result and zeroes the
// cache counters. For benchmarks and long-lived embedders that need a
// cold start; experiment correctness never requires it.
func Reset() {
	resetProgramCache()
	resetSimCache()
}

// ResetResults drops cached simulation results and counters but keeps
// the memoized annotated programs. For benchmarks that want to measure
// what one experiment's simulations cost (the pre-cache semantics: shared
// annotations, fresh runs) rather than a cache lookup.
func ResetResults() {
	resetSimCache()
}

// resetSimCache drops cached simulation results and counters.
func resetSimCache() {
	simCache.Range(func(k, _ any) bool {
		simCache.Delete(k)
		return true
	})
	simHits.Store(0)
	simMisses.Store(0)
}
