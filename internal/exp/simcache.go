package exp

import (
	"fmt"
	"sync"

	"dmp/internal/core"
	"dmp/internal/sample"
	"dmp/internal/sched"
	"dmp/internal/telemetry"
)

// Simulation results are memoized process-wide by internal/sched's
// singleflight result cache, one entry per unique (benchmark, scale,
// checker, annotation-variant, canonical config) tuple. `dmpexp all`
// asks for the same simulation many times over — the baseline suite
// alone is needed by table3, fig1, fig7, fig9, fig11, fig12, dualpath
// and loopdiverge — and the simulator is deterministic, so every repeat
// after the first is a map lookup. This file is now only the glue
// between experiments and the scheduler: it builds the sched.Key,
// supplies the computation (simulate), and re-exports the counters the
// CLI prints. The cache machinery itself — singleflight entries, the
// frozen-Stats snapshot guard, the worker pool, the optional persistent
// backing store the dmpserve daemon installs — lives in internal/sched
// (and internal/store for the on-disk half).
//
// Cached *core.Stats are FROZEN: every caller shares one pointer, so a
// mutation by any of them would silently corrupt every other experiment's
// table. Callers that need to write (accumulate, rescale) must work on a
// core.Stats.Clone(). sched.Cache keeps a private snapshot of each result
// and compares on every hit; a mutated entry is a programming error and
// panics with the offending key rather than returning poisoned numbers.
//
// Worker scheduling is process-global, not per-suite: Options.Parallel
// is a process-level cap — the first acquire sizes one shared slot pool
// (default NumCPU) and every simulation, from any experiment, takes a
// slot only while it actually runs. Cache waiters block on the entry's
// singleflight without holding a slot, so duplicate requests never
// occupy a worker.

// simCache is the process-wide result cache. The dmpserve daemon
// installs a persistent backing store on it (ResultCache().SetBacking);
// the CLI path runs it memory-only.
var simCache = sched.NewCache()

// ResultCache exposes the process-wide result cache so embedders (the
// dmpserve daemon, benchmarks) can install a backing store and read the
// scheduler's counters.
func ResultCache() *sched.Cache { return simCache }

// SimCounts returns the result-cache reuse and simulation totals since
// process start (or the last Reset): hits are requests served without
// running a simulation (in-memory entries plus backing-store loads),
// misses count simulations actually executed.
func SimCounts() (hits, misses uint64) {
	c := simCache.Counts()
	return c.Hits + c.StoreHits, c.Computed
}

// workerSlots returns the process-wide simulation slot pool as a raw
// semaphore channel, creating it on first use with capacity n (<=0
// means NumCPU). See sched.Shared for the first-caller-sizes contract.
func workerSlots(n int) chan struct{} {
	return sched.Shared(n).Chan()
}

// runOneCached returns the memoized simulation of bench under cfg,
// running it on first request. The returned Stats are shared and frozen —
// Clone before mutating. loops selects the loop-marked annotated program
// (LoopDiverge); everything else passes false.
func runOneCached(bench string, cfg core.Config, o Options, loops bool) (*core.Stats, error) {
	key := sched.Key{Bench: bench, Scale: o.Scale, Check: o.Check, Loops: loops, Cfg: cfg.Canonical()}
	return simCache.Do(key, sched.Job{
		Pool: sched.Shared(o.Parallel),
		Span: o.Span,
		Run: func(sp *telemetry.Span) (*core.Stats, error) {
			so := o
			so.Span = sp // sampled runs hang their stage spans under the simulation
			return simulate(bench, cfg, so, loops)
		},
	})
}

// RunOne is the exported single-simulation entry point for embedders
// (the dmpserve daemon's POST /v1/runs): one benchmark, one machine
// configuration, memoized through the process-wide cache exactly like
// an experiment's request. The returned Stats are shared and frozen —
// Clone before mutating.
func RunOne(bench string, cfg core.Config, o Options, loops bool) (*core.Stats, error) {
	return runOneCached(bench, cfg, o.norm(), loops)
}

// simulate is the uncached simulation behind runOneCached: one benchmark,
// one machine configuration, one run. The result is detached from the
// Machine (Clone) so the cache does not pin simulator state. A SampleMode
// config dispatches to the sampling driver (internal/sample) and caches
// the extrapolated Stats; Config.Canonical keeps SampleMode in the key,
// so a sampled result can never alias the exact result.
func simulate(bench string, cfg core.Config, o Options, loops bool) (*core.Stats, error) {
	p, err := annotatedCached(bench, o.Scale, loops)
	if err != nil {
		return nil, err
	}
	cfg.CheckRetirement = o.Check
	if cfg.SampleMode {
		// The calling goroutine holds a worker slot for the whole sampled
		// run; handing the pool down lets interval jobs use idle slots
		// (try-acquire — a full pool runs intervals inline, no deadlock).
		res, err := sample.Run(p, cfg, sample.Options{Slots: workerSlots(o.Parallel), Span: o.Span})
		if err != nil {
			return nil, fmt.Errorf("under %v: %w", cfg.Mode, err)
		}
		return res.Extrapolated.Clone(), nil
	}
	m, err := core.New(p, cfg)
	if err != nil {
		return nil, err
	}
	st, err := m.Run()
	if err != nil {
		// The benchmark name is attached by the caller (runSuite names
		// every failing benchmark at its errors.Join point).
		return nil, fmt.Errorf("under %v: %w", cfg.Mode, err)
	}
	return st.Clone(), nil
}

// --- sampled-run memo ---

// sampleCache memoizes full sample.Result values per (bench, scale,
// check, canonical sampled config), so the daemon's overlapping clients
// coalesce to one sampled run each, the way runOneCached coalesces
// exact runs. It is process-local and never persisted: a Result carries
// host wall-clock (Timing, WallSeconds) alongside its deterministic
// fields, so only live requests may share one. Shared Results are
// read-only by the same frozen contract as cached Stats.
var sampleCache sync.Map // sched.Key -> *sampleEntry

type sampleEntry struct {
	once sync.Once
	res  *sample.Result
	err  error
}

// sampleCached runs (or reuses) the sampled simulation of bench under
// sCfg, holding one slot from slots for the duration of an actual run;
// interval jobs try-acquire further slots from the same pool and fall
// back inline.
func sampleCached(bench string, sCfg core.Config, o Options, slots chan struct{}) (*sample.Result, error) {
	key := sched.Key{Bench: bench, Scale: o.Scale, Check: o.Check, Cfg: sCfg.Canonical()}
	v, _ := sampleCache.LoadOrStore(key, &sampleEntry{})
	e := v.(*sampleEntry)
	e.once.Do(func() {
		p, err := annotatedCached(bench, o.Scale, false)
		if err != nil {
			e.err = err
			return
		}
		slots <- struct{}{}
		defer func() { <-slots }()
		e.res, e.err = sample.Run(p, sCfg, sample.Options{Slots: slots, Span: o.Span})
	})
	return e.res, e.err
}

// Reset drops every cached program and simulation result and zeroes the
// cache counters. For benchmarks and long-lived embedders that need a
// cold start; experiment correctness never requires it. A backing store
// installed on the result cache stays installed and keeps its contents.
func Reset() {
	resetProgramCache()
	resetSimCache()
}

// ResetResults drops cached simulation results and counters but keeps
// the memoized annotated programs. For benchmarks that want to measure
// what one experiment's simulations cost (the pre-cache semantics: shared
// annotations, fresh runs) rather than a cache lookup.
func ResetResults() {
	resetSimCache()
}

// resetSimCache drops cached simulation and sampled results and zeroes
// the counters.
func resetSimCache() {
	simCache.Reset()
	sampleCache.Range(func(k, _ any) bool {
		sampleCache.Delete(k)
		return true
	})
}
