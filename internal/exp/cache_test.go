package exp

import (
	"sync"
	"testing"

	"dmp/internal/core"
)

// runWith simulates bench on the given (possibly shared) program.
func runWith(t *testing.T, bench string, cfg core.Config, fresh bool) *core.Stats {
	t.Helper()
	p, err := Annotated(bench, 1)
	if fresh {
		p, err = buildAnnotated(bench, 1, false)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckRetirement = true
	m, err := core.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCachedAnnotatedMatchesFresh pins the sharing invariant documented
// in cache.go: a machine running on the memoized program must produce
// bit-identical architectural results to one running on a freshly built
// program, under every mode that reads diverge annotations. If this
// fails, something mutated a cached Program after publication.
func TestCachedAnnotatedMatchesFresh(t *testing.T) {
	resetProgramCache()
	cfgs := map[string]core.Config{
		"baseline":     core.DefaultConfig(),
		"dhp":          core.DHPConfig(),
		"enhanced-dmp": core.EnhancedDMPConfig(),
	}
	for name, cfg := range cfgs {
		for _, bench := range []string{"mcf", "gcc"} {
			cached := runWith(t, bench, cfg, false)
			fresh := runWith(t, bench, cfg, true)
			if cached.Cycles != fresh.Cycles ||
				cached.RetiredInsts != fresh.RetiredInsts ||
				cached.IPC() != fresh.IPC() {
				t.Errorf("%s/%s: cached (cycles=%d insts=%d ipc=%v) != fresh (cycles=%d insts=%d ipc=%v)",
					name, bench, cached.Cycles, cached.RetiredInsts, cached.IPC(),
					fresh.Cycles, fresh.RetiredInsts, fresh.IPC())
			}
		}
	}
}

// TestFigure6LeavesCacheIntact guards the one consumer that re-profiles:
// Figure6 must profile a private build, never the cached program, or the
// cached annotations silently become ref-derived for every later user.
func TestFigure6LeavesCacheIntact(t *testing.T) {
	resetProgramCache()
	p, err := Annotated("mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]uint64(nil), p.DivergePCs()...)
	if _, err := Figure6(Options{Scale: 1, Benchmarks: []string{"mcf"}}); err != nil {
		t.Fatal(err)
	}
	after := p.DivergePCs()
	if len(before) != len(after) {
		t.Fatalf("Figure6 changed cached diverge marks: %d before, %d after", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Figure6 changed cached diverge mark %d: %#x -> %#x", i, before[i], after[i])
		}
	}
}

// TestParallelSuitesShareCache runs several suites concurrently against
// one cold cache. Under -race this is the regression test for the
// build-once memoization: every worker of every suite hits
// annotatedCached at once, and all must agree with a serial run.
func TestParallelSuitesShareCache(t *testing.T) {
	Reset()
	o := Options{Scale: 1, Benchmarks: []string{"mcf", "twolf", "perlbmk"}, Check: true}
	want, err := runSuite(core.DMPConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	// Full Reset (programs AND results): the point is that concurrent
	// suites rebuild and re-simulate from cold, racing on both caches.
	Reset()
	const suites = 4
	got := make([][]*core.Stats, suites)
	errs := make([]error, suites)
	var wg sync.WaitGroup
	for i := 0; i < suites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = runSuite(core.DMPConfig(), o)
		}(i)
	}
	wg.Wait()
	for i := 0; i < suites; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for j := range want {
			if got[i][j].Cycles != want[j].Cycles || got[i][j].RetiredInsts != want[j].RetiredInsts {
				t.Errorf("suite %d, %s: cycles=%d insts=%d, want cycles=%d insts=%d",
					i, o.Benchmarks[j], got[i][j].Cycles, got[i][j].RetiredInsts,
					want[j].Cycles, want[j].RetiredInsts)
			}
		}
	}
}

// TestCheckerPassesAllWorkloadsWithArena runs every workload under
// enhanced DMP with the golden-model retirement checker on. The arena
// recycles fetch-queue uops; any recycle of a still-referenced uop shows
// up here as a retirement divergence.
func TestCheckerPassesAllWorkloadsWithArena(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite; skipped in -short")
	}
	if _, err := runSuite(core.EnhancedDMPConfig(), Options{Scale: 1, Check: true}.norm()); err != nil {
		t.Fatal(err)
	}
}
