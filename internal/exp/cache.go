package exp

import (
	"sync"

	"dmp/internal/prog"
)

// Annotated programs are memoized per (benchmark, scale, loop-marking):
// the workload build plus the training profile.Run dominates experiment
// wall-clock, and figures.go runs the same benchmark under 20+ machine
// configurations, so building each annotated program once eliminates
// nearly all of that work.
//
// Sharing one *prog.Program across concurrently running Machines is safe
// because a Program is read-only once buildAnnotated returns:
//
//   - profile.Run trains on the *training* build and mutates only it; the
//     published reference build receives the annotations via MarkDiverge
//     before the cache entry is published (the sync.Once provides the
//     happens-before edge).
//   - core.New copies p.Data into the machine's own emu.Memory, and
//     emu.New (the golden checker and the fetch oracle) does the same;
//     stores never write through to the Program.
//   - The core reads only p.Code (via At), p.Diverge (via DivergeAt),
//     p.Entry and p.StackBase. Episode setup slices a Diverge's CFMs but
//     never appends to or writes through it.
//
// Anything that would mutate a Program after annotation (ClearDiverge,
// SetWord, MarkDiverge with new data) must build a fresh one instead —
// see TestCachedAnnotatedMatchesFresh, which pins the cached/fresh
// equivalence.

// progKey identifies one cached annotated program.
type progKey struct {
	bench string
	scale int
	loops bool // profile.Options.IncludeLoops (Section 2.7.4)
}

// progEntry is a once-built cache slot; concurrent requesters for the
// same key block on the Once instead of profiling in parallel.
type progEntry struct {
	once sync.Once
	p    *prog.Program
	err  error
}

var progCache sync.Map // progKey -> *progEntry

// annotatedCached returns the memoized annotated program for the key,
// building it on first use. Errors are cached too: a benchmark that fails
// to build fails identically for every configuration that asks.
func annotatedCached(bench string, scale int, loops bool) (*prog.Program, error) {
	v, _ := progCache.LoadOrStore(progKey{bench, scale, loops}, &progEntry{})
	e := v.(*progEntry)
	e.once.Do(func() { e.p, e.err = buildAnnotated(bench, scale, loops) })
	return e.p, e.err
}

// resetProgramCache drops every cached program (tests only).
func resetProgramCache() {
	progCache.Range(func(k, _ any) bool {
		progCache.Delete(k)
		return true
	})
}
