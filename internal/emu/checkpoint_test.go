package emu

import (
	"testing"

	"dmp/internal/prog"
)

// chaseProg touches several widely separated memory pages each iteration,
// so checkpoints exercise the sparse Memory's page map, not just one page.
func chaseProg(iters int64) *prog.Program {
	return prog.MustAssemble(`
        li r1, ` + itoa(iters) + `
        li r2, 0x10          ; near page
        li r3, 0x100000      ; ~1MB
        li r4, 0x4000000000  ; ~256GB
loop:   ld r5, 0(r2)
        addi r5, r5, 1
        st r5, 0(r2)
        st r5, 0(r3)
        st r5, 8(r4)
        addi r2, r2, 8
        addi r3, r3, 64
        subi r1, r1, 1
        br.gt r1, zero, loop
        halt`)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCheckpointRestoreRoundTrip pins that an emulator restored from a
// checkpoint finishes with exactly the state of the one that kept
// running, across repeated checkpoint/restore hops: the sampler restores
// a machine, its fetch oracle, and its checker from each checkpoint while
// the warmer that produced it keeps going.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	p := chaseProg(200)
	ref := New(p)
	if _, err := ref.Run(0); err != nil {
		t.Fatal(err)
	}

	// Hop a fresh emulator through checkpoints every 100 instructions.
	cur := New(p)
	var hops int
	for !cur.Halted {
		if _, err := cur.Run(100); err != nil {
			t.Fatal(err)
		}
		cur = NewFromCheckpoint(p, cur.Checkpoint())
		hops++
	}
	if hops < 5 {
		t.Fatalf("only %d checkpoint hops; program too short for the test", hops)
	}
	if cur.Count != ref.Count {
		t.Fatalf("restored chain executed %d instructions, reference %d", cur.Count, ref.Count)
	}
	if cur.Regs != ref.Regs {
		t.Errorf("register files differ after checkpoint chain")
	}
	ref.Mem.Each(func(addr, val uint64) {
		if got := cur.Mem.Read(addr); got != val {
			t.Errorf("mem[%#x] = %d, want %d", addr, got, val)
		}
	})
}

// TestCheckpointOutlivesEmulator pins the deep-copy contract: a
// checkpoint taken mid-run must not see the source emulator's later
// stores (and vice versa), including on pages created after the snapshot.
func TestCheckpointOutlivesEmulator(t *testing.T) {
	p := chaseProg(100)
	e := New(p)
	if _, err := e.Run(300); err != nil {
		t.Fatal(err)
	}
	ck := e.Checkpoint()
	before := map[uint64]uint64{}
	ck.Mem.Each(func(addr, val uint64) { before[addr] = val })

	if _, err := e.Run(0); err != nil { // run source to halt
		t.Fatal(err)
	}
	after := 0
	ck.Mem.Each(func(addr, val uint64) {
		if before[addr] != val {
			t.Errorf("checkpoint mem[%#x] changed %d -> %d after source kept running", addr, before[addr], val)
		}
		after++
	})
	if after != len(before) {
		t.Errorf("checkpoint page set changed: %d words, had %d", after, len(before))
	}

	// Restored emulators are mutually independent too.
	a, b := NewFromCheckpoint(p, ck), NewFromCheckpoint(p, ck)
	a.Mem.Write(0x10, 0xdead)
	if b.Mem.Read(0x10) == 0xdead {
		t.Error("two emulators restored from one checkpoint share memory")
	}
}

// TestExcursionLeavesStateUntouched pins that a wrong-path excursion (the
// warmer's cache-pollution replay) never perturbs architectural state: an
// emulator that takes excursions at every branch must halt with exactly
// the state of one that never does.
func TestExcursionLeavesStateUntouched(t *testing.T) {
	p := chaseProg(50)
	plain := New(p)
	if _, err := plain.Run(0); err != nil {
		t.Fatal(err)
	}

	e := New(p)
	for !e.Halted {
		pc := e.PC
		st, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.Inst.IsBranch() {
			// Walk the not-taken direction (whatever actually happened).
			wrong := pc + 1
			if !st.Taken {
				wrong = st.Inst.Target
			}
			e.Excursion(wrong, 64, func(Step) bool { return true })
		}
	}
	if e.Count != plain.Count || e.Regs != plain.Regs {
		t.Fatal("excursions perturbed architectural register state")
	}
	plain.Mem.Each(func(addr, val uint64) {
		if got := e.Mem.Read(addr); got != val {
			t.Errorf("mem[%#x] = %d, want %d", addr, got, val)
		}
	})
}
