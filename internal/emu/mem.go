// Package emu implements the architectural (functional) model of the DMP
// ISA: a sparse 64-bit word memory and an emulator that executes programs
// instruction by instruction.
//
// The emulator serves three roles in the reproduction:
//
//   - golden model: the out-of-order core's retired, predicate-TRUE
//     instruction stream must match the emulator's execution exactly;
//   - fetch oracle: a pausable emulator instance follows the fetch stream
//     along correct-path instructions, providing perfect branch outcomes
//     (perfect prediction and perfect confidence estimation) and the
//     wrong-path classification behind Figure 1;
//   - profiler substrate: internal/profile drives it to collect edge
//     profiles and reconvergence statistics.
package emu

// pageBits selects a 4096-word (32KB) page granularity for the sparse
// memory; workload footprints are a few MB at most.
const pageBits = 12

const pageWords = 1 << pageBits

// Memory is a sparse map of 64-bit words addressed by byte address; the
// low three address bits are ignored (the ISA is 8-byte-word addressed).
type Memory struct {
	pages map[uint64]*[pageWords]uint64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageWords]uint64{}}
}

// Read returns the word at addr (missing words read as zero).
func (m *Memory) Read(addr uint64) uint64 {
	w := addr >> 3
	pg := m.pages[w>>pageBits]
	if pg == nil {
		return 0
	}
	return pg[w&(pageWords-1)]
}

// Write stores a word at addr.
func (m *Memory) Write(addr, val uint64) {
	w := addr >> 3
	idx := w >> pageBits
	pg := m.pages[idx]
	if pg == nil {
		pg = new([pageWords]uint64)
		m.pages[idx] = pg
	}
	pg[w&(pageWords-1)] = val
}

// Clone returns a deep copy. Cloning is how oracle emulators checkpoint;
// pages are copied eagerly, which is acceptable because oracle clones
// happen only at episode boundaries in tests.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, pg := range m.pages {
		np := *pg
		c.pages[k] = &np
	}
	return c
}

// Footprint returns the number of resident words, for tests.
func (m *Memory) Footprint() int { return len(m.pages) * pageWords }

// Each calls fn for every non-zero resident word, in unspecified order.
func (m *Memory) Each(fn func(addr, val uint64)) {
	//dmp:allow nondeterminism -- unspecified order is documented; callers must sort
	for idx, pg := range m.pages {
		base := idx << pageBits
		for i, v := range pg {
			if v != 0 {
				fn((base+uint64(i))<<3, v)
			}
		}
	}
}
