// Package emu implements the architectural (functional) model of the DMP
// ISA: a sparse 64-bit word memory and an emulator that executes programs
// instruction by instruction.
//
// The emulator serves three roles in the reproduction:
//
//   - golden model: the out-of-order core's retired, predicate-TRUE
//     instruction stream must match the emulator's execution exactly;
//   - fetch oracle: a pausable emulator instance follows the fetch stream
//     along correct-path instructions, providing perfect branch outcomes
//     (perfect prediction and perfect confidence estimation) and the
//     wrong-path classification behind Figure 1;
//   - profiler substrate: internal/profile drives it to collect edge
//     profiles and reconvergence statistics.
package emu

// pageBits selects a 4096-word (32KB) page granularity for the sparse
// memory; workload footprints are a few MB at most.
const pageBits = 12

const pageWords = 1 << pageBits

// page is one block of words plus its copy-on-write owner: the Memory
// allowed to write it in place. A nil owner (or any other Memory) marks
// the page frozen — shared with at least one clone — and a writer must
// copy it privately first. Frozen pages are never written again by
// anyone, which is what makes concurrent use of a Memory and its clones
// on different goroutines race-free (the handoff itself must synchronize,
// e.g. a channel send).
type page struct {
	owner *Memory
	words [pageWords]uint64
}

// Memory is a sparse map of 64-bit words addressed by byte address; the
// low three address bits are ignored (the ISA is 8-byte-word addressed).
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*page{}}
}

// Read returns the word at addr (missing words read as zero).
func (m *Memory) Read(addr uint64) uint64 {
	w := addr >> 3
	pg := m.pages[w>>pageBits]
	if pg == nil {
		return 0
	}
	return pg.words[w&(pageWords-1)]
}

// Write stores a word at addr, copying the page first when it is shared
// with a clone.
func (m *Memory) Write(addr, val uint64) {
	w := addr >> 3
	idx := w >> pageBits
	pg := m.pages[idx]
	switch {
	case pg == nil:
		pg = &page{owner: m}
		m.pages[idx] = pg
	case pg.owner != m:
		np := &page{owner: m, words: pg.words}
		m.pages[idx] = np
		pg = np
	}
	pg.words[w&(pageWords-1)] = val
}

// Clone returns an independent copy in O(resident pages): the page map is
// copied, every page is frozen (disowned), and each side copies a page
// privately on its first subsequent write to it. Checkpoints in sampled
// simulation clone the warming emulator's memory once per period and the
// interval machine clones the checkpoint three more times (committed
// state, fetch oracle, golden-model checker) — page sharing makes all of
// these O(metadata) instead of O(footprint).
func (m *Memory) Clone() *Memory {
	c := &Memory{pages: make(map[uint64]*page, len(m.pages))}
	for k, pg := range m.pages {
		if pg.owner != nil {
			// Only pages owned by m can have a non-nil owner here, and m's
			// goroutine is the only one that writes them — already-frozen
			// pages are left untouched so cloning a checkpoint shared with
			// another goroutine never writes shared state.
			pg.owner = nil
		}
		c.pages[k] = pg
	}
	return c
}

// Footprint returns the number of resident words, for tests.
func (m *Memory) Footprint() int { return len(m.pages) * pageWords }

// Each calls fn for every non-zero resident word, in unspecified order.
func (m *Memory) Each(fn func(addr, val uint64)) {
	//dmp:allow nondeterminism -- unspecified order is documented; callers must sort
	for idx, pg := range m.pages {
		base := idx << pageBits
		for i, v := range pg.words {
			if v != 0 {
				fn((base+uint64(i))<<3, v)
			}
		}
	}
}
