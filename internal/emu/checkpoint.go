package emu

import (
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Checkpoint is a self-contained snapshot of an emulator's architectural
// state: registers, a deep copy of the sparse data memory, the PC, the
// instruction count, and the halt flag. The sampling driver captures one
// per detailed interval during functional fast-forward and transplants
// it into fresh machines (core.NewFromCheckpoint), so a checkpoint must
// stay valid after the emulator that produced it keeps running.
type Checkpoint struct {
	Regs   [isa.NumRegs]uint64
	Mem    *Memory // private copy-on-write clone; isolated from the source emulator
	PC     uint64
	Count  uint64
	Halted bool
}

// Checkpoint snapshots the emulator's current architectural state. The
// memory is cloned copy-on-write (Memory.Clone freezes shared pages), so
// the emulator may continue running (and the checkpoint may outlive it)
// without either seeing the other's writes, at O(resident pages) cost
// instead of O(footprint).
func (e *Emulator) Checkpoint() Checkpoint {
	return Checkpoint{
		Regs:   e.Regs,
		Mem:    e.Mem.Clone(),
		PC:     e.PC,
		Count:  e.Count,
		Halted: e.Halted,
	}
}

// NewFromCheckpoint returns an emulator for p restored to ck. The
// checkpoint's memory is cloned (copy-on-write), so one checkpoint can
// seed any number of emulators (the sampler seeds a machine, its fetch
// oracle and its golden-model checker from the same checkpoint) and each
// write stream stays independent.
func NewFromCheckpoint(p *prog.Program, ck Checkpoint) *Emulator {
	return &Emulator{
		Prog:   p,
		Regs:   ck.Regs,
		Mem:    ck.Mem.Clone(),
		PC:     ck.PC,
		Count:  ck.Count,
		Halted: ck.Halted,
	}
}
