package emu

import (
	"fmt"

	"dmp/internal/isa"
)

// History is a rolling undo window over an emulator's recent steps: a
// register/PC snapshot per executed instruction plus an undo log of
// memory writes, trimmed from the front as the consumer's retirement
// frontier advances.
//
// The fetch oracle uses it to rewind to the architectural state
// immediately after any in-flight instruction: when a pipeline flush
// squashes fetched work the oracle had already executed, the machine
// rewinds the oracle to the flushing branch and both are exactly in
// lockstep again. The window never needs to reach behind retirement
// (retired instructions cannot be squashed), which bounds its size by
// the instruction window.
type History struct {
	base  uint64 // step count of marks[0]
	marks []histMark
	wr    []histWrite
}

type histMark struct {
	regs   [isa.NumRegs]uint64
	pc     uint64
	halted bool
	nwr    int // total memory writes recorded up to and including this step
}

type histWrite struct {
	addr, old uint64
}

// EnableHistory starts recording rewind state on every Step. The current
// state becomes the oldest rewindable point.
func (e *Emulator) EnableHistory() {
	e.hist = &History{base: e.Count}
	e.hist.marks = append(e.hist.marks, e.markNow())
}

func (e *Emulator) markNow() histMark {
	m := histMark{regs: e.Regs, pc: e.PC, halted: e.Halted}
	if e.hist != nil {
		m.nwr = len(e.hist.wr)
	}
	return m
}

// RewindTo restores the emulator to its state immediately after step
// `count` (Count == count). count must lie inside the history window.
func (e *Emulator) RewindTo(count uint64) error {
	h := e.hist
	if h == nil {
		return fmt.Errorf("emu: RewindTo without history")
	}
	if count < h.base || count > e.Count {
		return fmt.Errorf("emu: RewindTo(%d) outside window [%d, %d]", count, h.base, e.Count)
	}
	idx := int(count - h.base)
	m := h.marks[idx]
	// Undo memory writes performed after the mark, newest first.
	for i := len(h.wr) - 1; i >= m.nwr; i-- {
		e.Mem.Write(h.wr[i].addr, h.wr[i].old)
	}
	h.wr = h.wr[:m.nwr]
	h.marks = h.marks[:idx+1]
	e.Regs, e.PC, e.Halted = m.regs, m.pc, m.halted
	e.Count = count
	return nil
}

// TrimHistory discards rewind state for steps before count: the caller
// guarantees it will never rewind that far back (those instructions
// retired).
func (e *Emulator) TrimHistory(count uint64) {
	h := e.hist
	if h == nil || count <= h.base {
		return
	}
	if count > e.Count {
		count = e.Count
	}
	idx := int(count - h.base)
	keep := h.marks[idx].nwr
	// Compact in place; the slices stay amortised O(1) per step.
	h.wr = append(h.wr[:0], h.wr[keep:]...)
	for i := range h.marks[idx:] {
		h.marks[i] = h.marks[idx+i]
		h.marks[i].nwr -= keep
	}
	h.marks = h.marks[:len(h.marks)-idx]
	h.base = count
}

// HistoryLen reports the current window size in steps, for tests.
func (e *Emulator) HistoryLen() int {
	if e.hist == nil {
		return 0
	}
	return len(e.hist.marks) - 1
}
