package emu

import (
	"fmt"

	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Step describes one architecturally executed instruction: what it was,
// what it produced, and where control went. The out-of-order core's
// retirement checker compares against Steps; the profiler consumes them
// as a stream.
type Step struct {
	PC   uint64
	Inst isa.Inst
	// NextPC is the PC of the next instruction.
	NextPC uint64
	// Taken is meaningful for conditional branches.
	Taken bool
	// WroteReg / RegVal record the destination register write, if any.
	WroteReg bool
	Reg      isa.Reg
	RegVal   uint64
	// Mem access, if any.
	IsLoad, IsStore bool
	Addr, MemVal    uint64
	// Halted is set when the instruction was a HALT.
	Halted bool
}

// Emulator executes a program architecturally, one instruction per Step
// call. It is deterministic and has no timing.
type Emulator struct {
	Prog *prog.Program
	Regs [isa.NumRegs]uint64
	Mem  *Memory
	PC   uint64
	// Count is the number of instructions executed so far.
	Count uint64
	// Halted is set once HALT executes; further Steps return an error.
	Halted bool

	hist *History
}

// New returns an emulator at the program entry with initial data memory
// loaded and the stack pointer set.
func New(p *prog.Program) *Emulator {
	e := &Emulator{Prog: p, Mem: NewMemory(), PC: p.Entry}
	for addr, val := range p.Data {
		e.Mem.Write(addr, val)
	}
	e.Regs[isa.SP] = p.StackBase
	return e
}

// Clone returns an independent copy of the emulator (used by the fetch
// oracle when it needs to checkpoint around speculative regions in tests).
func (e *Emulator) Clone() *Emulator {
	c := *e
	c.Mem = e.Mem.Clone()
	c.hist = nil // history does not transfer across clones
	return &c
}

// Reg returns a register value (the zero register always reads zero).
func (e *Emulator) Reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return e.Regs[r]
}

func (e *Emulator) setReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		e.Regs[r] = v
	}
}

// Step executes one instruction and returns its Step record. Executing
// past a HALT or outside the code image returns an error: the golden
// model must never run wild, so this is a hard failure for the caller.
func (e *Emulator) Step() (Step, error) {
	if e.Halted {
		return Step{}, fmt.Errorf("emu: step after halt")
	}
	if !e.Prog.InCode(e.PC) {
		return Step{}, fmt.Errorf("emu: pc %d outside code image", e.PC)
	}
	in := e.Prog.Code[e.PC]
	s := Step{PC: e.PC, Inst: in, NextPC: e.PC + 1}

	switch {
	case in.IsALU():
		v := isa.EvalALU(in, e.Reg(in.Src1), e.Reg(in.Src2))
		e.setReg(in.Dst, v)
		s.WroteReg, s.Reg, s.RegVal = true, in.Dst, v
	case in.Op == isa.LD:
		addr := e.Reg(in.Src1) + uint64(in.Imm)
		v := e.Mem.Read(addr)
		e.setReg(in.Dst, v)
		s.IsLoad, s.Addr, s.MemVal = true, addr, v
		s.WroteReg, s.Reg, s.RegVal = true, in.Dst, v
	case in.Op == isa.ST:
		addr := e.Reg(in.Src1) + uint64(in.Imm)
		v := e.Reg(in.Src2)
		if e.hist != nil {
			e.hist.wr = append(e.hist.wr, histWrite{addr, e.Mem.Read(addr)})
		}
		e.Mem.Write(addr, v)
		s.IsStore, s.Addr, s.MemVal = true, addr, v
	case in.Op == isa.BR:
		s.Taken = in.Cond.Eval(e.Reg(in.Src1), e.Reg(in.Src2))
		if s.Taken {
			s.NextPC = in.Target
		}
	case in.Op == isa.JMP:
		s.NextPC = in.Target
	case in.Op == isa.JR:
		s.NextPC = e.Reg(in.Src1)
	case in.Op == isa.CALL:
		e.setReg(in.Dst, e.PC+1)
		s.WroteReg, s.Reg, s.RegVal = true, in.Dst, e.PC+1
		s.NextPC = in.Target
	case in.Op == isa.CALLR:
		target := e.Reg(in.Src1)
		e.setReg(in.Dst, e.PC+1)
		s.WroteReg, s.Reg, s.RegVal = true, in.Dst, e.PC+1
		s.NextPC = target
	case in.Op == isa.RET:
		s.NextPC = e.Reg(in.Src1)
	case in.Op == isa.HALT:
		s.Halted = true
		e.Halted = true
		s.NextPC = e.PC
	case in.Op == isa.NOP:
		// nothing
	default:
		return Step{}, fmt.Errorf("emu: pc %d: unimplemented op %v", e.PC, in.Op)
	}

	e.PC = s.NextPC
	e.Count++
	if e.hist != nil {
		e.hist.marks = append(e.hist.marks, e.markNow())
	}
	return s, nil
}

// Excursion speculatively executes from pc for up to max instructions
// without disturbing the emulator: registers are copied, stores land in
// a private overlay, and loads see the overlay first and committed
// memory second. fn receives each step; returning false stops the walk.
// Execution also stops silently at a HALT, at any PC outside the code
// image, or on an op Step would reject — a wrong path may run anywhere,
// and the caller (wrong-path runahead warming) wants "stop", not an
// error. The emulator's own Regs, Mem, PC, and Count are untouched.
func (e *Emulator) Excursion(pc uint64, max int, fn func(Step) bool) {
	regs := e.Regs
	var overlay map[uint64]uint64
	reg := func(r isa.Reg) uint64 {
		if r == isa.Zero {
			return 0
		}
		return regs[r]
	}
	setReg := func(r isa.Reg, v uint64) {
		if r != isa.Zero {
			regs[r] = v
		}
	}
	for n := 0; n < max; n++ {
		if !e.Prog.InCode(pc) {
			return
		}
		in := e.Prog.Code[pc]
		s := Step{PC: pc, Inst: in, NextPC: pc + 1}
		switch {
		case in.IsALU():
			setReg(in.Dst, isa.EvalALU(in, reg(in.Src1), reg(in.Src2)))
		case in.Op == isa.LD:
			addr := reg(in.Src1) + uint64(in.Imm)
			v, ok := overlay[addr>>3]
			if !ok {
				v = e.Mem.Read(addr)
			}
			setReg(in.Dst, v)
			s.IsLoad, s.Addr = true, addr
		case in.Op == isa.ST:
			addr := reg(in.Src1) + uint64(in.Imm)
			if overlay == nil {
				overlay = map[uint64]uint64{}
			}
			overlay[addr>>3] = reg(in.Src2)
			s.IsStore, s.Addr = true, addr
		case in.Op == isa.BR:
			s.Taken = in.Cond.Eval(reg(in.Src1), reg(in.Src2))
			if s.Taken {
				s.NextPC = in.Target
			}
		case in.Op == isa.JMP:
			s.NextPC = in.Target
		case in.Op == isa.JR:
			s.NextPC = reg(in.Src1)
		case in.Op == isa.CALL:
			setReg(in.Dst, pc+1)
			s.NextPC = in.Target
		case in.Op == isa.CALLR:
			t := reg(in.Src1)
			setReg(in.Dst, pc+1)
			s.NextPC = t
		case in.Op == isa.RET:
			s.NextPC = reg(in.Src1)
		case in.Op == isa.NOP:
			// nothing
		default:
			return // HALT or unimplemented: the wrong path ends here
		}
		if !fn(s) {
			return
		}
		pc = s.NextPC
	}
}

// Run executes until HALT or until max instructions have executed (0
// means no limit). It returns the number of instructions executed.
func (e *Emulator) Run(max uint64) (uint64, error) {
	start := e.Count
	for !e.Halted {
		if max != 0 && e.Count-start >= max {
			break
		}
		if _, err := e.Step(); err != nil {
			return e.Count - start, err
		}
	}
	return e.Count - start, nil
}

// RunFunc executes until HALT or max instructions, invoking fn on every
// step. If fn returns false, execution stops early.
func (e *Emulator) RunFunc(max uint64, fn func(Step) bool) error {
	start := e.Count
	for !e.Halted {
		if max != 0 && e.Count-start >= max {
			return nil
		}
		s, err := e.Step()
		if err != nil {
			return err
		}
		if !fn(s) {
			return nil
		}
	}
	return nil
}
