package emu

import (
	"testing"
	"testing/quick"

	"dmp/internal/isa"
	"dmp/internal/prog"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read(0x1000) != 0 {
		t.Error("fresh memory not zero")
	}
	m.Write(0x1000, 42)
	if m.Read(0x1000) != 42 {
		t.Error("read-after-write failed")
	}
	// Unaligned access rounds down to the word.
	m.Write(0x1005, 7)
	if m.Read(0x1000) != 7 {
		t.Error("unaligned write did not alias word")
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr, val uint64) bool {
		m.Write(addr, val)
		return m.Read(addr) == val && m.Read(addr&^7) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.Write(8, 1)
	c := m.Clone()
	c.Write(8, 2)
	m.Write(16, 3)
	if m.Read(8) != 1 || c.Read(8) != 2 {
		t.Error("clone not independent on existing page")
	}
	if c.Read(16) != 0 {
		t.Error("clone saw later write to original")
	}
}

func TestMemorySparseDistantPages(t *testing.T) {
	m := NewMemory()
	addrs := []uint64{0, 1 << 20, 1 << 40, 1<<63 - 8}
	for i, a := range addrs {
		m.Write(a, uint64(i+1))
	}
	for i, a := range addrs {
		if m.Read(a) != uint64(i+1) {
			t.Errorf("addr %#x = %d, want %d", a, m.Read(a), i+1)
		}
	}
}

func TestEmulatorArithmetic(t *testing.T) {
	p := prog.MustAssemble(`
        li r1, 6
        li r2, 7
        mul r3, r1, r2
        addi r3, r3, 0x100
        halt`)
	e := New(p)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Regs[3] != 42+0x100 {
		t.Errorf("r3 = %d, want %d", e.Regs[3], 42+0x100)
	}
	if !e.Halted {
		t.Error("not halted")
	}
	if e.Count != 5 {
		t.Errorf("count = %d, want 5", e.Count)
	}
}

func TestEmulatorZeroRegister(t *testing.T) {
	p := prog.MustAssemble(`
        li r0, 99
        add r1, r0, r0
        halt`)
	e := New(p)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Regs[0] != 0 || e.Regs[1] != 0 {
		t.Errorf("zero register broke: r0=%d r1=%d", e.Regs[0], e.Regs[1])
	}
}

func TestEmulatorLoadStore(t *testing.T) {
	p := prog.MustAssemble(`
        li r1, 0x2000
        li r2, 1234
        st r2, 8(r1)
        ld r3, 8(r1)
        ld r4, (r1)
        halt
        .word 0x2000 55`)
	e := New(p)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Regs[3] != 1234 {
		t.Errorf("r3 = %d, want 1234", e.Regs[3])
	}
	if e.Regs[4] != 55 {
		t.Errorf("r4 = %d, want 55 (initial data)", e.Regs[4])
	}
}

func TestEmulatorBranchLoop(t *testing.T) {
	p := prog.MustAssemble(`
        li r1, 5
        li r2, 0
loop:   add r2, r2, r1
        subi r1, r1, 1
        br.gt r1, zero, loop
        halt`)
	e := New(p)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Regs[2] != 15 {
		t.Errorf("sum = %d, want 15", e.Regs[2])
	}
}

func TestEmulatorCallRet(t *testing.T) {
	p := prog.MustAssemble(`
        .entry main
double: add r1, r1, r1
        ret
main:   li r1, 21
        call double
        halt`)
	e := New(p)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Regs[1] != 42 {
		t.Errorf("r1 = %d, want 42", e.Regs[1])
	}
}

func TestEmulatorIndirectCallAndJump(t *testing.T) {
	p := prog.MustAssemble(`
        .entry main
fn:     li r2, 7
        ret
main:   li r5, 0        ; fn is at PC 0
        callr r5
        li r6, 3        ; unused
        li r7, 7        ; PC of the halt
        jr r7
        halt`)
	e := New(p)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Regs[2] != 7 {
		t.Errorf("r2 = %d, want 7", e.Regs[2])
	}
}

func TestEmulatorStepRecords(t *testing.T) {
	p := prog.MustAssemble(`
        li r1, 3
        br.eq r1, zero, skip
        st r1, 0x40(zero)
skip:   halt`)
	e := New(p)
	s1, _ := e.Step()
	if !s1.WroteReg || s1.Reg != 1 || s1.RegVal != 3 {
		t.Errorf("li step = %+v", s1)
	}
	s2, _ := e.Step()
	if s2.Taken || s2.NextPC != 2 {
		t.Errorf("br step = %+v", s2)
	}
	s3, _ := e.Step()
	if !s3.IsStore || s3.Addr != 0x40 || s3.MemVal != 3 {
		t.Errorf("st step = %+v", s3)
	}
	s4, _ := e.Step()
	if !s4.Halted {
		t.Errorf("halt step = %+v", s4)
	}
	if _, err := e.Step(); err == nil {
		t.Error("step after halt succeeded")
	}
}

func TestEmulatorRunMax(t *testing.T) {
	p := prog.MustAssemble(`
loop:   addi r1, r1, 1
        jmp loop
        halt`)
	e := New(p)
	n, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("ran %d, want 100", n)
	}
	if e.Halted {
		t.Error("halted unexpectedly")
	}
}

func TestEmulatorRunFuncEarlyStop(t *testing.T) {
	p := prog.MustAssemble(`
loop:   addi r1, r1, 1
        jmp loop
        halt`)
	e := New(p)
	steps := 0
	err := e.RunFunc(0, func(Step) bool {
		steps++
		return steps < 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 7 {
		t.Errorf("steps = %d, want 7", steps)
	}
}

func TestEmulatorClone(t *testing.T) {
	p := prog.MustAssemble(`
        li r1, 1
        st r1, 0x10(zero)
        li r1, 2
        halt`)
	e := New(p)
	e.Step() //nolint:errcheck
	e.Step() //nolint:errcheck
	c := e.Clone()
	e.Step() //nolint:errcheck
	if c.Regs[1] != 1 || e.Regs[1] != 2 {
		t.Error("clone register state not independent")
	}
	c.Mem.Write(0x10, 9)
	if e.Mem.Read(0x10) != 1 {
		t.Error("clone memory not independent")
	}
}

func TestEmulatorPCOutsideCode(t *testing.T) {
	p := prog.MustAssemble("halt")
	e := New(p)
	e.PC = 50
	if _, err := e.Step(); err == nil {
		t.Error("step outside code succeeded")
	}
}

func TestEmulatorInitialState(t *testing.T) {
	p := prog.MustAssemble("halt\n.word 0x800 11")
	e := New(p)
	if e.Reg(isa.SP) != p.StackBase {
		t.Errorf("sp = %d, want %d", e.Reg(isa.SP), p.StackBase)
	}
	if e.Mem.Read(0x800) != 11 {
		t.Error("initial data not loaded")
	}
	if e.Reg(isa.Zero) != 0 {
		t.Error("zero register non-zero")
	}
}

func TestEmulatorStackDiscipline(t *testing.T) {
	// Push two values, pop them back in reverse.
	p := prog.MustAssemble(`
        li r1, 111
        li r2, 222
        subi sp, sp, 16
        st r1, (sp)
        st r2, 8(sp)
        ld r3, 8(sp)
        ld r4, (sp)
        addi sp, sp, 16
        halt`)
	e := New(p)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Regs[3] != 222 || e.Regs[4] != 111 {
		t.Errorf("stack pops: r3=%d r4=%d", e.Regs[3], e.Regs[4])
	}
	if e.Reg(isa.SP) != p.StackBase {
		t.Error("sp not restored")
	}
}
