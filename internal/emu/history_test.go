package emu

import (
	"testing"
	"testing/quick"

	"dmp/internal/prog"
)

// historyProg runs a loop that mutates registers and memory every
// iteration, so any rewind error is visible in architectural state.
func historyProg() *prog.Program {
	return prog.MustAssemble(`
        li r1, 7
        li r2, 40
loop:   muli r1, r1, 13
        addi r1, r1, 5
        andi r3, r1, 255
        shli r4, r3, 3
        st r1, 0x4000(r4)
        ld r5, 0x4000(r4)
        add r6, r6, r5
        subi r2, r2, 1
        br.gt r2, zero, loop
        halt`)
}

// snapshotState captures the observable architectural state.
type archState struct {
	regs [32]uint64
	pc   uint64
	cnt  uint64
}

func capture(e *Emulator) archState {
	var s archState
	copy(s.regs[:], e.Regs[:])
	s.pc, s.cnt = e.PC, e.Count
	return s
}

func TestHistoryRewindExact(t *testing.T) {
	e := New(historyProg())
	e.EnableHistory()

	var states []archState
	var mems []uint64 // mem[0x4000] probe after each step
	states = append(states, capture(e))
	mems = append(mems, e.Mem.Read(0x4000))
	for i := 0; i < 150 && !e.Halted; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
		states = append(states, capture(e))
		mems = append(mems, e.Mem.Read(0x4000))
	}

	// Rewind to several interior points and compare exactly.
	for _, target := range []uint64{120, 77, 30, 1, 0} {
		if err := e.RewindTo(target); err != nil {
			t.Fatalf("RewindTo(%d): %v", target, err)
		}
		got, want := capture(e), states[target]
		if got != want {
			t.Fatalf("rewind to %d: state %+v, want %+v", target, got, want)
		}
		if e.Mem.Read(0x4000) != mems[target] {
			t.Fatalf("rewind to %d: mem probe %d, want %d", target, e.Mem.Read(0x4000), mems[target])
		}
	}
}

func TestHistoryRewindThenReplayMatches(t *testing.T) {
	e := New(historyProg())
	e.EnableHistory()
	for i := 0; i < 100; i++ {
		e.Step() //nolint:errcheck
	}
	at100 := capture(e)
	if err := e.RewindTo(40); err != nil {
		t.Fatal(err)
	}
	// Replaying is deterministic: state at 100 must be identical.
	for i := 0; i < 60; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if capture(e) != at100 {
		t.Fatal("replay after rewind diverged")
	}
}

func TestHistoryTrim(t *testing.T) {
	e := New(historyProg())
	e.EnableHistory()
	for i := 0; i < 100; i++ {
		e.Step() //nolint:errcheck
	}
	e.TrimHistory(60)
	if e.HistoryLen() != 40 {
		t.Errorf("window = %d, want 40", e.HistoryLen())
	}
	// Rewinding inside the kept window still works...
	if err := e.RewindTo(80); err != nil {
		t.Fatal(err)
	}
	// ...but behind the trim point fails.
	if err := e.RewindTo(59); err == nil {
		t.Error("rewind behind trim succeeded")
	}
	// Rewind to exactly the trim frontier is allowed.
	if err := e.RewindTo(60); err != nil {
		t.Errorf("rewind to trim frontier: %v", err)
	}
}

func TestHistoryTrimThenContinue(t *testing.T) {
	e := New(historyProg())
	e.EnableHistory()
	ref := New(historyProg())
	for i := 0; i < 50; i++ {
		e.Step()   //nolint:errcheck
		ref.Step() //nolint:errcheck
	}
	e.TrimHistory(45)
	for !e.Halted {
		e.Step()   //nolint:errcheck
		ref.Step() //nolint:errcheck
	}
	if e.Regs != ref.Regs || e.Count != ref.Count {
		t.Error("history-enabled run diverged from plain run")
	}
}

func TestHistoryErrors(t *testing.T) {
	e := New(historyProg())
	if err := e.RewindTo(0); err == nil {
		t.Error("RewindTo without history succeeded")
	}
	e.EnableHistory()
	e.Step() //nolint:errcheck
	if err := e.RewindTo(5); err == nil {
		t.Error("RewindTo beyond Count succeeded")
	}
}

// Property: for random step counts and rewind targets, rewind+replay
// always reconverges with an untouched reference run.
func TestHistoryQuickRewindReplay(t *testing.T) {
	f := func(nRaw, backRaw uint8) bool {
		n := int(nRaw%100) + 10
		e := New(historyProg())
		e.EnableHistory()
		ref := New(historyProg())
		for i := 0; i < n && !e.Halted; i++ {
			e.Step()   //nolint:errcheck
			ref.Step() //nolint:errcheck
		}
		back := uint64(backRaw) % (e.Count + 1)
		if err := e.RewindTo(e.Count - back); err != nil {
			return false
		}
		for e.Count < ref.Count {
			if _, err := e.Step(); err != nil {
				return false
			}
		}
		return e.Regs == ref.Regs && e.PC == ref.PC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
