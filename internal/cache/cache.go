// Package cache models the on-chip memory hierarchy of Table 2: a 64KB
// 2-way L1 instruction cache (2-cycle), a 64KB 4-way L1 data cache
// (2-cycle), a unified 1MB 8-way L2 (10-cycle), all with 64B lines and
// LRU replacement, in front of a 300-cycle main memory.
//
// The model is a latency model: an access returns the number of cycles
// until the data is available and updates tag state immediately (no
// MSHRs or bandwidth contention — the paper's evaluation is about
// branch-misprediction behaviour, and these simplifications apply
// equally to every configuration compared). Timing-only: caches hold no
// data; values always come from the architectural memory image or the
// store buffer.
package cache

import "dmp/internal/cow"

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Assoc     int
	LineBytes int
	Latency   int // hit latency in cycles
}

// Cache is one set-associative, LRU, timing-only cache level. Sets live
// in a copy-on-write table (internal/cow) so sampled simulation can
// snapshot a continuously warmed cache in O(sets-metadata): Clone
// freezes the current tag state, and each side privately re-copies only
// the sets it touches afterwards.
type Cache struct {
	cfg     Config
	sets    cow.Table[line]
	setMask uint64
	lineSh  uint
	setSh   uint
	clock   uint64

	Hits, Misses uint64
}

type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

// New builds a cache level. Geometry must be power-of-two sets.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 || cfg.LineBytes <= 0 {
		panic("cache: bad geometry")
	}
	nlines := cfg.SizeBytes / cfg.LineBytes
	nsets := nlines / cfg.Assoc
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: sets must be a power of two")
	}
	sh := uint(0)
	for 1<<sh != cfg.LineBytes {
		sh++
		if sh > 20 {
			panic("cache: line size must be a power of two")
		}
	}
	setSh := uint(0)
	for 1<<setSh != nsets {
		setSh++
	}
	return &Cache{cfg: cfg, sets: cow.NewTable[line](nsets, cfg.Assoc),
		setMask: uint64(nsets - 1), lineSh: sh, setSh: setSh}
}

// Access looks up addr, fills on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	lineAddr := addr >> c.lineSh
	// Every access writes the set (LRU stamp on hit, fill on miss), so
	// take it mutable up front; the COW fast path is one compare.
	set := c.sets.Mut(int(lineAddr & c.setMask))
	tag := lineAddr >> c.setSh
	c.clock++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{valid: true, tag: tag, lru: c.clock}
	return false
}

// Latency returns the hit latency.
func (c *Cache) Latency() int { return c.cfg.Latency }

// Clone snapshots the cache copy-on-write: tag state is frozen and
// shared (cow.Table.Clone — O(sets) header copies, no line copies), LRU
// clock and counters are copied by value. Sampled simulation warms one
// hierarchy continuously during functional fast-forward and clones it
// per checkpoint so every detailed interval starts with the
// long-reuse-distance cache state an exact run would have; both the
// warmer and the interval machine keep training their instance, each
// privately re-copying only the sets it touches.
func (c *Cache) Clone() *Cache {
	n := *c
	n.sets = c.sets.Clone()
	return &n
}

// Hierarchy bundles L1I, L1D, L2 and memory into the lookup functions the
// core uses.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	MemLatency   int
}

// HierarchyConfig parameterises NewHierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLatency   int
}

// DefaultHierarchyConfig is Table 2's memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Latency: 2},
		L1D:        Config{SizeBytes: 64 << 10, Assoc: 4, LineBytes: 64, Latency: 2},
		L2:         Config{SizeBytes: 1 << 20, Assoc: 8, LineBytes: 64, Latency: 10},
		MemLatency: 300,
	}
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I:        New(cfg.L1I),
		L1D:        New(cfg.L1D),
		L2:         New(cfg.L2),
		MemLatency: cfg.MemLatency,
	}
}

// Clone deep-copies the whole hierarchy (see Cache.Clone).
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{L1I: h.L1I.Clone(), L1D: h.L1D.Clone(), L2: h.L2.Clone(), MemLatency: h.MemLatency}
}

// InstLatency returns the cycles to fetch the instruction word at byte
// address addr.
func (h *Hierarchy) InstLatency(addr uint64) int {
	if h.L1I.Access(addr) {
		return h.L1I.Latency()
	}
	if h.L2.Access(addr) {
		return h.L1I.Latency() + h.L2.Latency()
	}
	return h.L1I.Latency() + h.L2.Latency() + h.MemLatency
}

// DataLatency returns the cycles for a data access at byte address addr.
// Stores also call this at retirement so lines are allocated, but store
// latency is hidden by the store buffer.
func (h *Hierarchy) DataLatency(addr uint64) int {
	if h.L1D.Access(addr) {
		return h.L1D.Latency()
	}
	if h.L2.Access(addr) {
		return h.L1D.Latency() + h.L2.Latency()
	}
	return h.L1D.Latency() + h.L2.Latency() + h.MemLatency
}
