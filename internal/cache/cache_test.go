package cache

import "testing"

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 2})
	if c.Access(0x100) {
		t.Error("cold access hit")
	}
	if !c.Access(0x100) {
		t.Error("second access missed")
	}
	if !c.Access(0x13F) {
		t.Error("same-line access missed")
	}
	if c.Access(0x140) {
		t.Error("next-line access hit cold")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets x 2 ways, 64B lines. Three lines in the same set: the LRU
	// one is evicted.
	c := New(Config{SizeBytes: 256, Assoc: 2, LineBytes: 64, Latency: 1})
	a, b, d := uint64(0), uint64(128), uint64(256) // all set 0
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Error("a evicted (should have been MRU)")
	}
	if c.Access(b) {
		t.Error("b survived (should have been evicted)")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Assoc: 1, LineBytes: 64},
		{SizeBytes: 1024, Assoc: 1, LineBytes: 63},
		{SizeBytes: 192, Assoc: 1, LineBytes: 64}, // 3 sets
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold: L1 miss, L2 miss -> 2+10+300.
	if got := h.DataLatency(0x4000); got != 312 {
		t.Errorf("cold data latency = %d, want 312", got)
	}
	// Warm L1.
	if got := h.DataLatency(0x4000); got != 2 {
		t.Errorf("L1 hit latency = %d, want 2", got)
	}
	// Instruction side: the L2 is unified, so the line warmed by the data
	// access hits in L2 (L1I miss + L2 hit).
	if got := h.InstLatency(0x4000); got != 12 {
		t.Errorf("inst latency after data warm = %d, want 12", got)
	}
	if got := h.InstLatency(0x4000); got != 2 {
		t.Errorf("warm inst latency = %d, want 2", got)
	}
	// A line nobody touched misses all the way to memory.
	if got := h.InstLatency(0x80000); got != 312 {
		t.Errorf("cold inst latency = %d, want 312", got)
	}
}

func TestHierarchyL2HitPath(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1D = Config{SizeBytes: 128, Assoc: 1, LineBytes: 64, Latency: 2}
	h := NewHierarchy(cfg)
	h.DataLatency(0)   // cold fill L1+L2
	h.DataLatency(128) // evicts line 0 from tiny direct-mapped L1 (set 0)
	if got := h.DataLatency(0); got != 12 {
		t.Errorf("L2 hit latency = %d, want 2+10", got)
	}
}

func TestDefaultHierarchyMatchesTable2(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if cfg.L1I.SizeBytes != 64<<10 || cfg.L1I.Assoc != 2 || cfg.L1I.Latency != 2 {
		t.Error("L1I config != Table 2")
	}
	if cfg.L1D.SizeBytes != 64<<10 || cfg.L1D.Assoc != 4 || cfg.L1D.Latency != 2 {
		t.Error("L1D config != Table 2")
	}
	if cfg.L2.SizeBytes != 1<<20 || cfg.L2.Assoc != 8 || cfg.L2.Latency != 10 {
		t.Error("L2 config != Table 2")
	}
	if cfg.MemLatency != 300 {
		t.Error("memory latency != 300")
	}
	if cfg.L1I.LineBytes != 64 || cfg.L1D.LineBytes != 64 || cfg.L2.LineBytes != 64 {
		t.Error("line size != 64B")
	}
}

func TestLargeStrideThrashing(t *testing.T) {
	// Strided accesses covering more lines than the cache holds must keep
	// missing on a second pass.
	c := New(Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 1})
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 64; i++ {
			c.Access(i * 64)
		}
	}
	if c.Hits != 0 {
		t.Errorf("thrash pattern produced %d hits", c.Hits)
	}
	if c.Misses != 128 {
		t.Errorf("misses = %d, want 128", c.Misses)
	}
}
