package cache

import "testing"

// COW isolation pins (mirrors core's TestSnapshotIsolatesWarmState at
// the component level): after Clone, training either copy must not leak
// into the other — in either direction — and the hierarchy snapshot must
// stay O(metadata) regardless of cache size.

func cowCache() *Cache {
	c := New(Config{SizeBytes: 4096, Assoc: 4, LineBytes: 64, Latency: 2})
	for a := uint64(0); a < 4096; a += 64 {
		c.Access(a) // warm every set
	}
	return c
}

// hitProfile probes every warmed line without mutating the probe target
// (Access updates LRU, so probe a throwaway clone).
func hitProfile(c *Cache) [64]bool {
	var out [64]bool
	probe := c.Clone()
	for i := range out {
		out[i] = probe.Access(uint64(i) * 64)
	}
	return out
}

func TestCacheCloneIsolation(t *testing.T) {
	c := cowCache()
	before := hitProfile(c)
	cl := c.Clone()

	// Thrash the clone: distinct tags, same sets — evicts everything.
	for a := uint64(1 << 20); a < 1<<20+4*4096; a += 64 {
		cl.Access(a)
	}
	if got := hitProfile(c); got != before {
		t.Error("thrashing the clone evicted lines from the original")
	}

	// And the reverse: thrash the original, the clone's earlier state
	// (now fully the thrash lines) must be unaffected.
	cl2 := c.Clone()
	snap := hitProfile(cl2)
	for a := uint64(2 << 20); a < 2<<20+4*4096; a += 64 {
		c.Access(a)
	}
	if got := hitProfile(cl2); got != snap {
		t.Error("thrashing the original evicted lines from the clone")
	}
}

func TestCacheCloneOfClone(t *testing.T) {
	a := cowCache()
	b := a.Clone()
	c := b.Clone()
	b.Access(1 << 30) // mutate the middle generation only
	if !c.Access(0) {
		t.Error("grandchild lost a line the middle generation evicted locally")
	}
	if !a.Access(0) {
		t.Error("original lost a line the middle generation evicted locally")
	}
}

// TestHierarchyCloneAllocs pins that a hierarchy snapshot is O(metadata):
// a constant number of small header allocations, independent of how much
// cache state is resident. Deep-copying any level's sets would blow this
// budget immediately (the old implementation allocated per set).
func TestHierarchyCloneAllocs(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	for a := uint64(0); a < 1<<20; a += 64 {
		h.DataLatency(a) // make every level big and dirty
	}
	allocs := testing.AllocsPerRun(100, func() {
		sink = h.Clone()
	})
	// 3 Cache structs + 3 Hierarchy-internal COW table headers (groups +
	// gen slices each) + the Hierarchy struct itself. Budget 16 leaves
	// headroom for runtime noise while still catching any per-set copy.
	if allocs > 16 {
		t.Errorf("Hierarchy.Clone allocates %v objects; want O(metadata) (<= 16)", allocs)
	}
}

var sink *Hierarchy

func BenchmarkHierarchyClone(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	for a := uint64(0); a < 1<<20; a += 64 {
		h.DataLatency(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = h.Clone()
	}
}
