package serve

import (
	"sync"

	"dmp/internal/core"
	"dmp/internal/exp"
	"dmp/internal/sched"
	"dmp/internal/store"
)

// storeBacking adapts the content-addressed on-disk store to the
// scheduler's Backing interface. The translation from a sched.Key to a
// store.Meta adds the one fact the scheduler does not track: the
// workload hash, a digest of the exact annotated program bytes the
// result was measured on. Folding it into the persistent key means a
// store survives workload-generator changes safely — results for the
// old program bytes simply stop being addressed, instead of being
// served against the new ones.
type storeBacking struct {
	st *store.Store

	mu     sync.Mutex
	hashes map[workloadKey]workloadHash
}

type workloadKey struct {
	bench string
	scale int
	loops bool
}

type workloadHash struct {
	hash string
	err  error
}

func newStoreBacking(st *store.Store) *storeBacking {
	return &storeBacking{st: st, hashes: make(map[workloadKey]workloadHash)}
}

// hashFor returns the memoized workload hash for one annotation
// variant. Building the annotated program is the expensive half (it
// runs the training profile), but every simulation of the same variant
// needs that same build and shares it through exp's program cache, so
// the marginal cost here is one traversal per (bench, scale, loops)
// per process.
func (b *storeBacking) hashFor(k sched.Key) (string, error) {
	wk := workloadKey{bench: k.Bench, scale: k.Scale, loops: k.Loops}
	b.mu.Lock()
	h, ok := b.hashes[wk]
	b.mu.Unlock()
	if !ok {
		p, err := exp.Annotated(k.Bench, k.Scale)
		if k.Loops {
			p, err = exp.AnnotatedLoops(k.Bench, k.Scale)
		}
		if err != nil {
			h = workloadHash{err: err}
		} else {
			h = workloadHash{hash: p.Hash()}
		}
		b.mu.Lock()
		b.hashes[wk] = h
		b.mu.Unlock()
	}
	return h.hash, h.err
}

func (b *storeBacking) metaFor(k sched.Key) (store.Meta, bool) {
	h, err := b.hashFor(k)
	if err != nil {
		// No workload identity, no persistent key: the scheduler will
		// compute (and fail with the real error) instead.
		return store.Meta{}, false
	}
	return store.Meta{Bench: k.Bench, Scale: k.Scale, Check: k.Check, Loops: k.Loops,
		Config: k.Cfg, WorkloadHash: h}, true
}

func (b *storeBacking) Load(k sched.Key) (*core.Stats, bool) {
	m, ok := b.metaFor(k)
	if !ok {
		return nil, false
	}
	return b.st.Load(m)
}

func (b *storeBacking) Store(k sched.Key, st *core.Stats) {
	m, ok := b.metaFor(k)
	if !ok {
		return
	}
	// A failed write degrades to an unpersisted (but still correct)
	// result; the in-memory entry serves this process either way.
	b.st.Put(m, st)
}
