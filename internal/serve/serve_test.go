package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dmp/internal/exp"
	"dmp/internal/sched"
	"dmp/internal/store"
	"dmp/internal/telemetry"
)

// testIDs / testBenches keep the HTTP tests fast: a small experiment
// subset over two short benchmarks at scale 1.
var (
	testIDs     = []string{"table3", "fig1", "fig7"}
	testBenches = []string{"mcf", "twolf"}
)

func postJSON(t *testing.T, url, client string, body any) (*http.Response, RunStatus) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-DMP-Client", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, st
}

func experimentsBody(ids, benches []string) map[string]any {
	return map[string]any{"ids": ids, "benchmarks": benches, "scale": 1}
}

func tableTexts(t *testing.T, st RunStatus) []string {
	t.Helper()
	if st.State != "done" {
		t.Fatalf("run state %q (error %q), want done", st.State, st.Error)
	}
	var texts []string
	for _, tb := range st.Tables {
		if tb.Error != "" {
			t.Fatalf("table %s failed: %s", tb.ID, tb.Error)
		}
		texts = append(texts, tb.Text)
	}
	return texts
}

// TestWarmStoreServesWithoutSimulating is the acceptance path: a first
// daemon fills the store, a second daemon process (fresh in-memory
// cache, same directory) serves the identical request byte-for-byte
// with zero simulations, and the remote tables match a local run.
func TestWarmStoreServesWithoutSimulating(t *testing.T) {
	dir := t.TempDir()
	defer exp.ResultCache().SetBacking(nil)

	exp.ResetResults()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Store: st1, Admit: sched.AdmitOptions{MaxConcurrent: 4}})
	ts1 := httptest.NewServer(srv1)
	resp, run1 := postJSON(t, ts1.URL+"/v1/experiments?wait=1", "warm-a", experimentsBody(testIDs, testBenches))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	cold := tableTexts(t, run1)
	if run1.Counts == nil || run1.Counts.Simulated == 0 {
		t.Fatalf("cold run reported no simulations: %+v", run1.Counts)
	}
	ts1.Close()
	srv1.Close()
	if st1.Len() == 0 {
		t.Fatal("cold run persisted nothing")
	}

	// "Second process": drop the in-memory cache, reopen the store.
	exp.ResetResults()
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Store: st2, Admit: sched.AdmitOptions{MaxConcurrent: 4}})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	_, run2 := postJSON(t, ts2.URL+"/v1/experiments?wait=1", "warm-b", experimentsBody(testIDs, testBenches))
	warm := tableTexts(t, run2)
	if run2.Counts.Simulated != 0 {
		t.Fatalf("warm-store run simulated %d times, want 0 (counts %+v)", run2.Counts.Simulated, run2.Counts)
	}
	if run2.Counts.StoreHits == 0 {
		t.Fatal("warm-store run reported no store hits")
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("table %s differs between cold and warm-store runs:\n--- cold ---\n%s--- warm ---\n%s",
				testIDs[i], cold[i], warm[i])
		}
	}

	// The remote tables are byte-identical to a plain local run.
	exp.ResultCache().SetBacking(nil)
	exp.ResetResults()
	o := exp.DefaultOptions()
	o.Scale = 1
	o.Benchmarks = testBenches
	for i, id := range testIDs {
		tb, err := exp.All[id](o)
		if err != nil {
			t.Fatalf("local %s: %v", id, err)
		}
		if tb.String() != cold[i] {
			t.Fatalf("remote table %s differs from local:\n--- local ---\n%s--- remote ---\n%s",
				id, tb.String(), cold[i])
		}
	}
}

// TestConcurrentClientsCoalesce asserts the dedup guarantee: many
// clients requesting the same experiment concurrently trigger exactly
// the simulations one client would, the rest resolving as cache hits.
func TestConcurrentClientsCoalesce(t *testing.T) {
	// Baseline: how many unique simulations does one run need?
	exp.ResetResults()
	o := exp.DefaultOptions()
	o.Scale = 1
	o.Benchmarks = testBenches
	if _, err := exp.All["table3"](o); err != nil {
		t.Fatal(err)
	}
	unique := exp.ResultCache().Counts().Computed
	if unique == 0 {
		t.Fatal("table3 ran no simulations")
	}

	exp.ResetResults()
	srv := New(Config{Admit: sched.AdmitOptions{MaxConcurrent: 8, MaxQueuedPerClient: 2, MaxQueuedTotal: 32}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, st := postJSON(t, ts.URL+"/v1/experiments?wait=1", fmt.Sprintf("client-%d", i),
				experimentsBody([]string{"table3"}, testBenches))
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			if st.State != "done" {
				errs[i] = fmt.Errorf("client %d: state %q error %q", i, st.State, st.Error)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	c := exp.ResultCache().Counts()
	if c.Computed != unique {
		t.Fatalf("%d clients computed %d simulations, want %d (coalescing failed; counts %+v)",
			clients, c.Computed, unique, c)
	}
	if c.Hits+c.Computed < clients*unique {
		t.Fatalf("hits %d + computed %d < %d requests' worth of lookups", c.Hits, c.Computed, clients*unique)
	}
}

// TestRunEndpoint covers the single-run path and its error statuses.
func TestRunEndpoint(t *testing.T) {
	exp.ResetResults()
	srv := New(Config{Admit: sched.AdmitOptions{MaxConcurrent: 2}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	resp, st := postJSON(t, ts.URL+"/v1/runs?wait=1", "run-a",
		map[string]any{"bench": "mcf", "mode": "enhanced", "scale": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if st.State != "done" || st.Stats == nil || st.Stats.RetiredInsts == 0 {
		t.Fatalf("unexpected run result: state %q stats %+v", st.State, st.Stats)
	}

	// A repeat is a cache hit, not a new simulation.
	resp2, st2 := postJSON(t, ts.URL+"/v1/runs?wait=1", "run-a",
		map[string]any{"bench": "mcf", "mode": "enhanced", "scale": 1})
	if resp2.StatusCode != http.StatusOK || st2.Counts.Simulated != 0 {
		t.Fatalf("repeat run: status %d counts %+v, want 200 and 0 simulated", resp2.StatusCode, st2.Counts)
	}
	if *st.Stats != *st2.Stats {
		t.Fatal("repeat run returned different stats")
	}

	for name, body := range map[string]map[string]any{
		"unknown bench": {"bench": "nope"},
		"unknown mode":  {"bench": "mcf", "mode": "warp"},
		"missing bench": {"mode": "dmp"},
		"unknown field": {"bench": "mcf", "turbo": true},
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/runs?wait=1", "run-a", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	resp3, err := http.Get(ts.URL + "/v1/runs/r999999")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp3.StatusCode)
	}
}

// TestClosedServerSheds pins the deterministic 429 path: a stopped
// admitter refuses every submission with Retry-After set.
func TestClosedServerSheds(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	srv.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/runs?wait=1", "shed-a", map[string]any{"bench": "mcf"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
}

// TestSSEEvents streams a run's event feed: initial status, at least
// one telemetry event, and the final done event with the completed
// status.
func TestSSEEvents(t *testing.T) {
	exp.ResetResults()
	tel := telemetry.New(telemetry.Options{})
	telemetry.Enable(tel)
	defer telemetry.Enable(nil)

	srv := New(Config{Admit: sched.AdmitOptions{MaxConcurrent: 2}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	resp, st := postJSON(t, ts.URL+"/v1/runs", "sse-a", map[string]any{"bench": "twolf", "scale": 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}

	stream, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	events := map[string]int{}
	var final RunStatus
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	current := ""
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			current = ev
			events[ev]++
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && current == "done" {
			if err := json.Unmarshal([]byte(data), &final); err != nil {
				t.Fatalf("done payload: %v", err)
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events["status"] != 1 || events["done"] != 1 {
		t.Fatalf("events %v, want one status and one done", events)
	}
	if final.State != "done" || final.Stats == nil {
		t.Fatalf("final status %+v, want a completed run with stats", final)
	}
}
