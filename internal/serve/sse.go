package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"dmp/internal/telemetry"
)

// hub fans the process telemetry feed out to SSE subscribers. The feed
// delivers events synchronously under its own lock, so publish must
// never block: each subscriber gets a buffered channel and a slow one
// loses events (counted in dmp_serve_sse_dropped_total) instead of
// stalling the simulators that emit them.
type hub struct {
	mu   sync.Mutex
	subs map[chan telemetry.Event]struct{}
}

// sseBuffer is per-subscriber: large enough to ride out a flush stall,
// small enough that an abandoned connection cannot pin much.
const sseBuffer = 256

func newHub() *hub {
	return &hub{subs: make(map[chan telemetry.Event]struct{})}
}

// publish delivers ev to every subscriber without blocking. It is the
// telemetry feed subscriber (see Feed.Subscribe's "must be fast"
// contract).
func (h *hub) publish(ev telemetry.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			mSSEDropped.Inc()
		}
	}
}

func (h *hub) subscribe() chan telemetry.Event {
	ch := make(chan telemetry.Event, sseBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	mSSEClients.Add(1)
	return ch
}

func (h *hub) unsubscribe(ch chan telemetry.Event) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
	mSSEClients.Add(-1)
}

// writeSSE frames one server-sent event. json.Marshal never emits
// newlines, so a single data: line suffices.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// handleEvents streams the run's lifecycle over SSE: an initial status
// event, then every process telemetry event while the run executes
// (the feed is process-global, so overlapping runs see each other's
// simulation events — the run id discriminates request lifecycle
// events), and a final done event carrying the completed status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(r.PathValue("id"))
	if ru == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown run id"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)

	writeSSE(w, "status", ru.snapshot())
	fl.Flush()
	for {
		select {
		case ev := <-ch:
			writeSSE(w, "telemetry", ev)
			fl.Flush()
		case <-ru.done:
			// Drain what the feed already queued, then close out.
			for {
				select {
				case ev := <-ch:
					writeSSE(w, "telemetry", ev)
				default:
					writeSSE(w, "done", ru.snapshot())
					fl.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}
