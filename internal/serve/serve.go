// Package serve implements the dmpserve daemon: simulation as a
// service over HTTP/JSON. A Server owns the admission controller
// (internal/sched.Admitter) and, when configured with a store, installs
// the persistent content-addressed result store (internal/store) as the
// backing of the process-wide result cache — every simulation any
// request triggers lands on disk, and any later request (or daemon
// restart) for the same (workload bytes, config, scale, checker) key is
// a read, not a simulation.
//
// Endpoints:
//
//	POST /v1/runs             one benchmark under one machine config
//	POST /v1/experiments      paper tables/figures by experiment id
//	GET  /v1/runs/{id}        request status (and result when done)
//	GET  /v1/runs/{id}/events live telemetry feed for the run (SSE)
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz, /readyz    liveness / readiness
//
// POST endpoints accept ?wait=1 to block until the result is ready
// (the CLI client uses this) and answer 429 with a Retry-After header
// when the admission queues are full. Clients are distinguished for
// queue fairness by the X-DMP-Client header, falling back to the
// remote address.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dmp/internal/core"
	"dmp/internal/exp"
	"dmp/internal/sched"
	"dmp/internal/store"
	"dmp/internal/telemetry"
	"dmp/internal/workload"
)

var (
	mRequests = telemetry.NewCounter("dmp_serve_requests_total",
		"HTTP simulation requests accepted (runs + experiments)")
	mFailed = telemetry.NewCounter("dmp_serve_requests_failed_total",
		"accepted requests that finished with an error")
	mSSEClients = telemetry.NewGauge("dmp_serve_sse_clients",
		"server-sent-event subscribers currently connected")
	mSSEDropped = telemetry.NewCounter("dmp_serve_sse_dropped_total",
		"telemetry events dropped on slow SSE subscribers")
)

// Config parameterizes a Server.
type Config struct {
	// Store, when non-nil, persists every computed result and serves
	// warm-store hits without simulating. It is installed as the backing
	// of the process-wide result cache for the Server's lifetime
	// (removed again by Close).
	Store *store.Store
	// Parallel bounds simulation workers, as exp.Options.Parallel
	// (default NumCPU; the first simulation fixes the process pool).
	Parallel int
	// Admit bounds concurrently executing and queued requests.
	Admit sched.AdmitOptions
	// Span, when non-nil, parents one async child span per accepted
	// request.
	Span *telemetry.Span
}

// Server is the dmpserve HTTP handler plus its request registry and
// admission controller. Create with New, serve with any http.Server,
// release with Close.
type Server struct {
	cfg Config
	adm *sched.Admitter
	hub *hub
	mux *http.ServeMux

	mu     sync.Mutex
	runs   map[string]*run
	nextID uint64
	closed bool
}

// New builds a Server and, when cfg.Store is set, installs it behind
// the process-wide result cache. The active telemetry feed (if any) is
// bridged to the SSE hub.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, adm: sched.NewAdmitter(cfg.Admit), hub: newHub(), runs: make(map[string]*run)}
	if cfg.Store != nil {
		exp.ResultCache().SetBacking(newStoreBacking(cfg.Store))
	}
	telemetry.Active().Feed().Subscribe(s.hub.publish)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRun)
	mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops admitting, drains requests already accepted, and
// uninstalls the backing store. Subsequent POSTs answer 429.
func (s *Server) Close() {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if wasClosed {
		return
	}
	s.adm.Stop()
	if s.cfg.Store != nil {
		exp.ResultCache().SetBacking(nil)
	}
}

// --- request / response types ---

// RunRequest asks for one benchmark under one machine configuration.
type RunRequest struct {
	// Bench is a workload name (dmpsim -list).
	Bench string `json:"bench"`
	// Mode selects the machine: baseline (default), perfect, dmp, dhp,
	// dualpath, or enhanced — the same vocabulary as dmpsim -mode.
	Mode string `json:"mode,omitempty"`
	// CFMSource overrides the merge-point source (annotated, dynamic,
	// hybrid).
	CFMSource string `json:"cfm_source,omitempty"`
	// Scale is the workload scale factor (default 3).
	Scale int `json:"scale,omitempty"`
	// Check enables the golden-model retirement checker (default true).
	Check *bool `json:"check,omitempty"`
	// Loops runs the loop-marked annotation variant.
	Loops bool `json:"loops,omitempty"`
}

// ExperimentsRequest asks for paper tables/figures by experiment id
// ("all" expands to every id in paper order).
type ExperimentsRequest struct {
	IDs        []string `json:"ids"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	Scale      int      `json:"scale,omitempty"`
	Check      *bool    `json:"check,omitempty"`
}

// TableResult is one experiment's rendered table (or its error).
type TableResult struct {
	ID    string `json:"id"`
	Text  string `json:"text,omitempty"`
	Error string `json:"error,omitempty"`
}

// CacheDelta reports what one request cost the scheduler: Simulated
// counts simulations actually executed, StoreHits results loaded from
// the persistent store, Reused in-memory cache hits. Concurrent
// requests share one cache, so deltas attribute overlapping work to
// whichever request observed it complete.
type CacheDelta struct {
	Reused    uint64 `json:"reused"`
	StoreHits uint64 `json:"store_hits"`
	Simulated uint64 `json:"simulated"`
}

// RunStatus is the wire representation of one accepted request.
type RunStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`  // "run" | "experiments"
	State string `json:"state"` // queued | running | done | failed
	Error string `json:"error,omitempty"`
	// Stats is the simulation result for kind "run".
	Stats *core.Stats `json:"stats,omitempty"`
	// Tables holds the rendered tables for kind "experiments", in
	// requested order.
	Tables         []TableResult `json:"tables,omitempty"`
	Counts         *CacheDelta   `json:"counts,omitempty"`
	ElapsedSeconds float64       `json:"elapsed_seconds,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// --- run registry ---

type run struct {
	mu   sync.Mutex
	st   RunStatus
	done chan struct{}
}

func (r *run) snapshot() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

func (r *run) update(mut func(*RunStatus)) {
	r.mu.Lock()
	mut(&r.st)
	r.mu.Unlock()
}

func (s *Server) newRun(kind string) *run {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("r%06d", s.nextID)
	ru := &run{st: RunStatus{ID: id, Kind: kind, State: "queued"}, done: make(chan struct{})}
	s.runs[id] = ru
	s.mu.Unlock()
	return ru
}

func (s *Server) lookup(id string) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

func (s *Server) dropRun(id string) {
	s.mu.Lock()
	delete(s.runs, id)
	s.mu.Unlock()
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

// clientID distinguishes clients for queue fairness: an explicit
// X-DMP-Client header, else the connection's host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-DMP-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// configFor maps the request's mode vocabulary onto a machine
// configuration, mirroring dmpsim -mode / -cfm-source.
func configFor(mode, cfmSource string) (core.Config, error) {
	cfg := core.DefaultConfig()
	switch mode {
	case "", "baseline":
	case "perfect":
		cfg.Mode = core.ModePerfect
	case "dmp":
		cfg.Mode = core.ModeDMP
	case "dhp":
		cfg.Mode = core.ModeDHP
	case "dualpath":
		cfg.Mode = core.ModeDualPath
	case "enhanced":
		cfg = core.EnhancedDMPConfig()
	default:
		return cfg, fmt.Errorf("unknown mode %q (want baseline, perfect, dmp, dhp, dualpath or enhanced)", mode)
	}
	switch cfmSource {
	case "":
	case "annotated", "dynamic", "hybrid":
		cfg.CFMSource = cfmSource
	default:
		return cfg, fmt.Errorf("unknown cfm_source %q (want annotated, dynamic or hybrid)", cfmSource)
	}
	return cfg, nil
}

func (s *Server) options(scale int, check *bool) exp.Options {
	o := exp.DefaultOptions()
	o.Scale = scale
	o.Check = check == nil || *check
	o.Parallel = s.cfg.Parallel
	return o
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeStrict(r, &req); err != nil {
		badRequest(w, "bad request body: %v", err)
		return
	}
	if req.Bench == "" {
		badRequest(w, "bench is required")
		return
	}
	if _, err := workload.ByName(req.Bench); err != nil {
		badRequest(w, "%v", err)
		return
	}
	cfg, err := configFor(req.Mode, req.CFMSource)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	o := s.options(req.Scale, req.Check)
	s.submit(w, r, "run", func(sp *telemetry.Span) (*RunStatus, error) {
		ro := o
		ro.Span = sp
		st, err := exp.RunOne(req.Bench, cfg, ro, req.Loops)
		if err != nil {
			return nil, err
		}
		// Hand out a clone: the cached pointer is frozen and shared.
		return &RunStatus{Stats: st.Clone()}, nil
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var req ExperimentsRequest
	if err := decodeStrict(r, &req); err != nil {
		badRequest(w, "bad request body: %v", err)
		return
	}
	ids := req.IDs
	if len(ids) == 1 && ids[0] == "all" {
		ids = exp.IDs()
	}
	if len(ids) == 0 {
		badRequest(w, "ids is required (experiment ids or [\"all\"]; known: %s)", strings.Join(exp.IDs(), " "))
		return
	}
	for _, id := range ids {
		if exp.All[id] == nil {
			badRequest(w, "unknown experiment %q (known: %s)", id, strings.Join(exp.IDs(), " "))
			return
		}
	}
	for _, b := range req.Benchmarks {
		if _, err := workload.ByName(b); err != nil {
			badRequest(w, "%v", err)
			return
		}
	}
	o := s.options(req.Scale, req.Check)
	o.Benchmarks = req.Benchmarks
	s.submit(w, r, "experiments", func(sp *telemetry.Span) (*RunStatus, error) {
		tables, err := runExperiments(ids, o, sp)
		return &RunStatus{Tables: tables}, err
	})
}

// submit runs the admission + registry + wait/async dance shared by the
// POST endpoints. fn returns the result fields to merge into the final
// status (Stats or Tables); its error marks the run failed.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind string, fn func(*telemetry.Span) (*RunStatus, error)) {
	ru := s.newRun(kind)
	id := ru.snapshot().ID
	err := s.adm.Submit(clientID(r), func() {
		s.execute(ru, fn)
	})
	if err != nil {
		s.dropRun(id)
		retry := int(math.Ceil(s.adm.RetryAfter().Seconds()))
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	}
	mRequests.Inc()
	if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
		select {
		case <-ru.done:
			writeJSON(w, http.StatusOK, ru.snapshot())
		case <-r.Context().Done():
			// Client went away; the run finishes anyway and stays
			// queryable by id.
		}
		return
	}
	writeJSON(w, http.StatusAccepted, ru.snapshot())
}

// execute runs one admitted request: status transitions, the telemetry
// span and feed events, and the scheduler-counter delta the response
// reports.
func (s *Server) execute(ru *run, fn func(*telemetry.Span) (*RunStatus, error)) {
	id := ru.snapshot().ID
	sp := s.cfg.Span.ChildAsync(id, "serve")
	start := time.Now()
	before := exp.ResultCache().Counts()
	ru.update(func(st *RunStatus) { st.State = "running" })
	telemetry.Emit(telemetry.Event{Kind: "request", Name: id, Msg: "start"})
	res, err := fn(sp)
	after := exp.ResultCache().Counts()
	elapsed := time.Since(start).Seconds()
	sp.End()
	ru.update(func(st *RunStatus) {
		st.ElapsedSeconds = elapsed
		st.Counts = &CacheDelta{
			Reused:    after.Hits - before.Hits,
			StoreHits: after.StoreHits - before.StoreHits,
			Simulated: after.Computed - before.Computed,
		}
		if res != nil {
			st.Stats = res.Stats
			st.Tables = res.Tables
		}
		if err != nil {
			st.State = "failed"
			st.Error = err.Error()
		} else {
			st.State = "done"
		}
	})
	if err != nil {
		mFailed.Inc()
	}
	telemetry.Emit(telemetry.Event{Kind: "request", Name: id, Msg: "done", V: elapsed})
	close(ru.done)
}

// runExperiments mirrors dmpexp's concurrent launch: every experiment
// generates at once (the shared result cache and worker pool dedupe and
// bound the simulations), tables collect in requested order, and a
// failing experiment fails the run without discarding the tables that
// succeeded.
func runExperiments(ids []string, o exp.Options, sp *telemetry.Span) ([]TableResult, error) {
	type gen struct {
		table *exp.Table
		err   error
		done  chan struct{}
	}
	gens := make([]*gen, len(ids))
	for i, id := range ids {
		g := &gen{done: make(chan struct{})}
		gens[i] = g
		go func(id string, g *gen) {
			defer close(g.done)
			eo := o
			esp := sp.ChildAsync(id, "exp")
			eo.Span = esp
			telemetry.Emit(telemetry.Event{Kind: "experiment", Name: id, Msg: "start"})
			g.table, g.err = exp.All[id](eo)
			esp.End()
			telemetry.Emit(telemetry.Event{Kind: "experiment", Name: id, Msg: "done"})
		}(id, g)
	}
	tables := make([]TableResult, len(ids))
	var failed []string
	for i, id := range ids {
		g := gens[i]
		<-g.done
		tables[i] = TableResult{ID: id}
		if g.err != nil {
			tables[i].Error = g.err.Error()
			failed = append(failed, fmt.Sprintf("%s: %v", id, g.err))
			continue
		}
		tables[i].Text = g.table.String()
	}
	if len(failed) > 0 {
		return tables, fmt.Errorf("%s", strings.Join(failed, "; "))
	}
	return tables, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(r.PathValue("id"))
	if ru == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown run id"})
		return
	}
	writeJSON(w, http.StatusOK, ru.snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.DefaultRegistry().Snapshot().WritePrometheus(w)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "shutting down")
		return
	}
	fmt.Fprintln(w, "ready")
}
