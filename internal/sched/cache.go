package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dmp/internal/core"
	"dmp/internal/telemetry"
)

// Key identifies one unique simulation: the tuple the result cache and
// the persistent store are both keyed by. Cfg must already be
// canonicalized (core.Config.Canonical) so that configurations that
// cannot change the result share one entry; Check rides outside the
// config because Canonical deliberately folds CheckRetirement away.
type Key struct {
	Bench string
	Scale int
	Check bool // golden-model retirement checker on
	Loops bool // loop-marked annotation variant (Section 2.7.4)
	Cfg   core.Config
}

// Label names the simulation for spans and feed events: benchmark,
// machine mode, and the key variants that change what actually runs.
// It allocates; call it only with telemetry active.
func (k Key) Label() string {
	l := fmt.Sprintf("%s/%v", k.Bench, k.Cfg.Mode)
	if k.Cfg.CFMSource != "" && k.Cfg.CFMSource != "annotated" {
		l += "/" + k.Cfg.CFMSource
	}
	if k.Loops {
		l += "/loops"
	}
	if k.Cfg.SampleMode {
		l += "/sampled"
	}
	return l
}

// Backing is a persistent second-level store behind the in-memory
// cache: consulted on every memory miss, written through after every
// successful computation. Implementations must be safe for concurrent
// use and must never return partially written Stats — a corrupt or
// doubtful entry degrades to (nil, false) and the cache recomputes
// (internal/store implements exactly that contract over a directory).
type Backing interface {
	Load(Key) (*core.Stats, bool)
	Store(Key, *core.Stats)
}

// entry is a once-run cache slot.
type entry struct {
	once   sync.Once
	st     *core.Stats
	frozen core.Stats // snapshot taken at publication; guards the read-only invariant
	err    error
}

// Counts is a snapshot of the cache's request accounting.
type Counts struct {
	// Hits are requests served from a completed or in-flight in-memory
	// entry (the singleflight case included).
	Hits uint64
	// Misses are requests that found no in-memory entry; each miss
	// either loaded from the backing store or computed.
	Misses uint64
	// StoreHits are misses served from the backing store without
	// running a simulation.
	StoreHits uint64
	// Computed are simulations actually executed.
	Computed uint64
}

// Job describes how to compute a missing entry: the pool to take a
// worker slot from, the telemetry parent span, and the computation
// itself (called with the simulation's own async child span, or nil
// when telemetry is off).
type Job struct {
	Pool *Pool
	Span *telemetry.Span
	Run  func(sp *telemetry.Span) (*core.Stats, error)
}

// Cache is a process-wide singleflight result cache. Results published
// into it are FROZEN: every caller shares one *core.Stats pointer, so a
// mutation by any of them would silently corrupt every other caller's
// numbers. Callers that need to write (accumulate, rescale) must work
// on a core.Stats.Clone(). The cache keeps a private snapshot of each
// result and compares on every hit; a mutated entry is a programming
// error and panics with the offending key rather than returning
// poisoned numbers.
type Cache struct {
	entries sync.Map // Key -> *entry
	backing atomic.Pointer[backingBox]

	hits      atomic.Uint64
	misses    atomic.Uint64
	storeHits atomic.Uint64
	computed  atomic.Uint64
}

// backingBox wraps the interface so it can live in an atomic.Pointer.
type backingBox struct{ b Backing }

// NewCache returns an empty memory-only cache.
func NewCache() *Cache { return &Cache{} }

// SetBacking installs (or with nil removes) the persistent second-level
// store. Entries already in memory are unaffected; subsequent misses
// consult and write through it. Safe to call concurrently with Do.
func (c *Cache) SetBacking(b Backing) {
	if b == nil {
		c.backing.Store(nil)
		return
	}
	c.backing.Store(&backingBox{b: b})
}

func (c *Cache) getBacking() Backing {
	bb := c.backing.Load()
	if bb == nil {
		return nil
	}
	return bb.b
}

// Do returns the cached result for key, computing it via job on first
// request. Concurrent requests for the same key block on one execution
// (without holding a worker slot — duplicate requests never occupy a
// worker). The returned Stats are shared and frozen: Clone before
// mutating.
func (c *Cache) Do(key Key, job Job) (*core.Stats, error) {
	v, _ := c.entries.LoadOrStore(key, &entry{})
	e := v.(*entry)
	hit := true
	t0 := time.Now() //dmp:allow nondeterminism -- host telemetry only; never reaches Stats or tables
	e.once.Do(func() {
		hit = false
		c.misses.Add(1)
		mCacheMisses.Inc()
		tel := telemetry.Active()
		var label string
		if tel != nil {
			label = key.Label()
		}
		if b := c.getBacking(); b != nil {
			if st, ok := b.Load(key); ok {
				// A store hit publishes without taking a worker slot:
				// the result is already computed, so the pool stays
				// free for simulations that actually need it.
				c.storeHits.Add(1)
				mStoreHits.Inc()
				e.st, e.frozen = st, *st
				if tel != nil {
					tel.Feed().Emit(telemetry.Event{Kind: "simulation", Name: label, Msg: "store-hit"})
				}
				return
			}
			mStoreMisses.Inc()
		}
		c.computed.Add(1)
		var sp *telemetry.Span
		if tel != nil {
			tel.Feed().Emit(telemetry.Event{Kind: "simulation", Name: label, Msg: "miss"})
			// The simulation gets its own trace lane: pooled simulations
			// from one experiment overlap each other and their parent.
			sp = job.Span.ChildAsync(label, "sched")
		}
		pool := job.Pool
		if pool == nil {
			pool = Shared(0)
		}
		pool.Acquire()
		mSlotWait.Observe(time.Since(t0).Seconds()) //dmp:allow nondeterminism -- host telemetry only
		defer pool.Release()
		e.st, e.err = job.Run(sp)
		if e.err == nil {
			e.frozen = *e.st
		}
		sp.End()
		elapsed := time.Since(t0).Seconds() //dmp:allow nondeterminism -- host telemetry only
		mSimSeconds.Observe(elapsed)
		if tel != nil {
			tel.Feed().Emit(telemetry.Event{Kind: "simulation", Name: label, Msg: "done", V: elapsed})
		}
		if e.err == nil {
			if b := c.getBacking(); b != nil {
				b.Store(key, e.st)
			}
		}
	})
	if hit {
		c.hits.Add(1)
		mCacheHits.Inc()
		// Covers both flavors of hit: an instant lookup of a completed
		// entry (~0) and blocking on another request's in-flight
		// simulation (the singleflight case the histogram exists for).
		mSingleflightWait.Observe(time.Since(t0).Seconds()) //dmp:allow nondeterminism -- host telemetry only
		if tel := telemetry.Active(); tel != nil {
			tel.Feed().Emit(telemetry.Event{Kind: "simulation", Name: key.Label(), Msg: "hit"})
		}
		if e.err == nil && *e.st != e.frozen {
			panic(fmt.Sprintf("sched: cached Stats for %s/%v (scale %d) were mutated; cached results are frozen — use Stats.Clone",
				key.Bench, key.Cfg.Mode, key.Scale))
		}
	}
	return e.st, e.err
}

// Counts returns the cache's request accounting since construction or
// the last Reset.
func (c *Cache) Counts() Counts {
	return Counts{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		StoreHits: c.storeHits.Load(),
		Computed:  c.computed.Load(),
	}
}

// Reset drops every in-memory entry and zeroes the counters. The
// backing store, if any, stays installed and keeps its contents — a
// reset process recomputes nothing that persisted.
func (c *Cache) Reset() {
	c.entries.Range(func(k, _ any) bool {
		c.entries.Delete(k)
		return true
	})
	c.hits.Store(0)
	c.misses.Store(0)
	c.storeHits.Store(0)
	c.computed.Store(0)
}
