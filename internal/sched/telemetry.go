package sched

import "dmp/internal/telemetry"

// Host-side telemetry for the scheduler: result cache, backing store
// traffic, worker pool and admission control. The metrics are always-on
// atomics (an add is cheaper than a branch-and-load, and Cache.Do runs
// per simulation request, not per simulated cycle); spans and feed
// events, which allocate and write, are emitted only when a
// telemetry.Set is active. Nothing here reads or writes simulator
// state, which is what keeps the golden tables byte-identical with
// telemetry attached (the no-perturbation contract, pinned by
// TestTelemetryDoesNotPerturb).
var (
	mCacheHits = telemetry.NewCounter("dmp_sched_cache_hits_total",
		"result-cache requests served from a completed or in-flight simulation")
	mCacheMisses = telemetry.NewCounter("dmp_sched_cache_misses_total",
		"result-cache requests that found no in-memory entry")
	mStoreHits = telemetry.NewCounter("dmp_sched_store_hits_total",
		"cache misses served from the persistent backing store")
	mStoreMisses = telemetry.NewCounter("dmp_sched_store_misses_total",
		"cache misses the backing store also missed (a simulation ran)")
	mSingleflightWait = telemetry.NewHistogram("dmp_sched_singleflight_wait_seconds",
		"time a cache hit spent blocked on another request's in-flight simulation",
		telemetry.SecondsBuckets())
	mSlotWait = telemetry.NewHistogram("dmp_sched_slot_wait_seconds",
		"time a simulation spent queued for a global worker-pool slot",
		telemetry.SecondsBuckets())
	mSimSeconds = telemetry.NewHistogram("dmp_sched_simulation_seconds",
		"wall time of each uncached simulation, slot acquisition included",
		telemetry.SecondsBuckets())
	mPoolQueued = telemetry.NewGauge("dmp_sched_pool_queued",
		"simulations currently waiting for a worker-pool slot")
	mPoolBusy = telemetry.NewGauge("dmp_sched_pool_busy",
		"worker-pool slots currently held via Acquire/TryAcquire")

	mAdmitted = telemetry.NewCounter("dmp_sched_admitted_total",
		"requests accepted into the admission queue")
	mShed = telemetry.NewCounter("dmp_sched_shed_total",
		"requests refused at admission (overload or shutdown)")
	mQueueDepth = telemetry.NewGauge("dmp_sched_queue_depth",
		"requests waiting in the admission queue")
	mRunning = telemetry.NewGauge("dmp_sched_requests_running",
		"admitted requests currently dispatched")
)
