package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dmp/internal/core"
	"dmp/internal/telemetry"
)

func testKey(bench string) Key {
	return Key{Bench: bench, Scale: 1, Check: true, Cfg: core.DefaultConfig().Canonical()}
}

// fakeBacking is an in-memory Backing with call accounting.
type fakeBacking struct {
	mu     sync.Mutex
	m      map[Key]core.Stats
	loads  atomic.Uint64
	stores atomic.Uint64
}

func newFakeBacking() *fakeBacking { return &fakeBacking{m: map[Key]core.Stats{}} }

func (f *fakeBacking) Load(k Key) (*core.Stats, bool) {
	f.loads.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.m[k]
	if !ok {
		return nil, false
	}
	cp := st
	return &cp, true
}

func (f *fakeBacking) Store(k Key, st *core.Stats) {
	f.stores.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m[k] = *st
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	pool := NewPool(4)
	var runs atomic.Uint64
	const callers = 16
	var wg sync.WaitGroup
	stats := make([]*core.Stats, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.Do(testKey("mcf"), Job{Pool: pool, Run: func(*telemetry.Span) (*core.Stats, error) {
				runs.Add(1)
				return &core.Stats{RetiredInsts: 42, Cycles: 7}, nil
			}})
			if err != nil {
				t.Error(err)
				return
			}
			stats[i] = st
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if stats[i] != stats[0] {
			t.Fatalf("caller %d got a different pointer: results must be shared", i)
		}
	}
	cn := c.Counts()
	if cn.Computed != 1 || cn.Misses != 1 || cn.Hits != callers-1 {
		t.Fatalf("counts = %+v, want 1 computed, 1 miss, %d hits", cn, callers-1)
	}
}

func TestCacheErrorSharedNotStored(t *testing.T) {
	c := NewCache()
	b := newFakeBacking()
	c.SetBacking(b)
	boom := errors.New("boom")
	job := Job{Pool: NewPool(1), Run: func(*telemetry.Span) (*core.Stats, error) { return nil, boom }}
	if _, err := c.Do(testKey("gcc"), job); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := c.Do(testKey("gcc"), job); !errors.Is(err, boom) {
		t.Fatalf("second err = %v, want cached boom", err)
	}
	if got := b.stores.Load(); got != 0 {
		t.Fatalf("failed computation was written to the backing store (%d stores)", got)
	}
}

func TestCacheBackingStoreHit(t *testing.T) {
	b := newFakeBacking()
	pool := NewPool(2)
	want := &core.Stats{RetiredInsts: 99, Cycles: 3}

	c1 := NewCache()
	c1.SetBacking(b)
	var runs atomic.Uint64
	run := func(*telemetry.Span) (*core.Stats, error) { runs.Add(1); return want.Clone(), nil }
	if _, err := c1.Do(testKey("mcf"), Job{Pool: pool, Run: run}); err != nil {
		t.Fatal(err)
	}
	if b.stores.Load() != 1 {
		t.Fatalf("stores = %d, want write-through of the computed result", b.stores.Load())
	}

	// A fresh cache over the same backing (a restarted process) serves
	// the key from the store without recomputing.
	c2 := NewCache()
	c2.SetBacking(b)
	st, err := c2.Do(testKey("mcf"), Job{Pool: pool, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if *st != *want {
		t.Fatalf("store-served stats = %+v, want %+v", st, want)
	}
	if runs.Load() != 1 {
		t.Fatalf("computation ran %d times across both caches, want 1", runs.Load())
	}
	cn := c2.Counts()
	if cn.StoreHits != 1 || cn.Computed != 0 {
		t.Fatalf("fresh-cache counts = %+v, want 1 store hit, 0 computed", cn)
	}
}

func TestCacheFrozenGuard(t *testing.T) {
	c := NewCache()
	job := Job{Pool: NewPool(1), Run: func(*telemetry.Span) (*core.Stats, error) {
		return &core.Stats{RetiredInsts: 5}, nil
	}}
	st, err := c.Do(testKey("vpr"), job)
	if err != nil {
		t.Fatal(err)
	}
	st.RetiredInsts++ // the forbidden mutation
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mutated cached Stats did not panic on the next hit")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "frozen") || !strings.Contains(msg, "vpr") {
			t.Fatalf("panic %v should name the frozen contract and the offending key", r)
		}
	}()
	c.Do(testKey("vpr"), job)
}

func TestCacheReset(t *testing.T) {
	c := NewCache()
	var runs atomic.Uint64
	job := Job{Pool: NewPool(1), Run: func(*telemetry.Span) (*core.Stats, error) {
		runs.Add(1)
		return &core.Stats{}, nil
	}}
	c.Do(testKey("gap"), job)
	c.Reset()
	if cn := c.Counts(); cn != (Counts{}) {
		t.Fatalf("counts after Reset = %+v, want zero", cn)
	}
	c.Do(testKey("gap"), job)
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want recompute after Reset", runs.Load())
	}
}

func TestPoolBounds(t *testing.T) {
	p := NewPool(2)
	p.Acquire()
	p.Acquire()
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full pool")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("TryAcquire failed with a free slot")
	}
	p.Release()
	p.Release()
	if p.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", p.Cap())
	}
}

func TestAdmitterRoundRobinFairness(t *testing.T) {
	a := NewAdmitter(AdmitOptions{MaxConcurrent: 1, MaxQueuedPerClient: 16, MaxQueuedTotal: 64})
	defer a.Stop()

	// Hold the single slot with a gate job so the queues build up
	// deterministically, then release and observe dispatch order.
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := a.Submit("warm", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []string
	record := func(tag string) func() {
		return func() {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	// Client A floods 6 requests before B submits 2: round-robin must
	// interleave B's work instead of running it last.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		if err := a.Submit("a", func() { record("a")(); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		if err := a.Submit("b", func() { record("b")(); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	go func() { wg.Wait(); close(done) }()
	close(gate)
	<-done

	got := strings.Join(order, "")
	// Strict alternation while both queues are non-empty: a b a b, then
	// the rest of a's backlog.
	if want := "ababaaaa"; got != want {
		t.Fatalf("dispatch order %q, want round-robin %q", got, want)
	}
}

func TestAdmitterShedsOnOverload(t *testing.T) {
	a := NewAdmitter(AdmitOptions{MaxConcurrent: 1, MaxQueuedPerClient: 2, MaxQueuedTotal: 3})
	defer a.Stop()
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := a.Submit("x", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	// x may queue two more; the third is shed by the per-client bound.
	for i := 0; i < 2; i++ {
		if err := a.Submit("x", func() {}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := a.Submit("x", func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("per-client overflow: err = %v, want ErrOverloaded", err)
	}
	// One more from y fills MaxQueuedTotal; a second y is shed by the
	// total bound even though y's own queue has room.
	if err := a.Submit("y", func() {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit("y", func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("total overflow: err = %v, want ErrOverloaded", err)
	}
	if ra := a.RetryAfter(); ra <= 0 {
		t.Fatalf("RetryAfter = %v, want positive", ra)
	}
	close(gate)
}

func TestAdmitterStopRefusesAndDrains(t *testing.T) {
	a := NewAdmitter(AdmitOptions{MaxConcurrent: 2})
	var ran atomic.Uint64
	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Submit(fmt.Sprintf("c%d", i%3), func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	a.Stop()
	if got := ran.Load(); got != n {
		t.Fatalf("Stop drained %d of %d admitted jobs", got, n)
	}
	if err := a.Submit("late", func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit after Stop: err = %v, want ErrOverloaded", err)
	}
	a.Stop() // idempotent
}
