// Package sched is the process-wide simulation scheduler: a bounded
// worker pool, a singleflight result cache with an optional persistent
// backing store, and admission control for many concurrent clients.
//
// It began life inside internal/exp (PR 2's result cache and global
// worker pool) and was extracted so the same machinery serves both the
// batch CLI (memory-only cache, one implicit client) and the dmpserve
// daemon (store-backed cache, fair queueing across remote clients).
// internal/exp remains the only place that knows how to *run* a
// simulation; this package only decides *whether* and *when* one runs.
//
// The three pieces compose independently:
//
//   - Pool: a fixed set of worker slots. Shared returns the
//     process-global pool; the first caller fixes its capacity, so a
//     process-level -parallel cap holds across every concurrently
//     generated experiment instead of being oversubscribed per suite.
//   - Cache: requests keyed by Key dedupe to one execution
//     (singleflight); completed results are shared frozen *core.Stats.
//     A Backing store, when installed, is consulted before computing
//     and written through after, which is what makes results survive
//     the process (internal/store implements it over a directory).
//   - Admitter: bounded per-client FIFO queues drained round-robin by
//     a fixed number of request slots. Overflow is refused immediately
//     (ErrOverloaded -> HTTP 429) with a Retry-After estimate derived
//     from observed request durations.
//
// Everything here is host-side machinery: nothing reads or writes
// simulator state, so attached telemetry and the backing store can
// never perturb experiment tables (the byte-identical golden contract).
package sched

import (
	"runtime"
	"sync"
)

// Pool is a bounded set of worker slots. Acquire blocks until a slot is
// free; TryAcquire never blocks. The zero value is unusable — construct
// with NewPool or Shared.
type Pool struct {
	ch chan struct{}
}

// NewPool returns a pool with n slots (n <= 0 means NumCPU).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{ch: make(chan struct{}, n)}
}

// Acquire blocks until a worker slot is free and takes it.
func (p *Pool) Acquire() {
	mPoolQueued.Add(1)
	p.ch <- struct{}{}
	mPoolQueued.Add(-1)
	mPoolBusy.Add(1)
}

// TryAcquire takes a slot if one is free without blocking.
func (p *Pool) TryAcquire() bool {
	select {
	case p.ch <- struct{}{}:
		mPoolBusy.Add(1)
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or a successful TryAcquire.
func (p *Pool) Release() {
	mPoolBusy.Add(-1)
	<-p.ch
}

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.ch) }

// Chan exposes the underlying slot semaphore for packages that hand it
// across API boundaries as a plain channel (sample.Options.Slots: the
// streamed interval pipeline try-acquires slots with a raw select).
// Sends take a slot, receives release one; raw channel users bypass the
// pool gauges, which therefore undercount — they are host telemetry,
// not accounting.
func (p *Pool) Chan() chan struct{} { return p.ch }

// --- process-global pool ---

var (
	sharedMu sync.Mutex
	shared   *Pool
)

// Shared returns the process-wide worker pool, creating it on first use
// with capacity n (<= 0 means NumCPU). The first caller fixes the
// capacity for the life of the process: the parallelism cap is global,
// not per-suite, precisely so that concurrently generated experiments
// cannot oversubscribe the host.
func Shared(n int) *Pool {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if shared == nil {
		shared = NewPool(n)
	}
	return shared
}
