package sched

import (
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned by Admitter.Submit when the request cannot
// be queued: the client's queue or the total queue is full, or the
// admitter has been stopped. The daemon maps it to HTTP 429 with a
// Retry-After header from Admitter.RetryAfter.
var ErrOverloaded = errors.New("sched: overloaded, retry later")

// AdmitOptions bounds the Admitter. Zero values take the defaults.
type AdmitOptions struct {
	// MaxConcurrent is the number of requests dispatched at once
	// (default 2). Each request typically fans out internally onto the
	// worker pool, so this bounds requests, not simulations.
	MaxConcurrent int
	// MaxQueuedPerClient bounds one client's waiting requests (default
	// 8): one greedy client fills its own queue, not the daemon's.
	MaxQueuedPerClient int
	// MaxQueuedTotal bounds waiting requests across all clients
	// (default 64).
	MaxQueuedTotal int
}

func (o AdmitOptions) withDefaults() AdmitOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.MaxQueuedPerClient <= 0 {
		o.MaxQueuedPerClient = 8
	}
	if o.MaxQueuedTotal <= 0 {
		o.MaxQueuedTotal = 64
	}
	return o
}

// Admitter is the daemon's admission controller: bounded per-client
// FIFO queues drained round-robin by MaxConcurrent request slots.
// Fairness is strict alternation — after a client's request dispatches,
// the client goes to the back of the ring — so a client submitting 100
// requests cannot starve one submitting 2. Overflow is refused at
// Submit time rather than queued indefinitely.
type Admitter struct {
	opts AdmitOptions

	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]func()
	ring    []string // clients with queued work, round-robin order
	queued  int
	running int
	stopped bool
	// ewmaSecs tracks recent request durations (exponentially weighted)
	// for the Retry-After estimate. Host wall-clock only.
	ewmaSecs float64

	jobs sync.WaitGroup
	loop sync.WaitGroup
}

// NewAdmitter starts an admitter and its dispatcher goroutine. Stop it
// with Stop.
func NewAdmitter(o AdmitOptions) *Admitter {
	a := &Admitter{opts: o.withDefaults(), queues: map[string][]func(){}}
	a.cond = sync.NewCond(&a.mu)
	a.loop.Add(1)
	go a.dispatch()
	return a
}

// Submit enqueues job for client, returning ErrOverloaded if the
// client's queue or the total queue is full (or the admitter is
// stopped). A nil error means the job will run exactly once.
func (a *Admitter) Submit(client string, job func()) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped || a.queued >= a.opts.MaxQueuedTotal || len(a.queues[client]) >= a.opts.MaxQueuedPerClient {
		mShed.Inc()
		return ErrOverloaded
	}
	if len(a.queues[client]) == 0 {
		a.ring = append(a.ring, client)
	}
	a.queues[client] = append(a.queues[client], job)
	a.queued++
	mQueueDepth.Set(int64(a.queued))
	mAdmitted.Inc()
	a.jobs.Add(1)
	a.cond.Signal()
	return nil
}

// dispatch pops one request at a time, round-robin across clients, and
// runs it on its own goroutine while respecting MaxConcurrent.
func (a *Admitter) dispatch() {
	defer a.loop.Done()
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		for {
			if a.stopped && a.queued == 0 {
				return
			}
			if a.queued > 0 && a.running < a.opts.MaxConcurrent {
				break
			}
			a.cond.Wait()
		}
		client := a.ring[0]
		q := a.queues[client]
		job := q[0]
		if len(q) == 1 {
			delete(a.queues, client)
			a.ring = a.ring[1:]
		} else {
			a.queues[client] = q[1:]
			// Back of the ring: strict alternation across clients.
			a.ring = append(a.ring[1:], client)
		}
		a.queued--
		a.running++
		mQueueDepth.Set(int64(a.queued))
		mRunning.Set(int64(a.running))
		go a.run(job)
	}
}

func (a *Admitter) run(job func()) {
	t0 := time.Now() //dmp:allow nondeterminism -- admission pacing (Retry-After) only; never reaches Stats
	defer func() {
		secs := time.Since(t0).Seconds() //dmp:allow nondeterminism -- admission pacing only
		a.mu.Lock()
		a.running--
		mRunning.Set(int64(a.running))
		if a.ewmaSecs == 0 {
			a.ewmaSecs = secs
		} else {
			a.ewmaSecs = 0.8*a.ewmaSecs + 0.2*secs
		}
		a.mu.Unlock()
		a.cond.Signal()
		a.jobs.Done()
	}()
	job()
}

// RetryAfter estimates when a refused client should try again: the
// current backlog (queued + running) paced at the observed per-request
// duration across MaxConcurrent slots, floored at one second.
func (a *Admitter) RetryAfter() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	avg := a.ewmaSecs
	if avg <= 0 {
		avg = 1
	}
	secs := avg * float64(a.queued+a.running) / float64(a.opts.MaxConcurrent)
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs * float64(time.Second))
}

// Queued returns the number of waiting requests.
func (a *Admitter) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// Running returns the number of dispatched, unfinished requests.
func (a *Admitter) Running() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running
}

// Stop refuses new submissions, drains the queue (already-admitted
// requests still run — Submit promised them), and waits for every
// dispatched job to finish. Idempotent.
func (a *Admitter) Stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
	a.cond.Broadcast()
	a.loop.Wait()
	a.jobs.Wait()
}
