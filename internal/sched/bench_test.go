package sched

import (
	"runtime"
	"testing"

	"dmp/internal/core"
	"dmp/internal/telemetry"
)

// BenchmarkCacheHit measures the in-memory hit path — the cost every
// deduplicated request pays: one sync.Map load, the frozen-snapshot
// integrity compare, and the counter/metric updates.
func BenchmarkCacheHit(b *testing.B) {
	c := NewCache()
	key := Key{Bench: "mcf", Scale: 1, Check: true, Cfg: core.EnhancedDMPConfig().Canonical()}
	st := &core.Stats{RetiredInsts: 1, Cycles: 2}
	pool := NewPool(1)
	if _, err := c.Do(key, Job{Pool: pool, Run: func(*telemetry.Span) (*core.Stats, error) { return st, nil }}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Do(key, Job{Pool: pool, Run: func(*telemetry.Span) (*core.Stats, error) {
			b.Fatal("hit path ran the job")
			return nil, nil
		}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitterShed measures the rejection path under a full
// queue — the cost of telling one more client to retry later while the
// daemon is saturated.
func BenchmarkAdmitterShed(b *testing.B) {
	a := NewAdmitter(AdmitOptions{MaxConcurrent: 1, MaxQueuedPerClient: 1, MaxQueuedTotal: 1})
	block := make(chan struct{})
	if err := a.Submit("bench", func() { <-block }); err != nil {
		b.Fatal(err)
	}
	// Fill the queue: wait for the blocker to occupy the slot, then
	// queue until submission sheds — one running, one queued, everything
	// after rejected.
	for a.Running() == 0 {
		runtime.Gosched()
	}
	for a.Submit("bench", func() {}) == nil {
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Submit("bench", func() {}); err == nil {
			b.Fatal("expected shed")
		}
	}
	b.StopTimer()
	close(block)
	a.Stop()
}
