package conf

import "testing"

// COW isolation pin: after Clone, updating either JRS copy must not leak
// into the other (mirrors core's TestSnapshotIsolatesWarmState at the
// component level).
func TestJRSCloneIsolation(t *testing.T) {
	j := NewJRS(DefaultJRSConfig())
	for i := 0; i < 20; i++ {
		j.Update(100, 0, true)
	}
	cl := j.Clone()
	j.Update(100, 0, false) // reset the original's counter only
	if cl.LowConfidence(100, 0) {
		t.Error("original's reset leaked into the clone")
	}
	for i := 0; i < 20; i++ {
		cl.Update(200, 0, true) // train a fresh branch in the clone only
	}
	if !j.LowConfidence(200, 0) {
		t.Error("clone's training leaked into the original")
	}
	if !j.LowConfidence(100, 0) {
		t.Error("original lost its own reset")
	}
}
