// Package conf implements branch-confidence estimators. The diverge-merge
// processor enters dynamic predication mode only for *low-confidence*
// diverge branches; the quality of the estimator directly controls how
// often predication overhead is paid for correctly predicted branches
// (exit cases 1, 3 and 5 in Table 1 of the paper).
//
// The baseline estimator is the JRS miss-distance counter estimator
// (Jacobsen, Rotenberg & Smith, MICRO 1996) at the paper's 1KB budget
// (Table 2); see DefaultJRSConfig for the history-length scale
// adaptation. A perfect estimator (low confidence exactly when the
// branch is actually mispredicted) bounds the potential, as in the
// diverge-perf-conf configuration.
package conf

import (
	"dmp/internal/bpred"
	"dmp/internal/cow"
)

// Estimator estimates confidence in a conditional branch prediction.
//
// LowConfidence is consulted at fetch time. Update trains the estimator
// at retirement with whether the prediction was correct.
type Estimator interface {
	LowConfidence(pc uint64, hist bpred.GHR) bool
	Update(pc uint64, hist bpred.GHR, correct bool)
	Name() string
}

// JRS is the Jacobsen-Rotenberg-Smith confidence estimator: a table of
// miss-distance counters (MDCs) indexed by PC xor global history. A
// correct prediction increments the counter saturating at max; an
// incorrect prediction resets it to zero. Confidence is high when the
// counter is at or above the confident threshold.
type JRS struct {
	table     cow.Flat[uint8]
	mask      uint64
	histBits  int
	max       uint8
	threshold uint8
}

// JRSConfig sizes a JRS estimator.
type JRSConfig struct {
	LogEntries int   // log2 of table entries
	HistBits   int   // history bits XORed into the index
	Max        uint8 // counter saturation value
	Threshold  uint8 // counter >= Threshold means high confidence
}

// DefaultJRSConfig is the paper's 1KB budget — 2K 4-bit counters (stored
// here one per byte) — with the history shortened from the paper's 12
// bits to 5. The shorter history is a simulation-scale adaptation: the
// runs here are ~10^5 instructions rather than the paper's ~10^8, and
// with 12 bits of history each (pc, history) context sees too few
// branches for the miss-distance counters to ever reach the confidence
// threshold, so the estimator would flag essentially every branch
// low-confidence forever. PaperJRSConfig preserves the published
// parameters for long runs and ablations.
func DefaultJRSConfig() JRSConfig {
	return JRSConfig{LogEntries: 11, HistBits: 5, Max: 15, Threshold: 15}
}

// PaperJRSConfig is the configuration as published (12-bit history).
func PaperJRSConfig() JRSConfig {
	return JRSConfig{LogEntries: 11, HistBits: 12, Max: 15, Threshold: 15}
}

// NewJRS builds a JRS estimator.
func NewJRS(cfg JRSConfig) *JRS {
	if cfg.LogEntries <= 0 || cfg.LogEntries > 26 || cfg.Threshold > cfg.Max+1 {
		panic("conf: bad JRS config")
	}
	return &JRS{
		table:     cow.NewFlat[uint8](1 << cfg.LogEntries),
		mask:      1<<cfg.LogEntries - 1,
		histBits:  cfg.HistBits,
		max:       cfg.Max,
		threshold: cfg.Threshold,
	}
}

func (j *JRS) index(pc uint64, hist bpred.GHR) uint64 {
	h := uint64(hist) & (1<<uint(j.histBits) - 1)
	return (pc ^ h) & j.mask
}

// LowConfidence reports whether the prediction for the branch at pc
// should be treated as low confidence.
func (j *JRS) LowConfidence(pc uint64, hist bpred.GHR) bool {
	return j.table.At(int(j.index(pc, hist))) < j.threshold
}

// Update trains the estimator with the prediction outcome.
func (j *JRS) Update(pc uint64, hist bpred.GHR, correct bool) {
	c := j.table.Mut(int(j.index(pc, hist)))
	if correct {
		if *c < j.max {
			*c++
		}
	} else {
		*c = 0
	}
}

func (j *JRS) Name() string { return "jrs" }

// Perfect is an oracle estimator: the core wires it to the fetch oracle,
// so LowConfidence is never called on it directly. Its presence in a
// configuration selects oracle behaviour.
type Perfect struct{}

func (Perfect) LowConfidence(uint64, bpred.GHR) bool { return false }
func (Perfect) Update(uint64, bpred.GHR, bool)       {}
func (Perfect) Name() string                         { return "perfect" }

// AlwaysLow treats every branch as low confidence (predicate everything
// possible); useful for stress tests and overhead measurement.
type AlwaysLow struct{}

func (AlwaysLow) LowConfidence(uint64, bpred.GHR) bool { return true }
func (AlwaysLow) Update(uint64, bpred.GHR, bool)       {}
func (AlwaysLow) Name() string                         { return "always-low" }

// NeverLow treats every branch as high confidence (disables dynamic
// predication); the resulting machine must behave exactly like the
// baseline, which tests exploit.
type NeverLow struct{}

func (NeverLow) LowConfidence(uint64, bpred.GHR) bool { return false }
func (NeverLow) Update(uint64, bpred.GHR, bool)       {}
func (NeverLow) Name() string                         { return "never-low" }

// Clone snapshots the estimator's counter table copy-on-write.
func (j *JRS) Clone() *JRS {
	n := *j
	n.table = j.table.Clone()
	return &n
}

// CloneEstimator snapshots an estimator's trained state. Sampled
// simulation warms one estimator continuously during functional
// fast-forward and clones it per checkpoint. Stateless estimators
// (Perfect, AlwaysLow, NeverLow) are returned as-is.
func CloneEstimator(e Estimator) Estimator {
	if j, ok := e.(*JRS); ok {
		return j.Clone()
	}
	return e
}
