package conf

import (
	"testing"

	"dmp/internal/bpred"
)

func TestJRSStartsLowConfidence(t *testing.T) {
	j := NewJRS(DefaultJRSConfig())
	if !j.LowConfidence(100, 0) {
		t.Error("fresh JRS should be low confidence")
	}
}

func TestJRSGainsConfidence(t *testing.T) {
	j := NewJRS(DefaultJRSConfig())
	for i := 0; i < 15; i++ {
		j.Update(100, 0, true)
	}
	if j.LowConfidence(100, 0) {
		t.Error("15 correct predictions should reach high confidence")
	}
}

func TestJRSResetsOnMiss(t *testing.T) {
	j := NewJRS(DefaultJRSConfig())
	for i := 0; i < 20; i++ {
		j.Update(100, 0, true)
	}
	j.Update(100, 0, false)
	if !j.LowConfidence(100, 0) {
		t.Error("misprediction must reset confidence")
	}
}

func TestJRSSaturates(t *testing.T) {
	cfg := DefaultJRSConfig()
	j := NewJRS(cfg)
	for i := 0; i < 1000; i++ {
		j.Update(100, 0, true)
	}
	if got := j.table.At(int(j.index(100, 0))); got != cfg.Max {
		t.Errorf("counter = %d, want saturated %d", got, cfg.Max)
	}
}

func TestJRSHistoryDisambiguates(t *testing.T) {
	j := NewJRS(DefaultJRSConfig())
	h1, h2 := bpred.GHR(0b0101), bpred.GHR(0b1010)
	for i := 0; i < 15; i++ {
		j.Update(100, h1, true)
	}
	if j.LowConfidence(100, h1) {
		t.Error("h1 context should be confident")
	}
	if !j.LowConfidence(100, h2) {
		t.Error("h2 context should still be low confidence")
	}
}

func TestJRSThresholdBehaviour(t *testing.T) {
	j := NewJRS(JRSConfig{LogEntries: 8, HistBits: 4, Max: 7, Threshold: 4})
	for i := 0; i < 3; i++ {
		j.Update(9, 0, true)
	}
	if !j.LowConfidence(9, 0) {
		t.Error("3 < threshold 4 should be low confidence")
	}
	j.Update(9, 0, true)
	if j.LowConfidence(9, 0) {
		t.Error("4 >= threshold 4 should be high confidence")
	}
}

func TestJRSBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad JRS config did not panic")
		}
	}()
	NewJRS(JRSConfig{LogEntries: 0})
}

func TestTrivialEstimators(t *testing.T) {
	if (AlwaysLow{}).LowConfidence(1, 0) != true {
		t.Error("AlwaysLow")
	}
	if (NeverLow{}).LowConfidence(1, 0) != false {
		t.Error("NeverLow")
	}
	if (Perfect{}).LowConfidence(1, 0) != false {
		t.Error("Perfect placeholder should return false")
	}
	names := map[string]Estimator{
		"jrs": NewJRS(DefaultJRSConfig()), "perfect": Perfect{},
		"always-low": AlwaysLow{}, "never-low": NeverLow{},
	}
	for want, e := range names {
		if e.Name() != want {
			t.Errorf("Name() = %q, want %q", e.Name(), want)
		}
	}
}

// JRS accuracy property: on a stream where branch A is always correct and
// branch B alternates correct/incorrect, A must end high-confidence and B
// low-confidence.
func TestJRSSeparatesStableFromUnstable(t *testing.T) {
	j := NewJRS(DefaultJRSConfig())
	for i := 0; i < 200; i++ {
		j.Update(0xA0, 0, true)
		j.Update(0xB0, 0, i%2 == 0)
	}
	if j.LowConfidence(0xA0, 0) {
		t.Error("stable branch ended low confidence")
	}
	if !j.LowConfidence(0xB0, 0) {
		t.Error("unstable branch ended high confidence")
	}
}
