// Package isa defines the instruction set architecture simulated by the
// diverge-merge processor reproduction: a small 64-bit RISC ISA with
// register-register ALU operations, compare-and-branch conditional
// branches, direct and indirect jumps and calls, and 8-byte loads and
// stores.
//
// One instruction occupies one address unit: the program counter advances
// by 1 past a non-control instruction. This keeps control-flow merge
// (CFM) point comparisons and branch-target bookkeeping exact; structures
// that care about byte addresses (the instruction cache) map a PC p to
// byte address 8*p.
package isa

import "fmt"

// Reg names an architectural register. The ISA has 32 integer registers;
// R0 is hardwired to zero (writes to it are discarded).
type Reg uint8

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Conventional register roles. Only Zero has hardware meaning; SP and LR
// are software conventions used by the program builder.
const (
	Zero Reg = 0  // always reads as zero
	SP   Reg = 30 // stack pointer (convention)
	LR   Reg = 31 // link register (convention, written by CALL)
)

// R returns the n'th general register and panics if n is out of range.
// It exists so that workload generators can compute register names.
func R(n int) Reg {
	if n < 0 || n >= NumRegs {
		panic(fmt.Sprintf("isa: register r%d out of range", n))
	}
	return Reg(n)
}

func (r Reg) String() string {
	switch r {
	case Zero:
		return "zero"
	case SP:
		return "sp"
	case LR:
		return "lr"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is an operation code.
type Op uint8

// Operation codes. The set is deliberately small; wider semantics
// (signed/unsigned shifts, sub-word memory access) are not needed by the
// workloads and would not change any mechanism under study.
const (
	NOP Op = iota

	// ALU register-register: Dst = Src1 op Src2.
	ADD
	SUB
	AND
	OR
	XOR
	SHL // logical shift left by Src2&63
	SHR // logical shift right by Src2&63
	MUL
	DIV // unsigned divide; division by zero yields all-ones
	SLT // set if signed less-than: Dst = (int64(Src1) < int64(Src2))
	SLTU

	// ALU register-immediate: Dst = Src1 op Imm.
	ADDI
	SUBI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	MULI
	SLTI
	SLTUI

	// LI loads the 64-bit immediate: Dst = Imm.
	LI

	// Memory: LD Dst = mem[Src1+Imm]; ST mem[Src1+Imm] = Src2.
	// Addresses are 8-byte words; the low 3 address bits are ignored.
	LD
	ST

	// BR is the conditional branch: if Cond(Src1, Src2) then PC = Target
	// else fall through. Comparisons are signed.
	BR

	// JMP is a direct unconditional jump to Target.
	JMP
	// JR is an indirect jump: PC = Src1.
	JR
	// CALL is a direct call: LR-like link into Dst (conventionally LR),
	// PC = Target.
	CALL
	// CALLR is an indirect call through Src1, linking into Dst.
	CALLR
	// RET returns: PC = Src1 (conventionally LR). Distinct from JR so the
	// front end can use the return address stack.
	RET

	// HALT stops the program.
	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", MUL: "mul", DIV: "div", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", SUBI: "subi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SHLI: "shli", SHRI: "shri", MULI: "muli", SLTI: "slti", SLTUI: "sltui",
	LI: "li", LD: "ld", ST: "st", BR: "br", JMP: "jmp", JR: "jr",
	CALL: "call", CALLR: "callr", RET: "ret", HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation code.
func (o Op) Valid() bool { return o < numOps }

// Cond is a conditional-branch comparison. Comparisons are signed.
type Cond uint8

// Branch conditions.
const (
	EQ Cond = iota
	NE
	LT
	GE
	LE
	GT
)

var condNames = [...]string{EQ: "eq", NE: "ne", LT: "lt", GE: "ge", LE: "le", GT: "gt"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval evaluates the condition on two register values.
func (c Cond) Eval(a, b uint64) bool {
	sa, sb := int64(a), int64(b)
	switch c {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return sa < sb
	case GE:
		return sa >= sb
	case LE:
		return sa <= sb
	case GT:
		return sa > sb
	}
	return false
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case GE:
		return LT
	case LE:
		return GT
	case GT:
		return LE
	}
	return c
}

// Inst is one decoded instruction. The zero value is a NOP.
type Inst struct {
	Op     Op
	Cond   Cond   // BR only
	Dst    Reg    // destination register (ALU, LI, LD, CALL/CALLR link)
	Src1   Reg    // first source (also JR/RET/CALLR target register)
	Src2   Reg    // second source (ALU rr, ST data, BR compare)
	Imm    int64  // immediate (ALU ri, LI, LD/ST displacement)
	Target uint64 // BR/JMP/CALL target PC
}

// HasDst reports whether the instruction writes a destination register.
// Writes to the zero register are architecturally discarded but still
// "have" a destination for renaming purposes; callers that care use
// Dst == Zero separately.
func (i Inst) HasDst() bool {
	switch i.Op {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, DIV, SLT, SLTU,
		ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, MULI, SLTI, SLTUI,
		LI, LD, CALL, CALLR:
		return true
	}
	return false
}

// Uses1 reports whether Src1 is read.
func (i Inst) Uses1() bool {
	switch i.Op {
	case NOP, LI, JMP, CALL, HALT:
		return false
	}
	return true
}

// Uses2 reports whether Src2 is read.
func (i Inst) Uses2() bool {
	switch i.Op {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, DIV, SLT, SLTU, ST, BR:
		return true
	}
	return false
}

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.Op == BR }

// IsControl reports whether the instruction can redirect the PC.
func (i Inst) IsControl() bool {
	switch i.Op {
	case BR, JMP, JR, CALL, CALLR, RET, HALT:
		return true
	}
	return false
}

// IsIndirect reports whether the instruction's target comes from a register.
func (i Inst) IsIndirect() bool {
	switch i.Op {
	case JR, CALLR, RET:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a call (pushes a return
// address for the return address stack).
func (i Inst) IsCall() bool { return i.Op == CALL || i.Op == CALLR }

// IsMem reports whether the instruction accesses data memory.
func (i Inst) IsMem() bool { return i.Op == LD || i.Op == ST }

// IsUncondDirect reports whether the instruction always jumps to a target
// known at decode time (JMP, CALL).
func (i Inst) IsUncondDirect() bool { return i.Op == JMP || i.Op == CALL }

// Latency returns the execution latency of the instruction in cycles,
// excluding memory-hierarchy time for loads (which is added by the cache
// model).
func (i Inst) Latency() int {
	switch i.Op {
	case MUL, MULI:
		return 4
	case DIV:
		return 20
	default:
		return 1
	}
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch i.Op {
	case NOP, HALT:
		return i.Op.String()
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, DIV, SLT, SLTU:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Dst, i.Src1, i.Src2)
	case ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, MULI, SLTI, SLTUI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Dst, i.Src1, i.Imm)
	case LI:
		return fmt.Sprintf("li %s, %d", i.Dst, i.Imm)
	case LD:
		return fmt.Sprintf("ld %s, %d(%s)", i.Dst, i.Imm, i.Src1)
	case ST:
		return fmt.Sprintf("st %s, %d(%s)", i.Src2, i.Imm, i.Src1)
	case BR:
		return fmt.Sprintf("br.%s %s, %s, %d", i.Cond, i.Src1, i.Src2, i.Target)
	case JMP:
		return fmt.Sprintf("jmp %d", i.Target)
	case JR:
		return fmt.Sprintf("jr %s", i.Src1)
	case CALL:
		return fmt.Sprintf("call %d, %s", i.Target, i.Dst)
	case CALLR:
		return fmt.Sprintf("callr %s, %s", i.Src1, i.Dst)
	case RET:
		return fmt.Sprintf("ret %s", i.Src1)
	}
	return fmt.Sprintf("%s ?", i.Op)
}

// EvalALU computes the result of an ALU operation (including LI) given the
// two source register values. It panics if op is not an ALU operation.
func EvalALU(i Inst, a, b uint64) uint64 {
	switch i.Op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SHL:
		return a << (b & 63)
	case SHR:
		return a >> (b & 63)
	case MUL:
		return a * b
	case DIV:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case SLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case SLTU:
		if a < b {
			return 1
		}
		return 0
	case ADDI:
		return a + uint64(i.Imm)
	case SUBI:
		return a - uint64(i.Imm)
	case ANDI:
		return a & uint64(i.Imm)
	case ORI:
		return a | uint64(i.Imm)
	case XORI:
		return a ^ uint64(i.Imm)
	case SHLI:
		return a << (uint64(i.Imm) & 63)
	case SHRI:
		return a >> (uint64(i.Imm) & 63)
	case MULI:
		return a * uint64(i.Imm)
	case SLTI:
		if int64(a) < i.Imm {
			return 1
		}
		return 0
	case SLTUI:
		if a < uint64(i.Imm) {
			return 1
		}
		return 0
	case LI:
		return uint64(i.Imm)
	}
	panic(fmt.Sprintf("isa: EvalALU on non-ALU op %v", i.Op))
}

// IsALU reports whether the instruction is computed by EvalALU.
func (i Inst) IsALU() bool {
	switch i.Op {
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, DIV, SLT, SLTU,
		ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, MULI, SLTI, SLTUI, LI:
		return true
	}
	return false
}
