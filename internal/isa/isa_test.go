package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{Zero: "zero", SP: "sp", LR: "lr", 5: "r5", 29: "r29"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestRPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, NumRegs, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("R(%d) did not panic", n)
				}
			}()
			R(n)
		}()
	}
	if R(7) != Reg(7) {
		t.Error("R(7) != Reg(7)")
	}
}

func TestCondEval(t *testing.T) {
	neg := uint64(math.MaxUint64) // -1 signed
	tests := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{EQ, 5, 5, true}, {EQ, 5, 6, false},
		{NE, 5, 6, true}, {NE, 5, 5, false},
		{LT, neg, 0, true}, {LT, 0, neg, false}, {LT, 3, 3, false},
		{GE, 3, 3, true}, {GE, 0, neg, true}, {GE, neg, 0, false},
		{LE, 3, 3, true}, {LE, 2, 3, true}, {LE, 4, 3, false},
		{GT, 4, 3, true}, {GT, 3, 3, false}, {GT, neg, 0, false},
	}
	for _, tt := range tests {
		if got := tt.c.Eval(tt.a, tt.b); got != tt.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", tt.c, int64(tt.a), int64(tt.b), got, tt.want)
		}
	}
}

func TestCondNegateIsInverse(t *testing.T) {
	conds := []Cond{EQ, NE, LT, GE, LE, GT}
	f := func(a, b int64) bool {
		for _, c := range conds {
			if c.Eval(uint64(a), uint64(b)) == c.Negate().Eval(uint64(a), uint64(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, c := range conds {
		if c.Negate().Negate() != c {
			t.Errorf("%v.Negate().Negate() != %v", c, c)
		}
	}
}

func TestEvalALUBasics(t *testing.T) {
	tests := []struct {
		in   Inst
		a, b uint64
		want uint64
	}{
		{Inst{Op: ADD}, 2, 3, 5},
		{Inst{Op: SUB}, 2, 3, ^uint64(0)},
		{Inst{Op: AND}, 0xF0, 0x3C, 0x30},
		{Inst{Op: OR}, 0xF0, 0x0F, 0xFF},
		{Inst{Op: XOR}, 0xFF, 0x0F, 0xF0},
		{Inst{Op: SHL}, 1, 4, 16},
		{Inst{Op: SHL}, 1, 64, 1}, // shift masked to 6 bits
		{Inst{Op: SHR}, 16, 4, 1},
		{Inst{Op: MUL}, 7, 6, 42},
		{Inst{Op: DIV}, 42, 6, 7},
		{Inst{Op: DIV}, 42, 0, ^uint64(0)}, // div-by-zero convention
		{Inst{Op: SLT}, ^uint64(0), 0, 1},  // -1 < 0 signed
		{Inst{Op: SLTU}, ^uint64(0), 0, 0}, // max > 0 unsigned
		{Inst{Op: ADDI, Imm: -1}, 5, 0, 4},
		{Inst{Op: SUBI, Imm: 2}, 5, 0, 3},
		{Inst{Op: ANDI, Imm: 0xF}, 0x3C, 0, 0xC},
		{Inst{Op: ORI, Imm: 0x10}, 1, 0, 0x11},
		{Inst{Op: XORI, Imm: 1}, 3, 0, 2},
		{Inst{Op: SHLI, Imm: 3}, 1, 0, 8},
		{Inst{Op: SHRI, Imm: 3}, 8, 0, 1},
		{Inst{Op: MULI, Imm: 10}, 7, 0, 70},
		{Inst{Op: SLTI, Imm: 0}, ^uint64(0), 0, 1},
		{Inst{Op: SLTUI, Imm: 5}, 3, 0, 1},
		{Inst{Op: LI, Imm: -7}, 0, 0, ^uint64(6)},
	}
	for _, tt := range tests {
		if got := EvalALU(tt.in, tt.a, tt.b); got != tt.want {
			t.Errorf("EvalALU(%v, %d, %d) = %d, want %d", tt.in.Op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEvalALUPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EvalALU(BR) did not panic")
		}
	}()
	EvalALU(Inst{Op: BR}, 0, 0)
}

func TestInstPredicates(t *testing.T) {
	tests := []struct {
		in                                   Inst
		dst, u1, u2, br, ctl, ind, call, mem bool
	}{
		{Inst{Op: ADD}, true, true, true, false, false, false, false, false},
		{Inst{Op: ADDI}, true, true, false, false, false, false, false, false},
		{Inst{Op: LI}, true, false, false, false, false, false, false, false},
		{Inst{Op: LD}, true, true, false, false, false, false, false, true},
		{Inst{Op: ST}, false, true, true, false, false, false, false, true},
		{Inst{Op: BR}, false, true, true, true, true, false, false, false},
		{Inst{Op: JMP}, false, false, false, false, true, false, false, false},
		{Inst{Op: JR}, false, true, false, false, true, true, false, false},
		{Inst{Op: CALL}, true, false, false, false, true, false, true, false},
		{Inst{Op: CALLR}, true, true, false, false, true, true, true, false},
		{Inst{Op: RET}, false, true, false, false, true, true, false, false},
		{Inst{Op: HALT}, false, false, false, false, true, false, false, false},
		{Inst{Op: NOP}, false, false, false, false, false, false, false, false},
	}
	for _, tt := range tests {
		in := tt.in
		if in.HasDst() != tt.dst {
			t.Errorf("%v.HasDst() = %v", in.Op, in.HasDst())
		}
		if in.Uses1() != tt.u1 {
			t.Errorf("%v.Uses1() = %v", in.Op, in.Uses1())
		}
		if in.Uses2() != tt.u2 {
			t.Errorf("%v.Uses2() = %v", in.Op, in.Uses2())
		}
		if in.IsBranch() != tt.br {
			t.Errorf("%v.IsBranch() = %v", in.Op, in.IsBranch())
		}
		if in.IsControl() != tt.ctl {
			t.Errorf("%v.IsControl() = %v", in.Op, in.IsControl())
		}
		if in.IsIndirect() != tt.ind {
			t.Errorf("%v.IsIndirect() = %v", in.Op, in.IsIndirect())
		}
		if in.IsCall() != tt.call {
			t.Errorf("%v.IsCall() = %v", in.Op, in.IsCall())
		}
		if in.IsMem() != tt.mem {
			t.Errorf("%v.IsMem() = %v", in.Op, in.IsMem())
		}
	}
}

func TestLatency(t *testing.T) {
	if (Inst{Op: ADD}).Latency() != 1 {
		t.Error("ADD latency != 1")
	}
	if (Inst{Op: MUL}).Latency() != 4 {
		t.Error("MUL latency != 4")
	}
	if (Inst{Op: MULI}).Latency() != 4 {
		t.Error("MULI latency != 4")
	}
	if (Inst{Op: DIV}).Latency() != 20 {
		t.Error("DIV latency != 20")
	}
}

func TestStringRoundTripish(t *testing.T) {
	// Spot-check disassembly formats.
	cases := map[string]Inst{
		"add r1, r2, r3":   {Op: ADD, Dst: 1, Src1: 2, Src2: 3},
		"addi r1, r2, -5":  {Op: ADDI, Dst: 1, Src1: 2, Imm: -5},
		"li r4, 42":        {Op: LI, Dst: 4, Imm: 42},
		"ld r1, 8(r2)":     {Op: LD, Dst: 1, Src1: 2, Imm: 8},
		"st r3, 0(r2)":     {Op: ST, Src1: 2, Src2: 3},
		"br.lt r1, r2, 99": {Op: BR, Cond: LT, Src1: 1, Src2: 2, Target: 99},
		"jmp 7":            {Op: JMP, Target: 7},
		"jr r5":            {Op: JR, Src1: 5},
		"call 12, lr":      {Op: CALL, Dst: LR, Target: 12},
		"callr r5, lr":     {Op: CALLR, Dst: LR, Src1: 5},
		"ret lr":           {Op: RET, Src1: LR},
		"halt":             {Op: HALT},
		"nop":              {},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestOpValid(t *testing.T) {
	if !ADD.Valid() || !HALT.Valid() {
		t.Error("defined ops reported invalid")
	}
	if Op(200).Valid() {
		t.Error("Op(200) reported valid")
	}
	if numOps.Valid() {
		t.Error("numOps reported valid")
	}
}

func TestIsUncondDirect(t *testing.T) {
	if !(Inst{Op: JMP}).IsUncondDirect() || !(Inst{Op: CALL}).IsUncondDirect() {
		t.Error("JMP/CALL should be unconditional direct")
	}
	if (Inst{Op: BR}).IsUncondDirect() || (Inst{Op: JR}).IsUncondDirect() {
		t.Error("BR/JR should not be unconditional direct")
	}
}

func TestEvalALUShiftPropertyQuick(t *testing.T) {
	f := func(a uint64, s uint8) bool {
		sh := uint64(s) & 63
		l := EvalALU(Inst{Op: SHL}, a, uint64(s))
		r := EvalALU(Inst{Op: SHR}, a, uint64(s))
		return l == a<<sh && r == a>>sh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalALUAddSubInverseQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		sum := EvalALU(Inst{Op: ADD}, a, b)
		return EvalALU(Inst{Op: SUB}, sum, b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
