package obs

import (
	"fmt"
	"io"
	"time"

	"dmp/internal/core"
)

// Heartbeat prints a one-line progress report every `every` of host
// wall-clock time: simulated cycle, retired instructions, sim IPC, and
// simulator throughput (Mcycles/s and retired MIPS) over the interval.
// It rides the probe's cycle-gated Tick, so it runs on the simulation
// goroutine — no timers, no extra goroutines, no locking — and its
// time.Now calls happen only every tickEvery cycles. At the end of the
// run it prints a final summary (total instructions, cycles, IPC, wall
// time) — so even a run shorter than one reporting period leaves one
// line saying what happened.
type Heartbeat struct {
	w       io.Writer
	every   time.Duration
	started bool
	last    time.Time
	lastCyc uint64
	lastRet uint64
}

// heartbeatTick is the cycle cadence at which the heartbeat samples the
// wall clock: frequent enough to hit a multi-second reporting period
// within ~tens of milliseconds at real simulator speeds, rare enough to
// keep time.Now off the per-cycle path.
const heartbeatTick = 1 << 14

// NewHeartbeat creates a heartbeat writing to w (typically os.Stderr)
// every `every` (0 defaults to 5s).
func NewHeartbeat(w io.Writer, every time.Duration) *Heartbeat {
	if every <= 0 {
		every = 5 * time.Second
	}
	return &Heartbeat{w: w, every: every}
}

// Probe returns the probe to attach with Machine.SetProbe (or Tee).
func (h *Heartbeat) Probe() *core.Probe {
	return &core.Probe{TickEvery: heartbeatTick, Tick: h.tick, Done: h.done}
}

// done prints the end-of-run summary. It runs after Stats is final, so
// Cycles and WallSeconds are trustworthy here (mid-run they are not).
func (h *Heartbeat) done(st *core.Stats) {
	fmt.Fprintf(h.w, "dmpsim: done: retired %d insts in %d cycles (IPC %.3f), %.2fs wall\n",
		st.RetiredInsts, st.Cycles, st.IPC(), st.WallSeconds)
}

func (h *Heartbeat) tick(cycle uint64, st *core.Stats) {
	now := time.Now()
	if !h.started {
		h.started = true
		h.last, h.lastCyc, h.lastRet = now, cycle, st.RetiredInsts
		return
	}
	dt := now.Sub(h.last)
	if dt < h.every {
		return
	}
	dc := cycle - h.lastCyc
	dr := st.RetiredInsts - h.lastRet
	ipc := 0.0
	if dc > 0 {
		ipc = float64(dr) / float64(dc)
	}
	secs := dt.Seconds()
	fmt.Fprintf(h.w, "dmpsim: cycle %d, retired %d, sim-IPC %.3f, %.1f Mcycles/s, %.2f MIPS\n",
		cycle, st.RetiredInsts, ipc, float64(dc)/secs/1e6, float64(dr)/secs/1e6)
	h.last, h.lastCyc, h.lastRet = now, cycle, st.RetiredInsts
}
