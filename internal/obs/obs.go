// Package obs builds observability sinks on top of the core.Probe hook
// layer: a per-uop pipetrace (text or Chrome trace_event JSON for
// Perfetto), a dynamic-predication episode timeline (JSONL), an
// interval Stats sampler (CSV), and a wall-clock progress heartbeat.
// It also wraps the host-side runtime profilers (CPU/heap/execution
// trace) behind one start/stop pair for the CLIs.
//
// Every sink exposes Probe() *core.Probe; attach one directly with
// Machine.SetProbe, or combine several with Tee. Sinks only observe:
// they never mutate core.Stats, and a run with any of them attached
// retires the exact same instruction stream as an unobserved run
// (pinned by TestObserversDoNotPerturb).
package obs

import (
	"errors"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"

	"dmp/internal/core"
)

// Tee fans one machine probe out to several sinks. Nil probes (and nil
// callbacks within a probe) are skipped. The merged Tick runs at the
// gcd of the children's cadences and re-checks each child's own
// cadence, so every child observes exactly the cycles it asked for.
func Tee(probes ...*core.Probe) *core.Probe {
	var ps []*core.Probe
	for _, p := range probes {
		if p != nil {
			if p.Tick != nil && p.TickEvery == 0 {
				p.TickEvery = core.DefaultTickEvery
			}
			ps = append(ps, p)
		}
	}
	if len(ps) == 1 {
		return ps[0]
	}
	out := &core.Probe{}
	if len(ps) == 0 {
		return out
	}

	var uops []func(core.UopEvent)
	var eps []func(core.EpisodeEvent)
	var oracles []func(core.OracleEvent)
	var ticks []*core.Probe
	var dones []func(*core.Stats)
	for _, p := range ps {
		if p.Uop != nil {
			uops = append(uops, p.Uop)
		}
		if p.Episode != nil {
			eps = append(eps, p.Episode)
		}
		if p.Oracle != nil {
			oracles = append(oracles, p.Oracle)
		}
		if p.Tick != nil {
			ticks = append(ticks, p)
			out.TickEvery = gcd(out.TickEvery, p.TickEvery)
		}
		if p.Done != nil {
			dones = append(dones, p.Done)
		}
	}
	if len(uops) > 0 {
		out.Uop = func(ev core.UopEvent) {
			for _, f := range uops {
				f(ev)
			}
		}
	}
	if len(eps) > 0 {
		out.Episode = func(ev core.EpisodeEvent) {
			for _, f := range eps {
				f(ev)
			}
		}
	}
	if len(oracles) > 0 {
		out.Oracle = func(ev core.OracleEvent) {
			for _, f := range oracles {
				f(ev)
			}
		}
	}
	if len(ticks) > 0 {
		out.Tick = func(cycle uint64, s *core.Stats) {
			for _, p := range ticks {
				if cycle%p.TickEvery == 0 {
					p.Tick(cycle, s)
				}
			}
		}
	}
	if len(dones) > 0 {
		out.Done = func(s *core.Stats) {
			for _, f := range dones {
				f(s)
			}
		}
	}
	return out
}

func gcd(a, b uint64) uint64 {
	if a == 0 {
		return b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// StartHostProfiles starts the requested host-side profilers (any
// argument may be empty): a CPU profile, a heap profile written at
// stop, and a runtime execution trace. It returns a stop function that
// finishes and closes everything; callers must invoke it before the
// process exits (explicitly on os.Exit paths — deferred calls do not
// run there).
func StartHostProfiles(cpuFile, memFile, traceFile string) (stop func() error, err error) {
	var stops []func() error
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]() //nolint:errcheck // already failing
		}
		return nil, err
	}
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return fail(err)
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return fail(err)
		}
		stops = append(stops, func() error {
			rtrace.Stop()
			return f.Close()
		})
	}
	if memFile != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			runtime.GC() // up-to-date allocation data
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			return errors.Join(werr, cerr)
		})
	}
	return func() error {
		var errs []error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}, nil
}
