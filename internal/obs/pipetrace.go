package obs

import (
	"bufio"
	"fmt"
	"io"

	"dmp/internal/core"
	"dmp/internal/isa"
)

// PipetraceFormat selects the pipetrace output encoding.
type PipetraceFormat int

const (
	// FormatText renders one line per uop with its per-stage cycles
	// (gem5 O3PipeView-style: the life of each instruction across the
	// pipeline).
	FormatText PipetraceFormat = iota
	// FormatChrome emits a Chrome trace_event JSON array loadable in
	// Perfetto (ui.perfetto.dev) or chrome://tracing: one complete
	// ("ph":"X") event per uop spanning fetch to retire/squash, with the
	// per-stage cycles in args.
	FormatChrome
)

// ptRec accumulates one uop's per-stage cycles between its fetch event
// and its retire/squash event. Stage fields store cycle+1 so 0 means
// "never reached" even for events in cycle 0.
type ptRec struct {
	live     bool
	id       uint64
	seq      uint64
	pc       uint64
	kind     core.UopKind
	inst     isa.Inst
	predID   int
	stream   int
	onAlt    bool
	isFalse  bool
	fetch    uint64
	rename   uint64
	issue    uint64
	complete uint64
	retire   uint64
	squash   uint64
	memblock uint64
	blockSeq uint64
}

// Pipetrace records per-uop pipeline stage timings and writes one
// text line or one Chrome trace event per uop when it leaves the
// pipeline. In-flight records live in a flat slice with a free list, so
// steady-state tracing allocates only when the in-flight population
// grows past its high-water mark.
type Pipetrace struct {
	w      *bufio.Writer
	format PipetraceFormat
	recs   []ptRec
	byID   map[uint64]int32
	free   []int32
	events int // emitted uops (Chrome comma separation)
	closed bool
}

// NewPipetrace creates a pipetrace sink writing to w. Close flushes it.
func NewPipetrace(w io.Writer, format PipetraceFormat) *Pipetrace {
	t := &Pipetrace{
		w:      bufio.NewWriterSize(w, 1<<16),
		format: format,
		byID:   map[uint64]int32{},
	}
	if format == FormatChrome {
		t.w.WriteString("[") //nolint:errcheck // bufio defers errors to Flush
	}
	return t
}

// Probe returns the probe to attach with Machine.SetProbe (or Tee).
func (t *Pipetrace) Probe() *core.Probe {
	return &core.Probe{Uop: t.record, Done: func(*core.Stats) { t.drain() }}
}

// record folds one uop event into its in-flight record, emitting and
// recycling the record when the uop retires or is squashed.
//
//dmp:hotpath
func (t *Pipetrace) record(ev core.UopEvent) {
	idx, ok := t.byID[ev.ID]
	if !ok {
		if n := len(t.free); n > 0 {
			idx = t.free[n-1]
			t.free = t.free[:n-1]
		} else {
			t.recs = append(t.recs, ptRec{})
			idx = int32(len(t.recs) - 1)
		}
		t.byID[ev.ID] = idx
		t.recs[idx] = ptRec{
			live: true, id: ev.ID, seq: ev.Seq, pc: ev.PC,
			kind: ev.Kind, inst: ev.Inst, predID: ev.PredID,
			stream: ev.Stream, onAlt: ev.OnAlt,
		}
	}
	r := &t.recs[idx]
	c := ev.Cycle + 1
	switch ev.Stage {
	case core.StageFetch:
		r.fetch = c
	case core.StageRename:
		r.rename = c
	case core.StageIssue:
		r.issue = c
	case core.StageComplete:
		r.complete = c
	case core.StageMemBlock:
		if r.memblock == 0 {
			r.memblock = c
			r.blockSeq = ev.Extra
		}
	case core.StageRetire:
		r.retire = c
		r.isFalse = ev.False
		t.emit(r)
		t.release(ev.ID, idx)
	case core.StageSquash:
		r.squash = c
		t.emit(r)
		t.release(ev.ID, idx)
	}
}

//dmp:hotpath
func (t *Pipetrace) release(id uint64, idx int32) {
	t.recs[idx].live = false
	delete(t.byID, id)
	t.free = append(t.free, idx)
}

// drain emits records still in flight at end of run, in creation order
// (slice order, never map order, so output is deterministic).
func (t *Pipetrace) drain() {
	for i := range t.recs {
		if t.recs[i].live {
			t.recs[i].live = false
			t.emit(&t.recs[i])
		}
	}
	t.byID = nil
	t.free = nil
}

// Close drains any in-flight records, terminates the Chrome array, and
// flushes the writer. Safe to call after Done already drained.
func (t *Pipetrace) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.drain()
	if t.format == FormatChrome {
		t.w.WriteString("\n]\n") //nolint:errcheck // Flush reports
	}
	return t.w.Flush()
}

// cyc renders a stored stage cycle: the real cycle, or -1 if the uop
// never reached that stage.
func cyc(c uint64) int64 { return int64(c) - 1 }

func (t *Pipetrace) emit(r *ptRec) {
	if t.format == FormatChrome {
		t.emitChrome(r)
		return
	}
	fmt.Fprintf(t.w, "u%-8d seq=%-8d pc=%-6d %-22s fetch=%-8d rename=%-8d issue=%-8d complete=%-8d",
		r.id, r.seq, r.pc, t.name(r), cyc(r.fetch), cyc(r.rename), cyc(r.issue), cyc(r.complete))
	if r.squash != 0 {
		fmt.Fprintf(t.w, " squash=%-8d", cyc(r.squash))
	} else {
		fmt.Fprintf(t.w, " retire=%-8d", cyc(r.retire))
	}
	if r.memblock != 0 {
		fmt.Fprintf(t.w, " memblock=%d(by seq %d)", cyc(r.memblock), r.blockSeq)
	}
	if r.predID != 0 {
		fmt.Fprintf(t.w, " p%d", r.predID)
	}
	if r.onAlt {
		t.w.WriteString(" alt") //nolint:errcheck
	}
	if r.stream != 0 {
		fmt.Fprintf(t.w, " s%d", r.stream)
	}
	if r.isFalse {
		t.w.WriteString(" FALSE") //nolint:errcheck
	}
	t.w.WriteByte('\n') //nolint:errcheck
}

// name labels a record: the instruction text for program instructions,
// the uop kind for inserted predication uops.
func (t *Pipetrace) name(r *ptRec) string {
	if r.kind == core.UopInst {
		return r.inst.String()
	}
	return r.kind.String()
}

func (t *Pipetrace) emitChrome(r *ptRec) {
	// One complete ("X") event per uop: ts = first observed stage,
	// dur = lifetime in cycles (min 1 so zero-length uops stay visible).
	start := r.fetch
	if start == 0 {
		start = r.rename
	}
	if start == 0 {
		start = 1
	}
	end := r.retire
	status := "retire"
	if r.squash != 0 {
		end, status = r.squash, "squash"
	}
	if end < start {
		end = start
	}
	dur := end - start
	if dur == 0 {
		dur = 1
	}
	if t.events > 0 {
		t.w.WriteString(",") //nolint:errcheck
	}
	t.events++
	fmt.Fprintf(t.w, "\n{\"name\":%q,\"cat\":\"uop\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,"+
		"\"args\":{\"id\":%d,\"seq\":%d,\"pc\":%d,\"kind\":%q,\"fetch\":%d,\"rename\":%d,\"issue\":%d,"+
		"\"complete\":%d,\"retire\":%d,\"squash\":%d,\"memblock\":%d,\"pred\":%d,\"alt\":%t,\"stream\":%d,"+
		"\"false\":%t,\"end\":%q}}",
		t.name(r), r.id%32, cyc(start), dur,
		r.id, r.seq, r.pc, r.kind.String(), cyc(r.fetch), cyc(r.rename), cyc(r.issue),
		cyc(r.complete), cyc(r.retire), cyc(r.squash), cyc(r.memblock), r.predID, r.onAlt, r.stream,
		r.isFalse, status)
}
