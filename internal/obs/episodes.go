package obs

import (
	"bufio"
	"fmt"
	"io"

	"dmp/internal/core"
)

// EpisodeLog writes a dynamic-predication episode timeline as JSON
// Lines: one object per episode lifecycle event (enter, cfm-reached,
// exit-pred, early-exit, mdb-convert, dual-abort, resolve, squash) plus
// the fetch oracle's pause/resume events. It also tallies Table-1
// exit-case attribution exactly the way core.Stats.ExitCases does —
// resolve events by their case, squash events into index 0 — so
// Cases() must equal the run's Stats.ExitCases (pinned by tests).
type EpisodeLog struct {
	w      *bufio.Writer
	cases  [7]uint64
	closed bool
}

// NewEpisodeLog creates an episode timeline sink writing JSONL to w.
func NewEpisodeLog(w io.Writer) *EpisodeLog {
	return &EpisodeLog{w: bufio.NewWriterSize(w, 1<<14)}
}

// Probe returns the probe to attach with Machine.SetProbe (or Tee).
func (l *EpisodeLog) Probe() *core.Probe {
	return &core.Probe{Episode: l.record, Oracle: l.oracle}
}

// Cases returns the exit-case tally, index-compatible with
// core.Stats.ExitCases ([0] = squashed episodes, [1..6] = Table 1).
func (l *EpisodeLog) Cases() [7]uint64 { return l.cases }

func (l *EpisodeLog) record(ev core.EpisodeEvent) {
	switch ev.Kind {
	case core.EpResolve:
		if int(ev.Case) >= 0 && int(ev.Case) < len(l.cases) {
			l.cases[ev.Case]++
		}
		fmt.Fprintf(l.w, "{\"cycle\":%d,\"ep\":%d,\"event\":%q,\"case\":%d,\"caseName\":%q,\"pc\":%d,\"cfm\":%d,\"alt\":%d,\"loop\":%t,\"dual\":%t,\"dyn\":%t}\n",
			ev.Cycle, ev.ID, ev.Kind.String(), int(ev.Case), ev.Case.String(),
			ev.DivergePC, ev.CFM, ev.AltFetched, ev.Loop, ev.Dual, ev.DynCFM)
	case core.EpSquash:
		l.cases[0]++
		fmt.Fprintf(l.w, "{\"cycle\":%d,\"ep\":%d,\"event\":%q,\"case\":0,\"caseName\":\"squashed\",\"pc\":%d,\"cfm\":%d,\"alt\":%d,\"loop\":%t,\"dual\":%t,\"dyn\":%t}\n",
			ev.Cycle, ev.ID, ev.Kind.String(),
			ev.DivergePC, ev.CFM, ev.AltFetched, ev.Loop, ev.Dual, ev.DynCFM)
	default:
		fmt.Fprintf(l.w, "{\"cycle\":%d,\"ep\":%d,\"event\":%q,\"pc\":%d,\"cfm\":%d,\"alt\":%d,\"loop\":%t,\"dual\":%t,\"dyn\":%t}\n",
			ev.Cycle, ev.ID, ev.Kind.String(),
			ev.DivergePC, ev.CFM, ev.AltFetched, ev.Loop, ev.Dual, ev.DynCFM)
	}
}

func (l *EpisodeLog) oracle(ev core.OracleEvent) {
	name := "oracle-pause"
	if ev.Resumed {
		name = "oracle-resume"
	}
	fmt.Fprintf(l.w, "{\"cycle\":%d,\"event\":%q,\"steps\":%d}\n", ev.Cycle, name, ev.ArchSteps)
}

// Close flushes the timeline.
func (l *EpisodeLog) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.w.Flush()
}
