package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"dmp/internal/core"
	"dmp/internal/exp"
)

// runMCF runs mcf at scale 1 on the enhanced DMP configuration (the
// configuration that exercises every probe hook: episodes, early exit,
// MDB, select-uops), optionally with a probe attached.
func runMCF(t *testing.T, loops bool, p *core.Probe) *core.Stats {
	t.Helper()
	prg, err := exp.Annotated("mcf", 1)
	if loops {
		prg, err = exp.AnnotatedLoops("mcf", 1)
	}
	if err != nil {
		t.Fatalf("annotate: %v", err)
	}
	cfg := core.EnhancedDMPConfig()
	cfg.EnableLoopDiverge = loops
	m, err := core.New(prg, cfg)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	if p != nil {
		m.SetProbe(p)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st
}

// TestObserversDoNotPerturb is the tentpole invariant: attaching every
// sink at once leaves core.Stats byte-identical to an unobserved run
// (so golden experiment tables cannot move), and each sink's own
// aggregation agrees with the machine's: the episode timeline's
// exit-case tally equals Stats.ExitCases, the interval CSV's summed
// deltas equal the final Stats, and the Chrome trace is valid non-empty
// JSON.
func TestObserversDoNotPerturb(t *testing.T) {
	for _, loops := range []bool{false, true} {
		t.Run("loops="+strconv.FormatBool(loops), func(t *testing.T) {
			base := runMCF(t, loops, nil)

			var ptBuf, evBuf, ivBuf bytes.Buffer
			trace := NewPipetrace(&ptBuf, FormatChrome)
			elog := NewEpisodeLog(&evBuf)
			samp := NewIntervalSampler(&ivBuf, 5000)
			hb := NewHeartbeat(io.Discard, time.Hour)
			st := runMCF(t, loops, Tee(trace.Probe(), elog.Probe(), samp.Probe(), hb.Probe()))
			if err := trace.Close(); err != nil {
				t.Fatalf("pipetrace close: %v", err)
			}
			if err := elog.Close(); err != nil {
				t.Fatalf("episode log close: %v", err)
			}
			if err := samp.Close(); err != nil {
				t.Fatalf("sampler close: %v", err)
			}

			// Byte-identical Stats (WallSeconds is host time, excluded).
			a, b := *base, *st
			a.WallSeconds, b.WallSeconds = 0, 0
			if a != b {
				t.Errorf("observed run diverged from unobserved run:\n  base: %+v\n  obs:  %+v", a, b)
			}

			// Episode timeline attribution == the machine's Table-1 tally.
			if elog.Cases() != st.ExitCases {
				t.Errorf("episode log cases %v != Stats.ExitCases %v", elog.Cases(), st.ExitCases)
			}
			if st.Episodes == 0 {
				t.Fatal("run produced no episodes; test exercises nothing")
			}
			if !strings.Contains(evBuf.String(), `"event":"enter"`) ||
				!strings.Contains(evBuf.String(), `"event":"resolve"`) {
				t.Error("episode timeline missing enter/resolve events")
			}

			// Chrome trace: valid JSON, non-empty, per-uop args present.
			var events []map[string]any
			if err := json.Unmarshal(ptBuf.Bytes(), &events); err != nil {
				t.Fatalf("chrome trace does not parse: %v", err)
			}
			if len(events) == 0 {
				t.Fatal("chrome trace is empty")
			}
			for _, e := range events[:1] {
				for _, k := range []string{"name", "ph", "ts", "dur", "args"} {
					if _, ok := e[k]; !ok {
						t.Errorf("trace event missing %q: %v", k, e)
					}
				}
			}

			// Interval CSV column sums == final Stats.
			checkIntervalSums(t, ivBuf.String(), st)
		})
	}
}

// checkIntervalSums sums every delta column of the interval CSV and
// compares against the final Stats counter it samples.
func checkIntervalSums(t *testing.T, csv string, st *core.Stats) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 2 {
		t.Fatalf("interval CSV has no data rows:\n%s", csv)
	}
	cols := strings.Split(strings.TrimSpace(lines[0]), ",")
	sums := make(map[string]uint64, len(cols))
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(cols) {
			t.Fatalf("row has %d fields, header has %d: %q", len(fields), len(cols), line)
		}
		for i, f := range fields {
			if cols[i] == "cycle" || cols[i] == "ipc" {
				continue // absolute / derived columns
			}
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				t.Fatalf("column %s: %v", cols[i], err)
			}
			sums[cols[i]] += v
		}
	}
	want := map[string]uint64{
		"cycles": st.Cycles, "retired": st.RetiredInsts, "retired_false": st.RetiredFalse,
		"selects": st.RetiredSelects, "markers": st.RetiredMarkers,
		"fetched": st.FetchedInsts, "fetched_markers": st.FetchedMarkers,
		"wrong_cd": st.FetchedWrongCD, "wrong_ci": st.FetchedWrongCI,
		"exec": st.ExecutedInsts, "exec_selects": st.ExecutedSelects, "exec_markers": st.ExecutedMarkers,
		"branches": st.RetiredBranches, "mispredicts": st.RetiredMispredicts, "flushes": st.Flushes,
		"episodes": st.Episodes, "early_exits": st.EarlyExits, "mdb": st.MDBConversions,
		"exit0": st.ExitCases[0], "exit1": st.ExitCases[1], "exit2": st.ExitCases[2],
		"exit3": st.ExitCases[3], "exit4": st.ExitCases[4], "exit5": st.ExitCases[5], "exit6": st.ExitCases[6],
		"lowconf_ok": st.LowConfCorrect, "lowconf_bad": st.LowConfWrong,
		"l1i": st.L1IMisses, "l1d": st.L1DMisses, "l2": st.L2Misses,
		"load_stalls": st.LoadStalls, "oracle_pauses": st.OraclePauses, "oracle_resumes": st.OracleResumes,
		"uops": st.FetchedUops,
	}
	if len(want) != len(cols)-2 {
		t.Errorf("column map covers %d columns, CSV has %d delta columns", len(want), len(cols)-2)
	}
	for col, w := range want {
		if sums[col] != w {
			t.Errorf("summed column %s = %d, final Stats = %d", col, sums[col], w)
		}
	}
}

// TestPipetraceText smoke-checks the text renderer: every retired and
// squashed uop gets a line with its stage cycles.
func TestPipetraceText(t *testing.T) {
	var buf bytes.Buffer
	trace := NewPipetrace(&buf, FormatText)
	runMCF(t, false, trace.Probe())
	if err := trace.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "retire=") {
		t.Error("text pipetrace has no retire lines")
	}
	if !strings.Contains(out, "select-uop") {
		t.Error("text pipetrace records no select-uops on an enhanced DMP run")
	}
	n := strings.Count(out, "\n")
	if n < 1000 {
		t.Errorf("text pipetrace suspiciously short: %d lines", n)
	}
}

// TestTee pins the Tick multiplexing: children with different cadences
// each fire exactly on their own cycle multiples, and the merged
// cadence is the gcd.
func TestTee(t *testing.T) {
	var a, b []uint64
	pa := &core.Probe{TickEvery: 6, Tick: func(c uint64, _ *core.Stats) { a = append(a, c) }}
	pb := &core.Probe{TickEvery: 10, Tick: func(c uint64, _ *core.Stats) { b = append(b, c) }}
	tee := Tee(pa, pb, nil)
	if tee.TickEvery != 2 {
		t.Fatalf("merged TickEvery = %d, want gcd 2", tee.TickEvery)
	}
	for c := uint64(2); c <= 30; c += 2 {
		tee.Tick(c, nil)
	}
	if want := []uint64{6, 12, 18, 24, 30}; !equalU64(a, want) {
		t.Errorf("child a fired at %v, want %v", a, want)
	}
	if want := []uint64{10, 20, 30}; !equalU64(b, want) {
		t.Errorf("child b fired at %v, want %v", b, want)
	}

	// A single probe passes through unchanged; an empty tee is inert.
	if got := Tee(pa); got != pa {
		t.Error("single-probe Tee did not pass through")
	}
	if got := Tee(); got.Uop != nil || got.Tick != nil || got.Done != nil {
		t.Error("empty Tee has callbacks")
	}
}

// TestHeartbeatFinalSummary pins the end-of-run summary: a heartbeat
// whose reporting period never elapses still prints exactly one line —
// the final totals — and its numbers match the run's Stats. A
// short-period heartbeat additionally prints progress lines.
func TestHeartbeatFinalSummary(t *testing.T) {
	var buf bytes.Buffer
	hb := NewHeartbeat(&buf, time.Hour)
	st := runMCF(t, false, hb.Probe())
	out := buf.String()
	want := fmt.Sprintf("done: retired %d insts in %d cycles (IPC %.3f)", st.RetiredInsts, st.Cycles, st.IPC())
	if !strings.Contains(out, want) {
		t.Errorf("final summary missing or wrong:\n  got  %q\n  want containing %q", out, want)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Errorf("hour-period heartbeat printed %d lines, want just the summary:\n%s", n, out)
	}

	buf.Reset()
	hb = NewHeartbeat(&buf, time.Nanosecond)
	runMCF(t, false, hb.Probe())
	if !strings.Contains(buf.String(), "Mcycles/s") {
		t.Error("nanosecond-period heartbeat printed no progress lines")
	}
	if !strings.Contains(buf.String(), "done: retired") {
		t.Error("short-period heartbeat lost the final summary")
	}
}

// TestTeeTickCadenceEdges covers the Tick-merging corners: a lone
// tick sink with no cadence gets the default; a zero cadence mixed
// with a nonzero one is defaulted before the gcd; and huge coprime
// cadences degrade to a gcd of 1 without wrapping, with each child
// still firing only on its own multiples.
func TestTeeTickCadenceEdges(t *testing.T) {
	fired := func(dst *[]uint64) func(uint64, *core.Stats) {
		return func(c uint64, _ *core.Stats) { *dst = append(*dst, c) }
	}

	// Single tick sink, unset cadence: defaulted, passed through.
	var solo []uint64
	ps := &core.Probe{Tick: fired(&solo)}
	if tee := Tee(ps); tee.TickEvery != core.DefaultTickEvery {
		t.Errorf("solo unset cadence = %d, want default %d", tee.TickEvery, core.DefaultTickEvery)
	}

	// TickEvery=0 mixed with nonzero: the zero child runs at the
	// default cadence and the merged cadence is the gcd of the pair.
	var a, b []uint64
	def := uint64(core.DefaultTickEvery)
	pa := &core.Probe{Tick: fired(&a)}
	pb := &core.Probe{TickEvery: 3 * def, Tick: fired(&b)}
	tee := Tee(pa, pb)
	if tee.TickEvery != def {
		t.Fatalf("merged cadence = %d, want %d", tee.TickEvery, def)
	}
	for c := def; c <= 3*def; c += def {
		tee.Tick(c, nil)
	}
	if want := []uint64{def, 2 * def, 3 * def}; !equalU64(a, want) {
		t.Errorf("defaulted child fired at %v, want %v", a, want)
	}
	if want := []uint64{3 * def}; !equalU64(b, want) {
		t.Errorf("3x child fired at %v, want %v", b, want)
	}

	// Huge coprime cadences: gcd collapses to 1 (tick every cycle)
	// and the per-child re-check keeps firing exact near 2^62.
	var c, d []uint64
	big := uint64(1) << 62
	pc := &core.Probe{TickEvery: big, Tick: fired(&c)}
	pd := &core.Probe{TickEvery: big - 1, Tick: fired(&d)}
	tee = Tee(pc, pd)
	if tee.TickEvery != 1 {
		t.Fatalf("coprime merged cadence = %d, want 1", tee.TickEvery)
	}
	tee.Tick(big-1, nil)
	tee.Tick(big, nil)
	tee.Tick(2*(big-1), nil)
	if want := []uint64{big}; !equalU64(c, want) {
		t.Errorf("2^62 child fired at %v, want %v", c, want)
	}
	if want := []uint64{big - 1, 2 * (big - 1)}; !equalU64(d, want) {
		t.Errorf("2^62-1 child fired at %v, want %v", d, want)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
