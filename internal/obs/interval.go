package obs

import (
	"bufio"
	"fmt"
	"io"

	"dmp/internal/core"
)

// intervalHeader lists the CSV columns. The first column is the
// absolute cycle at the end of the interval; every other column is the
// per-interval delta of the matching core.Stats counter (ipc is derived
// from the interval's own retired/cycles). Summing a delta column over
// all rows reproduces the final Stats value (pinned by tests).
const intervalHeader = "cycle,ipc,cycles,retired,retired_false,selects,markers," +
	"fetched,fetched_markers,wrong_cd,wrong_ci," +
	"exec,exec_selects,exec_markers,branches,mispredicts,flushes," +
	"episodes,early_exits,mdb,exit0,exit1,exit2,exit3,exit4,exit5,exit6," +
	"lowconf_ok,lowconf_bad,l1i,l1d,l2,load_stalls,oracle_pauses,oracle_resumes,uops\n"

// IntervalSampler snapshots core.Stats every N cycles and writes one
// CSV row of deltas per interval: IPC-over-time and phase-behaviour
// plots fall straight out of the file. The final (possibly partial)
// interval is written at end of run, so column sums always equal the
// run's final Stats.
type IntervalSampler struct {
	w      *bufio.Writer
	every  uint64
	prev   core.Stats
	closed bool
}

// NewIntervalSampler creates a sampler writing CSV to w, one row per
// `every` cycles (0 uses core.DefaultTickEvery).
func NewIntervalSampler(w io.Writer, every uint64) *IntervalSampler {
	if every == 0 {
		every = core.DefaultTickEvery
	}
	s := &IntervalSampler{w: bufio.NewWriterSize(w, 1<<14), every: every}
	s.w.WriteString(intervalHeader) //nolint:errcheck // Flush reports
	return s
}

// Probe returns the probe to attach with Machine.SetProbe (or Tee).
func (s *IntervalSampler) Probe() *core.Probe {
	return &core.Probe{TickEvery: s.every, Tick: s.tick, Done: s.done}
}

func (s *IntervalSampler) tick(cycle uint64, st *core.Stats) {
	cur := *st         // snapshot by value; the live Stats is read-only here
	cur.Cycles = cycle // Run sets Stats.Cycles only at the end
	s.row(cycle, cur)
}

// done emits the final partial interval (Stats.Cycles is final here).
func (s *IntervalSampler) done(st *core.Stats) {
	s.row(st.Cycles, *st)
}

func (s *IntervalSampler) row(cycle uint64, cur core.Stats) {
	d := cur.Delta(&s.prev)
	s.prev = cur
	ipc := 0.0
	if d.Cycles > 0 {
		ipc = float64(d.RetiredInsts) / float64(d.Cycles)
	}
	fmt.Fprintf(s.w, "%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		cycle, ipc, d.Cycles, d.RetiredInsts, d.RetiredFalse, d.RetiredSelects, d.RetiredMarkers,
		d.FetchedInsts, d.FetchedMarkers, d.FetchedWrongCD, d.FetchedWrongCI,
		d.ExecutedInsts, d.ExecutedSelects, d.ExecutedMarkers, d.RetiredBranches, d.RetiredMispredicts, d.Flushes,
		d.Episodes, d.EarlyExits, d.MDBConversions,
		d.ExitCases[0], d.ExitCases[1], d.ExitCases[2], d.ExitCases[3], d.ExitCases[4], d.ExitCases[5], d.ExitCases[6],
		d.LowConfCorrect, d.LowConfWrong, d.L1IMisses, d.L1DMisses, d.L2Misses,
		d.LoadStalls, d.OraclePauses, d.OracleResumes, d.FetchedUops)
}

// Close flushes the CSV.
func (s *IntervalSampler) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.w.Flush()
}
