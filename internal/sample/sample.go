// Package sample implements SMARTS-style sampled simulation for the DMP
// simulator: functional fast-forward with continuous microarchitectural
// warming between short detailed intervals, with full-run Stats
// extrapolated from the measured intervals and reported with CLT
// confidence bounds.
//
// A sampled run has three parts:
//
//  1. A detailed prefix. The first SamplePeriod instructions are
//     simulated exactly from the cold machine state an exact run starts
//     with. Cold-start cycles (compulsory cache misses, untrained
//     predictors) are deterministic, concentrated at the beginning, and
//     — at this simulator's workload scales — a disproportionate share
//     of total cycles; measuring them exactly removes the largest
//     bias/variance source instead of hoping a random window catches it.
//
//  2. One continuous functional pass over the rest of the program
//     (core.Warmer): an architectural emulator that also trains the
//     cache hierarchy, branch predictor, confidence estimator, BTB,
//     RAS, indirect target cache, and merge-point predictor on every
//     instruction — SMARTS-style functional warming. In each
//     SamplePeriod-instruction stratum the driver picks one
//     deterministic pseudo-random offset (stratified sampling; a fixed
//     offset would alias with periodic program phases) and captures an
//     architectural checkpoint plus a deep copy of the warmed state.
//
//  3. One independent detailed interval per checkpoint, concurrently
//     where the worker pool allows: transplant architectural state
//     and warmed state (core.NewFromCheckpointWarm), run an
//     optional SampleWarmup functional warm window, an unmeasured
//     RampRetired detailed pipeline-fill ramp, then measure
//     SampleInterval retired instructions as a Stats.Delta between two
//     RunUntil snapshots.
//
// Extrapolation: summed interval counters are scaled to the sampled
// region (Stats.Scale) and added to the exact prefix Stats. The cycle
// estimate is prefix cycles + sampled-region instructions x the measured
// CPI ratio; the per-interval CPI spread gives a 95% confidence
// half-width (1.96 s/sqrt(k), CLT) that propagates to an IPC interval.
package sample

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmp/internal/core"
	"dmp/internal/emu"
	"dmp/internal/prog"
	"dmp/internal/telemetry"
)

// RampRetired is the unmeasured detailed ramp before each measured
// interval: the machine simulates this many retired instructions to fill
// the pipeline before the measuring snapshot is taken. Beyond filling
// the pipeline, the ramp lets the machine re-establish state functional
// warming cannot see — in-flight wrong-path cache pollution and the
// runahead prefetching it produces — so it is deliberately longer than
// the pipeline itself. Shrinking it below ~512 instructions produces
// measurable per-window IPC bias on memory-bound workloads.
const RampRetired = 512

// PrefixRetired is the length of the exactly-measured detailed prefix.
// Program start is where compulsory misses and cold predictors
// concentrate — at these workload scales the first ~2000 instructions
// can carry 20% of all cycles — and no statistical sample can represent
// them, so the sampler measures the cold-start region exactly and
// extrapolates only over the steady-state remainder.
const PrefixRetired = 2048

// Options controls driver resources (the sampling parameters themselves
// live on core.Config, so the result cache keys on them).
type Options struct {
	// Slots, when non-nil, is a shared worker-slot semaphore (the exp
	// package's global pool). The streamed pipeline try-acquires slots to
	// spawn interval consumers: on success intervals simulate on worker
	// goroutines overlapping the warming pass, otherwise jobs run inline
	// on the producer's goroutine — which typically already holds a slot,
	// so a full pool degrades to sequential instead of deadlocking. When
	// nil, a private GOMAXPROCS-sized pool is used.
	Slots chan struct{}
	// Sequential forces every interval to run inline on the producer's
	// goroutine, immediately after its checkpoint is captured — the
	// pre-pipeline behaviour. The result must be byte-identical to the
	// streamed path (the determinism tests pin this); the only difference
	// is wall-clock.
	Sequential bool
	// Span, when non-nil, is the telemetry parent span of this run:
	// per-stage child spans (prefix, warm, extrapolate) and per-job
	// snapshot/interval events hang under it. Host-side observability
	// only — never consulted by the sampler itself.
	Span *telemetry.Span
}

// Timing is the host wall-clock breakdown of one sampled run, for
// diagnosing where the speedup goes. All fields are wall-clock dependent
// and excluded from the Manifest and every determinism comparison.
// DetailedSeconds sums per-interval durations across worker goroutines,
// so with the streamed pipeline it can exceed the run's WallSeconds (the
// overlap is the point); the remaining fields are producer-side.
type Timing struct {
	// PrefixSeconds is the exactly simulated cold-start prefix.
	PrefixSeconds float64 `json:"prefix_seconds"`
	// WarmSeconds is the continuous functional warming pass, including
	// the untrained fast-forward tail after the last checkpoint.
	WarmSeconds float64 `json:"warm_seconds"`
	// SnapshotSeconds is checkpoint capture: architectural Checkpoint
	// plus the copy-on-write WarmState Snapshot, per period.
	SnapshotSeconds float64 `json:"snapshot_seconds"`
	// DetailedSeconds sums the detailed interval simulations.
	DetailedSeconds float64 `json:"detailed_seconds"`
	// ExtrapolateSeconds is aggregation and extrapolation at the end.
	ExtrapolateSeconds float64 `json:"extrapolate_seconds"`
}

// Interval is one measured detailed interval.
type Interval struct {
	// Index is the interval's position in program order.
	Index int `json:"index"`
	// Start is the instruction index (architectural count) where the
	// interval's machine was checkpointed.
	Start uint64 `json:"start"`
	// Warmed counts extra per-interval functional-warming instructions
	// (SampleWarmup; the long-lived state is continuously warmed).
	Warmed uint64 `json:"warmed"`
	// RampRetired counts unmeasured pipeline-fill instructions retired
	// before the measuring snapshot.
	RampRetired uint64 `json:"ramp_retired"`
	// Retired / Cycles are the measured window's Stats.Delta counters.
	Retired uint64 `json:"retired"`
	Cycles  uint64 `json:"cycles"`
	// IPC is Retired/Cycles for this interval.
	IPC float64 `json:"ipc"`
}

// Result is a sampled run: the extrapolated full-run Stats plus the
// per-interval evidence behind them.
type Result struct {
	// Effective sampling parameters (defaults applied).
	Period, IntervalLen, Warmup, Ramp uint64
	// TotalInsts is the architectural instruction count of the full run
	// (the functional pass runs it end to end; MaxInsts truncates it).
	TotalInsts uint64
	// PrefixRetired / PrefixCycles are the exactly measured cold-start
	// prefix (~one period from instruction zero).
	PrefixRetired uint64
	PrefixCycles  uint64
	// K is the number of measured intervals; Intervals lists them.
	K         int
	Intervals []Interval
	// DetailedRetired / DetailedCycles sum the measured windows and the
	// prefix — every exactly simulated, counted instruction.
	DetailedRetired uint64
	DetailedCycles  uint64
	// IPC is the headline sampled estimate: TotalInsts over (prefix
	// cycles + sampled-region instructions x measured CPI). IPCMean is
	// the unweighted mean of per-interval IPCs (diagnostic only). CI95
	// is the 95% confidence half-width around IPC, from the
	// per-interval CPI spread (CLT over k intervals) propagated through
	// the extrapolation.
	IPC     float64
	IPCMean float64
	CI95    float64
	// Extrapolated is the full-run Stats estimate: exact prefix Stats
	// plus interval counters scaled to the sampled region, with
	// RetiredInsts pinned to the exact TotalInsts and WallSeconds set to
	// the driver's real wall time (so throughput metrics describe the
	// sampled run).
	Extrapolated *core.Stats
	// WallSeconds is the host wall-clock time of the whole sampled run
	// (prefix + warming pass + detailed intervals); Timing breaks it
	// down by activity. Both are wall-clock dependent and excluded from
	// the Manifest and determinism comparisons.
	WallSeconds float64
	Timing      Timing
}

// Covers reports whether the 95% confidence interval around the sampled
// IPC estimate contains ipc (typically the exact run's IPC).
func (r *Result) Covers(ipc float64) bool {
	return math.Abs(ipc-r.IPC) <= r.CI95
}

// checkpointAt pairs a captured architectural checkpoint with its
// instruction index and the continuously warmed state at that point.
type checkpointAt struct {
	start uint64
	ck    emu.Checkpoint
	ws    *core.WarmState
}

// intervalJob is one detailed interval flowing through the streamed
// pipeline: the captured checkpoint in, the measured interval out. The
// checkpoint field is cleared as soon as the interval completes so the
// snapshot memory is released while the run is still warming.
type intervalJob struct {
	index int
	c     checkpointAt
	iv    Interval
	st    core.Stats
	err   error
}

// pipeline is the streamed producer/consumer machinery of one sampled
// run: the warming pass (producer) dispatches each captured checkpoint
// the moment it exists, consumer goroutines try-acquire worker slots and
// drain the bounded queue, and the producer degrades to running jobs
// inline rather than ever blocking. Its per-checkpoint methods are
// //dmp:hotpath: they sit between warming and detailed simulation, so an
// accidental per-job allocation (beyond the job itself) would scale with
// interval count.
type pipeline struct {
	p                *prog.Program
	cfg              core.Config
	warmup, interval uint64

	slots chan struct{}     // shared worker slots (may span concurrent runs)
	jobs  chan *intervalJob // nil in Sequential mode
	all   []*intervalJob    // every job, in checkpoint order
	wg    sync.WaitGroup    // in-flight jobs
	cwg   sync.WaitGroup    // live consumer goroutines (they hold slots)
	detNS atomic.Int64      // detailed-simulation wall time

	// tr/spanID carry the attached telemetry tracer (nil when off) and
	// the run span's id, so runJob can emit per-interval trace events
	// from scalar arguments behind one nil check.
	tr     *telemetry.Tracer
	spanID uint64
}

// runJob simulates one detailed interval and releases its snapshot
// (checkpoint memory + warm state) immediately, instead of holding every
// one until the end of the run.
//
//dmp:hotpath
func (pl *pipeline) runJob(jb *intervalJob) {
	t0 := time.Now() //dmp:allow nondeterminism -- Timing is excluded from golden tables
	jb.iv, jb.st, jb.err = runInterval(pl.p, pl.cfg, jb.c, pl.warmup, pl.interval)
	jb.iv.Index = jb.index
	jb.c = checkpointAt{}
	mLiveSnapshots.Add(-1)
	mIntervals.Inc()
	if pl.tr != nil {
		pl.tr.SpanAt("interval", "sample", t0, time.Since(t0), pl.spanID) //dmp:allow nondeterminism -- host telemetry only
	}
	pl.detNS.Add(time.Since(t0).Nanoseconds()) //dmp:allow nondeterminism -- Timing is excluded from golden tables
}

// consume drains the job queue until it is empty or closed, then hands
// the worker slot back (so shared slots are never hoarded while the
// producer warms toward the next checkpoint).
//
//dmp:hotpath
func (pl *pipeline) consume() {
	defer pl.release()
	for {
		select {
		case jb, ok := <-pl.jobs:
			if !ok {
				return
			}
			pl.runJob(jb)
			pl.wg.Done()
		default:
			return // queue drained: hand the slot back
		}
	}
}

// release returns the consumer's worker slot.
func (pl *pipeline) release() { <-pl.slots }

// spawn runs one consumer goroutine lifecycle.
func (pl *pipeline) spawn() {
	defer pl.cwg.Done()
	pl.consume()
}

// dispatch hands a captured checkpoint to the consumers: enqueue and
// opportunistically start a consumer if a slot is free; with the queue
// full (or in Sequential mode) run the job inline, degrading toward the
// sequential path instead of stalling the warming pass.
//
//dmp:hotpath
func (pl *pipeline) dispatch(jb *intervalJob) {
	pl.all = append(pl.all, jb)
	if pl.jobs == nil {
		pl.runJob(jb)
		return
	}
	pl.wg.Add(1)
	select {
	case pl.jobs <- jb:
		select {
		case pl.slots <- struct{}{}:
			pl.cwg.Add(1)
			go pl.spawn()
		default:
		}
	default:
		// Queue full and every consumer busy: run inline rather than
		// stalling the warming pass.
		pl.runJob(jb)
		pl.wg.Done()
	}
}

// drain closes the queue, runs whatever the consumers have not picked
// up, and waits for in-flight jobs and consumers (consumers must release
// their slots before Run returns).
func (pl *pipeline) drain() {
	if pl.jobs == nil {
		return
	}
	close(pl.jobs)
	for jb := range pl.jobs {
		pl.runJob(jb)
		pl.wg.Done()
	}
	pl.wg.Wait()
	pl.cwg.Wait()
}

// Run samples one program under cfg. cfg.SampleMode must be set; the
// sampling parameters come from cfg.SampleParams(). cfg.MaxInsts, when
// non-zero, truncates the sampled region exactly as it truncates an
// exact run.
func Run(p *prog.Program, cfg core.Config, o Options) (*Result, error) {
	if !cfg.SampleMode {
		return nil, fmt.Errorf("sample: config has SampleMode off")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	period, interval, warmup := cfg.SampleParams()
	start := time.Now() //dmp:allow nondeterminism -- feeds only WallSeconds, excluded from golden tables
	maxTotal := cfg.MaxInsts
	prefSpan := o.Span.Child("prefix", "sample")

	// Detailed prefix: the cold-start region, measured exactly.
	prefTarget := uint64(PrefixRetired)
	if period < prefTarget {
		prefTarget = period
	}
	if maxTotal != 0 && maxTotal < prefTarget {
		prefTarget = maxTotal
	}
	pm, err := core.New(p, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := pm.RunUntil(prefTarget); err != nil {
		pm.Finish() //nolint:errcheck // reporting the RunUntil error
		return nil, fmt.Errorf("sample: prefix: %w", err)
	}
	ps, err := pm.Finish()
	if err != nil {
		return nil, fmt.Errorf("sample: prefix: %w", err)
	}
	pre := *ps // value copy; the machine (and its arena) is done
	if pre.HaltRetired || (maxTotal != 0 && pre.RetiredInsts >= maxTotal) {
		return nil, fmt.Errorf("sample: program too short to sample (ends inside the %d-instruction detailed prefix); run exact or shrink -sample-period",
			prefTarget)
	}
	prefR := pre.RetiredInsts
	var tm Timing
	tm.PrefixSeconds = time.Since(start).Seconds() //dmp:allow nondeterminism -- Timing is excluded from golden tables
	prefSpan.End()

	// Streamed pipeline: the warming pass (producer) hands each
	// checkpoint to interval workers (consumers) the moment it is
	// captured, so detailed simulation overlaps the rest of the warming
	// pass instead of waiting for it. Jobs flow through a bounded
	// channel; consumers are spawned by try-acquiring worker slots and
	// exit when the queue drains (so shared slots are never hoarded while
	// the producer warms toward the next checkpoint). The producer never
	// blocks: with the queue full or no slot free it runs the job inline,
	// degrading toward the sequential path instead of deadlocking.
	// Results are aggregated in checkpoint (index) order afterwards, so
	// Stats are byte-identical regardless of scheduling — Sequential mode
	// pins this in the determinism tests.
	slots := o.Slots
	if slots == nil {
		slots = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	mcfg := cfg
	mcfg.MaxInsts = 0 // interval machines are bounded by RunUntil targets
	pl := &pipeline{p: p, cfg: mcfg, warmup: warmup, interval: interval, slots: slots,
		tr: o.Span.Tracer(), spanID: o.Span.ID()}
	if !o.Sequential {
		pl.jobs = make(chan *intervalJob, cap(slots)+1)
	}

	// Continuous functional warming pass over [prefR, total), capturing
	// one checkpoint per period at a stratified pseudo-random offset.
	warmSpan := o.Span.Child("warm", "sample")
	w, err := core.NewWarmer(p, cfg)
	if err != nil {
		return nil, err
	}
	warmTo := func(target uint64) error {
		t0 := time.Now() //dmp:allow nondeterminism -- Timing is excluded from golden tables
		err := w.WarmTo(target)
		tm.WarmSeconds += time.Since(t0).Seconds() //dmp:allow nondeterminism -- Timing is excluded from golden tables
		return err
	}
	if err := warmTo(prefR); err != nil {
		return nil, err
	}
	offRange := uint64(1)
	if period > warmup+interval+RampRetired {
		offRange = period - warmup - interval - RampRetired + 1
	}
	for j := uint64(0); ; j++ {
		base := prefR + j*period
		if maxTotal != 0 && base >= maxTotal {
			break
		}
		if err := warmTo(base + splitmix64(j)%offRange); err != nil {
			return nil, err
		}
		if w.Halted() {
			break
		}
		t0 := time.Now() //dmp:allow nondeterminism -- Timing is excluded from golden tables
		jb := &intervalJob{index: len(pl.all),
			c: checkpointAt{start: w.Count(), ck: w.Checkpoint(), ws: w.Snapshot()}}
		tm.SnapshotSeconds += time.Since(t0).Seconds() //dmp:allow nondeterminism -- Timing is excluded from golden tables
		mLiveSnapshots.Add(1)
		if pl.tr != nil {
			pl.tr.SpanAt("snapshot", "sample", t0, time.Since(t0), warmSpan.ID()) //dmp:allow nondeterminism -- host telemetry only
		}
		pl.dispatch(jb)
		end := base + period
		if maxTotal != 0 && end > maxTotal {
			end = maxTotal
		}
		if err := warmTo(end); err != nil {
			return nil, err
		}
		if w.Halted() || (maxTotal != 0 && w.Count() >= maxTotal) {
			break
		}
	}
	// Tail after the last checkpoint: plain fast-forward, no training.
	tTail := time.Now() //dmp:allow nondeterminism -- Timing is excluded from golden tables
	if maxTotal == 0 {
		if err := w.RunToHalt(); err != nil {
			return nil, err
		}
	} else if err := w.SkipTo(maxTotal); err != nil {
		return nil, err
	}
	tm.WarmSeconds += time.Since(tTail).Seconds() //dmp:allow nondeterminism -- Timing is excluded from golden tables
	warmSpan.End()
	total := w.Count()
	// Drain whatever the consumers have not picked up, then wait for the
	// in-flight ones.
	pl.drain()
	if len(pl.all) == 0 {
		return nil, fmt.Errorf("sample: program too short to sample (%d instructions, period %d); run exact or shrink -sample-period",
			total, period)
	}

	tExtrap := time.Now() //dmp:allow nondeterminism -- Timing is excluded from golden tables
	exSpan := o.Span.Child("extrapolate", "sample")
	res := &Result{Period: period, IntervalLen: interval, Warmup: warmup, Ramp: RampRetired,
		TotalInsts: total, PrefixRetired: prefR, PrefixCycles: pre.Cycles}
	agg := core.Stats{}
	var cpis, ipcs []float64
	for i, jb := range pl.all {
		if jb.err != nil {
			return nil, fmt.Errorf("sample: interval %d (insts %d+): %w", i, jb.iv.Start, jb.err)
		}
		if jb.iv.Retired == 0 || jb.iv.Cycles == 0 {
			// The program halted inside this interval's warming or ramp:
			// nothing measured, nothing to extrapolate from.
			continue
		}
		agg = agg.Add(&jb.st)
		cpis = append(cpis, float64(jb.iv.Cycles)/float64(jb.iv.Retired))
		ipcs = append(ipcs, jb.iv.IPC)
		res.Intervals = append(res.Intervals, jb.iv)
	}
	res.K = len(res.Intervals)
	if res.K == 0 {
		return nil, fmt.Errorf("sample: no measurable intervals (program halts inside every measured window)")
	}
	res.DetailedRetired = prefR + agg.RetiredInsts
	res.DetailedCycles = pre.Cycles + agg.Cycles

	// Ratio estimate: sampled-region CPI from the pooled windows, cycle
	// estimate = exact prefix + region instructions x CPI. The
	// per-interval CPI spread gives the CLT half-width, propagated to
	// IPC through the (monotone) cycles -> IPC map.
	sampR := total - prefR
	cpi := float64(agg.Cycles) / float64(agg.RetiredInsts)
	estC := float64(pre.Cycles) + float64(sampR)*cpi
	res.IPC = float64(total) / estC
	res.IPCMean, _ = meanCI95(ipcs)
	_, cpiCI := meanCI95(cpis)
	if dC := float64(sampR) * cpiCI; dC > 0 && dC < estC {
		res.CI95 = (float64(total)/(estC-dC) - float64(total)/(estC+dC)) / 2
	}

	sc := agg.Scale(float64(sampR) / float64(agg.RetiredInsts))
	ex := pre.Add(&sc)
	ex.RetiredInsts = total // the ratio is exact here; don't let rounding drift it
	ex.HaltRetired = w.Halted()
	tm.DetailedSeconds = float64(pl.detNS.Load()) / 1e9
	tm.ExtrapolateSeconds = time.Since(tExtrap).Seconds() //dmp:allow nondeterminism -- Timing is excluded from golden tables
	exSpan.End()
	res.Timing = tm
	res.WallSeconds = time.Since(start).Seconds() //dmp:allow nondeterminism -- WallSeconds is excluded from golden tables
	ex.WallSeconds = res.WallSeconds
	res.Extrapolated = &ex
	stageTelemetry(tm)
	return res, nil
}

// runInterval simulates one detailed interval from its checkpoint:
// transplant architectural and warmed state, optional extra functional
// warm, unmeasured ramp, measured window. The returned Stats is the
// measured window's Delta; the machine is finished (arena released)
// before returning.
func runInterval(p *prog.Program, cfg core.Config, c checkpointAt, warmup, interval uint64) (Interval, core.Stats, error) {
	iv := Interval{Start: c.start}
	m, err := core.NewFromCheckpointWarm(p, cfg, c.ck, c.ws)
	if err != nil {
		return iv, core.Stats{}, err
	}
	defer m.Finish() //nolint:errcheck // RunUntil already surfaced runErr
	iv.Warmed, err = m.FunctionalWarm(warmup)
	if err != nil {
		return iv, core.Stats{}, err
	}
	s, err := m.RunUntil(RampRetired)
	if err != nil {
		return iv, core.Stats{}, err
	}
	snap := *s // value snapshot before the measured window
	iv.RampRetired = snap.RetiredInsts
	s, err = m.RunUntil(RampRetired + interval)
	if err != nil {
		return iv, core.Stats{}, err
	}
	d := s.Delta(&snap)
	iv.Retired, iv.Cycles = d.RetiredInsts, d.Cycles
	if d.Cycles > 0 {
		iv.IPC = float64(d.RetiredInsts) / float64(d.Cycles)
	}
	return iv, d, nil
}

// splitmix64 is the SplitMix64 mixing function over a fixed seed: the
// deterministic pseudo-random offset sequence behind stratified window
// placement. Not time- or state-seeded on purpose — sampled runs must be
// reproducible for the result cache and golden tables.
func splitmix64(j uint64) uint64 {
	z := j*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// meanCI95 returns the sample mean and the 95% confidence half-width
// 1.96 s/sqrt(k) (CLT; s is the k-1 sample standard deviation). One
// sample has no spread estimate: the half-width is 0 and coverage
// degenerates to equality, which the accuracy gate treats as suspect by
// requiring k >= 2 separately.
func meanCI95(xs []float64) (mean, ci float64) {
	k := float64(len(xs))
	if k == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= k
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / (k - 1))
	return mean, 1.96 * sd / math.Sqrt(k)
}
