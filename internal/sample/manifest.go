package sample

import (
	"encoding/json"
	"io"
)

// Manifest is the JSON record of one sampled run's interval accounting:
// what was measured where, and what the extrapolation claimed. dmpsim
// -sample-manifest writes one; dmpobs -manifest validates the accounting
// (interval count, warmup and detailed sums, per-interval IPC
// consistency) without re-running anything.
type Manifest struct {
	TotalInsts  uint64     `json:"total_insts"`
	Period      uint64     `json:"period"`
	IntervalLen uint64     `json:"interval"`
	Warmup      uint64     `json:"warmup"`
	Ramp        uint64     `json:"ramp"`
	PrefRetired uint64     `json:"prefix_retired"`
	PrefCycles  uint64     `json:"prefix_cycles"`
	K           int        `json:"k"`
	DetRetired  uint64     `json:"detailed_retired"`
	DetCycles   uint64     `json:"detailed_cycles"`
	IPC         float64    `json:"ipc"`
	IPCMean     float64    `json:"ipc_mean"`
	CI95        float64    `json:"ci95"`
	Intervals   []Interval `json:"intervals"`
}

// Manifest builds the manifest record for the result.
func (r *Result) Manifest() Manifest {
	return Manifest{
		TotalInsts:  r.TotalInsts,
		Period:      r.Period,
		IntervalLen: r.IntervalLen,
		Warmup:      r.Warmup,
		Ramp:        r.Ramp,
		PrefRetired: r.PrefixRetired,
		PrefCycles:  r.PrefixCycles,
		K:           r.K,
		DetRetired:  r.DetailedRetired,
		DetCycles:   r.DetailedCycles,
		IPC:         r.IPC,
		IPCMean:     r.IPCMean,
		CI95:        r.CI95,
		Intervals:   r.Intervals,
	}
}

// WriteManifest writes the manifest as indented JSON.
func (r *Result) WriteManifest(w io.Writer) error {
	data, err := json.MarshalIndent(r.Manifest(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
