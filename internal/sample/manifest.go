package sample

import (
	"encoding/json"
	"io"
)

// Manifest is the JSON record of one sampled run's interval accounting:
// what was measured where, and what the extrapolation claimed. dmpsim
// -sample-manifest writes one; dmpobs -manifest validates the accounting
// (interval count, warmup and detailed sums, per-interval IPC
// consistency) without re-running anything.
type Manifest struct {
	TotalInsts  uint64     `json:"total_insts"`
	Period      uint64     `json:"period"`
	IntervalLen uint64     `json:"interval"`
	Warmup      uint64     `json:"warmup"`
	Ramp        uint64     `json:"ramp"`
	PrefRetired uint64     `json:"prefix_retired"`
	PrefCycles  uint64     `json:"prefix_cycles"`
	K           int        `json:"k"`
	DetRetired  uint64     `json:"detailed_retired"`
	DetCycles   uint64     `json:"detailed_cycles"`
	IPC         float64    `json:"ipc"`
	IPCMean     float64    `json:"ipc_mean"`
	CI95        float64    `json:"ci95"`
	Intervals   []Interval `json:"intervals"`
	// Timing is the host time breakdown (wall-clock dependent). It is
	// nil in Manifest() — the determinism tests byte-compare manifests
	// across runs, and wall time would differ — and populated only by
	// WriteManifest, whose output is for humans and dmpobs (which
	// cross-checks it against span data, never against a golden).
	Timing *Timing `json:"timing,omitempty"`
}

// Manifest builds the deterministic manifest record for the result
// (no wall-clock fields; byte-stable across identical runs).
func (r *Result) Manifest() Manifest {
	return Manifest{
		TotalInsts:  r.TotalInsts,
		Period:      r.Period,
		IntervalLen: r.IntervalLen,
		Warmup:      r.Warmup,
		Ramp:        r.Ramp,
		PrefRetired: r.PrefixRetired,
		PrefCycles:  r.PrefixCycles,
		K:           r.K,
		DetRetired:  r.DetailedRetired,
		DetCycles:   r.DetailedCycles,
		IPC:         r.IPC,
		IPCMean:     r.IPCMean,
		CI95:        r.CI95,
		Intervals:   r.Intervals,
	}
}

// WriteManifest writes the manifest as indented JSON, including the
// wall-clock Timing breakdown (machine-readable form of dmpsim's "time
// breakdown" line, cross-checkable against telemetry span data).
func (r *Result) WriteManifest(w io.Writer) error {
	m := r.Manifest()
	tm := r.Timing
	m.Timing = &tm
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
