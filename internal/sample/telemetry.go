package sample

import "dmp/internal/telemetry"

// Host-side telemetry for the sampled-run driver. The stage histograms
// are fed from the same measurements that populate Timing (one
// observation per stage per run), so span data, feed events, and the
// Timing struct are three views of one clock and dmpobs can cross-check
// them exactly. The live-snapshots gauge tracks checkpoint memory: it
// rises when the warming pass captures a checkpoint and falls when the
// interval job releases it, so its peak is the streamed pipeline's
// snapshot working set. Everything here is host-side only — no
// simulator state, no effect on Stats or the Manifest.
var (
	mStagePrefix = telemetry.NewHistogram("dmp_sample_prefix_seconds",
		"exactly simulated cold-start prefix, per sampled run", telemetry.SecondsBuckets())
	mStageWarm = telemetry.NewHistogram("dmp_sample_warm_seconds",
		"continuous functional warming pass, per sampled run", telemetry.SecondsBuckets())
	mStageSnapshot = telemetry.NewHistogram("dmp_sample_snapshot_seconds",
		"checkpoint capture (architectural + copy-on-write warm state), per sampled run",
		telemetry.SecondsBuckets())
	mStageDetailed = telemetry.NewHistogram("dmp_sample_detailed_seconds",
		"detailed interval simulation, summed across workers, per sampled run",
		telemetry.SecondsBuckets())
	mStageExtrapolate = telemetry.NewHistogram("dmp_sample_extrapolate_seconds",
		"aggregation and extrapolation, per sampled run", telemetry.SecondsBuckets())
	mLiveSnapshots = telemetry.NewGauge("dmp_sample_live_snapshots",
		"captured checkpoints whose snapshot memory is not yet released")
	mIntervals = telemetry.NewCounter("dmp_sample_intervals_total",
		"detailed intervals simulated")
)

// stageTelemetry publishes one finished run's Timing to the stage
// histograms and, when telemetry is attached, as sample-stage feed
// events carrying the identical values — the redundancy is deliberate,
// it is what dmpobs -telemetry cross-checks.
func stageTelemetry(tm Timing) {
	mStagePrefix.Observe(tm.PrefixSeconds)
	mStageWarm.Observe(tm.WarmSeconds)
	mStageSnapshot.Observe(tm.SnapshotSeconds)
	mStageDetailed.Observe(tm.DetailedSeconds)
	mStageExtrapolate.Observe(tm.ExtrapolateSeconds)
	tel := telemetry.Active()
	if tel == nil {
		return
	}
	for _, s := range []struct {
		name string
		v    float64
	}{
		{"prefix", tm.PrefixSeconds},
		{"warm", tm.WarmSeconds},
		{"snapshot", tm.SnapshotSeconds},
		{"detailed", tm.DetailedSeconds},
		{"extrapolate", tm.ExtrapolateSeconds},
	} {
		tel.Feed().Emit(telemetry.Event{Kind: "sample-stage", Name: s.name, V: s.v})
	}
}
