package sample

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"dmp/internal/core"
	"dmp/internal/profile"
	"dmp/internal/prog"
	"dmp/internal/workload"
)

// mcfProg builds the mcf workload at scale 1 and annotates it in place
// (the pointer-chase benchmark: memory-bound, phase-heavy — the hardest
// of the suite for sampling, which is exactly why the tests use it).
func mcfProg(t *testing.T) *prog.Program {
	t.Helper()
	w, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(workload.BuildConfig{Scale: 1})
	if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
		t.Fatalf("profile: %v", err)
	}
	return p
}

func sampleCfg() core.Config {
	cfg := core.EnhancedDMPConfig()
	cfg.SampleMode = true
	return cfg
}

func exactStats(t *testing.T, p *prog.Program, cfg core.Config) *core.Stats {
	t.Helper()
	cfg.SampleMode = false
	cfg.SamplePeriod, cfg.SampleInterval, cfg.SampleWarmup = 0, 0, 0
	m, err := core.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSampledVsExact(t *testing.T) {
	p := mcfProg(t)
	cfg := sampleCfg()
	ex := exactStats(t, p, cfg)
	r, err := Run(p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalInsts != ex.RetiredInsts {
		t.Errorf("TotalInsts = %d, exact retired %d", r.TotalInsts, ex.RetiredInsts)
	}
	if r.K < 2 {
		t.Fatalf("K = %d, want >= 2 intervals at scale 1", r.K)
	}
	if r.CI95 <= 0 {
		t.Errorf("CI95 = %g, want > 0 with %d intervals", r.CI95, r.K)
	}
	// Sampling is an estimate, not a golden run: a loose sanity bound.
	// The measured error at these parameters is ~6%; 15% failing means
	// warming or extrapolation regressed structurally.
	errPct := 100 * math.Abs(r.IPC-ex.IPC()) / ex.IPC()
	if errPct > 15 {
		t.Errorf("sampled IPC %.4f vs exact %.4f: |err| %.1f%% > 15%%", r.IPC, ex.IPC(), errPct)
	}
	if got := r.Extrapolated.RetiredInsts; got != r.TotalInsts {
		t.Errorf("Extrapolated.RetiredInsts = %d, want %d", got, r.TotalInsts)
	}
	if !r.Extrapolated.HaltRetired {
		t.Error("Extrapolated.HaltRetired = false for a run-to-halt sample")
	}
}

// TestResultAccounting pins the bookkeeping invariants dmpobs -manifest
// checks: interval sums, per-interval IPC consistency, monotonic starts.
func TestResultAccounting(t *testing.T) {
	p := mcfProg(t)
	r, err := Run(p, sampleCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.K != len(r.Intervals) {
		t.Errorf("K = %d, len(Intervals) = %d", r.K, len(r.Intervals))
	}
	var sumR, sumC uint64
	prev := r.PrefixRetired
	for _, iv := range r.Intervals {
		sumR += iv.Retired
		sumC += iv.Cycles
		// RunUntil drains in-flight retirement past the target, so an
		// interval can run a few instructions long or short of the knob.
		if diff := int64(iv.Retired) - int64(r.IntervalLen); diff < -64 || diff > 64 {
			t.Errorf("interval %d: retired %d, want %d±64", iv.Index, iv.Retired, r.IntervalLen)
		}
		if want := float64(iv.Retired) / float64(iv.Cycles); iv.IPC != want {
			t.Errorf("interval %d: IPC %g, want %g", iv.Index, iv.IPC, want)
		}
		if iv.Start < prev {
			t.Errorf("interval %d: start %d before previous position %d", iv.Index, iv.Start, prev)
		}
		prev = iv.Start
	}
	if got := r.PrefixRetired + sumR; got != r.DetailedRetired {
		t.Errorf("DetailedRetired = %d, prefix+intervals = %d", r.DetailedRetired, got)
	}
	if got := r.PrefixCycles + sumC; got != r.DetailedCycles {
		t.Errorf("DetailedCycles = %d, prefix+intervals = %d", r.DetailedCycles, got)
	}
}

// TestDeterministic pins that two sampled runs are identical modulo wall
// clock — required for the result cache and the golden sampling table.
// The manifest carries every deterministic field.
func TestDeterministic(t *testing.T) {
	p := mcfProg(t)
	a, err := Run(p, sampleCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, sampleCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Manifest())
	jb, _ := json.Marshal(b.Manifest())
	if !bytes.Equal(ja, jb) {
		t.Errorf("two sampled runs differ:\n%s\n%s", ja, jb)
	}
	sa, sb := *a.Extrapolated, *b.Extrapolated
	sa.WallSeconds, sb.WallSeconds = 0, 0
	if sa != sb {
		t.Errorf("extrapolated Stats differ modulo WallSeconds:\n%+v\n%+v", sa, sb)
	}
}

// TestSharedSlots pins that results do not depend on interval scheduling:
// a shared worker pool (concurrent intervals) and the private pool give
// byte-identical manifests.
func TestSharedSlots(t *testing.T) {
	p := mcfProg(t)
	a, err := Run(p, sampleCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	slots := make(chan struct{}, 4)
	b, err := Run(p, sampleCfg(), Options{Slots: slots})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Manifest())
	jb, _ := json.Marshal(b.Manifest())
	if !bytes.Equal(ja, jb) {
		t.Error("shared-pool run differs from private-pool run")
	}
	if len(slots) != 0 {
		t.Errorf("%d slots leaked", len(slots))
	}
}

// TestSequentialMatchesStreamed is the pipeline determinism golden: the
// streamed producer/consumer path must produce byte-identical results —
// manifest AND full extrapolated Stats — to the sequential
// inline-after-capture path, for both the private pool and a shared one.
// Run under -race this also exercises the checkpoint handoff for races.
func TestSequentialMatchesStreamed(t *testing.T) {
	p := mcfProg(t)
	seq, err := Run(p, sampleCfg(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	js, _ := json.Marshal(seq.Manifest())
	for _, o := range []Options{{}, {Slots: make(chan struct{}, 4)}} {
		str, err := Run(p, sampleCfg(), o)
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(str.Manifest())
		if !bytes.Equal(js, ja) {
			t.Errorf("streamed manifest differs from sequential:\n%s\n%s", js, ja)
		}
		sa, sb := *seq.Extrapolated, *str.Extrapolated
		sa.WallSeconds, sb.WallSeconds = 0, 0
		if sa != sb {
			t.Errorf("streamed Stats differ from sequential modulo WallSeconds:\n%+v\n%+v", sa, sb)
		}
	}
}

// TestCachesOnlyWarmMode pins the reduced-warming operating point:
// caches-only warming (predictors retrain per interval via SampleWarmup
// instead of continuously) must still produce a usable estimate, and
// must be deterministic like the full mode.
func TestCachesOnlyWarmMode(t *testing.T) {
	p := mcfProg(t)
	cfg := sampleCfg()
	cfg.WarmMode = "caches"
	cfg.SampleWarmup = 512
	ex := exactStats(t, p, cfg)
	r, err := Run(p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.K < 2 {
		t.Fatalf("K = %d, want >= 2 intervals", r.K)
	}
	// Looser bound than full warming: predictors see only the per-interval
	// warmup window. Structural regressions (no warmup at all, broken
	// cache warming) land far outside 20%.
	errPct := 100 * math.Abs(r.IPC-ex.IPC()) / ex.IPC()
	if errPct > 20 {
		t.Errorf("caches-only sampled IPC %.4f vs exact %.4f: |err| %.1f%% > 20%%", r.IPC, ex.IPC(), errPct)
	}
	b, err := Run(p, cfg, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(r.Manifest())
	jb, _ := json.Marshal(b.Manifest())
	if !bytes.Equal(ja, jb) {
		t.Error("caches-only runs differ between streamed and sequential paths")
	}
}

func TestMaxInstsTruncates(t *testing.T) {
	p := mcfProg(t)
	cfg := sampleCfg()
	cfg.MaxInsts = 20_000
	r, err := Run(p, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalInsts != cfg.MaxInsts {
		t.Errorf("TotalInsts = %d, want MaxInsts %d", r.TotalInsts, cfg.MaxInsts)
	}
	if r.Extrapolated.HaltRetired {
		t.Error("HaltRetired = true on a truncated run")
	}
}

func TestTooShortProgram(t *testing.T) {
	p := prog.MustAssemble(`
        li r1, 3
loop:   subi r1, r1, 1
        br.gt r1, zero, loop
        halt`)
	if _, err := Run(p, sampleCfg(), Options{}); err == nil {
		t.Fatal("sampling a 8-instruction program succeeded; want too-short error")
	}
}

func TestSampleModeRequired(t *testing.T) {
	cfg := core.EnhancedDMPConfig()
	if _, err := Run(mcfProg(t), cfg, Options{}); err == nil {
		t.Fatal("Run without SampleMode succeeded; want error")
	}
}
