// Package merge implements a hardware-style dynamic merge-point
// predictor: it observes the retired instruction stream and learns, per
// hard-to-predict branch, the control-flow merge (CFM) point at which
// the branch's taken and not-taken paths reconverge — with no compiler
// annotation or ISA hint required.
//
// This removes DMP's biggest practical dependency (Section 2.2 of the
// paper ships CFM points as compiler-selected ISA hints): with a merge
// predictor, raw unannotated binaries can be dynamically predicated.
// The mechanism follows Pruett & Patt's dynamic merge-point prediction
// (TR-HPS-2020-001) in spirit — learn reconvergence from retired control
// flow, filter out call bodies, keep a small bounded table — while the
// training rule mirrors this repo's own offline selector
// (profile.selectCFMs): the learned CFM point is the earliest PC
// observed on BOTH the taken and the not-taken path of the branch within
// MaxDist retired instructions, restricted to the branch's own call
// depth.
//
// Hardware model:
//
//   - a reconvergence table of TableSize entries, tagged by branch PC,
//     LRU-replaced; each entry holds the learned CFM point, a saturating
//     confidence counter, and a distance estimate (which becomes the
//     early-exit threshold of a dynamic episode);
//   - up to MaxWindows concurrent training windows; a window opens when
//     a tracked branch retires and records the first MaxTrack distinct
//     PCs retired at the branch's own call depth within MaxDist
//     instructions (a retired CALL suspends recording until the matching
//     RET; returning below the branch's frame ends the window, so a
//     learned merge PC can never sit in a different function);
//   - when the table entry has a completed window for both directions,
//     the pair is folded: the common PC minimizing the summed path
//     distance becomes the candidate CFM, confirming instances saturate
//     the confidence counter upward, and disagreeing instances decay it
//     (hysteresis) until the entry retrains to the new point.
//
// The predictor is deterministic: identical retire streams produce
// identical tables, predictions and counters (pinned by tests). All
// storage is allocated at construction; Observe and Lookup are
// allocation-free (enforced by the dmpvet hotalloc analyzer).
package merge

import (
	"fmt"

	"dmp/internal/isa"
)

// Config sizes the predictor. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// TableSize is the number of reconvergence-table entries (LRU
	// replaced). The sensitivity experiment sweeps 16/64/256.
	TableSize int
	// MaxDist is the training-window length in retired instructions —
	// how far past the branch a merge point may be learned. Matches the
	// offline profiler's 120-instruction rule (profile.Options.MaxDist).
	MaxDist int
	// MaxTrack caps the distinct same-depth PCs recorded per window.
	MaxTrack int
	// MaxWindows caps concurrent training windows.
	MaxWindows int
	// ConfMax saturates the per-entry confidence counter.
	ConfMax int
	// ConfMin is the confidence required before Lookup supplies a
	// prediction.
	ConfMin int
}

// DefaultConfig returns the hardware budget used by the mergepred
// experiment's default leg: a 64-entry table, the profiler's
// 120-instruction window, and 2-of-7 confidence hysteresis.
func DefaultConfig() Config {
	return Config{
		TableSize:  64,
		MaxDist:    120,
		MaxTrack:   48,
		MaxWindows: 4,
		ConfMax:    7,
		ConfMin:    2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TableSize <= 0:
		return fmt.Errorf("merge: TableSize must be positive")
	case c.MaxDist <= 0 || c.MaxTrack <= 0 || c.MaxTrack > c.MaxDist:
		return fmt.Errorf("merge: need 0 < MaxTrack <= MaxDist")
	case c.MaxWindows <= 0:
		return fmt.Errorf("merge: MaxWindows must be positive")
	case c.ConfMax <= 0 || c.ConfMin <= 0 || c.ConfMin > c.ConfMax:
		return fmt.Errorf("merge: need 0 < ConfMin <= ConfMax")
	}
	return nil
}

// Counts are the predictor's internal occupancy/training counters.
// Lookup-side hit/miss accounting lives with the caller (core.Stats),
// which knows which lookups fed real episode-entry decisions.
type Counts struct {
	// Evictions counts LRU replacements of live table entries.
	Evictions uint64
	// Windows counts completed training windows folded into the table.
	Windows uint64
	// Trainings counts folded direction-pairs (each consumes one taken
	// and one not-taken window of the same branch).
	Trainings uint64
	// Flips counts learned CFM points displaced by a different candidate
	// after confidence decayed to zero.
	Flips uint64
}

// Prediction is a learned merge point for a branch.
type Prediction struct {
	// CFM is the learned control-flow merge PC.
	CFM uint64
	// ExitThreshold is the suggested early-exit budget for the alternate
	// path, derived from the learned dynamic distance exactly like the
	// offline profiler's (1.5x average distance + 8, capped at MaxDist).
	ExitThreshold int
	// Conf is the entry's confidence at lookup time.
	Conf int
}

// entry is one reconvergence-table row.
type entry struct {
	valid   bool
	pc      uint64 // branch PC tag
	lastUse uint64 // LRU stamp
	cfm     uint64 // learned merge PC (0 = none yet)
	conf    int
	distEst int // EWMA dynamic distance branch -> CFM
	have    [2]bool
	path    [2][]uint64 // latest completed window per direction (0 = not-taken)
}

// dedupBuckets sizes each window's direct-mapped seen-PC filter. With
// MaxTrack well below the bucket count, collisions (which only cost a
// duplicate recorded PC, never a lost one... see feedWindows) are rare.
const dedupBuckets = 128

// window is one in-flight training window.
type window struct {
	active bool
	slot   int    // reconvergence-table slot being trained
	pc     uint64 // branch PC (revalidates the slot against eviction)
	dir    int    // 0 = not-taken, 1 = taken
	depth0 int    // call depth of the branch
	left   int    // retired instructions remaining in the window
	pcs    []uint64
	// Direct-mapped duplicate filter: seenPC[h] records the last PC
	// hashed to bucket h, seenAt[h] the window generation that wrote it.
	// Bumping gen on open invalidates the whole filter in O(1).
	gen    uint32
	seenPC []uint64
	seenAt []uint32
}

// Predictor learns merge points from the retired instruction stream.
// It is not safe for concurrent use; a Machine owns exactly one.
type Predictor struct {
	cfg     Config
	entries []entry
	index   map[uint64]int // branch PC -> slot
	used    int            // live entries (allocation before first eviction)
	stamp   uint64         // LRU clock, bumped per Observe/Lookup
	depth   int            // call depth of the retired stream (relative)
	windows []window
	active  int // live training windows; gates the per-retire window scan
	counts  Counts
	// shared marks the storage (entries, index, windows) as possibly
	// aliased by a Clone: the next mutating call deep-copies it first
	// (lazy copy-on-write — sampled simulation snapshots the warmed
	// predictor once per period, and both sides keep training).
	shared bool
}

// New builds a predictor; all storage is preallocated so the observe and
// lookup paths never touch the heap.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:     cfg,
		entries: make([]entry, cfg.TableSize),
		index:   make(map[uint64]int, cfg.TableSize),
		windows: make([]window, cfg.MaxWindows),
	}
	for i := range p.entries {
		p.entries[i].path[0] = make([]uint64, 0, cfg.MaxTrack)
		p.entries[i].path[1] = make([]uint64, 0, cfg.MaxTrack)
	}
	for i := range p.windows {
		p.windows[i].pcs = make([]uint64, 0, cfg.MaxTrack)
		p.windows[i].seenPC = make([]uint64, dedupBuckets)
		p.windows[i].seenAt = make([]uint32, dedupBuckets)
	}
	return p, nil
}

// Counts returns the predictor's internal counters.
func (p *Predictor) Counts() Counts { return p.counts }

// Entries returns the number of live reconvergence-table entries.
func (p *Predictor) Entries() int { return p.used }

// Observe feeds one retired architectural instruction (predicate-TRUE
// program instructions only, in retirement order). op and taken describe
// the instruction; train marks a conditional branch the machine wants
// merge prediction for (low confidence or mispredicted at retirement) —
// only such branches allocate table entries, though later instances of
// an already-tracked branch always open training windows so both
// directions accumulate evidence.
//
//dmp:hotpath
func (p *Predictor) Observe(pc uint64, op isa.Op, taken, train bool) {
	if p.shared {
		p.unshare()
	}
	p.stamp++

	// Feed the in-flight windows first: the branch's own retirement must
	// not appear in its window. The active counter keeps the idle-stream
	// fast path (no windows training, which is most retired instructions)
	// to one compare.
	if p.active > 0 {
		p.feedWindows(pc)
	}

	// Track the retired stream's call depth. The instruction at pc ran
	// at the current depth; CALLs raise the depth for what follows.
	switch op {
	case isa.CALL, isa.CALLR:
		p.depth++
	case isa.RET:
		p.depth--
	case isa.BR:
		slot, ok := p.index[pc]
		if !ok {
			if !train {
				return
			}
			slot = p.alloc(pc)
		}
		e := &p.entries[slot]
		e.lastUse = p.stamp
		p.openWindow(slot, pc, taken)
	}
}

// feedWindows advances every in-flight training window by one retired
// instruction at pc. Split out of Observe so the no-window fast path
// stays small enough to inline.
//
//dmp:hotpath
func (p *Predictor) feedWindows(pc uint64) {
	for i := range p.windows {
		w := &p.windows[i]
		if !w.active {
			continue
		}
		if p.depth < w.depth0 {
			// Retired past the branch's own frame: a merge point in the
			// caller would be in a different function — stop training
			// this instance (call-filtering rule).
			p.finishWindow(w)
			continue
		}
		if p.depth == w.depth0 {
			if pc == w.pc {
				// The branch itself retired again: the next instance's
				// paths would contaminate this window (its opposite-path
				// PCs would masquerade as reconvergence points), so the
				// window ends here.
				p.finishWindow(w)
				continue
			}
			// First-occurrence filter. A bucket collision evicts the
			// older PC, whose next occurrence is then recorded again:
			// the occasional duplicate path entry is harmless (retrain
			// matches on first occurrence), whereas a lost PC could
			// hide a merge point — so collisions err toward recording.
			h := pc * 0x9E3779B97F4A7C15 >> (64 - 7) // Fibonacci hash into the 128 buckets
			if w.seenAt[h] != w.gen || w.seenPC[h] != pc {
				w.seenAt[h] = w.gen
				w.seenPC[h] = pc
				w.pcs = append(w.pcs, pc)
			}
		}
		w.left--
		if w.left <= 0 || len(w.pcs) >= p.cfg.MaxTrack {
			p.finishWindow(w)
		}
	}
}

// Lookup consults the table for a learned merge point of the branch at
// pc (fetch-time; wrong-path lookups are fine and touch LRU just like a
// real CAM port would). ok is false when the branch is untracked or its
// confidence is below ConfMin.
//
//dmp:hotpath
func (p *Predictor) Lookup(pc uint64) (pr Prediction, ok bool) {
	if p.shared {
		// Lookup writes too (LRU stamps), so it must also privatize.
		p.unshare()
	}
	slot, found := p.index[pc]
	if !found {
		return pr, false
	}
	p.stamp++
	e := &p.entries[slot]
	e.lastUse = p.stamp
	if e.cfm == 0 || e.conf < p.cfg.ConfMin {
		return pr, false
	}
	thr := e.distEst + e.distEst/2 + 8
	if thr > p.cfg.MaxDist {
		thr = p.cfg.MaxDist
	}
	pr.CFM = e.cfm
	pr.ExitThreshold = thr
	pr.Conf = e.conf
	return pr, true
}

// alloc returns the slot for a new entry tagged pc, evicting the LRU
// entry when the table is full (ties break toward the lower slot, so
// replacement is deterministic).
func (p *Predictor) alloc(pc uint64) int {
	slot := -1
	if p.used < len(p.entries) {
		slot = p.used
		p.used++
	} else {
		min := uint64(1<<64 - 1)
		for i := range p.entries {
			if p.entries[i].lastUse < min {
				min = p.entries[i].lastUse
				slot = i
			}
		}
		old := &p.entries[slot]
		delete(p.index, old.pc)
		p.counts.Evictions++
		// Abandon windows still training the evicted branch.
		for i := range p.windows {
			if w := &p.windows[i]; w.active && w.slot == slot {
				w.active = false
				p.active--
			}
		}
	}
	e := &p.entries[slot]
	path0, path1 := e.path[0][:0], e.path[1][:0]
	*e = entry{valid: true, pc: pc}
	e.path[0], e.path[1] = path0, path1
	p.index[pc] = slot
	return slot
}

// openWindow starts a training window for the branch instance that just
// retired. If every window is busy the instance is skipped (a later one
// trains instead); a window already training the same branch direction
// also skips, so one hot branch cannot monopolize all windows.
func (p *Predictor) openWindow(slot int, pc uint64, taken bool) {
	dir := 0
	if taken {
		dir = 1
	}
	free := -1
	for i := range p.windows {
		w := &p.windows[i]
		if !w.active {
			if free < 0 {
				free = i
			}
			continue
		}
		if w.slot == slot && w.dir == dir {
			return
		}
	}
	if free < 0 {
		return
	}
	w := &p.windows[free]
	w.active = true
	p.active++
	w.slot = slot
	w.pc = pc
	w.dir = dir
	w.depth0 = p.depth
	w.left = p.cfg.MaxDist
	w.pcs = w.pcs[:0]
	w.gen++
	if w.gen == 0 {
		// Generation wrap: a stale bucket could otherwise alias a
		// four-billion-windows-old entry. Clear and restart at 1.
		clear(w.seenAt)
		w.gen = 1
	}
}

// finishWindow folds a completed window into its table entry, and — once
// the entry holds a completed window for both directions — retrains the
// entry from the pair.
func (p *Predictor) finishWindow(w *window) {
	w.active = false
	p.active--
	e := &p.entries[w.slot]
	if !e.valid || e.pc != w.pc {
		return // entry was evicted while the window trained
	}
	p.counts.Windows++
	e.path[w.dir] = append(e.path[w.dir][:0], w.pcs...)
	e.have[w.dir] = true
	if e.have[0] && e.have[1] {
		p.retrain(e)
		e.have[0], e.have[1] = false, false
	}
}

// retrain computes the candidate merge point from the entry's current
// direction pair — the common PC minimizing summed path distance, the
// online analogue of profile.selectCFMs's frequency-then-distance rank —
// and applies confirm/decay hysteresis to the confidence counter.
func (p *Predictor) retrain(e *entry) {
	p.counts.Trainings++
	bestPC, bestCost := uint64(0), 1<<31
	for i, tp := range e.path[1] {
		if i >= bestCost {
			break // cost = i + j >= i can no longer beat the best
		}
		// The branch cannot merge its own paths, and its fall-through
		// only appears on both paths through loop-iteration carry — the
		// same exclusions the offline selector applies.
		if tp == e.pc || tp == e.pc+1 {
			continue
		}
		for j, np := range e.path[0] {
			if np != tp {
				continue
			}
			cost := i + j
			if cost < bestCost || (cost == bestCost && tp < bestPC) {
				bestPC, bestCost = tp, cost
			}
			break
		}
	}
	if bestPC == 0 {
		// No common point within the windows: decay confidence so a
		// stale merge point eventually stops being predicted.
		if e.conf > 0 {
			e.conf--
		}
		return
	}
	// Distance from the branch: the longer of the two path indices, +1
	// for 1-based distance (index 0 is the instruction after the branch).
	dist := bestCost + 1 // placeholder; recompute as max below
	for i, tp := range e.path[1] {
		if tp == bestPC {
			dist = i + 1
			break
		}
	}
	for j, np := range e.path[0] {
		if np == bestPC {
			if j+1 > dist {
				dist = j + 1
			}
			break
		}
	}
	switch {
	case bestPC == e.cfm:
		if e.conf < p.cfg.ConfMax {
			e.conf++
		}
	case e.conf <= 1:
		if e.cfm != 0 {
			p.counts.Flips++
		}
		e.cfm = bestPC
		e.conf = 1
		e.distEst = 0
	default:
		e.conf-- // hysteresis: disagreeing sample decays, does not flip
		return
	}
	if e.distEst == 0 {
		e.distEst = dist
	} else {
		e.distEst = (3*e.distEst + dist) / 4
	}
}

// Clone snapshots the predictor: table entries (including learned CFM
// points and their path windows), the PC index, in-flight training
// windows, and counters. Sampled simulation warms one predictor
// continuously during functional fast-forward and clones it per
// checkpoint so detailed intervals start with the reconvergence table an
// exact run would have. The snapshot itself is O(1): storage is shared
// and marked, and each instance deep-copies it privately on its first
// subsequent mutation (unshare).
func (p *Predictor) Clone() *Predictor {
	// Lazy copy-on-write: both instances alias the same storage until one
	// of them mutates (Observe/Lookup), which deep-copies first. The
	// shared storage itself is never written again, so a clone handed to
	// another goroutine (with a synchronizing handoff) is race-free.
	p.shared = true
	n := *p
	return &n
}

// unshare deep-copies the predictor's aliased storage into private
// allocations. Kept out of the //dmp:hotpath bodies: Observe/Lookup pay
// one flag test, and the copy happens at most once per Clone.
func (p *Predictor) unshare() {
	entries := make([]entry, len(p.entries))
	for i := range p.entries {
		e := p.entries[i]
		for d := 0; d < 2; d++ {
			path := make([]uint64, len(e.path[d]), p.cfg.MaxTrack)
			copy(path, e.path[d])
			e.path[d] = path
		}
		entries[i] = e
	}
	index := make(map[uint64]int, len(p.index))
	for pc, slot := range p.index {
		index[pc] = slot
	}
	windows := make([]window, len(p.windows))
	for i := range p.windows {
		w := p.windows[i]
		pcs := make([]uint64, len(w.pcs), p.cfg.MaxTrack)
		copy(pcs, w.pcs)
		w.pcs = pcs
		w.seenPC = append([]uint64(nil), w.seenPC...)
		w.seenAt = append([]uint32(nil), w.seenAt...)
		windows[i] = w
	}
	p.entries, p.index, p.windows = entries, index, windows
	p.shared = false
}
