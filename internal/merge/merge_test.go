package merge

import (
	"testing"

	"dmp/internal/isa"
)

// testConfig is a small, fast table for unit tests.
func testConfig() Config {
	return Config{TableSize: 4, MaxDist: 32, MaxTrack: 16, MaxWindows: 4, ConfMax: 7, ConfMin: 2}
}

// ev is one retired instruction fed to the predictor.
type ev struct {
	pc    uint64
	op    isa.Op
	taken bool
	train bool
}

func feed(p *Predictor, evs []ev) {
	for _, e := range evs {
		p.Observe(e.pc, e.op, e.taken, e.train)
	}
}

// br emits a trainable conditional-branch retirement.
func br(pc uint64, taken bool) ev { return ev{pc: pc, op: isa.BR, taken: taken, train: true} }

// seq emits plain retirements for consecutive PCs [from, to).
func seq(from, to uint64) []ev {
	var evs []ev
	for pc := from; pc < to; pc++ {
		evs = append(evs, ev{pc: pc, op: isa.ADD})
	}
	return evs
}

// hammockInstance is one dynamic instance of a hammock branch at pc 10:
// taken path 20..22, not-taken path 11..13, both joining at 30, then
// straight-line code to 40.
func hammockInstance(taken bool) []ev {
	evs := []ev{br(10, taken)}
	if taken {
		evs = append(evs, seq(20, 23)...)
	} else {
		evs = append(evs, seq(11, 14)...)
	}
	return append(evs, seq(30, 40)...)
}

// TestHammockLearns pins the headline behavior: alternating taken and
// not-taken instances of a hammock branch learn its join PC with
// usable confidence within a handful of retires.
func TestHammockLearns(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	retires := 0
	for i := 0; i < 8; i++ {
		inst := hammockInstance(i%2 == 0)
		feed(p, inst)
		retires += len(inst)
	}
	pr, ok := p.Lookup(10)
	if !ok {
		t.Fatalf("no prediction for hammock branch after %d retires; counts %+v", retires, p.Counts())
	}
	if pr.CFM != 30 {
		t.Errorf("learned CFM = %d, want 30 (the join)", pr.CFM)
	}
	if pr.Conf < testConfig().ConfMin {
		t.Errorf("confidence %d below ConfMin", pr.Conf)
	}
	// Distance to the join is 4 on both paths; the threshold rule is
	// dist + dist/2 + 8.
	if pr.ExitThreshold < 4 || pr.ExitThreshold > testConfig().MaxDist {
		t.Errorf("implausible exit threshold %d", pr.ExitThreshold)
	}
	if retires > 120 {
		t.Errorf("took %d retires to converge; want a small training budget", retires)
	}
}

// TestBiasedBranchDoesNotPredict pins that a branch observed in only one
// direction never proposes a merge point: there is no both-paths
// evidence (the offline selector has the same rule).
func TestBiasedBranchDoesNotPredict(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		feed(p, hammockInstance(true))
	}
	if pr, ok := p.Lookup(10); ok {
		t.Errorf("one-directional branch predicted CFM %d; want no prediction", pr.CFM)
	}
}

// TestCallFiltering pins the call-depth rule from both sides: a PC
// inside a callee shared by both paths must not become the merge point,
// and a branch whose paths leave the function (both paths RET) must not
// learn a merge PC in the caller's frame.
func TestCallFiltering(t *testing.T) {
	t.Run("callee-body-excluded", func(t *testing.T) {
		p, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Both paths call the same helper (body at 100..102, RET at 102)
		// before reconverging at 30. The helper body PCs appear on both
		// paths but at depth+1; the learned CFM must be the real join.
		inst := func(taken bool) []ev {
			evs := []ev{br(10, taken)}
			if taken {
				evs = append(evs, ev{pc: 20, op: isa.CALL})
			} else {
				evs = append(evs, ev{pc: 11, op: isa.CALL})
			}
			evs = append(evs, seq(100, 102)...)
			evs = append(evs, ev{pc: 102, op: isa.RET})
			return append(evs, seq(30, 40)...)
		}
		for i := 0; i < 8; i++ {
			feed(p, inst(i%2 == 0))
		}
		pr, ok := p.Lookup(10)
		if !ok {
			t.Fatal("no prediction learned")
		}
		if pr.CFM >= 100 && pr.CFM <= 102 {
			t.Errorf("learned CFM %d sits inside the callee", pr.CFM)
		}
		if pr.CFM != 30 {
			t.Errorf("learned CFM = %d, want 30", pr.CFM)
		}
	})

	t.Run("caller-frame-excluded", func(t *testing.T) {
		p, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		// The function is entered by CALL at 5; the branch's two paths
		// both RET, so the only "common" PCs are in the caller (50..)
		// one frame up. No merge point may be proposed.
		inst := func(taken bool) []ev {
			evs := []ev{{pc: 5, op: isa.CALL}}
			evs = append(evs, br(10, taken))
			if taken {
				evs = append(evs, ev{pc: 20, op: isa.ADD}, ev{pc: 21, op: isa.RET})
			} else {
				evs = append(evs, ev{pc: 11, op: isa.ADD}, ev{pc: 12, op: isa.RET})
			}
			return append(evs, seq(50, 60)...)
		}
		for i := 0; i < 12; i++ {
			feed(p, inst(i%2 == 0))
		}
		if pr, ok := p.Lookup(10); ok {
			t.Errorf("learned CFM %d across a RET; merge points must stay in the branch's function", pr.CFM)
		}
	})
}

// TestCapacityEvictionKeepsHotBranches pins LRU behavior: with a 3-entry
// table, two hot hammocks, and a stream of cold one-shot branches, the
// hot branches keep their predictions while the cold ones evict each
// other out of the spare slot.
func TestCapacityEvictionKeepsHotBranches(t *testing.T) {
	cfg := testConfig()
	cfg.TableSize = 3
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := func(base uint64, taken bool) []ev {
		evs := []ev{br(base, taken)}
		if taken {
			evs = append(evs, seq(base+10, base+12)...)
		} else {
			evs = append(evs, seq(base+1, base+3)...)
		}
		return append(evs, seq(base+20, base+26)...)
	}
	for i := 0; i < 12; i++ {
		feed(p, hot(100, i%2 == 0))
		feed(p, hot(200, i%2 == 1))
	}
	if _, ok := p.Lookup(100); !ok {
		t.Fatal("hot branch 100 did not learn before eviction pressure")
	}
	// A cold branch allocates by evicting the LRU entry; touching the
	// hot branches between cold allocations keeps them most recent, so
	// the cold entries must evict each other.
	for i := 0; i < 6; i++ {
		feed(p, []ev{br(1000+uint64(i)*100, true)})
		feed(p, hot(100, i%2 == 0))
		feed(p, hot(200, i%2 == 1))
	}
	if p.Counts().Evictions == 0 {
		t.Fatal("capacity test produced no evictions")
	}
	if _, ok := p.Lookup(100); !ok {
		t.Error("hot branch 100 lost its entry to cold branches")
	}
	if _, ok := p.Lookup(200); !ok {
		t.Error("hot branch 200 lost its entry to cold branches")
	}
	if p.Entries() > cfg.TableSize {
		t.Errorf("table holds %d entries, cap %d", p.Entries(), cfg.TableSize)
	}
}

// TestUntrackedBranchesDoNotAllocate pins the train gate: a retired
// branch with train=false never allocates a table entry.
func TestUntrackedBranchesDoNotAllocate(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		feed(p, []ev{{pc: 10, op: isa.BR, taken: i%2 == 0, train: false}})
		feed(p, seq(11, 20))
	}
	if p.Entries() != 0 {
		t.Errorf("untracked branch allocated %d entries", p.Entries())
	}
	if _, ok := p.Lookup(10); ok {
		t.Error("untracked branch produced a prediction")
	}
}

// TestDeterminism pins that two predictors fed the identical retire
// stream agree on every prediction and counter.
func TestDeterminism(t *testing.T) {
	var stream []ev
	for i := 0; i < 40; i++ {
		stream = append(stream, hammockInstance(i%3 != 0)...)
		stream = append(stream, br(500+uint64(i%5)*7, i%2 == 0))
		stream = append(stream, seq(600, 610)...)
		if i%4 == 0 {
			stream = append(stream, ev{pc: 700, op: isa.CALL})
			stream = append(stream, seq(800, 805)...)
			stream = append(stream, ev{pc: 805, op: isa.RET})
		}
	}
	a, _ := New(testConfig())
	b, _ := New(testConfig())
	feed(a, stream)
	feed(b, stream)
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
	for pc := uint64(0); pc < 1000; pc++ {
		pa, oka := a.Lookup(pc)
		pb, okb := b.Lookup(pc)
		if oka != okb || pa != pb {
			t.Fatalf("pc %d: %v/%v vs %v/%v", pc, pa, oka, pb, okb)
		}
	}
}

// TestValidate pins the config error cases.
func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mut    func(*Config)
		wantOK bool
	}{
		{"default", func(*Config) {}, true},
		{"zero-table", func(c *Config) { c.TableSize = 0 }, false},
		{"track-gt-dist", func(c *Config) { c.MaxTrack = c.MaxDist + 1 }, false},
		{"no-windows", func(c *Config) { c.MaxWindows = 0 }, false},
		{"confmin-gt-max", func(c *Config) { c.ConfMin = c.ConfMax + 1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if (err == nil) != tc.wantOK {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.wantOK)
			}
			if _, err := New(cfg); (err == nil) != tc.wantOK {
				t.Errorf("New() error = %v, want ok=%v", err, tc.wantOK)
			}
		})
	}
}
