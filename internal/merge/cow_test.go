package merge

import "testing"

// COW isolation pins: Clone marks both copies shared and the first
// Observe/Lookup on either side deep-copies (lazy unshare). Training or
// even just looking up (LRU stamps) on one side must not leak into the
// other (mirrors core's TestSnapshotIsolatesWarmState at the component
// level).

func newTestPredictor(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func trainHammock(p *Predictor, n int) {
	for i := 0; i < n; i++ {
		feed(p, hammockInstance(i%2 == 0))
	}
}

func TestPredictorCloneIsolation(t *testing.T) {
	p := newTestPredictor(t)
	trainHammock(p, 12)
	pr, ok := p.Lookup(10)
	if !ok {
		t.Fatal("trained predictor lost its hammock entry")
	}
	cl := p.Clone()

	// Train a second, conflicting branch in the original only — with
	// TableSize 4 this churns entries and LRU state.
	for i := 0; i < 12; i++ {
		feed(p, []ev{br(100, i%2 == 0)})
		feed(p, seq(101, 140))
	}
	cpr, cok := cl.Lookup(10)
	if !cok || cpr.CFM != pr.CFM {
		t.Errorf("original's later training leaked into the clone: %+v ok=%v, want %+v", cpr, cok, pr)
	}

	// Reverse direction: churn the clone, the original keeps its entry.
	cl2 := p.Clone()
	before, bok := p.Lookup(10)
	for i := 0; i < 12; i++ {
		feed(cl2, []ev{br(200, i%2 == 0)})
		feed(cl2, seq(201, 240))
	}
	after, aok := p.Lookup(10)
	if aok != bok || (aok && after.CFM != before.CFM) {
		t.Errorf("clone's later training leaked into the original: %+v ok=%v, want %+v ok=%v",
			after, aok, before, bok)
	}
}

// TestPredictorCloneLookupUnshares pins the subtle half of the lazy COW:
// Lookup mutates LRU stamps, so even a read-only-looking clone must
// unshare before its first Lookup — otherwise its LRU writes would
// corrupt the snapshot the other side holds.
func TestPredictorCloneLookupUnshares(t *testing.T) {
	p := newTestPredictor(t)
	trainHammock(p, 12)
	cl := p.Clone()
	for i := 0; i < 100; i++ {
		cl.Lookup(10) // stamp the clone's LRU hard
	}
	a := newTestPredictor(t)
	trainHammock(a, 12)
	// The original must behave as if the clone never existed: identical
	// to a predictor trained the same way with no clone in the picture.
	pr1, ok1 := p.Lookup(10)
	pr2, ok2 := a.Lookup(10)
	if ok1 != ok2 || pr1 != pr2 {
		t.Errorf("clone lookups disturbed the original: %+v ok=%v, want %+v ok=%v", pr1, ok1, pr2, ok2)
	}
}
