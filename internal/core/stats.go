package core

import (
	"fmt"
	"math"
)

// Stats aggregates everything the paper's evaluation reports.
type Stats struct {
	Cycles uint64

	// Retired program instructions with TRUE (or no) predicate: the IPC
	// numerator (predicate-FALSE instructions and inserted uops do not
	// contribute, Section 3.1).
	RetiredInsts uint64
	// RetiredFalse counts retired predicate-FALSE program instructions.
	RetiredFalse uint64
	// RetiredSelects / RetiredMarkers count retired select-uops and
	// enter/exit/fork uops (the "extra uops" of Figure 12).
	RetiredSelects uint64
	RetiredMarkers uint64

	// Fetch-side counts (Figure 12 left, Figure 1).
	FetchedInsts   uint64 // program instructions fetched (incl. wrong path)
	FetchedWrongCD uint64 // wrong-path fetches, control-dependent
	FetchedWrongCI uint64 // wrong-path fetches, control-independent
	FetchedMarkers uint64 // inserted uops entering the pipe at fetch

	// Executed counts (Figure 12 right): every uop that issued.
	ExecutedInsts   uint64
	ExecutedSelects uint64
	ExecutedMarkers uint64

	// Branches (Table 3), counted at retirement of predicate-TRUE
	// conditional branches.
	RetiredBranches    uint64
	RetiredMispredicts uint64

	// Pipeline flushes due to branch mispredictions (Figure 11).
	Flushes uint64

	// Dynamic predication episodes by Table-1 exit case (Figures 8/10).
	ExitCases [7]uint64 // indexed by ExitCase; [0] = squashed episodes
	// Episodes converted back to normal branches.
	EarlyExits     uint64
	MDBConversions uint64
	Episodes       uint64

	// Confidence estimator quality: low-confidence diverge fetches that
	// were actually correct / incorrect.
	LowConfCorrect uint64
	LowConfWrong   uint64

	// Merge-point predictor (internal/merge; CFMSource dynamic/hybrid).
	// Hits/Misses count fetch-side lookups for low-confidence branches
	// with no usable annotation; Evictions/Trainings mirror the
	// predictor's own counters at end of run. MergeMispredicts counts
	// learned-CFM episodes abandoned by early exit (the alternate path
	// never reached the predicted merge point); DynCFMEpisodes counts
	// episodes entered from a predictor-supplied CFM.
	MergeHits        uint64
	MergeMisses      uint64
	MergeEvictions   uint64
	MergeTrainings   uint64
	MergeMispredicts uint64
	DynCFMEpisodes   uint64

	// Memory system.
	L1IMisses, L1DMisses, L2Misses uint64

	// Loads that had to wait on store predicates or unknown addresses.
	LoadStalls uint64

	// Oracle lockstep health: pauses (fetch left the correct path) and
	// resumes. A large gap means the oracle spent the run detached and
	// wrong-path classification degraded to control-dependent.
	OraclePauses, OracleResumes uint64

	// HaltRetired reports whether the program ran to completion.
	HaltRetired bool

	// Simulator throughput. FetchedUops counts every window entry the
	// machine created (program instructions, markers and select-uops,
	// wrong path included); WallSeconds is the host wall-clock time of
	// Machine.Run. Both describe the simulator, not the simulated machine,
	// so they are excluded from experiment tables and determinism
	// comparisons.
	FetchedUops uint64
	WallSeconds float64
}

// Clone returns an independent copy of s. Results shared through the
// experiment result cache are frozen; a caller that wants to mutate one
// (accumulate, rescale, zero a field) must work on a Clone.
func (s *Stats) Clone() *Stats {
	c := *s
	return &c
}

// Delta returns the field-wise difference s - prev for every counter:
// what happened between two snapshots of the same run. Counters are
// monotonic during a run, so each difference is well-defined; the
// interval sampler (internal/obs) builds its per-interval rows from
// this. HaltRetired is taken from s.
func (s *Stats) Delta(prev *Stats) Stats {
	d := Stats{
		Cycles:             s.Cycles - prev.Cycles,
		RetiredInsts:       s.RetiredInsts - prev.RetiredInsts,
		RetiredFalse:       s.RetiredFalse - prev.RetiredFalse,
		RetiredSelects:     s.RetiredSelects - prev.RetiredSelects,
		RetiredMarkers:     s.RetiredMarkers - prev.RetiredMarkers,
		FetchedInsts:       s.FetchedInsts - prev.FetchedInsts,
		FetchedWrongCD:     s.FetchedWrongCD - prev.FetchedWrongCD,
		FetchedWrongCI:     s.FetchedWrongCI - prev.FetchedWrongCI,
		FetchedMarkers:     s.FetchedMarkers - prev.FetchedMarkers,
		ExecutedInsts:      s.ExecutedInsts - prev.ExecutedInsts,
		ExecutedSelects:    s.ExecutedSelects - prev.ExecutedSelects,
		ExecutedMarkers:    s.ExecutedMarkers - prev.ExecutedMarkers,
		RetiredBranches:    s.RetiredBranches - prev.RetiredBranches,
		RetiredMispredicts: s.RetiredMispredicts - prev.RetiredMispredicts,
		Flushes:            s.Flushes - prev.Flushes,
		EarlyExits:         s.EarlyExits - prev.EarlyExits,
		MDBConversions:     s.MDBConversions - prev.MDBConversions,
		Episodes:           s.Episodes - prev.Episodes,
		LowConfCorrect:     s.LowConfCorrect - prev.LowConfCorrect,
		LowConfWrong:       s.LowConfWrong - prev.LowConfWrong,
		MergeHits:          s.MergeHits - prev.MergeHits,
		MergeMisses:        s.MergeMisses - prev.MergeMisses,
		MergeEvictions:     s.MergeEvictions - prev.MergeEvictions,
		MergeTrainings:     s.MergeTrainings - prev.MergeTrainings,
		MergeMispredicts:   s.MergeMispredicts - prev.MergeMispredicts,
		DynCFMEpisodes:     s.DynCFMEpisodes - prev.DynCFMEpisodes,
		L1IMisses:          s.L1IMisses - prev.L1IMisses,
		L1DMisses:          s.L1DMisses - prev.L1DMisses,
		L2Misses:           s.L2Misses - prev.L2Misses,
		LoadStalls:         s.LoadStalls - prev.LoadStalls,
		OraclePauses:       s.OraclePauses - prev.OraclePauses,
		OracleResumes:      s.OracleResumes - prev.OracleResumes,
		HaltRetired:        s.HaltRetired,
		FetchedUops:        s.FetchedUops - prev.FetchedUops,
		WallSeconds:        s.WallSeconds - prev.WallSeconds,
	}
	for i := range d.ExitCases {
		d.ExitCases[i] = s.ExitCases[i] - prev.ExitCases[i]
	}
	return d
}

// Add returns the field-wise sum s + o for every counter: the combined
// totals of two disjoint measurement windows (the sampling driver sums
// its detailed intervals this way before extrapolating). HaltRetired is
// OR-ed — the union of two windows ran to completion if either did.
func (s *Stats) Add(o *Stats) Stats {
	a := Stats{
		Cycles:             s.Cycles + o.Cycles,
		RetiredInsts:       s.RetiredInsts + o.RetiredInsts,
		RetiredFalse:       s.RetiredFalse + o.RetiredFalse,
		RetiredSelects:     s.RetiredSelects + o.RetiredSelects,
		RetiredMarkers:     s.RetiredMarkers + o.RetiredMarkers,
		FetchedInsts:       s.FetchedInsts + o.FetchedInsts,
		FetchedWrongCD:     s.FetchedWrongCD + o.FetchedWrongCD,
		FetchedWrongCI:     s.FetchedWrongCI + o.FetchedWrongCI,
		FetchedMarkers:     s.FetchedMarkers + o.FetchedMarkers,
		ExecutedInsts:      s.ExecutedInsts + o.ExecutedInsts,
		ExecutedSelects:    s.ExecutedSelects + o.ExecutedSelects,
		ExecutedMarkers:    s.ExecutedMarkers + o.ExecutedMarkers,
		RetiredBranches:    s.RetiredBranches + o.RetiredBranches,
		RetiredMispredicts: s.RetiredMispredicts + o.RetiredMispredicts,
		Flushes:            s.Flushes + o.Flushes,
		EarlyExits:         s.EarlyExits + o.EarlyExits,
		MDBConversions:     s.MDBConversions + o.MDBConversions,
		Episodes:           s.Episodes + o.Episodes,
		LowConfCorrect:     s.LowConfCorrect + o.LowConfCorrect,
		LowConfWrong:       s.LowConfWrong + o.LowConfWrong,
		MergeHits:          s.MergeHits + o.MergeHits,
		MergeMisses:        s.MergeMisses + o.MergeMisses,
		MergeEvictions:     s.MergeEvictions + o.MergeEvictions,
		MergeTrainings:     s.MergeTrainings + o.MergeTrainings,
		MergeMispredicts:   s.MergeMispredicts + o.MergeMispredicts,
		DynCFMEpisodes:     s.DynCFMEpisodes + o.DynCFMEpisodes,
		L1IMisses:          s.L1IMisses + o.L1IMisses,
		L1DMisses:          s.L1DMisses + o.L1DMisses,
		L2Misses:           s.L2Misses + o.L2Misses,
		LoadStalls:         s.LoadStalls + o.LoadStalls,
		OraclePauses:       s.OraclePauses + o.OraclePauses,
		OracleResumes:      s.OracleResumes + o.OracleResumes,
		HaltRetired:        s.HaltRetired || o.HaltRetired,
		FetchedUops:        s.FetchedUops + o.FetchedUops,
		WallSeconds:        s.WallSeconds + o.WallSeconds,
	}
	for i := range a.ExitCases {
		a.ExitCases[i] = s.ExitCases[i] + o.ExitCases[i]
	}
	return a
}

// Scale returns s with every counter multiplied by f (integer counters
// round half up): the extrapolation step of sampled simulation, where
// the summed detailed-interval counters are scaled by the ratio of total
// program instructions to sampled instructions. Ratios of scaled
// counters (IPC, misprediction rate, ...) equal the ratios of the
// unscaled sums, so derived metrics survive extrapolation exactly.
// HaltRetired copies.
func (s *Stats) Scale(f float64) Stats {
	su := func(v uint64) uint64 { return uint64(math.Floor(float64(v)*f + 0.5)) }
	c := Stats{
		Cycles:             su(s.Cycles),
		RetiredInsts:       su(s.RetiredInsts),
		RetiredFalse:       su(s.RetiredFalse),
		RetiredSelects:     su(s.RetiredSelects),
		RetiredMarkers:     su(s.RetiredMarkers),
		FetchedInsts:       su(s.FetchedInsts),
		FetchedWrongCD:     su(s.FetchedWrongCD),
		FetchedWrongCI:     su(s.FetchedWrongCI),
		FetchedMarkers:     su(s.FetchedMarkers),
		ExecutedInsts:      su(s.ExecutedInsts),
		ExecutedSelects:    su(s.ExecutedSelects),
		ExecutedMarkers:    su(s.ExecutedMarkers),
		RetiredBranches:    su(s.RetiredBranches),
		RetiredMispredicts: su(s.RetiredMispredicts),
		Flushes:            su(s.Flushes),
		EarlyExits:         su(s.EarlyExits),
		MDBConversions:     su(s.MDBConversions),
		Episodes:           su(s.Episodes),
		LowConfCorrect:     su(s.LowConfCorrect),
		LowConfWrong:       su(s.LowConfWrong),
		MergeHits:          su(s.MergeHits),
		MergeMisses:        su(s.MergeMisses),
		MergeEvictions:     su(s.MergeEvictions),
		MergeTrainings:     su(s.MergeTrainings),
		MergeMispredicts:   su(s.MergeMispredicts),
		DynCFMEpisodes:     su(s.DynCFMEpisodes),
		L1IMisses:          su(s.L1IMisses),
		L1DMisses:          su(s.L1DMisses),
		L2Misses:           su(s.L2Misses),
		LoadStalls:         su(s.LoadStalls),
		OraclePauses:       su(s.OraclePauses),
		OracleResumes:      su(s.OracleResumes),
		HaltRetired:        s.HaltRetired,
		FetchedUops:        su(s.FetchedUops),
		WallSeconds:        s.WallSeconds * f,
	}
	for i := range c.ExitCases {
		c.ExitCases[i] = su(s.ExitCases[i])
	}
	return c
}

// SimCyclesPerSec returns simulated cycles per host wall-clock second.
func (s *Stats) SimCyclesPerSec() float64 {
	if s.WallSeconds <= 0 {
		return 0
	}
	return float64(s.Cycles) / s.WallSeconds
}

// RetiredUopsPerSec returns retired window entries (program instructions,
// FALSE-predicate instructions, selects and markers) per host wall-clock
// second.
func (s *Stats) RetiredUopsPerSec() float64 {
	if s.WallSeconds <= 0 {
		return 0
	}
	return float64(s.CommittedWork()) / s.WallSeconds
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.RetiredInsts) / float64(s.Cycles)
}

// MispredictRate returns the conditional branch misprediction rate.
func (s *Stats) MispredictRate() float64 {
	if s.RetiredBranches == 0 {
		return 0
	}
	return float64(s.RetiredMispredicts) / float64(s.RetiredBranches)
}

// MPKI returns mispredictions per thousand retired instructions.
func (s *Stats) MPKI() float64 {
	if s.RetiredInsts == 0 {
		return 0
	}
	return 1000 * float64(s.RetiredMispredicts) / float64(s.RetiredInsts)
}

// WrongPathFrac returns the fraction of fetched program instructions that
// were on the wrong path (Figure 1's total height).
func (s *Stats) WrongPathFrac() float64 {
	if s.FetchedInsts == 0 {
		return 0
	}
	return float64(s.FetchedWrongCD+s.FetchedWrongCI) / float64(s.FetchedInsts)
}

// ExecutedTotal returns all issued uops, including wrong-path work that
// was later flushed.
func (s *Stats) ExecutedTotal() uint64 {
	return s.ExecutedInsts + s.ExecutedSelects + s.ExecutedMarkers
}

// CommittedWork returns the instructions the machine carried to
// retirement: program instructions (TRUE and FALSE predicates) plus the
// inserted select and marker uops. This is the paper's Figure-12
// "executed instructions" metric — dynamic predication raises it (FALSE
// paths and extra uops) even as flushed wrong-path work falls.
func (s *Stats) CommittedWork() uint64 {
	return s.RetiredInsts + s.RetiredFalse + s.RetiredSelects + s.RetiredMarkers
}

// round2 rounds to two decimals with halves away from zero. fmt's %.2f
// rounds halves to even, so e.g. a 0.125% misprediction rate (1 in 800)
// would print as "0.12" — the conventional half-up result is 0.13.
func round2(v float64) float64 {
	return math.Floor(v*100+0.5) / 100
}

func (s *Stats) String() string {
	return fmt.Sprintf(
		"cycles=%d retired=%d IPC=%.3f br=%d misp=%d (%.2f%%) flushes=%d fetched=%d (wrongCD=%d wrongCI=%d) exec=%d sel=%d mark=%d episodes=%d cases=%v",
		s.Cycles, s.RetiredInsts, s.IPC(), s.RetiredBranches, s.RetiredMispredicts,
		round2(100*s.MispredictRate()), s.Flushes, s.FetchedInsts, s.FetchedWrongCD,
		s.FetchedWrongCI, s.ExecutedInsts, s.ExecutedSelects, s.ExecutedMarkers,
		s.Episodes, s.ExitCases)
}
