package core

import (
	"dmp/internal/isa"
	"fmt"
)

// ratEntry maps one architectural register to its current producer: a
// not-yet-retired uop, or a literal value. The M bit implements the
// "modified in dynamic predication mode" tracking used to find the
// registers that need select-uops (Section 2.4).
type ratEntry struct {
	u   *uop // producing uop; nil means val holds the value
	val uint64
	m   bool
}

// rat is the register alias table. Copies of the whole struct are the
// checkpoints CP1/CP2 and the per-branch recovery checkpoints.
type rat struct {
	e [isa.NumRegs]ratEntry
}

// ratCheckpoint is a saved copy of the RAT.
type ratCheckpoint = rat

func (r *rat) snapshot() *ratCheckpoint {
	c := *r
	return &c
}

func (r *rat) clearM() {
	for i := range r.e {
		r.e[i].m = false
	}
}

// sameSource reports whether two RAT entries name the same physical value.
func sameSource(a, b ratEntry) bool {
	if a.u != nil || b.u != nil {
		return a.u == b.u
	}
	return a.val == b.val
}

// renameStage renames and dispatches up to FetchWidth uops per cycle.
// Pending select-uops (from an exit.pred that reached rename) block the
// normal stream and are inserted at SelectUopsPerCycle per cycle,
// modelling the RAT port limit (Section 2.4).
//
//dmp:hotpath
func (m *Machine) renameStage() {
	width := m.cfg.FetchWidth

	if len(m.selPending) > 0 {
		ports := m.cfg.SelectUopsPerCycle
		for ports > 0 && width > 0 && len(m.selPending) > 0 && len(m.rob) < m.cfg.ROBSize {
			req := m.selPending[0]
			m.selPending = m.selPending[1:]
			m.insertSelect(req)
			ports--
			width--
		}
		if len(m.selPending) > 0 {
			return
		}
		// The paper releases the checkpoint *hardware* here; we keep the
		// saved copies on the episode because a misprediction inside the
		// alternate path can rewind fetch to before the exit.pred, which
		// re-inserts the select-uops from the same CP2.
		m.selEp = nil
	}

	for width > 0 {
		if len(m.feq) == 0 {
			return
		}
		u := m.feq[0]
		if u.renameAt > m.cycle {
			return
		}
		if len(m.rob) >= m.cfg.ROBSize {
			return
		}
		if u.inst.Op == isa.ST && u.kind == kindInst && m.sbFull() {
			return
		}
		m.feq = m.feq[1:]
		m.renameOne(u)
		width--
		if len(m.selPending) > 0 {
			// exit.pred just renamed: selects start next cycle.
			return
		}
	}
}

// renameOne renames a single uop and dispatches it into the ROB.
//
//dmp:hotpath
func (m *Machine) renameOne(u *uop) {
	u.renamed = true
	if m.probe != nil {
		m.probeUop(StageRename, u)
	}
	// Marker rename actions run even for episodes that already resolved
	// (the predicate is then known, but uops still in the queue behind
	// the marker need the same RAT transformations); they are skipped
	// only for *converted* episodes, whose alternate-side queue entries
	// were dropped at conversion.
	switch u.kind {
	case kindEnterPred:
		// Section 2.4: clear all M bits, then checkpoint CP1.
		if ep := u.ep; ep != nil && !ep.converted {
			m.curRAT(u).clearM()
			ep.cp1 = m.curRAT(u).snapshot()
		}
		m.finishMarker(u)
	case kindEnterAlt:
		// Checkpoint CP2 (end of predicted path), then restore CP1 so
		// the alternate path renames with pre-branch mappings.
		if ep := u.ep; ep != nil && !ep.converted && ep.cp1 != nil {
			ep.cp2 = m.curRAT(u).snapshot()
			*m.curRAT(u) = *ep.cp1
		}
		m.finishMarker(u)
	case kindExitPred:
		if ep := u.ep; ep != nil && !ep.converted && ep.cp2 != nil {
			m.queueSelects(ep, u.seq)
		}
		m.finishMarker(u)
	case kindFork:
		m.renameFork(u)
	case kindInst:
		m.renameInst(u)
	default:
		panic("core: renaming unexpected uop kind")
	}
}

// finishMarker dispatches a marker uop as already-executed.
//
//dmp:hotpath
func (m *Machine) finishMarker(u *uop) {
	u.done = true
	m.Stats.ExecutedMarkers++
	m.rob = append(m.rob, u)
	if m.probe != nil {
		m.probeUop(StageComplete, u)
	}
}

// curRAT returns the RAT a uop renames against (per-stream during
// dual-path mode).
func (m *Machine) curRAT(u *uop) *rat {
	if m.dualRats[u.stream] != nil {
		return m.dualRats[u.stream]
	}
	return &m.rat
}

// renameInst renames a program instruction.
func (m *Machine) renameInst(u *uop) {
	in := u.inst
	r := m.curRAT(u)

	u.numSrc = 2
	if in.Uses1() {
		u.src1 = m.operandFrom(r.e[m.regIdx(in.Src1)], u, 1, in.Src1)
	} else {
		u.src1 = operand{ready: true}
	}
	if in.Uses2() {
		u.src2 = m.operandFrom(r.e[m.regIdx(in.Src2)], u, 2, in.Src2)
	} else {
		u.src2 = operand{ready: true}
	}

	if in.HasDst() && in.Dst != isa.Zero {
		u.hasDst = true
		u.dstArch = in.Dst
		r.e[in.Dst] = ratEntry{u: u, m: true}
	}

	switch in.Op {
	case isa.BR, isa.JR, isa.CALLR, isa.RET, isa.JMP, isa.CALL:
		// Per-branch RAT checkpoint for misprediction recovery (taken
		// after the instruction's own destination renames, so a
		// mispredicted CALLR recovers with its link value mapped).
		u.checkpoint = m.snapshotRAT(r)
	case isa.LD:
		u.isLoad = true
	case isa.ST:
		u.isStore = true
		m.sbAlloc(u)
	}

	m.rob = append(m.rob, u)
	m.enqueueReady(u)
}

// regIdx bounds a register name (defensive; Reg is always < NumRegs).
func (m *Machine) regIdx(r isa.Reg) int { return int(r) % isa.NumRegs }

// operandFrom renames one source operand from a RAT entry, registering
// the consumer with the producer if the value is not ready yet.
func (m *Machine) operandFrom(e ratEntry, u *uop, which int, reg isa.Reg) operand {
	if reg == isa.Zero {
		return operand{ready: true}
	}
	if e.u == nil {
		return operand{ready: true, val: e.val}
	}
	if e.u.squashed && !e.u.done {
		// A RAT entry must never name a squashed producer: its value
		// will never broadcast. This is a checkpoint-restore protocol
		// bug, so fail loudly rather than deadlock.
		m.fail(u, fmt.Sprintf("renamed %v against squashed producer seq=%d pc=%d %v (squashed by seq=%d at cycle %d via %s)", reg, e.u.seq, e.u.pc, e.u.inst, e.u.sqBy, e.u.sqAt, e.u.sqHow))
	}
	if e.u.done {
		return operand{ready: true, val: e.u.dstVal}
	}
	e.u.waiters = append(e.u.waiters, waiter{u: u, which: which})
	return operand{producer: e.u.seq}
}

// queueSelects diffs CP2 against the active RAT and queues one
// select-uop per architectural register whose mapping differs and was
// modified on either path (the M-bit OR of Section 2.4).
func (m *Machine) queueSelects(ep *episode, exitSeq uint64) {
	cp2 := ep.cp2
	r := &m.rat
	for i := 0; i < isa.NumRegs; i++ {
		if isa.Reg(i) == isa.Zero {
			continue
		}
		// The hardware resets the M bits as its priority encoder emits
		// each select-uop; we leave them intact so a flush that rewinds
		// fetch to inside the alternate path can regenerate the same
		// select-uops from the same checkpoints.
		if !cp2.e[i].m && !r.e[i].m {
			continue
		}
		if sameSource(cp2.e[i], r.e[i]) {
			continue
		}
		m.selPending = append(m.selPending, selReq{reg: isa.Reg(i), fromCP2: cp2.e[i], fromRAT: r.e[i]})
	}
	m.selEp = ep
	// Select-uops take the exit.pred marker's sequence number so they sit
	// at the marker's point in program order: younger uops were already
	// fetched (with larger seqs) before the selects were created, and
	// every age comparison (flush cuts, scheduling) relies on ROB
	// positions being seq-ordered.
	m.selExitSeq = exitSeq
}

// insertSelect dispatches one select-uop: dst = p1 ? CP2 value
// (predicted path) : active value (alternate path).
//
//dmp:hotpath
func (m *Machine) insertSelect(req selReq) {
	ep := m.selEp
	su := m.arena.alloc()
	su.seq, su.pc, su.inst, su.kind = m.selExitSeq, ep.divergeU.pc, isa.Inst{Op: isa.NOP}, kindSelect
	su.ep, su.selPred = ep, ep.predID1
	su.hasDst, su.dstArch = true, req.reg
	su.numSrc, su.renamed = 3, true
	if m.probe != nil {
		// Select-uops skip the fetch queue; report both stages here.
		m.probeUop(StageFetch, su)
		m.probeUop(StageRename, su)
	}
	su.src1 = m.operandFrom(req.fromCP2, su, 1, req.reg)
	su.src2 = operand{ready: true}
	su.src3 = m.operandFrom(req.fromRAT, su, 3, req.reg)
	m.rat.e[req.reg] = ratEntry{u: su}
	m.rob = append(m.rob, su)
	m.preds.await(su.selPred, su)
	m.enqueueReady(su)
}

// wakePred re-evaluates uops that were waiting for a predicate broadcast.
func (m *Machine) wakePred(ws []*uop) {
	for _, w := range ws {
		m.enqueueReady(w)
	}
}

// renameFork snapshots the active RAT into the two dual-path stream RATs.
func (m *Machine) renameFork(u *uop) {
	if ep := u.ep; ep != nil && ep.phase != dpDead {
		a, b := m.rat, m.rat
		m.dualRats[0], m.dualRats[1] = &a, &b
	}
	m.finishMarker(u)
}
