package core

import (
	"testing"

	"dmp/internal/prog"
)

// lsqMachine builds a minimal machine for driving loadLookup directly.
func lsqMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(prog.MustAssemble("halt"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func store(seq uint64, addr uint64, val uint64, predID int, addrValid bool) *uop {
	return &uop{seq: seq, isStore: true, addr: addr, addrValid: addrValid, dstVal: val, predID: predID}
}

func load(seq uint64, addr uint64, predID int) *uop {
	return &uop{seq: seq, isLoad: true, addr: addr, predID: predID}
}

// Rule 1: a non-predicated older store with a matching address forwards.
func TestForwardRule1Unpredicated(t *testing.T) {
	m := lsqMachine(t)
	m.sbAlloc(store(1, 0x100, 42, 0, true))
	val, fromSB, stall := m.loadLookup(load(2, 0x100, 0))
	if stall || !fromSB || val != 42 {
		t.Errorf("got val=%d fromSB=%v stall=%v", val, fromSB, stall)
	}
	// Youngest matching store wins.
	m.sbAlloc(store(3, 0x100, 99, 0, true))
	val, _, _ = m.loadLookup(load(4, 0x100, 0))
	if val != 99 {
		t.Errorf("youngest store did not win: %d", val)
	}
}

// Rule 2: a predicated store forwards once its predicate is known TRUE,
// and is transparent once known FALSE.
func TestForwardRule2ResolvedPredicates(t *testing.T) {
	m := lsqMachine(t)
	pTrue := m.preds.alloc()
	pFalse := m.preds.alloc()
	m.preds.broadcast(pTrue, true)
	m.preds.broadcast(pFalse, false)

	m.sbAlloc(store(1, 0x100, 11, 0, true))      // base value
	m.sbAlloc(store(2, 0x100, 22, pFalse, true)) // dead path: transparent
	val, fromSB, stall := m.loadLookup(load(3, 0x100, 0))
	if stall || !fromSB || val != 11 {
		t.Errorf("FALSE store not transparent: val=%d stall=%v", val, stall)
	}
	m.sbAlloc(store(4, 0x100, 33, pTrue, true)) // live path: forwards
	val, _, _ = m.loadLookup(load(5, 0x100, 0))
	if val != 33 {
		t.Errorf("TRUE store did not forward: %d", val)
	}
}

// Rule 3: an unresolved predicated store forwards only to a load with
// the same predicate id; a cross-path load must wait.
func TestForwardRule3SamePathOnly(t *testing.T) {
	m := lsqMachine(t)
	p1 := m.preds.alloc()
	p2 := m.preds.alloc()
	m.sbAlloc(store(1, 0x100, 77, p1, true))

	// Same dynamically predicated path: forwards.
	val, fromSB, stall := m.loadLookup(load(2, 0x100, p1))
	if stall || !fromSB || val != 77 {
		t.Errorf("same-path forward failed: val=%d stall=%v", val, stall)
	}
	// Different path, predicate unknown: must wait.
	if _, _, stall := m.loadLookup(load(3, 0x100, p2)); !stall {
		t.Error("cross-path load did not stall on unresolved predicate")
	}
	// Unpredicated younger load also waits (it is on "the other side").
	if _, _, stall := m.loadLookup(load(4, 0x100, 0)); !stall {
		t.Error("unpredicated load did not stall on unresolved predicated store")
	}
}

// Rule 4: an older store with an uncomputed address blocks the load.
func TestForwardRule4UnknownAddress(t *testing.T) {
	m := lsqMachine(t)
	m.sbAlloc(store(1, 0, 0, 0, false)) // address not ready
	if _, _, stall := m.loadLookup(load(2, 0x100, 0)); !stall {
		t.Error("load did not stall behind unknown-address store")
	}
	// But a known-FALSE store never blocks, address or not.
	m2 := lsqMachine(t)
	pf := m2.preds.alloc()
	m2.preds.broadcast(pf, false)
	m2.sbAlloc(store(1, 0, 0, pf, false))
	if _, _, stall := m2.loadLookup(load(2, 0x100, 0)); stall {
		t.Error("dead store with unknown address blocked a load")
	}
}

// Age and address discrimination: younger stores and other addresses are
// ignored; misses read committed memory.
func TestForwardAgeAndAddress(t *testing.T) {
	m := lsqMachine(t)
	m.dmem.Write(0x100, 5)
	m.sbAlloc(store(10, 0x100, 42, 0, true)) // YOUNGER than the load
	m.sbAlloc(store(1, 0x200, 7, 0, true))   // different address
	val, fromSB, stall := m.loadLookup(load(5, 0x100, 0))
	if stall || fromSB || val != 5 {
		t.Errorf("expected committed-memory read of 5: val=%d fromSB=%v stall=%v", val, fromSB, stall)
	}
	// Word-granularity aliasing: low 3 address bits are ignored.
	m.sbAlloc(store(2, 0x104, 9, 0, true))
	val, fromSB, _ = m.loadLookup(load(6, 0x100, 0))
	if !fromSB || val != 9 {
		t.Errorf("sub-word alias did not forward: val=%d fromSB=%v", val, fromSB)
	}
}

func TestSBSquashAndRetire(t *testing.T) {
	m := lsqMachine(t)
	a := store(1, 0x100, 1, 0, true)
	b := store(2, 0x108, 2, 0, true)
	c := store(3, 0x110, 3, 0, true)
	m.sbAlloc(a)
	m.sbAlloc(b)
	m.sbAlloc(c)
	if !m.sbFull() == (m.cfg.StoreBufferSize <= 3) {
		t.Log("capacity sanity only")
	}
	m.sbSquash(2) // kills c
	if len(m.sb) != 2 {
		t.Fatalf("sb len %d after squash, want 2", len(m.sb))
	}
	// Retire must pop in order.
	if !m.sbRetireHead(a) {
		t.Error("head retire of a failed")
	}
	if m.sbRetireHead(c) {
		t.Error("retire of squashed store succeeded")
	}
	if !m.sbRetireHead(b) {
		t.Error("head retire of b failed")
	}
	if len(m.sb) != 0 {
		t.Errorf("sb not empty: %d", len(m.sb))
	}
}
