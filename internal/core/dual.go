package core

// Selective dual-path execution (Heil & Smith; Farrens et al.), the
// comparison point of Section 5.3: on a low-confidence conditional
// branch, fetch *both* paths, sharing fetch bandwidth cycle by cycle,
// with no merging at control-independent points. When the branch
// resolves, the losing path's instructions are squashed through the same
// predicate mechanism dynamic predication uses, and fetch continues only
// on the winning path.
//
// Recovery simplification: a misprediction of a branch *inside* an active
// fork aborts the fork conservatively (the machine reverts to the
// predicted path before recovering). Real proposals pay complex hardware
// to do better; the conservative abort slightly understates dual-path,
// which the paper already finds weakest of the three schemes.

// maybeFork starts dual-path execution at a low-confidence branch.
func (m *Machine) maybeFork(u *uop) bool {
	if !u.lowConf || m.dualEp != nil {
		return false
	}
	m.episodeSeq++
	ep := &episode{
		id:             m.episodeSeq,
		divergeU:       u,
		phase:          dpPredicted,
		predictedTaken: u.predictedTaken,
		predID1:        m.preds.alloc(),
		predID2:        m.preds.alloc(),
		dual:           true,
	}
	if u.predictedTaken {
		ep.altStartPC = u.pc + 1
	} else {
		ep.altStartPC = u.inst.Target
	}
	u.isDiverge = true
	u.ep = ep
	u.predID = 0
	m.dualEp = ep
	m.episodes[ep.id] = ep
	m.Stats.Episodes++
	if m.probe != nil {
		m.probeEpisode(EpEnter, ep)
	}

	// The forked (alternate) stream starts at the other target with the
	// other history bit and a copy of the RAS.
	m.streams[1] = streamCtx{
		active: true,
		pc:     ep.altStartPC,
		ghr:    u.fetchGHR.Push(!u.predictedTaken),
		ras:    m.ras.Snapshot(),
	}
	m.dualActive = true
	m.fetchStream = 0
	m.oracleStream = 0
	if u.oracleHasStep && u.oracleTaken != u.predictedTaken {
		// The forked stream is the correct path: put the oracle at its
		// first instruction (the state right after the fork branch).
		if m.oracle.rewindTo(u.oracleCount) {
			m.closeWP()
			m.oracleStream = 1
		}
	}
	return true
}

// fetchDualStage fetches one group per cycle, alternating between the
// two streams (each gets half the front-end bandwidth, as in selective
// dual-path proposals).
func (m *Machine) fetchDualStage() {
	if len(m.feq) >= m.feqCap() {
		return
	}
	// Pick the stream for this cycle: alternate, skipping a halted one.
	s := int(m.cycle) & 1
	if m.streamHalted(s) {
		s ^= 1
		if m.streamHalted(s) {
			return
		}
	}
	m.swapInStream(s)
	defer m.swapOutStream(s)

	if lat := m.hier.InstLatency(m.fetchPC * 8); lat > 2 {
		m.fetchStallUntil = m.cycle + uint64(lat)
		m.Stats.L1IMisses++
		return
	}
	slots, brs := m.cfg.FetchWidth, 0
	for slots > 0 && len(m.feq) < m.feqCap() && !m.fetchHalted {
		redirected, isCond := m.fetchOne()
		slots--
		if isCond {
			brs++
		}
		if redirected || brs >= m.cfg.MaxBrPerFetch {
			break
		}
	}
}

func (m *Machine) streamHalted(s int) bool {
	if s == 0 {
		return m.fetchHalted // stream 0 state lives in the globals
	}
	return !m.streams[1].active || m.streams[1].halted
}

// swapInStream loads a stream's fetch context into the machine's global
// fetch registers. Stream 0 *is* the global context; stream 1 is stored
// in streams[1].
func (m *Machine) swapInStream(s int) {
	m.fetchStream = s
	if s == 0 {
		return
	}
	m.streams[0] = streamCtx{pc: m.fetchPC, ghr: m.fetchGHR, ras: m.ras.Snapshot(), halted: m.fetchHalted}
	c := m.streams[1]
	m.fetchPC, m.fetchGHR, m.fetchHalted = c.pc, c.ghr, c.halted
	m.ras.Restore(c.ras)
}

func (m *Machine) swapOutStream(s int) {
	if s == 0 {
		m.fetchStream = 0
		return
	}
	m.streams[1].pc, m.streams[1].ghr, m.streams[1].halted = m.fetchPC, m.fetchGHR, m.fetchHalted
	m.streams[1].ras = m.ras.Snapshot()
	c := m.streams[0]
	m.fetchPC, m.fetchGHR, m.fetchHalted = c.pc, c.ghr, c.halted
	m.ras.Restore(c.ras)
	m.fetchStream = 0
}

// resolveFork ends dual-path mode when the forked branch resolves: the
// losing stream is squashed via its FALSE predicate and fetch continues
// on the winner. A misprediction costs no flush — that is dual-path's
// benefit.
func (m *Machine) resolveFork(u *uop, ep *episode) {
	winner := 0
	if u.mispredicted {
		winner = 1
	}
	m.wakePred(m.preds.broadcast(ep.predID1, winner == 0))
	m.wakePred(m.preds.broadcast(ep.predID2, winner == 1))

	// Drop the loser's not-yet-renamed uops.
	kept := m.feq[:0]
	for _, q := range m.feq {
		if q.ep == ep && q.stream != winner {
			q.squashed = true
			if m.probe != nil {
				m.probeUop(StageSquash, q)
			}
			m.arena.recycleFEQ(q)
			continue
		}
		kept = append(kept, q)
	}
	m.feq = kept

	// The winner's RAT becomes the active RAT.
	if m.dualRats[winner] != nil {
		m.rat = *m.dualRats[winner]
	}
	m.dualRats[0], m.dualRats[1] = nil, nil

	// Fetch continues on the winner's context.
	if winner == 1 {
		c := m.streams[1]
		m.fetchPC, m.fetchGHR, m.fetchHalted = c.pc, c.ghr, c.halted
		m.ras.Restore(c.ras)
	}
	m.streams[1] = streamCtx{}
	m.dualActive = false
	m.fetchStream = 0
	m.oracleStream = 0
	m.dualEp = nil
	if u.mispredicted {
		m.setExit(ep, Exit2) // a misprediction absorbed without a flush
	} else {
		m.setExit(ep, Exit1) // pure dual-fetch overhead
	}
	m.teardownEpisode(ep)
}

// conservativeDualAbort handles a mispredicted branch inside an active
// fork: revert to the predicted stream (p1 TRUE, p2 FALSE), then recover
// normally if the mispredicted branch survives on that stream.
func (m *Machine) conservativeDualAbort(u *uop, ep *episode) {
	m.wakePred(m.preds.broadcast(ep.predID1, true))
	m.wakePred(m.preds.broadcast(ep.predID2, false))
	ep.converted = true
	ep.divergeU.dpConverted = true
	if m.probe != nil {
		m.probeEpisode(EpDualAbort, ep)
	}

	kept := m.feq[:0]
	for _, q := range m.feq {
		if q.ep == ep && q.stream == 1 {
			q.squashed = true
			if m.probe != nil {
				m.probeUop(StageSquash, q)
			}
			m.arena.recycleFEQ(q)
			continue
		}
		kept = append(kept, q)
	}
	m.feq = kept

	if m.dualRats[0] != nil {
		m.rat = *m.dualRats[0]
	}
	m.dualRats[0], m.dualRats[1] = nil, nil
	m.streams[1] = streamCtx{}
	m.dualActive = false
	m.fetchStream = 0
	if m.oracleStream == 1 && ep.divergeU.oracleHasStep {
		// The oracle followed the (correct) forked stream we just
		// killed: park it at the fork point; the fork branch's eventual
		// misprediction flush resumes it.
		if m.oracle.rewindTo(ep.divergeU.oracleCount) {
			m.oracle.pause()
			m.openWP()
		}
	}
	m.oracleStream = 0
	m.dualEp = nil
	m.teardownEpisode(ep)

	if u.stream == 0 {
		m.recoverFrom(u)
	}
	// A stream-1 mispredict needs no recovery: that path is now dead.
}

// collapseDualOnFlush resets dual-path machinery after a flush killed the
// fork branch itself.
func (m *Machine) collapseDualOnFlush(b *uop) {
	if m.dualEp == nil || m.dualEp.phase != dpDead {
		return
	}
	m.dualEp = nil
	m.dualActive = false
	m.dualRats[0], m.dualRats[1] = nil, nil
	m.streams[1] = streamCtx{}
	m.fetchStream = 0
	m.oracleStream = 0
}
