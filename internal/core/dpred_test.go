package core

import "testing"

func TestPredFileAllocAndDefaults(t *testing.T) {
	f := newPredFile()
	// id 0 is "not predicated": always known-true.
	if !f.known(0) || !f.value(0) {
		t.Error("predicate id 0 must be known-true")
	}
	p1 := f.alloc()
	p2 := f.alloc()
	if p1 == 0 || p2 == 0 || p1 == p2 {
		t.Fatalf("bad ids %d %d", p1, p2)
	}
	if f.known(p1) || f.value(p1) {
		t.Error("fresh predicate should be unknown and false-valued")
	}
}

func TestPredFileBroadcastWakesWaiters(t *testing.T) {
	f := newPredFile()
	id := f.alloc()
	u1, u2 := &uop{seq: 1}, &uop{seq: 2}
	if f.await(id, u1) {
		t.Error("await on unknown predicate reported known")
	}
	f.await(id, u2)
	woken := f.broadcast(id, true)
	if len(woken) != 2 {
		t.Fatalf("woke %d waiters, want 2", len(woken))
	}
	if !f.known(id) || !f.value(id) {
		t.Error("broadcast did not record value")
	}
	// Await after broadcast returns known immediately, no registration.
	if !f.await(id, u1) {
		t.Error("await after broadcast should report known")
	}
	// Re-broadcast with the same value is a no-op.
	if w := f.broadcast(id, true); w != nil {
		t.Error("same-value re-broadcast returned waiters")
	}
}

func TestPredFileConflictingBroadcastPanics(t *testing.T) {
	f := newPredFile()
	id := f.alloc()
	f.broadcast(id, true)
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-broadcast did not panic")
		}
	}()
	f.broadcast(id, false)
}

func TestPredFileUnknownID(t *testing.T) {
	f := newPredFile()
	if f.known(99) {
		t.Error("unallocated id reported known")
	}
	if f.broadcast(99, true) != nil {
		t.Error("broadcast to unallocated id returned waiters")
	}
	if !f.await(99, &uop{}) {
		t.Error("await on unallocated id should not register")
	}
	if f.get(0) != nil {
		t.Error("get(0) should be nil")
	}
}

func TestExitCaseNames(t *testing.T) {
	// The exit cases must map 1:1 onto Table 1 of the paper.
	if Exit1 != 1 || Exit2 != 2 || Exit3 != 3 || Exit4 != 4 || Exit5 != 5 || Exit6 != 6 {
		t.Error("exit case constants drifted from Table 1 numbering")
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeBaseline: "baseline",
		ModePerfect:  "perfect-cbp",
		ModeDMP:      "dmp",
		ModeDHP:      "dhp",
		ModeDualPath: "dualpath",
		Mode(42):     "mode(42)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestUopKindStrings(t *testing.T) {
	want := map[uopKind]string{
		kindInst:      "inst",
		kindEnterPred: "enter.pred.path",
		kindEnterAlt:  "enter.alternate.path",
		kindExitPred:  "exit.pred",
		kindSelect:    "select-uop",
		kindFork:      "fork",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("kind %d = %q, want %q", k, k.String(), s)
		}
	}
}

func TestUopSrcReady(t *testing.T) {
	u := &uop{numSrc: 2}
	if u.srcReady() {
		t.Error("unready sources reported ready")
	}
	u.src1 = operand{ready: true}
	u.src2 = operand{ready: true}
	if !u.srcReady() {
		t.Error("ready sources reported unready")
	}
	sel := &uop{numSrc: 3, src1: operand{ready: true}, src2: operand{ready: true}}
	if sel.srcReady() {
		t.Error("select with pending src3 reported ready")
	}
	sel.src3 = operand{ready: true}
	if !sel.srcReady() {
		t.Error("fully ready select reported unready")
	}
}

func TestUopMarkers(t *testing.T) {
	for _, k := range []uopKind{kindEnterPred, kindEnterAlt, kindExitPred, kindFork} {
		if !(&uop{kind: k}).isMarker() {
			t.Errorf("%v not a marker", k)
		}
	}
	if (&uop{kind: kindInst}).isMarker() || (&uop{kind: kindSelect}).isMarker() {
		t.Error("inst/select misclassified as marker")
	}
	if !(&uop{kind: kindInst}).countsAsInst() || (&uop{kind: kindSelect}).countsAsInst() {
		t.Error("countsAsInst wrong")
	}
}
