package core

import (
	"testing"

	"dmp/internal/isa"
	"dmp/internal/prog"
)

// buildExitProg is the clean constructor used by the tests below.
func buildExitProg(takenLen, ntLen int, thresh int64, iters int64) (*prog.Program, uint64) {
	b := prog.NewBuilder()
	const region = 0x200000
	b.Li(1, 0x2545F4914F6CDD1D)
	b.Li(2, iters)
	b.Li(5, thresh) // taken iff value < thresh (value in 0..127)
	b.Li(16, region)
	// Warm-up store so the first iteration's cold load reads real data.
	b.St(1, 16, -64)
	b.Label("loop")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	b.Shri(3, 1, 33)
	b.Andi(3, 3, 127)
	b.St(3, 16, 0)
	b.Ld(4, 16, -64) // cold line: ~312-cycle condition delay
	b.Addi(16, 16, 64)
	brPC := b.Br(isa.LT, 4, 5, "then")
	for i := 0; i < ntLen; i++ {
		b.Addi(10, 10, 1)
	}
	b.Jmp("join")
	b.Label("then")
	for i := 0; i < takenLen; i++ {
		b.Addi(11, 11, 1)
	}
	b.Label("join")
	b.Addi(12, 12, 1)
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "loop")
	b.Halt()
	p := b.MustBuild()
	p.MarkDiverge(brPC, &prog.Diverge{
		CFMs:          []uint64{p.PC("join")},
		Class:         prog.ClassSimpleHammock,
		ExitThreshold: 1000, // never early-exit in these tests
	})
	return p, brPC
}

func runExit(t *testing.T, p *prog.Program, cfg Config) *Stats {
	t.Helper()
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !st.HaltRetired {
		t.Fatal("did not halt")
	}
	return st
}

// With short paths on both sides, fetch reaches the CFM on both long
// before the delayed condition resolves: every episode exits normally.
// Perfect confidence makes every episode a real misprediction: case 2.
func TestExitCase2Forced(t *testing.T) {
	p, _ := buildExitProg(2, 2, 64, 300) // 50/50: unpredictable
	cfg := DMPConfig()
	cfg.ConfidenceName = "perfect"
	st := runExit(t, p, cfg)
	if st.Episodes == 0 {
		t.Fatal("no episodes")
	}
	if st.ExitCases[Exit2] == 0 {
		t.Fatalf("no case-2 exits: %v", st.ExitCases)
	}
	if st.ExitCases[Exit2] < st.Episodes*8/10 {
		t.Errorf("case 2 = %d of %d episodes, want dominant: %v",
			st.ExitCases[Exit2], st.Episodes, st.ExitCases)
	}
}

// Same shape with always-low confidence: correctly predicted instances
// are predicated too and exit as case 1.
func TestExitCase1Forced(t *testing.T) {
	p, _ := buildExitProg(2, 2, 110, 300) // ~86% taken: predictable
	cfg := DMPConfig()
	cfg.ConfidenceName = "always-low"
	st := runExit(t, p, cfg)
	if st.ExitCases[Exit1] == 0 {
		t.Fatalf("no case-1 exits: %v", st.ExitCases)
	}
	if st.ExitCases[Exit1] <= st.ExitCases[Exit2] {
		t.Errorf("case 1 (%d) should dominate case 2 (%d) on a predictable branch",
			st.ExitCases[Exit1], st.ExitCases[Exit2])
	}
}

// A very long alternate path keeps fetch on it when the delayed branch
// resolves: correct predictions exit as case 3 (redirect to CFM),
// mispredictions as case 4 (no action).
func TestExitCase3And4Forced(t *testing.T) {
	// Predicted side (not-taken, threshold 16 → ~88% NT) is short; the
	// taken side (the alternate for NT predictions) is very long.
	p, _ := buildExitProg(400, 2, 16, 200)
	cfg := DMPConfig()
	cfg.ConfidenceName = "always-low"
	st := runExit(t, p, cfg)
	if st.ExitCases[Exit3] == 0 {
		t.Errorf("no case-3 exits: %v", st.ExitCases)
	}
	if st.ExitCases[Exit4] == 0 {
		t.Errorf("no case-4 exits: %v", st.ExitCases)
	}
	if st.ExitCases[Exit3] <= st.ExitCases[Exit4] {
		t.Errorf("case 3 (%d) should outnumber case 4 (%d) on an 88%%-predictable branch",
			st.ExitCases[Exit3], st.ExitCases[Exit4])
	}
}

// A very long predicted path keeps fetch on it at resolution: correct
// predictions exit as case 5, mispredictions flush as case 6.
func TestExitCase5And6Forced(t *testing.T) {
	// Threshold 112 → ~88% taken, so the predictor learns taken; the
	// taken (predicted) side is very long.
	p, _ := buildExitProg(400, 2, 112, 200)
	cfg := DMPConfig()
	cfg.ConfidenceName = "always-low"
	st := runExit(t, p, cfg)
	if st.ExitCases[Exit5] == 0 {
		t.Errorf("no case-5 exits: %v", st.ExitCases)
	}
	if st.ExitCases[Exit6] == 0 {
		t.Errorf("no case-6 exits: %v", st.ExitCases)
	}
	if st.ExitCases[Exit5] <= st.ExitCases[Exit6] {
		t.Errorf("case 5 (%d) should outnumber case 6 (%d)",
			st.ExitCases[Exit5], st.ExitCases[Exit6])
	}
}

// Early exit converts long-alternate episodes instead of case 3.
func TestEarlyExitReplacesCase3(t *testing.T) {
	p, brPC := buildExitProg(400, 2, 16, 200)
	p.DivergeAt(brPC).ExitThreshold = 20
	cfg := DMPConfig()
	cfg.ConfidenceName = "always-low"
	cfg.EarlyExit = true
	st := runExit(t, p, cfg)
	if st.EarlyExits == 0 {
		t.Fatalf("no early exits: %v", st.ExitCases)
	}
	noEE := func() *Stats {
		p2, _ := buildExitProg(400, 2, 16, 200)
		c2 := DMPConfig()
		c2.ConfidenceName = "always-low"
		return runExit(t, p2, c2)
	}()
	if st.ExitCases[Exit3] >= noEE.ExitCases[Exit3] {
		t.Errorf("early exit did not reduce case 3: %d vs %d",
			st.ExitCases[Exit3], noEE.ExitCases[Exit3])
	}
	// And it should be faster than paying the full case-3 overhead.
	if st.IPC() <= noEE.IPC()*95/100 {
		t.Errorf("early exit IPC %.3f much worse than without (%.3f)", st.IPC(), noEE.IPC())
	}
}

// The case-2 win must translate into fewer flushes than the baseline on
// the unpredictable variant.
func TestCase2EliminatesFlushes(t *testing.T) {
	pBase, _ := buildExitProg(2, 2, 64, 300)
	base := runExit(t, pBase, DefaultConfig())
	pDMP, _ := buildExitProg(2, 2, 64, 300)
	cfg := DMPConfig()
	cfg.ConfidenceName = "perfect"
	dmp := runExit(t, pDMP, cfg)
	if dmp.Flushes >= base.Flushes {
		t.Errorf("DMP flushes %d >= baseline %d", dmp.Flushes, base.Flushes)
	}
	if dmp.IPC() <= base.IPC() {
		t.Errorf("DMP IPC %.3f <= baseline %.3f", dmp.IPC(), base.IPC())
	}
}
