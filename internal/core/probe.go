package core

import "dmp/internal/isa"

// This file is the machine's observability hook layer. A Probe is a set
// of optional callbacks the machine invokes at pipeline and
// dynamic-predication events; internal/obs builds sinks (pipetrace,
// episode timeline, interval sampler, heartbeat) on top of it.
//
// The contract is zero overhead when disabled: every hook site in the
// per-cycle pipeline code is a single predictable `m.probe != nil`
// branch, event structs are only constructed after that branch, and the
// dmpvet hotalloc analyzer enforces the guard on every probe call inside
// a //dmp:hotpath function. Probes observe only — they receive
// read-only views and must not retain the *Stats pointer past the
// callback — so attaching any probe leaves Stats and all experiment
// output byte-identical.

// UopKind is the exported view of a window entry's kind, for probe
// consumers. The values alias the machine's internal kinds.
type UopKind = uopKind

// Exported uop kinds.
const (
	UopInst      UopKind = kindInst
	UopEnterPred UopKind = kindEnterPred
	UopEnterAlt  UopKind = kindEnterAlt
	UopExitPred  UopKind = kindExitPred
	UopSelect    UopKind = kindSelect
	UopFork      UopKind = kindFork
)

// UopStage identifies which pipeline event a UopEvent reports.
type UopStage uint8

// Pipeline event stages, in the order a uop normally experiences them.
// StageMemBlock reports a load parked by the store buffer (unknown store
// address or an unresolved cross-path store predicate); StageSquash ends
// a uop killed by a flush, an episode conversion or a fork resolution.
const (
	StageFetch UopStage = iota
	StageRename
	StageIssue
	StageComplete
	StageRetire
	StageSquash
	StageMemBlock
)

func (s UopStage) String() string {
	switch s {
	case StageFetch:
		return "fetch"
	case StageRename:
		return "rename"
	case StageIssue:
		return "issue"
	case StageComplete:
		return "complete"
	case StageRetire:
		return "retire"
	case StageSquash:
		return "squash"
	case StageMemBlock:
		return "memblock"
	}
	return "stage?"
}

// UopEvent is one per-uop pipeline event.
type UopEvent struct {
	Cycle uint64
	// ID is unique per uop in creation order (1-based). Seq is the ROB
	// age tag and is NOT unique: select-uops share their exit marker's
	// seq so they sit at its point in program order.
	ID     uint64
	Seq    uint64
	PC     uint64
	Stage  UopStage
	Kind   UopKind
	Inst   isa.Inst
	PredID int  // predicate register id (0 = unpredicated)
	OnAlt  bool // fetched on the alternate path of its episode
	Stream int  // dual-path stream (0 = primary)
	// False is set on StageRetire when the uop retired with a FALSE
	// predicate (it became a NOP).
	False bool
	// Extra is stage-specific: for StageMemBlock, the seq of the
	// store-buffer entry that blocked the load.
	Extra uint64
}

// EpisodeKind identifies a dynamic-predication episode event.
type EpisodeKind uint8

// Episode lifecycle events. EpResolve carries the Table-1 exit case;
// EpSquash is an episode killed by a pipeline flush (counted in
// Stats.ExitCases[0]); the conversion kinds revert the diverge branch to
// a normal predicted branch without an exit case.
const (
	EpEnter EpisodeKind = iota
	EpCFMReached
	EpExitPred
	EpEarlyExit
	EpMDBConvert
	EpDualAbort
	EpResolve
	EpSquash
)

func (k EpisodeKind) String() string {
	switch k {
	case EpEnter:
		return "enter"
	case EpCFMReached:
		return "cfm-reached"
	case EpExitPred:
		return "exit-pred"
	case EpEarlyExit:
		return "early-exit"
	case EpMDBConvert:
		return "mdb-convert"
	case EpDualAbort:
		return "dual-abort"
	case EpResolve:
		return "resolve"
	case EpSquash:
		return "squash"
	}
	return "ep?"
}

// EpisodeEvent is one dynamic-predication (or dual-path) episode event.
type EpisodeEvent struct {
	Cycle      uint64
	ID         int // episode id (monotonic per machine)
	Kind       EpisodeKind
	DivergePC  uint64
	CFM        uint64   // chosen CFM point (0 until EpCFMReached)
	Case       ExitCase // valid on EpResolve
	AltFetched int      // alternate-path instructions fetched so far
	Loop       bool
	Dual       bool
	// DynCFM marks an episode whose CFM point was supplied by the runtime
	// merge-point predictor instead of a compiler annotation.
	DynCFM bool
}

// OracleEvent reports the fetch oracle leaving (Resumed=false) or
// re-forming (Resumed=true) lockstep with the fetch stream — the
// boundaries of the wrong-path fetch episodes behind Figure 1.
type OracleEvent struct {
	Cycle     uint64
	Resumed   bool
	ArchSteps uint64 // architectural instructions the oracle has executed
}

// DefaultTickEvery is the Tick cadence used when a Probe supplies a Tick
// callback without a cadence.
const DefaultTickEvery = 1 << 16

// Probe is a set of observability callbacks. Any field may be nil; a nil
// callback costs exactly one predicted branch at its hook sites. Attach
// with Machine.SetProbe before Run; callbacks run on the simulation
// goroutine, so they need no locking but must not block.
type Probe struct {
	// Uop receives per-uop pipeline events (fetch, rename, issue,
	// complete, retire, squash, memblock).
	Uop func(UopEvent)
	// Episode receives dynamic-predication episode lifecycle events.
	Episode func(EpisodeEvent)
	// Oracle receives fetch-oracle pause/resume events.
	Oracle func(OracleEvent)
	// Tick is called every TickEvery cycles with the current cycle and a
	// read-only view of the live Stats (Cycles is not yet set mid-run;
	// use the cycle argument). Callees must not retain the pointer.
	TickEvery uint64
	Tick      func(cycle uint64, s *Stats)
	// Done is called once at the end of Run, after Stats is final,
	// including on error runs — sinks flush here.
	Done func(s *Stats)
}

// SetProbe attaches a probe (nil detaches). Must be called before Run.
func (m *Machine) SetProbe(p *Probe) {
	if p != nil && p.Tick != nil && p.TickEvery == 0 {
		p.TickEvery = DefaultTickEvery
	}
	m.probe = p
}

// --- emit helpers ---
//
// Every caller must guard with `if m.probe != nil` (dmpvet's hotalloc
// analyzer enforces this inside //dmp:hotpath functions); the helpers
// re-check the individual callback so a probe may subscribe to a subset.

func (m *Machine) probeUop(stage UopStage, u *uop) {
	p := m.probe
	if p == nil || p.Uop == nil {
		return
	}
	if u.obsID == 0 {
		m.obsSeq++
		u.obsID = m.obsSeq
	}
	ev := UopEvent{
		Cycle:  m.cycle,
		ID:     u.obsID,
		Seq:    u.seq,
		PC:     u.pc,
		Stage:  stage,
		Kind:   u.kind,
		Inst:   u.inst,
		PredID: u.predID,
		OnAlt:  u.onAlt,
		Stream: u.stream,
	}
	if stage == StageRetire && u.predID != 0 {
		ev.False = !m.preds.value(u.predID)
	}
	p.Uop(ev)
}

// probeMemBlock reports a load blocked by a store-buffer entry.
func (m *Machine) probeMemBlock(ld, blocker *uop) {
	p := m.probe
	if p == nil || p.Uop == nil {
		return
	}
	if ld.obsID == 0 {
		m.obsSeq++
		ld.obsID = m.obsSeq
	}
	p.Uop(UopEvent{
		Cycle: m.cycle, ID: ld.obsID, Seq: ld.seq, PC: ld.pc,
		Stage: StageMemBlock, Kind: ld.kind, Inst: ld.inst,
		PredID: ld.predID, OnAlt: ld.onAlt, Stream: ld.stream,
		Extra: blocker.seq,
	})
}

func (m *Machine) probeEpisode(kind EpisodeKind, ep *episode) {
	p := m.probe
	if p == nil || p.Episode == nil {
		return
	}
	p.Episode(EpisodeEvent{
		Cycle:      m.cycle,
		ID:         ep.id,
		Kind:       kind,
		DivergePC:  ep.divergeU.pc,
		CFM:        ep.cfm,
		Case:       ep.exitCase,
		AltFetched: ep.altFetched,
		Loop:       ep.loop,
		Dual:       ep.dual,
		DynCFM:     ep.dynCFM,
	})
}

func (m *Machine) probeOracle(resumed bool) {
	p := m.probe
	if p == nil || p.Oracle == nil {
		return
	}
	p.Oracle(OracleEvent{Cycle: m.cycle, Resumed: resumed, ArchSteps: m.oracle.steps()})
}

// probeTick drives the periodic Tick callback; called once per cycle
// under the caller's nil guard.
func (m *Machine) probeTick() {
	p := m.probe
	if p.Tick == nil || p.TickEvery == 0 || m.cycle%p.TickEvery != 0 {
		return
	}
	p.Tick(m.cycle, &m.Stats)
}

// probeDone fires the end-of-run callback.
func (m *Machine) probeDone() {
	if p := m.probe; p != nil && p.Done != nil {
		p.Done(&m.Stats)
	}
}
