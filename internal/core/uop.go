package core

import (
	"dmp/internal/bpred"
	"dmp/internal/isa"
)

// uopKind distinguishes program instructions from the uops the front end
// inserts to support dynamic predication (Section 2.4).
type uopKind uint8

const (
	kindInst uopKind = iota
	kindEnterPred
	kindEnterAlt
	kindExitPred
	kindSelect
	kindFork // dual-path fork marker
)

func (k uopKind) String() string {
	switch k {
	case kindInst:
		return "inst"
	case kindEnterPred:
		return "enter.pred.path"
	case kindEnterAlt:
		return "enter.alternate.path"
	case kindExitPred:
		return "exit.pred"
	case kindSelect:
		return "select-uop"
	case kindFork:
		return "fork"
	}
	return "uop?"
}

// operand is one renamed source of a uop. Either it is ready with a
// value, or it names the sequence number of the producing uop, which will
// broadcast the value at completion.
type operand struct {
	ready    bool
	val      uint64
	producer uint64 // producer seq, valid when !ready
}

// uop is one entry of the machine's instruction window: a fetched
// instruction or inserted predication uop, carried from fetch to
// retirement.
type uop struct {
	seq  uint64 // global age; also the rename tag of the destination
	pc   uint64
	inst isa.Inst
	kind uopKind

	// Renamed sources. src3 is used only by select-uops (the second data
	// input; src1/src2 convention: src1 = predicated-path value, src2 is
	// unused, src3 = alternate-path value... see rename.go).
	src1, src2, src3 operand
	numSrc           int

	// Destination.
	hasDst  bool
	dstArch isa.Reg
	dstVal  uint64

	// Scheduling state.
	renameAt uint64 // earliest cycle this uop may rename (front-end delay)
	renamed  bool
	issued   bool
	done     bool
	squashed bool   // killed by a pipeline flush; never retires
	inReady  bool   // currently queued in the ready list
	inReplay bool   // load parked for store-buffer replay
	sqBy     uint64 // debug: seq of the flush point that squashed this uop
	sqAt     uint64 // debug: cycle of the squash
	sqHow    string // debug: which mechanism squashed it

	// waiters are consumers renamed against this uop's destination that
	// were not ready at rename time; completion wakes them.
	waiters []waiter

	// Dynamic predication.
	ep      *episode // episode this uop belongs to (nil outside DP mode)
	onAlt   bool     // fetched on the alternate path of its episode
	predID  int      // predicate register id (0 = not predicated)
	selPred int      // select-uop: predicate id it muxes on

	// Branch state (conditional and other control).
	predictedTaken bool
	predictedNext  uint64 // predicted next fetch PC
	actualTaken    bool
	actualNext     uint64
	resolved       bool
	mispredicted   bool
	isDiverge      bool // fetched as a dynamically predicated diverge branch
	dpConverted    bool // diverge reverted to a normal branch (early exit / MDB)
	lowConf        bool
	fetchGHR       bpred.GHR // speculative GHR *before* this branch's prediction
	fetchSnap      *fetchSnapshot
	checkpoint     *ratCheckpoint

	// Memory state.
	isLoad, isStore bool
	addr            uint64
	addrValid       bool
	sbIndex         int // store-buffer slot for stores
	memLat          int

	// Oracle bookkeeping (statistics and perfect prediction/confidence).
	onPath        bool // fetched while the oracle was in lockstep
	wpEpisode     int  // wrong-path episode id (0 = none)
	oracleTaken   bool // oracle outcome, valid for on-path branches
	oracleNext    uint64
	oracleHasStep bool
	oracleCount   uint64 // architectural step count after the oracle ran it

	// Dual path.
	stream int // 0 = primary, 1 = forked stream

	// Observability: unique pipetrace id, assigned lazily on the first
	// probe event for this uop (0 = none yet). Unlike seq it is never
	// shared between uops.
	obsID uint64
}

// waiter records a consumer waiting on a producer's completion.
type waiter struct {
	u     *uop
	which int // 1, 2 or 3: which source operand
}

// srcReady reports whether all renamed sources are available.
func (u *uop) srcReady() bool {
	return (u.numSrc < 1 || u.src1.ready) &&
		(u.numSrc < 2 || u.src2.ready) &&
		(u.numSrc < 3 || u.src3.ready)
}

// isMarker reports whether the uop is a zero-latency bookkeeping uop
// (enter/exit/fork markers execute trivially).
func (u *uop) isMarker() bool {
	return u.kind == kindEnterPred || u.kind == kindEnterAlt ||
		u.kind == kindExitPred || u.kind == kindFork
}

// countsAsInst reports whether the uop contributes to the retired
// instruction count (program instructions with TRUE or no predicate;
// decided at retirement together with the predicate value).
func (u *uop) countsAsInst() bool { return u.kind == kindInst }
