package core

import (
	"testing"

	"dmp/internal/profile"
)

// warmedWarmer builds a warmer over a sizable random program and trains
// it far enough that every component holds real state.
func warmedWarmer(t testing.TB) *Warmer {
	t.Helper()
	p := mustProg(randomHammockProg(800))
	if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
		t.Fatalf("profile: %v", err)
	}
	w, err := NewWarmer(p, EnhancedDMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WarmTo(5000); err != nil {
		t.Fatal(err)
	}
	if w.Halted() {
		t.Fatal("program too short to warm")
	}
	return w
}

// TestWarmerSnapshotAllocs pins that Warmer.Snapshot is O(metadata): a
// bounded number of small header allocations, independent of how much
// trained state is resident. This is the CI guard for the copy-on-write
// checkpoint path — a regression to deep copies (per-set cache copies,
// predictor table copies, merge-entry copies) blows the budget by orders
// of magnitude. The budget covers one struct per component plus two COW
// table headers each, with headroom for runtime noise.
func TestWarmerSnapshotAllocs(t *testing.T) {
	w := warmedWarmer(t)
	allocs := testing.AllocsPerRun(100, func() {
		wsSink = w.Snapshot()
	})
	if allocs > 48 {
		t.Errorf("Warmer.Snapshot allocates %v objects; want O(metadata) (<= 48)", allocs)
	}
}

var wsSink *WarmState

func BenchmarkWarmerSnapshot(b *testing.B) {
	w := warmedWarmer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wsSink = w.Snapshot()
	}
}

// TestSnapshotIsolationUnderInterleavedTraining extends the snapshot
// isolation pin to the COW sharing chain the sampler actually creates:
// a snapshot taken from a continuously training warmer, replayed only
// after the warmer has trained through two MORE snapshots, must behave
// exactly like the same snapshot replayed immediately. This exercises
// repeated Clone generations over shared storage, not just one.
func TestSnapshotIsolationUnderInterleavedTraining(t *testing.T) {
	p := profiled(t, mustProg(randomHammockProg(800)))
	cfg := segCfg()

	w, err := NewWarmer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WarmTo(2000); err != nil {
		t.Fatal(err)
	}
	ckA, wsA := w.Checkpoint(), w.Snapshot()

	replay := func(ws *WarmState) Stats {
		m, err := NewFromCheckpointWarm(p, cfg, ckA, ws)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.RunUntil(1500)
		if err != nil {
			t.Fatal(err)
		}
		snap := *st
		if _, err := m.Finish(); err != nil {
			t.Fatal(err)
		}
		snap.WallSeconds = 0
		return snap
	}

	// Reference: replay a private clone of snapshot A immediately.
	ref := replay(wsA.clone())

	// Keep training through two more snapshot generations, then replay
	// the original snapshot A.
	if err := w.WarmTo(4000); err != nil {
		t.Fatal(err)
	}
	_ = w.Snapshot()
	if err := w.WarmTo(6000); err != nil {
		t.Fatal(err)
	}
	_ = w.Snapshot()

	if got := replay(wsA); got != ref {
		t.Errorf("snapshot replayed after further training differs from immediate replay:\n%+v\n%+v", got, ref)
	}
}
