package core

import (
	"fmt"

	"dmp/internal/bpred"
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// fetchSnapshot is the fetch-side state carried by every control uop so a
// misprediction recovery can restore the front end, including the state
// of dynamic predication mode (paper footnote 11: the CFM register and
// the phase are part of every branch checkpoint).
type fetchSnapshot struct {
	ghr        bpred.GHR      // speculative GHR after this instruction's effect
	ras        bpred.RASState // RAS after this instruction's effect
	epID       int            // live episode at this instruction (0 = none)
	phase      dpPhase
	altFetched int
	cfmChosen  bool
	cfm        uint64
}

func (m *Machine) feqCap() int {
	return m.cfg.FetchQueueSize + m.cfg.frontEndDelay()*m.cfg.FetchWidth
}

func (m *Machine) snapFetch() *fetchSnapshot {
	var s *fetchSnapshot
	if n := len(m.snapPool); n > 0 {
		// Reuse a snapshot salvaged from a squashed control uop, keeping
		// its RAS copy's backing array.
		s = m.snapPool[n-1]
		m.snapPool = m.snapPool[:n-1]
		ras := s.ras
		*s = fetchSnapshot{ras: ras}
	} else {
		s = &fetchSnapshot{}
	}
	s.ghr = m.fetchGHR
	m.ras.SnapshotInto(&s.ras)
	if m.feEp != nil {
		s.epID = m.feEp.id
		s.phase = m.feEp.phase
		s.altFetched = m.feEp.altFetched
		s.cfmChosen = m.feEp.cfmChosen
		s.cfm = m.feEp.cfm
	}
	return s
}

// fetchStage fetches up to FetchWidth instructions, at most MaxBrPerFetch
// conditional branches, ending at the first predicted-taken branch
// (Table 2's front end). It also runs the dynamic-predication fetch FSM:
// predicted path → alternate path → exit (Section 2.3).
//
//dmp:hotpath
func (m *Machine) fetchStage() {
	if m.cycle < m.fetchStallUntil {
		return
	}
	if m.dualActive {
		m.fetchDualStage()
		return
	}
	if m.fetchHalted || len(m.feq) >= m.feqCap() {
		return
	}
	// Drained-machine resync: with an empty window and retirement at the
	// oracle's frontier, fetch provably sits at the architectural next
	// instruction, so a paused oracle can re-form lockstep even when its
	// original pause point was absorbed into a predicated path it never
	// followed.
	if !m.oracle.onPath && !m.oracle.em.Halted &&
		len(m.rob) == 0 && len(m.feq) == 0 &&
		m.oracle.em.Count == m.retired && m.oracle.em.PC == m.fetchPC {
		m.oracle.onPath = true
		m.closeWP()
	}
	// Instruction cache: a miss stalls the whole fetch group.
	if lat := m.hier.InstLatency(m.fetchPC * 8); lat > 2 {
		m.fetchStallUntil = m.cycle + uint64(lat)
		m.Stats.L1IMisses++
		return
	}

	slots, brs := m.cfg.FetchWidth, 0
	for slots > 0 && len(m.feq) < m.feqCap() && !m.fetchHalted {
		if ep := m.feEp; ep != nil {
			if ep.phase == dpAlternate && m.cfg.EarlyExit && ep.altFetched >= ep.exitThreshold {
				m.earlyExit(ep)
				slots--
				continue
			}
			if ep.phase == dpPredicted && m.cfmHit(ep, m.fetchPC) {
				m.switchToAlternate(ep)
				slots--
				continue
			}
			if ep.phase == dpAlternate && m.fetchPC == ep.cfm {
				m.exitPredication(ep)
				slots--
				continue
			}
		}
		redirected, isCond := m.fetchOne()
		slots--
		if isCond {
			brs++
		}
		if redirected {
			break // fetch ends at the first taken branch
		}
		if brs >= m.cfg.MaxBrPerFetch {
			break
		}
	}
}

// cfmHit checks the fetch address against the episode's CFM points. Until
// the predicted path has chosen a CFM, all marked points are compared
// (the multiple-CFM CAM of Section 2.7.1); afterwards only the chosen one
// ends the alternate path.
func (m *Machine) cfmHit(ep *episode, pc uint64) bool {
	if ep.cfmChosen {
		return pc == ep.cfm
	}
	for _, c := range ep.cfms {
		if c == pc {
			return true
		}
	}
	return false
}

// fetchOne fetches the instruction at fetchPC, runs the oracle, predicts
// control flow, decides dynamic-predication entry, and appends the uop to
// the front-end queue. It reports whether fetch redirected (ending the
// group) and whether the instruction was a conditional branch.
func (m *Machine) fetchOne() (redirected, isCond bool) {
	pc := m.fetchPC
	in := m.prog.At(pc)
	u := m.arena.alloc()
	u.seq, u.pc, u.inst, u.kind, u.stream = m.nextSeq(), pc, in, kindInst, m.fetchStream
	if ep := m.feEp; ep != nil {
		u.ep = ep
		if ep.phase == dpAlternate {
			u.onAlt = true
			u.predID = ep.predID2
			ep.altFetched++
		} else {
			u.predID = ep.predID1
		}
	} else if m.dualActive {
		u.ep = m.dualEp
		if m.fetchStream == 1 {
			u.onAlt = true
			u.predID = m.dualEp.predID2
		} else {
			u.predID = m.dualEp.predID1
		}
	}
	m.stepOracle(u)
	m.noteFetched(u)
	u.fetchGHR = m.fetchGHR

	switch in.Op {
	case isa.BR:
		isCond = true
		redirected = m.fetchBranch(u)
	case isa.JMP:
		u.predictedNext = in.Target
		m.pushUop(u)
		u.fetchSnap = m.snapFetch()
		m.redirectFetch(in.Target)
		redirected = true
	case isa.CALL:
		u.predictedNext = in.Target
		m.ras.Push(pc + 1)
		m.pushUop(u)
		u.fetchSnap = m.snapFetch()
		m.redirectFetch(in.Target)
		redirected = true
	case isa.CALLR:
		m.ras.Push(pc + 1)
		u.predictedNext = m.itc.Lookup(pc, m.fetchGHR)
		m.pushUop(u)
		u.fetchSnap = m.snapFetch()
		m.redirectFetch(u.predictedNext)
		redirected = true
	case isa.JR:
		u.predictedNext = m.itc.Lookup(pc, m.fetchGHR)
		m.pushUop(u)
		u.fetchSnap = m.snapFetch()
		m.redirectFetch(u.predictedNext)
		redirected = true
	case isa.RET:
		u.predictedNext = m.ras.Pop()
		m.pushUop(u)
		u.fetchSnap = m.snapFetch()
		m.redirectFetch(u.predictedNext)
		redirected = true
	case isa.HALT:
		u.predictedNext = pc
		m.pushUop(u)
		m.fetchHalted = true
		redirected = true
	default:
		u.predictedNext = pc + 1
		m.pushUop(u)
		m.fetchPC = pc + 1
	}
	return redirected, isCond
}

// stepOracle offers the fetched instruction to the fetch oracle and
// records on-path/wrong-path bookkeeping.
func (m *Machine) stepOracle(u *uop) {
	if m.dualActive && u.stream != m.oracleStream {
		// The oracle follows only the stream it knows to be correct.
		return
	}
	wasOn := m.oracle.onPath
	if st, ok := m.oracle.stepIfAt(u); ok {
		u.onPath = true
		u.oracleHasStep = true
		u.oracleTaken = st.Taken
		u.oracleNext = st.NextPC
		u.oracleCount = m.oracle.em.Count
		m.feedWPWatchers(u.pc)
	} else if wasOn && !m.oracle.onPath {
		// Fetch just left the correct path at this instruction.
		if m.traceWP != nil {
			m.traceWP(fmt.Sprintf("pause-at fetch pc=%d seq=%d ep=%v", u.pc, u.seq, u.ep != nil))
		}
		m.openWP()
		m.recordWrongFetch(u.pc)
	} else if !m.oracle.onPath {
		m.recordWrongFetch(u.pc)
	}
}

// fetchBranch predicts a conditional branch, decides dynamic predication
// entry, and redirects fetch if predicted taken. It returns whether fetch
// redirected.
func (m *Machine) fetchBranch(u *uop) bool {
	in := u.inst
	taken := m.pred.Predict(u.pc, m.fetchGHR)
	if m.cfg.Mode == ModePerfect && u.oracleHasStep {
		taken = u.oracleTaken
	}
	u.predictedTaken = taken
	if taken {
		u.predictedNext = in.Target
	} else {
		u.predictedNext = u.pc + 1
	}
	u.lowConf = m.lowConfidence(u)
	if u.lowConf && u.oracleHasStep {
		if u.predictedTaken == u.oracleTaken {
			m.Stats.LowConfCorrect++
		} else {
			m.Stats.LowConfWrong++
		}
	}

	entered := m.maybeEnterDP(u)
	m.pushUop(u)
	// Speculative history update with the predicted outcome.
	m.fetchGHR = m.fetchGHR.Push(taken)
	u.fetchSnap = m.snapFetch()
	if entered {
		if u.ep.dual {
			m.emitMarker(kindFork, u.ep)
		} else {
			m.emitMarker(kindEnterPred, u.ep)
		}
	}
	m.fetchPC = u.predictedNext
	m.fetchHalted = false
	return taken
}

// lowConfidence consults the confidence estimator (or the oracle for
// perfect confidence) for a fetched conditional branch.
func (m *Machine) lowConfidence(u *uop) bool {
	if m.cfg.ConfidenceName == "perfect" {
		return u.oracleHasStep && u.predictedTaken != u.oracleTaken
	}
	return m.confEst.LowConfidence(u.pc, u.fetchGHR)
}

// maybeEnterDP decides whether the fetched branch starts a dynamic
// predication episode (or a dual-path fork) and sets it up. Returns true
// if an episode began at this branch.
func (m *Machine) maybeEnterDP(u *uop) bool {
	switch m.cfg.Mode {
	case ModeDMP, ModeDHP:
	case ModeDualPath:
		return m.maybeFork(u)
	default:
		return false
	}
	if !u.lowConf {
		return false
	}
	d, dyn := m.divergeFor(u)
	if d == nil || len(d.CFMs) == 0 {
		// No CFM source for this branch — unannotated under the dynamic
		// source with nothing learned yet, or a (malformed) annotation
		// with an empty CFM list: fall back to normal branch prediction.
		return false
	}
	if m.cfg.Mode == ModeDHP && d.Class != prog.ClassSimpleHammock {
		return false
	}
	if d.Loop && !m.cfg.EnableLoopDiverge {
		return false
	}
	if ep := m.liveEp(); ep != nil {
		// Section 2.7.3: on the predicted path, give up on the current
		// episode and re-enter for the newer diverge branch. Anywhere
		// else, ignore the newcomer.
		if m.cfg.MultipleDiverge && m.feEp == ep && ep.phase == dpPredicted {
			m.Stats.MDBConversions++
			if m.probe != nil {
				m.probeEpisode(EpMDBConvert, ep)
			}
			m.killEpisodeAssumePredicted(ep)
		} else {
			return false
		}
	}
	m.enterEpisode(u, d, dyn)
	return true
}

// divergeFor returns the diverge annotation guiding dynamic-predication
// entry at the fetched branch u, and whether it came from the runtime
// merge-point predictor rather than the compiler. With no predictor
// attached (annotated source, or any non-DMP mode) this is exactly the
// static annotation. Under the dynamic source the annotation is ignored;
// under hybrid it wins when present. A predictor hit is synthesized into
// the machine's scratch Diverge — enterEpisode copies the CFM out, so
// the scratch may be reused by the next lookup.
func (m *Machine) divergeFor(u *uop) (d *prog.Diverge, dyn bool) {
	d = m.prog.DivergeAt(u.pc)
	if m.merge == nil {
		return d, false
	}
	if m.cfg.CFMSource == "dynamic" {
		d = nil
	}
	if d != nil {
		return d, false // hybrid: the compiler annotation wins
	}
	pr, ok := m.merge.Lookup(u.pc)
	if !ok {
		m.Stats.MergeMisses++
		return nil, false
	}
	m.Stats.MergeHits++
	m.dynCFM[0] = pr.CFM
	m.dynDiv = prog.Diverge{
		CFMs: m.dynCFM[:1],
		// The predictor knows reconvergence, not hammock shape, so the
		// learned region is treated as a complex (frequently-hit-path)
		// diverge; backward branches are flagged as loop diverges and
		// filtered by EnableLoopDiverge like annotated ones.
		Class:         prog.ClassComplexDiverge,
		ExitThreshold: pr.ExitThreshold,
		Loop:          u.inst.Target <= u.pc,
	}
	return &m.dynDiv, true
}

// liveEp returns the unresolved, un-dead episode if one exists. The
// machine runs at most one episode at a time (the paper's basic processor
// ignores diverge branches during dynamic predication mode; we extend the
// exclusivity until resolution so predicate registers and the oracle
// journal have a single owner).
func (m *Machine) liveEp() *episode { return m.live }

func (m *Machine) enterEpisode(u *uop, d *prog.Diverge, dyn bool) {
	cfms := d.CFMs
	if !m.cfg.MultipleCFM {
		cfms = cfms[:1]
	}
	thr := d.ExitThreshold
	if thr <= 0 {
		thr = m.cfg.EarlyExitDefault
	}
	m.episodeSeq++
	ep := &episode{
		id:             m.episodeSeq,
		divergeU:       u,
		cfms:           cfms,
		phase:          dpPredicted,
		predictedTaken: u.predictedTaken,
		predID1:        m.preds.alloc(),
		exitThreshold:  thr,
		loop:           d.Loop,
		dynCFM:         dyn,
	}
	if dyn {
		// d points at the machine's scratch Diverge: give the episode its
		// own copy of the single learned CFM so the scratch can be reused.
		ep.cfmStore[0] = cfms[0]
		ep.cfms = ep.cfmStore[:1]
		m.Stats.DynCFMEpisodes++
	}
	if u.predictedTaken {
		ep.altStartPC = u.pc + 1
	} else {
		ep.altStartPC = u.inst.Target
	}
	ep.ghr1 = u.fetchGHR.Push(u.predictedTaken)
	ep.rasAtDiverge = m.ras.Snapshot()
	u.isDiverge = true
	u.ep = ep
	m.live = ep
	m.feEp = ep
	m.episodes[ep.id] = ep
	m.Stats.Episodes++
	if m.probe != nil {
		m.probeEpisode(EpEnter, ep)
	}
}

// switchToAlternate ends the predicted path at the CFM point: emit
// enter.alternate.path, jump fetch to the other side of the diverge
// branch with the checkpointed GHR/RAS (Section 2.3).
func (m *Machine) switchToAlternate(ep *episode) {
	ep.cfm = m.fetchPC
	ep.cfmChosen = true
	ep.ghrAtCFM = m.fetchGHR
	ep.rasAtCFM = m.ras.Snapshot()
	m.emitMarker(kindEnterAlt, ep)
	ep.predID2 = m.preds.alloc()
	ep.phase = dpAlternate
	if m.probe != nil {
		m.probeEpisode(EpCFMReached, ep)
	}
	ep.altFetched = 0
	m.fetchPC = ep.altStartPC
	m.fetchGHR = ep.ghr1.SetLast(!ep.predictedTaken)
	m.ras.Restore(ep.rasAtDiverge)
	m.fetchHalted = false
	// If the diverge branch was mispredicted, the alternate path is the
	// correct path: rewind the oracle to the state right after the
	// diverge branch, which is exactly the alternate start. (This covers
	// both the usual case, where the oracle paused there when the wrong
	// predicted path was fetched, and the empty-predicted-path case,
	// where it never diverged at all.)
	if ep.divergeU.oracleHasStep && ep.divergeU.oracleTaken != ep.predictedTaken {
		if m.oracle.rewindTo(ep.divergeU.oracleCount) {
			m.closeWP()
		}
	}
}

// exitPredication ends the alternate path at the CFM point: emit
// exit.pred (which will insert select-uops at rename) and resume normal
// fetch from the CFM point, keeping the alternate path's GHR (Section
// 2.3's design choice).
func (m *Machine) exitPredication(ep *episode) {
	m.emitMarker(kindExitPred, ep)
	ep.phase = dpExited
	if m.probe != nil {
		m.probeEpisode(EpExitPred, ep)
	}
	m.feEp = nil
	m.fetchHalted = false
	if !m.cfg.KeepAlternateGHR {
		// Resume post-CFM fetch with the predicted path's history (see
		// Config.KeepAlternateGHR).
		m.fetchGHR = ep.ghrAtCFM
	}
	// If the diverge branch was correctly predicted, the predicted path
	// was the correct path and the oracle is waiting at the CFM point.
	// (Any later squash of the post-CFM work the oracle then executes is
	// handled by the flush-time rewind in recoverFrom.)
	if ep.divergeU.onPath && ep.divergeU.oracleTaken == ep.predictedTaken {
		if m.oracle.resumeAt(m.fetchPC) {
			m.closeWP()
		}
	}
}

// earlyExit abandons the alternate path (Section 2.7.2): restore the
// predicted path's end state, restart fetch from the CFM point, and
// revert the diverge branch to a normal predicted branch by broadcasting
// its predicate TRUE.
func (m *Machine) earlyExit(ep *episode) {
	m.Stats.EarlyExits++
	if ep.dynCFM {
		// The alternate path never reached the learned merge point within
		// the exit threshold: the prediction was (likely) wrong.
		m.Stats.MergeMispredicts++
	}
	ep.earlyExited = true
	if m.probe != nil {
		m.probeEpisode(EpEarlyExit, ep)
	}
	m.killEpisodeAssumePredicted(ep)
	m.fetchPC = ep.cfm
	m.fetchGHR = ep.ghrAtCFM
	m.ras.Restore(ep.rasAtCFM)
	m.fetchHalted = false
	if ep.divergeU.oracleHasStep && ep.divergeU.oracleTaken != ep.predictedTaken {
		// The diverge branch is actually mispredicted, so the oracle was
		// following (or waiting at) the alternate path we just abandoned.
		// Park it at the alternate start; the eventual misprediction
		// flush of the diverge branch resumes it there.
		if m.oracle.rewindTo(ep.divergeU.oracleCount) {
			m.oracle.pause()
			m.openWP()
		}
	} else if ep.divergeU.onPath {
		// Predicted path was correct: the oracle waits at the CFM point.
		if m.oracle.resumeAt(m.fetchPC) {
			m.closeWP()
		}
	}
}

// killEpisodeAssumePredicted converts an episode to normal branch
// prediction: the predicted path is assumed correct (p1 broadcast TRUE,
// p2 FALSE), alternate-path uops still in the front-end queue are
// dropped, and rename-side state is restored to the predicted path's.
// Used by the early-exit and multiple-diverge-branch enhancements; the
// diverge branch then behaves like a normal branch at resolution.
func (m *Machine) killEpisodeAssumePredicted(ep *episode) {
	ep.converted = true
	ep.divergeU.dpConverted = true
	m.wakePred(m.preds.broadcast(ep.predID1, true))
	if ep.predID2 != 0 {
		m.wakePred(m.preds.broadcast(ep.predID2, false))
	}
	// Drop not-yet-renamed alternate-path uops and this episode's
	// enter.alt / exit.pred markers.
	if ep.phase == dpAlternate || ep.phase == dpExited {
		kept := m.feq[:0]
		for _, q := range m.feq {
			if q.ep == ep && (q.onAlt || q.kind == kindEnterAlt || q.kind == kindExitPred) {
				if m.probe != nil {
					m.probeUop(StageSquash, q)
				}
				m.arena.recycleFEQ(q)
				continue
			}
			kept = append(kept, q)
		}
		m.feq = kept
		// If the alternate path already renamed, undo its RAT effects by
		// restoring the checkpoint taken at the end of the predicted path.
		if ep.cp2 != nil {
			m.rat = *ep.cp2
		}
	}
	m.teardownEpisode(ep)
}

// teardownEpisode removes the episode from the live slot and the id map.
func (m *Machine) teardownEpisode(ep *episode) {
	ep.phase = dpDead
	if m.live == ep {
		m.live = nil
	}
	if m.feEp == ep {
		m.feEp = nil
	}
	delete(m.episodes, ep.id)
}

// emitMarker pushes a predication marker uop into the front-end queue.
func (m *Machine) emitMarker(kind uopKind, ep *episode) {
	mu := m.arena.alloc()
	mu.seq, mu.pc, mu.inst, mu.kind, mu.ep = m.nextSeq(), ep.divergeU.pc, isa.Inst{Op: isa.NOP}, kind, ep
	m.Stats.FetchedMarkers++
	m.pushUop(mu)
}

// pushUop timestamps a uop for the front-end delay and appends it to the
// fetch queue.
//
//dmp:hotpath
func (m *Machine) pushUop(u *uop) {
	u.renameAt = m.cycle + uint64(m.cfg.frontEndDelay())
	m.feq = append(m.feq, u)
	if m.probe != nil {
		m.probeUop(StageFetch, u)
	}
}

// redirectFetch moves the fetch PC (same-cycle redirect; the taken-branch
// fetch break is modelled by ending the fetch group).
func (m *Machine) redirectFetch(pc uint64) {
	m.fetchPC = pc
	m.fetchHalted = false
}

// noteFetched counts a fetched program instruction, classifying wrong-path
// fetches for Figure 1.
func (m *Machine) noteFetched(u *uop) {
	m.Stats.FetchedInsts++
}

// --- wrong-path episode tracking (Figure 1) ---

// openWP starts a wrong-path fetch episode when the oracle pauses.
func (m *Machine) openWP() {
	if m.wpOpen != nil {
		return
	}
	m.Stats.OraclePauses++
	if m.traceWP != nil {
		m.traceWP("pause")
	}
	if m.probe != nil {
		m.probeOracle(false)
	}
	m.wpNextID++
	if n := len(m.wpPool); n > 0 {
		e := m.wpPool[n-1]
		m.wpPool = m.wpPool[:n-1]
		e.id = m.wpNextID
		m.wpOpen = e
		return
	}
	m.wpOpen = &wpEpisode{id: m.wpNextID, firstSeen: map[uint64]int{}, split: -1}
}

// recycleWP resets a finished episode for reuse, keeping the PC log's
// capacity and the map's buckets (episodes are opened at every oracle
// pause, so fresh allocations here add up).
func (m *Machine) recycleWP(e *wpEpisode) {
	e.pcs = e.pcs[:0]
	clear(e.firstSeen)
	e.split = -1
	e.watchLeft = 0
	m.wpPool = append(m.wpPool, e)
}

// recordWrongFetch logs a wrong-path fetched PC into the open episode.
func (m *Machine) recordWrongFetch(pc uint64) {
	e := m.wpOpen
	if e == nil {
		// Paused before this machine opened an episode (e.g. dual-path
		// non-oracle stream): open one now.
		m.openWP()
		e = m.wpOpen
	}
	if _, ok := e.firstSeen[pc]; !ok {
		e.firstSeen[pc] = len(e.pcs)
	}
	e.pcs = append(e.pcs, pc)
}

// closeWP ends the open wrong-path episode (the oracle resumed); the
// episode then watches the next correct-path fetches to find where the
// wrong path had reconverged with the correct path.
func (m *Machine) closeWP() {
	if m.wpOpen == nil {
		return
	}
	m.Stats.OracleResumes++
	if m.traceWP != nil {
		m.traceWP("resume")
	}
	if m.probe != nil {
		m.probeOracle(true)
	}
	e := m.wpOpen
	m.wpOpen = nil
	if len(e.pcs) == 0 {
		m.recycleWP(e)
		return
	}
	e.watchLeft = 512
	m.wpWatching = append(m.wpWatching, e)
}

// feedWPWatchers gives a correct-path fetched PC to all watching
// episodes: the first wrong-path occurrence of a correct-path PC marks
// the start of the control-independent portion of that wrong path.
func (m *Machine) feedWPWatchers(pc uint64) {
	if len(m.wpWatching) == 0 {
		return
	}
	kept := m.wpWatching[:0]
	for _, e := range m.wpWatching {
		if idx, ok := e.firstSeen[pc]; ok && (e.split == -1 || idx < e.split) {
			e.split = idx
		}
		e.watchLeft--
		if e.watchLeft <= 0 || e.split == 0 {
			m.finishWP(e)
			m.recycleWP(e)
			continue
		}
		kept = append(kept, e)
	}
	m.wpWatching = kept
}

// finishWP accounts a finished wrong-path episode into Figure-1 counters.
func (m *Machine) finishWP(e *wpEpisode) {
	if e.split < 0 {
		m.Stats.FetchedWrongCD += uint64(len(e.pcs))
		return
	}
	m.Stats.FetchedWrongCD += uint64(e.split)
	m.Stats.FetchedWrongCI += uint64(len(e.pcs) - e.split)
}

// flushWPAll finalizes all outstanding wrong-path episodes (end of run).
func (m *Machine) flushWPAll() {
	if m.wpOpen != nil {
		e := m.wpOpen
		m.wpOpen = nil
		if len(e.pcs) > 0 {
			m.finishWP(e)
		}
	}
	for _, e := range m.wpWatching {
		m.finishWP(e)
	}
	m.wpWatching = nil
}
