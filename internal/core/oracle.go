package core

import (
	"dmp/internal/emu"
	"dmp/internal/prog"
)

// fetchOracle is a functional emulator that follows the fetch stream
// along correct-path instructions only. While fetch is on the correct
// path the oracle is "in lockstep": it executes each fetched instruction
// architecturally and therefore knows every branch outcome at fetch time.
// When fetch diverges from the correct path (a misprediction, or the
// wrong side of a dynamically predicated branch) the oracle pauses at the
// divergence point.
//
// Re-synchronisation relies on the emulator's rolling history window:
// every oracle-executed instruction records its architectural step count
// on the uop (uop.oracleCount), and whenever a flush (or a dynamic
// predication transition) moves fetch back to the correct continuation of
// an oracle-executed instruction, the oracle rewinds to exactly that
// step. Retirement trims the window, which therefore never grows beyond
// the instruction window.
//
// The oracle provides: perfect conditional branch prediction
// (ModePerfect), perfect confidence estimation (low-confidence exactly
// when mispredicted), and the correct-path/wrong-path labelling behind
// Figure 1.
type fetchOracle struct {
	em      *emu.Emulator
	onPath  bool
	lastSeq uint64 // seq of the youngest uop the oracle executed
}

func newFetchOracle(p *prog.Program) *fetchOracle {
	return newFetchOracleFrom(emu.New(p))
}

// newFetchOracleFrom wraps an already-positioned emulator (the sampling
// driver seeds it from a mid-program checkpoint). The emulator's Count
// must equal the machine's retired-instruction count at that point —
// checkpoint transplant zeroes both — because retirement resync compares
// the two directly.
func newFetchOracleFrom(em *emu.Emulator) *fetchOracle {
	o := &fetchOracle{em: em, onPath: true}
	o.em.EnableHistory()
	return o
}

// stepIfAt executes the instruction the uop was fetched from, if the
// oracle is in lockstep and agrees on the PC. It returns the
// architectural step and whether the oracle executed it. A PC mismatch
// while in lockstep means fetch has just diverged: the oracle pauses.
func (o *fetchOracle) stepIfAt(u *uop) (emu.Step, bool) {
	if !o.onPath || o.em.Halted {
		return emu.Step{}, false
	}
	if o.em.PC != u.pc {
		o.onPath = false
		return emu.Step{}, false
	}
	s, err := o.em.Step()
	if err != nil {
		// The oracle only steps in-image instructions; a failure here is
		// a simulator bug surfaced as a paused oracle.
		o.onPath = false
		return emu.Step{}, false
	}
	o.lastSeq = u.seq
	return s, true
}

// waitingAt reports whether the oracle is paused exactly at pc.
func (o *fetchOracle) waitingAt(pc uint64) bool {
	return !o.onPath && !o.em.Halted && o.em.PC == pc
}

// resumeAt puts the oracle back in lockstep if it is waiting at pc. The
// caller must only invoke this for redirects anchored at an on-path
// instruction; resuming on a coincidental wrong-path PC match would
// corrupt the oracle.
func (o *fetchOracle) resumeAt(pc uint64) bool {
	if o.waitingAt(pc) {
		o.onPath = true
		return true
	}
	return false
}

// pause takes the oracle out of lockstep explicitly.
func (o *fetchOracle) pause() { o.onPath = false }

// rewindTo restores the oracle to the architectural state immediately
// after step count (recorded on an oracle-executed uop) and puts it back
// in lockstep. Reports success.
func (o *fetchOracle) rewindTo(count uint64) bool {
	if err := o.em.RewindTo(count); err != nil {
		return false
	}
	o.onPath = true
	return true
}

// trim tells the oracle that all steps up to count have retired and can
// never be rewound to.
func (o *fetchOracle) trim(count uint64) { o.em.TrimHistory(count) }

// steps returns the architectural instruction count the oracle has
// executed so far (probe reporting).
func (o *fetchOracle) steps() uint64 { return o.em.Count }
