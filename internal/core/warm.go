package core

import (
	"fmt"

	"dmp/internal/bpred"
	"dmp/internal/cache"
	"dmp/internal/conf"
	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/merge"
	"dmp/internal/prog"
)

// WarmState is the learned microarchitectural state functional warming
// maintains: cache hierarchy, branch direction predictor, confidence
// estimator, BTB, return address stack, indirect target cache, the
// merge-point predictor (when the configuration uses one), and the
// global history register. Sampled simulation trains one WarmState
// continuously while fast-forwarding (core.Warmer) and transplants a
// clone into each detailed interval's machine (NewFromCheckpointWarm),
// so intervals start with the long-lived learned state an exact run
// would have instead of cold tables.
type WarmState struct {
	hier        *cache.Hierarchy
	pred        bpred.DirPredictor
	confEst     conf.Estimator
	btb         *bpred.BTB
	ras         *bpred.RAS
	itc         *bpred.ITC
	merge       *merge.Predictor // nil unless cfg uses the runtime merge predictor
	ghr         bpred.GHR
	perfectConf bool
	// cachesOnly selects the reduced warming mode (Config.WarmMode
	// "caches"): observe trains only the cache hierarchy and skips
	// predictor training and wrong-path/episode excursions.
	cachesOnly bool

	// Episode-entry mirror of Machine.maybeEnterDP, so warming replays
	// the cache footprint of dynamic predication (see observe).
	mode        Mode
	cfmSource   string
	loopDiverge bool
	earlyExit   int
	epStore     [8]uint64 // owned copies of the active region's CFM PCs
	epCFMs      int       // CFM count while inside a mirrored episode region, else 0
	epLeft      int       // instruction budget left in that region
	dynCFM      [1]uint64
	dynDiv      prog.Diverge
}

// newWarmState builds the learned-state components for cfg — the same
// selection Machine construction uses (New installs the result).
func newWarmState(cfg Config) (WarmState, error) {
	ws := WarmState{
		perfectConf: cfg.ConfidenceName == "perfect",
		cachesOnly:  cfg.WarmMode == "caches",
		mode:        cfg.Mode,
		cfmSource:   cfg.CFMSource,
		loopDiverge: cfg.EnableLoopDiverge,
		earlyExit:   cfg.EarlyExitDefault,
	}
	switch cfg.PredictorName {
	case "", "perceptron":
		ws.pred = bpred.NewPerceptron(bpred.DefaultPerceptronConfig())
	case "gshare":
		ws.pred = bpred.NewGShare(16, 14)
	case "bimodal":
		ws.pred = bpred.NewBimodal(16)
	case "hybrid":
		ws.pred = bpred.NewHybrid(14, 12)
	}
	switch cfg.ConfidenceName {
	case "", "jrs":
		ws.confEst = conf.NewJRS(conf.DefaultJRSConfig())
	case "perfect":
		ws.confEst = conf.Perfect{}
	case "always-low":
		ws.confEst = conf.AlwaysLow{}
	case "never-low":
		ws.confEst = conf.NeverLow{}
	}
	ws.btb = bpred.NewBTB(4096, 4)
	ws.ras = bpred.NewRAS(64)
	ws.itc = bpred.NewITC(16)
	ws.hier = cache.NewHierarchy(cache.DefaultHierarchyConfig())
	if cfg.Mode == ModeDMP && cfg.CFMSource != "" && cfg.CFMSource != "annotated" {
		mc := merge.DefaultConfig()
		if cfg.MergeTableSize > 0 {
			mc.TableSize = cfg.MergeTableSize
		}
		mp, err := merge.New(mc)
		if err != nil {
			return ws, err
		}
		ws.merge = mp
	}
	return ws, nil
}

// clone snapshots every component copy-on-write (stateless predictors
// are shared; they hold nothing). The snapshot is O(metadata): each
// component freezes its storage and re-copies privately only what is
// subsequently written, on whichever side writes it — so both the warmer
// and the detailed machine the clone seeds can keep training. The RAS is
// copied eagerly (64 words).
func (ws *WarmState) clone() *WarmState {
	c := &WarmState{
		hier:        ws.hier.Clone(),
		pred:        bpred.CloneDir(ws.pred),
		confEst:     conf.CloneEstimator(ws.confEst),
		btb:         ws.btb.Clone(),
		ras:         ws.ras.Clone(),
		itc:         ws.itc.Clone(),
		ghr:         ws.ghr,
		perfectConf: ws.perfectConf,
		cachesOnly:  ws.cachesOnly,
		mode:        ws.mode,
		cfmSource:   ws.cfmSource,
		loopDiverge: ws.loopDiverge,
		earlyExit:   ws.earlyExit,
		epStore:     ws.epStore,
		epCFMs:      ws.epCFMs,
		epLeft:      ws.epLeft,
	}
	if ws.merge != nil {
		c.merge = ws.merge.Clone()
	}
	return c
}

// wrongPathDepth bounds the runahead excursion taken at each mispredicted
// branch during functional warming. A detailed machine keeps fetching and
// executing down the mispredicted path until the branch resolves — up to
// several hundred instructions when resolution waits on a memory miss —
// and those wrong-path loads both pollute the caches and prefetch lines
// the correct path needs soon (pointer chases refetch the same nodes).
// Warming replays that effect architecturally: emu.Excursion walks the
// wrong path with copied registers and overlay stores, and only the
// caches see its footprint.
const wrongPathDepth = 256

// observe trains every component with one architecturally executed
// instruction, mirroring retireOne's update calls on the retired
// predicate-TRUE stream (predict-then-update, so the confidence
// estimator and merge gating see the same correct/incorrect signal).
// Mispredicted branches additionally replay bounded wrong-path runahead
// into the caches (see wrongPathDepth); em is the emulator that just
// executed st, whose state anchors the excursion. One deliberate
// approximation versus a detailed run remains: SelectiveBPUpdate cannot
// suppress updates for would-be-predicated branches, since no episodes
// exist without a pipeline.
func (ws *WarmState) observe(em *emu.Emulator, pc uint64, st emu.Step) {
	ws.hier.InstLatency(pc * 8)
	if ws.cachesOnly {
		// Reduced warming (WarmMode "caches"): only the hierarchy sees the
		// stream. No predictor training means no mispredict signal, so
		// wrong-path and episode excursions are skipped too; per-interval
		// SampleWarmup is expected to rebuild the short-history state.
		if st.IsLoad || st.IsStore {
			ws.hier.DataLatency(st.Addr)
		}
		return
	}
	if ws.epCFMs > 0 {
		// Inside a mirrored episode region: the machine runs one episode
		// at a time, so further diverge branches are ignored until the
		// architectural stream reaches a CFM point (or the budget runs
		// out — an early exit would have flushed by now).
		hit := false
		for _, c := range ws.epStore[:ws.epCFMs] {
			if pc == c {
				hit = true
				break
			}
		}
		ws.epLeft--
		if hit || ws.epLeft <= 0 {
			ws.epCFMs = 0
		}
	}
	in := st.Inst
	if in.Op == isa.BR {
		pred := ws.pred.Predict(pc, ws.ghr)
		low := ws.confEst.LowConfidence(pc, ws.ghr)
		if ws.perfectConf {
			low = pred != st.Taken
		}
		if ws.merge != nil {
			ws.merge.Observe(pc, in.Op, st.Taken, low || pred != st.Taken)
		}
		ws.pred.Update(pc, ws.ghr, st.Taken)
		ws.confEst.Update(pc, ws.ghr, pred == st.Taken)
		if st.Taken {
			ws.btb.Insert(pc, st.NextPC)
		}
		ws.ghr = ws.ghr.Push(st.Taken)
		if !ws.maybeEpisode(em, pc, st, low) && pred != st.Taken {
			wrongPC := pc + 1
			if pred {
				wrongPC = in.Target
			}
			ws.runahead(em, wrongPC)
		}
		return
	}
	if ws.merge != nil {
		ws.merge.Observe(pc, in.Op, st.Taken, false)
	}
	switch {
	case in.IsCall():
		ws.ras.Push(pc + 1)
		if in.IsIndirect() {
			ws.itc.Update(pc, ws.ghr, st.NextPC)
		}
	case in.IsIndirect():
		ws.itc.Update(pc, ws.ghr, st.NextPC)
		if in.Op == isa.RET {
			ws.ras.Pop()
		}
	case st.IsLoad || st.IsStore:
		ws.hier.DataLatency(st.Addr)
	}
}

// maybeEpisode mirrors Machine.maybeEnterDP on the warmed state: a
// low-confidence conditional branch with a CFM source starts a dynamic
// predication episode, during which the machine fetches and executes
// BOTH hammock paths up to the merge point. The architectural stream
// already warms the taken side; the excursion replays the other side's
// fetch and load footprint into the caches, bounded by the episode's
// early-exit threshold and cut at any CFM point. Reports whether an
// episode region began at this branch (suppressing mispredict runahead —
// a predicated branch never flushes).
func (ws *WarmState) maybeEpisode(em *emu.Emulator, pc uint64, st emu.Step, low bool) bool {
	if ws.mode != ModeDMP && ws.mode != ModeDHP {
		return false
	}
	if !low || ws.epCFMs > 0 {
		return false
	}
	d := ws.divergeFor(em.Prog, pc)
	if d == nil || len(d.CFMs) == 0 {
		return false
	}
	if ws.mode == ModeDHP && d.Class != prog.ClassSimpleHammock {
		return false
	}
	if d.Loop && !ws.loopDiverge {
		return false
	}
	thr := d.ExitThreshold
	if thr <= 0 {
		thr = ws.earlyExit
	}
	if thr <= 0 || thr > wrongPathDepth {
		thr = wrongPathDepth
	}
	altPC := pc + 1
	if !st.Taken {
		altPC = st.Inst.Target
	}
	ws.epCFMs = copy(ws.epStore[:], d.CFMs)
	ws.epLeft = wrongPathDepth
	em.Excursion(altPC, thr, func(s emu.Step) bool {
		ws.hier.InstLatency(s.PC * 8)
		if s.IsLoad {
			ws.hier.DataLatency(s.Addr)
		}
		for _, c := range ws.epStore[:ws.epCFMs] {
			if s.NextPC == c {
				return false
			}
		}
		return true
	})
	return true
}

// divergeFor mirrors Machine.divergeFor for the warmed state: the CFM
// source is the compiler annotation, the runtime merge-point predictor,
// or their hybrid, per cfg.CFMSource.
func (ws *WarmState) divergeFor(p *prog.Program, pc uint64) *prog.Diverge {
	d := p.DivergeAt(pc)
	if ws.merge == nil {
		return d
	}
	if ws.cfmSource == "dynamic" {
		d = nil
	}
	if d != nil {
		return d // hybrid: the compiler annotation wins
	}
	pr, ok := ws.merge.Lookup(pc)
	if !ok {
		return nil
	}
	ws.dynCFM[0] = pr.CFM
	ws.dynDiv = prog.Diverge{
		CFMs:          ws.dynCFM[:1],
		Class:         prog.ClassComplexDiverge,
		ExitThreshold: pr.ExitThreshold,
		Loop:          p.Code[pc].Target <= pc,
	}
	return &ws.dynDiv
}

// runahead replays bounded wrong-path execution into the caches: every
// wrong-path instruction is fetched (I-cache) and wrong-path loads access
// the D-cache, exactly the accesses a detailed machine makes before the
// flush (loads issue at execute; stores only touch the cache at retire,
// which a wrong path never reaches).
func (ws *WarmState) runahead(em *emu.Emulator, pc uint64) {
	em.Excursion(pc, wrongPathDepth, func(s emu.Step) bool {
		ws.hier.InstLatency(s.PC * 8)
		if s.IsLoad {
			ws.hier.DataLatency(s.Addr)
		}
		return true
	})
}

// Warmer is the continuous functional-warming engine of sampled
// simulation: an architectural emulator plus the WarmState it trains.
// One Warmer makes a single pass over the program; at each sampling
// checkpoint the driver captures Checkpoint() (architectural state) and
// Snapshot() (learned state) to seed an independent detailed machine.
type Warmer struct {
	em *emu.Emulator
	ws WarmState
}

// NewWarmer builds a warmer for p with cfg's predictor complement.
func NewWarmer(p *prog.Program, cfg Config) (*Warmer, error) {
	ws, err := newWarmState(cfg)
	if err != nil {
		return nil, err
	}
	return &Warmer{em: emu.New(p), ws: ws}, nil
}

// WarmTo advances to the absolute instruction count target, training the
// warm state on every instruction along the way.
func (w *Warmer) WarmTo(target uint64) error {
	for w.em.Count < target && !w.em.Halted {
		pc := w.em.PC
		st, err := w.em.Step()
		if err != nil {
			return fmt.Errorf("core: functional warm at pc %d: %w", pc, err)
		}
		w.ws.observe(w.em, pc, st)
	}
	return nil
}

// SkipTo advances to the absolute instruction count target with no
// training — for the tail after the last checkpoint, where learned state
// no longer matters and the raw emulator is faster.
func (w *Warmer) SkipTo(target uint64) error {
	if target <= w.em.Count {
		return nil
	}
	_, err := w.em.Run(target - w.em.Count)
	return err
}

// RunToHalt advances to program halt with no training.
func (w *Warmer) RunToHalt() error {
	_, err := w.em.Run(0)
	return err
}

// Count returns the number of instructions executed so far.
func (w *Warmer) Count() uint64 { return w.em.Count }

// Halted reports whether the program has halted.
func (w *Warmer) Halted() bool { return w.em.Halted }

// Checkpoint captures the current architectural state.
func (w *Warmer) Checkpoint() emu.Checkpoint { return w.em.Checkpoint() }

// Snapshot captures the current learned state as an isolated
// copy-on-write clone: O(metadata) cost (see WarmState.clone), with the
// per-component data copied lazily as either side keeps training.
func (w *Warmer) Snapshot() *WarmState { return w.ws.clone() }
