package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// fillValue writes a distinct non-zero value into v, recursing into
// arrays. The distinct values make field-order mixups visible: a swap
// of two uint64 fields during the round trip changes the comparison.
func fillValue(t *testing.T, v reflect.Value, seed uint64) {
	t.Helper()
	switch v.Kind() {
	case reflect.Uint64, reflect.Uint32, reflect.Uint16, reflect.Uint8, reflect.Uint:
		v.SetUint(seed)
	case reflect.Int64, reflect.Int32, reflect.Int16, reflect.Int8, reflect.Int:
		v.SetInt(int64(seed))
	case reflect.Float64, reflect.Float32:
		v.SetFloat(float64(seed) + 0.5)
	case reflect.Bool:
		v.SetBool(true)
	case reflect.String:
		v.SetString("s" + string(rune('0'+seed%10)))
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillValue(t, v.Index(i), seed*100+uint64(i)+1)
		}
	default:
		t.Fatalf("Stats grew a %v field; extend fillValue so the JSON round-trip test still covers every field", v.Kind())
	}
}

// TestStatsJSONRoundTrip is reflection-complete: every present and
// future field of Stats must survive JSON encode/decode unchanged. The
// persistent result store (internal/store) serializes Stats this way,
// so a field that cannot round-trip — unexported, shadowed by a
// duplicate tag, or of an unsupported kind — would silently corrupt
// stored results; this test turns that into a build-time failure.
func TestStatsJSONRoundTrip(t *testing.T) {
	var st Stats
	v := reflect.ValueOf(&st).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if f.PkgPath != "" {
			t.Fatalf("Stats field %s is unexported and would be dropped by the result store's JSON encoding", f.Name)
		}
		fillValue(t, v.Field(i), uint64(i)+1)
	}

	data, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict decode (the store's read path): %v", err)
	}
	if back != st {
		bv := reflect.ValueOf(back)
		for i := 0; i < tp.NumField(); i++ {
			if !reflect.DeepEqual(v.Field(i).Interface(), bv.Field(i).Interface()) {
				t.Errorf("field %s: sent %v, got back %v", tp.Field(i).Name, v.Field(i), bv.Field(i))
			}
		}
		t.Fatal("Stats did not survive the JSON round trip")
	}
}
