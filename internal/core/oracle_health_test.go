package core

import (
	"testing"

	"dmp/internal/profile"
	"dmp/internal/workload"
)

// TestOracleLockstepHealthy runs every workload under enhanced DMP and
// checks the fetch oracle ends the run in lockstep with every pause
// matched by a resume. A stuck oracle silently degrades wrong-path
// classification and perfect-confidence accuracy (this regression caught
// the missing post-exit journal).
func TestOracleLockstepHealthy(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			train := w.Build(workload.BuildConfig{Seed: workload.TrainSeed, Scale: 1})
			if _, err := profile.Run(train, profile.DefaultOptions()); err != nil {
				t.Fatal(err)
			}
			ref := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: 1})
			for pc, d := range train.Diverge {
				ref.MarkDiverge(pc, d)
			}
			m, err := New(ref, EnhancedDMPConfig())
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !st.HaltRetired {
				t.Fatal("did not halt")
			}
			if st.OraclePauses > st.OracleResumes+1 {
				t.Errorf("oracle pauses %d >> resumes %d (stuck oracle)", st.OraclePauses, st.OracleResumes)
			}
			// Healthy end states: halted in fetch lockstep, or halted via
			// the retirement catch-up with its position at the retirement
			// frontier.
			if !m.oracle.em.Halted || m.oracle.em.Count != st.RetiredInsts {
				t.Errorf("oracle did not track the run to completion (onPath=%v halted=%v count=%d retired=%d pc=%d)",
					m.oracle.onPath, m.oracle.em.Halted, m.oracle.em.Count, st.RetiredInsts, m.oracle.em.PC)
			}
		})
	}
}
