package core

import (
	"reflect"
	"strings"
	"testing"
)

// TestStatsClone pins that Clone detaches completely: mutating the clone
// (or the original) never shows through, so frozen cached results stay
// frozen.
func TestStatsClone(t *testing.T) {
	s := &Stats{Cycles: 7, RetiredInsts: 11, ExitCases: [7]uint64{1, 2, 3, 4, 5, 6, 0}}
	c := s.Clone()
	if c == s {
		t.Fatal("Clone returned the same pointer")
	}
	if *c != *s {
		t.Fatalf("Clone differs: %+v vs %+v", c, s)
	}
	c.RetiredInsts++
	c.ExitCases[2]++
	if s.RetiredInsts != 11 || s.ExitCases[2] != 3 {
		t.Errorf("mutating the clone leaked into the original: %+v", s)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := &Stats{
		Cycles:             1000,
		RetiredInsts:       2500,
		RetiredBranches:    400,
		RetiredMispredicts: 40,
		FetchedInsts:       5000,
		FetchedWrongCD:     500,
		FetchedWrongCI:     1500,
		RetiredFalse:       100,
		RetiredSelects:     30,
		RetiredMarkers:     60,
		ExecutedInsts:      3000,
		ExecutedSelects:    35,
		ExecutedMarkers:    70,
	}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := s.MispredictRate(); got != 0.1 {
		t.Errorf("MispredictRate = %v", got)
	}
	if got := s.MPKI(); got != 16 {
		t.Errorf("MPKI = %v", got)
	}
	if got := s.WrongPathFrac(); got != 0.4 {
		t.Errorf("WrongPathFrac = %v", got)
	}
	if got := s.ExecutedTotal(); got != 3105 {
		t.Errorf("ExecutedTotal = %v", got)
	}
	if got := s.CommittedWork(); got != 2690 {
		t.Errorf("CommittedWork = %v", got)
	}
	str := s.String()
	for _, want := range []string{"IPC=2.500", "misp=40", "fetched=5000"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q:\n%s", want, str)
		}
	}
}

// fillStats sets every numeric field of s to a distinct value derived
// from mul (via reflection, so new Stats fields are covered
// automatically).
func fillStats(s *Stats, mul uint64) {
	v := reflect.ValueOf(s).Elem()
	n := uint64(0)
	var set func(f reflect.Value)
	set = func(f reflect.Value) {
		switch f.Kind() {
		case reflect.Uint64:
			n++
			f.SetUint(n * mul)
		case reflect.Float64:
			n++
			f.SetFloat(float64(n * mul))
		case reflect.Array:
			for i := 0; i < f.Len(); i++ {
				set(f.Index(i))
			}
		case reflect.Bool:
			f.SetBool(true)
		}
	}
	for i := 0; i < v.NumField(); i++ {
		set(v.Field(i))
	}
}

// TestStatsDelta pins that Delta subtracts *every* counter field: the
// reflection walk fails if a newly added Stats field is forgotten in
// Delta (its delta would be 0 where cur-prev is not).
func TestStatsDelta(t *testing.T) {
	var prev, cur Stats
	fillStats(&prev, 1)
	fillStats(&cur, 3)
	d := cur.Delta(&prev)

	dv := reflect.ValueOf(d)
	pv := reflect.ValueOf(prev)
	cv := reflect.ValueOf(cur)
	typ := dv.Type()
	var check func(name string, d, p, c reflect.Value)
	check = func(name string, d, p, c reflect.Value) {
		switch d.Kind() {
		case reflect.Uint64:
			if got, want := d.Uint(), c.Uint()-p.Uint(); got != want {
				t.Errorf("Delta.%s = %d, want %d (field not subtracted?)", name, got, want)
			}
		case reflect.Float64:
			if got, want := d.Float(), c.Float()-p.Float(); got != want {
				t.Errorf("Delta.%s = %v, want %v", name, got, want)
			}
		case reflect.Array:
			for i := 0; i < d.Len(); i++ {
				check(name, d.Index(i), p.Index(i), c.Index(i))
			}
		case reflect.Bool:
			if d.Bool() != c.Bool() {
				t.Errorf("Delta.%s = %v, want copied from cur", name, d.Bool())
			}
		}
	}
	for i := 0; i < dv.NumField(); i++ {
		check(typ.Field(i).Name, dv.Field(i), pv.Field(i), cv.Field(i))
	}

	// Summing deltas reconstructs the endpoint: prev + d == cur for the
	// headline counters the interval sampler accumulates.
	if prev.Cycles+d.Cycles != cur.Cycles || prev.RetiredInsts+d.RetiredInsts != cur.RetiredInsts {
		t.Error("prev + Delta does not reconstruct cur")
	}
	if d2 := cur.Delta(&cur); d2.Cycles != 0 || d2.RetiredInsts != 0 || d2.ExitCases != ([7]uint64{}) {
		t.Errorf("self-delta not zero: %+v", d2)
	}
}

// TestStatsAdd pins that Add sums *every* counter field: the reflection
// walk fails if a newly added Stats field is forgotten in Add (its sum
// would be 0 where a+b is not), so extrapolation can never silently drop
// a counter.
func TestStatsAdd(t *testing.T) {
	var a, b Stats
	fillStats(&a, 1)
	fillStats(&b, 3)
	sum := a.Add(&b)

	sv := reflect.ValueOf(sum)
	av := reflect.ValueOf(a)
	bv := reflect.ValueOf(b)
	typ := sv.Type()
	var check func(name string, s, a, b reflect.Value)
	check = func(name string, s, a, b reflect.Value) {
		switch s.Kind() {
		case reflect.Uint64:
			if got, want := s.Uint(), a.Uint()+b.Uint(); got != want {
				t.Errorf("Add.%s = %d, want %d (field not summed?)", name, got, want)
			}
		case reflect.Float64:
			if got, want := s.Float(), a.Float()+b.Float(); got != want {
				t.Errorf("Add.%s = %v, want %v", name, got, want)
			}
		case reflect.Array:
			for i := 0; i < s.Len(); i++ {
				check(name, s.Index(i), a.Index(i), b.Index(i))
			}
		case reflect.Bool:
			if s.Bool() != (a.Bool() || b.Bool()) {
				t.Errorf("Add.%s = %v, want OR of inputs", name, s.Bool())
			}
		}
	}
	for i := 0; i < sv.NumField(); i++ {
		check(typ.Field(i).Name, sv.Field(i), av.Field(i), bv.Field(i))
	}

	// Adding a zero value is the identity; HaltRetired ORs.
	var zero Stats
	if a.Add(&zero) != a {
		t.Error("Add of zero Stats is not the identity")
	}
	halted := Stats{HaltRetired: true}
	if !zero.Add(&halted).HaltRetired {
		t.Error("Add did not OR HaltRetired")
	}
}

// TestStatsScale pins that Scale multiplies *every* counter field
// (integer counters round half up), so extrapolating sampled stats can
// never silently zero a counter added later.
func TestStatsScale(t *testing.T) {
	var s Stats
	fillStats(&s, 3)
	const f = 2.5
	sc := s.Scale(f)

	cv := reflect.ValueOf(sc)
	ov := reflect.ValueOf(s)
	typ := cv.Type()
	var check func(name string, c, o reflect.Value)
	check = func(name string, c, o reflect.Value) {
		switch c.Kind() {
		case reflect.Uint64:
			want := uint64(float64(o.Uint())*f + 0.5)
			if got := c.Uint(); got != want {
				t.Errorf("Scale.%s = %d, want %d (field not scaled?)", name, got, want)
			}
		case reflect.Float64:
			if got, want := c.Float(), o.Float()*f; got != want {
				t.Errorf("Scale.%s = %v, want %v", name, got, want)
			}
		case reflect.Array:
			for i := 0; i < c.Len(); i++ {
				check(name, c.Index(i), o.Index(i))
			}
		case reflect.Bool:
			if c.Bool() != o.Bool() {
				t.Errorf("Scale.%s = %v, want copied", name, c.Bool())
			}
		}
	}
	for i := 0; i < cv.NumField(); i++ {
		check(typ.Field(i).Name, cv.Field(i), ov.Field(i))
	}

	// Scaling by 1 is the identity, and derived ratios are preserved
	// under scaling (the property extrapolated IPC depends on).
	if s.Scale(1) != s {
		t.Error("Scale(1) is not the identity")
	}
	r := Stats{Cycles: 1000, RetiredInsts: 2500}
	r4 := r.Scale(4)
	if r4.IPC() != r.IPC() {
		t.Errorf("IPC not preserved under scaling: %v vs %v", r4.IPC(), r.IPC())
	}
}

// TestStatsStringRounding pins half-away-from-zero percentage rounding:
// 1 mispredict in 800 branches is exactly 0.125%, which %.2f alone would
// render "0.12" (half-to-even).
func TestStatsStringRounding(t *testing.T) {
	s := &Stats{RetiredBranches: 800, RetiredMispredicts: 1}
	if str := s.String(); !strings.Contains(str, "(0.13%)") {
		t.Errorf("String() = %q, want misprediction rate rounded to 0.13%%", str)
	}
	s2 := &Stats{RetiredBranches: 400, RetiredMispredicts: 40}
	if str := s2.String(); !strings.Contains(str, "(10.00%)") {
		t.Errorf("String() = %q, want 10.00%%", str)
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.MispredictRate() != 0 || s.MPKI() != 0 || s.WrongPathFrac() != 0 {
		t.Error("zero stats produced non-zero derived metrics")
	}
}

func TestFrontEndDelayTracksDepth(t *testing.T) {
	for _, tt := range []struct{ depth, want int }{
		{30, 25}, {20, 15}, {10, 5}, {5, 0},
	} {
		c := DefaultConfig()
		c.PipelineDepth = tt.depth
		if got := c.frontEndDelay(); got != tt.want {
			t.Errorf("depth %d: delay %d, want %d", tt.depth, got, tt.want)
		}
	}
}

func TestDefaultConfigsAreValid(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default":  DefaultConfig(),
		"dmp":      DMPConfig(),
		"enhanced": EnhancedDMPConfig(),
		"dhp":      DHPConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", name, err)
		}
	}
	e := EnhancedDMPConfig()
	if !e.MultipleCFM || !e.EarlyExit || !e.MultipleDiverge {
		t.Error("enhanced config missing an enhancement")
	}
	if DHPConfig().Mode != ModeDHP || DMPConfig().Mode != ModeDMP {
		t.Error("mode constructors wrong")
	}
}

// The deeper the pipeline, the lower the baseline IPC on mispredict-heavy
// code (the penalty model works end to end).
func TestDepthHurtsBaseline(t *testing.T) {
	var last float64 = 1e9
	for _, depth := range []int{5, 15, 30, 45} {
		p, _ := randomHammockProg(800)
		cfg := DefaultConfig()
		cfg.PipelineDepth = depth
		st := runBoth(t, p, cfg)
		if st.IPC() >= last {
			t.Errorf("depth %d IPC %.3f did not drop (prev %.3f)", depth, st.IPC(), last)
		}
		last = st.IPC()
	}
}

// KeepAlternateGHR (the paper's footnote-7 policy) must still produce a
// correct machine; its performance effect is measured by the ablation
// bench.
func TestKeepAlternateGHRCorrect(t *testing.T) {
	p, _ := randomHammockProg(1500)
	profiled(t, p)
	cfg := EnhancedDMPConfig()
	cfg.KeepAlternateGHR = true
	runBoth(t, p, cfg)
}

// The wrong-path classifier: drive the wpEpisode machinery directly.
func TestWPClassifier(t *testing.T) {
	m := &Machine{}
	m.openWP()
	for _, pc := range []uint64{10, 11, 12, 20, 21, 22} {
		m.recordWrongFetch(pc)
	}
	m.closeWP()
	// Correct path passes through pc 20: wrong-path fetches from index 3
	// (the first occurrence of 20) onward are control-independent.
	m.feedWPWatchers(5)
	m.feedWPWatchers(20)
	m.flushWPAll()
	if m.Stats.FetchedWrongCD != 3 || m.Stats.FetchedWrongCI != 3 {
		t.Errorf("CD=%d CI=%d, want 3/3", m.Stats.FetchedWrongCD, m.Stats.FetchedWrongCI)
	}
}

func TestWPClassifierNoReconvergence(t *testing.T) {
	m := &Machine{}
	m.openWP()
	for _, pc := range []uint64{10, 11, 12} {
		m.recordWrongFetch(pc)
	}
	m.closeWP()
	// Correct path never revisits those PCs within the watch window.
	for pc := uint64(100); pc < 700; pc++ {
		m.feedWPWatchers(pc)
	}
	m.flushWPAll()
	if m.Stats.FetchedWrongCD != 3 || m.Stats.FetchedWrongCI != 0 {
		t.Errorf("CD=%d CI=%d, want 3/0", m.Stats.FetchedWrongCD, m.Stats.FetchedWrongCI)
	}
}

func TestWPClassifierUnfinishedEpisode(t *testing.T) {
	m := &Machine{}
	m.openWP()
	m.recordWrongFetch(1)
	m.recordWrongFetch(2)
	// Run ends before the oracle resumes: counted as control-dependent.
	m.flushWPAll()
	if m.Stats.FetchedWrongCD != 2 {
		t.Errorf("CD=%d, want 2", m.Stats.FetchedWrongCD)
	}
	// flushWPAll is safe to call twice.
	m.flushWPAll()
	if m.Stats.FetchedWrongCD != 2 {
		t.Error("double flushWPAll double-counted")
	}
}

// SelectiveBPUpdate must not train the predictor on predicated diverge
// branches: on a 50/50 hammock the predictor's counters stay unbiased,
// which we can only observe indirectly — the run must stay correct and
// still absorb mispredictions.
func TestSelectiveBPUpdateStillAbsorbs(t *testing.T) {
	p, _ := randomHammockProg(1500)
	profiled(t, p)
	cfg := EnhancedDMPConfig()
	cfg.SelectiveBPUpdate = true
	cfg.ConfidenceName = "perfect"
	st := runBoth(t, p, cfg)
	if st.ExitCases[Exit2] == 0 {
		t.Error("no absorbed mispredictions under SelectiveBPUpdate")
	}
}
