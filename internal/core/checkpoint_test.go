package core

import (
	"testing"
)

// segCfg is the enhanced DMP machine with the golden-model checker on:
// every retired instruction in these tests is validated against the
// functional emulator, so a stitched or transplanted run that diverges
// architecturally fails loudly instead of producing plausible stats.
func segCfg() Config {
	cfg := EnhancedDMPConfig()
	cfg.CheckRetirement = true
	return cfg
}

// TestRunUntilSegmentsMatchRun pins the measurement primitive under the
// sampler: driving a machine with a sequence of RunUntil targets and
// Finish produces exactly the Stats of an uninterrupted Run (modulo wall
// clock). Without this, interval Stats.Delta windows would not compose.
func TestRunUntilSegmentsMatchRun(t *testing.T) {
	p := profiled(t, mustProg(randomHammockProg(800)))

	m, err := New(p, segCfg())
	if err != nil {
		t.Fatal(err)
	}
	whole, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	m2, err := New(p, segCfg())
	if err != nil {
		t.Fatal(err)
	}
	var seg *Stats
	for _, target := range []uint64{1, 500, 501, 2000, 7000, 1 << 40} {
		if seg, err = m2.RunUntil(target); err != nil {
			t.Fatalf("RunUntil(%d): %v", target, err)
		}
	}
	if !seg.HaltRetired {
		// Targets beyond the program end: the last RunUntil runs to halt.
		t.Fatal("segmented run did not reach halt")
	}
	if seg, err = m2.Finish(); err != nil {
		t.Fatal(err)
	}
	a, b := *whole, *seg
	a.WallSeconds, b.WallSeconds = 0, 0
	if a != b {
		t.Errorf("segmented stats differ from whole-run stats:\n%+v\n%+v", a, b)
	}
}

// TestCheckpointWarmStitchedRun pins the sampler's seeding path: warm a
// program functionally to a midpoint, transplant the checkpoint plus the
// warmed state into a fresh machine, and run the remainder under the
// golden-model checker. The checker validates every retired instruction
// against an emulator re-seeded at the same checkpoint.
func TestCheckpointWarmStitchedRun(t *testing.T) {
	p := profiled(t, mustProg(randomHammockProg(800)))
	cfg := segCfg()

	w, err := NewWarmer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WarmTo(3000); err != nil {
		t.Fatal(err)
	}
	if w.Halted() {
		t.Fatal("program too short for midpoint checkpoint")
	}
	m, err := NewFromCheckpointWarm(p, cfg, w.Checkpoint(), w.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("stitched run failed retirement checking: %v", err)
	}
	if !st.HaltRetired {
		t.Fatal("stitched run did not retire HALT")
	}

	// The stitched remainder plus the warmed prefix covers the program:
	// architectural instruction count must match an exact run's.
	exact, err := New(p, segCfg())
	if err != nil {
		t.Fatal(err)
	}
	es, err := exact.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.Count()+st.RetiredInsts, es.RetiredInsts; got != want {
		t.Errorf("warmed %d + stitched %d = %d retired, exact run %d",
			w.Count(), st.RetiredInsts, got, want)
	}
}

// TestSnapshotIsolatesWarmState pins that Warmer.Snapshot is a deep copy:
// a machine seeded from a snapshot must behave identically whether or not
// the warmer kept training afterwards. The sampler relies on this — it
// snapshots at each checkpoint and keeps warming to the next.
func TestSnapshotIsolatesWarmState(t *testing.T) {
	p := profiled(t, mustProg(randomHammockProg(800)))
	cfg := segCfg()

	run := func(keepWarming bool) Stats {
		w, err := NewWarmer(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WarmTo(3000); err != nil {
			t.Fatal(err)
		}
		ck, ws := w.Checkpoint(), w.Snapshot()
		if keepWarming {
			if err := w.WarmTo(6000); err != nil {
				t.Fatal(err)
			}
		}
		m, err := NewFromCheckpointWarm(p, cfg, ck, ws)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.RunUntil(2000)
		if err != nil {
			t.Fatal(err)
		}
		snap := *st
		if _, err := m.Finish(); err != nil {
			t.Fatal(err)
		}
		snap.WallSeconds = 0
		return snap
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("continued warming leaked into an earlier snapshot:\n%+v\n%+v", a, b)
	}
}

// TestFunctionalWarmAdvancesTransplant pins the per-interval warmup path:
// FunctionalWarm after a warm transplant advances architectural state in
// place, and the subsequent detailed run still passes the checker.
func TestFunctionalWarmAdvancesTransplant(t *testing.T) {
	p := profiled(t, mustProg(randomHammockProg(800)))
	cfg := segCfg()

	w, err := NewWarmer(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WarmTo(2000); err != nil {
		t.Fatal(err)
	}
	m, err := NewFromCheckpointWarm(p, cfg, w.Checkpoint(), w.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	warmed, err := m.FunctionalWarm(500)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 500 {
		t.Fatalf("warmed %d instructions, want 500", warmed)
	}
	st, err := m.RunUntil(1000)
	if err != nil {
		t.Fatalf("post-warm run failed retirement checking: %v", err)
	}
	if st.RetiredInsts < 1000 {
		t.Errorf("retired %d, want >= 1000", st.RetiredInsts)
	}
	if _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
}
