package core

import (
	"fmt"

	"dmp/internal/emu"
	"dmp/internal/prog"
)

// NewFromCheckpoint builds a machine for p under cfg whose architectural
// state starts at the emulator checkpoint ck instead of the program
// entry: committed registers and data memory are transplanted, fetch
// starts at the checkpoint PC, and the fetch oracle and golden-model
// checker are re-seeded at the same point (so a stitched mid-program run
// is still validated instruction-by-instruction against the functional
// emulator). The checkpoint's memory is cloned — one checkpoint can seed
// any number of machines. Microarchitectural state (predictors, caches,
// merge table) starts cold; use FunctionalWarm before Run/RunUntil to
// train it.
func NewFromCheckpoint(p *prog.Program, cfg Config, ck emu.Checkpoint) (*Machine, error) {
	m, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	m.transplant(ck)
	return m, nil
}

// NewFromCheckpointWarm is NewFromCheckpoint with the learned state
// transplanted too: the machine starts at ck with ws's trained caches,
// predictors, and merge table instead of cold ones, taking ownership of
// ws (pass Warmer.Snapshot results, one per machine). This is the
// sampled-simulation seeding path, and it skips the cold-component
// construction New would throw away — per-interval setup matters when a
// sampled run builds dozens of short-lived machines.
func NewFromCheckpointWarm(p *prog.Program, cfg Config, ck emu.Checkpoint, ws *WarmState) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := newWith(p, cfg, ws)
	m.transplant(ck)
	return m, nil
}

// transplant installs the checkpoint's architectural state: committed
// registers and data memory (cloned — one checkpoint can seed any number
// of machines), fetch restarting at the checkpoint PC, the register
// alias table re-rooted at the committed values, and the fetch oracle
// and golden-model checker re-seeded at the same point.
func (m *Machine) transplant(ck emu.Checkpoint) {
	m.commitRegs = ck.Regs
	m.dmem = ck.Mem.Clone()
	m.fetchPC = ck.PC
	m.fetchHalted = ck.Halted
	m.halted = ck.Halted
	for r := range m.rat.e {
		m.rat.e[r] = ratEntry{val: m.commitRegs[r]}
	}
	m.seedEmus()
}

// seedEmus (re)builds the fetch oracle and the golden-model checker at
// the machine's current committed state. Their instruction counts start
// at zero: the retirement-resync logic compares the oracle's Count
// against the machine's own retired count, which also starts at zero on
// a transplanted machine.
func (m *Machine) seedEmus() {
	// The transient Checkpoint aliases m.dmem; emu.NewFromCheckpoint
	// clones it, so the oracle and checker each own their memory and
	// speculative oracle stores never leak into committed state.
	ck := emu.Checkpoint{Regs: m.commitRegs, Mem: m.dmem, PC: m.fetchPC, Count: 0, Halted: m.fetchHalted}
	m.oracle = newFetchOracleFrom(emu.NewFromCheckpoint(m.prog, ck))
	if m.cfg.CheckRetirement {
		m.checker = emu.NewFromCheckpoint(m.prog, ck)
	}
}

// FunctionalWarm advances the machine's architectural state by n program
// instructions of pure functional emulation, training the branch
// predictor, confidence estimator, BTB, return address stack, indirect
// target cache, cache hierarchy, and (when attached) the merge-point
// predictor exactly as retirement would (WarmState.observe) — but with
// no cycle accounting and no Stats movement. Sampled simulation seeds
// the long-lived learned state via NewFromCheckpointWarm; this per-interval
// window is an optional extra that re-trains the short-history state on
// the instructions immediately preceding the measured window.
//
// Must be called before Run/RunUntil. Returns the number of instructions
// actually warmed — short only if the program halts inside the window,
// in which case the machine is left halted and a subsequent Run retires
// nothing.
func (m *Machine) FunctionalWarm(n uint64) (uint64, error) {
	if m.started {
		return 0, fmt.Errorf("core: FunctionalWarm after Run started")
	}
	// The warm emulator writes committed registers and memory in place:
	// its execution *is* the architectural run of the warmed region. The
	// WarmState is a view over the machine's own components.
	we := &emu.Emulator{Prog: m.prog, Regs: m.commitRegs, Mem: m.dmem, PC: m.fetchPC, Halted: m.fetchHalted}
	ws := WarmState{hier: m.hier, pred: m.pred, confEst: m.confEst, btb: m.btb, ras: m.ras,
		itc: m.itc, merge: m.merge, ghr: m.fetchGHR, perfectConf: m.cfg.ConfidenceName == "perfect"}
	var warmed uint64
	for warmed < n && !we.Halted {
		pc := we.PC
		st, err := we.Step()
		if err != nil {
			return warmed, fmt.Errorf("core: functional warm at pc %d: %w", pc, err)
		}
		warmed++
		ws.observe(we, pc, st)
	}
	ghr := ws.ghr
	m.commitRegs = we.Regs
	m.fetchPC = we.PC
	m.fetchGHR = ghr
	m.fetchHalted = we.Halted
	m.halted = we.Halted
	for r := range m.rat.e {
		m.rat.e[r] = ratEntry{val: m.commitRegs[r]}
	}
	m.seedEmus()
	return warmed, nil
}
