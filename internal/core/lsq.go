package core

// sbEntry is one store-buffer slot. The store buffer holds stores in
// program order from rename until retirement; dynamically predicated
// stores carry their predicate register id and are not released to the
// memory system until the predicate resolves TRUE (Section 2.5).
type sbEntry struct {
	u     *uop
	alive bool
}

func (m *Machine) sbFull() bool { return len(m.sb) >= m.cfg.StoreBufferSize }

func (m *Machine) sbAlloc(u *uop) {
	m.sb = append(m.sb, &sbEntry{u: u, alive: true})
}

// sbSquash kills store-buffer entries younger than seq (pipeline flush).
func (m *Machine) sbSquash(seq uint64) {
	kept := m.sb[:0]
	for _, e := range m.sb {
		if e.u.seq > seq {
			e.alive = false
			continue
		}
		kept = append(kept, e)
	}
	m.sb = kept
}

// sbRetireHead removes the oldest live store-buffer entry, which must be
// the store u (stores retire in program order).
func (m *Machine) sbRetireHead(u *uop) bool {
	for i, e := range m.sb {
		if !e.alive {
			continue
		}
		if e.u != u {
			return false
		}
		e.alive = false
		m.sb = append(m.sb[:i], m.sb[i+1:]...)
		return true
	}
	return false
}

// loadLookup implements the store-to-load forwarding rules of Section
// 2.5. Scanning from the youngest store older than the load:
//
//  1. a non-predicated store (or one whose predicate is known TRUE) with
//     a matching address forwards its value;
//  2. a store whose predicate is known FALSE is transparent;
//  3. a predicated store with an unresolved predicate forwards only to a
//     load with the same predicate id (same dynamically predicated
//     path); a load on a different path must wait;
//  4. a store whose address is not yet computed blocks the load
//     (conservative memory disambiguation).
//
// It returns the value, whether it came from the store buffer, and
// whether the load must stall and retry.
//
//dmp:hotpath
func (m *Machine) loadLookup(ld *uop) (val uint64, fromSB, stall bool) {
	for i := len(m.sb) - 1; i >= 0; i-- {
		e := m.sb[i]
		su := e.u
		if !e.alive || su.squashed || su.seq >= ld.seq {
			continue
		}
		// Dead-path stores are transparent even before their address is
		// known: they will never reach memory.
		if su.predID != 0 && m.preds.known(su.predID) && !m.preds.value(su.predID) {
			continue
		}
		if !su.addrValid {
			if m.probe != nil && !ld.inReplay {
				m.probeMemBlock(ld, su)
			}
			return 0, false, true // rule 4
		}
		if su.addr&^7 != ld.addr&^7 {
			continue
		}
		if su.predID == 0 || (m.preds.known(su.predID) && m.preds.value(su.predID)) {
			return su.dstVal, true, false // rules 1 and 2
		}
		if su.predID == ld.predID {
			return su.dstVal, true, false // rule 3: same predicated path
		}
		if m.probe != nil && !ld.inReplay {
			m.probeMemBlock(ld, su)
		}
		return 0, false, true // rule 3: cross-path, wait for the predicate
	}
	return m.dmem.Read(ld.addr), false, false
}
