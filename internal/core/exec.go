package core

import (
	"fmt"

	"dmp/internal/isa"
)

// issueStage selects ready uops oldest-first, up to IssueWidth per cycle
// with LoadPorts data-cache ports, executes them with real data values,
// and schedules their completion.
//
//dmp:hotpath
func (m *Machine) issueStage() {
	width := m.cfg.IssueWidth
	loadPorts := m.cfg.LoadPorts

	// Stalled loads retry before newly ready work (they are older). The
	// replay list is kept seq-ordered at insertion (tryIssueLoad), so no
	// per-cycle sort is needed.
	if len(m.replayLoads) > 0 {
		still := m.replayLoads[:0]
		for _, ld := range m.replayLoads {
			if ld.squashed || ld.done {
				continue
			}
			if width <= 0 || loadPorts <= 0 {
				still = append(still, ld)
				continue
			}
			if m.tryIssueLoad(ld) {
				width--
				loadPorts--
			} else {
				still = append(still, ld)
			}
		}
		m.replayLoads = still
	}

	if len(m.readyQ) == 0 || width <= 0 {
		return
	}
	rest := m.readyQ[:0]
	for _, u := range m.readyQ {
		if u.squashed || u.issued {
			continue
		}
		if width <= 0 {
			rest = append(rest, u)
			continue
		}
		if u.isLoad {
			if loadPorts <= 0 {
				rest = append(rest, u)
				continue
			}
			u.inReady = false
			if m.tryIssueLoad(u) {
				width--
				loadPorts--
			}
			continue
		}
		u.inReady = false
		m.execute(u)
		width--
	}
	m.readyQ = rest
}

// tryIssueLoad computes the load address, consults the store buffer, and
// either issues the load or parks it for replay. Returns whether it
// issued.
//
//dmp:hotpath
func (m *Machine) tryIssueLoad(ld *uop) bool {
	ld.addr = ld.src1.val + uint64(ld.inst.Imm)
	ld.addrValid = true
	val, fromSB, stall := m.loadLookup(ld)
	if stall {
		if !ld.inReplay {
			ld.inReplay = true
			m.replayLoads = insertBySeq(m.replayLoads, ld)
			m.Stats.LoadStalls++
		}
		return false
	}
	ld.inReplay = false
	ld.issued = true
	ld.dstVal = val
	lat := 1
	if !fromSB {
		lat = m.hier.DataLatency(ld.addr)
		if lat > 2 {
			m.Stats.L1DMisses++
		}
	}
	m.Stats.ExecutedInsts++
	m.schedule(ld, m.cycle+uint64(lat))
	if m.probe != nil {
		m.probeUop(StageIssue, ld)
	}
	return true
}

// execute computes a non-load uop's result immediately and schedules its
// completion after its latency.
//
//dmp:hotpath
func (m *Machine) execute(u *uop) {
	u.issued = true
	if m.probe != nil {
		m.probeUop(StageIssue, u)
	}
	lat := 1
	switch u.kind {
	case kindSelect:
		// The predicate is known (issue is gated on it): mux the two
		// paths' values (Section 2.4).
		if m.preds.value(u.selPred) {
			u.dstVal = u.src1.val
		} else {
			u.dstVal = u.src3.val
		}
		m.Stats.ExecutedSelects++
	case kindInst:
		in := u.inst
		lat = in.Latency()
		switch {
		case in.IsALU():
			u.dstVal = isa.EvalALU(in, u.src1.val, u.src2.val)
		case in.Op == isa.ST:
			u.addr = u.src1.val + uint64(in.Imm)
			u.addrValid = true
			u.dstVal = u.src2.val
		case in.Op == isa.BR:
			u.actualTaken = in.Cond.Eval(u.src1.val, u.src2.val)
			if u.actualTaken {
				u.actualNext = in.Target
			} else {
				u.actualNext = u.pc + 1
			}
		case in.Op == isa.JMP:
			u.actualNext = in.Target
		case in.Op == isa.CALL:
			u.dstVal = u.pc + 1
			u.actualNext = in.Target
		case in.Op == isa.CALLR:
			u.dstVal = u.pc + 1
			u.actualNext = u.src1.val
		case in.Op == isa.JR, in.Op == isa.RET:
			u.actualNext = u.src1.val
		case in.Op == isa.HALT, in.Op == isa.NOP:
			u.actualNext = u.pc
		}
		m.Stats.ExecutedInsts++
	default:
		// Markers are completed at rename and never issue.
		panic("core: executing a marker uop")
	}
	m.schedule(u, m.cycle+uint64(lat))
}

// completeStage drains completion events due this cycle: values
// broadcast to waiting consumers, control instructions resolve (possibly
// flushing the pipeline or ending a dynamic predication episode).
//
//dmp:hotpath
func (m *Machine) completeStage() {
	for len(m.events) > 0 && m.events[0].at <= m.cycle {
		u := m.events.pop().u
		if u.squashed {
			// This event was the uop's last remaining reference (the flush
			// purged every other structure; see reclaimSquashed).
			m.recycleSquashed(u)
			continue
		}
		u.done = true
		if m.probe != nil {
			m.probeUop(StageComplete, u)
		}
		// Value broadcast.
		for _, w := range u.waiters {
			if w.u.squashed {
				continue
			}
			switch w.which {
			case 1:
				w.u.src1 = operand{ready: true, val: u.dstVal}
			case 2:
				w.u.src2 = operand{ready: true, val: u.dstVal}
			case 3:
				w.u.src3 = operand{ready: true, val: u.dstVal}
			}
			m.enqueueReady(w.u)
		}
		u.waiters = nil
		if u.kind == kindInst && u.inst.IsControl() && u.inst.Op != isa.HALT {
			m.resolveControl(u)
		}
	}
}

// resolveControl handles branch resolution: misprediction recovery,
// predicate production for diverge branches, and the Table-1 exit cases.
func (m *Machine) resolveControl(u *uop) {
	u.resolved = true
	if m.traceWP != nil && u.inst.Op == isa.BR {
		m.traceWP(fmt.Sprintf("resolve pc=%d seq=%d misp=%v pred=%d known=%v val=%v div=%v conv=%v",
			u.pc, u.seq, u.actualNext != u.predictedNext, u.predID,
			m.preds.known(u.predID), m.preds.value(u.predID), u.isDiverge, u.dpConverted))
	}
	switch u.inst.Op {
	case isa.JMP, isa.CALL:
		return // direct targets never mispredict
	}
	u.mispredicted = u.actualNext != u.predictedNext

	// A resolved branch on a known-FALSE predicated path is a NOP: it
	// must not redirect the machine (Section 2.5).
	if u.predID != 0 && m.preds.known(u.predID) && !m.preds.value(u.predID) {
		return
	}

	if u.isDiverge && !u.dpConverted {
		if ep := u.ep; ep != nil && ep.phase != dpDead {
			if ep.dual {
				m.resolveFork(u, ep)
			} else {
				m.resolveDiverge(u, ep)
			}
			return
		}
	}
	if u.mispredicted {
		if m.dualEp != nil && u.seq > m.dualEp.divergeU.seq {
			m.conservativeDualAbort(u, m.dualEp)
			return
		}
		m.recoverFrom(u)
	}
}

// resolveDiverge implements Table 1: the six ways a dynamic predication
// episode ends when its diverge branch resolves.
func (m *Machine) resolveDiverge(u *uop, ep *episode) {
	correct := !u.mispredicted
	p1 := u.actualTaken == ep.predictedTaken // predicted-path predicate value

	switch ep.phase {
	case dpExited:
		// Cases 1 and 2: both paths fetched, select-uops inserted (or in
		// flight). Just produce the predicates; no fetch action. Case 2
		// is the win: a misprediction without a flush.
		m.wakePred(m.preds.broadcast(ep.predID1, p1))
		if ep.predID2 != 0 {
			m.wakePred(m.preds.broadcast(ep.predID2, !p1))
		}
		if correct {
			m.setExit(ep, Exit1)
		} else {
			m.setExit(ep, Exit2)
		}
		m.teardownEpisode(ep)

	case dpAlternate:
		if correct {
			// Case 3: the alternate path is the wrong path and fetch is
			// still on it. Restore the predicted path's end state and
			// refetch from the CFM point; no flush (the alternate
			// instructions become NOPs via their FALSE predicate).
			m.wakePred(m.preds.broadcast(ep.predID1, true))
			if ep.predID2 != 0 {
				m.wakePred(m.preds.broadcast(ep.predID2, false))
			}
			m.dropEpisodeAltFromFEQ(ep)
			if ep.cp2 != nil {
				m.rat = *ep.cp2
			}
			m.fetchPC = ep.cfm
			m.fetchGHR = ep.ghrAtCFM
			m.ras.Restore(ep.rasAtCFM)
			m.fetchHalted = false
			m.fetchStallUntil = 0
			m.setExit(ep, Exit3)
			m.teardownEpisode(ep)
			if u.onPath && m.oracle.resumeAt(m.fetchPC) {
				m.closeWP()
			}
		} else {
			// Case 4: fetch is on the alternate path, which is the
			// correct path. No special action: predication simply ends
			// and fetch continues past the CFM point without select-uops
			// (the predicted path's renames were already superseded when
			// CP1 was restored).
			m.wakePred(m.preds.broadcast(ep.predID1, false))
			if ep.predID2 != 0 {
				m.wakePred(m.preds.broadcast(ep.predID2, true))
			}
			m.setExit(ep, Exit4)
			m.teardownEpisode(ep)
		}

	case dpPredicted:
		if correct {
			// Case 5: still on the predicted path; predication just
			// stops and fetch continues as the baseline would.
			m.wakePred(m.preds.broadcast(ep.predID1, true))
			m.setExit(ep, Exit5)
			m.teardownEpisode(ep)
		} else {
			// Case 6: the predicted path is wrong and the alternate was
			// never fetched: flush exactly like the baseline.
			m.wakePred(m.preds.broadcast(ep.predID1, false))
			m.setExit(ep, Exit6)
			m.teardownEpisode(ep)
			m.recoverFrom(u)
		}

	default:
		// Dead episodes resolve as normal branches (conversion paths set
		// dpConverted, so this is only reachable for squashed-then-dead
		// corner states).
		if u.mispredicted {
			m.recoverFrom(u)
		}
	}
}

func (m *Machine) setExit(ep *episode, c ExitCase) {
	if ep.exitCase == ExitNone {
		ep.exitCase = c
		m.Stats.ExitCases[c]++
		if m.probe != nil {
			m.probeEpisode(EpResolve, ep)
		}
	}
}

// dropEpisodeAltFromFEQ removes the episode's not-yet-renamed
// alternate-path uops and markers from the front-end queue.
func (m *Machine) dropEpisodeAltFromFEQ(ep *episode) {
	kept := m.feq[:0]
	for _, q := range m.feq {
		if q.ep == ep && (q.onAlt || q.kind == kindEnterAlt || q.kind == kindExitPred) {
			q.squashed = true
			q.sqBy, q.sqAt, q.sqHow = ep.divergeU.seq, m.cycle, "drop-alt-feq"
			if m.probe != nil {
				m.probeUop(StageSquash, q)
			}
			m.arena.recycleFEQ(q)
			continue
		}
		kept = append(kept, q)
	}
	m.feq = kept
	if m.feEp == ep {
		m.feEp = nil
	}
}

// recoverFrom flushes the pipeline after a mispredicted branch: squash
// everything younger, restore the branch's RAT checkpoint and fetch-side
// snapshot (including dynamic predication state, paper footnote 11), and
// redirect fetch to the resolved target.
func (m *Machine) recoverFrom(b *uop) {
	m.Stats.Flushes++
	if m.traceWP != nil {
		m.traceWP(fmt.Sprintf("flush from pc=%d seq=%d onPath=%v -> %d", b.pc, b.seq, b.onPath, b.actualNext))
	}

	// Squash younger ROB entries.
	cut := len(m.rob)
	for i, u := range m.rob {
		if u.seq > b.seq {
			cut = i
			break
		}
	}
	dead := m.rob[cut:]
	for _, u := range dead {
		u.squashed = true
		u.sqBy, u.sqAt, u.sqHow = b.seq, m.cycle, "flush-rob"
		if m.probe != nil {
			m.probeUop(StageSquash, u)
		}
	}
	m.rob = m.rob[:cut]

	m.sbSquash(b.seq)

	for _, q := range m.feq {
		q.squashed = true
		q.sqBy, q.sqAt, q.sqHow = b.seq, m.cycle, "flush-feq"
		if m.probe != nil {
			m.probeUop(StageSquash, q)
		}
		// Pre-rename uops are unreferenced outside the queue; the arena
		// declines diverge branches, whose episodes (torn down just
		// below) still read divergeU.seq.
		m.arena.recycleFEQ(q)
	}
	m.feq = m.feq[:0]

	if m.selEp != nil && m.selExitSeq > b.seq {
		m.selPending = nil
		m.selEp = nil
	}

	// Kill episodes whose diverge branch was squashed.
	for _, ep := range m.episodes {
		if ep.divergeU.seq > b.seq {
			m.Stats.ExitCases[0]++
			if m.probe != nil {
				m.probeEpisode(EpSquash, ep)
			}
			m.teardownEpisode(ep)
		}
	}

	// Restore rename state.
	if b.checkpoint != nil {
		m.rat = *b.checkpoint
	}

	// Restore fetch state.
	snap := b.fetchSnap
	m.fetchPC = b.actualNext
	ghr := snap.ghr
	if b.inst.Op == isa.BR {
		ghr = ghr.SetLast(b.actualTaken)
	}
	m.fetchGHR = ghr
	m.ras.Restore(snap.ras)
	m.fetchHalted = false
	m.fetchStallUntil = 0

	// Restore dynamic predication fetch state (resume the episode if it
	// is still live and unresolved).
	m.feEp = nil
	if snap.epID != 0 {
		if ep := m.episodes[snap.epID]; ep != nil && ep == m.live && !ep.divergeU.resolved && !ep.divergeU.squashed {
			ep.phase = snap.phase
			ep.altFetched = snap.altFetched
			ep.cfmChosen = snap.cfmChosen
			ep.cfm = snap.cfm
			if ep.phase == dpPredicted {
				ep.cp2 = nil
				ep.predID2 = 0
			}
			if ep.phase == dpPredicted || ep.phase == dpAlternate {
				m.feEp = ep
			}
		}
	}

	// Dual-path: any surviving fork collapses (see dual.go).
	m.collapseDualOnFlush(b)

	// Oracle resync: if the flushed branch was itself executed by the
	// oracle, rewind the oracle to the state immediately after it — the
	// redirect target — regardless of whether the oracle is currently
	// paused there or ahead of it (it may have executed post-CFM or
	// post-fork work this flush just squashed).
	if b.oracleHasStep && m.oracle.rewindTo(b.oracleCount) {
		m.closeWP()
	}

	// With every structure that could still name a squashed uop now
	// purged or restored, return the dead uops' storage to the arena.
	m.reclaimSquashed(dead)
}
