package core

import "testing"

// TestCanonicalNormalizesDefaultNames pins that defaulted predictor and
// confidence names canonicalize to the concrete choices machine
// construction makes, so a Config written with "" and one written with
// the explicit default produce the same cache key.
func TestCanonicalNormalizesDefaultNames(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.PredictorName = ""
	b.ConfidenceName = ""
	if a.Canonical() != b.Canonical() {
		t.Errorf("defaulted names canonicalize differently:\n%+v\n%+v", a.Canonical(), b.Canonical())
	}
	if got := b.Canonical(); got.PredictorName != "perceptron" || got.ConfidenceName != "jrs" {
		t.Errorf("canonical names = %q/%q, want perceptron/jrs", got.PredictorName, got.ConfidenceName)
	}
}

// TestCanonicalFoldsPredicationKnobsForBaseline pins that the
// dynamic-predication knobs — never consulted outside an episode — fold
// away for the baseline and perfect-CBP machines, but survive for modes
// that predicate.
func TestCanonicalFoldsPredicationKnobsForBaseline(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModePerfect} {
		plain := DefaultConfig()
		plain.Mode = mode
		knobbed := plain
		knobbed.MultipleCFM = true
		knobbed.EarlyExit = true
		knobbed.MultipleDiverge = true
		knobbed.EnableLoopDiverge = true
		knobbed.SelectiveBPUpdate = true
		knobbed.KeepAlternateGHR = true
		if plain.Canonical() != knobbed.Canonical() {
			t.Errorf("%v: predication knobs not folded", mode)
		}
	}
	basic := DMPConfig()
	enhanced := EnhancedDMPConfig()
	if basic.Canonical() == enhanced.Canonical() {
		t.Error("DMP enhancements folded away — they change the simulation")
	}
	dhp := DHPConfig()
	dhpKnobbed := DHPConfig()
	dhpKnobbed.MultipleCFM = true
	if dhp.Canonical() == dhpKnobbed.Canonical() {
		t.Error("DHP MultipleCFM folded away — DHP enters episodes and reads it")
	}
}

// TestCanonicalKeepsConfidenceName pins that ConfidenceName is never
// folded: even the baseline consults the estimator on every fetched
// conditional branch (the LowConfCorrect/LowConfWrong counters differ).
func TestCanonicalKeepsConfidenceName(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.ConfidenceName = "perfect"
	if a.Canonical() == b.Canonical() {
		t.Error("ConfidenceName folded for baseline; it changes Stats")
	}
}

// TestCanonicalFoldsEarlyExitDefaultWhenOff pins that the static early
// exit threshold only matters under the EarlyExit flag.
func TestCanonicalFoldsEarlyExitDefaultWhenOff(t *testing.T) {
	a := DMPConfig()
	b := DMPConfig()
	b.EarlyExitDefault = 999
	if a.Canonical() != b.Canonical() {
		t.Error("EarlyExitDefault not folded with EarlyExit off")
	}
	a.EarlyExit = true
	b.EarlyExit = true
	if a.Canonical() == b.Canonical() {
		t.Error("EarlyExitDefault folded with EarlyExit on — it sets episode thresholds")
	}
}

// TestCanonicalFoldsCheckRetirement pins that the golden checker never
// changes results, only wall-clock: callers key it separately.
func TestCanonicalFoldsCheckRetirement(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.CheckRetirement = !a.CheckRetirement
	if a.Canonical() != b.Canonical() {
		t.Error("CheckRetirement not folded")
	}
}

// TestCanonicalIdempotent: canonicalizing twice is a no-op, so cache
// layers can canonicalize defensively without splitting keys.
func TestCanonicalIdempotent(t *testing.T) {
	for _, c := range []Config{DefaultConfig(), DMPConfig(), DHPConfig(), EnhancedDMPConfig()} {
		once := c.Canonical()
		if once != once.Canonical() {
			t.Errorf("Canonical not idempotent for %v", c.Mode)
		}
	}
}
