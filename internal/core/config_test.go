package core

import "testing"

// TestCanonicalNormalizesDefaultNames pins that defaulted predictor and
// confidence names canonicalize to the concrete choices machine
// construction makes, so a Config written with "" and one written with
// the explicit default produce the same cache key.
func TestCanonicalNormalizesDefaultNames(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.PredictorName = ""
	b.ConfidenceName = ""
	if a.Canonical() != b.Canonical() {
		t.Errorf("defaulted names canonicalize differently:\n%+v\n%+v", a.Canonical(), b.Canonical())
	}
	if got := b.Canonical(); got.PredictorName != "perceptron" || got.ConfidenceName != "jrs" {
		t.Errorf("canonical names = %q/%q, want perceptron/jrs", got.PredictorName, got.ConfidenceName)
	}
}

// TestCanonicalFoldsPredicationKnobsForBaseline pins that the
// dynamic-predication knobs — never consulted outside an episode — fold
// away for the baseline and perfect-CBP machines, but survive for modes
// that predicate.
func TestCanonicalFoldsPredicationKnobsForBaseline(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModePerfect} {
		plain := DefaultConfig()
		plain.Mode = mode
		knobbed := plain
		knobbed.MultipleCFM = true
		knobbed.EarlyExit = true
		knobbed.MultipleDiverge = true
		knobbed.EnableLoopDiverge = true
		knobbed.SelectiveBPUpdate = true
		knobbed.KeepAlternateGHR = true
		if plain.Canonical() != knobbed.Canonical() {
			t.Errorf("%v: predication knobs not folded", mode)
		}
	}
	basic := DMPConfig()
	enhanced := EnhancedDMPConfig()
	if basic.Canonical() == enhanced.Canonical() {
		t.Error("DMP enhancements folded away — they change the simulation")
	}
	dhp := DHPConfig()
	dhpKnobbed := DHPConfig()
	dhpKnobbed.MultipleCFM = true
	if dhp.Canonical() == dhpKnobbed.Canonical() {
		t.Error("DHP MultipleCFM folded away — DHP enters episodes and reads it")
	}
}

// TestCanonicalKeepsConfidenceName pins that ConfidenceName is never
// folded: even the baseline consults the estimator on every fetched
// conditional branch (the LowConfCorrect/LowConfWrong counters differ).
func TestCanonicalKeepsConfidenceName(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.ConfidenceName = "perfect"
	if a.Canonical() == b.Canonical() {
		t.Error("ConfidenceName folded for baseline; it changes Stats")
	}
}

// TestCanonicalFoldsEarlyExitDefaultWhenOff pins that the static early
// exit threshold only matters under the EarlyExit flag.
func TestCanonicalFoldsEarlyExitDefaultWhenOff(t *testing.T) {
	a := DMPConfig()
	b := DMPConfig()
	b.EarlyExitDefault = 999
	if a.Canonical() != b.Canonical() {
		t.Error("EarlyExitDefault not folded with EarlyExit off")
	}
	a.EarlyExit = true
	b.EarlyExit = true
	if a.Canonical() == b.Canonical() {
		t.Error("EarlyExitDefault folded with EarlyExit on — it sets episode thresholds")
	}
}

// TestCanonicalFoldsCheckRetirement pins that the golden checker never
// changes results, only wall-clock: callers key it separately.
func TestCanonicalFoldsCheckRetirement(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.CheckRetirement = !a.CheckRetirement
	if a.Canonical() != b.Canonical() {
		t.Error("CheckRetirement not folded")
	}
}

// TestCanonicalIdempotent: canonicalizing twice is a no-op, so cache
// layers can canonicalize defensively without splitting keys.
func TestCanonicalIdempotent(t *testing.T) {
	for _, c := range []Config{DefaultConfig(), DMPConfig(), DHPConfig(), EnhancedDMPConfig()} {
		once := c.Canonical()
		if once != once.Canonical() {
			t.Errorf("Canonical not idempotent for %v", c.Mode)
		}
	}
}

// TestCanonicalMergeKnobs pins the merge-predictor folding rules: the
// knobs vanish wherever the predictor is never built, the defaulted and
// explicit default table sizes share a key, and distinct table sizes
// stay distinct (a cache hit across table sizes would be stale).
func TestCanonicalMergeKnobs(t *testing.T) {
	// Annotated source (spelled or defaulted) folds the table size away.
	a := EnhancedDMPConfig()
	b := EnhancedDMPConfig()
	b.CFMSource = "annotated"
	b.MergeTableSize = 256
	if a.Canonical() != b.Canonical() {
		t.Error("annotated-source MergeTableSize not folded")
	}
	// Non-DMP modes never build the predictor.
	for _, mk := range []func() Config{DefaultConfig, DHPConfig} {
		plain := mk()
		knobbed := mk()
		knobbed.CFMSource = "dynamic"
		knobbed.MergeTableSize = 16
		if plain.Canonical() != knobbed.Canonical() {
			t.Errorf("merge knobs not folded for mode %v", plain.Mode)
		}
	}
	// Dynamic source: defaulted size == explicit default size.
	d1 := EnhancedDMPConfig()
	d1.CFMSource = "dynamic"
	d2 := d1
	d2.MergeTableSize = d1.Canonical().MergeTableSize
	if d1.Canonical() != d2.Canonical() {
		t.Error("defaulted table size keys differently from the explicit default")
	}
	// ...but a different size is a different machine.
	d3 := d1
	d3.MergeTableSize = 16
	if d1.Canonical() == d3.Canonical() {
		t.Error("distinct table sizes canonicalize to the same key")
	}
	// And source changes on DMP are different machines.
	h := d1
	h.CFMSource = "hybrid"
	if d1.Canonical() == h.Canonical() {
		t.Error("dynamic and hybrid sources canonicalize to the same key")
	}
	for _, c := range []Config{d1, d3, h, b} {
		once := c.Canonical()
		if once != once.Canonical() {
			t.Errorf("Canonical not idempotent for source %q", c.CFMSource)
		}
	}
}

// TestValidateCFMSource pins the accepted CFM sources.
func TestValidateCFMSource(t *testing.T) {
	for _, src := range []string{"", "annotated", "dynamic", "hybrid"} {
		c := DMPConfig()
		c.CFMSource = src
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%q) = %v", src, err)
		}
	}
	c := DMPConfig()
	c.CFMSource = "oracle"
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted an unknown CFM source")
	}
	c = DMPConfig()
	c.CFMSource = "dynamic"
	c.MergeTableSize = -1
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted a negative table size")
	}
}

// TestCanonicalWarmMode pins the warm-mode folding rules: the knob
// defaults to "full" under SampleMode (so old cache keys stay valid in
// spirit: defaulted == explicit full), vanishes entirely when sampling
// is off, and "caches" keys differently from "full".
func TestCanonicalWarmMode(t *testing.T) {
	a := EnhancedDMPConfig()
	a.SampleMode = true
	b := a
	b.WarmMode = "full"
	if a.Canonical() != b.Canonical() {
		t.Error("defaulted warm mode keys differently from explicit full")
	}
	c := a
	c.WarmMode = "caches"
	if a.Canonical() == c.Canonical() {
		t.Error("caches-only warm mode canonicalizes to the same key as full")
	}
	off := EnhancedDMPConfig()
	offKnobbed := off
	offKnobbed.WarmMode = "caches"
	if off.Canonical() != offKnobbed.Canonical() {
		t.Error("warm mode not folded away when SampleMode is off")
	}
	for _, cc := range []Config{a, c, offKnobbed} {
		once := cc.Canonical()
		if once != once.Canonical() {
			t.Errorf("Canonical not idempotent for WarmMode %q", cc.WarmMode)
		}
	}
}

// TestValidateWarmMode pins the accepted warm modes.
func TestValidateWarmMode(t *testing.T) {
	for _, wm := range []string{"", "full", "caches"} {
		c := EnhancedDMPConfig()
		c.SampleMode = true
		c.WarmMode = wm
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%q) = %v", wm, err)
		}
	}
	c := EnhancedDMPConfig()
	c.SampleMode = true
	c.WarmMode = "none"
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted an unknown warm mode")
	}
}
