package core

import (
	"math/rand"
	"testing"

	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/lint"
	"dmp/internal/profile"
	"dmp/internal/prog"
)

// genProgram emits a random structured program: nested hammocks (biased
// and unbiased), bounded loops, leaf calls, and scratch-memory traffic,
// always halting. Together with the golden-model retirement checker this
// cross-validates the whole machine against the functional emulator on
// control-flow shapes no hand-written test covers.
type progGen struct {
	b     *prog.Builder
	r     *rand.Rand
	label int
	depth int
}

func (g *progGen) fresh(prefix string) string {
	g.label++
	return prefix + "_" + itoa(g.label)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// scratch registers the generator mutates freely.
var genRegs = []isa.Reg{4, 5, 6, 7, 10, 11, 12}

func (g *progGen) reg() isa.Reg { return genRegs[g.r.Intn(len(genRegs))] }

// stmt emits one random statement.
func (g *progGen) stmt() {
	b := g.b
	switch g.r.Intn(10) {
	case 0, 1, 2: // ALU
		switch g.r.Intn(5) {
		case 0:
			b.Add(g.reg(), g.reg(), g.reg())
		case 1:
			b.Xor(g.reg(), g.reg(), g.reg())
		case 2:
			b.Addi(g.reg(), g.reg(), int64(g.r.Intn(100)-50))
		case 3:
			b.Muli(g.reg(), g.reg(), int64(g.r.Intn(7)+1))
		case 4:
			b.Shri(g.reg(), g.reg(), int64(g.r.Intn(8)))
		}
	case 3: // memory
		r1 := g.reg()
		b.Andi(3, r1, 127)
		b.Shli(3, 3, 3)
		if g.r.Intn(2) == 0 {
			b.St(g.reg(), 3, 0x7000)
		} else {
			b.Ld(g.reg(), 3, 0x7000)
		}
	case 4, 5, 6: // hammock (possibly nested)
		g.hammock()
	case 7: // bounded loop
		g.loop()
	case 8: // scramble the rng register (keeps branches lively)
		b.Muli(1, 1, 6364136223846793005)
		b.Addi(1, 1, 1442695040888963407)
	case 9: // call a leaf
		b.Call("leaf" + itoa(g.r.Intn(3)))
	}
}

// hammock emits if or if-else with a random condition bias and random
// arm contents (recursing while depth allows).
func (g *progGen) hammock() {
	b := g.b
	then := g.fresh("t")
	join := g.fresh("j")
	// Condition: random bit (hard) or low-bits test (biased).
	bit := int64(g.r.Intn(40) + 10)
	b.Shri(3, 1, bit)
	b.Andi(3, 3, int64(1<<uint(g.r.Intn(3))-1)|1)
	b.Br(isa.EQ, 3, isa.Zero, then)
	g.arm()
	if g.r.Intn(2) == 0 { // if-else
		b.Jmp(join)
		b.Label(then)
		g.arm()
		b.Label(join)
	} else { // plain if: "then" label is the join
		b.Label(then)
	}
}

func (g *progGen) arm() {
	g.depth++
	n := g.r.Intn(3) + 1
	for i := 0; i < n; i++ {
		if g.depth > 3 {
			g.b.Addi(g.reg(), g.reg(), 1)
		} else {
			g.stmt()
		}
	}
	g.depth--
}

// loop emits a small bounded counter loop.
func (g *progGen) loop() {
	b := g.b
	head := g.fresh("l")
	trips := int64(g.r.Intn(4) + 1)
	b.Li(9, trips)
	b.Label(head)
	g.depth += 2 // discourage deep nesting inside loops
	n := g.r.Intn(2) + 1
	for i := 0; i < n; i++ {
		g.stmt()
	}
	g.depth -= 2
	b.Subi(9, 9, 1)
	b.Br(isa.GT, 9, isa.Zero, head)
}

// genProg builds a complete random program with an iteration driver.
func genProg(seed int64, iters int64) *prog.Program {
	g := &progGen{b: prog.NewBuilder(), r: rand.New(rand.NewSource(seed))}
	b := g.b
	b.Entry("main")
	// Three leaf functions.
	for i := 0; i < 3; i++ {
		b.Label("leaf" + itoa(i))
		b.Addi(isa.Reg(10+i), isa.Reg(10+i), int64(i+1))
		b.Xor(5, 5, isa.Reg(10+i))
		b.Ret()
	}
	b.Label("main")
	b.Li(1, seed|1)
	b.Li(2, iters)
	b.Label("outer")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	n := g.r.Intn(6) + 4
	for i := 0; i < n; i++ {
		g.stmt()
	}
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "outer")
	b.St(4, isa.Zero, 0x900)
	b.Halt()
	return b.MustBuild()
}

// fuzzModes are the configurations cross-validated on random programs.
func fuzzModes() map[string]Config {
	enhLoops := EnhancedDMPConfig()
	enhLoops.EnableLoopDiverge = true
	dual := DefaultConfig()
	dual.Mode = ModeDualPath
	perf := DefaultConfig()
	perf.Mode = ModePerfect
	dmpPerf := DMPConfig()
	dmpPerf.ConfidenceName = "perfect"
	stress := EnhancedDMPConfig()
	stress.ConfidenceName = "always-low"
	return map[string]Config{
		"baseline":     DefaultConfig(),
		"perfect":      perf,
		"dmp":          DMPConfig(),
		"dmp-perfconf": dmpPerf,
		"dhp":          DHPConfig(),
		"enhanced":     EnhancedDMPConfig(),
		"enh-loops":    enhLoops,
		"dualpath":     dual,
		"stress":       stress,
	}
}

func TestFuzzRandomProgramsAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	for seed := int64(1); seed <= 12; seed++ {
		p := genProg(seed, 300)
		// Reference execution.
		ref := emu.New(p)
		if _, err := ref.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: emulator: %v", seed, err)
		}
		if !ref.Halted {
			t.Fatalf("seed %d: program did not halt", seed)
		}
		// Profile (marks diverge branches; loop marking for enh-loops).
		popts := profile.DefaultOptions()
		popts.IncludeLoops = true
		if _, err := profile.Run(p, popts); err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		for name, cfg := range fuzzModes() {
			m, err := New(p, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatalf("seed %d %s: %v\nstats: %v", seed, name, err, st)
			}
			if !st.HaltRetired {
				t.Fatalf("seed %d %s: did not halt (%v)", seed, name, st)
			}
			if st.RetiredInsts != ref.Count {
				t.Errorf("seed %d %s: retired %d, emulator %d", seed, name, st.RetiredInsts, ref.Count)
			}
			for r := 0; r < isa.NumRegs; r++ {
				if got, want := m.CommittedReg(isa.Reg(r)), ref.Reg(isa.Reg(r)); got != want {
					t.Errorf("seed %d %s: r%d = %d, want %d", seed, name, r, got, want)
				}
			}
			ref.Mem.Each(func(addr, val uint64) {
				if got := m.CommittedMem(addr); got != val {
					t.Errorf("seed %d %s: mem[%#x] = %d, want %d", seed, name, addr, got, val)
				}
			})
		}
	}
}

// TestFuzzSmallWindows runs a subset of seeds on small, stress-prone
// machine geometries (tiny ROB, shallow and deep pipes, single-ported).
func TestFuzzSmallWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	geoms := []func(*Config){
		func(c *Config) { c.ROBSize = 16; c.StoreBufferSize = 4 },
		func(c *Config) { c.PipelineDepth = 5; c.FetchWidth = 2; c.FetchQueueSize = 4 },
		func(c *Config) { c.PipelineDepth = 40; c.IssueWidth = 1; c.LoadPorts = 1 },
		func(c *Config) { c.SelectUopsPerCycle = 1; c.RetireWidth = 1 },
	}
	for seed := int64(20); seed <= 25; seed++ {
		p := genProg(seed, 150)
		ref := emu.New(p)
		if _, err := ref.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		popts := profile.DefaultOptions()
		popts.IncludeLoops = true
		if _, err := profile.Run(p, popts); err != nil {
			t.Fatal(err)
		}
		for gi, tweak := range geoms {
			cfg := EnhancedDMPConfig()
			cfg.EnableLoopDiverge = true
			tweak(&cfg)
			m, err := New(p, cfg)
			if err != nil {
				t.Fatalf("seed %d geom %d: %v", seed, gi, err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatalf("seed %d geom %d: %v", seed, gi, err)
			}
			if st.RetiredInsts != ref.Count {
				t.Errorf("seed %d geom %d: retired %d, want %d", seed, gi, st.RetiredInsts, ref.Count)
			}
		}
	}
}

// TestFuzzLintSoundness pins the lint package's soundness contract on
// random structured programs: the generator only emits statically legal
// images (lint.Program reports no errors), a lint-clean image runs to
// completion on the functional emulator, and the profiler's annotations
// on arbitrary generated CFGs always satisfy the annotation legality
// rules (lint.Check stays error-free after profiling).
func TestFuzzLintSoundness(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= n; seed++ {
		p := genProg(seed, 60)
		if ds := lint.Program(p); ds.HasErrors() {
			t.Fatalf("seed %d: generator emitted a lint-illegal program:\n%s", seed, ds.Errors())
		}
		ref := emu.New(p)
		if _, err := ref.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: lint-clean program faulted on the emulator: %v", seed, err)
		}
		if !ref.Halted {
			t.Fatalf("seed %d: lint-clean program did not halt", seed)
		}
		popts := profile.DefaultOptions()
		popts.IncludeLoops = seed%2 == 0
		if _, err := profile.Run(p, popts); err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		if ds := lint.Check(p, lint.Options{}); ds.HasErrors() {
			t.Fatalf("seed %d: profiler annotations fail lint:\n%s", seed, ds.Errors())
		}
	}
}

// FuzzLintEmuSoundness is the native fuzz entry for the same contract:
// for any (seed, iters), the generated program must be lint-error-free
// and must run to completion on the emulator without a fault.
func FuzzLintEmuSoundness(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, int64(60))
	}
	f.Fuzz(func(t *testing.T, seed, iters int64) {
		iters %= 300
		if iters < 0 {
			iters = -iters
		}
		p := genProg(seed, iters)
		if ds := lint.Program(p); ds.HasErrors() {
			t.Fatalf("lint-illegal generated program (seed=%d iters=%d):\n%s", seed, iters, ds.Errors())
		}
		e := emu.New(p)
		if _, err := e.Run(5_000_000); err != nil {
			t.Fatalf("lint-clean program faulted (seed=%d iters=%d): %v", seed, iters, err)
		}
		if !e.Halted {
			t.Fatalf("lint-clean program hit the step cap (seed=%d iters=%d)", seed, iters)
		}
	})
}
