package core

import "sync"

// uopArena allocates the machine's uops from chunked slabs instead of one
// heap object per fetched uop. Slabs come from a process-wide sync.Pool
// shared by all machines: a slab is zeroed when taken (it may carry a
// previous machine's dead uops) and every slab goes back to the pool at
// the end of Run, once no uop can ever be dereferenced again. An
// experiment sweep that runs hundreds of machines back to back therefore
// recirculates a working set of a few slabs instead of pushing the
// per-uop fetch rate through the garbage collector. Pointer-identity
// semantics within one machine are preserved exactly.
//
// On top of the slabs sits a free list fed by the squash paths that can
// prove a uop is unreferenced:
//
//   - uops dropped from the front-end queue before rename (recycleFEQ).
//     Pre-rename uops are referenced only by the queue itself — they have
//     no waiters, no RAT entry, no ROB/ready/replay/event slot and no
//     store-buffer entry, all of which are established at rename or
//     later. The one exception is a diverge branch anchoring an episode
//     (episode.divergeU), which recycleFEQ therefore refuses; it stays on
//     its slab until the chunk dies.
//   - uops squashed by a pipeline flush, after recoverFrom has purged
//     every transient structure that might still name them (ready queue,
//     replay list, surviving producers' waiter lists, live episodes'
//     predicate waiter lists — see reclaimSquashed). A squashed uop whose
//     completion event is still in the heap is recycled lazily when
//     completeStage pops it.
type uopArena struct {
	chunks []*[uopChunkSize]uop // every slab taken from the pool
	next   int                  // next unhanded element of the last slab
	free   []*uop               // recycled uops, already zeroed
	// allocated counts every uop handed out (fresh or recycled), for the
	// throughput accounting in Stats.
	allocated uint64
	released  bool
}

// uopChunkSize is the slab granularity. 64 uops keep a chunk in the
// small-object allocation path (a whole-chunk clear stays cache-friendly)
// while still amortising the per-uop allocation; it also bounds how much
// memory a stray long-lived uop (e.g. a retired producer still named by
// a cold RAT entry) pins.
const uopChunkSize = 64

// chunkPool shares uop slabs across machines (experiments run many
// machines sequentially; parallel suites each draw their own slabs — the
// pool is concurrency-safe and a slab is owned by exactly one arena
// between Get and release).
var chunkPool = sync.Pool{New: func() any { return new([uopChunkSize]uop) }}

// alloc returns a zeroed uop.
func (a *uopArena) alloc() *uop {
	a.allocated++
	if n := len(a.free); n > 0 {
		u := a.free[n-1]
		a.free = a.free[:n-1]
		return u
	}
	if len(a.chunks) == 0 || a.next == uopChunkSize {
		c := chunkPool.Get().(*[uopChunkSize]uop)
		*c = [uopChunkSize]uop{} // may carry a previous machine's dead uops
		a.chunks = append(a.chunks, c)
		a.next = 0
	}
	u := &a.chunks[len(a.chunks)-1][a.next]
	a.next++
	return u
}

// release returns every slab to the shared pool. Only legal once no uop
// from this arena can ever be dereferenced again — i.e. at the very end
// of Run, after the last pipeline stage has executed. The machine's
// dangling internal references (ROB, RAT, checkpoints) are never read
// after Run returns; a Machine is single-use.
func (a *uopArena) release() {
	if a.released {
		return
	}
	a.released = true
	a.free = nil
	for i, c := range a.chunks {
		chunkPool.Put(c)
		a.chunks[i] = nil
	}
	a.chunks = nil
}

// recycle zeroes a provably unreferenced uop and puts it on the free
// list. The waiter list's backing array is kept (cleared, truncated) so a
// recycled producer does not regrow it from scratch.
func (a *uopArena) recycle(u *uop) {
	w := u.waiters
	for i := range w {
		w[i] = waiter{}
	}
	*u = uop{}
	u.waiters = w[:0]
	a.free = append(a.free, u)
}

// recycleFEQ returns a uop dropped from the front-end queue to the free
// list. The caller guarantees the uop never renamed; the arena re-checks
// the one pre-rename escape hatch (an episode's diverge branch) and the
// rename flag itself, declining rather than corrupting live state.
func (a *uopArena) recycleFEQ(u *uop) {
	if u.renamed || u.isDiverge {
		return
	}
	a.recycle(u)
}

// recycleSquashed returns a flush-squashed uop's storage to the arena,
// first salvaging its poolable side allocations (the per-branch RAT
// checkpoint and the fetch snapshot, both referenced by this uop alone).
func (m *Machine) recycleSquashed(u *uop) {
	if u.fetchSnap != nil {
		m.snapPool = append(m.snapPool, u.fetchSnap)
	}
	if u.checkpoint != nil {
		m.ckptPool = append(m.ckptPool, u.checkpoint)
	}
	m.arena.recycle(u)
}

// salvageRetired reclaims a retiring uop's side snapshots. Both are read
// only by misprediction recovery (recoverFrom), and only while the branch
// is in flight; a retired uop can never again be a recovery point, so its
// fetch snapshot and RAT checkpoint are dead the moment it leaves the
// ROB. The uop struct itself stays on its slab — RAT entries and saved
// checkpoints may still name it as a done producer — but returning the
// snapshots keeps snapFetch and snapshotRAT allocation-free in steady
// state, where they otherwise dominate the heap (one snapshot per control
// uop, one checkpoint per branch).
func (m *Machine) salvageRetired(u *uop) {
	if u.fetchSnap != nil {
		m.snapPool = append(m.snapPool, u.fetchSnap)
		u.fetchSnap = nil
	}
	if u.checkpoint != nil {
		m.ckptPool = append(m.ckptPool, u.checkpoint)
		u.checkpoint = nil
	}
}

// snapshotRAT copies r into a checkpoint, reusing storage salvaged from
// squashed branches when available.
func (m *Machine) snapshotRAT(r *rat) *ratCheckpoint {
	if n := len(m.ckptPool); n > 0 {
		c := m.ckptPool[n-1]
		m.ckptPool = m.ckptPool[:n-1]
		*c = *r
		return c
	}
	return r.snapshot()
}

// reclaimSquashed removes every remaining reference to the uops a flush
// just squashed, then recycles their storage. The purges are
// behavior-neutral: issue, completion broadcast and predicate wake-up all
// skip squashed entries already, so dropping them (order-preserving)
// changes no simulation outcome — it only makes the "unreferenced" proof
// the free list relies on.
func (m *Machine) reclaimSquashed(dead []*uop) {
	if len(dead) == 0 {
		return
	}
	m.readyQ = dropSquashed(m.readyQ)
	m.replayLoads = dropSquashed(m.replayLoads)
	// Surviving producers may hold waiter entries for squashed consumers
	// (consumers are always younger than their producers, so the reverse
	// cannot happen: a squashed producer's waiters are all squashed too).
	for _, u := range m.rob {
		if len(u.waiters) == 0 {
			continue
		}
		kept := u.waiters[:0]
		for _, w := range u.waiters {
			if !w.u.squashed {
				kept = append(kept, w)
			}
		}
		for i := len(kept); i < len(u.waiters); i++ {
			u.waiters[i] = waiter{}
		}
		u.waiters = kept
	}
	// Surviving episodes' predicates may hold squashed select-uops (a
	// flush can rewind into an episode past its selects). Dead episodes'
	// predicates can never broadcast again, so their waiter lists are
	// never read and need no purge.
	for _, ep := range m.episodes {
		m.preds.dropSquashedWaiters(ep.predID1)
		m.preds.dropSquashedWaiters(ep.predID2)
	}
	for _, u := range dead {
		if u.issued && !u.done {
			// Completion event still in the heap; completeStage recycles
			// this uop when the event pops.
			continue
		}
		m.recycleSquashed(u)
	}
}

// dropSquashed filters squashed uops out of a queue in place, preserving
// the order of the survivors.
func dropSquashed(q []*uop) []*uop {
	kept := q[:0]
	for _, u := range q {
		if !u.squashed {
			kept = append(kept, u)
		}
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	return kept
}
