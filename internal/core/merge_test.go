package core

import (
	"testing"

	"dmp/internal/prog"
)

// TestEmptyCFMListFallsBack is the regression test for the episode-entry
// guard: a diverge branch whose annotation carries no CFM points must
// fall back to normal branch prediction instead of panicking in
// enterEpisode. (MarkDiverge rejects such annotations, so the map is
// populated directly, the way a corrupted annotation stream would.)
func TestEmptyCFMListFallsBack(t *testing.T) {
	p, brPC := randomHammockProg(500)
	p.Diverge[brPC] = &prog.Diverge{Class: prog.ClassComplexDiverge}
	st := runBoth(t, p, DMPConfig())
	if st.Episodes != 0 {
		t.Errorf("entered %d episodes from an empty CFM list", st.Episodes)
	}
}

// TestAnnotatedSourceByteIdentical pins that spelling out the default
// CFM source (and setting a table size, which the annotated source
// ignores) leaves Stats byte-identical to the seed configuration — the
// merge predictor must be completely absent from annotated-mode runs.
func TestAnnotatedSourceByteIdentical(t *testing.T) {
	p1, _ := randomHammockProg(2000)
	seed := runBoth(t, profiled(t, p1), EnhancedDMPConfig())

	p2, _ := randomHammockProg(2000)
	cfg := EnhancedDMPConfig()
	cfg.CFMSource = "annotated"
	cfg.MergeTableSize = 256
	st := runBoth(t, profiled(t, p2), cfg)

	a, b := *seed, *st
	a.WallSeconds, b.WallSeconds = 0, 0
	if a != b {
		t.Errorf("annotated source diverged from seed:\nseed: %+v\ngot:  %+v", a, b)
	}
	if st.MergeHits+st.MergeMisses+st.MergeTrainings != 0 {
		t.Errorf("annotated source touched the merge predictor: %+v", st)
	}
}

// TestDynamicSourceLearnsAndPredicates runs an UNANNOTATED hammock
// program with the dynamic CFM source: the predictor must learn the join
// from retired control flow and drive real dynamic-predication episodes,
// while the machine still matches the functional emulator.
func TestDynamicSourceLearnsAndPredicates(t *testing.T) {
	p, _ := randomHammockProg(3000)
	cfg := EnhancedDMPConfig()
	cfg.CFMSource = "dynamic"
	st := runBoth(t, p, cfg)
	if st.MergeTrainings == 0 {
		t.Error("predictor never trained")
	}
	if st.MergeHits == 0 {
		t.Error("no merge-table hits")
	}
	if st.DynCFMEpisodes == 0 {
		t.Error("no episodes entered from a learned CFM")
	}
	if st.DynCFMEpisodes != st.Episodes {
		t.Errorf("dynamic source entered %d episodes but only %d were learned-CFM",
			st.Episodes, st.DynCFMEpisodes)
	}
	if st.RetiredSelects == 0 {
		t.Error("no select-uops retired from learned-CFM episodes")
	}
}

// TestDynamicSourceIgnoresAnnotations pins the "dynamic" semantics: even
// on an annotated program, every episode must come from the predictor.
func TestDynamicSourceIgnoresAnnotations(t *testing.T) {
	p, _ := randomHammockProg(3000)
	profiled(t, p)
	cfg := EnhancedDMPConfig()
	cfg.CFMSource = "dynamic"
	st := runBoth(t, p, cfg)
	if st.Episodes != st.DynCFMEpisodes {
		t.Errorf("%d of %d episodes used the annotation under the dynamic source",
			st.Episodes-st.DynCFMEpisodes, st.Episodes)
	}
}

// TestHybridPrefersAnnotation pins hybrid's precedence on a program
// whose only diverge branch is annotated: the predictor may train, but
// every episode at that branch uses the compiler CFM.
func TestHybridPrefersAnnotation(t *testing.T) {
	p, brPC := randomHammockProg(3000)
	profiled(t, p)
	if p.DivergeAt(brPC) == nil {
		t.Fatal("profiler did not mark the hammock branch")
	}
	cfg := EnhancedDMPConfig()
	cfg.CFMSource = "hybrid"
	st := runBoth(t, p, cfg)
	if st.Episodes == 0 {
		t.Error("hybrid entered no episodes on an annotated hammock")
	}
	if st.DynCFMEpisodes != 0 {
		t.Errorf("%d learned-CFM episodes on a program whose only eligible branch is annotated",
			st.DynCFMEpisodes)
	}
}

// TestDynamicDeterminism pins that two dynamic-source runs of the same
// program are byte-identical — the predictor introduces no
// nondeterminism into the golden tables.
func TestDynamicDeterminism(t *testing.T) {
	run := func() *Stats {
		p, _ := randomHammockProg(2000)
		cfg := EnhancedDMPConfig()
		cfg.CFMSource = "dynamic"
		return runBoth(t, p, cfg)
	}
	a, b := *run(), *run()
	a.WallSeconds, b.WallSeconds = 0, 0
	if a != b {
		t.Errorf("dynamic-source runs diverged:\n%+v\n%+v", a, b)
	}
}
