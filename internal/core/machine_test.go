package core

import (
	"testing"

	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/profile"
	"dmp/internal/prog"
)

// runBoth executes p on the functional emulator and on a Machine under
// cfg, verifying that the machine reaches the same architectural state.
// The machine's built-in golden-model checker is active throughout.
func runBoth(t *testing.T, p *prog.Program, cfg Config) *Stats {
	t.Helper()
	e := emu.New(p)
	if _, err := e.Run(5_000_000); err != nil {
		t.Fatalf("emulator: %v", err)
	}
	if !e.Halted {
		t.Fatal("emulator did not halt (bad test program)")
	}

	m, err := New(p, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("machine (%v): %v\nstats: %v", cfg.Mode, err, st)
	}
	if !st.HaltRetired {
		t.Fatalf("machine (%v) did not retire HALT: %v", cfg.Mode, st)
	}
	if st.RetiredInsts != e.Count {
		t.Errorf("retired %d insts, emulator executed %d", st.RetiredInsts, e.Count)
	}
	for r := 0; r < isa.NumRegs; r++ {
		if got, want := m.CommittedReg(isa.Reg(r)), e.Reg(isa.Reg(r)); got != want {
			t.Errorf("r%d = %d, want %d", r, got, want)
		}
	}
	e.Mem.Each(func(addr, val uint64) {
		if got := m.CommittedMem(addr); got != val {
			t.Errorf("mem[%#x] = %d, want %d", addr, got, val)
		}
	})
	return st
}

// --- test programs ---

func sumLoop(n int64) *prog.Program {
	b := prog.NewBuilder()
	b.Li(1, n)
	b.Li(2, 0)
	b.Label("loop")
	b.Add(2, 2, 1)
	b.Subi(1, 1, 1)
	b.Br(isa.GT, 1, isa.Zero, "loop")
	b.St(2, isa.Zero, 0x1000)
	b.Halt()
	return b.MustBuild()
}

// randomHammockProg: a loop with a hard-to-predict if-else hammock, a
// control-independent tail, and memory traffic. Returns the program and
// the hammock branch PC.
func randomHammockProg(iters int64) (*prog.Program, uint64) {
	b := prog.NewBuilder()
	b.Li(1, 88172645463325252) // r1: lcg state
	b.Li(2, iters)             // r2: loop counter
	b.Li(6, 0x4000)            // r6: array base
	b.Label("loop")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	b.Shri(3, 1, 33)
	b.Andi(3, 3, 1)
	brPC := b.Br(isa.NE, 3, isa.Zero, "then")
	b.Addi(4, 4, 3) // else
	b.Muli(5, 4, 7)
	b.Jmp("join")
	b.Label("then")
	b.Addi(4, 4, 5)
	b.Muli(5, 4, 3)
	b.Label("join")
	b.Add(4, 4, 5)    // control-independent tail
	b.Andi(7, 1, 255) // store to a data-dependent slot
	b.Shli(7, 7, 3)
	b.Add(7, 7, 6)
	b.St(4, 7, 0)
	b.Ld(8, 7, 0)
	b.Add(9, 9, 8)
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "loop")
	b.St(9, isa.Zero, 0x2000)
	b.Halt()
	return b.MustBuild(), brPC
}

// callHammockProg: a hard-to-predict branch whose taken side calls a
// function — a complex diverge branch DMP can predicate but DHP cannot.
func callHammockProg(iters int64) *prog.Program {
	b := prog.NewBuilder()
	b.Entry("main")
	b.Label("fn") // doubles r4
	b.Add(4, 4, 4)
	b.Ret()
	b.Label("main")
	b.Li(1, 88172645463325252)
	b.Li(2, iters)
	b.Label("loop")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	b.Shri(3, 1, 33)
	b.Andi(3, 3, 1)
	b.Br(isa.EQ, 3, isa.Zero, "skip")
	b.Addi(4, 4, 1)
	b.Call("fn")
	b.Label("skip")
	b.Addi(5, 5, 1) // control-independent
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "loop")
	b.Halt()
	return b.MustBuild()
}

// profiled returns the program annotated by the profiling pass.
func profiled(t *testing.T, p *prog.Program) *prog.Program {
	t.Helper()
	if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
		t.Fatalf("profile: %v", err)
	}
	return p
}

// --- baseline correctness ---

func TestBaselineSumLoop(t *testing.T) {
	st := runBoth(t, sumLoop(500), DefaultConfig())
	if st.IPC() <= 0 {
		t.Error("zero IPC")
	}
}

func TestBaselineRandomHammock(t *testing.T) {
	st := runBoth(t, mustProg(randomHammockProg(2000)), DefaultConfig())
	if st.RetiredMispredicts == 0 {
		t.Error("random hammock produced no mispredictions")
	}
	if st.Flushes == 0 {
		t.Error("no flushes on baseline")
	}
}

func mustProg(p *prog.Program, _ uint64) *prog.Program { return p }

func TestBaselineCallsAndReturns(t *testing.T) {
	runBoth(t, callHammockProg(1500), DefaultConfig())
}

func TestBaselineIndirectJumps(t *testing.T) {
	// A jump table: dispatch through JR on pseudo-random selectors.
	b := prog.NewBuilder()
	b.Li(1, 88172645463325252)
	b.Li(2, 800)
	b.Label("loop")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	b.Shri(3, 1, 40)
	b.Andi(3, 3, 3) // selector 0..3
	b.Shli(4, 3, 3)
	b.Ld(5, 4, 0x3000) // table at 0x3000
	b.Jr(5)
	b.Label("c0")
	b.Addi(6, 6, 1)
	b.Jmp("cont")
	b.Label("c1")
	b.Addi(6, 6, 2)
	b.Jmp("cont")
	b.Label("c2")
	b.Addi(6, 6, 3)
	b.Jmp("cont")
	b.Label("c3")
	b.Addi(6, 6, 4)
	b.Label("cont")
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "loop")
	b.Halt()
	p := b.MustBuild()
	p.SetWord(0x3000, p.PC("c0"))
	p.SetWord(0x3008, p.PC("c1"))
	p.SetWord(0x3010, p.PC("c2"))
	p.SetWord(0x3018, p.PC("c3"))
	runBoth(t, p, DefaultConfig())
}

func TestBaselineMemoryDisambiguation(t *testing.T) {
	// Store-to-load through the same pseudo-random addresses stresses
	// forwarding and the conservative unknown-address stall.
	b := prog.NewBuilder()
	b.Li(1, 99991)
	b.Li(2, 1200)
	b.Li(6, 0x8000)
	b.Label("loop")
	b.Muli(1, 1, 2862933555777941757)
	b.Addi(1, 1, 3037000493)
	b.Andi(3, 1, 63)
	b.Shli(3, 3, 3)
	b.Add(3, 3, 6)
	b.St(1, 3, 0)
	b.Ld(4, 3, 0)
	b.Xor(5, 5, 4)
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "loop")
	b.St(5, isa.Zero, 0x100)
	b.Halt()
	runBoth(t, b.MustBuild(), DefaultConfig())
}

func TestPerfectPredictionNoWrongPath(t *testing.T) {
	p, _ := randomHammockProg(1500)
	cfg := DefaultConfig()
	cfg.Mode = ModePerfect
	st := runBoth(t, p, cfg)
	if st.RetiredMispredicts != 0 {
		t.Errorf("perfect mode mispredicted %d conditionals", st.RetiredMispredicts)
	}
	if st.FetchedWrongCD+st.FetchedWrongCI != 0 {
		t.Errorf("perfect mode fetched %d wrong-path insts", st.FetchedWrongCD+st.FetchedWrongCI)
	}
}

func TestPerfectBeatsBaseline(t *testing.T) {
	p1, _ := randomHammockProg(2000)
	base := runBoth(t, p1, DefaultConfig())
	p2, _ := randomHammockProg(2000)
	cfg := DefaultConfig()
	cfg.Mode = ModePerfect
	perf := runBoth(t, p2, cfg)
	if perf.IPC() <= base.IPC() {
		t.Errorf("perfect IPC %.3f <= baseline %.3f", perf.IPC(), base.IPC())
	}
}

// --- DMP correctness ---

func TestDMPRandomHammock(t *testing.T) {
	p, brPC := randomHammockProg(2000)
	profiled(t, p)
	if p.DivergeAt(brPC) == nil {
		t.Fatal("profiler did not mark the hammock branch")
	}
	st := runBoth(t, p, DMPConfig())
	if st.Episodes == 0 {
		t.Error("DMP never entered dynamic predication mode")
	}
	if st.ExitCases[Exit2] == 0 {
		t.Error("no case-2 exits (mispredictions absorbed) on a random hammock")
	}
	if st.RetiredSelects == 0 {
		t.Error("no select-uops retired")
	}
}

func TestDMPPerfectConfidence(t *testing.T) {
	p, _ := randomHammockProg(2000)
	profiled(t, p)
	cfg := DMPConfig()
	cfg.ConfidenceName = "perfect"
	st := runBoth(t, p, cfg)
	// With perfect confidence, predication only starts on real
	// mispredictions: case 1 (both paths fetched, branch correct) should
	// be impossible.
	if st.ExitCases[Exit1] != 0 {
		t.Errorf("perfect confidence produced %d case-1 exits", st.ExitCases[Exit1])
	}
	if st.Episodes == 0 {
		t.Error("no episodes under perfect confidence")
	}
}

func TestDMPReducesFlushes(t *testing.T) {
	p1, _ := randomHammockProg(3000)
	base := runBoth(t, p1, DefaultConfig())

	p2, _ := randomHammockProg(3000)
	profiled(t, p2)
	cfg := DMPConfig()
	cfg.ConfidenceName = "perfect"
	dmp := runBoth(t, p2, cfg)

	if dmp.Flushes >= base.Flushes {
		t.Errorf("DMP flushes %d >= baseline %d", dmp.Flushes, base.Flushes)
	}
	if dmp.IPC() <= base.IPC() {
		t.Errorf("DMP IPC %.3f <= baseline %.3f on hammock-dominated code", dmp.IPC(), base.IPC())
	}
}

func TestDMPComplexHammockWithCall(t *testing.T) {
	p := profiled(t, callHammockProg(1500))
	st := runBoth(t, p, DMPConfig())
	if st.Episodes == 0 {
		t.Skip("profiler did not mark the call hammock on this input")
	}
}

func TestDHPOnlySimpleHammocks(t *testing.T) {
	// The call-hammock program's diverge branch is complex: DHP must not
	// predicate it.
	p := profiled(t, callHammockProg(1500))
	st := runBoth(t, p, DHPConfig())
	if st.Episodes != 0 {
		t.Errorf("DHP predicated %d complex episodes", st.Episodes)
	}
	// The simple random hammock is DHP-eligible.
	p2, _ := randomHammockProg(1500)
	profiled(t, p2)
	st2 := runBoth(t, p2, DHPConfig())
	if st2.Episodes == 0 {
		t.Error("DHP never predicated a simple hammock")
	}
}

func TestEnhancedDMP(t *testing.T) {
	p, _ := randomHammockProg(2500)
	profiled(t, p)
	st := runBoth(t, p, EnhancedDMPConfig())
	if st.Episodes == 0 {
		t.Error("enhanced DMP never entered predication")
	}
}

func TestDualPath(t *testing.T) {
	p, _ := randomHammockProg(2000)
	cfg := DefaultConfig()
	cfg.Mode = ModeDualPath
	st := runBoth(t, p, cfg)
	if st.Episodes == 0 {
		t.Error("dual-path never forked")
	}
	if st.ExitCases[Exit2] == 0 {
		t.Error("dual-path absorbed no mispredictions")
	}
}

func TestDMPWithSmallWindowAndShallowPipe(t *testing.T) {
	for _, rob := range []int{128, 256} {
		for _, depth := range []int{10, 20} {
			p, _ := randomHammockProg(1200)
			profiled(t, p)
			cfg := EnhancedDMPConfig()
			cfg.ROBSize = rob
			cfg.PipelineDepth = depth
			runBoth(t, p, cfg)
		}
	}
}

func TestNeverLowConfidenceEqualsBaselineRetirement(t *testing.T) {
	// With a never-low estimator, the DMP machine must never predicate.
	p, _ := randomHammockProg(1000)
	profiled(t, p)
	cfg := DMPConfig()
	cfg.ConfidenceName = "never-low"
	st := runBoth(t, p, cfg)
	if st.Episodes != 0 {
		t.Errorf("never-low confidence still created %d episodes", st.Episodes)
	}
}

func TestAlwaysLowConfidenceStress(t *testing.T) {
	// Predicating every fetch of the diverge branch stresses every exit
	// case and the checkpoint machinery.
	p, _ := randomHammockProg(1500)
	profiled(t, p)
	cfg := EnhancedDMPConfig()
	cfg.ConfidenceName = "always-low"
	st := runBoth(t, p, cfg)
	if st.Episodes == 0 {
		t.Error("always-low confidence created no episodes")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ROBSize = 2
	if _, err := New(sumLoop(1), bad); err == nil {
		t.Error("tiny ROB accepted")
	}
	bad2 := DefaultConfig()
	bad2.PredictorName = "nonsense"
	if _, err := New(sumLoop(1), bad2); err == nil {
		t.Error("unknown predictor accepted")
	}
	bad3 := DefaultConfig()
	bad3.ConfidenceName = "nonsense"
	if _, err := New(sumLoop(1), bad3); err == nil {
		t.Error("unknown estimator accepted")
	}
}

func TestMaxInstsStopsRun(t *testing.T) {
	p, _ := randomHammockProg(1_000_000)
	cfg := DefaultConfig()
	cfg.MaxInsts = 20_000
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.RetiredInsts < 20_000 || st.RetiredInsts > 21_000 {
		t.Errorf("retired %d, want ~20000", st.RetiredInsts)
	}
}

func TestPredictorVariants(t *testing.T) {
	for _, name := range []string{"perceptron", "gshare", "bimodal", "hybrid"} {
		p, _ := randomHammockProg(800)
		cfg := DefaultConfig()
		cfg.PredictorName = name
		runBoth(t, p, cfg)
	}
}

func TestSelectiveBPUpdate(t *testing.T) {
	p, _ := randomHammockProg(1200)
	profiled(t, p)
	cfg := EnhancedDMPConfig()
	cfg.SelectiveBPUpdate = true
	runBoth(t, p, cfg)
}
