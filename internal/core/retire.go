package core

import (
	"fmt"

	"dmp/internal/isa"
)

// retireStage retires up to RetireWidth completed uops from the head of
// the reorder buffer, in order. Predicate-FALSE instructions free their
// results without updating architectural state (Section 2.5); stores
// drain to memory; the golden-model checker validates every committed
// instruction against the functional emulator.
//
//dmp:hotpath
func (m *Machine) retireStage() {
	for n := 0; n < m.cfg.RetireWidth && len(m.rob) > 0; n++ {
		u := m.rob[0]
		if !u.done {
			return
		}
		if u.predID != 0 && !m.preds.known(u.predID) {
			// The producing diverge branch is older and retires first,
			// broadcasting the predicate; reaching here means it
			// completed this very cycle. Wait one cycle.
			return
		}
		m.rob = m.rob[1:]
		if m.probe != nil {
			m.probeUop(StageRetire, u)
		}
		m.salvageRetired(u)
		m.retireOne(u)
		if m.halted || m.runErr != nil {
			return
		}
	}
}

func (m *Machine) retireOne(u *uop) {
	switch u.kind {
	case kindEnterPred, kindEnterAlt, kindExitPred, kindFork:
		m.Stats.RetiredMarkers++
		return
	case kindSelect:
		// Select-uops commit their muxed value. At this retirement point
		// the golden model sits exactly at the CFM point, so the muxed
		// value must equal the architectural register.
		m.commitRegs[u.dstArch] = u.dstVal
		if m.checker != nil && !m.checker.Halted && m.checker.Reg(u.dstArch) != u.dstVal {
			m.fail(u, fmt.Sprintf("select %v = %d, golden %d", u.dstArch, u.dstVal, m.checker.Reg(u.dstArch)))
		}
		m.Stats.RetiredSelects++
		return
	}

	if u.predID != 0 && !m.preds.value(u.predID) {
		// Predicate-FALSE path: the instruction becomes a NOP; its
		// physical register is freed, a predicated store is dropped.
		m.Stats.RetiredFalse++
		if u.isStore {
			if !m.sbRetireHead(u) {
				m.fail(u, "store buffer out of order at false-store retire")
			}
		}
		return
	}

	// Architectural commit.
	if u.hasDst {
		m.commitRegs[u.dstArch] = u.dstVal
	}
	if u.isStore {
		if !m.sbRetireHead(u) {
			m.fail(u, "store buffer out of order at store retire")
			return
		}
		m.dmem.Write(u.addr, u.dstVal)
		m.hier.DataLatency(u.addr) // allocate the line; latency is hidden
	}

	if m.checker != nil {
		m.checkRetired(u)
		if m.runErr != nil {
			return
		}
	}

	m.Stats.RetiredInsts++
	m.retired++
	if !m.oracle.onPath && m.oracle.em.Count == m.retired-1 && m.oracle.em.PC == u.pc {
		// Retirement caught up with a paused oracle: the retiring
		// instruction is architecturally the oracle's next step, so the
		// oracle can safely follow the retirement stream until fetch
		// lockstep can re-form (see fetchStage's drained-machine resync).
		m.oracle.em.Step() //nolint:errcheck // next check catches drift
	}
	if m.retired&1023 == 0 {
		// Retired instructions can never be squashed: shrink the
		// oracle's rewind window.
		m.oracle.trim(m.retired)
	}

	if m.merge != nil {
		m.mergeObserve(u)
	}

	if u.inst.Op == isa.BR {
		m.Stats.RetiredBranches++
		if u.mispredicted {
			m.Stats.RetiredMispredicts++
		}
		if !(m.cfg.SelectiveBPUpdate && u.isDiverge) {
			m.pred.Update(u.pc, u.fetchGHR, u.actualTaken)
		}
		m.confEst.Update(u.pc, u.fetchGHR, !u.mispredicted)
		if u.actualTaken {
			m.btb.Insert(u.pc, u.actualNext)
		}
	} else if u.inst.IsIndirect() {
		m.itc.Update(u.pc, u.fetchGHR, u.actualNext)
	}

	if u.inst.Op == isa.HALT {
		m.halted = true
		m.Stats.HaltRetired = true
		m.flushWPAll()
	}
}

// mergeObserve feeds the retired predicate-TRUE instruction stream to the
// merge-point predictor — the same architectural control flow the offline
// profiler sees, so learned CFMs match what annotations would select.
// Training is opened only for low-confidence or mispredicted branches:
// those are the only entry candidates, and gating keeps the bounded table
// from churning on well-predicted branches.
func (m *Machine) mergeObserve(u *uop) {
	train := false
	if u.inst.Op == isa.BR {
		train = u.lowConf || u.mispredicted
	}
	m.merge.Observe(u.pc, u.inst.Op, u.actualTaken, train)
}

// checkRetired steps the golden-model emulator and compares: the retired
// predicate-TRUE instruction stream must be exactly the program's
// architectural execution.
func (m *Machine) checkRetired(u *uop) {
	if m.checker.Halted {
		m.fail(u, "retired instruction after golden model halted")
		return
	}
	if m.checker.PC != u.pc {
		m.fail(u, fmt.Sprintf("golden model at pc %d", m.checker.PC))
		return
	}
	st, err := m.checker.Step()
	if err != nil {
		m.fail(u, "golden model error: "+err.Error())
		return
	}
	if u.hasDst && st.WroteReg && st.RegVal != u.dstVal {
		m.fail(u, fmt.Sprintf("dst %v = %d, golden %d", u.dstArch, u.dstVal, st.RegVal))
		return
	}
	if u.isStore && (!st.IsStore || st.Addr&^7 != u.addr&^7 || st.MemVal != u.dstVal) {
		m.fail(u, fmt.Sprintf("store addr/val %d/%d, golden %d/%d", u.addr, u.dstVal, st.Addr, st.MemVal))
		return
	}
	if u.isLoad && st.IsLoad && st.MemVal != u.dstVal {
		m.fail(u, fmt.Sprintf("load val %d, golden %d", u.dstVal, st.MemVal))
		return
	}
}

func (m *Machine) fail(u *uop, msg string) {
	m.runErr = fmt.Errorf("core: cycle %d seq %d pc %d (%v %v): %s",
		m.cycle, u.seq, u.pc, u.kind, u.inst, msg)
}
