package core

import (
	"dmp/internal/bpred"
)

// dpPhase tracks where the fetch engine is within a dynamic predication
// episode.
type dpPhase uint8

const (
	dpPredicted dpPhase = iota // fetching the predicted path (Section 2.3)
	dpAlternate                // fetching the alternate path
	dpExited                   // exit.pred emitted; waiting for resolution
	dpDead                     // torn down (flush, conversion, resolution)
)

// ExitCase is a Table-1 exit case of dynamic predication mode.
type ExitCase int

// Exit cases 1-6 of Table 1.
const (
	ExitNone ExitCase = iota
	// Exit1: both paths reached the CFM point, branch correctly
	// predicted: pure alternate-path overhead.
	Exit1
	// Exit2: both paths reached the CFM point, branch mispredicted: a
	// pipeline flush was eliminated.
	Exit2
	// Exit3: predicted path reached the CFM, branch resolved correct
	// while fetching the alternate path: fetch is redirected to the CFM.
	Exit3
	// Exit4: branch resolved mispredicted while fetching the (correct)
	// alternate path: no special action, penalty reduced.
	Exit4
	// Exit5: branch resolved correct while still on the predicted path.
	Exit5
	// Exit6: branch resolved mispredicted while still on the predicted
	// path: the pipeline is flushed as in the baseline.
	Exit6
)

// String names the exit case the way Stats.ExitCases indexes it:
// "squashed" for index 0 (episode killed by a flush), "case1".."case6"
// for the Table-1 cases.
func (c ExitCase) String() string {
	switch c {
	case ExitNone:
		return "squashed"
	case Exit1:
		return "case1"
	case Exit2:
		return "case2"
	case Exit3:
		return "case3"
	case Exit4:
		return "case4"
	case Exit5:
		return "case5"
	case Exit6:
		return "case6"
	}
	return "case?"
}

// episode is one dynamic predication episode: a low-confidence diverge
// branch being dynamically predicated (or a dual-path fork). It carries
// both fetch-side state (phase, CFM watch, alternate counters) and
// rename-side state (the CP1/CP2 checkpoints).
type episode struct {
	id        int
	divergeU  *uop
	cfms      []uint64 // candidate CFM points (CAM contents)
	cfm       uint64   // CFM chosen by the predicted path (valid once chosen)
	cfmChosen bool
	phase     dpPhase

	predictedTaken bool
	altStartPC     uint64    // first PC of the alternate path
	ghr1           bpred.GHR // checkpointed GHR with the diverge bit (Section 2.3)
	ghrAtCFM       bpred.GHR // fetch GHR when the predicted path reached the CFM
	rasAtDiverge   bpred.RASState
	rasAtCFM       bpred.RASState
	earlyExited    bool

	// predID1 predicates the predicted path, predID2 the alternate path.
	predID1, predID2 int

	// Rename-side checkpoints (Section 2.4). cp1 is taken when
	// enter.pred.path renames, cp2 when enter.alternate.path renames.
	cp1, cp2 *ratCheckpoint

	altFetched    int // alternate-path instructions fetched (early exit)
	exitThreshold int

	exitCase  ExitCase
	converted bool // reverted to a normal branch (early exit or MDB)
	loop      bool

	// dynCFM marks an episode whose CFM came from the runtime merge-point
	// predictor (internal/merge) rather than a compiler annotation;
	// cfmStore then backs the one-element cfms slice so the episode owns
	// its CFM (the predictor's scratch annotation is reused per lookup).
	dynCFM   bool
	cfmStore [1]uint64

	// dual-path only: per-stream fetch contexts live in the frontend.
	dual bool
}

// predicate is one predicate register (Section 2.4): defined by the
// enter uops, produced when the diverge branch resolves, consumed by
// select-uops, the store buffer and retirement.
type predicate struct {
	known   bool
	value   bool
	waiters []*uop // select-uops (and stalled loads' stores) woken on broadcast
}

// predFile is the predicate register file. IDs are allocated
// monotonically; id 0 means "not predicated".
type predFile struct {
	preds map[int]*predicate
	next  int
}

func newPredFile() *predFile {
	return &predFile{preds: map[int]*predicate{}, next: 1}
}

// alloc returns a fresh predicate id.
func (f *predFile) alloc() int {
	id := f.next
	f.next++
	f.preds[id] = &predicate{}
	return id
}

// get returns the predicate record for id (nil for id 0).
func (f *predFile) get(id int) *predicate {
	if id == 0 {
		return nil
	}
	return f.preds[id]
}

// known reports whether the predicate value has been broadcast. id 0
// (unpredicated) is always known-true.
func (f *predFile) known(id int) bool {
	if id == 0 {
		return true
	}
	p := f.preds[id]
	return p != nil && p.known
}

// value returns the broadcast value; id 0 is true.
func (f *predFile) value(id int) bool {
	if id == 0 {
		return true
	}
	p := f.preds[id]
	return p != nil && p.known && p.value
}

// broadcast produces a predicate value and returns the uops waiting on
// it. Broadcasting an already-known predicate to the same value is a
// no-op; to a different value it panics (that would be a protocol bug).
func (f *predFile) broadcast(id int, val bool) []*uop {
	p := f.preds[id]
	if p == nil {
		return nil
	}
	if p.known {
		if p.value != val {
			panic("core: predicate re-broadcast with different value")
		}
		return nil
	}
	p.known = true
	p.value = val
	w := p.waiters
	p.waiters = nil
	return w
}

// dropSquashedWaiters removes squashed uops from a predicate's waiter
// list (flush cleanup: their storage is about to be recycled, and a later
// broadcast must not dereference them).
func (f *predFile) dropSquashedWaiters(id int) {
	p := f.preds[id]
	if p == nil || len(p.waiters) == 0 {
		return
	}
	kept := p.waiters[:0]
	for _, u := range p.waiters {
		if !u.squashed {
			kept = append(kept, u)
		}
	}
	for i := len(kept); i < len(p.waiters); i++ {
		p.waiters[i] = nil
	}
	p.waiters = kept
}

// await registers a uop to be woken when the predicate broadcasts. It
// reports whether the value is already known (in which case the caller
// should not wait).
func (f *predFile) await(id int, u *uop) bool {
	p := f.preds[id]
	if p == nil || p.known {
		return true
	}
	p.waiters = append(p.waiters, u)
	return false
}
