// Package core implements the diverge-merge processor: an execution-driven
// out-of-order core with dynamic predication of compiler-marked diverge
// branches (Kim, Joao, Mutlu & Patt). The same machine also runs as the
// baseline branch-prediction processor, as a perfect-conditional-branch
// processor, as a Dynamic Hammock Predication (DHP) processor, and as a
// selective dual-path processor, so every configuration the paper
// compares shares fetch, rename, scheduling, memory and retirement logic.
//
// The pipeline is: fetch (branch prediction, dynamic-predication fetch
// FSM, I-cache) → front-end delay queue (models pipeline depth) → rename
// (RAT, per-branch checkpoints, enter/exit uops, select-uop insertion) →
// out-of-order issue/execute (real data values, including on wrong paths)
// → in-order retire (predicate-FALSE squash, store drain, golden-model
// check). A fetch-following functional emulator (the "oracle") supplies
// perfect branch outcomes and classifies wrong-path fetches; see
// oracle.go.
package core

import (
	"fmt"

	"dmp/internal/merge"
)

// Mode selects the machine organization being simulated.
type Mode int

// Machine modes.
const (
	// ModeBaseline is the aggressive branch-prediction baseline of
	// Table 2.
	ModeBaseline Mode = iota
	// ModePerfect gives the baseline a perfect conditional branch
	// predictor (the perfect-cbp bars of Figure 7).
	ModePerfect
	// ModeDMP is the diverge-merge processor.
	ModeDMP
	// ModeDHP is Dynamic Hammock Predication: dynamic predication
	// restricted to simple hammock diverge branches.
	ModeDHP
	// ModeDualPath is selective dual-path execution: on a low-confidence
	// branch, fetch both paths (sharing fetch bandwidth) until the branch
	// resolves, then squash the losing path. No merging at
	// control-independent points.
	ModeDualPath
)

func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModePerfect:
		return "perfect-cbp"
	case ModeDMP:
		return "dmp"
	case ModeDHP:
		return "dhp"
	case ModeDualPath:
		return "dualpath"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parameterises the machine. DefaultConfig reproduces Table 2.
type Config struct {
	Mode Mode

	// Front end.
	FetchWidth     int // instructions fetched per cycle (8)
	MaxBrPerFetch  int // conditional branches per fetch cycle (3)
	PipelineDepth  int // total pipeline stages; sets the front-end delay (30)
	FetchQueueSize int // entries between fetch and rename

	// Core.
	ROBSize            int // reorder buffer entries (512)
	IssueWidth         int // max issues per cycle (8)
	RetireWidth        int // max retires per cycle (8)
	LoadPorts          int // data-cache ports (2)
	StoreBufferSize    int // store buffer entries
	SelectUopsPerCycle int // select-uop insertion bandwidth at rename (RAT ports)

	// Predictors. PredictorName selects perceptron (default), gshare,
	// bimodal or hybrid. ConfidenceName selects jrs (default) or perfect.
	PredictorName  string
	ConfidenceName string

	// Dynamic predication enhancements (Section 2.7).
	MultipleCFM       bool // 2.7.1: CAM over all marked CFM points
	EarlyExit         bool // 2.7.2: give up on the alternate path
	EarlyExitDefault  int  // static threshold when annotation has none
	MultipleDiverge   bool // 2.7.3: re-enter for a newer diverge branch
	EnableLoopDiverge bool // 2.7.4: predicate marked loop branches too

	// CFMSource selects where episode entry finds a branch's CFM points:
	// "annotated" (default; the compiler annotations shipped with the
	// program), "dynamic" (only the runtime merge-point predictor,
	// internal/merge — annotations are ignored, so unannotated binaries
	// can be predicated), or "hybrid" (the annotation wins when present,
	// the predictor fills unannotated branches). The predictor is only
	// consulted in ModeDMP: it cannot prove the simple-hammock shape DHP
	// requires, so DHP always runs from annotations.
	CFMSource string
	// MergeTableSize overrides the merge predictor's reconvergence table
	// capacity (0 = the internal/merge default). Only meaningful when
	// CFMSource is "dynamic" or "hybrid".
	MergeTableSize int

	// SelectiveBPUpdate suppresses branch-predictor training for
	// dynamically predicated branches (Section 2.7.4's update-policy
	// future work, after Klauser et al.).
	SelectiveBPUpdate bool

	// KeepAlternateGHR keeps the alternate path's global history when
	// dynamic predication exits (the paper's design choice, footnote 7).
	// Off by default: on this simulator's perceptron the alternate
	// history pollutes downstream predictions, so the default restores
	// the predicted path's GHR at the CFM point (the episode is usually
	// case 1, where the predicted path is the real history). The ablation
	// bench BenchmarkAblationAlternateGHR quantifies the difference.
	KeepAlternateGHR bool

	// Run limits. MaxInsts bounds retired program instructions
	// (0 = run to HALT); MaxCycles is a hard safety stop.
	MaxInsts  uint64
	MaxCycles uint64

	// Sampled simulation (internal/sample). SampleMode selects SMARTS-style
	// systematic sampling: functional fast-forward between short detailed
	// intervals, with full-run Stats extrapolated from the intervals and
	// reported with confidence bounds. The Machine itself ignores these
	// knobs — drivers (internal/sample, cmd/dmpsim, the exp result cache)
	// dispatch on SampleMode — but they live on Config so Canonical() keys
	// sampled and exact results apart in the result cache.
	//
	// SamplePeriod is the number of program instructions from one detailed
	// interval start to the next (and the length of the exactly measured
	// cold-start prefix); SampleInterval the retired instructions measured
	// per detailed interval; SampleWarmup optional extra per-interval
	// functional warming (predictors, caches, merge table trained without
	// cycle accounting) on top of the continuous warming the fast-forward
	// pass already does. Zero period/interval take the DefaultSample*
	// constants. All three are ignored when SampleMode is off.
	SampleMode     bool
	SamplePeriod   uint64
	SampleInterval uint64
	SampleWarmup   uint64

	// WarmMode selects how much state the continuous functional-warming
	// pass trains: "full" (default; caches, direction predictor,
	// confidence estimator, BTB, RAS, ITC, merge table, plus wrong-path
	// and episode-path cache excursions) or "caches" (cache hierarchy
	// only — instruction fetch and load/store data — skipping predictor
	// training and excursions). Caches-only warming is several times
	// cheaper per instruction; the predictors then start each detailed
	// interval cold, so it should be paired with a nonzero SampleWarmup
	// that retrains the short-history state just before each measured
	// window. Ignored when SampleMode is off.
	WarmMode string

	// CheckRetirement compares every retired instruction against a
	// lockstep functional emulator (golden model). Cheap; on by default.
	CheckRetirement bool
}

// Default sampling parameters (SampleMode with zero knobs). The period
// is sized so the scale-1 workloads (~2-4e4 dynamic instructions) still
// yield enough intervals (k >= ~5) for a meaningful confidence interval,
// while the detailed fraction (prefix + interval + pipeline ramp) stays
// low enough for an order-of-magnitude speedup at the default scale.
// Per-interval warmup defaults to zero: the fast-forward pass warms
// caches and predictors continuously, which covers far longer reuse
// distances than any affordable per-interval window.
const (
	DefaultSamplePeriod   = 6_000
	DefaultSampleInterval = 500
	DefaultSampleWarmup   = 0
)

// SampleParams returns the effective sampling parameters with defaults
// applied: what the sampling driver will actually use for this config.
func (c Config) SampleParams() (period, interval, warmup uint64) {
	period, interval, warmup = c.SamplePeriod, c.SampleInterval, c.SampleWarmup
	if period == 0 {
		period = DefaultSamplePeriod
	}
	if interval == 0 {
		interval = DefaultSampleInterval
	}
	if warmup == 0 {
		warmup = DefaultSampleWarmup
	}
	return period, interval, warmup
}

// DefaultConfig is the baseline processor of Table 2 of the paper.
func DefaultConfig() Config {
	return Config{
		Mode:               ModeBaseline,
		FetchWidth:         8,
		MaxBrPerFetch:      3,
		PipelineDepth:      30,
		FetchQueueSize:     64,
		ROBSize:            512,
		IssueWidth:         8,
		RetireWidth:        8,
		LoadPorts:          2,
		StoreBufferSize:    128,
		SelectUopsPerCycle: 4,
		PredictorName:      "perceptron",
		ConfidenceName:     "jrs",
		EarlyExitDefault:   64,
		MaxCycles:          2_000_000_000,
		CheckRetirement:    true,
	}
}

// DMPConfig returns the basic diverge-merge configuration.
func DMPConfig() Config {
	c := DefaultConfig()
	c.Mode = ModeDMP
	return c
}

// EnhancedDMPConfig returns the enhanced diverge-merge configuration with
// all three Section 2.7 enhancements (enhanced-mcfm-eexit-mdb).
func EnhancedDMPConfig() Config {
	c := DMPConfig()
	c.MultipleCFM = true
	c.EarlyExit = true
	c.MultipleDiverge = true
	return c
}

// DHPConfig returns the Dynamic Hammock Predication configuration.
func DHPConfig() Config {
	c := DefaultConfig()
	c.Mode = ModeDHP
	return c
}

// Canonical returns a semantically equivalent Config normalized for use
// as a cache key. Config is a flat comparable struct, so the canonical
// value can index a map directly; two configurations that would drive
// bit-identical simulations canonicalize to the same value. It
//
//   - spells out defaulted predictor names ("" is the perceptron, and ""
//     confidence is JRS — the same choices Machine construction makes);
//   - folds the dynamic-predication knobs to their zero values for modes
//     that never enter an episode (baseline and perfect-CBP consult none
//     of them — maybeEnterDP returns before any is read);
//   - folds EarlyExitDefault when EarlyExit is off (the threshold is
//     stored per episode but only ever compared under the EarlyExit
//     flag);
//   - folds CheckRetirement, which changes wall-clock but never a single
//     Stats bit. Callers that want checked and unchecked runs kept apart
//     (the experiment result cache does, so a cache hit always ran with
//     the same checking the caller asked for) must carry it beside the
//     canonical Config in their key;
//   - folds the sampling knobs to zero when SampleMode is off (an exact
//     run never reads them) and spells out their defaults when it is on
//     (a defaulted and an explicitly default-parameterised sampled run
//     are the same simulation). WarmMode is spelled out to "full" when
//     sampling and folded to "" otherwise. SampleMode itself is never
//     folded: a sampled result must never alias the exact result for the
//     same machine configuration in the result cache;
//   - spells out the defaulted CFMSource ("" is "annotated") and folds
//     the merge-predictor knobs for every mode but DMP (the predictor is
//     only ever built there — DHP and dual-path run from annotations
//     regardless of source, see Config.CFMSource). On DMP it folds
//     MergeTableSize to zero for the annotated source (no predictor is
//     built) and from zero to the internal/merge default capacity for
//     dynamic/hybrid (so a defaulted and an explicitly default-sized
//     predictor share one cache entry).
//
// ConfidenceName is deliberately NOT folded for any mode: every fetched
// conditional branch consults the estimator and the LowConfCorrect /
// LowConfWrong counters differ between estimators even on the baseline.
//
// The raw machine-geometry and run-limit fields are pass-through key
// components: every distinct value is a distinct simulation, so there is
// nothing for Canonical to normalize and they ride along verbatim in the
// returned copy. The dmpvet canonical analyzer holds this list against
// the struct — a new Config field must either be normalized above or be
// added here with the same justification.
//
//dmp:nocanon FetchWidth MaxBrPerFetch PipelineDepth FetchQueueSize -- pass-through front-end geometry
//dmp:nocanon ROBSize IssueWidth RetireWidth LoadPorts StoreBufferSize SelectUopsPerCycle -- pass-through core geometry
//dmp:nocanon MaxInsts MaxCycles -- pass-through run limits
func (c Config) Canonical() Config {
	if c.PredictorName == "" {
		c.PredictorName = "perceptron"
	}
	if c.ConfidenceName == "" {
		c.ConfidenceName = "jrs"
	}
	if c.CFMSource == "" {
		c.CFMSource = "annotated"
	}
	switch c.Mode {
	case ModeBaseline, ModePerfect:
		c.MultipleCFM = false
		c.EarlyExit = false
		c.EarlyExitDefault = 0
		c.MultipleDiverge = false
		c.EnableLoopDiverge = false
		c.SelectiveBPUpdate = false
		c.KeepAlternateGHR = false
	default:
		if !c.EarlyExit {
			c.EarlyExitDefault = 0
		}
	}
	if c.Mode != ModeDMP {
		c.CFMSource = "annotated"
	}
	if c.CFMSource == "annotated" {
		c.MergeTableSize = 0
	} else if c.MergeTableSize == 0 {
		c.MergeTableSize = merge.DefaultConfig().TableSize
	}
	if c.SampleMode {
		c.SamplePeriod, c.SampleInterval, c.SampleWarmup = c.SampleParams()
		if c.WarmMode == "" {
			c.WarmMode = "full"
		}
	} else {
		c.SamplePeriod, c.SampleInterval, c.SampleWarmup = 0, 0, 0
		c.WarmMode = ""
	}
	c.CheckRetirement = false
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0:
		return fmt.Errorf("core: widths must be positive")
	case c.ROBSize < 8:
		return fmt.Errorf("core: ROB too small")
	case c.PipelineDepth < 5:
		return fmt.Errorf("core: pipeline depth must be at least 5")
	case c.MaxBrPerFetch <= 0:
		return fmt.Errorf("core: MaxBrPerFetch must be positive")
	case c.StoreBufferSize <= 0 || c.LoadPorts <= 0:
		return fmt.Errorf("core: memory resources must be positive")
	case c.SelectUopsPerCycle <= 0:
		return fmt.Errorf("core: SelectUopsPerCycle must be positive")
	case c.FetchQueueSize < c.FetchWidth:
		return fmt.Errorf("core: fetch queue smaller than fetch width")
	}
	switch c.PredictorName {
	case "", "perceptron", "gshare", "bimodal", "hybrid":
	default:
		return fmt.Errorf("core: unknown predictor %q", c.PredictorName)
	}
	switch c.ConfidenceName {
	case "", "jrs", "perfect", "always-low", "never-low":
	default:
		return fmt.Errorf("core: unknown confidence estimator %q", c.ConfidenceName)
	}
	switch c.CFMSource {
	case "", "annotated", "dynamic", "hybrid":
	default:
		return fmt.Errorf("core: unknown CFM source %q (want annotated, dynamic or hybrid)", c.CFMSource)
	}
	if c.MergeTableSize < 0 {
		return fmt.Errorf("core: MergeTableSize must be non-negative")
	}
	switch c.WarmMode {
	case "", "full", "caches":
	default:
		return fmt.Errorf("core: unknown warm mode %q (want full or caches)", c.WarmMode)
	}
	if c.SampleMode {
		period, interval, warmup := c.SampleParams()
		if period < interval+warmup {
			return fmt.Errorf("core: SamplePeriod %d shorter than SampleInterval %d + SampleWarmup %d",
				period, interval, warmup)
		}
	}
	return nil
}

// frontEndDelay is the number of cycles an instruction spends between
// fetch and rename; together with the execute/resolve path it makes the
// minimum branch misprediction penalty equal PipelineDepth.
func (c *Config) frontEndDelay() int {
	d := c.PipelineDepth - 5 // fetch, rename, issue, execute, resolve
	if d < 0 {
		d = 0
	}
	return d
}
