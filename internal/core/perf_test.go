package core

import (
	"container/heap"
	"math/rand"
	"testing"
)

// --- eventHeap: the typed heap must replicate container/heap exactly ---

// refHeap adapts []event to heap.Interface with the same ordering the
// typed eventHeap uses, so the two can be compared pop-for-pop. Equal-at
// tie order must match: experiment output is sensitive to the order
// same-cycle completions drain.
type refHeap []event

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	e := old[n]
	*h = old[:n]
	return e
}

func TestEventHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var th eventHeap
	var rh refHeap
	// Tag each event with a distinct uop so identity (not just cycle) can
	// be compared. Lots of duplicate at values to stress tie order.
	uops := make([]uop, 4096)
	pending := 0
	for step := 0; step < 20000; step++ {
		if pending == 0 || (rng.Intn(3) != 0 && step < 12000) {
			e := event{at: uint64(rng.Intn(50)), u: &uops[step%len(uops)]}
			th.push(e)
			heap.Push(&rh, e)
			pending++
		} else {
			a := th.pop()
			b := heap.Pop(&rh).(event)
			if a.at != b.at || a.u != b.u {
				t.Fatalf("step %d: typed heap popped {at:%d u:%p}, container/heap popped {at:%d u:%p}",
					step, a.at, a.u, b.at, b.u)
			}
			pending--
		}
	}
	for pending > 0 {
		a := th.pop()
		b := heap.Pop(&rh).(event)
		if a.at != b.at || a.u != b.u {
			t.Fatalf("drain: typed heap popped {at:%d u:%p}, container/heap popped {at:%d u:%p}",
				a.at, a.u, b.at, b.u)
		}
		pending--
	}
}

// --- insertBySeq: sorted insertion replacing the per-cycle sort ---

func TestInsertBySeqKeepsAgeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var q []*uop
	for i := 0; i < 500; i++ {
		u := &uop{seq: uint64(rng.Intn(100))}
		q = insertBySeq(q, u)
	}
	for i := 1; i < len(q); i++ {
		if q[i-1].seq > q[i].seq {
			t.Fatalf("q[%d].seq=%d > q[%d].seq=%d", i-1, q[i-1].seq, i, q[i].seq)
		}
	}
}

func TestInsertBySeqStableOnTies(t *testing.T) {
	// Select-uops share the episode's selExitSeq, so equal-seq entries
	// occur; insertion must keep them in arrival order.
	a, b, c := &uop{seq: 5}, &uop{seq: 5}, &uop{seq: 5}
	var q []*uop
	q = insertBySeq(q, a)
	q = insertBySeq(q, b)
	q = insertBySeq(q, c)
	if q[0] != a || q[1] != b || q[2] != c {
		t.Fatal("equal-seq uops not kept in arrival order")
	}
	d := &uop{seq: 3}
	q = insertBySeq(q, d)
	if q[0] != d || q[1] != a {
		t.Fatal("lower-seq uop not inserted ahead of ties")
	}
}

// --- uop arena ---

func TestArenaRecyclesOnlySafeUops(t *testing.T) {
	var a uopArena
	u := a.alloc()
	u.seq = 42
	a.recycleFEQ(u)
	if got := a.alloc(); got != u {
		t.Fatal("free-listed uop not reused by next alloc")
	} else if got.seq != 0 {
		t.Fatal("recycled uop not zeroed")
	}

	// Renamed and diverge uops may still be referenced (ROB, RAT,
	// episode.divergeU) and must be declined.
	r := a.alloc()
	r.renamed = true
	a.recycleFEQ(r)
	dv := a.alloc()
	dv.isDiverge = true
	a.recycleFEQ(dv)
	if len(a.free) != 0 {
		t.Fatalf("free list has %d entries after declining unsafe uops", len(a.free))
	}
}

func TestArenaAllocCrossesChunks(t *testing.T) {
	var a uopArena
	seen := make(map[*uop]bool)
	for i := 0; i < 3*uopChunkSize+5; i++ {
		u := a.alloc()
		if seen[u] {
			t.Fatalf("alloc %d returned a live uop twice", i)
		}
		seen[u] = true
	}
	if a.allocated != uint64(3*uopChunkSize+5) {
		t.Fatalf("allocated = %d", a.allocated)
	}
}

// --- micro-benchmarks for the scheduling hot paths ---

func BenchmarkArenaAlloc(b *testing.B) {
	var a uopArena
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := a.alloc()
		u.seq = uint64(i)
		if len(a.chunks) >= 1024 {
			// A machine releases its slabs at end of Run; emulate that so
			// the benchmark doesn't hoard every slab it ever drew.
			a.release()
			a = uopArena{}
		}
	}
}

func BenchmarkArenaAllocRecycle(b *testing.B) {
	var a uopArena
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := a.alloc()
		u.seq = uint64(i)
		a.recycleFEQ(u)
	}
}

func BenchmarkEventHeapPushPop(b *testing.B) {
	var h eventHeap
	u := &uop{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Keep ~64 events in flight, like a busy completion queue.
		h.push(event{at: uint64(i % 300), u: u})
		if len(h) > 64 {
			h.pop()
		}
	}
}

func BenchmarkInsertBySeq(b *testing.B) {
	q := make([]*uop, 0, 64)
	us := make([]uop, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := &us[i%len(us)]
		u.seq = uint64(i)
		q = insertBySeq(q, u)
		if len(q) == cap(q) {
			q = q[:0]
		}
	}
}
