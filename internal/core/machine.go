package core

import (
	"fmt"
	"time"

	"dmp/internal/bpred"
	"dmp/internal/cache"
	"dmp/internal/conf"
	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/merge"
	"dmp/internal/prog"
)

// Machine is one configured processor instance bound to a program.
// Create with New, run with Run; a Machine is single-use.
type Machine struct {
	cfg  Config
	prog *prog.Program

	// Predictors and memory system.
	pred    bpred.DirPredictor
	confEst conf.Estimator
	btb     *bpred.BTB
	ras     *bpred.RAS
	itc     *bpred.ITC
	hier    *cache.Hierarchy

	// Architectural (committed) state.
	commitRegs [isa.NumRegs]uint64
	dmem       *emu.Memory

	// Oracle and golden-model checker.
	oracle  *fetchOracle
	checker *emu.Emulator

	// Pipeline.
	arena           uopArena
	snapPool        []*fetchSnapshot // salvaged from squashed control uops
	ckptPool        []*ratCheckpoint // salvaged from squashed branches
	cycle           uint64
	seq             uint64
	fetchPC         uint64
	fetchGHR        bpred.GHR
	fetchStallUntil uint64
	fetchHalted     bool
	feq             []*uop // front-end delay queue (fetch -> rename)
	rob             []*uop
	readyQ          []*uop
	events          eventHeap
	sb              []*sbEntry
	replayLoads     []*uop

	// Rename state.
	rat        rat
	dualRats   [2]*rat  // per-stream RATs while a dual-path fork is live
	selPending []selReq // select-uops awaiting insertion bandwidth
	selEp      *episode
	selExitSeq uint64 // seq of the exit.pred that queued the selects

	// Dynamic predication. At most one episode is live (unresolved) at a
	// time; feEp is non-nil only while fetch is inside its predicted or
	// alternate phase.
	preds      *predFile
	feEp       *episode
	live       *episode
	episodes   map[int]*episode
	episodeSeq int

	// Merge-point predictor (nil unless Mode is DMP and CFMSource is
	// dynamic or hybrid). dynDiv/dynCFM are the scratch annotation a
	// predictor hit is synthesized into; it is only alive between
	// divergeFor and enterEpisode, which copies the CFM into the episode.
	merge  *merge.Predictor
	dynDiv prog.Diverge
	dynCFM [1]uint64

	// Dual path.
	streams      [2]streamCtx
	dualActive   bool
	dualEp       *episode
	fetchStream  int
	oracleStream int

	// Wrong-path classification (Figure 1).
	wpOpen     *wpEpisode
	wpWatching []*wpEpisode
	wpPool     []*wpEpisode // finished episodes, PC log and map kept for reuse
	wpNextID   int

	// traceWP, when set, is called on oracle pause/resume (debugging).
	traceWP func(string)

	// Observability (probe.go). probe is nil unless SetProbe attached
	// one; every hook site in the pipeline guards on that. obsSeq hands
	// out unique per-uop ids for the pipetrace (seq is not unique:
	// select-uops share their exit marker's seq).
	probe  *Probe
	obsSeq uint64

	// Termination and run-loop bookkeeping. started/finished make the
	// RunUntil/Finish pair safe to call in any sensible order; wdRetired/
	// wdProgress carry the no-retirement watchdog across RunUntil calls.
	halted     bool
	runErr     error
	retired    uint64
	started    bool
	finished   bool
	startTime  time.Time
	wdRetired  uint64
	wdProgress uint64

	Stats Stats
}

// streamCtx is an independent fetch context for dual-path execution.
type streamCtx struct {
	active bool
	pc     uint64
	ghr    bpred.GHR
	ras    bpred.RASState
	halted bool
	rat    *rat // rename-side RAT for this stream (dual mode only)
}

// selReq is one pending select-uop insertion.
type selReq struct {
	reg     isa.Reg
	fromCP2 ratEntry
	fromRAT ratEntry
}

// wpEpisode tracks one wrong-path fetch episode for control-independence
// classification.
type wpEpisode struct {
	id        int
	pcs       []uint64       // wrong-path PCs in fetch order
	firstSeen map[uint64]int // pc -> first index in pcs
	watchLeft int
	split     int // index where control-independence starts (-1 unknown)
}

// New builds a machine for p under cfg. The program must already carry
// diverge annotations if a predication mode is selected (run
// profile.Run first).
func New(p *prog.Program, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws, err := newWarmState(cfg)
	if err != nil {
		return nil, err
	}
	m := newWith(p, cfg, &ws)

	m.dmem = emu.NewMemory()
	for addr, val := range p.Data {
		m.dmem.Write(addr, val)
	}
	m.commitRegs[isa.SP] = p.StackBase

	m.oracle = newFetchOracle(p)
	if cfg.CheckRetirement {
		m.checker = emu.New(p)
	}
	m.fetchPC = p.Entry
	m.rat.e[isa.SP] = ratEntry{val: p.StackBase}
	return m, nil
}

// newWith builds the machine around an existing learned-state complement
// (cfg must already be validated, ws must come from newWarmState(cfg) or
// a Warmer under the same cfg). The caller finishes architectural setup:
// New starts at the program entry; NewFromCheckpointWarm transplants a
// checkpoint.
func newWith(p *prog.Program, cfg Config, ws *WarmState) *Machine {
	m := &Machine{cfg: cfg, prog: p}
	m.pred = ws.pred
	m.confEst = ws.confEst
	m.btb = ws.btb
	m.ras = ws.ras
	m.itc = ws.itc
	m.hier = ws.hier
	m.merge = ws.merge
	m.fetchGHR = ws.ghr
	m.preds = newPredFile()
	m.episodes = map[int]*episode{}
	return m
}

// Run simulates until the program halts or a run limit is reached, and
// returns the statistics. A golden-model divergence returns an error.
func (m *Machine) Run() (*Stats, error) {
	m.RunUntil(m.cfg.MaxInsts) //nolint:errcheck // Finish reports runErr
	return m.Finish()
}

// startRun marks the machine running and records the wall-clock start
// (first call only; RunUntil may be called repeatedly).
func (m *Machine) startRun() {
	if m.started {
		return
	}
	m.started = true
	m.startTime = time.Now() //dmp:allow nondeterminism -- feeds only WallSeconds, excluded from golden tables
}

// RunUntil advances the simulation until total retired program
// instructions reach n (0 = no target), the program halts, MaxCycles
// trips, or an error stops the run. It may be called repeatedly with
// growing targets; Stats.Cycles and Stats.FetchedUops are refreshed on
// return, so value snapshots of m.Stats between calls compose with
// Stats.Delta (how the sampling driver carves out a detailed interval
// after an unmeasured pipeline-fill ramp). Call Finish after the last
// RunUntil to finalize the run.
func (m *Machine) RunUntil(n uint64) (*Stats, error) {
	m.startRun()
	for !m.halted && m.runErr == nil {
		if m.cfg.MaxCycles != 0 && m.cycle >= m.cfg.MaxCycles {
			break
		}
		if n != 0 && m.Stats.RetiredInsts >= n {
			break
		}
		m.retireStage()
		m.completeStage()
		m.issueStage()
		m.renameStage()
		m.fetchStage()
		m.cycle++
		if m.probe != nil {
			m.probeTick()
		}

		// Deadlock watchdog: a correct machine always retires something
		// within a bounded number of cycles (the worst chain is a memory
		// miss under a full window).
		if m.Stats.RetiredInsts != m.wdRetired {
			m.wdRetired = m.Stats.RetiredInsts
			m.wdProgress = m.cycle
		} else if m.cycle-m.wdProgress > 100_000 {
			m.runErr = fmt.Errorf("core: no retirement for 100000 cycles at cycle %d (pc head=%s)", m.cycle, m.headDesc())
		}
	}
	m.Stats.Cycles = m.cycle
	m.Stats.FetchedUops = m.arena.allocated
	return &m.Stats, m.runErr
}

// Finish finalizes a run started with Run or RunUntil: wall-clock
// accounting, wrong-path episode flush, merge-predictor counters, probe
// completion, and arena release. The pipeline is permanently stopped
// afterwards — no uop will be dereferenced again, so the slabs can go
// back to the shared pool. Idempotent.
func (m *Machine) Finish() (*Stats, error) {
	if !m.finished {
		m.finished = true
		m.Stats.Cycles = m.cycle
		m.Stats.FetchedUops = m.arena.allocated
		if !m.startTime.IsZero() {
			m.Stats.WallSeconds = time.Since(m.startTime).Seconds() //dmp:allow nondeterminism -- WallSeconds is excluded from golden tables
		}
		m.flushWPAll()
		if m.merge != nil {
			mc := m.merge.Counts()
			m.Stats.MergeEvictions = mc.Evictions
			m.Stats.MergeTrainings = mc.Trainings
		}
		if m.probe != nil {
			m.probeDone()
		}
		m.arena.release()
	}
	if m.runErr != nil {
		return &m.Stats, m.runErr
	}
	return &m.Stats, nil
}

func (m *Machine) headDesc() string {
	if len(m.rob) == 0 {
		return "<empty rob>"
	}
	h := m.rob[0]
	d := fmt.Sprintf("seq=%d pc=%d %v kind=%v issued=%v done=%v inReady=%v inReplay=%v predID=%d",
		h.seq, h.pc, h.inst, h.kind, h.issued, h.done, h.inReady, h.inReplay, h.predID)
	d += fmt.Sprintf(" src1={r=%v v=%d p=%d} src2={r=%v v=%d p=%d} src3={r=%v p=%d}",
		h.src1.ready, h.src1.val, h.src1.producer,
		h.src2.ready, h.src2.val, h.src2.producer,
		h.src3.ready, h.src3.producer)
	if h.kind == kindSelect {
		d += fmt.Sprintf(" selPred=%d known=%v", h.selPred, m.preds.known(h.selPred))
	}
	return d
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// CommittedReg returns an architectural register value at the current
// retirement point (tests compare against the functional emulator).
func (m *Machine) CommittedReg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return m.commitRegs[r]
}

// CommittedMem returns a committed data-memory word.
func (m *Machine) CommittedMem(addr uint64) uint64 { return m.dmem.Read(addr) }

// nextSeq allocates a fetch-order sequence number.
func (m *Machine) nextSeq() uint64 {
	m.seq++
	return m.seq
}

// --- event heap: uops ordered by completion cycle ---

type event struct {
	at uint64
	u  *uop
}

// eventHeap is a typed binary min-heap on event.at with direct push/pop
// methods — no interface{} boxing and no virtual Less/Swap calls on the
// completeStage hot path. The sift logic mirrors container/heap exactly
// so equal-cycle events pop in the same order they always did.
type eventHeap []event

// push adds an event and sifts it up.
func (h *eventHeap) push(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].at <= s[i].at {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

// pop removes and returns the earliest event. The heap must be non-empty.
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	e := s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && s[r].at < s[l].at {
			j = r
		}
		if s[i].at <= s[j].at {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	*h = s
	return e
}

func (m *Machine) schedule(u *uop, at uint64) {
	m.events.push(event{at: at, u: u})
}

// enqueueReady puts a uop on the ready queue if it is fully ready and not
// already issued, queued, or squashed. The queue is kept ordered oldest
// first (the select policy) by inserting from the tail: uops become ready
// nearly in age order, so the insertion point is almost always the end and
// the per-cycle full sort this replaces is avoided entirely. Ties (select
// uops share the exit marker's seq) keep arrival order.
func (m *Machine) enqueueReady(u *uop) {
	if u.squashed || u.issued || u.inReady || !u.renamed {
		return
	}
	if !u.srcReady() {
		return
	}
	if u.kind == kindSelect && !m.preds.known(u.selPred) {
		return
	}
	u.inReady = true
	m.readyQ = insertBySeq(m.readyQ, u)
}

// insertBySeq inserts u into the seq-ascending slice q, shifting from the
// tail. Equal seqs place u after the existing entries (stable).
func insertBySeq(q []*uop, u *uop) []*uop {
	q = append(q, u)
	i := len(q) - 1
	for i > 0 && q[i-1].seq > u.seq {
		q[i] = q[i-1]
		i--
	}
	q[i] = u
	return q
}
