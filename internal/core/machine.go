package core

import (
	"container/heap"
	"fmt"
	"sort"

	"dmp/internal/bpred"
	"dmp/internal/cache"
	"dmp/internal/conf"
	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Machine is one configured processor instance bound to a program.
// Create with New, run with Run; a Machine is single-use.
type Machine struct {
	cfg  Config
	prog *prog.Program

	// Predictors and memory system.
	pred    bpred.DirPredictor
	confEst conf.Estimator
	btb     *bpred.BTB
	ras     *bpred.RAS
	itc     *bpred.ITC
	hier    *cache.Hierarchy

	// Architectural (committed) state.
	commitRegs [isa.NumRegs]uint64
	dmem       *emu.Memory

	// Oracle and golden-model checker.
	oracle  *fetchOracle
	checker *emu.Emulator

	// Pipeline.
	cycle           uint64
	seq             uint64
	fetchPC         uint64
	fetchGHR        bpred.GHR
	fetchStallUntil uint64
	fetchHalted     bool
	feq             []*uop // front-end delay queue (fetch -> rename)
	rob             []*uop
	readyQ          []*uop
	events          eventHeap
	sb              []*sbEntry
	replayLoads     []*uop

	// Rename state.
	rat        rat
	dualRats   [2]*rat  // per-stream RATs while a dual-path fork is live
	selPending []selReq // select-uops awaiting insertion bandwidth
	selEp      *episode
	selExitSeq uint64 // seq of the exit.pred that queued the selects

	// Dynamic predication. At most one episode is live (unresolved) at a
	// time; feEp is non-nil only while fetch is inside its predicted or
	// alternate phase.
	preds      *predFile
	feEp       *episode
	live       *episode
	episodes   map[int]*episode
	episodeSeq int

	// Dual path.
	streams      [2]streamCtx
	dualActive   bool
	dualEp       *episode
	fetchStream  int
	oracleStream int

	// Wrong-path classification (Figure 1).
	wpOpen     *wpEpisode
	wpWatching []*wpEpisode
	wpNextID   int

	// traceWP, when set, is called on oracle pause/resume (debugging).
	traceWP func(string)

	// Termination.
	halted  bool
	runErr  error
	retired uint64

	Stats Stats
}

// streamCtx is an independent fetch context for dual-path execution.
type streamCtx struct {
	active bool
	pc     uint64
	ghr    bpred.GHR
	ras    bpred.RASState
	halted bool
	rat    *rat // rename-side RAT for this stream (dual mode only)
}

// selReq is one pending select-uop insertion.
type selReq struct {
	reg     isa.Reg
	fromCP2 ratEntry
	fromRAT ratEntry
}

// wpEpisode tracks one wrong-path fetch episode for control-independence
// classification.
type wpEpisode struct {
	id        int
	pcs       []uint64       // wrong-path PCs in fetch order
	firstSeen map[uint64]int // pc -> first index in pcs
	watchLeft int
	split     int // index where control-independence starts (-1 unknown)
}

// New builds a machine for p under cfg. The program must already carry
// diverge annotations if a predication mode is selected (run
// profile.Run first).
func New(p *prog.Program, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, prog: p}

	switch cfg.PredictorName {
	case "", "perceptron":
		m.pred = bpred.NewPerceptron(bpred.DefaultPerceptronConfig())
	case "gshare":
		m.pred = bpred.NewGShare(16, 14)
	case "bimodal":
		m.pred = bpred.NewBimodal(16)
	case "hybrid":
		m.pred = bpred.NewHybrid(14, 12)
	}
	switch cfg.ConfidenceName {
	case "", "jrs":
		m.confEst = conf.NewJRS(conf.DefaultJRSConfig())
	case "perfect":
		m.confEst = conf.Perfect{}
	case "always-low":
		m.confEst = conf.AlwaysLow{}
	case "never-low":
		m.confEst = conf.NeverLow{}
	}
	m.btb = bpred.NewBTB(4096, 4)
	m.ras = bpred.NewRAS(64)
	m.itc = bpred.NewITC(16)
	m.hier = cache.NewHierarchy(cache.DefaultHierarchyConfig())

	m.dmem = emu.NewMemory()
	for addr, val := range p.Data {
		m.dmem.Write(addr, val)
	}
	m.commitRegs[isa.SP] = p.StackBase

	m.oracle = newFetchOracle(p)
	if cfg.CheckRetirement {
		m.checker = emu.New(p)
	}
	m.preds = newPredFile()
	m.episodes = map[int]*episode{}
	m.fetchPC = p.Entry
	for r := range m.rat.e {
		m.rat.e[r] = ratEntry{val: 0}
	}
	m.rat.e[isa.SP] = ratEntry{val: p.StackBase}
	return m, nil
}

// Run simulates until the program halts or a run limit is reached, and
// returns the statistics. A golden-model divergence returns an error.
func (m *Machine) Run() (*Stats, error) {
	lastRetired := uint64(0)
	lastProgress := uint64(0)
	for !m.halted && m.runErr == nil {
		if m.cfg.MaxCycles != 0 && m.cycle >= m.cfg.MaxCycles {
			break
		}
		if m.cfg.MaxInsts != 0 && m.Stats.RetiredInsts >= m.cfg.MaxInsts {
			break
		}
		m.retireStage()
		m.completeStage()
		m.issueStage()
		m.renameStage()
		m.fetchStage()
		m.cycle++

		// Deadlock watchdog: a correct machine always retires something
		// within a bounded number of cycles (the worst chain is a memory
		// miss under a full window).
		if m.Stats.RetiredInsts != lastRetired {
			lastRetired = m.Stats.RetiredInsts
			lastProgress = m.cycle
		} else if m.cycle-lastProgress > 100_000 {
			m.runErr = fmt.Errorf("core: no retirement for 100000 cycles at cycle %d (pc head=%s)", m.cycle, m.headDesc())
		}
	}
	m.Stats.Cycles = m.cycle
	m.flushWPAll()
	if m.runErr != nil {
		return &m.Stats, m.runErr
	}
	return &m.Stats, nil
}

func (m *Machine) headDesc() string {
	if len(m.rob) == 0 {
		return "<empty rob>"
	}
	h := m.rob[0]
	d := fmt.Sprintf("seq=%d pc=%d %v kind=%v issued=%v done=%v inReady=%v inReplay=%v predID=%d",
		h.seq, h.pc, h.inst, h.kind, h.issued, h.done, h.inReady, h.inReplay, h.predID)
	d += fmt.Sprintf(" src1={r=%v v=%d p=%d} src2={r=%v v=%d p=%d} src3={r=%v p=%d}",
		h.src1.ready, h.src1.val, h.src1.producer,
		h.src2.ready, h.src2.val, h.src2.producer,
		h.src3.ready, h.src3.producer)
	if h.kind == kindSelect {
		d += fmt.Sprintf(" selPred=%d known=%v", h.selPred, m.preds.known(h.selPred))
	}
	return d
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// CommittedReg returns an architectural register value at the current
// retirement point (tests compare against the functional emulator).
func (m *Machine) CommittedReg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return m.commitRegs[r]
}

// CommittedMem returns a committed data-memory word.
func (m *Machine) CommittedMem(addr uint64) uint64 { return m.dmem.Read(addr) }

// nextSeq allocates a fetch-order sequence number.
func (m *Machine) nextSeq() uint64 {
	m.seq++
	return m.seq
}

// --- event heap: uops ordered by completion cycle ---

type event struct {
	at uint64
	u  *uop
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (m *Machine) schedule(u *uop, at uint64) {
	heap.Push(&m.events, event{at: at, u: u})
}

// enqueueReady puts a uop on the ready queue if it is fully ready and not
// already issued, queued, or squashed.
func (m *Machine) enqueueReady(u *uop) {
	if u.squashed || u.issued || u.inReady || !u.renamed {
		return
	}
	if !u.srcReady() {
		return
	}
	if u.kind == kindSelect && !m.preds.known(u.selPred) {
		return
	}
	u.inReady = true
	m.readyQ = append(m.readyQ, u)
}

// sortReady orders the ready queue oldest first (the select policy).
func (m *Machine) sortReady() {
	sort.Slice(m.readyQ, func(i, j int) bool { return m.readyQ[i].seq < m.readyQ[j].seq })
}
