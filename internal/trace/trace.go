// Package trace records and replays branch traces: the standard
// trace-driven methodology for evaluating branch predictors and
// confidence estimators without re-running the timing simulator. A trace
// is the sequence of (pc, taken) outcomes of every conditional branch a
// program executes, in order.
//
// The binary format is a 16-byte header ("DMPBRTR1", count) followed by
// one 9-byte record per branch (pc uint64 little-endian, taken byte).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dmp/internal/bpred"
	"dmp/internal/conf"
	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Record is one conditional branch outcome.
type Record struct {
	PC    uint64
	Taken bool
}

// Trace is an in-memory branch trace.
type Trace struct {
	Records []Record
	// Insts is the number of program instructions the trace covers
	// (for MPKI computation).
	Insts uint64
}

var magic = [8]byte{'D', 'M', 'P', 'B', 'R', 'T', 'R', '1'}

// Collect runs the program on the functional emulator and records every
// conditional branch, up to max instructions (0 = to completion).
func Collect(p *prog.Program, max uint64) (*Trace, error) {
	t := &Trace{}
	e := emu.New(p)
	err := e.RunFunc(max, func(s emu.Step) bool {
		if s.Inst.Op == isa.BR {
			t.Records = append(t.Records, Record{PC: s.PC, Taken: s.Taken})
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("trace: collect: %w", err)
	}
	t.Insts = e.Count
	return t, nil
}

// Write serialises the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(t.Records)))
	binary.LittleEndian.PutUint64(hdr[8:], t.Insts)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [9]byte
	for _, r := range t.Records {
		binary.LittleEndian.PutUint64(rec[0:], r.PC)
		rec[8] = 0
		if r.Taken {
			rec[8] = 1
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	const maxRecords = 1 << 30
	if n > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	t := &Trace{
		Records: make([]Record, n),
		Insts:   binary.LittleEndian.Uint64(hdr[8:]),
	}
	var rec [9]byte
	for i := range t.Records {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		t.Records[i] = Record{
			PC:    binary.LittleEndian.Uint64(rec[0:]),
			Taken: rec[8] != 0,
		}
	}
	return t, nil
}

// Result summarises a predictor's behaviour on a trace.
type Result struct {
	Predictor   string
	Branches    uint64
	Mispredicts uint64
	// MPKI uses the trace's instruction count.
	MPKI float64
}

// Accuracy returns the prediction accuracy in [0,1].
func (r Result) Accuracy() float64 {
	if r.Branches == 0 {
		return 0
	}
	return 1 - float64(r.Mispredicts)/float64(r.Branches)
}

// Evaluate replays the trace through a direction predictor, training at
// every branch (the trace-driven equivalent of retirement-time updates
// with an in-order front end).
func Evaluate(t *Trace, p bpred.DirPredictor) Result {
	var hist bpred.GHR
	res := Result{Predictor: p.Name(), Branches: uint64(len(t.Records))}
	for _, r := range t.Records {
		if p.Predict(r.PC, hist) != r.Taken {
			res.Mispredicts++
		}
		p.Update(r.PC, hist, r.Taken)
		hist = hist.Push(r.Taken)
	}
	if t.Insts > 0 {
		res.MPKI = 1000 * float64(res.Mispredicts) / float64(t.Insts)
	}
	return res
}

// ConfidenceResult summarises a confidence estimator on a trace under a
// given predictor: how well low-confidence flags align with actual
// mispredictions (the quantity that decides cases 1 vs 2 in Table 1).
type ConfidenceResult struct {
	Estimator string
	// PVN: of branches flagged low-confidence, the fraction actually
	// mispredicted (predictive value of a negative, in JRS terms).
	LowFlags    uint64
	LowCorrect  uint64 // flagged low but predicted correctly (case-1 fuel)
	MissedHighs uint64 // mispredicted but flagged high confidence
	Mispredicts uint64
}

// PVN returns the fraction of low-confidence flags that were real
// mispredictions.
func (c ConfidenceResult) PVN() float64 {
	if c.LowFlags == 0 {
		return 0
	}
	return float64(c.LowFlags-c.LowCorrect) / float64(c.LowFlags)
}

// Coverage returns the fraction of mispredictions that were flagged.
func (c ConfidenceResult) Coverage() float64 {
	if c.Mispredicts == 0 {
		return 0
	}
	return float64(c.Mispredicts-c.MissedHighs) / float64(c.Mispredicts)
}

// EvaluateConfidence replays the trace through a predictor and a
// confidence estimator together.
func EvaluateConfidence(t *Trace, p bpred.DirPredictor, e conf.Estimator) ConfidenceResult {
	var hist bpred.GHR
	res := ConfidenceResult{Estimator: e.Name()}
	for _, r := range t.Records {
		pred := p.Predict(r.PC, hist)
		low := e.LowConfidence(r.PC, hist)
		correct := pred == r.Taken
		if !correct {
			res.Mispredicts++
			if !low {
				res.MissedHighs++
			}
		}
		if low {
			res.LowFlags++
			if correct {
				res.LowCorrect++
			}
		}
		p.Update(r.PC, hist, r.Taken)
		e.Update(r.PC, hist, correct)
		hist = hist.Push(r.Taken)
	}
	return res
}
