package trace

import (
	"bytes"
	"testing"

	"dmp/internal/bpred"
	"dmp/internal/conf"
	"dmp/internal/workload"
)

func collectBench(t *testing.T, name string) *Trace {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: 1})
	tr, err := Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCollectCounts(t *testing.T) {
	tr := collectBench(t, "twolf")
	if len(tr.Records) == 0 || tr.Insts == 0 {
		t.Fatal("empty trace")
	}
	// Every record must be a plausible branch PC with both outcomes
	// represented somewhere in the trace.
	taken, nt := 0, 0
	for _, r := range tr.Records {
		if r.Taken {
			taken++
		} else {
			nt++
		}
	}
	if taken == 0 || nt == 0 {
		t.Errorf("degenerate trace: taken=%d nt=%d", taken, nt)
	}
}

func TestRoundTrip(t *testing.T) {
	tr := collectBench(t, "vpr")
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Insts != tr.Insts || len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip sizes: %d/%d vs %d/%d", got.Insts, len(got.Records), tr.Insts, len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace at all......"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	tr := &Trace{Records: []Record{{PC: 1, Taken: true}}, Insts: 10}
	tr.Write(&buf) //nolint:errcheck
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestEvaluatePredictorsOrdering(t *testing.T) {
	tr := collectBench(t, "crafty")
	perc := Evaluate(tr, bpred.NewPerceptron(bpred.DefaultPerceptronConfig()))
	bim := Evaluate(tr, bpred.NewBimodal(14))
	if perc.Branches != uint64(len(tr.Records)) {
		t.Error("branch count mismatch")
	}
	// The history-based perceptron must beat bimodal on crafty's
	// history-correlated branches.
	if perc.Accuracy() <= bim.Accuracy() {
		t.Errorf("perceptron %.4f <= bimodal %.4f", perc.Accuracy(), bim.Accuracy())
	}
	if perc.MPKI <= 0 {
		t.Error("MPKI not computed")
	}
}

func TestEvaluateMatchesProfilerBallpark(t *testing.T) {
	// Trace-driven perceptron accuracy should land in the same ballpark
	// as the timing simulator's retirement-trained accuracy: spot-check
	// two benchmarks at contrasting predictability.
	easy := Evaluate(collectBench(t, "perlbmk"), bpred.NewPerceptron(bpred.DefaultPerceptronConfig()))
	hard := Evaluate(collectBench(t, "vpr"), bpred.NewPerceptron(bpred.DefaultPerceptronConfig()))
	if easy.Accuracy() < 0.98 {
		t.Errorf("perlbmk accuracy %.4f, want >= 0.98", easy.Accuracy())
	}
	if hard.Accuracy() > 0.92 {
		t.Errorf("vpr accuracy %.4f, want <= 0.92", hard.Accuracy())
	}
}

func TestEvaluateConfidence(t *testing.T) {
	tr := collectBench(t, "twolf")
	res := EvaluateConfidence(tr,
		bpred.NewPerceptron(bpred.DefaultPerceptronConfig()),
		conf.NewJRS(conf.DefaultJRSConfig()))
	if res.Mispredicts == 0 || res.LowFlags == 0 {
		t.Fatalf("degenerate confidence eval: %+v", res)
	}
	if res.PVN() <= 0 || res.PVN() > 1 {
		t.Errorf("PVN %.3f out of range", res.PVN())
	}
	if res.Coverage() <= 0 || res.Coverage() > 1 {
		t.Errorf("coverage %.3f out of range", res.Coverage())
	}
	// JRS must catch most mispredictions (that is its job), at the cost
	// of flagging some correct predictions.
	if res.Coverage() < 0.5 {
		t.Errorf("JRS coverage %.3f suspiciously low", res.Coverage())
	}
}

func TestEvaluateConfidenceExtremes(t *testing.T) {
	tr := collectBench(t, "twolf")
	always := EvaluateConfidence(tr,
		bpred.NewPerceptron(bpred.DefaultPerceptronConfig()), conf.AlwaysLow{})
	if always.Coverage() != 1 {
		t.Errorf("always-low coverage %.3f, want 1", always.Coverage())
	}
	never := EvaluateConfidence(tr,
		bpred.NewPerceptron(bpred.DefaultPerceptronConfig()), conf.NeverLow{})
	if never.LowFlags != 0 {
		t.Error("never-low flagged something")
	}
}

func TestCollectMaxBounds(t *testing.T) {
	w, _ := workload.ByName("mesa")
	p := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: 5})
	tr, err := Collect(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Insts > 5000 {
		t.Errorf("collected %d insts, cap 5000", tr.Insts)
	}
}
