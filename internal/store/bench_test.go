package store

import (
	"strconv"
	"testing"
)

// BenchmarkStoreGet measures a warm-store hit from disk: open, read,
// envelope decode, checksum verify, strict payload decode, digest
// cross-check. This is the latency a daemon restart pays per result
// instead of re-simulating.
func BenchmarkStoreGet(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	d, err := s.Put(testMeta("mcf"), testStats())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(d); !ok {
			b.Fatal("miss on a written entry")
		}
	}
}

// BenchmarkStorePut measures persisting one result: marshal, checksum,
// temp-file write, atomic rename, index append.
func BenchmarkStorePut(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	m := testMeta("mcf")
	st := testStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WorkloadHash = strconv.Itoa(i) // distinct key per iteration
		if _, err := s.Put(m, st); err != nil {
			b.Fatal(err)
		}
	}
}
