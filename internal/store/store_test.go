package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dmp/internal/core"
)

func sumHex(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

func testMeta(bench string) Meta {
	return Meta{Bench: bench, Scale: 1, Check: true,
		Config: core.EnhancedDMPConfig().Canonical(), WorkloadHash: "w-" + bench}
}

func testStats() *core.Stats {
	return &core.Stats{RetiredInsts: 12345, Cycles: 6789, WallSeconds: 1.5}
}

func mustPut(t *testing.T, s *Store, m Meta, st *core.Stats) string {
	t.Helper()
	d, err := s.Put(m, st)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, want := testMeta("mcf"), testStats()
	d := mustPut(t, s, m, want)
	got, ok := s.Get(d)
	if !ok {
		t.Fatal("Get missed a just-written entry")
	}
	if *got != *want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if ds := s.Digests(); len(ds) != 1 || ds[0] != d {
		t.Fatalf("Digests = %v, want [%s]", ds, d)
	}
}

func TestDigestSeparatesVariants(t *testing.T) {
	base := testMeta("mcf")
	seen := map[string]string{base.Digest(): "base"}
	for name, m := range map[string]func(Meta) Meta{
		"scale":    func(m Meta) Meta { m.Scale = 2; return m },
		"check":    func(m Meta) Meta { m.Check = false; return m },
		"loops":    func(m Meta) Meta { m.Loops = true; return m },
		"bench":    func(m Meta) Meta { m.Bench = "gcc"; return m },
		"workload": func(m Meta) Meta { m.WorkloadHash = "other"; return m },
		"config":   func(m Meta) Meta { m.Config = core.DefaultConfig().Canonical(); return m },
	} {
		d := m(base).Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[d] = name
	}
	if base.Digest() != testMeta("mcf").Digest() {
		t.Fatal("digest is not deterministic")
	}
}

// TestTruncatedValueDegradesToMiss pins the first corruption path: a
// value file cut short (crash mid-write would be caught by the rename
// protocol, but disks and copies can still truncate) reads as a miss
// and the file is removed so the slot heals.
func TestTruncatedValueDegradesToMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	d := mustPut(t, s, testMeta("mcf"), testStats())
	path := s.objectPath(d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(d); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("truncated entry was not removed")
	}
	// The slot heals: a re-Put serves again.
	mustPut(t, s, testMeta("mcf"), testStats())
	if _, ok := s.Get(d); !ok {
		t.Fatal("re-Put after corruption did not heal the slot")
	}
}

// TestChecksumMismatchDegradesToMiss flips payload bytes under an
// intact envelope: the checksum, not JSON well-formedness, must catch
// it.
func TestChecksumMismatchDegradesToMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	d := mustPut(t, s, testMeta("gcc"), testStats())
	path := s.objectPath(d)
	data, _ := os.ReadFile(path)
	// Corrupt a digit inside the payload's numbers, keeping valid JSON.
	mut := strings.Replace(string(data), "12345", "12845", 1)
	if mut == string(data) {
		t.Fatal("test setup: payload value not found")
	}
	if err := os.WriteFile(path, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(d); ok {
		t.Fatal("checksum-mismatched entry served as a hit")
	}
}

func TestVersionSkewDegradesToMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	d := mustPut(t, s, testMeta("vpr"), testStats())
	path := s.objectPath(d)
	data, _ := os.ReadFile(path)
	var env map[string]any
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env["version"] = FormatVersion + 1
	out, _ := json.Marshal(env)
	os.WriteFile(path, out, 0o644)
	if _, ok := s.Get(d); ok {
		t.Fatal("future-version entry served as a hit")
	}
}

// TestUnknownPayloadFieldDegradesToMiss stands in for schema drift the
// digest fingerprint cannot catch alone (an entry hand-edited or from
// a divergent build): unknown fields fail the strict decode.
func TestUnknownPayloadFieldDegradesToMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	d := mustPut(t, s, testMeta("gap"), testStats())
	path := s.objectPath(d)
	data, _ := os.ReadFile(path)
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	pl := strings.Replace(string(env.Payload), `{"meta"`, `{"not_a_field":1,"meta"`, 1)
	// Re-seal with a valid checksum so only the strict decode can
	// object.
	rewritten, err := json.Marshal(struct {
		Version int             `json:"version"`
		Sum     string          `json:"sum"`
		Payload json.RawMessage `json:"payload"`
	}{FormatVersion, sumHex([]byte(pl)), json.RawMessage(pl)})
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(path, rewritten, 0o644)
	if _, ok := s.Get(d); ok {
		t.Fatal("entry with unknown payload fields served as a hit")
	}
}

// TestMisfiledObjectDegradesToMiss renames a valid object under another
// key's digest: content addressing must refuse to serve it.
func TestMisfiledObjectDegradesToMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	d := mustPut(t, s, testMeta("mcf"), testStats())
	other := testMeta("gcc").Digest()
	otherPath := s.objectPath(other)
	os.MkdirAll(filepath.Dir(otherPath), 0o755)
	data, _ := os.ReadFile(s.objectPath(d))
	os.WriteFile(otherPath, data, 0o644)
	if _, ok := s.Get(other); ok {
		t.Fatal("object served under a digest that does not match its meta")
	}
}

// TestConcurrentWritersSameKey races many writers of one key: the
// rename protocol means every interleaving leaves a whole, valid file.
func TestConcurrentWritersSameKey(t *testing.T) {
	s, _ := Open(t.TempDir())
	m, st := testMeta("twolf"), testStats()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Put(m, st); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, ok := s.Get(m.Digest())
	if !ok || *got != *st {
		t.Fatalf("after concurrent writes: got %+v ok=%v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 deduped entry", s.Len())
	}
}

// TestSecondProcessReadsWhileFirstWrites simulates cross-process
// sharing: a second Store over the same directory must see completed
// writes (reads go to disk) and must read an in-progress write — the
// temp file — as a miss.
func TestSecondProcessReadsWhileFirstWrites(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir)
	r, _ := Open(dir) // the "second process"
	m, st := testMeta("parser"), testStats()
	d := m.Digest()

	// In-progress write: only the temp file exists. Reader misses.
	objDir := filepath.Dir(w.objectPath(d))
	os.MkdirAll(objDir, 0o755)
	tmp := filepath.Join(objDir, d+".012345.tmp")
	os.WriteFile(tmp, []byte(`{"version":1,"sum":"`), 0o644)
	if _, ok := r.Get(d); ok {
		t.Fatal("reader served an in-progress (temp) write")
	}

	// Completed write by the first process: the second sees it without
	// reopening.
	mustPut(t, w, m, st)
	got, ok := r.Get(d)
	if !ok || *got != *st {
		t.Fatalf("reader missed the other process's completed write: %+v ok=%v", got, ok)
	}

	// A third Open drops the abandoned temp file.
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("Open left the abandoned temp file in place")
	}
}

// TestOpenRecovery covers the crash-recovery matrix: torn index tail,
// index lines pointing at missing objects, orphaned valid objects
// (crash between rename and index append), and orphaned corrupt
// objects.
func TestOpenRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	d1 := mustPut(t, s, testMeta("mcf"), testStats())
	d2 := mustPut(t, s, testMeta("gcc"), testStats())

	// Orphan d2 from the index and tear the tail: keep d1's line, then
	// garbage.
	idx, _ := os.ReadFile(filepath.Join(dir, "index.jsonl"))
	lines := strings.SplitN(string(idx), "\n", 2)
	torn := lines[0] + "\n" + `{"digest":"missing-object","meta":{}}` + "\n" + `{"dig`
	os.WriteFile(filepath.Join(dir, "index.jsonl"), []byte(torn), 0o644)

	// Drop an orphaned corrupt object next to the valid ones.
	badDigest := testMeta("bad").Digest()
	badPath := s.objectPath(badDigest)
	os.MkdirAll(filepath.Dir(badPath), 0o755)
	os.WriteFile(badPath, []byte("not json"), 0o644)

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(d1); !ok {
		t.Fatal("recovery lost an indexed entry")
	}
	if _, ok := s2.Get(d2); !ok {
		t.Fatal("recovery did not adopt the orphaned valid object")
	}
	if _, ok := s2.Meta(d2); !ok {
		t.Fatal("adopted orphan missing from the recovered inventory")
	}
	if s2.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2", s2.Len())
	}
	if _, err := os.Stat(badPath); !os.IsNotExist(err) {
		t.Fatal("recovery kept a corrupt orphan")
	}
}
