// Package store is a content-addressed on-disk result store: the
// persistent half of the scheduler's result cache (internal/sched's
// Backing). Entries are keyed by a digest of everything that determines
// a simulation's outcome — the canonical machine configuration, the
// benchmark/scale/checker/annotation-variant tuple, and a hash of the
// workload program itself — and hold versioned, checksummed
// JSON-serialized core.Stats.
//
// Durability contract: a reader may never observe a torn or corrupt
// entry as valid Stats. Every failure mode — truncated value file,
// checksum mismatch, format-version skew, schema drift, a crash between
// write and rename, a second process reading while the first writes —
// degrades to a cache miss (and the offending file is removed), never
// to poisoned numbers. The pieces that make that hold:
//
//   - values are written to a private temp file and atomically renamed
//     into place, so a reader sees either nothing or whole bytes;
//   - the envelope carries a format version and a SHA-256 of the
//     payload, so truncation and bit rot fail closed;
//   - the payload decodes with DisallowUnknownFields, and the digest
//     itself covers a reflected fingerprint of core.Stats's field set,
//     so a schema change (field added, renamed, retyped) changes every
//     key and old entries simply become unreachable rather than
//     decoding into the wrong shape;
//   - Open drops leftover *.tmp files and reconciles the index against
//     the objects actually on disk (torn index lines are skipped,
//     orphaned objects are adopted or deleted).
//
// Layout under the store directory:
//
//	objects/<digest[:2]>/<digest>.json   one entry per unique simulation
//	index.jsonl                          advisory inventory, one line per entry
//
// The index is an inventory for humans and for fast Open; reads go
// straight to the object files, so several processes may share one
// store directory (writers via atomic rename — last identical write
// wins — and readers never consult another process's in-memory state).
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"

	"dmp/internal/core"
)

// FormatVersion is the on-disk envelope version. Bump it when the
// envelope or payload framing changes incompatibly; old entries then
// read as misses and are rewritten on the next computation.
const FormatVersion = 1

// statsSchema fingerprints core.Stats's field names and types. It is
// folded into every digest so that a Stats schema change invalidates
// the whole store by construction: an old entry could otherwise decode
// "successfully" with a missing field silently zeroed.
var statsSchema = func() string {
	t := reflect.TypeOf(core.Stats{})
	h := sha256.New()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		fmt.Fprintf(h, "%s %s\n", f.Name, f.Type.String())
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}()

// Meta identifies one simulation: the store-side mirror of sched.Key
// with the program pinned by content hash instead of by name alone (a
// workload generator change must not serve stale results).
type Meta struct {
	Bench string `json:"bench"`
	Scale int    `json:"scale"`
	Check bool   `json:"check"`
	Loops bool   `json:"loops"`
	// Config must be canonical (core.Config.Canonical) so equivalent
	// configurations share one entry.
	Config core.Config `json:"config"`
	// WorkloadHash is prog.Program.Hash() of the annotated program the
	// simulation ran.
	WorkloadHash string `json:"workload_hash"`
}

// Digest returns the entry's content address: SHA-256 over the format
// version, the Stats schema fingerprint, and the JSON encoding of m
// (struct field order is fixed, so the encoding is deterministic).
func (m Meta) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "dmp-store/%d/%s\n", FormatVersion, statsSchema)
	enc, err := json.Marshal(m)
	if err != nil {
		// core.Config and the scalar fields always marshal; a failure
		// here is a programming error, not a runtime condition.
		panic(fmt.Sprintf("store: marshal Meta: %v", err))
	}
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}

// envelope is the on-disk framing: version, payload checksum, payload.
type envelope struct {
	Version int             `json:"version"`
	Sum     string          `json:"sum"` // SHA-256 hex of the payload bytes
	Payload json.RawMessage `json:"payload"`
}

// payload is the checksummed content.
type payload struct {
	Meta  Meta       `json:"meta"`
	Stats core.Stats `json:"stats"`
}

// indexLine is one advisory inventory record.
type indexLine struct {
	Digest string `json:"digest"`
	Meta   Meta   `json:"meta"`
}

// Store is one directory of results. Safe for concurrent use within a
// process and for multiple processes sharing the directory.
type Store struct {
	dir string

	mu  sync.Mutex
	idx map[string]Meta // digest -> meta, this process's view
}

// Open opens (creating if needed) a store directory and runs crash
// recovery: leftover temp files from interrupted writes are removed,
// torn index lines are dropped, and objects missing from the index are
// verified and adopted (or deleted if corrupt).
func Open(dir string) (*Store, error) {
	objects := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objects, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, idx: map[string]Meta{}}

	// Writes go temp-file -> rename, so any surviving *.tmp is an
	// interrupted write: unreadable by design, deleted on sight.
	var orphans []string
	err := filepath.WalkDir(objects, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			os.Remove(path)
			return nil
		}
		if strings.HasSuffix(path, ".json") {
			orphans = append(orphans, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan objects: %w", err)
	}

	// Load the index, tolerating a torn tail (a crash mid-append leaves
	// a partial last line; everything before it is still good).
	if f, err := os.Open(s.indexPath()); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			var ln indexLine
			if json.Unmarshal(sc.Bytes(), &ln) != nil || ln.Digest == "" {
				continue
			}
			if _, err := os.Stat(s.objectPath(ln.Digest)); err == nil {
				s.idx[ln.Digest] = ln.Meta
			}
		}
		f.Close()
	}

	// Adopt objects the index missed (crash between rename and index
	// append, or an index written by another process): verify each; a
	// corrupt or misfiled object is deleted rather than trusted.
	for _, path := range orphans {
		digest := strings.TrimSuffix(filepath.Base(path), ".json")
		if _, ok := s.idx[digest]; ok {
			continue
		}
		_, meta, err := readObject(path)
		if err != nil || meta.Digest() != digest {
			os.Remove(path)
			continue
		}
		s.idx[digest] = meta
		s.appendIndex(indexLine{Digest: digest, Meta: meta})
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.jsonl") }

func (s *Store) objectPath(digest string) string {
	shard := "xx"
	if len(digest) >= 2 {
		shard = digest[:2]
	}
	return filepath.Join(s.dir, "objects", shard, digest+".json")
}

// Get returns the Stats stored under digest, or (nil, false) on any
// miss or doubt. Corrupt files (truncation, checksum mismatch, version
// skew, undecodable or misfiled payload) are deleted so the slot heals
// on the next Put. Reads go to disk, not to this process's index, so a
// Get observes other processes' completed writes.
func (s *Store) Get(digest string) (*core.Stats, bool) {
	path := s.objectPath(digest)
	st, meta, err := readObject(path)
	if err != nil {
		if !os.IsNotExist(err) {
			os.Remove(path)
		}
		return nil, false
	}
	if meta.Digest() != digest {
		// The payload belongs to a different key: a misfiled object can
		// only come from corruption or tampering; never serve it.
		os.Remove(path)
		return nil, false
	}
	return st, true
}

// Load is the Meta-level read: digest computed for the caller.
func (s *Store) Load(m Meta) (*core.Stats, bool) {
	return s.Get(m.Digest())
}

// Put writes an entry, returning its digest. The write is atomic
// (private temp file, fsync-free rename): concurrent writers of the
// same key race benignly — the payload bytes are identical because the
// simulator is deterministic, and the last rename wins.
func (s *Store) Put(m Meta, st *core.Stats) (string, error) {
	digest := m.Digest()
	pl, err := json.Marshal(payload{Meta: m, Stats: *st})
	if err != nil {
		return "", fmt.Errorf("store: marshal payload: %w", err)
	}
	sum := sha256.Sum256(pl)
	env, err := json.Marshal(envelope{Version: FormatVersion, Sum: hex.EncodeToString(sum[:]), Payload: pl})
	if err != nil {
		return "", fmt.Errorf("store: marshal envelope: %w", err)
	}
	path := s.objectPath(digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), digest+".*.tmp")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(append(env, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: write %s: %w", digest[:12], errFirst(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: publish %s: %w", digest[:12], err)
	}
	s.mu.Lock()
	_, known := s.idx[digest]
	if !known {
		s.idx[digest] = m
	}
	s.mu.Unlock()
	if !known {
		s.appendIndex(indexLine{Digest: digest, Meta: m})
	}
	return digest, nil
}

// appendIndex appends one inventory line. The index is advisory (reads
// never depend on it), so append errors are swallowed: the object is
// already durable and Open's orphan scan re-adopts it.
func (s *Store) appendIndex(ln indexLine) {
	data, err := json.Marshal(ln)
	if err != nil {
		return
	}
	f, err := os.OpenFile(s.indexPath(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	f.Write(append(data, '\n'))
	f.Close()
}

// Len returns the number of entries in this process's view.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Digests returns this process's view of the stored digests, sorted.
func (s *Store) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.idx))
	for d := range s.idx { //dmp:allow nondeterminism -- keys are sorted below
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Meta returns the recorded Meta for a digest in this process's view.
func (s *Store) Meta(digest string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.idx[digest]
	return m, ok
}

// readObject reads and fully validates one object file.
func readObject(path string) (*core.Stats, Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Meta{}, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, Meta{}, fmt.Errorf("store: envelope: %w", err)
	}
	if env.Version != FormatVersion {
		return nil, Meta{}, fmt.Errorf("store: format version %d, want %d", env.Version, FormatVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return nil, Meta{}, fmt.Errorf("store: payload checksum mismatch")
	}
	dec := json.NewDecoder(bytes.NewReader(env.Payload))
	dec.DisallowUnknownFields()
	var p payload
	if err := dec.Decode(&p); err != nil {
		return nil, Meta{}, fmt.Errorf("store: payload: %w", err)
	}
	return &p.Stats, p.Meta, nil
}

func errFirst(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
