package gen

import (
	"fmt"

	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Memory layout of generated programs. The init table seeds registers
// from data memory (so DataSeed changes machine state without touching
// code), the scratch region takes the workload's load/store traffic, and
// the result word receives a final store so every run ends with a
// memory-visible artifact.
const (
	initBase    = uint64(0x6000)
	scratchBase = int64(0x7000)
	resultAddr  = int64(0x900)
)

// cfmRef names a candidate CFM point either by emitted label (resolved
// after Build) or by a PC offset from the candidate branch.
type cfmRef struct {
	label string
	rel   uint64 // used when label == ""
}

// candidate is a structurally derived diverge-annotation candidate:
// a branch PC plus CFM points the emitter knows both paths share.
type candidate struct {
	br   uint64
	cfms []cfmRef
}

type loopCtx struct {
	latch, exit string
}

type emitter struct {
	b     *prog.Builder
	o     Options
	nFns  int
	label int
	depth int // live loop nesting; indexes loopRegs
	loops []loopCtx
	cands []candidate
}

func (e *emitter) fresh(prefix string) string {
	e.label++
	return fmt.Sprintf("%s%d", prefix, e.label)
}

// New grows the tree for o and emits it. The result is deterministic in
// o: equal Options yield byte-identical programs.
func New(o Options) *Generated {
	o = o.norm()
	root, fns := grow(o)
	g := &Generated{Opts: o, Root: root, Fns: fns}
	g.Prog = Emit(root, fns, o)
	return g
}

// Generate is the convenience one-call form of New.
func Generate(o Options) *prog.Program { return New(o).Prog }

// Reemit re-emits the receiver's tree under different options (data
// seed, iteration count, annotation toggle). The code image is identical
// to Emit of the same tree under the original options.
func (g *Generated) Reemit(o Options) *prog.Program {
	return Emit(g.Root, g.Fns, o.norm())
}

// Emit lowers a tree to a program: called functions first, then the
// driver loop wrapping the body. Every construction preserves the lint
// invariants (see the package comment); when o.Annotate is set the
// candidate annotations collected during emission are synthesized onto
// the program (annotate.go).
func Emit(root *Node, fns []*Fn, o Options) *prog.Program {
	o = o.norm()
	e := &emitter{b: prog.NewBuilder(), o: o, nFns: len(fns)}
	b := e.b
	b.Entry("main")

	// Only functions the tree actually calls are emitted: unreachable
	// code is a lint warning, and a warning is a generator bug.
	called := map[int]bool{}
	collectCalls(root, len(fns), called)
	for i, f := range fns {
		if !called[i] || f.Leaf {
			continue
		}
		// A non-leaf keeps its leaf callee alive.
		if f.Callee >= 0 && f.Callee < len(fns) {
			called[f.Callee] = true
		}
	}
	for i, f := range fns {
		if !called[i] {
			continue
		}
		b.Label(fnName(i))
		lr := newRng(f.Body.Seed)
		if f.Leaf {
			e.stmts(f.Body.N, lr)
			b.Ret()
			continue
		}
		b.Subi(isa.SP, isa.SP, 8)
		b.St(isa.LR, isa.SP, 0)
		e.stmts(f.Body.N, lr)
		b.Call(fnName(f.Callee))
		b.Ld(isa.LR, isa.SP, 0)
		b.Addi(isa.SP, isa.SP, 8)
		b.Ret()
	}

	b.Label("main")
	// Register init: every scratch register and the PRNG register load
	// their starting value from the DataSeed-controlled init table, so
	// reseeding data perturbs every branch outcome and address stream
	// while the code image stays fixed.
	dr := newRng(o.DataSeed)
	initRegs := append([]isa.Reg{regRng}, scratchRegs...)
	for i, r := range initRegs {
		addr := initBase + uint64(i)*8
		b.Ld(r, isa.Zero, int64(addr))
		val := dr.next()
		if r == regRng {
			val |= 1 // odd PRNG state
		}
		b.Word(addr, val)
	}
	b.Li(regIter, int64(o.Iters))
	b.Label("outer")
	e.scramble()
	e.seq(root)
	b.Subi(regIter, regIter, 1)
	b.Br(isa.GT, regIter, isa.Zero, "outer")
	b.St(scratchRegs[0], isa.Zero, resultAddr)
	b.Halt()

	// Sprinkle initial scratch-region words so early loads see data.
	for i := 0; i < 24; i++ {
		b.Word(uint64(scratchBase)+uint64(dr.n(128))*8, dr.next())
	}

	p := b.MustBuild()
	if o.Annotate {
		synthesize(p, e.cands, o)
	}
	return p
}

func fnName(i int) string { return fmt.Sprintf("fn%d", i) }

func collectCalls(n *Node, nFns int, called map[int]bool) {
	if n.Kind == KCall && n.N >= 0 && n.N < nFns {
		called[n.N] = true
	}
	for _, k := range n.Kids {
		collectCalls(k, nFns, called)
	}
}

func (e *emitter) seq(n *Node) {
	for _, k := range n.Kids {
		e.node(k)
	}
}

func (e *emitter) node(n *Node) {
	switch n.Kind {
	case KStmts:
		e.stmts(n.N, newRng(n.Seed))
	case KSeq:
		e.seq(n)
	case KHammock:
		e.hammock(n)
	case KLoop:
		e.loop(n)
	case KCall:
		// A stale callee index (shrink product) emits nothing.
		if n.N >= 0 && n.N < e.nFns {
			e.b.Call(fnName(n.N))
		}
	case KComplex:
		e.complex(n)
	case KBreak, KContinue:
		e.loopJump(n)
	}
}

// cond computes a branch condition into the temporary register: an
// extracted bit group of the PRNG register, giving each branch site its
// own (biased or balanced) outcome stream.
func (e *emitter) cond(lr *rng) {
	bit := int64(10 + lr.n(40))
	e.b.Shri(regTmp, regRng, bit)
	e.b.Andi(regTmp, regTmp, int64(1<<uint(lr.n(3))-1)|1)
}

// scramble advances the PRNG register (an LCG step).
func (e *emitter) scramble() {
	e.b.Muli(regRng, regRng, 6364136223846793005)
	e.b.Addi(regRng, regRng, 1442695040888963407)
}

func (e *emitter) reg(lr *rng) isa.Reg {
	return scratchRegs[lr.n(len(scratchRegs))]
}

// stmts emits n straight-line instructions: ALU traffic over the scratch
// registers, masked scratch-region loads/stores, and PRNG scrambles.
// Nothing here branches; all control flow comes from structure nodes.
func (e *emitter) stmts(n int, lr *rng) {
	b := e.b
	for i := 0; i < n; i++ {
		switch lr.n(9) {
		case 0:
			b.Add(e.reg(lr), e.reg(lr), e.reg(lr))
		case 1:
			b.Xor(e.reg(lr), e.reg(lr), e.reg(lr))
		case 2:
			b.Addi(e.reg(lr), e.reg(lr), int64(lr.n(100)-50))
		case 3:
			b.Muli(e.reg(lr), e.reg(lr), int64(lr.n(7)+1))
		case 4:
			b.Shri(e.reg(lr), e.reg(lr), int64(lr.n(8)))
		case 5:
			b.Sub(e.reg(lr), e.reg(lr), e.reg(lr))
		case 6: // masked scratch-memory access
			b.Andi(regTmp, e.reg(lr), 127)
			b.Shli(regTmp, regTmp, 3)
			if lr.coin(50) {
				b.St(e.reg(lr), regTmp, scratchBase)
			} else {
				b.Ld(e.reg(lr), regTmp, scratchBase)
			}
		case 7:
			e.scramble()
		case 8:
			b.Slt(e.reg(lr), e.reg(lr), e.reg(lr))
		}
	}
}

// hammock emits if / if-else. The join label is a structural CFM
// candidate; occasionally the next instruction after the join is
// recorded as a second (alternate) CFM point, exercising the
// multiple-CFM enhancement.
func (e *emitter) hammock(n *Node) {
	b := e.b
	lr := newRng(n.Seed)
	then := e.fresh("t")
	join := e.fresh("j")
	e.cond(lr)
	br := b.Br(isa.EQ, regTmp, isa.Zero, then)
	e.seq(n.Kids[0])
	if n.Else && len(n.Kids) > 1 {
		b.Jmp(join)
		b.Label(then)
		e.seq(n.Kids[1])
		b.Label(join)
	} else {
		b.Label(then)
	}
	joinPC := b.Here()
	cfms := []cfmRef{{rel: joinPC - br}}
	if lr.coin(25) {
		cfms = append(cfms, cfmRef{rel: joinPC - br + 1})
	}
	e.cands = append(e.cands, candidate{br: br, cfms: cfms})
}

// loop emits a bounded counter loop with its latch at the bottom. The
// backward latch branch is a loop-diverge candidate (Section 2.7.4);
// its CFM must be past the fall-through (lint's cfm-degenerate rule),
// so the first both-path point two past the branch is recorded.
func (e *emitter) loop(n *Node) {
	b := e.b
	if e.depth >= len(loopRegs) {
		// No counter register free (over-deep shrink products): inline
		// one iteration instead of looping.
		e.seq(n.Kids[0])
		return
	}
	rc := loopRegs[e.depth]
	head := e.fresh("lh")
	latch := e.fresh("ll")
	exit := e.fresh("lx")
	b.Li(rc, int64(n.N))
	b.Label(head)
	e.depth++
	e.loops = append(e.loops, loopCtx{latch: latch, exit: exit})
	e.seq(n.Kids[0])
	e.loops = e.loops[:len(e.loops)-1]
	e.depth--
	b.Label(latch)
	b.Subi(rc, rc, 1)
	br := b.Br(isa.GT, rc, isa.Zero, head)
	b.Label(exit)
	e.cands = append(e.cands, candidate{br: br, cfms: []cfmRef{{rel: 2}}})
}

// loopJump emits a conditional break (to the innermost loop's exit) or
// continue (to its latch). Outside any loop — a shape the shrinker can
// produce by hoisting — it emits nothing. Both are forward diverge
// candidates: break reconverges at the loop exit, continue at the latch.
func (e *emitter) loopJump(n *Node) {
	if len(e.loops) == 0 {
		return
	}
	ctx := e.loops[len(e.loops)-1]
	lr := newRng(n.Seed)
	e.cond(lr)
	target := ctx.exit
	if n.Kind == KContinue {
		target = ctx.latch
	}
	br := e.b.Br(isa.NE, regTmp, isa.Zero, target)
	e.cands = append(e.cands, candidate{br: br, cfms: []cfmRef{{label: target}}})
}

// complex emits the paper's "other complex" shape: two branches whose
// regions overlap without proper nesting. Taken flow of the first
// branch lands mid-way through the fall-through flow of the second:
//
//	cond; BR  → A
//	S1
//	cond; BR  → C
//	S2
//	A:  S3
//	C:  S4
//
// The first branch reconverges at A (its taken target, also reachable
// down the fall path through S2), the second at C — merge points that
// interleave rather than nest.
func (e *emitter) complex(n *Node) {
	b := e.b
	lr := newRng(n.Seed)
	la := e.fresh("ca")
	lc := e.fresh("cc")
	e.cond(lr)
	br1 := b.Br(isa.EQ, regTmp, isa.Zero, la)
	e.stmts(1+lr.n(2), lr)
	e.cond(lr)
	br2 := b.Br(isa.NE, regTmp, isa.Zero, lc)
	e.stmts(1+lr.n(2), lr)
	b.Label(la)
	e.stmts(1+lr.n(2), lr)
	b.Label(lc)
	e.stmts(1, lr)
	e.cands = append(e.cands,
		candidate{br: br1, cfms: []cfmRef{{label: la}}},
		candidate{br: br2, cfms: []cfmRef{{label: lc}}})
}
