package gen

import (
	"dmp/internal/prog"
	"dmp/internal/telemetry"
)

// mShrinkIters counts accepted shrink mutations across all Shrink calls
// — with dmp_diff_divergences_total it says how much minimization work
// each finding cost. Host-side telemetry only.
var mShrinkIters = telemetry.NewCounter("dmp_gen_shrink_iterations_total",
	"accepted shrink mutations across all minimizations")

// Failure decides whether a program still exhibits the behavior being
// minimized (a lint diagnostic, an emu/core divergence, a crash...).
// It must be deterministic; Shrink calls it many times.
type Failure func(*prog.Program) bool

// Shrink greedily minimizes g while fails keeps holding: it halves the
// driver-loop trip count, deletes subtrees, hoists structure bodies into
// their parents, degrades composite nodes to single statements, and
// trims statement runs — accepting a mutation only if the re-emitted
// program still fails. Every emitted intermediate goes through the same
// emitter as the original, so shrinking preserves lint-cleanliness by
// construction.
//
// Shrink is deterministic (the mutation order is a pure function of the
// tree) and converges: each accepted mutation strictly reduces the tree
// measure, and it stops when no single mutation reproduces the failure.
// It returns the minimized Generated and the number of accepted
// mutations. If the input does not fail, it is returned unchanged.
func Shrink(g *Generated, fails Failure) (*Generated, int) {
	opts := g.Opts
	if !failsOn(fails, g.Root, g.Fns, opts) {
		return g, 0
	}
	cur := g.Root.clone()
	steps := 0

	// Dynamic length first: halving the driver trips is the cheapest
	// large reduction and makes every later predicate call faster.
	for opts.Iters > 1 {
		half := opts
		half.Iters = opts.Iters / 2
		if !failsOn(fails, cur, g.Fns, half) {
			break
		}
		opts = half
		steps++
	}

	for {
		improved := false
		for _, m := range mutations(cur) {
			next := cur.clone()
			if !m.apply(next) {
				continue
			}
			if measure(next) >= measure(cur) {
				continue
			}
			if failsOn(fails, next, g.Fns, opts) {
				cur = next
				steps++
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}

	out := &Generated{Opts: opts, Root: cur, Fns: g.Fns}
	out.Prog = Emit(cur, g.Fns, opts)
	mShrinkIters.Add(uint64(steps))
	return out, steps
}

// failsOn re-emits and runs the predicate, absorbing emitter panics from
// degenerate mutation products (those mutations are simply rejected).
func failsOn(fails Failure, root *Node, fns []*Fn, o Options) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return fails(Emit(root, fns, o))
}

// measure is the strictly decreasing shrink metric: one unit per node
// plus its statement/trip count.
func measure(n *Node) int {
	total := 1
	if n.N > 0 {
		total += n.N
	}
	for _, k := range n.Kids {
		total += measure(k)
	}
	return total
}

// mutation is one candidate tree edit, addressed by child-index path.
type mutation struct {
	path []int
	op   mutOp
}

type mutOp uint8

const (
	opDelete   mutOp = iota // remove the node from its parent
	opHoist0                // replace the node with Kids[0]
	opHoist1                // replace the node with Kids[1]
	opDropElse              // turn if-else into plain if
	opHalveN                // halve the statement/trip count
)

// mutations enumerates candidate edits in deterministic tree order,
// coarsest first (whole-subtree deletions before count trims) so the
// greedy pass removes the most per predicate call.
func mutations(root *Node) []mutation {
	var coarse, fine []mutation
	var walk func(n *Node, path []int)
	walk = func(n *Node, path []int) {
		if len(path) > 0 { // never delete the root
			coarse = append(coarse, mutation{clonePath(path), opDelete})
		}
		if len(n.Kids) > 0 && n.Kind != KSeq {
			fine = append(fine, mutation{clonePath(path), opHoist0})
			if len(n.Kids) > 1 {
				fine = append(fine, mutation{clonePath(path), opHoist1})
			}
		}
		if n.Kind == KHammock && n.Else {
			fine = append(fine, mutation{clonePath(path), opDropElse})
		}
		if n.N > 1 {
			fine = append(fine, mutation{clonePath(path), opHalveN})
		}
		for i, k := range n.Kids {
			walk(k, append(path, i))
		}
	}
	walk(root, nil)
	return append(coarse, fine...)
}

func clonePath(p []int) []int {
	c := make([]int, len(p))
	copy(c, p)
	return c
}

// apply performs the edit on a fresh clone; it reports false when the
// path or operation no longer applies.
func (m mutation) apply(root *Node) bool {
	if len(m.path) == 0 {
		return m.applyTo(nil, root, -1)
	}
	parent := root
	for _, i := range m.path[:len(m.path)-1] {
		if i >= len(parent.Kids) {
			return false
		}
		parent = parent.Kids[i]
	}
	i := m.path[len(m.path)-1]
	if i >= len(parent.Kids) {
		return false
	}
	return m.applyTo(parent, parent.Kids[i], i)
}

func (m mutation) applyTo(parent, n *Node, idx int) bool {
	switch m.op {
	case opDelete:
		if parent == nil {
			return false
		}
		parent.Kids = append(parent.Kids[:idx], parent.Kids[idx+1:]...)
		return true
	case opHoist0, opHoist1:
		k := 0
		if m.op == opHoist1 {
			k = 1
		}
		if k >= len(n.Kids) {
			return false
		}
		if parent == nil {
			return false
		}
		parent.Kids[idx] = n.Kids[k]
		return true
	case opDropElse:
		if n.Kind != KHammock || !n.Else {
			return false
		}
		n.Else = false
		n.Kids = n.Kids[:1]
		return true
	case opHalveN:
		if n.N <= 1 {
			return false
		}
		n.N /= 2
		return true
	}
	return false
}
