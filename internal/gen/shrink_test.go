package gen

import (
	"testing"

	"dmp/internal/emu"
	"dmp/internal/lint"
	"dmp/internal/prog"
)

// hasLoopDiverge is a representative "divergence class" predicate: the
// program carries at least one annotated loop-diverge branch and runs
// long enough to matter. Deterministic and cheap, like the stage-based
// predicates cmd/dmpgen minimizes real divergences with.
func hasLoopDiverge(p *prog.Program) bool {
	found := false
	for _, pc := range p.DivergePCs() {
		if p.DivergeAt(pc).Loop {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	e := emu.New(p)
	if _, err := e.Run(1_000_000); err != nil || !e.Halted {
		return false
	}
	return e.Count > 400
}

// findShrinkable returns a seed whose generated program satisfies the
// predicate with a comfortably large tree.
func findShrinkable(t *testing.T) *Generated {
	t.Helper()
	for seed := uint64(1); seed <= 200; seed++ {
		g := New(DefaultOptions(seed))
		if hasLoopDiverge(g.Prog) && g.Root.count() > 10 {
			return g
		}
	}
	t.Fatal("no seed in 1..200 satisfies the shrink predicate")
	return nil
}

// TestShrinkConvergence: the minimized program still reproduces the
// divergence class, is strictly smaller, stays lint-clean, and is a
// fixpoint (re-shrinking accepts zero further mutations).
func TestShrinkConvergence(t *testing.T) {
	g := findShrinkable(t)
	min, steps := Shrink(g, hasLoopDiverge)
	if steps == 0 {
		t.Fatalf("shrinker accepted no mutation on a %d-node tree", g.Root.count())
	}
	if !hasLoopDiverge(min.Prog) {
		t.Fatalf("minimized program no longer reproduces the divergence class")
	}
	if got, was := measure(min.Root)+min.Opts.Iters, measure(g.Root)+g.Opts.Iters; got >= was {
		t.Fatalf("shrink did not reduce: %d -> %d", was, got)
	}
	if ds := lint.Check(min.Prog, lint.Options{}); len(ds) > 0 {
		t.Fatalf("minimized program is not lint-clean:\n%s", ds)
	}
	// Fixpoint: shrinking the minimum again changes nothing.
	again, steps2 := Shrink(min, hasLoopDiverge)
	if steps2 != 0 {
		t.Fatalf("second shrink accepted %d more mutations — not converged", steps2)
	}
	if again.Prog.Disassemble() != min.Prog.Disassemble() {
		t.Fatalf("second shrink changed the program")
	}
}

// TestShrinkDeterministic: two independent shrinks of the same input
// produce byte-identical minimized programs.
func TestShrinkDeterministic(t *testing.T) {
	g := findShrinkable(t)
	a, stepsA := Shrink(g, hasLoopDiverge)
	// Rebuild the input from scratch to rule out shared-state effects.
	g2 := New(g.Opts)
	b, stepsB := Shrink(g2, hasLoopDiverge)
	if stepsA != stepsB {
		t.Fatalf("step counts differ: %d vs %d", stepsA, stepsB)
	}
	if a.Prog.Disassemble() != b.Prog.Disassemble() {
		t.Fatalf("minimized programs differ:\n--- a\n%s\n--- b\n%s",
			a.Prog.Disassemble(), b.Prog.Disassemble())
	}
	if a.Opts.Iters != b.Opts.Iters {
		t.Fatalf("minimized trip counts differ: %d vs %d", a.Opts.Iters, b.Opts.Iters)
	}
}

// TestShrinkNonFailingInputUnchanged: a program that never satisfied the
// predicate is returned untouched with zero steps.
func TestShrinkNonFailingInputUnchanged(t *testing.T) {
	g := New(DefaultOptions(3))
	min, steps := Shrink(g, func(*prog.Program) bool { return false })
	if steps != 0 || min != g {
		t.Fatalf("shrink of a non-failing input did something: steps=%d", steps)
	}
}
