package gen

import (
	"dmp/internal/lint"
	"dmp/internal/prog"
)

// synthesize turns the emitter's structural candidates into diverge
// annotations, using lint as the legality oracle rather than
// re-implementing its rules: a candidate is attached only if the
// per-branch oracle accepts it with zero diagnostics (warnings
// included), and any survivor that then draws a cross-branch
// nested-region diagnostic is dropped until the full annotation check is
// silent. The synthesizer therefore cannot emit an annotation lint would
// flag — if it ever does, one of the two is wrong, which is exactly the
// bidirectional contract the differential harness pins.
func synthesize(p *prog.Program, cands []candidate, o Options) {
	cfg := prog.BuildCFG(p)
	oracle := lint.NewAnnotationOracle(p, cfg)
	lopts := lint.Options{MaxDist: o.MaxDist}

	for _, c := range cands {
		d := &prog.Diverge{ExitThreshold: 0}
		for _, ref := range c.cfms {
			pc := c.br + ref.rel
			if ref.label != "" {
				pc = p.PC(ref.label)
			}
			d.CFMs = append(d.CFMs, pc)
		}
		if len(d.CFMs) == 0 || c.br >= uint64(len(p.Code)) {
			continue
		}
		// Mirror the profiler's classification and loop marking: class
		// from the CFG's own simple-hammock detector, loop flag from the
		// branch direction (lint checks both for consistency).
		d.Class = prog.ClassComplexDiverge
		if _, simple := cfg.SimpleHammockJoin(c.br); simple {
			d.Class = prog.ClassSimpleHammock
		}
		d.Loop = p.Code[c.br].Target <= c.br
		// Vary the early-exit threshold from the branch site so the
		// population exercises both the machine default and explicit
		// values (always within lint's bound).
		tr := newRng(c.br ^ o.Seed)
		if tr.coin(30) {
			d.ExitThreshold = 8 + tr.n(100)
		}

		if ds := oracle.Check(c.br, d, lopts); len(ds) > 0 {
			// Retry with the primary CFM alone (alternates can overrun
			// the distance bound the primary satisfies), then give up:
			// an unannotatable branch is still interesting control flow.
			if len(d.CFMs) == 1 {
				continue
			}
			d.CFMs = d.CFMs[:1]
			if ds := oracle.Check(c.br, d, lopts); len(ds) > 0 {
				continue
			}
		}
		p.MarkDiverge(c.br, d)
	}

	// Cross-branch fixpoint: the oracle validates branches in isolation,
	// so improperly-overlapping regions (nested-region warnings) only
	// surface once the full set is attached. Drop offenders until the
	// program is diagnostic-clean. Each round deletes at least one
	// annotation, so this terminates.
	for len(p.Diverge) > 0 {
		ds := lint.Annotations(p, cfg, lopts)
		if len(ds) == 0 {
			return
		}
		dropped := false
		for _, dg := range ds {
			if _, ok := p.Diverge[dg.PC]; ok {
				delete(p.Diverge, dg.PC)
				dropped = true
			}
		}
		if !dropped {
			// Diagnostics not attributable to an annotation we hold:
			// nothing more to drop (cannot happen for oracle-approved
			// candidates, but do not loop forever if it does).
			return
		}
	}
}
