package diff

import "dmp/internal/telemetry"

// Telemetry for the differential harness: dmpgen's sweep rate
// (seeds/sec from the verified counter over a run's wall time) and the
// divergence tally. Host-side only; verification outcomes are
// unaffected.
var (
	mSeedsVerified = telemetry.NewCounter("dmp_diff_seeds_verified_total",
		"generated programs swept through the full differential matrix without a finding")
	mDivergences = telemetry.NewCounter("dmp_diff_divergences_total",
		"differential findings across all stages")
	mVerifySeconds = telemetry.NewHistogram("dmp_diff_verify_seconds",
		"wall time of one program's full differential sweep", telemetry.SecondsBuckets())
)
