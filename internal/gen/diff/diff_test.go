package diff

import (
	"testing"

	"dmp/internal/core"
	"dmp/internal/gen"
	"dmp/internal/prog"
)

// TestDifferentialSweep is the harness end-to-end: lint, emulator, the
// full machine matrix, architectural-state equality.
func TestDifferentialSweep(t *testing.T) {
	n := uint64(30)
	if testing.Short() {
		n = 6
	}
	for seed := uint64(1); seed <= n; seed++ {
		if div := VerifySeed(seed, gen.DefaultOptions(0), DiffOptions{}); div != nil {
			t.Fatalf("differential divergence: %v", div)
		}
	}
}

// TestSampledInvariantSweep runs the sampled-simulation leg on longer
// generated programs.
func TestSampledInvariantSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled sweep is slow")
	}
	base := gen.DefaultOptions(0)
	base.Iters = 400
	// Restrict the exact matrix to one config: the sampled leg is the
	// point here, the full matrix is TestDifferentialSweep's job.
	o := DiffOptions{
		Configs: []NamedConfig{{"enhanced", core.EnhancedDMPConfig()}},
		Sample:  true,
	}
	for seed := uint64(1); seed <= 3; seed++ {
		if div := VerifySeed(seed, base, o); div != nil {
			t.Fatalf("sampled divergence: %v", div)
		}
	}
}

// TestShrinkOnRealPredicate ties the shrinker to the harness the way
// cmd/dmpgen does on a divergence: minimize under a Verify-derived
// predicate (here "still verifies clean", inverted to a failure shape by
// requiring a loop-diverge annotation) and confirm every accepted
// intermediate kept the harness green.
func TestShrinkOnRealPredicate(t *testing.T) {
	if testing.Short() {
		t.Skip("shrink sweep is slow")
	}
	for seed := uint64(1); seed <= 40; seed++ {
		g := gen.New(gen.DefaultOptions(seed))
		loopDiv := false
		for _, pc := range g.Prog.DivergePCs() {
			if g.Prog.DivergeAt(pc).Loop {
				loopDiv = true
				break
			}
		}
		if !loopDiv || len(g.Prog.Code) < 60 {
			continue
		}
		min, _ := gen.Shrink(g, func(p *prog.Program) bool {
			found := false
			for _, pc := range p.DivergePCs() {
				if p.DivergeAt(pc).Loop {
					found = true
					break
				}
			}
			return found && Verify(p, DiffOptions{}) == nil
		})
		if div := Verify(min.Prog, DiffOptions{}); div != nil {
			t.Fatalf("seed %d: minimized program no longer verifies: %v", seed, div)
		}
		return
	}
	t.Skip("no seed in 1..40 has a loop-diverge annotation and a large tree")
}

// FuzzGeneratedDifferential fuzzes the annotated-vs-dynamic CFM
// equivalence on a reduced matrix (the expensive full matrix runs in the
// sweep test and CI).
func FuzzGeneratedDifferential(f *testing.F) {
	for seed := uint64(1); seed <= 4; seed++ {
		f.Add(seed, uint64(12))
	}
	enhDyn := core.EnhancedDMPConfig()
	enhDyn.CFMSource = "dynamic"
	matrix := []NamedConfig{
		{"enhanced", core.EnhancedDMPConfig()},
		{"enh-dynamic", enhDyn},
	}
	f.Fuzz(func(t *testing.T, seed, iters uint64) {
		base := gen.DefaultOptions(0)
		base.Iters = int(iters%60) + 1
		if div := VerifySeed(seed, base, DiffOptions{Configs: matrix}); div != nil {
			t.Fatalf("%v", div)
		}
	})
}
