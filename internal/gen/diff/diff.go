// Package diff is the differential verification harness for generated
// programs: it sweeps internal/gen's lint-clean random programs through
// lint, the golden-model emulator, the full machine-configuration
// matrix, and the sampled-simulation accounting invariants. It lives in
// a subpackage so internal/gen itself (which internal/workload imports)
// does not depend on internal/core.
package diff

import (
	"fmt"
	"time"

	"dmp/internal/core"
	"dmp/internal/emu"
	"dmp/internal/gen"
	"dmp/internal/isa"
	"dmp/internal/lint"
	"dmp/internal/prog"
	"dmp/internal/sample"
	"dmp/internal/telemetry"
)

// Divergence is one differential-harness finding. Stage identifies which
// leg failed:
//
//	lint     — a generated program drew a lint diagnostic (generator bug)
//	emu      — a lint-clean program faulted or failed to halt on the
//	           golden-model emulator (lint-soundness counterexample)
//	machine  — core.New/Run returned an error
//	retired  — retired-instruction count differs from the emulator
//	reg      — a committed architectural register differs
//	mem      — a committed memory word differs
//	sample   — a sampled-run accounting invariant broke
type Divergence struct {
	Seed   uint64 // structure seed (0 when the caller verified a bare program)
	Stage  string
	Config string // machine configuration name, when one was involved
	Detail string
}

func (d *Divergence) Error() string {
	if d.Config != "" {
		return fmt.Sprintf("seed %d: %s [%s]: %s", d.Seed, d.Stage, d.Config, d.Detail)
	}
	return fmt.Sprintf("seed %d: %s: %s", d.Seed, d.Stage, d.Detail)
}

// NamedConfig pairs a machine configuration with a stable name for
// reporting.
type NamedConfig struct {
	Name string
	Cfg  core.Config
}

// DiffConfigs is the default cross-validation matrix: the baseline, the
// paper's DMP variants across all three CFM sources (annotated
// annotations, the runtime merge-point predictor, and hybrid), loop
// diverge on, and the dual-path and DHP machines. Every entry must
// retire the exact architectural state the emulator computes.
func DiffConfigs() []NamedConfig {
	enhDyn := core.EnhancedDMPConfig()
	enhDyn.CFMSource = "dynamic"
	enhHyb := core.EnhancedDMPConfig()
	enhHyb.CFMSource = "hybrid"
	enhLoops := core.EnhancedDMPConfig()
	enhLoops.EnableLoopDiverge = true
	dual := core.DefaultConfig()
	dual.Mode = core.ModeDualPath
	return []NamedConfig{
		{"baseline", core.DefaultConfig()},
		{"dmp", core.DMPConfig()},
		{"enhanced", core.EnhancedDMPConfig()},
		{"enh-dynamic", enhDyn},
		{"enh-hybrid", enhHyb},
		{"enh-loops", enhLoops},
		{"dualpath", dual},
		{"dhp", core.DHPConfig()},
	}
}

// DiffOptions tunes Verify.
type DiffOptions struct {
	// Configs is the machine matrix; nil selects DiffConfigs.
	Configs []NamedConfig
	// MaxSteps bounds the emulator reference run; 0 selects 5M.
	MaxSteps uint64
	// Sample also runs the sampled-simulation leg (enhanced config,
	// small period) and checks its accounting invariants against the
	// exact reference. It is skipped silently when the program is too
	// short to sample at SamplePeriod.
	Sample bool
	// SamplePeriod/SampleInterval override the sampled leg's operating
	// point; 0 selects 1200/200 (scaled for generated program lengths).
	SamplePeriod, SampleInterval uint64
}

func (o DiffOptions) norm() DiffOptions {
	if o.Configs == nil {
		o.Configs = DiffConfigs()
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 5_000_000
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = 1200
	}
	if o.SampleInterval == 0 {
		o.SampleInterval = 200
	}
	return o
}

// Verify sweeps one program through the differential legs: lint (any
// diagnostic at all is a finding), the golden-model emulator (must halt
// cleanly within MaxSteps), every machine configuration in the matrix
// (retired-instruction count, all 32 architectural registers, and every
// touched memory word must match the emulator exactly), and optionally
// the sampled-simulation accounting invariants. It returns nil when
// every leg agrees.
func Verify(p *prog.Program, o DiffOptions) *Divergence {
	o = o.norm()
	t0 := time.Now()
	defer func() { mVerifySeconds.Observe(time.Since(t0).Seconds()) }()
	div := verify(p, o)
	if div == nil {
		mSeedsVerified.Inc()
	} else {
		mDivergences.Inc()
		if tel := telemetry.Active(); tel != nil {
			tel.Feed().Emit(telemetry.Event{Kind: "diff", Name: div.Stage,
				N: mSeedsVerified.Value(), Msg: div.Error()})
		}
	}
	return div
}

// verify is the uninstrumented sweep behind Verify.
func verify(p *prog.Program, o DiffOptions) *Divergence {

	// Leg 1: lint. Generated programs are diagnostic-clean by
	// construction, warnings included.
	if ds := lint.Check(p, lint.Options{}); len(ds) > 0 {
		return &Divergence{Stage: "lint", Detail: fmt.Sprintf("%d diagnostic(s):\n%s", len(ds), ds)}
	}

	// Leg 2: the functional emulator is the reference semantics; a
	// lint-clean program faulting here breaks the soundness contract.
	ref := emu.New(p)
	if _, err := ref.Run(o.MaxSteps); err != nil {
		return &Divergence{Stage: "emu", Detail: err.Error()}
	}
	if !ref.Halted {
		return &Divergence{Stage: "emu", Detail: fmt.Sprintf("did not halt within %d steps", o.MaxSteps)}
	}

	// Leg 3: every machine configuration must retire exactly the
	// emulator's architectural state.
	for _, nc := range o.Configs {
		m, err := core.New(p, nc.Cfg)
		if err != nil {
			return &Divergence{Stage: "machine", Config: nc.Name, Detail: err.Error()}
		}
		st, err := m.Run()
		if err != nil {
			return &Divergence{Stage: "machine", Config: nc.Name, Detail: err.Error()}
		}
		if !st.HaltRetired {
			return &Divergence{Stage: "machine", Config: nc.Name, Detail: "machine did not retire HALT"}
		}
		if st.RetiredInsts != ref.Count {
			return &Divergence{Stage: "retired", Config: nc.Name,
				Detail: fmt.Sprintf("retired %d, emulator %d", st.RetiredInsts, ref.Count)}
		}
		for r := 0; r < isa.NumRegs; r++ {
			if got, want := m.CommittedReg(isa.Reg(r)), ref.Reg(isa.Reg(r)); got != want {
				return &Divergence{Stage: "reg", Config: nc.Name,
					Detail: fmt.Sprintf("r%d = %d, want %d", r, got, want)}
			}
		}
		var memDiv *Divergence
		ref.Mem.Each(func(addr, val uint64) {
			if memDiv != nil {
				return
			}
			if got := m.CommittedMem(addr); got != val {
				memDiv = &Divergence{Stage: "mem", Config: nc.Name,
					Detail: fmt.Sprintf("mem[%#x] = %d, want %d", addr, got, val)}
			}
		})
		if memDiv != nil {
			return memDiv
		}
	}

	// Leg 4 (optional): sampled-vs-exact accounting invariants. The
	// sampled estimator is statistical in IPC but exact in accounting:
	// it must see the true instruction count, extrapolate to exactly the
	// reference retirement, and its detailed-interval sums must tally.
	if o.Sample && ref.Count >= 2048+3*o.SamplePeriod {
		cfg := core.EnhancedDMPConfig()
		cfg.SampleMode = true
		cfg.SamplePeriod = o.SamplePeriod
		cfg.SampleInterval = o.SampleInterval
		cfg.SampleWarmup = 256
		res, err := sample.Run(p, cfg, sample.Options{Sequential: true})
		if err != nil {
			return &Divergence{Stage: "sample", Detail: err.Error()}
		}
		if res.TotalInsts != ref.Count {
			return &Divergence{Stage: "sample",
				Detail: fmt.Sprintf("TotalInsts %d, emulator %d", res.TotalInsts, ref.Count)}
		}
		if res.Extrapolated == nil || res.Extrapolated.RetiredInsts != ref.Count {
			got := uint64(0)
			if res.Extrapolated != nil {
				got = res.Extrapolated.RetiredInsts
			}
			return &Divergence{Stage: "sample",
				Detail: fmt.Sprintf("extrapolated retired %d, emulator %d", got, ref.Count)}
		}
		if !res.Extrapolated.HaltRetired {
			return &Divergence{Stage: "sample", Detail: "extrapolated stats did not retire HALT"}
		}
		if res.K < 1 || res.K != len(res.Intervals) {
			return &Divergence{Stage: "sample",
				Detail: fmt.Sprintf("K=%d but %d intervals", res.K, len(res.Intervals))}
		}
		var ivSum uint64
		for _, iv := range res.Intervals {
			ivSum += iv.Retired
		}
		if res.DetailedRetired != res.PrefixRetired+ivSum {
			return &Divergence{Stage: "sample",
				Detail: fmt.Sprintf("detailed %d != prefix %d + intervals %d",
					res.DetailedRetired, res.PrefixRetired, ivSum)}
		}
	}
	return nil
}

// VerifySeed generates the program for one seed under base (the seed
// overrides base.Seed) and verifies it, stamping the seed into any
// finding so it is replayable with `dmpgen -seed`.
func VerifySeed(seed uint64, base gen.Options, o DiffOptions) *Divergence {
	base.Seed = seed
	base.DataSeed = 0 // derive from seed
	if div := Verify(gen.Generate(base), o); div != nil {
		div.Seed = seed
		return div
	}
	return nil
}
