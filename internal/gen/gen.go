// Package gen is a seeded, deterministic random program generator whose
// output is lint-clean by construction.
//
// The paper's taxonomy (Figure 3) spans simple hammocks, nested diamonds,
// loops with early exits, and "other complex" control flow — shapes the 15
// hand-built workloads only sample. gen grows an abstract syntax tree of
// exactly those shapes (hammock, loop with break/continue, call tree,
// unstructured multi-branch region, straight-line statement runs) and
// emits it through prog.Builder using constructions that respect every
// invariant internal/lint checks: all emitted code is reachable, every
// read register is written first (or architecturally defined), calls keep
// their link register and callees return, every loop is bounded, and the
// last instruction never falls off the code image.
//
// A CFM-annotation synthesizer derives candidate diverge annotations from
// the generated structure (hammock joins, loop latches, break/continue
// reconvergence, complex-region merge labels) and keeps only candidates
// the lint annotation oracle (lint.AnnotationOracle) accepts, then drops
// any survivor that draws a cross-branch nested-region diagnostic — so a
// generated program is diagnostic-clean, warnings included. Any lint
// finding on generated output is therefore a generator bug, and any
// lint-clean generated program that faults the emulator is a counter-
// example to the lint soundness contract: the two artifacts verify each
// other (see diff.go for the full differential harness).
//
// Everything is a pure function of Options: the code image depends only
// on the structure seed and shape knobs, while DataSeed varies the
// initial data memory and register contents without moving a single
// instruction — exactly the train/ref split internal/exp's annotation
// transfer requires. Per-node randomness is stored in the tree, so the
// shrinker (shrink.go) can delete or simplify any subtree and re-emit
// without perturbing its siblings.
package gen

import (
	"dmp/internal/isa"
	"dmp/internal/prog"
)

// Options parameterises one generated program. The zero value of every
// knob selects a default via norm; the feature booleans default to off,
// so use DefaultOptions for the everything-on population.
type Options struct {
	// Seed drives program structure. Two Options with equal Seed and
	// shape knobs emit byte-identical code images regardless of DataSeed.
	Seed uint64
	// DataSeed drives initial data memory and register contents (loaded
	// from data words at startup). 0 derives a stream from Seed.
	DataSeed uint64
	// Iters is the driver-loop trip count: the dynamic-length knob. It
	// changes one LI immediate, never the code layout. Default 24.
	Iters int
	// MaxDepth bounds structural nesting (hammock-in-loop-in-hammock...).
	// Default 3.
	MaxDepth int
	// Stmts is the number of top-level nodes in the driver body.
	// Default 7.
	Stmts int
	// Loops, Calls, Complex enable loop nodes, call-tree nodes, and
	// unstructured multi-branch regions.
	Loops, Calls, Complex bool
	// Annotate runs the CFM-annotation synthesizer over the emitted
	// program (annotate.go), attaching every structurally derived
	// annotation the lint oracle accepts.
	Annotate bool
	// MaxDist is the CFM static-distance bound handed to the lint
	// oracle; 0 selects lint's default (the profiler's 120).
	MaxDist int
}

// DefaultOptions returns the everything-on generator configuration for
// one structure seed.
func DefaultOptions(seed uint64) Options {
	return Options{
		Seed:     seed,
		Loops:    true,
		Calls:    true,
		Complex:  true,
		Annotate: true,
	}
}

func (o Options) norm() Options {
	if o.DataSeed == 0 {
		o.DataSeed = o.Seed ^ 0xd1b54a32d192ed03
	}
	if o.Iters <= 0 {
		o.Iters = 24
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if o.Stmts <= 0 {
		o.Stmts = 7
	}
	return o
}

// rng is splitmix64: tiny, fast, and ours — the generator must not
// depend on math/rand's sequence (dmpvet bans it from simulation
// packages, and this package's output is pinned by golden tests).
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) n(n int) int { return int(r.next() % uint64(n)) }

// coin reports true with probability pct/100.
func (r *rng) coin(pct int) bool { return r.n(100) < pct }

// Kind discriminates AST nodes.
type Kind uint8

const (
	// KStmts is a run of N straight-line instructions.
	KStmts Kind = iota
	// KSeq is a sequence of children.
	KSeq
	// KHammock is an if (one arm) or if-else (two arms, Else set).
	KHammock
	// KLoop is a bounded counter loop of N trips around Kids[0].
	KLoop
	// KCall calls generated function N.
	KCall
	// KComplex is an unstructured two-branch region with overlapping
	// merge points ("other complex" in the paper's taxonomy).
	KComplex
	// KBreak is a conditional early exit from the innermost loop.
	KBreak
	// KContinue is a conditional skip to the innermost loop's latch.
	KContinue
)

func (k Kind) String() string {
	switch k {
	case KStmts:
		return "stmts"
	case KSeq:
		return "seq"
	case KHammock:
		return "hammock"
	case KLoop:
		return "loop"
	case KCall:
		return "call"
	case KComplex:
		return "complex"
	case KBreak:
		return "break"
	case KContinue:
		return "continue"
	}
	return "node?"
}

// Node is one AST node. All node-local randomness (instruction mix,
// condition bits) is frozen into Seed at growth time, so re-emitting a
// mutated tree leaves untouched subtrees byte-identical.
type Node struct {
	Kind Kind
	Kids []*Node
	// N is the statement count (KStmts), trip count (KLoop), or callee
	// index (KCall).
	N int
	// Else marks a two-arm hammock (Kids[1] is the taken arm).
	Else bool
	// Seed is the node-local randomness stream.
	Seed uint64
}

func (n *Node) clone() *Node {
	c := *n
	c.Kids = make([]*Node, len(n.Kids))
	for i, k := range n.Kids {
		c.Kids[i] = k.clone()
	}
	return &c
}

// count returns the number of nodes in the tree.
func (n *Node) count() int {
	total := 1
	for _, k := range n.Kids {
		total += k.count()
	}
	return total
}

// Fn is one generated function. Leaves are straight-line bodies ending
// in RET; non-leaves save LR to the stack around a call to leaf Callee.
type Fn struct {
	Leaf   bool
	Callee int // leaf index called by a non-leaf
	Body   *Node
}

// Generated bundles a grown tree with its emitted program so the
// shrinker and the differential harness can re-emit under modified
// options or a mutated tree.
type Generated struct {
	Opts Options
	Root *Node
	Fns  []*Fn
	Prog *prog.Program
}

// grow builds the function set and driver-body tree for o.Seed.
func grow(o Options) (*Node, []*Fn) {
	r := newRng(o.Seed)
	var fns []*Fn
	if o.Calls {
		nLeaf := 1 + r.n(3)
		for i := 0; i < nLeaf; i++ {
			fns = append(fns, &Fn{Leaf: true, Body: stmtsNode(r, 1+r.n(3))})
		}
		if r.coin(70) {
			fns = append(fns, &Fn{Callee: r.n(nLeaf), Body: stmtsNode(r, 1+r.n(2))})
		}
	}
	root := &Node{Kind: KSeq, Seed: r.next()}
	for i := 0; i < o.Stmts; i++ {
		root.Kids = append(root.Kids, growNode(r, o, 0, 0, len(fns)))
	}
	return root, fns
}

func stmtsNode(r *rng, n int) *Node {
	return &Node{Kind: KStmts, N: n, Seed: r.next()}
}

// growNode picks one node for the given structural depth and loop
// nesting. Loop nesting is bounded separately because each live loop
// holds a dedicated counter register.
func growNode(r *rng, o Options, depth, loopDepth, nFns int) *Node {
	if depth >= o.MaxDepth {
		return stmtsNode(r, 1+r.n(3))
	}
	roll := r.n(100)
	switch {
	case roll < 34:
		return stmtsNode(r, 1+r.n(4))
	case roll < 62:
		h := &Node{Kind: KHammock, Seed: r.next()}
		h.Kids = append(h.Kids, growSeq(r, o, depth+1, loopDepth, nFns))
		if r.coin(50) {
			h.Else = true
			h.Kids = append(h.Kids, growSeq(r, o, depth+1, loopDepth, nFns))
		}
		return h
	case roll < 78 && o.Loops && loopDepth < len(loopRegs):
		l := &Node{Kind: KLoop, N: 1 + r.n(4), Seed: r.next()}
		body := growSeq(r, o, depth+1, loopDepth+1, nFns)
		// Conditional early exit / iteration skip, somewhere in the body.
		if r.coin(40) {
			body.Kids = insertAt(body.Kids, r.n(len(body.Kids)+1),
				&Node{Kind: KBreak, Seed: r.next()})
		}
		if r.coin(30) {
			body.Kids = insertAt(body.Kids, r.n(len(body.Kids)+1),
				&Node{Kind: KContinue, Seed: r.next()})
		}
		l.Kids = []*Node{body}
		return l
	case roll < 88 && o.Calls && nFns > 0:
		return &Node{Kind: KCall, N: r.n(nFns), Seed: r.next()}
	case roll < 96 && o.Complex:
		return &Node{Kind: KComplex, Seed: r.next()}
	default:
		return stmtsNode(r, 1+r.n(2))
	}
}

func growSeq(r *rng, o Options, depth, loopDepth, nFns int) *Node {
	s := &Node{Kind: KSeq, Seed: r.next()}
	n := 1 + r.n(2)
	for i := 0; i < n; i++ {
		s.Kids = append(s.Kids, growNode(r, o, depth, loopDepth, nFns))
	}
	return s
}

func insertAt(kids []*Node, i int, n *Node) []*Node {
	kids = append(kids, nil)
	copy(kids[i+1:], kids[i:])
	kids[i] = n
	return kids
}

// Register assignment. The zero register, SP and LR are architectural;
// everything else is partitioned so no structure can clobber another's
// state: r1 is the PRNG register (branch-condition entropy), r2 the
// driver-loop counter, r3 the condition/address temporary, scratch
// registers carry workload data, and each live loop nesting level owns
// one counter register.
const (
	regRng  = isa.Reg(1)
	regIter = isa.Reg(2)
	regTmp  = isa.Reg(3)
)

var scratchRegs = []isa.Reg{4, 5, 6, 7, 10, 11, 12}

var loopRegs = []isa.Reg{20, 21, 22, 23}
