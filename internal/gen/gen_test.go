package gen

import (
	"fmt"
	"testing"

	"dmp/internal/emu"
	"dmp/internal/lint"
	"dmp/internal/profile"
)

// progPrint renders everything observable about a generated program:
// code (via the disassembler), entry, annotations, and data words.
// Byte-equal renderings mean byte-equal programs.
func progPrint(t *testing.T, g *Generated) string {
	t.Helper()
	p := g.Prog
	s := fmt.Sprintf("entry=%d\n%s", p.Entry, p.Disassemble())
	for _, pc := range p.DivergePCs() {
		d := p.DivergeAt(pc)
		s += fmt.Sprintf("diverge %d: cfms=%v class=%v thr=%d loop=%v\n",
			pc, d.CFMs, d.Class, d.ExitThreshold, d.Loop)
	}
	// Data in sorted order.
	addrs := make([]uint64, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			if addrs[j] < addrs[i] {
				addrs[i], addrs[j] = addrs[j], addrs[i]
			}
		}
	}
	for _, a := range addrs {
		s += fmt.Sprintf("data %#x=%d\n", a, p.Data[a])
	}
	return s
}

// TestGeneratedWorkloadsLintClean is the population-scale generator
// contract: across ≥500 structure seeds, every generated program —
// synthesized annotations included — is completely diagnostic-clean,
// warnings and all. Any diagnostic is a generator bug by definition.
func TestGeneratedWorkloadsLintClean(t *testing.T) {
	n := uint64(500)
	if testing.Short() {
		n = 60
	}
	annotated := 0
	for seed := uint64(1); seed <= n; seed++ {
		p := Generate(DefaultOptions(seed))
		if ds := lint.Check(p, lint.Options{}); len(ds) > 0 {
			t.Fatalf("seed %d: generated program drew %d diagnostic(s):\n%s\n%s",
				seed, len(ds), ds, p.Disassemble())
		}
		annotated += len(p.Diverge)
	}
	if annotated == 0 {
		t.Fatalf("no seed produced any synthesized annotation — the synthesizer is dead")
	}
	t.Logf("%d seeds, %d synthesized annotations", n, annotated)
}

// TestGenerateDeterministic pins byte-identical re-generation: the same
// Options must reproduce the same program, annotations and data
// included, and the tree must carry all randomness (clone + re-emit is
// also identical).
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		o := DefaultOptions(seed)
		a := New(o)
		b := New(o)
		fa, fb := progPrint(t, a), progPrint(t, b)
		if fa != fb {
			t.Fatalf("seed %d: two generations differ:\n--- a\n%s\n--- b\n%s", seed, fa, fb)
		}
		// Re-emit from a cloned tree: node-local seeds must fully
		// determine emission.
		c := &Generated{Opts: o, Root: a.Root.clone(), Fns: a.Fns}
		c.Prog = Emit(c.Root, c.Fns, o)
		if fc := progPrint(t, c); fc != fa {
			t.Fatalf("seed %d: clone re-emit differs", seed)
		}
	}
}

// TestDataSeedMovesOnlyData pins the train/ref contract internal/exp
// depends on: changing DataSeed changes data words (and hence machine
// state) but not one instruction of the code image.
func TestDataSeedMovesOnlyData(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		o := DefaultOptions(seed)
		a := Generate(o)
		o2 := o
		o2.DataSeed = 0xdead0000 + seed
		b := Generate(o2)
		if a.Disassemble() != b.Disassemble() {
			t.Fatalf("seed %d: DataSeed moved the code image", seed)
		}
		if a.Entry != b.Entry {
			t.Fatalf("seed %d: DataSeed moved the entry", seed)
		}
		same := true
		for addr, v := range a.Data {
			if b.Data[addr] != v {
				same = false
				break
			}
		}
		if same {
			t.Errorf("seed %d: different DataSeed produced identical data", seed)
		}
	}
}

// TestItersMovesOnlyOneImmediate: the dynamic-length knob must not move
// code layout (annotation PCs transfer across scales).
func TestItersMovesOnlyOneImmediate(t *testing.T) {
	o := DefaultOptions(7)
	a := Generate(o)
	o2 := o
	o2.Iters = 999
	b := Generate(o2)
	if len(a.Code) != len(b.Code) {
		t.Fatalf("Iters changed code length: %d vs %d", len(a.Code), len(b.Code))
	}
	diff := 0
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("Iters changed %d instructions, want exactly 1 (the LI immediate)", diff)
	}
}

// TestGeneratedFeatureCoverage checks the population actually contains
// the advertised shapes (loops, calls, complex regions, loop-diverge and
// multi-CFM annotations) rather than degenerating to straight-line code.
func TestGeneratedFeatureCoverage(t *testing.T) {
	var loops, calls, complexes, loopDiv, multiCFM, simple, complexClass int
	for seed := uint64(1); seed <= 60; seed++ {
		g := New(DefaultOptions(seed))
		var walk func(n *Node)
		walk = func(n *Node) {
			switch n.Kind {
			case KLoop:
				loops++
			case KCall:
				calls++
			case KComplex:
				complexes++
			}
			for _, k := range n.Kids {
				walk(k)
			}
		}
		walk(g.Root)
		for _, pc := range g.Prog.DivergePCs() {
			d := g.Prog.DivergeAt(pc)
			if d.Loop {
				loopDiv++
			}
			if len(d.CFMs) > 1 {
				multiCFM++
			}
			if d.Class == 1 { // prog.ClassSimpleHammock
				simple++
			} else {
				complexClass++
			}
		}
	}
	for name, n := range map[string]int{
		"loops": loops, "calls": calls, "complex-regions": complexes,
		"loop-diverge-annotations": loopDiv, "multi-cfm-annotations": multiCFM,
		"simple-hammock-annotations": simple, "complex-annotations": complexClass,
	} {
		if n == 0 {
			t.Errorf("population has zero %s", name)
		}
	}
	t.Logf("loops=%d calls=%d complex=%d loopDiv=%d multiCFM=%d simple=%d complexClass=%d",
		loops, calls, complexes, loopDiv, multiCFM, simple, complexClass)
}

// TestGenWorkloadProfileAnnotationsLint mirrors the hand-built suite's
// lint gate on the generated-workload path: an unannotated gen program
// profiled by internal/profile must come out diagnostic-error-free.
func TestGenWorkloadProfileAnnotationsLint(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		o := DefaultOptions(seed)
		o.Annotate = false
		o.Iters = 100
		p := Generate(o)
		popts := profile.DefaultOptions()
		popts.IncludeLoops = seed%2 == 0
		if _, err := profile.Run(p, popts); err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		if ds := lint.Check(p, lint.Options{}); ds.HasErrors() {
			t.Fatalf("seed %d: profiler annotations on generated program fail lint:\n%s", seed, ds.Errors())
		}
	}
}

// FuzzGeneratedLintClean is the native fuzz form of the generator
// contract: any (seed, iters) yields a lint-clean program that halts on
// the emulator.
func FuzzGeneratedLintClean(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed, uint64(24))
	}
	f.Fuzz(func(t *testing.T, seed, iters uint64) {
		o := DefaultOptions(seed)
		o.Iters = int(iters%200) + 1
		p := Generate(o)
		if ds := lint.Check(p, lint.Options{}); len(ds) > 0 {
			t.Fatalf("seed=%d iters=%d: diagnostics:\n%s", seed, o.Iters, ds)
		}
		e := emu.New(p)
		if _, err := e.Run(5_000_000); err != nil {
			t.Fatalf("seed=%d iters=%d: lint-clean program faulted: %v", seed, o.Iters, err)
		}
		if !e.Halted {
			t.Fatalf("seed=%d iters=%d: lint-clean program hit the step cap", seed, o.Iters)
		}
	})
}
