module dmp

go 1.22
