// Sweep: regenerate the paper's sensitivity study (Figure 13) on a chosen
// benchmark — IPC of baseline, DHP and enhanced DMP across window sizes
// and pipeline depths — using the public experiment harness.
//
//	go run ./examples/sweep [-bench twolf] [-scale 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"dmp/internal/exp"
)

func main() {
	bench := flag.String("bench", "twolf", "benchmark to sweep")
	scale := flag.Int("scale", 2, "workload scale")
	flag.Parse()

	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Benchmarks = []string{*bench}

	a, err := exp.Figure13a(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(a.String())
	fmt.Println()

	b, err := exp.Figure13b(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(b.String())
}
