// Quickstart: build a tiny program with an unpredictable hammock, let the
// profiling pass find the diverge branch and its control-flow merge
// point, then run it on the baseline and on the diverge-merge processor
// and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dmp/internal/core"
	"dmp/internal/isa"
	"dmp/internal/profile"
	"dmp/internal/prog"
)

func main() {
	// A loop whose body contains a 50/50 data-dependent if-else hammock
	// followed by control-independent work — the exact shape Figure 3 of
	// the paper motivates.
	b := prog.NewBuilder()
	b.Li(1, 0x2545F4914F6CDD1D) // rng state
	b.Li(2, 30_000)             // iterations
	b.Label("loop")
	b.Muli(1, 1, 6364136223846793005)
	b.Addi(1, 1, 1442695040888963407)
	b.Shri(3, 1, 33)
	b.Andi(3, 3, 1)
	b.Br(isa.NE, 3, isa.Zero, "then") // the hard-to-predict branch
	b.Addi(4, 4, 3)                   // else side
	b.Jmp("join")
	b.Label("then")
	b.Addi(4, 4, 5) // then side
	b.Label("join") // control-flow merge point
	b.Addi(5, 5, 1) // control-independent tail
	b.Subi(2, 2, 1)
	b.Br(isa.GT, 2, isa.Zero, "loop")
	b.Halt()
	p := b.MustBuild()

	// Compiler side: profile to mark diverge branches and CFM points.
	rep, err := profile.Run(p, profile.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profiling result:")
	fmt.Print(rep.String())
	for _, pc := range p.DivergePCs() {
		d := p.DivergeAt(pc)
		fmt.Printf("diverge branch at pc %d (%s), CFM %v, early-exit threshold %d\n",
			pc, d.Class, d.CFMs, d.ExitThreshold)
	}

	// Microarchitecture side: baseline vs. enhanced DMP.
	run := func(name string, cfg core.Config) *core.Stats {
		m, err := core.New(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s IPC %.3f  flushes %6d  mispredicts %6d  episodes %5d\n",
			name, st.IPC(), st.Flushes, st.RetiredMispredicts, st.Episodes)
		return st
	}
	base := run("baseline", core.DefaultConfig())
	dmp := run("enhanced-DMP", core.EnhancedDMPConfig())
	fmt.Printf("\nDMP speedup: %+.1f%% IPC, %.0f%% fewer flushes\n",
		100*(dmp.IPC()/base.IPC()-1),
		100*(1-float64(dmp.Flushes)/float64(base.Flushes)))
}
