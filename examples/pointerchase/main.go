// Pointerchase: the mcf-style scenario from the paper's motivation — a
// memory-bound pointer chase whose per-node hammock mispredicts half the
// time. With a 512-entry window, every flush throws away a window full of
// control-independent (and expensive, cache-missing) work; dynamic
// predication keeps it.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	"dmp/internal/core"
	"dmp/internal/exp"
)

func main() {
	p, err := exp.Annotated("mcf", 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mcf-like pointer chase: per-node simple hammock, >L2 footprint")
	fmt.Println()

	type pt struct {
		name string
		cfg  core.Config
	}
	cfgs := []pt{
		{"baseline", core.DefaultConfig()},
		{"DHP", core.DHPConfig()},
		{"basic DMP", core.DMPConfig()},
		{"enhanced DMP", core.EnhancedDMPConfig()},
	}
	var base *core.Stats
	for _, c := range cfgs {
		m, err := core.New(p, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		imp := ""
		if base == nil {
			base = st
		} else {
			imp = fmt.Sprintf("  (%+.1f%% IPC)", 100*(st.IPC()/base.IPC()-1))
		}
		fmt.Printf("%-13s IPC %.3f  flushes %6d  L1D misses %7d%s\n",
			c.name, st.IPC(), st.Flushes, st.L1DMisses, imp)
	}

	// Window sensitivity: the larger the window, the more
	// control-independent work a flush destroys, the more DMP helps.
	fmt.Println("\nwindow sweep (enhanced DMP gain over baseline):")
	for _, rob := range []int{128, 256, 512} {
		bc := core.DefaultConfig()
		bc.ROBSize = rob
		mb, _ := core.New(p, bc)
		sb, err := mb.Run()
		if err != nil {
			log.Fatal(err)
		}
		dc := core.EnhancedDMPConfig()
		dc.ROBSize = rob
		md, _ := core.New(p, dc)
		sd, err := md.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ROB %3d: base %.3f, DMP %.3f (%+.1f%%)\n",
			rob, sb.IPC(), sd.IPC(), 100*(sd.IPC()/sb.IPC()-1))
	}
}
