// Hammock: reproduce the paper's Figure 3 control-flow graph — a complex
// diverge branch whose taken side contains further control flow and whose
// paths *usually* (not always) reconverge at block H — and show why DMP
// predicates it while Dynamic Hammock Predication cannot.
//
//	go run ./examples/hammock
package main

import (
	"fmt"
	"log"

	"dmp/internal/core"
	"dmp/internal/profile"
	"dmp/internal/prog"
)

// The source of Figure 3(a), in simulator assembly:
//
//	if (cond1) { if (cond2) {...} }        // blocks C, G
//	else { if (cond3||cond4) {...E...} F } // blocks B, D, E, F
//	// block H (CFM)
//
// with a rarely taken early-return edge making H *not* the post-dominator.
const fig3 = `
.entry start
start:
    li   r1, 0x9E3779B97F4A7C15     ; rng
    li   r2, 25000                  ; iterations
loop:
    muli r1, r1, 6364136223846793005
    addi r1, r1, 1442695040888963407
    shri r3, r1, 33                 ; cond1 (unpredictable)
    andi r3, r3, 1
    shri r4, r1, 17                 ; cond2/3/4 material
    andi r4, r4, 7
    br.ne r3, zero, blockC          ; block A: the diverge branch
blockB:
    addi r10, r10, 1                ; block B
    slti r5, r4, 6                  ; cond3||cond4: ~75%
    br.ne r5, zero, blockE
blockD:
    addi r11, r11, 2                ; block D (rare side)
    shri r6, r1, 50
    andi r6, r6, 31
    br.eq r6, zero, bail            ; cond5: rare non-merging exit path
    jmp  blockF
blockE:
    addi r11, r11, 3                ; block E
blockF:
    xori r10, r10, 5                ; block F
    jmp  blockH
blockC:
    addi r12, r12, 1                ; block C
    andi r5, r4, 1                  ; cond2
    br.ne r5, zero, blockG
    jmp  blockH
blockG:
    addi r12, r12, 4                ; block G
blockH:
    addi r13, r13, 1                ; block H: the CFM point
    add  r14, r10, r12
bail:
    subi r2, r2, 1
    br.gt r2, zero, loop
    st   r14, 0x800(zero)
    halt
`

func main() {
	p, err := prog.Assemble(fig3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("marked diverge branches:")
	for _, pc := range p.DivergePCs() {
		d := p.DivergeAt(pc)
		fmt.Printf("  pc %2d  class %-16s  CFMs %v\n", pc, d.Class, d.CFMs)
	}
	fmt.Printf("  (block H starts at pc %d)\n\n", p.PC("blockH"))

	run := func(name string, cfg core.Config) *core.Stats {
		m, err := core.New(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s IPC %.3f  flushes %6d  episodes %5d  (c2 wins: %d)\n",
			name, st.IPC(), st.Flushes, st.Episodes, st.ExitCases[core.Exit2])
		return st
	}
	base := run("baseline", core.DefaultConfig())
	dhp := run("DHP", core.DHPConfig())
	dmp := run("enhanced-DMP", core.EnhancedDMPConfig())

	fmt.Printf("\nblock A is a *complex* diverge branch (control flow inside the hammock),\n")
	fmt.Printf("so DHP predicates %d episodes while DMP predicates %d.\n", dhp.Episodes, dmp.Episodes)
	fmt.Printf("IPC: baseline %.3f, DHP %+.1f%%, DMP %+.1f%%\n",
		base.IPC(), 100*(dhp.IPC()/base.IPC()-1), 100*(dmp.IPC()/base.IPC()-1))
}
