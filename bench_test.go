// Package bench regenerates every table and figure of the paper as Go
// benchmarks: one Benchmark per experiment. Each benchmark runs its
// experiment on a representative five-benchmark subset at scale 1 (so a
// full `go test -bench=. -benchtime=1x` stays tractable) and logs the
// resulting table; key series values are also exported as benchmark
// metrics. The full fifteen-benchmark tables are produced by
// `go run ./cmd/dmpexp -scale 3 all`.
//
// Component micro-benchmarks (predictor, caches, emulator, machine) and
// ablation benchmarks for the design choices called out in DESIGN.md
// follow the figure benchmarks.
package bench

import (
	"io"
	"strconv"
	"sync"
	"testing"
	"time"

	"dmp/internal/bpred"
	"dmp/internal/cache"
	"dmp/internal/core"
	"dmp/internal/emu"
	"dmp/internal/exp"
	"dmp/internal/obs"
	"dmp/internal/profile"
	"dmp/internal/telemetry"
	"dmp/internal/workload"
)

// benchSubset is the representative subset used by the figure benchmarks:
// three diverge-heavy, one hammock-dominated, one predictable.
var benchSubset = []string{"mcf", "parser", "twolf", "vpr", "perlbmk"}

func benchOpts() exp.Options {
	return exp.Options{Scale: 1, Benchmarks: benchSubset, Check: false}
}

// runFigure runs one experiment generator b.N times, logging the table
// once and reporting the last-row (mean) columns as metrics.
func runFigure(b *testing.B, id string, metricCols map[string]int) {
	gen := exp.All[id]
	if gen == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		// Drop cached simulation results (keep the memoized annotated
		// programs) so every iteration measures this experiment's own
		// simulations, not hits on results another benchmark ran first.
		exp.ResetResults()
		var err error
		t, err = gen(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + t.String())
	if len(t.Rows) == 0 {
		return
	}
	last := t.Rows[len(t.Rows)-1]
	for name, col := range metricCols {
		if col < len(last) {
			if v, err := strconv.ParseFloat(last[col], 64); err == nil {
				b.ReportMetric(v, name)
			}
		}
	}
}

// --- one benchmark per paper table/figure ---

func BenchmarkTable2(b *testing.B)  { runFigure(b, "table2", nil) }
func BenchmarkTable3(b *testing.B)  { runFigure(b, "table3", nil) }
func BenchmarkFigure1(b *testing.B) { runFigure(b, "fig1", map[string]int{"wrong%": 3}) }
func BenchmarkFigure6(b *testing.B) { runFigure(b, "fig6", nil) }

func BenchmarkFigure7(b *testing.B) {
	runFigure(b, "fig7", map[string]int{"dhp%": 1, "dmp-jrs%": 3, "dmp-perf%": 4, "perfect%": 5})
}

func BenchmarkFigure8(b *testing.B) { runFigure(b, "fig8", nil) }
func BenchmarkFigure9(b *testing.B) {
	runFigure(b, "fig9", map[string]int{"basic%": 1, "enhanced%": 4})
}
func BenchmarkFigure10(b *testing.B) { runFigure(b, "fig10", nil) }
func BenchmarkFigure11(b *testing.B) { runFigure(b, "fig11", map[string]int{"flushred%": 3}) }
func BenchmarkFigure12(b *testing.B) { runFigure(b, "fig12", nil) }
func BenchmarkFigure13a(b *testing.B) {
	runFigure(b, "fig13a", map[string]int{"dmp-gain%": 4})
}
func BenchmarkFigure13b(b *testing.B) {
	runFigure(b, "fig13b", map[string]int{"dmp-gain%": 4})
}
func BenchmarkDualPath(b *testing.B) {
	runFigure(b, "dualpath", map[string]int{"dual%": 1, "dhp%": 2, "dmp%": 3})
}

// BenchmarkAllExperiments tracks the full evaluation suite the way
// cmd/dmpexp runs it: every experiment generated concurrently against a
// cold process-wide result cache, each unique (benchmark, config, scale,
// check) pair simulated exactly once. This is the wall-clock number the
// result-cache + global-scheduler work optimizes (BENCH_expcache.json).
func BenchmarkAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Reset()
		ids := exp.IDs()
		errs := make([]error, len(ids))
		var wg sync.WaitGroup
		for j, id := range ids {
			wg.Add(1)
			go func(j int, id string) {
				defer wg.Done()
				_, errs[j] = exp.All[id](benchOpts())
			}(j, id)
		}
		wg.Wait()
		for j, err := range errs {
			if err != nil {
				b.Fatalf("%s: %v", ids[j], err)
			}
		}
	}
	hits, misses := exp.SimCounts()
	b.ReportMetric(float64(misses), "sims/run")
	b.ReportMetric(float64(hits), "reused/run")
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// runDMPWith runs parser under enhanced DMP after a profiling pass with
// custom options, reporting the IPC gain over the baseline.
func runDMPWith(b *testing.B, popts profile.Options, tweak func(*core.Config)) {
	w, err := workload.ByName("parser")
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		train := w.Build(workload.BuildConfig{Seed: workload.TrainSeed, Scale: 1})
		if _, err := profile.Run(train, popts); err != nil {
			b.Fatal(err)
		}
		ref := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: 1})
		for pc, d := range train.Diverge {
			ref.MarkDiverge(pc, d)
		}
		bc := core.DefaultConfig()
		bc.CheckRetirement = false
		mb, _ := core.New(ref, bc)
		sb, err := mb.Run()
		if err != nil {
			b.Fatal(err)
		}
		dc := core.EnhancedDMPConfig()
		dc.CheckRetirement = false
		if tweak != nil {
			tweak(&dc)
		}
		md, _ := core.New(ref, dc)
		sd, err := md.Run()
		if err != nil {
			b.Fatal(err)
		}
		gain = 100 * (sd.IPC()/sb.IPC() - 1)
	}
	b.ReportMetric(gain, "gain%")
}

// BenchmarkAblationFrequentPathCFM is the paper's CFM selection
// (frequently executed paths).
func BenchmarkAblationFrequentPathCFM(b *testing.B) {
	runDMPWith(b, profile.DefaultOptions(), nil)
}

// BenchmarkAblationPostDomCFM replaces the CFM heuristic with the
// immediate post-dominator — the conventional reconvergence point DMP
// argues against.
func BenchmarkAblationPostDomCFM(b *testing.B) {
	o := profile.DefaultOptions()
	o.UsePostDom = true
	runDMPWith(b, o, nil)
}

// BenchmarkAblationStaticThreshold replaces compiler-selected early-exit
// thresholds with a single static value (Section 2.7.2 finds
// compiler-selected slightly better).
func BenchmarkAblationStaticThreshold(b *testing.B) {
	runDMPWith(b, profile.DefaultOptions(), func(c *core.Config) {
		c.EarlyExitDefault = 24
	})
}

// BenchmarkAblationSelectPorts1 limits select-uop insertion to one per
// cycle (RAT port pressure).
func BenchmarkAblationSelectPorts1(b *testing.B) {
	runDMPWith(b, profile.DefaultOptions(), func(c *core.Config) {
		c.SelectUopsPerCycle = 1
	})
}

// BenchmarkAblationSelectiveBPUpdate enables the Section 2.7.4
// predictor-update policy (no training on predicated branches).
func BenchmarkAblationSelectiveBPUpdate(b *testing.B) {
	runDMPWith(b, profile.DefaultOptions(), func(c *core.Config) {
		c.SelectiveBPUpdate = true
	})
}

// BenchmarkAblationLoopDiverge enables diverge loop branches (Section
// 2.7.4 future work) with a profile pass that marks them.
func BenchmarkAblationLoopDiverge(b *testing.B) {
	o := profile.DefaultOptions()
	o.IncludeLoops = true
	runDMPWith(b, o, func(c *core.Config) {
		c.EnableLoopDiverge = true
	})
}

// --- component micro-benchmarks ---

func BenchmarkPerceptronPredict(b *testing.B) {
	p := bpred.NewPerceptron(bpred.DefaultPerceptronConfig())
	var h bpred.GHR
	for i := 0; i < b.N; i++ {
		taken := p.Predict(uint64(i)&1023, h)
		p.Update(uint64(i)&1023, h, i&3 == 0)
		h = h.Push(taken)
	}
}

func BenchmarkHybridPredict(b *testing.B) {
	p := bpred.NewHybrid(14, 12)
	var h bpred.GHR
	for i := 0; i < b.N; i++ {
		taken := p.Predict(uint64(i)&1023, h)
		p.Update(uint64(i)&1023, h, i&3 == 0)
		h = h.Push(taken)
	}
}

func BenchmarkCacheHierarchy(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	for i := 0; i < b.N; i++ {
		h.DataLatency(uint64(i*64) & 0xFFFFF)
	}
}

func BenchmarkEmulator(b *testing.B) {
	w, _ := workload.ByName("bzip2")
	p := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: 1})
	b.ResetTimer()
	ran := uint64(0)
	for i := 0; i < b.N; i++ {
		e := emu.New(p)
		n, err := e.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		ran += n
	}
	b.ReportMetric(float64(ran)/float64(b.N), "insts/run")
}

// BenchmarkMachineBaseline measures raw simulator speed (simulated
// instructions per wall second appear as the insts/run metric over ns/op).
func BenchmarkMachineBaseline(b *testing.B) {
	w, _ := workload.ByName("twolf")
	p := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.CheckRetirement = false
		m, err := core.New(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMachineEnhancedDMP(b *testing.B) {
	p, err := exp.Annotated("twolf", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.EnhancedDMPConfig()
		cfg.CheckRetirement = false
		m, err := core.New(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnotatedCached measures a cache hit on the memoized
// annotated-program path that every experiment configuration shares; it
// should be ~free next to BenchmarkProfilePass, which is the work a miss
// pays once per (benchmark, scale).
func BenchmarkAnnotatedCached(b *testing.B) {
	if _, err := exp.Annotated("parser", 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Annotated("parser", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfilePass(b *testing.B) {
	w, _ := workload.ByName("parser")
	for i := 0; i < b.N; i++ {
		p := w.Build(workload.BuildConfig{Seed: workload.TrainSeed, Scale: 1})
		if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserverOverhead pins the cost of the internal/obs probe
// layer on the hottest configuration (enhanced DMP, every hook site
// live). "disabled" is the shipping default — probe nil, every hook
// site a single pointer compare — and must stay within noise (<2%,
// recorded in BENCH_obs.json) of the tree before the probe layer
// existed. "attached" runs every sink at once (pipetrace, episode
// timeline, interval sampler, heartbeat) into io.Discard and bounds
// the price of turning observability on.
func BenchmarkObserverOverhead(b *testing.B) {
	p, err := exp.Annotated("mcf", 1)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, probe func() *core.Probe) {
		for i := 0; i < b.N; i++ {
			cfg := core.EnhancedDMPConfig()
			cfg.CheckRetirement = false
			m, err := core.New(p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if probe != nil {
				m.SetProbe(probe())
			}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("attached", func(b *testing.B) {
		run(b, func() *core.Probe {
			return obs.Tee(
				obs.NewPipetrace(io.Discard, obs.FormatText).Probe(),
				obs.NewEpisodeLog(io.Discard).Probe(),
				obs.NewIntervalSampler(io.Discard, 10000).Probe(),
				obs.NewHeartbeat(io.Discard, time.Hour).Probe(),
			)
		})
	})
}

// BenchmarkTelemetryOverhead pins the cost of the host-side telemetry
// layer (internal/telemetry) on its instrumented hot paths: the result
// cache + worker pool in internal/exp and the sampled-simulation
// pipeline in internal/sample. "disabled" is the shipping default — no
// Set enabled, the metric atomics still tick, every span/feed site is
// a nil check — and must stay within noise (<2%, recorded in
// BENCH_telemetry.json) of the tree before telemetry existed.
// "attached" enables a full Set with spans and feed events into
// io.Discard and bounds the price of turning telemetry on. The
// workload is the sampling experiment: exact golden runs through the
// result cache plus one sampled pipeline per benchmark, the densest
// emission path (per-interval spans from the consumer loop).
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, attach bool) {
		for i := 0; i < b.N; i++ {
			exp.ResetResults()
			o := benchOpts()
			var set *telemetry.Set
			if attach {
				set = telemetry.New(telemetry.Options{SpanW: io.Discard, EventW: io.Discard})
				telemetry.Enable(set)
				o.Span = set.Tracer().Begin("bench", "exp")
			}
			if _, err := exp.Sampling(o); err != nil {
				b.Fatal(err)
			}
			if attach {
				o.Span.End()
				if _, err := set.Close(); err != nil {
					b.Fatal(err)
				}
				telemetry.Enable(nil)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("attached", func(b *testing.B) { run(b, true) })
}

// BenchmarkMergePredictorOverhead pins the cost of feeding the
// merge-point predictor (internal/merge) from retirement. Both legs run
// enhanced DMP on mcf with "never-low" confidence, so neither enters an
// episode and the runs are behaviorally identical: "annotated" has no
// predictor at all, "hybrid" observes every retired instruction and
// trains on every mispredicted branch. The difference is the pure
// lookup+train overhead, bounded <3% in BENCH_merge.json.
func BenchmarkMergePredictorOverhead(b *testing.B) {
	p, err := exp.Annotated("mcf", 1)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, src string) {
		for i := 0; i < b.N; i++ {
			cfg := core.EnhancedDMPConfig()
			cfg.CheckRetirement = false
			cfg.ConfidenceName = "never-low"
			cfg.CFMSource = src
			m, err := core.New(p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("annotated", func(b *testing.B) { run(b, "annotated") })
	b.Run("hybrid", func(b *testing.B) { run(b, "hybrid") })
}

// BenchmarkAblationAlternateGHR uses the paper's footnote-7 design choice
// (keep the alternate path's global history at exit) instead of this
// implementation's default (restore the predicted path's history).
func BenchmarkAblationAlternateGHR(b *testing.B) {
	runDMPWith(b, profile.DefaultOptions(), func(c *core.Config) {
		c.KeepAlternateGHR = true
	})
}
