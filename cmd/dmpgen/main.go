// Command dmpgen generates, verifies, minimizes and replays random
// lint-clean programs (internal/gen), and drives the differential
// verification harness: every generated program is swept through lint
// (any diagnostic is a generator bug), the functional emulator (the
// golden model; a lint-clean program faulting here is a lint-soundness
// counterexample), the full machine-configuration matrix (baseline, DMP
// with annotated/dynamic/hybrid CFM sources, loop diverge, dual-path,
// DHP — all must retire the emulator's exact architectural state), and
// optionally the sampled-simulation accounting invariants.
//
// Usage:
//
//	dmpgen -n 200                  # sweep seeds 1..200 through the harness
//	dmpgen -n 50 -start 1000       # a different seed range
//	dmpgen -n 25 -iters 400 -sample  # longer programs + sampled-leg checks
//	dmpgen -seed 7                 # verify one seed
//	dmpgen -seed 7 -dump           # print its program and annotations
//	dmpgen -corpus .               # (re)write fuzz seed-corpus files
//
// On any divergence dmpgen shrinks the failing program to a minimal
// reproducer of the same divergence stage (the shrinker only applies
// mutations that keep the failure alive and every intermediate stays
// lint-clean by construction), prints the minimized program and the
// exact replay command, and exits 1. Exit status: 0 all seeds clean,
// 1 divergence found, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dmp/internal/gen"
	"dmp/internal/gen/diff"
	"dmp/internal/prog"
)

func main() {
	var (
		n          = flag.Int("n", 0, "sweep this many seeds through the differential harness")
		start      = flag.Uint64("start", 1, "first seed of the sweep")
		seed       = flag.Uint64("seed", 0, "verify a single seed (0 = none)")
		iters      = flag.Int("iters", 0, "driver-loop trips per program (0 = generator default)")
		depth      = flag.Int("depth", 0, "max structural nesting depth (0 = default)")
		stmts      = flag.Int("stmts", 0, "top-level statements in the driver body (0 = default)")
		noLoops    = flag.Bool("no-loops", false, "disable loop nodes")
		noCalls    = flag.Bool("no-calls", false, "disable call-tree nodes")
		noComplex  = flag.Bool("no-complex", false, "disable unstructured complex regions")
		noAnnotate = flag.Bool("no-annotate", false, "disable the CFM-annotation synthesizer")
		doSample   = flag.Bool("sample", false, "also check sampled-vs-exact accounting invariants")
		dump       = flag.Bool("dump", false, "with -seed: print the generated program")
		noMinimize = flag.Bool("no-minimize", false, "report divergences without shrinking")
		corpus     = flag.String("corpus", "", "write fuzz seed-corpus files under this repo root and exit")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dmpgen: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	base := gen.DefaultOptions(0)
	base.Iters = *iters
	if *depth > 0 {
		base.MaxDepth = *depth
	}
	if *stmts > 0 {
		base.Stmts = *stmts
	}
	base.Loops = !*noLoops
	base.Calls = !*noCalls
	base.Complex = !*noComplex
	base.Annotate = !*noAnnotate
	dopts := diff.DiffOptions{Sample: *doSample}

	switch {
	case *corpus != "":
		if err := writeCorpus(*corpus, base); err != nil {
			fmt.Fprintf(os.Stderr, "dmpgen: corpus: %v\n", err)
			os.Exit(1)
		}
	case *seed != 0:
		if *dump {
			dumpSeed(*seed, base)
		}
		if div := diff.VerifySeed(*seed, base, dopts); div != nil {
			reportDivergence(div, base, dopts, *noMinimize)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("dmpgen: seed %d clean\n", *seed)
		}
	case *n > 0:
		sweep(*start, *n, base, dopts, *quiet, *noMinimize)
	default:
		fmt.Fprintln(os.Stderr, "dmpgen: need -n, -seed or -corpus (see -h)")
		os.Exit(2)
	}
}

// sweep runs the differential harness over a contiguous seed range,
// shrinking and reporting the first divergence.
func sweep(start uint64, n int, base gen.Options, dopts diff.DiffOptions, quiet, noMinimize bool) {
	var insts, annos int
	for i := 0; i < n; i++ {
		s := start + uint64(i)
		if div := diff.VerifySeed(s, base, dopts); div != nil {
			reportDivergence(div, base, dopts, noMinimize)
			os.Exit(1)
		}
		o := base
		o.Seed = s
		p := gen.Generate(o)
		insts += len(p.Code)
		annos += len(p.Diverge)
		if !quiet && (i+1)%50 == 0 {
			fmt.Printf("dmpgen: %d/%d seeds clean\n", i+1, n)
		}
	}
	fmt.Printf("dmpgen: %d seeds clean (%d static insts, %d synthesized annotations)\n",
		n, insts, annos)
}

// reportDivergence shrinks the failing seed to a minimal program still
// diverging at the same stage, then prints a replayable report.
func reportDivergence(div *diff.Divergence, base gen.Options, dopts diff.DiffOptions, noMinimize bool) {
	fmt.Fprintf(os.Stderr, "dmpgen: DIVERGENCE: %v\n", div)
	o := base
	o.Seed = div.Seed
	g := gen.New(o)
	min := g
	if !noMinimize {
		stage := div.Stage
		var steps int
		min, steps = gen.Shrink(g, func(p *prog.Program) bool {
			d := diff.Verify(p, dopts)
			return d != nil && d.Stage == stage
		})
		fmt.Fprintf(os.Stderr, "dmpgen: minimized in %d steps: %d -> %d instructions, %d trips\n",
			steps, len(g.Prog.Code), len(min.Prog.Code), min.Opts.Iters)
	}
	fmt.Fprintf(os.Stderr, "--- minimized reproducer (structure seed %d) ---\n%s",
		div.Seed, min.Prog.Disassemble())
	for _, pc := range min.Prog.DivergePCs() {
		d := min.Prog.DivergeAt(pc)
		fmt.Fprintf(os.Stderr, "diverge %d: cfms=%v class=%v loop=%v thr=%d\n",
			pc, d.CFMs, d.Class, d.Loop, d.ExitThreshold)
	}
	fmt.Fprintf(os.Stderr, "replay: go run ./cmd/dmpgen -seed %d", div.Seed)
	if base.Iters > 0 {
		fmt.Fprintf(os.Stderr, " -iters %d", base.Iters)
	}
	if dopts.Sample {
		fmt.Fprint(os.Stderr, " -sample")
	}
	fmt.Fprintln(os.Stderr)
}

// dumpSeed prints the generated program, annotations, and data summary.
func dumpSeed(seed uint64, base gen.Options) {
	o := base
	o.Seed = seed
	g := gen.New(o)
	p := g.Prog
	fmt.Printf("# structure seed %d: %d instructions, %d data words, %d annotations, entry %d\n",
		seed, len(p.Code), len(p.Data), len(p.Diverge), p.Entry)
	fmt.Print(p.Disassemble())
	for _, pc := range p.DivergePCs() {
		d := p.DivergeAt(pc)
		fmt.Printf("diverge %d: cfms=%v class=%v loop=%v thr=%d\n",
			pc, d.CFMs, d.Class, d.Loop, d.ExitThreshold)
	}
}

// writeCorpus refreshes the committed fuzz seed corpora with
// generator-selected edge cases: the seeds (within a scan window) whose
// programs maximize each rare feature — loop-diverge annotations,
// multiple CFM points, synthesized-annotation count, code size — plus
// boundary iteration counts. Both internal/gen's fuzz targets and
// internal/core's FuzzLintEmuSoundness corpus are seeded.
func writeCorpus(root string, base gen.Options) error {
	type pick struct {
		name        string
		seed, iters uint64
	}
	best := map[string]pick{}
	score := map[string]int{}
	consider := func(what string, val int, s, it uint64) {
		if val > score[what] {
			score[what] = val
			best[what] = pick{what, s, it}
		}
	}
	for s := uint64(1); s <= 300; s++ {
		o := base
		o.Seed = s
		p := gen.Generate(o)
		loopDiv, multi := 0, 0
		for _, pc := range p.DivergePCs() {
			d := p.DivergeAt(pc)
			if d.Loop {
				loopDiv++
			}
			if len(d.CFMs) > 1 {
				multi++
			}
		}
		consider("loopdiv", loopDiv, s, 24)
		consider("multicfm", multi, s, 24)
		consider("annos", len(p.Diverge), s, 24)
		consider("size", len(p.Code), s, 24)
	}
	picks := []pick{
		{"iters1", 1, 1}, {"iters199", 2, 199},
		best["loopdiv"], best["multicfm"], best["annos"], best["size"],
	}

	write := func(dir, name, body string) error {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644)
	}
	for _, pk := range picks {
		name := fmt.Sprintf("gen-%s", pk.name)
		genBody := fmt.Sprintf("go test fuzz v1\nuint64(%d)\nuint64(%d)\n", pk.seed, pk.iters)
		coreBody := fmt.Sprintf("go test fuzz v1\nint64(%d)\nint64(%d)\n", pk.seed, pk.iters)
		for _, dir := range []string{
			filepath.Join(root, "internal", "gen", "testdata", "fuzz", "FuzzGeneratedLintClean"),
			filepath.Join(root, "internal", "gen", "diff", "testdata", "fuzz", "FuzzGeneratedDifferential"),
		} {
			if err := write(dir, name, genBody); err != nil {
				return err
			}
		}
		dir := filepath.Join(root, "internal", "core", "testdata", "fuzz", "FuzzLintEmuSoundness")
		if err := write(dir, name, coreBody); err != nil {
			return err
		}
		fmt.Printf("dmpgen: corpus %s: seed=%d iters=%d\n", pk.name, pk.seed, pk.iters)
	}
	return nil
}
