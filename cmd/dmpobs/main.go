// Command dmpobs summarizes the observability artifacts dmpsim writes.
//
// Usage:
//
//	dmpobs -events mcf.events.jsonl   # episode timeline summary
//	dmpobs -validate mcf.trace.json   # check a Chrome trace parses
//	dmpobs -manifest mcf.sample.json  # validate a sampled run's manifest
//	dmpobs -telemetry telemetry/      # validate a -telemetry-out directory
//
// -events reads an episode timeline (dmpsim -events) and prints
// per-event totals, the Table-1 exit-case breakdown, mean alternate-path
// fetch length, mean enter-to-resolve episode duration, and the fetch
// oracle's pause/resume counts. -validate parses a Chrome trace_event
// file (dmpsim -pipetrace foo.json) and reports the event count,
// exiting nonzero if the JSON is malformed. -manifest checks a sampled
// run's interval manifest (dmpsim -sample-manifest) for internal
// consistency — interval count, detailed-instruction accounting,
// per-interval IPC arithmetic, monotonic interval placement — and prints
// a summary, exiting nonzero on any violation. -telemetry checks the
// artifact directory a dmpexp/dmpsim -telemetry-out run records: span
// nesting in spans.json is well-formed, the event stream in
// events.jsonl is properly framed, and the streamed metrics deltas fold
// back into exactly the finals in metrics.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"dmp/internal/sample"
)

// epLine mirrors the JSONL keys internal/obs.EpisodeLog writes. Oracle
// lines carry only cycle/event/steps; episode lines carry the rest.
type epLine struct {
	Cycle    uint64 `json:"cycle"`
	Ep       uint64 `json:"ep"`
	Event    string `json:"event"`
	Case     *int   `json:"case"`
	CaseName string `json:"caseName"`
	PC       uint64 `json:"pc"`
	CFM      uint64 `json:"cfm"`
	Alt      uint64 `json:"alt"`
	Loop     bool   `json:"loop"`
	Dual     bool   `json:"dual"`
	Dyn      bool   `json:"dyn"` // CFM supplied by the runtime merge-point predictor
	Steps    uint64 `json:"steps"`
}

func main() {
	var (
		events   = flag.String("events", "", "summarize this episode timeline (JSONL from dmpsim -events)")
		validate = flag.String("validate", "", "parse this Chrome trace JSON (from dmpsim -pipetrace x.json) and report its event count")
		manifest = flag.String("manifest", "", "validate this sampled-run interval manifest (from dmpsim -sample-manifest)")
		telem    = flag.String("telemetry", "", "validate this telemetry artifact directory (from dmpexp/dmpsim -telemetry-out)")
	)
	flag.Parse()

	if *events == "" && *validate == "" && *manifest == "" && *telem == "" {
		fmt.Fprintln(os.Stderr, "dmpobs: need -events, -validate, -manifest or -telemetry (see -help)")
		os.Exit(2)
	}
	if *validate != "" {
		if err := validateTrace(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "dmpobs: %s: %v\n", *validate, err)
			os.Exit(1)
		}
	}
	if *manifest != "" {
		if err := validateManifest(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "dmpobs: %s: %v\n", *manifest, err)
			os.Exit(1)
		}
	}
	if *telem != "" {
		if err := validateTelemetry(*telem); err != nil {
			fmt.Fprintf(os.Stderr, "dmpobs: %s: %v\n", *telem, err)
			os.Exit(1)
		}
	}
	if *events != "" {
		if err := summarizeEvents(*events); err != nil {
			fmt.Fprintf(os.Stderr, "dmpobs: %s: %v\n", *events, err)
			os.Exit(1)
		}
	}
}

// validateManifest checks a sampled run's interval accounting. It reads
// the manifest alone — no re-simulation — and verifies the invariants
// internal/sample promises: the interval list matches k, the detailed
// instruction and cycle sums decompose into prefix plus intervals, every
// interval's IPC is its own retired/cycles, and intervals appear in
// program order. checkManifest is split out so the contract is testable.
func validateManifest(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m sample.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("invalid manifest JSON: %w", err)
	}
	if err := checkManifest(&m); err != nil {
		return err
	}
	detPct := 100 * float64(m.DetRetired) / float64(m.TotalInsts)
	fmt.Printf("%s: consistent sampled-run manifest\n", path)
	fmt.Printf("  %d insts: prefix %d exact, %d intervals of ~%d (detailed %.1f%%), period %d\n",
		m.TotalInsts, m.PrefRetired, m.K, m.IntervalLen, detPct, m.Period)
	fmt.Printf("  IPC estimate %.3f ± %.3f (95%% CI; interval mean %.3f)\n", m.IPC, m.CI95, m.IPCMean)
	if tm := m.Timing; tm != nil {
		total := tm.PrefixSeconds + tm.WarmSeconds + tm.SnapshotSeconds + tm.DetailedSeconds + tm.ExtrapolateSeconds
		fmt.Printf("  host time %.3fs: prefix %.3f, warm %.3f, snapshot %.3f, detailed %.3f, extrapolate %.3f\n",
			total, tm.PrefixSeconds, tm.WarmSeconds, tm.SnapshotSeconds, tm.DetailedSeconds, tm.ExtrapolateSeconds)
	}
	return nil
}

func checkManifest(m *sample.Manifest) error {
	if m.K != len(m.Intervals) {
		return fmt.Errorf("k = %d but %d intervals listed", m.K, len(m.Intervals))
	}
	if m.K == 0 {
		return fmt.Errorf("manifest has no intervals")
	}
	var sumR, sumC uint64
	var prev uint64
	for i, iv := range m.Intervals {
		if iv.Index != i {
			return fmt.Errorf("interval %d: index %d out of order", i, iv.Index)
		}
		if iv.Start < prev {
			return fmt.Errorf("interval %d: start %d before previous interval at %d", i, iv.Start, prev)
		}
		prev = iv.Start
		if iv.Retired == 0 || iv.Cycles == 0 {
			return fmt.Errorf("interval %d: empty measurement (%d retired, %d cycles)", i, iv.Retired, iv.Cycles)
		}
		if want := float64(iv.Retired) / float64(iv.Cycles); iv.IPC != want {
			return fmt.Errorf("interval %d: ipc %g but retired/cycles = %g", i, iv.IPC, want)
		}
		sumR += iv.Retired
		sumC += iv.Cycles
	}
	if got := m.PrefRetired + sumR; got != m.DetRetired {
		return fmt.Errorf("detailed_retired %d but prefix %d + interval sum %d = %d",
			m.DetRetired, m.PrefRetired, sumR, got)
	}
	if got := m.PrefCycles + sumC; got != m.DetCycles {
		return fmt.Errorf("detailed_cycles %d but prefix %d + interval sum %d = %d",
			m.DetCycles, m.PrefCycles, sumC, got)
	}
	if m.DetRetired > m.TotalInsts {
		return fmt.Errorf("detailed_retired %d exceeds total_insts %d", m.DetRetired, m.TotalInsts)
	}
	if m.IPC <= 0 || m.CI95 < 0 {
		return fmt.Errorf("implausible estimate: ipc %g, ci95 %g", m.IPC, m.CI95)
	}
	return nil
}

// validateTrace unmarshals the whole trace as a JSON array and spot
// checks that the events carry the trace_event fields Perfetto needs.
func validateTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		return fmt.Errorf("invalid Chrome trace JSON: %w", err)
	}
	if len(evs) == 0 {
		return fmt.Errorf("trace is empty")
	}
	for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
		if _, ok := evs[0][k]; !ok {
			return fmt.Errorf("trace events missing %q field", k)
		}
	}
	fmt.Printf("%s: valid Chrome trace, %d events\n", path, len(evs))
	return nil
}

func summarizeEvents(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		counts    = map[string]uint64{}
		cases     [7]uint64
		caseNames [7]string
		enterAt   = map[uint64]uint64{} // episode id -> enter cycle
		durSum    uint64                // enter-to-resolve cycles
		durN      uint64
		altSum    uint64 // alternate-path uops fetched per resolved episode
		altN      uint64
		dynEps    uint64 // episodes entered from a learned (predictor) CFM
		pauses    uint64
		resumes   uint64
		lines     int
	)
	caseNames[0] = "squashed"

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lines++
		var ev epLine
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
		counts[ev.Event]++
		switch ev.Event {
		case "enter":
			enterAt[ev.Ep] = ev.Cycle
			if ev.Dyn {
				dynEps++
			}
		case "resolve", "squash":
			if ev.Case != nil && *ev.Case >= 0 && *ev.Case < len(cases) {
				cases[*ev.Case]++
				caseNames[*ev.Case] = ev.CaseName
			}
			if at, ok := enterAt[ev.Ep]; ok && ev.Event == "resolve" {
				durSum += ev.Cycle - at
				durN++
				delete(enterAt, ev.Ep)
			}
			altSum += ev.Alt
			altN++
		case "oracle-pause":
			pauses++
		case "oracle-resume":
			resumes++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("timeline is empty")
	}

	fmt.Printf("%s: %d events\n\n", path, lines)
	fmt.Println("event totals:")
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-14s %10d\n", n, counts[n])
	}

	var total uint64
	for _, c := range cases {
		total += c
	}
	if total > 0 {
		fmt.Println("\nexit-case attribution (Table 1; case 0 = squashed):")
		for i, c := range cases {
			if c == 0 {
				continue
			}
			name := caseNames[i]
			if name == "" {
				name = fmt.Sprintf("case%d", i)
			}
			fmt.Printf("  %-10s %10d  (%5.1f%%)\n", name, c, 100*float64(c)/float64(total))
		}
	}
	if durN > 0 {
		fmt.Printf("\nepisodes resolved: %d, mean enter-to-resolve %.1f cycles\n",
			durN, float64(durSum)/float64(durN))
	}
	if altN > 0 {
		fmt.Printf("mean alternate-path uops fetched: %.1f\n", float64(altSum)/float64(altN))
	}
	if dynEps > 0 {
		fmt.Printf("episodes from learned (dynamic) CFM points: %d\n", dynEps)
	}
	if pauses+resumes > 0 {
		fmt.Printf("fetch oracle: %d pauses, %d resumes\n", pauses, resumes)
	}
	return nil
}
