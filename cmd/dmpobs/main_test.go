package main

import (
	"strings"
	"testing"

	"dmp/internal/sample"
)

// goodManifest builds a minimal internally consistent manifest.
func goodManifest() sample.Manifest {
	ivs := []sample.Interval{
		{Index: 0, Start: 3000, RampRetired: 512, Retired: 500, Cycles: 1000, IPC: 0.5},
		{Index: 1, Start: 9000, RampRetired: 512, Retired: 500, Cycles: 500, IPC: 1.0},
	}
	return sample.Manifest{
		TotalInsts:  20000,
		Period:      6000,
		IntervalLen: 500,
		Ramp:        512,
		PrefRetired: 2048,
		PrefCycles:  4000,
		K:           2,
		DetRetired:  2048 + 1000,
		DetCycles:   4000 + 1500,
		IPC:         0.7,
		IPCMean:     0.75,
		CI95:        0.1,
		Intervals:   ivs,
	}
}

func TestCheckManifest(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*sample.Manifest)
		wantErr string
	}{
		{name: "consistent", mutate: func(m *sample.Manifest) {}},
		{name: "k-mismatch", mutate: func(m *sample.Manifest) { m.K = 3 }, wantErr: "intervals listed"},
		{name: "no-intervals", mutate: func(m *sample.Manifest) { m.K = 0; m.Intervals = nil }, wantErr: "no intervals"},
		{name: "index-order", mutate: func(m *sample.Manifest) { m.Intervals[1].Index = 5 }, wantErr: "out of order"},
		{name: "start-order", mutate: func(m *sample.Manifest) { m.Intervals[1].Start = 10 }, wantErr: "before previous"},
		{name: "empty-interval", mutate: func(m *sample.Manifest) { m.Intervals[0].Cycles = 0 }, wantErr: "empty measurement"},
		{name: "ipc-arith", mutate: func(m *sample.Manifest) { m.Intervals[1].IPC = 0.9 }, wantErr: "retired/cycles"},
		{name: "retired-sum", mutate: func(m *sample.Manifest) { m.DetRetired++ }, wantErr: "detailed_retired"},
		{name: "cycle-sum", mutate: func(m *sample.Manifest) { m.DetCycles++ }, wantErr: "detailed_cycles"},
		{name: "detailed-exceeds-total", mutate: func(m *sample.Manifest) { m.TotalInsts = 100 }, wantErr: "exceeds total_insts"},
		{name: "bad-estimate", mutate: func(m *sample.Manifest) { m.IPC = 0 }, wantErr: "implausible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := goodManifest()
			tc.mutate(&m)
			err := checkManifest(&m)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}
