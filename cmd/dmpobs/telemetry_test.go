package main

import (
	"strings"
	"testing"

	"dmp/internal/telemetry"
)

// goodSpans builds a minimal well-formed span forest: a root, a
// same-lane child nested inside it, and a cross-lane async child.
func goodSpans() []traceSpan {
	mk := func(name string, ts, dur int64, tid, id, parent uint64) traceSpan {
		s := traceSpan{Name: name, Ph: "X", TS: ts, Dur: dur, TID: tid}
		s.Args.ID = id
		s.Args.Parent = parent
		return s
	}
	return []traceSpan{
		mk("root", 0, 1000, 1, 1, 0),
		mk("child", 100, 200, 1, 2, 1),
		mk("async", 900, 5000, 3, 3, 1), // cross-lane: may outlive the parent
	}
}

func TestCheckSpans(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]traceSpan) []traceSpan
		wantErr string
	}{
		{name: "well-formed", mutate: func(s []traceSpan) []traceSpan { return s }},
		{name: "empty", mutate: func(s []traceSpan) []traceSpan { return nil }, wantErr: "no spans"},
		{name: "bad-phase", mutate: func(s []traceSpan) []traceSpan { s[0].Ph = "B"; return s }, wantErr: "phase"},
		{name: "zero-id", mutate: func(s []traceSpan) []traceSpan { s[1].Args.ID = 0; return s }, wantErr: "zero id"},
		{name: "dup-id", mutate: func(s []traceSpan) []traceSpan { s[2].Args.ID = 2; return s }, wantErr: "duplicate id"},
		{name: "negative-ts", mutate: func(s []traceSpan) []traceSpan { s[0].TS = -1; return s }, wantErr: "implausible window"},
		{name: "zero-dur", mutate: func(s []traceSpan) []traceSpan { s[1].Dur = 0; return s }, wantErr: "implausible window"},
		{name: "dangling-parent", mutate: func(s []traceSpan) []traceSpan { s[1].Args.Parent = 99; return s }, wantErr: "not in trace"},
		{name: "child-escapes", mutate: func(s []traceSpan) []traceSpan { s[1].Dur = 5000; return s }, wantErr: "escapes parent"},
		{name: "child-starts-early", mutate: func(s []traceSpan) []traceSpan { s[1].TS = 0; s[0].TS = 50; s[0].Dur = 950; return s }, wantErr: "escapes parent"},
		{name: "slack-tolerated", mutate: func(s []traceSpan) []traceSpan { s[1].TS = 804; s[1].Dur = 200; return s }}, // ends 4µs past parent
		{name: "async-exempt", mutate: func(s []traceSpan) []traceSpan { s[2].TS = 0; s[2].Dur = 99999; return s }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkSpans(tc.mutate(goodSpans()))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func goodEvents() []telemetry.Event {
	return []telemetry.Event{
		{T: 0, Kind: "run-start", Name: "test"},
		{T: 0.5, Kind: "simulation", Name: "mcf/DMP", Msg: "miss"},
		{T: 1.0, Kind: "metrics", Metrics: &telemetry.Snapshot{}},
		{T: 1.5, Kind: "run-end"},
	}
}

func TestCheckEventStream(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]telemetry.Event) []telemetry.Event
		wantErr string
	}{
		{name: "well-formed", mutate: func(e []telemetry.Event) []telemetry.Event { return e }},
		{name: "empty", mutate: func(e []telemetry.Event) []telemetry.Event { return nil }, wantErr: "no events"},
		{name: "no-run-start", mutate: func(e []telemetry.Event) []telemetry.Event { return e[1:] }, wantErr: "want run-start"},
		{name: "missing-kind", mutate: func(e []telemetry.Event) []telemetry.Event { e[1].Kind = ""; return e }, wantErr: "missing kind"},
		{name: "time-travel", mutate: func(e []telemetry.Event) []telemetry.Event { e[2].T = 0.1; return e }, wantErr: "before predecessor"},
		{name: "double-end", mutate: func(e []telemetry.Event) []telemetry.Event {
			return append(e, telemetry.Event{T: 2, Kind: "run-end"})
		}, wantErr: "exactly one"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkEventStream(tc.mutate(goodEvents()))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestFoldAndCompare(t *testing.T) {
	d1 := telemetry.Snapshot{
		Counters:   []telemetry.CounterVal{{Name: "c", Value: 3}},
		Gauges:     []telemetry.GaugeVal{{Name: "g", Value: 7}},
		Histograms: []telemetry.HistogramVal{{Name: "h", Bounds: []float64{1, 5}, Buckets: []uint64{1, 0}, Count: 1, Sum: 0.5}},
	}
	d2 := telemetry.Snapshot{
		Counters:   []telemetry.CounterVal{{Name: "c", Value: 2}},
		Gauges:     []telemetry.GaugeVal{{Name: "g", Value: 4}},
		Histograms: []telemetry.HistogramVal{{Name: "h", Bounds: []float64{1, 5}, Buckets: []uint64{0, 2}, Count: 3, Sum: 9.5}},
	}
	final := telemetry.Snapshot{
		Counters:   []telemetry.CounterVal{{Name: "c", Value: 5}},
		Gauges:     []telemetry.GaugeVal{{Name: "g", Value: 4}}, // last reading wins
		Histograms: []telemetry.HistogramVal{{Name: "h", Bounds: []float64{1, 5}, Buckets: []uint64{1, 2}, Count: 4, Sum: 10.0}},
	}
	evs := []telemetry.Event{
		{Kind: "metrics", Metrics: &d1},
		{Kind: "progress"}, // ignored
		{Kind: "metrics", Metrics: &d2},
	}
	folded, ok := foldMetricDeltas(evs)
	if !ok {
		t.Fatal("no metrics events found")
	}
	if err := compareSnapshots(folded, final); err != nil {
		t.Fatalf("folded deltas should match finals: %v", err)
	}

	bad := final
	bad.Counters = []telemetry.CounterVal{{Name: "c", Value: 6}}
	if err := compareSnapshots(folded, bad); err == nil || !strings.Contains(err.Error(), "counter c") {
		t.Fatalf("err = %v, want counter mismatch", err)
	}
	bad = final
	bad.Histograms = []telemetry.HistogramVal{{Name: "h", Bounds: []float64{1, 5}, Buckets: []uint64{2, 1}, Count: 4, Sum: 10.0}}
	if err := compareSnapshots(folded, bad); err == nil || !strings.Contains(err.Error(), "bucket") {
		t.Fatalf("err = %v, want bucket mismatch", err)
	}

	if _, ok := foldMetricDeltas([]telemetry.Event{{Kind: "progress"}}); ok {
		t.Fatal("fold of zero metrics events should report !ok")
	}
}

func TestCheckStageEvents(t *testing.T) {
	final := telemetry.Snapshot{Histograms: []telemetry.HistogramVal{
		{Name: "dmp_sample_prefix_seconds", Count: 2, Sum: 3.0},
	}}
	good := []telemetry.Event{
		{Kind: "sample-stage", Name: "prefix", V: 1.25},
		{Kind: "sample-stage", Name: "prefix", V: 1.75},
	}
	if err := checkStageEvents(good, final); err != nil {
		t.Fatalf("consistent stages rejected: %v", err)
	}
	if err := checkStageEvents(nil, telemetry.Snapshot{}); err != nil {
		t.Fatalf("no sampling should pass vacuously: %v", err)
	}
	if err := checkStageEvents(good[:1], final); err == nil || !strings.Contains(err.Error(), "histogram count") {
		t.Fatalf("err = %v, want count mismatch", err)
	}
	worse := []telemetry.Event{
		{Kind: "sample-stage", Name: "prefix", V: 1.0},
		{Kind: "sample-stage", Name: "prefix", V: 1.0},
	}
	if err := checkStageEvents(worse, final); err == nil || !strings.Contains(err.Error(), "histogram sum") {
		t.Fatalf("err = %v, want sum mismatch", err)
	}
	orphan := []telemetry.Event{{Kind: "sample-stage", Name: "mystery", V: 1}}
	if err := checkStageEvents(orphan, final); err == nil || !strings.Contains(err.Error(), "no histogram") {
		t.Fatalf("err = %v, want missing histogram", err)
	}
}

// TestValidateTelemetryEndToEnd drives a real Set through OpenDir,
// emits spans, events and metric deltas, closes it, records the
// finals, and checks validateTelemetry accepts the directory.
func TestValidateTelemetryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	set, err := telemetry.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	root := set.Tracer().Begin("test", "t")
	set.Feed().Emit(telemetry.Event{Kind: "run-start", Name: "test"})
	child := root.Child("stage", "t")
	child.End()
	set.EmitMetrics()
	set.Feed().Emit(telemetry.Event{Kind: "run-end"})
	root.End()
	snap, err := set.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteMetricsDir(dir, snap); err != nil {
		t.Fatal(err)
	}
	if err := validateTelemetry(dir); err != nil {
		t.Fatalf("real artifacts rejected: %v", err)
	}
}
