package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"dmp/internal/telemetry"
)

// validateTelemetry cross-checks the artifacts a -telemetry-out run
// records (dmpexp/dmpsim): spans.json must be a well-formed span forest
// (unique nonzero ids, resolvable parents, same-lane children contained
// in their parent's window), and the metrics deltas streamed into
// events.jsonl must fold back — via Snapshot.Add — into exactly the
// finals in metrics.json. The pieces are split out so each contract is
// testable without a real run.
func validateTelemetry(dir string) error {
	spans, err := readSpans(filepath.Join(dir, telemetry.SpansFile))
	if err != nil {
		return err
	}
	if err := checkSpans(spans); err != nil {
		return fmt.Errorf("%s: %w", telemetry.SpansFile, err)
	}

	evs, err := readEvents(filepath.Join(dir, telemetry.EventsFile))
	if err != nil {
		return err
	}
	if err := checkEventStream(evs); err != nil {
		return fmt.Errorf("%s: %w", telemetry.EventsFile, err)
	}

	final, err := readMetrics(filepath.Join(dir, telemetry.MetricsFile))
	if err != nil {
		return err
	}
	folded, ok := foldMetricDeltas(evs)
	if !ok {
		return fmt.Errorf("%s: no metrics events to fold", telemetry.EventsFile)
	}
	if err := compareSnapshots(folded, final); err != nil {
		return fmt.Errorf("folded event deltas vs %s: %w", telemetry.MetricsFile, err)
	}
	if err := checkStageEvents(evs, final); err != nil {
		return fmt.Errorf("sample-stage events vs metrics: %w", err)
	}

	kinds := map[string]int{}
	for _, e := range evs {
		kinds[e.Kind]++
	}
	fmt.Printf("%s: consistent telemetry artifacts\n", dir)
	fmt.Printf("  %d spans (nesting well-formed), %d events, %d metrics deltas fold to the recorded finals\n",
		len(spans), len(evs), kinds["metrics"])
	fmt.Printf("  finals: %d counters, %d gauges, %d histograms\n",
		len(final.Counters), len(final.Gauges), len(final.Histograms))
	return nil
}

// traceSpan is one complete ("X") Chrome trace_event as
// internal/telemetry's Tracer writes it; ID/Parent ride in args.
type traceSpan struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`  // µs since tracer epoch
	Dur  int64  `json:"dur"` // µs
	TID  uint64 `json:"tid"`
	Args struct {
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
	} `json:"args"`
}

func readSpans(path string) ([]traceSpan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var spans []traceSpan
	if err := json.Unmarshal(data, &spans); err != nil {
		return nil, fmt.Errorf("%s: invalid Chrome trace JSON: %w", path, err)
	}
	return spans, nil
}

// spanSlack is the tolerance (µs) allowed when checking that a child
// span's window sits inside its parent's: End clamps durations to ≥1µs
// and parent/child timestamps are read separately, so exact containment
// can miss by a few microseconds without anything being wrong.
const spanSlack = 5

func checkSpans(spans []traceSpan) error {
	if len(spans) == 0 {
		return fmt.Errorf("no spans recorded")
	}
	byID := make(map[uint64]traceSpan, len(spans))
	for i, s := range spans {
		if s.Ph != "X" {
			return fmt.Errorf("span %d (%s): phase %q, want complete event \"X\"", i, s.Name, s.Ph)
		}
		if s.Args.ID == 0 {
			return fmt.Errorf("span %d (%s): zero id", i, s.Name)
		}
		if _, dup := byID[s.Args.ID]; dup {
			return fmt.Errorf("span %d (%s): duplicate id %d", i, s.Name, s.Args.ID)
		}
		if s.TS < 0 || s.Dur <= 0 {
			return fmt.Errorf("span %d (%s): implausible window ts=%d dur=%d", i, s.Name, s.TS, s.Dur)
		}
		byID[s.Args.ID] = s
	}
	for i, s := range spans {
		if s.Args.Parent == 0 {
			continue // root
		}
		p, ok := byID[s.Args.Parent]
		if !ok {
			return fmt.Errorf("span %d (%s): parent id %d not in trace", i, s.Name, s.Args.Parent)
		}
		// Spans on the parent's lane (Child) must nest inside it.
		// Cross-lane spans (ChildAsync, interval jobs) may outlive the
		// window they were spawned from only in ordering, not here:
		// their parent link is causal, not temporal.
		if s.TID != p.TID {
			continue
		}
		if s.TS+spanSlack < p.TS || s.TS+s.Dur > p.TS+p.Dur+spanSlack {
			return fmt.Errorf("span %d (%s): [%d,%d]µs escapes parent %s [%d,%d]µs",
				i, s.Name, s.TS, s.TS+s.Dur, p.Name, p.TS, p.TS+p.Dur)
		}
	}
	return nil
}

func readEvents(path string) ([]telemetry.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var evs []telemetry.Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("%s: line %d: %w", path, line, err)
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

// checkEventStream verifies the feed's framing: timestamps present and
// non-decreasing, exactly one run-start (first) and one run-end.
func checkEventStream(evs []telemetry.Event) error {
	if len(evs) == 0 {
		return fmt.Errorf("no events recorded")
	}
	if evs[0].Kind != "run-start" {
		return fmt.Errorf("first event is %q, want run-start", evs[0].Kind)
	}
	starts, ends := 0, 0
	prev := -1.0
	for i, e := range evs {
		if e.Kind == "" {
			return fmt.Errorf("event %d: missing kind", i)
		}
		if e.T < prev {
			return fmt.Errorf("event %d (%s): timestamp %g before predecessor %g", i, e.Kind, e.T, prev)
		}
		prev = e.T
		switch e.Kind {
		case "run-start":
			starts++
		case "run-end":
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		return fmt.Errorf("want exactly one run-start and run-end, got %d and %d", starts, ends)
	}
	return nil
}

// foldMetricDeltas folds every metrics event's delta snapshot, in
// order, via Snapshot.Add. Counters and histograms accumulate; gauges
// keep the latest reading — exactly inverting how the Set emitted them.
func foldMetricDeltas(evs []telemetry.Event) (telemetry.Snapshot, bool) {
	var folded telemetry.Snapshot
	n := 0
	for _, e := range evs {
		if e.Kind != "metrics" || e.Metrics == nil {
			continue
		}
		if n == 0 {
			folded = *e.Metrics
		} else {
			folded = folded.Add(*e.Metrics)
		}
		n++
	}
	return folded, n > 0
}

func readMetrics(path string) (telemetry.Snapshot, error) {
	var s telemetry.Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: invalid metrics JSON: %w", path, err)
	}
	return s, nil
}

// sumTol bounds the float drift tolerated between an accumulated sum
// and the final reading: deltas subtract and re-add float64 sums, so
// the fold can differ from the final in the last few ulps.
const sumTol = 1e-9

func floatClose(a, b float64) bool {
	return math.Abs(a-b) <= sumTol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// compareSnapshots checks that got (the folded deltas) reproduces want
// (the recorded finals): counters, histogram buckets and counts
// exactly; float sums within tolerance; gauges last-reading.
func compareSnapshots(got, want telemetry.Snapshot) error {
	if len(got.Counters) != len(want.Counters) || len(got.Gauges) != len(want.Gauges) ||
		len(got.Histograms) != len(want.Histograms) {
		return fmt.Errorf("shape mismatch: folded %d/%d/%d metrics, final %d/%d/%d",
			len(got.Counters), len(got.Gauges), len(got.Histograms),
			len(want.Counters), len(want.Gauges), len(want.Histograms))
	}
	for i, c := range want.Counters {
		g := got.Counters[i]
		if g.Name != c.Name || g.Value != c.Value {
			return fmt.Errorf("counter %s: folded %d, final %d", c.Name, g.Value, c.Value)
		}
	}
	for i, w := range want.Gauges {
		g := got.Gauges[i]
		if g.Name != w.Name || g.Value != w.Value {
			return fmt.Errorf("gauge %s: folded last reading %d, final %d", w.Name, g.Value, w.Value)
		}
	}
	for i, w := range want.Histograms {
		g := got.Histograms[i]
		if g.Name != w.Name || g.Count != w.Count {
			return fmt.Errorf("histogram %s: folded count %d, final %d", w.Name, g.Count, w.Count)
		}
		if len(g.Buckets) != len(w.Buckets) {
			return fmt.Errorf("histogram %s: folded %d buckets, final %d", w.Name, len(g.Buckets), len(w.Buckets))
		}
		for j := range w.Buckets {
			if g.Buckets[j] != w.Buckets[j] {
				return fmt.Errorf("histogram %s bucket %d: folded %d, final %d", w.Name, j, g.Buckets[j], w.Buckets[j])
			}
		}
		if !floatClose(g.Sum, w.Sum) {
			return fmt.Errorf("histogram %s: folded sum %g, final %g", w.Name, g.Sum, w.Sum)
		}
	}
	return nil
}

// checkStageEvents cross-checks the per-stage sample-pipeline events
// against the dmp_sample_*_seconds histograms: every stage's event
// count must equal the histogram's observation count and the event
// values must sum to the histogram's sum. The two are written by
// independent code paths (feed emission vs atomic observation), so
// agreement means the sampling telemetry is internally consistent.
// Runs without sampling have neither and pass vacuously.
func checkStageEvents(evs []telemetry.Event, final telemetry.Snapshot) error {
	sums := map[string]float64{}
	counts := map[string]uint64{}
	for _, e := range evs {
		if e.Kind != "sample-stage" {
			continue
		}
		sums[e.Name] += e.V
		counts[e.Name]++
	}
	hists := map[string]telemetry.HistogramVal{}
	for _, h := range final.Histograms {
		hists[h.Name] = h
	}
	for stage, n := range counts {
		name := "dmp_sample_" + stage + "_seconds"
		h, ok := hists[name]
		if !ok {
			return fmt.Errorf("stage %q events but no histogram %s", stage, name)
		}
		if h.Count != n {
			return fmt.Errorf("stage %q: %d events, histogram count %d", stage, n, h.Count)
		}
		if !floatClose(sums[stage], h.Sum) {
			return fmt.Errorf("stage %q: event sum %g, histogram sum %g", stage, sums[stage], h.Sum)
		}
	}
	return nil
}
