package main

import (
	"strings"
	"testing"

	"dmp/internal/core"
)

// TestSetCFMSource pins the -cfm-source / -merge-table flag contract:
// the three sources are accepted and applied, anything else (and any
// inconsistent table size) is a usage error that leaves the config
// untouched.
func TestSetCFMSource(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		table   int
		wantErr string
		wantSrc string
		wantTbl int
	}{
		{name: "annotated", src: "annotated", wantSrc: "annotated"},
		{name: "dynamic", src: "dynamic", wantSrc: "dynamic"},
		{name: "hybrid", src: "hybrid", wantSrc: "hybrid"},
		{name: "dynamic-sized", src: "dynamic", table: 128, wantSrc: "dynamic", wantTbl: 128},
		{name: "unknown", src: "oracle", wantErr: "invalid -cfm-source"},
		{name: "empty", src: "", wantErr: "invalid -cfm-source"},
		{name: "negative-table", src: "dynamic", table: -1, wantErr: "invalid -merge-table"},
		{name: "table-without-predictor", src: "annotated", table: 64, wantErr: "-merge-table needs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.EnhancedDMPConfig()
			err := setCFMSource(&cfg, tc.src, tc.table)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				if cfg != core.EnhancedDMPConfig() {
					t.Error("rejected flags mutated the config")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if cfg.CFMSource != tc.wantSrc || cfg.MergeTableSize != tc.wantTbl {
				t.Errorf("got source %q table %d, want %q %d",
					cfg.CFMSource, cfg.MergeTableSize, tc.wantSrc, tc.wantTbl)
			}
			if err := cfg.Validate(); err != nil {
				t.Errorf("applied config fails Validate: %v", err)
			}
		})
	}
}

// TestMergeStatsLine pins that the -merge-stats summary carries every
// predictor counter.
func TestMergeStatsLine(t *testing.T) {
	s := &core.Stats{MergeHits: 1, MergeMisses: 2, MergeTrainings: 3,
		MergeEvictions: 4, DynCFMEpisodes: 5, MergeMispredicts: 6}
	line := mergeStatsLine(s)
	for _, want := range []string{"1 hits", "2 misses", "3 trainings", "4 evictions", "5 learned-CFM", "6 merge mispredicts"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary missing %q: %s", want, line)
		}
	}
}

// TestSetSampling pins the -sample* flag contract: the knobs and the
// manifest path are usage errors without -sample, the interval must fit
// inside the period, and valid flags land on the config.
func TestSetSampling(t *testing.T) {
	cases := []struct {
		name                     string
		on                       bool
		period, interval, warmup uint64
		warmMode, manifest       string
		wantErr                  string
	}{
		{name: "off-default", on: false},
		{name: "on-default", on: true},
		{name: "on-custom", on: true, period: 4000, interval: 500, warmup: 100},
		{name: "on-caches", on: true, warmup: 512, warmMode: "caches"},
		{name: "period-without-sample", period: 4000, wantErr: "need -sample"},
		{name: "interval-without-sample", interval: 500, wantErr: "need -sample"},
		{name: "warmup-without-sample", warmup: 10, wantErr: "need -sample"},
		{name: "warm-mode-without-sample", warmMode: "caches", wantErr: "need -sample"},
		{name: "manifest-without-sample", manifest: "m.json", wantErr: "need -sample"},
		{name: "interval-ge-period", on: true, period: 500, interval: 500, wantErr: "must be smaller"},
		{name: "unknown-warm-mode", on: true, warmMode: "none", wantErr: "warm mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.EnhancedDMPConfig()
			err := setSampling(&cfg, tc.on, tc.period, tc.interval, tc.warmup, tc.warmMode, tc.manifest)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				if cfg != core.EnhancedDMPConfig() {
					t.Error("rejected flags mutated the config")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if cfg.SampleMode != tc.on {
				t.Errorf("SampleMode = %v, want %v", cfg.SampleMode, tc.on)
			}
			if cfg.SamplePeriod != tc.period || cfg.SampleInterval != tc.interval || cfg.SampleWarmup != tc.warmup {
				t.Errorf("got %d/%d/%d, want %d/%d/%d", cfg.SamplePeriod,
					cfg.SampleInterval, cfg.SampleWarmup, tc.period, tc.interval, tc.warmup)
			}
			if cfg.WarmMode != tc.warmMode {
				t.Errorf("WarmMode = %q, want %q", cfg.WarmMode, tc.warmMode)
			}
			if err := cfg.Validate(); err != nil {
				t.Errorf("applied config fails Validate: %v", err)
			}
		})
	}
}
